// Quickstart: compile one C-subset program and run it on all three targets
// the study compares — WebAssembly, Cheerp-style JavaScript, and the
// x86-like native baseline — printing the paper's metrics for each.
package main

import (
	"fmt"
	"log"

	"wasmbench/internal/browser"
	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
)

const program = `
#define N 64

double A[N][N];
double B[N][N];
double C[N][N];

int main() {
	int i; int j; int k;
	double trace = 0.0;
	for (i = 0; i < N; i++) {
		for (j = 0; j < N; j++) {
			A[i][j] = (double)((i * j + 1) % 7) / 7.0;
			B[i][j] = (double)((i - j + 11) % 5) / 5.0;
		}
	}
	for (i = 0; i < N; i++) {
		for (j = 0; j < N; j++) {
			double acc = 0.0;
			for (k = 0; k < N; k++) {
				acc += A[i][k] * B[k][j];
			}
			C[i][j] = acc;
		}
	}
	for (i = 0; i < N; i++) {
		trace += C[i][i];
	}
	print_f(trace);
	return (int)trace;
}
`

func main() {
	art, err := compiler.Compile(program, compiler.Options{
		Opt:        ir.O2,
		ModuleName: "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled with %v: wasm %d bytes, js %d bytes, x86 ~%d bytes\n\n",
		ir.O2, art.WasmSize(), art.JSSize(), art.X86Size())

	chrome := browser.Chrome(browser.Desktop)

	wm, err := chrome.MeasureWasm(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WebAssembly (desktop Chrome): %8.3f ms, %8.1f KB, output %v\n",
		wm.ExecMS, wm.MemoryKB, wm.Result.OutputStrings())

	jm, err := chrome.MeasureJS(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JavaScript  (desktop Chrome): %8.3f ms, %8.1f KB, output %v\n",
		jm.ExecMS, jm.MemoryKB, jm.Result.OutputStrings())

	xr, err := compiler.RunX86(art, codegen.DefaultX86Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x86 native  (baseline)      : %8.0f cycles, output %v\n",
		xr.Cycles, xr.OutputStrings())

	fmt.Printf("\nWasm vs JS speedup: %.2fx\n", jm.ExecMS/wm.ExecMS)
}
