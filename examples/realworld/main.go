// Realworld reproduces the paper's §4.6.2 experiments: the three
// applications with both WebAssembly and JavaScript implementations
// (Long.js, Hyphenopoly, FFmpeg), including the Long.js operation counts of
// Appendix D.
package main

import (
	"fmt"
	"log"

	"wasmbench/internal/core"
)

func main() {
	t10, err := core.RunRealWorld()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t10.RenderTable10())

	t12, err := core.RunTable12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t12.RenderTable12())
}
