// Optsweep reproduces the paper's §4.2.1 micro-stories on real benchmarks:
//
//   - the full optimization-level sweep on one benchmark (Fig. 5 columns);
//   - the ADPCM dead-store case (Fig. 7): -Ofast keeps stores to a
//     never-read global that -O2 eliminates;
//   - the covariance constant case (Fig. 8): -O2 rematerializes constants
//     at each use (two instructions on the Wasm stack machine) while
//     -O1/-Oz keep them in locals.
package main

import (
	"fmt"
	"log"
	"strings"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/wasmvm"
)

func main() {
	sweep("covariance")
	adpcmDeadStores()
	covarianceConstants()
}

func compileAt(name string, level ir.OptLevel) *compiler.Artifact {
	b, err := benchsuite.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	art, err := compiler.Compile(b.Source, compiler.Options{
		Opt:        level,
		Defines:    b.Defines(benchsuite.M),
		HeapLimit:  b.HeapLimitBytes(benchsuite.M),
		ModuleName: b.Name,
	})
	if err != nil {
		log.Fatal(err)
	}
	return art
}

func sweep(name string) {
	fmt.Printf("== optimization sweep: %s (medium input, desktop Chrome) ==\n", name)
	chrome := browser.Chrome(browser.Desktop)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "level", "wasm ms", "js ms", "wasm bytes", "js bytes")
	for _, lv := range []ir.OptLevel{ir.O0, ir.O1, ir.O2, ir.O3, ir.Os, ir.Oz, ir.Ofast} {
		art := compileAt(name, lv)
		wm, err := chrome.MeasureWasm(art)
		if err != nil {
			log.Fatal(err)
		}
		jm, err := chrome.MeasureJS(art)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %12.3f %12d %12d\n",
			lv, wm.ExecMS, jm.ExecMS, art.WasmSize(), art.JSSize())
	}
	fmt.Println()
}

func adpcmDeadStores() {
	fmt.Println("== Fig 7 mechanism: dead global stores survive -Ofast ==")
	// A distilled ADPCM-like kernel: `result` is written but never read.
	src := `
int result[512];
int sink;
int main() {
	int i;
	for (i = 0; i < 5000; i++) {
		result[i % 512] = i * 3;
		sink = sink + (i & 7);
	}
	return sink;
}
`
	for _, lv := range []ir.OptLevel{ir.O2, ir.Ofast} {
		art, err := compiler.Compile(src, compiler.Options{Opt: lv, ModuleName: "adpcm-distilled"})
		if err != nil {
			log.Fatal(err)
		}
		res, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s dynamic stores executed: %6d  (exit %d)\n",
			lv, res.WasmStats.Counts[wasmvm.CStore], res.Exit)
	}
	fmt.Println()
}

func covarianceConstants() {
	fmt.Println("== Fig 8 mechanism: -O2 rematerializes integral f64 constants ==")
	src := `
double out[256];
int main() {
	int i;
	double n = 200.0; /* the paper's float_n */
	for (i = 0; i < 256; i++) {
		out[i] = (double)i / n;
	}
	print_f(out[100]);
	return 0;
}
`
	for _, lv := range []ir.OptLevel{ir.O1, ir.O2} {
		art, err := compiler.Compile(src, compiler.Options{Opt: lv, ModuleName: "cov-distilled"})
		if err != nil {
			log.Fatal(err)
		}
		wat := art.WAT()
		remat := strings.Count(wat, "f64.convert_i32_s")
		res, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s i32.const+f64.convert_i32_s sites: %2d, dynamic const ops: %d\n",
			lv, remat, res.WasmStats.Counts[wasmvm.CConst])
	}
}
