// Browsers runs one benchmark across the study's six deployment settings
// (§4.5): Chrome/Firefox/Edge on desktop and mobile, for both WebAssembly
// and JavaScript, plus the Wasm↔JS context-switch microbenchmark.
package main

import (
	"fmt"
	"log"
	"os"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
)

func main() {
	name := "gemm"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := benchsuite.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	art, err := compiler.Compile(b.Source, compiler.Options{
		Opt:        ir.O2,
		Defines:    b.Defines(benchsuite.M),
		HeapLimit:  b.HeapLimitBytes(benchsuite.M),
		ModuleName: b.Name,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, medium input, -O2\n\n", name)
	fmt.Printf("%-18s %12s %12s %12s %12s\n", "deployment", "wasm ms", "js ms", "wasm KB", "js KB")
	for _, p := range browser.AllProfiles() {
		wm, err := p.MeasureWasm(art)
		if err != nil {
			log.Fatal(err)
		}
		jm, err := p.MeasureJS(art)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.3f %12.3f %12.1f %12.1f\n",
			p.Name(), wm.ExecMS, jm.ExecMS, wm.MemoryKB, jm.MemoryKB)
	}

	fmt.Println("\nWasm<->JS context switch (desktop):")
	for _, p := range browser.AllDesktop() {
		fmt.Printf("  %-8s %8.1f ns per round trip\n", p.Browser, p.CtxSwitchNS())
	}
}
