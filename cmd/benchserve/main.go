// Command benchserve runs the measurement harness as a long-running,
// overload-safe service (ROADMAP item 2). Two modes:
//
//	benchserve -addr :8080
//	    Serve POST /run compile+measure requests through the shared
//	    ArtifactCache + warm VM pools + resilient harness, with bounded
//	    admission, explicit load-shedding (429 + Retry-After), per-cell
//	    circuit breakers, live telemetry (/metrics, /debug/serve, ...),
//	    and graceful drain on SIGTERM/SIGINT.
//
//	benchserve -loadgen -self -requests 200 -rate 100
//	    Open-loop Poisson load generation (over the kernel × profile
//	    grid) against -target, or against an in-process server (-self);
//	    exits nonzero if any request goes unaccounted for.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/harness"
	"wasmbench/internal/serve"
	"wasmbench/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (':0' picks a free port)")
	queueBound := flag.Int("queue", 0, "admission queue bound (0 = 64); past it requests are shed with 429")
	workers := flag.Int("serve-workers", 0, "concurrent execution limit (0 = min(NumCPU, 8))")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = 30s)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on any request deadline (0 = 2m)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on shed responses (0 = 1s)")
	retries := flag.Int("retries", 0, "per-request cell retries")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff between retries")
	degrade := flag.Bool("degrade", false, "step retries down the degradation ladder")
	breakerFailures := flag.Int("breaker-failures", 0, "trip a cell's circuit breaker after this many consecutive failures (0 = off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before the half-open probe (0 = 5s)")
	stepLimit := flag.Uint64("step-limit", 0, "per-measurement dynamic instruction budget (0 = profile default)")
	vmPool := flag.Bool("vm-pool", true, "serve Wasm cells from warm pooled instances")
	vmPoolSize := flag.Int("vm-pool-size", 0, "max live instances per artifact pool (0 = default)")
	noCache := flag.Bool("no-compile-cache", false, "cold-compile every request")
	faultSpec := flag.String("faults", "", "fault plan spec, e.g. 'serve.shed:prob=0.1;wasm.stall:count=3,stall=2s'")
	faultSeed := flag.Uint64("fault-seed", 1, "fault plan seed")
	checkpointPath := flag.String("checkpoint", "", "JSONL checkpoint: record successes, serve repeats across restarts")
	telemetrySnap := flag.String("telemetry-snapshot", "", "write a metrics snapshot on drain ('-' = text to stdout; .json gets JSON)")
	flightCap := flag.Int("flight", 0, "flight-recorder window in events (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget before in-flight cells are canceled")

	loadgen := flag.Bool("loadgen", false, "run as load generator instead of server")
	self := flag.Bool("self", false, "with -loadgen: drive an in-process server instead of -target")
	target := flag.String("target", "", "with -loadgen: server base URL, e.g. http://127.0.0.1:8080")
	rate := flag.Float64("rate", 50, "with -loadgen: mean arrival rate, requests/second")
	requests := flag.Int("requests", 100, "with -loadgen: total requests to submit")
	seed := flag.Uint64("seed", 1, "with -loadgen: arrival-schedule seed")
	lgBench := flag.String("loadgen-bench", "", "with -loadgen: comma-separated kernel subset (default all 41)")
	lgSizes := flag.String("loadgen-sizes", "", "with -loadgen: comma-separated sizes (default XS)")
	lgProfiles := flag.String("loadgen-profiles", "", "with -loadgen: comma-separated profiles (default all six)")
	lgLang := flag.String("loadgen-lang", "wasm", "with -loadgen: wasm or js")
	lgDeadlineMS := flag.Int("loadgen-deadline-ms", 0, "with -loadgen: per-request deadline_ms (0 = server default)")
	expectShed := flag.Bool("expect-shed", false, "with -loadgen: exit nonzero unless shedding fired (overload smoke)")
	flag.Parse()

	var plan *faultinject.Plan
	if *faultSpec != "" {
		rules, err := faultinject.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		plan = faultinject.NewPlan(*faultSeed, rules...)
	}

	hub := telemetry.NewHub(*flightCap)
	var checkpoint *harness.Checkpoint
	if *checkpointPath != "" {
		var err error
		checkpoint, err = harness.OpenCheckpoint(*checkpointPath)
		if err != nil {
			fatal(err)
		}
		if n := checkpoint.Len(); n > 0 {
			fmt.Printf("benchserve: checkpoint %s: %d cells restored\n", *checkpointPath, n)
		}
	}

	cfg := serve.Config{
		QueueBound:      *queueBound,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		RetryAfter:      *retryAfter,
		Retries:         *retries,
		RetryBackoff:    *retryBackoff,
		DegradeOnRetry:  *degrade,
		StepLimit:       *stepLimit,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		DisableVMPool:   !*vmPool,
		VMPoolSize:      *vmPoolSize,
		DisableCache:    *noCache,
		Faults:          plan,
		Hub:             hub,
		Checkpoint:      checkpoint,
	}

	if *loadgen {
		if err := runLoadgen(cfg, loadgenFlags{
			self: *self, target: *target, addr: *addr,
			rate: *rate, requests: *requests, seed: *seed,
			benches: splitList(*lgBench), sizes: splitList(*lgSizes),
			profiles: splitList(*lgProfiles), lang: *lgLang,
			deadlineMS: *lgDeadlineMS, expectShed: *expectShed,
			drainTimeout: *drainTimeout,
		}); err != nil {
			fatal(err)
		}
		return
	}

	srv := serve.NewServer(cfg)
	bound, err := srv.Serve(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchserve: serving http://%s (POST /run; /healthz, /metrics, /debug/serve)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "benchserve: %v: draining (budget %v)\n", s, *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	drainErr := srv.Drain(drainCtx)
	cancel()
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", drainErr)
	}
	// Flush durable state after the pipeline is quiet: the snapshot sees
	// every terminal response, the checkpoint every recorded success.
	if *telemetrySnap != "" {
		if err := writeSnapshot(*telemetrySnap, hub); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve: telemetry snapshot:", err)
		}
	}
	if checkpoint != nil {
		if err := checkpoint.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve: checkpoint:", err)
		}
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shutdownCtx)
	cancel2()
	if drainErr != nil {
		os.Exit(1)
	}
}

type loadgenFlags struct {
	self         bool
	target       string
	addr         string
	rate         float64
	requests     int
	seed         uint64
	benches      []string
	sizes        []string
	profiles     []string
	lang         string
	deadlineMS   int
	expectShed   bool
	drainTimeout time.Duration
}

func runLoadgen(cfg serve.Config, lf loadgenFlags) error {
	target := lf.target
	var srv *serve.Server
	if lf.self {
		srv = serve.NewServer(cfg)
		bound, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		target = "http://" + bound
		fmt.Printf("benchserve: self-target %s (queue %d)\n", target, serveQueueBound(cfg))
	}
	if target == "" {
		return fmt.Errorf("loadgen needs -target or -self")
	}

	stats, err := serve.RunLoad(serve.LoadOptions{
		Target: target, Rate: lf.rate, Requests: lf.requests, Seed: lf.seed,
		Benches: lf.benches, Sizes: lf.sizes, Profiles: lf.profiles,
		Lang: lf.lang, DeadlineMS: lf.deadlineMS,
	})
	if err != nil {
		return err
	}
	fmt.Print(stats.Render())

	if srv != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), lf.drainTimeout)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			return err
		}
		shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		_ = srv.Shutdown(shutdownCtx)
	}

	if !stats.Accounted() {
		return fmt.Errorf("accounting violated: %d submitted, %d terminal + %d transport errors",
			stats.Submitted, stats.Terminal(), stats.TransportErrors)
	}
	if lf.expectShed && stats.ByStatus[serve.StatusShed] == 0 {
		return fmt.Errorf("expected shedding to fire (burst did not overload the queue); statuses: %v", stats.ByStatus)
	}
	return nil
}

func serveQueueBound(cfg serve.Config) int {
	if cfg.QueueBound > 0 {
		return cfg.QueueBound
	}
	return 64
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func writeSnapshot(dst string, hub *telemetry.Hub) error {
	snap := hub.Registry().Snapshot()
	if dst == "-" {
		fmt.Print(snap.Text())
		return nil
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if strings.HasSuffix(dst, ".json") {
		err = snap.WriteJSON(f)
	} else {
		_, err = f.WriteString(snap.Text())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("telemetry snapshot: %d metrics -> %s\n", len(snap.Metrics), dst)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchserve:", err)
	os.Exit(1)
}
