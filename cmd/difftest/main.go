// Command difftest drives the cross-backend differential fuzzer: it
// generates seeded MiniC programs, compiles each at every requested opt
// level, runs the wasmvm/jsvm/x86vm backend matrix, and reports any
// observable divergence. On divergence it can minimize the program and
// write a regression into the corpus directory.
//
// Usage:
//
//	difftest -seeds 500                      # seeds 1..500, both float modes
//	difftest -seed 212                       # replay one seed
//	difftest -duration 30s                   # run until the clock, not a count
//	difftest -opt O0,O2,O3 -backends x86,js  # narrow the matrix
//	difftest -full                           # all 12 wasmvm configurations
//	difftest -minimize -corpus-dir internal/difftest/corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wasmbench/internal/compiler"
	"wasmbench/internal/difftest"
	"wasmbench/internal/ir"
)

func main() {
	seeds := flag.Int("seeds", 100, "number of generator seeds to sweep (1..N)")
	oneSeed := flag.Uint64("seed", 0, "check a single seed instead of a sweep")
	duration := flag.Duration("duration", 0, "run new seeds until this much time has passed (overrides -seeds)")
	optList := flag.String("opt", "", "comma-separated opt levels (default O0,O3)")
	backends := flag.String("backends", "", "comma-separated backend families: wasm,js,x86 (default all)")
	toolchains := flag.String("toolchains", "", "comma-separated toolchains: cheerp,emscripten (default cheerp)")
	full := flag.Bool("full", false, "run the full 12-config wasmvm mode x fusion x regtier matrix")
	noCrossLevel := flag.Bool("no-xlevel", false, "skip the cross-level invariance check")
	floatMode := flag.String("floats", "both", "float generation: both, on, off")
	minimize := flag.Bool("minimize", false, "on divergence: shrink the program and write a corpus regression")
	corpusDir := flag.String("corpus-dir", "internal/difftest/corpus", "directory for minimized regressions (-minimize)")
	shrinkBudget := flag.Int("shrink-attempts", 2000, "max candidate programs the minimizer may try")
	verbose := flag.Bool("v", false, "print every seed checked, not just divergences")
	flag.Parse()

	orc := difftest.DefaultOracle()
	orc.FullWasmMatrix = *full
	orc.CrossLevel = !*noCrossLevel
	if *optList != "" {
		for _, s := range strings.Split(*optList, ",") {
			lv, err := ir.ParseOptLevel(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			orc.Levels = append(orc.Levels, lv)
		}
	}
	if *backends != "" {
		for _, s := range strings.Split(*backends, ",") {
			f := strings.TrimSpace(strings.ToLower(s))
			switch f {
			case "wasm", "js", "x86":
				orc.Families = append(orc.Families, f)
			default:
				fatal(fmt.Errorf("unknown backend family %q (want wasm, js, or x86)", s))
			}
		}
	}
	if *toolchains != "" {
		for _, s := range strings.Split(*toolchains, ",") {
			switch strings.TrimSpace(strings.ToLower(s)) {
			case "cheerp":
				orc.Toolchains = append(orc.Toolchains, compiler.Cheerp)
			case "emscripten":
				orc.Toolchains = append(orc.Toolchains, compiler.Emscripten)
			default:
				fatal(fmt.Errorf("unknown toolchain %q (want cheerp or emscripten)", s))
			}
		}
	}

	var floatModes []bool
	switch *floatMode {
	case "both":
		floatModes = []bool{false, true}
	case "on":
		floatModes = []bool{false}
	case "off":
		floatModes = []bool{true}
	default:
		fatal(fmt.Errorf("unknown -floats mode %q (want both, on, off)", *floatMode))
	}

	checked, divergent := 0, 0
	start := time.Now()
	checkSeed := func(seed uint64) {
		for _, floatFree := range floatModes {
			gopts := difftest.GenOptions{FloatFree: floatFree}
			rep, err := orc.CheckSeed(seed, gopts)
			checked++
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed %d floatfree=%v: compile error: %v\n", seed, floatFree, err)
				divergent++
				continue
			}
			if rep.OK() {
				if *verbose {
					fmt.Printf("seed %d floatfree=%v: ok (%d runs)\n", seed, floatFree, rep.Runs)
				}
				continue
			}
			divergent++
			fmt.Printf("seed %d floatfree=%v: DIVERGENT\n%s\n", seed, floatFree, rep.Summary())
			if *minimize {
				minimizeSeed(orc, seed, gopts, *shrinkBudget, *corpusDir)
			}
		}
	}

	switch {
	case *oneSeed != 0:
		checkSeed(*oneSeed)
	case *duration > 0:
		for seed := uint64(1); time.Since(start) < *duration; seed++ {
			checkSeed(seed)
		}
	default:
		for seed := uint64(1); seed <= uint64(*seeds); seed++ {
			checkSeed(seed)
		}
	}

	fmt.Printf("difftest: %d programs checked in %v, divergent: %d\n",
		checked, time.Since(start).Round(time.Millisecond), divergent)
	if divergent > 0 {
		os.Exit(1)
	}
}

// minimizeSeed shrinks a divergent seed program against "the oracle still
// reports a divergence" and writes the result as a corpus regression.
func minimizeSeed(orc *difftest.Oracle, seed uint64, gopts difftest.GenOptions, budget int, dir string) {
	prog := difftest.Generate(seed, gopts)
	repro := func(p *difftest.Prog) bool {
		rep, err := orc.Check("shrink", p.Render())
		return err == nil && !rep.OK()
	}
	if !repro(prog) {
		fmt.Fprintln(os.Stderr, "  minimize: divergence did not reproduce on regeneration")
		return
	}
	before := len(prog.Render())
	min := difftest.Shrink(prog, repro, budget)
	rep, _ := orc.Check("min", min.Render())
	note := fmt.Sprintf("seed %d floatfree=%v, %d -> %d bytes", seed, gopts.FloatFree, before, len(min.Render()))
	if rep != nil && len(rep.Divergences) > 0 {
		note += "\n" + rep.Divergences[0].String()
	}
	name := fmt.Sprintf("regress-seed-%d", seed)
	if gopts.FloatFree {
		name += "-ff"
	}
	path, err := difftest.WriteCorpusEntry(dir, name, note, min.Render())
	if err != nil {
		fmt.Fprintf(os.Stderr, "  minimize: write corpus entry: %v\n", err)
		return
	}
	fmt.Printf("  minimized %d -> %d bytes, wrote %s\n", before, len(min.Render()), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "difftest:", err)
	os.Exit(2)
}
