// Command wasmrun executes a WebAssembly binary under a browser profile and
// reports the study's metrics: execution time (virtual ms), memory, dynamic
// instruction counts, and program output.
//
// Usage:
//
//	wasmrun prog.wasm
//	wasmrun -browser firefox -platform mobile prog.wasm
//	wasmrun -mode basic prog.wasm      # --liftoff --no-wasm-tier-up
//	wasmrun -mode opt prog.wasm        # --no-liftoff
//	wasmrun -profile prog.wasm         # per-function virtual-cycle profile
//	wasmrun -trace-out t.json prog.wasm  # Chrome trace_event JSON
//	wasmrun -telemetry-snapshot - prog.wasm  # metrics snapshot to stdout
//	wasmrun -no-fuse prog.wasm         # disable the superinstruction tier
//	                                   # (identical metrics, slower dispatch)
//	wasmrun -no-regtier prog.wasm      # disable register-form optimized dispatch
//	wasmrun -no-aot prog.wasm          # disable AOT superblock dispatch
//	wasmrun -tierup-threshold 50 prog.wasm  # hotness before tier-up (like
//	                                        # tuning V8's --wasm-tiering-budget)
//	wasmrun -aot-threshold 500 prog.wasm    # hotness before superblock compile
//	wasmrun -snapshot prog.wasm        # run on a snapshot-recycled instance
//	                                   # (identical metrics, instant startup)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasm"
	"wasmbench/internal/wasmvm"
)

func main() {
	browserFlag := flag.String("browser", "chrome", "browser profile: chrome, firefox, edge")
	platformFlag := flag.String("platform", "desktop", "platform: desktop or mobile")
	modeFlag := flag.String("mode", "both", "compiler tiers: both, basic, opt")
	entry := flag.String("entry", "main", "exported function to call")
	profileFlag := flag.Bool("profile", false, "print a per-function virtual-cycle profile")
	noFuse := flag.Bool("no-fuse", false, "disable interpreter superinstruction fusion (virtual metrics are identical; dispatch is slower)")
	noRegTier := flag.Bool("no-regtier", false, "disable the register-form optimizing tier (virtual metrics are identical; tiered dispatch is slower)")
	noAOT := flag.Bool("no-aot", false, "disable the AOT superblock tier (virtual metrics are identical; hot dispatch is slower)")
	tierUpThreshold := flag.Uint64("tierup-threshold", 0, "hotness (calls + loop back-edges) before tier-up; 0 keeps the browser profile's default")
	aotThreshold := flag.Uint64("aot-threshold", 0, "hotness before AOT superblock compilation of a tiered function; 0 keeps the browser profile's default")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
	foldedOut := flag.String("folded-out", "", "write folded stacks (flamegraph.pl / speedscope input)")
	teleSnap := flag.String("telemetry-snapshot", "", "dump a telemetry metrics snapshot after the run ('-' = text to stdout; a path ending in .json gets JSON)")
	snapshotFlag := flag.Bool("snapshot", false, "execute on a snapshot-recycled instance: capture a post-init snapshot, run once on a pooled checkout, then run the reported measurement on the reset instance (virtual metrics are identical to a cold run)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wasmrun [flags] <module.wasm>")
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := wasm.Decode(bin)
	if err != nil {
		fatal(err)
	}
	plat := browser.Desktop
	if *platformFlag == "mobile" {
		plat = browser.Mobile
	}
	var prof *browser.Profile
	switch *browserFlag {
	case "chrome":
		prof = browser.Chrome(plat)
	case "firefox":
		prof = browser.Firefox(plat)
	case "edge":
		prof = browser.Edge(plat)
	default:
		fatal(fmt.Errorf("unknown browser %q", *browserFlag))
	}
	cfg := prof.Wasm
	switch *modeFlag {
	case "both":
		cfg.Mode = wasmvm.TierBoth
	case "basic":
		cfg.Mode = wasmvm.TierBasicOnly
	case "opt":
		cfg.Mode = wasmvm.TierOptOnly
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeFlag))
	}
	var coll *obsv.Collector
	if *traceOut != "" || *foldedOut != "" {
		coll = &obsv.Collector{}
		cfg.Tracer = coll
	}
	if *profileFlag {
		cfg.Profile = true
	}
	cfg.DisableFusion = *noFuse
	cfg.DisableRegTier = *noRegTier
	cfg.DisableAOTTier = *noAOT
	if *tierUpThreshold != 0 {
		cfg.TierUpThreshold = *tierUpThreshold
	}
	if *aotThreshold != 0 {
		cfg.AOTThreshold = *aotThreshold
	}
	var reg *telemetry.Registry
	if *teleSnap != "" {
		reg = telemetry.NewRegistry()
		cfg.Instruments = telemetry.NewVMInstruments(reg)
	}

	var vm *wasmvm.VM
	if *snapshotFlag {
		// Drive a pool of one through a full checkout/recycle cycle so the
		// measured run executes on a snapshot-reset instance: the first Get
		// captures the post-init snapshot, the warm-up run dirties it, and
		// Put resets it for the reported run.
		pool := wasmvm.NewInstancePool(mod, len(bin), wasmvm.PoolOptions{MaxInstances: 1})
		// The warm-up checkout runs detached (no tracer, profile, or
		// instruments) so the reported run's observability streams only see
		// the measured execution.
		warmCfg := cfg
		warmCfg.Tracer = nil
		warmCfg.Instruments = nil
		warmCfg.Profile = false
		warm, _, err := pool.Get(warmCfg)
		if err != nil {
			fatal(err)
		}
		compiler.BindWasmImports(warm)
		if _, err := warm.Call(*entry); err != nil {
			fatal(err)
		}
		pool.Put(warm)
		vm, _, err = pool.Get(cfg)
		if err != nil {
			fatal(err)
		}
		st := pool.Stats()
		fmt.Printf("snapshot: measuring on a recycled instance (%d hit, %d miss, %d recycles)\n",
			st.Hits, st.Misses, st.Recycles)
	} else {
		var err error
		vm, err = wasmvm.New(mod, len(bin), cfg)
		if err != nil {
			fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			fatal(err)
		}
	}
	out := compiler.BindWasmImports(vm)
	res, err := vm.Call(*entry)
	if err != nil {
		fatal(err)
	}
	for _, o := range *out {
		fmt.Println(o)
	}
	if len(res) == 1 {
		fmt.Printf("exit: %d\n", wasmvm.AsI32(res[0]))
	}
	st := vm.Stats()
	fmt.Printf("time: %.3f ms (%s)\n", prof.MSFromCycles(vm.Cycles()), prof.Name())
	fmt.Printf("memory: %.1f KB (linear high-water + module overhead)\n",
		float64(vm.PeakMemoryBytes())/1024)
	fmt.Printf("instructions: %d (tier-ups: %d, memory.grow: %d)\n",
		st.Steps, st.TierUps, st.GrowOps)
	fmt.Printf("tier cycles: basic=%.0f opt=%.0f aot=%.0f (register bodies: %d, aot bodies: %d)\n",
		st.BasicCycles, st.OptCycles, st.AOTCycles, vm.RegTranslated(), vm.AOTTranslated())
	ops := st.ArithOps()
	fmt.Printf("arith ops: ADD=%d MUL=%d DIV=%d REM=%d SHIFT=%d AND=%d OR=%d\n",
		ops["ADD"], ops["MUL"], ops["DIV"], ops["REM"], ops["SHIFT"], ops["AND"], ops["OR"])
	if *profileFlag {
		fmt.Print(obsv.ProfileTable(vm.Profile()))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obsv.WriteChromeTrace(f, coll.EventsWithTruncation(), vm.Profile()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", coll.Len(), *traceOut)
	}
	if *foldedOut != "" {
		f, err := os.Create(*foldedOut)
		if err != nil {
			fatal(err)
		}
		if err := obsv.WriteFolded(f, coll.EventsWithTruncation()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *teleSnap != "" {
		if err := dumpSnapshot(*teleSnap, reg.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

// dumpSnapshot writes a registry snapshot: "-" prints the text table to
// stdout, a *.json path gets indented JSON, anything else the text table.
func dumpSnapshot(dst string, snap telemetry.Snapshot) error {
	if dst == "-" {
		fmt.Print(snap.Text())
		return nil
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if strings.HasSuffix(dst, ".json") {
		err = snap.WriteJSON(f)
	} else {
		_, err = f.WriteString(snap.Text())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wasmrun:", err)
	os.Exit(1)
}
