// Command minicc is the study's C-subset compiler driver: it compiles minic
// source to WebAssembly (binary or WAT), Cheerp-style JavaScript, or an
// x86-like listing, at any of the paper's optimization levels.
//
// Usage:
//
//	minicc -O 2 -target wasm -o out.wasm prog.c
//	minicc -O z -target wat prog.c            # text format to stdout
//	minicc -O fast -target js prog.c
//	minicc -toolchain emscripten -target wasm prog.c
//	minicc -D N=100 -D REPS=10 prog.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }

func (d defineFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) == 1 {
		d[parts[0]] = "1"
	} else {
		d[parts[0]] = parts[1]
	}
	return nil
}

func main() {
	optFlag := flag.String("O", "2", "optimization level: 0,1,2,3,4,s,z,fast")
	target := flag.String("target", "wasm", "output: wasm, wat, js, x86")
	out := flag.String("o", "", "output file (default stdout / <src>.wasm)")
	toolchain := flag.String("toolchain", "cheerp", "toolchain flavour: cheerp or emscripten")
	stack := flag.Uint("stack", 0, "cheerp-linear-stack-size in bytes (0 = default 1 MiB)")
	heap := flag.Uint("heap", 0, "cheerp-linear-heap-size in bytes (0 = default 8 MiB)")
	defines := defineFlags{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	timings := flag.Bool("timings", false, "print per-stage pipeline timings (node-count work units)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] <source.c>")
		flag.Usage()
		os.Exit(2)
	}
	srcPath := flag.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		fatal(err)
	}
	level, err := ir.ParseOptLevel(*optFlag)
	if err != nil {
		fatal(err)
	}
	tc := compiler.Cheerp
	if *toolchain == "emscripten" {
		tc = compiler.Emscripten
	}
	var coll *obsv.Collector
	copts := compiler.Options{
		Opt:        level,
		Toolchain:  tc,
		Defines:    defines,
		StackSize:  uint32(*stack),
		HeapLimit:  uint32(*heap),
		ModuleName: strings.TrimSuffix(srcPath, ".c"),
	}
	if *timings {
		coll = &obsv.Collector{}
		copts.Tracer = coll
	}
	art, err := compiler.Compile(string(src), copts)
	if err != nil {
		fatal(err)
	}
	if *timings {
		fmt.Fprint(os.Stderr, obsv.CompilePassTable(coll.Events()))
	}
	if art.Transform.ExceptionsRemoved > 0 || art.Transform.UnionsConverted > 0 {
		fmt.Fprintf(os.Stderr, "minicc: source transformation: %d try/catch removed, %d throws rewritten, %d unions converted\n",
			art.Transform.ExceptionsRemoved, art.Transform.ThrowsRemoved, art.Transform.UnionsConverted)
	}

	var data []byte
	switch *target {
	case "wasm":
		data = art.WasmBinary
		if *out == "" {
			*out = strings.TrimSuffix(srcPath, ".c") + ".wasm"
		}
	case "wat":
		data = []byte(art.WAT())
	case "js":
		data = []byte(art.JS)
	case "x86":
		data = []byte(fmt.Sprintf("; x86-like listing: %d instructions, ~%d bytes\n",
			art.X86.StaticInstrCount(), art.X86.EncodedSize()))
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "minicc: wrote %s (%d bytes)\n", *out, len(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
