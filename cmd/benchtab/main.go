// Command benchtab regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtab -exp table2       # §4.2.1 optimization-level geomeans
//	benchtab -exp fig5         # per-benchmark opt ratios (incl. fig6 x86)
//	benchtab -exp fig11        # five-number summaries
//	benchtab -exp compilers    # §4.2.2 Cheerp vs Emscripten
//	benchtab -exp table3       # §4.3.1 Chrome input sizes (+ table4 memory)
//	benchtab -exp table5       # §4.3.2 Firefox input sizes (+ table6 memory)
//	benchtab -exp fig9         # per-benchmark input-size series
//	benchtab -exp fig10        # §4.4.1 JIT improvement
//	benchtab -exp table7       # §4.4.2 tier configurations
//	benchtab -exp table8       # §4.5 browsers & platforms
//	benchtab -exp fig12        # per-benchmark deployment series
//	benchtab -exp ctxswitch    # §4.5 context-switch microbenchmark
//	benchtab -exp table9       # §4.6.1 manual JavaScript
//	benchtab -exp table10      # §4.6.2 real-world applications
//	benchtab -exp table12      # Appendix D operation counts
//	benchtab -exp all          # everything above
//
// Use -bench to restrict to a comma-separated benchmark subset and -sizes
// to restrict input classes (e.g. -sizes XS,M).
//
// The -metrics grid run additionally supports a resilience tool kit:
// -retries/-retry-backoff/-degrade re-attempt failed cells (optionally
// stepping down the degradation ladder), -deadline and -step-limit bound
// each attempt in wall-clock and virtual time, -quarantine skips
// benchmarks that keep failing, -resume checkpoints completed cells to a
// file and restores them on the next invocation, and -faults/-fault-seed
// inject a deterministic fault plan for drills. -vm-pool serves Wasm cells
// from per-artifact instance pools (snapshot clones/resets instead of cold
// instantiation; host time only — every virtual metric is unchanged), with
// -vm-pool-size bounding live instances per pool. Any cell still failed or
// quarantined at the end makes benchtab exit nonzero with a failure
// summary on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/core"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "", "experiment id (table2, fig5, fig9, ... or 'all')")
	benchFilter := flag.String("bench", "", "comma-separated benchmark subset")
	sizeFilter := flag.String("sizes", "", "comma-separated size subset (XS,S,M,L,XL)")
	metricsFlag := flag.Bool("metrics", false, "run the suite cell grid and print per-cell wall time, queue depth, and worker utilization")
	traceOut := flag.String("trace-out", "", "with -metrics: also write a Chrome trace_event JSON file of the run")
	workers := flag.Int("workers", 0, "worker pool size for -metrics (0 = default)")
	compileCache := flag.Bool("compile-cache", true, "share one compiled artifact per unique (source, size, opt, toolchain, target); disable for cold-compile studies")
	resume := flag.String("resume", "", "with -metrics: checkpoint file; completed cells are restored from it and new successes appended, so an interrupted run picks up where it left off")
	retries := flag.Int("retries", 0, "with -metrics: re-attempt failed cells up to N times")
	retryBackoff := flag.Duration("retry-backoff", 0, "with -metrics: base delay before retries (exponential with seeded jitter)")
	degrade := flag.Bool("degrade", false, "with -metrics: step retries down the degradation ladder (regtier, fusion, opt level)")
	deadline := flag.Duration("deadline", 0, "with -metrics: wall-clock budget per cell attempt (0 = none)")
	stepLimit := flag.Uint64("step-limit", 0, "with -metrics: dynamic instruction budget per measurement (0 = profile default)")
	quarantine := flag.Int("quarantine", 0, "with -metrics: skip a benchmark's remaining cells after N consecutive failures (0 = never)")
	faultSpec := flag.String("faults", "", "with -metrics: deterministic fault plan, e.g. 'wasm.stall:count=2,stall=100ms;harness.worker-panic:prob=0.05'")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the -faults plan and retry jitter")
	vmPool := flag.Bool("vm-pool", false, "with -metrics: serve Wasm measurements from per-artifact instance pools (post-init snapshot clones and resets instead of cold instantiation; virtual metrics are unchanged)")
	vmPoolSize := flag.Int("vm-pool-size", 0, "with -metrics: max live instances per artifact pool (0 = workers+1)")
	telemetryAddr := flag.String("telemetry", "", "with -metrics: serve live telemetry on this address during the sweep (/metrics, /debug/trace, /debug/profile, /debug/cells, /healthz); ':0' picks a free port")
	telemetrySnap := flag.String("telemetry-snapshot", "", "with -metrics: write a metrics snapshot when the sweep ends ('-' = text to stdout; a path ending in .json gets JSON)")
	flightCap := flag.Int("flight", 0, "flight-recorder window in events for -telemetry (0 = default 65536)")
	flag.Parse()
	if *exp == "" && !*metricsFlag && *traceOut == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := core.Options{}
	if *benchFilter != "" {
		for _, name := range strings.Split(*benchFilter, ",") {
			b, err := benchsuite.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	if *sizeFilter != "" {
		bySuffix := map[string]benchsuite.Size{
			"XS": benchsuite.XS, "S": benchsuite.S, "M": benchsuite.M,
			"L": benchsuite.L, "XL": benchsuite.XL,
		}
		for _, s := range strings.Split(*sizeFilter, ",") {
			sz, ok := bySuffix[strings.ToUpper(strings.TrimSpace(s))]
			if !ok {
				fatal(fmt.Errorf("unknown size %q", s))
			}
			opts.Sizes = append(opts.Sizes, sz)
		}
	}

	if *metricsFlag || *traceOut != "" {
		ropt := harness.RunOptions{
			Workers:         *workers,
			DisableCache:    !*compileCache,
			Retries:         *retries,
			RetryBackoff:    *retryBackoff,
			DegradeOnRetry:  *degrade,
			Deadline:        *deadline,
			StepLimit:       *stepLimit,
			QuarantineAfter: *quarantine,
			VMPool:          *vmPool,
			VMPoolSize:      *vmPoolSize,
		}
		if *faultSpec != "" {
			rules, err := faultinject.ParseSpec(*faultSpec)
			if err != nil {
				fatal(err)
			}
			ropt.Faults = faultinject.NewPlan(*faultSeed, rules...)
		}
		if *resume != "" {
			cp, err := harness.OpenCheckpoint(*resume)
			if err != nil {
				fatal(err)
			}
			defer cp.Close()
			ropt.Checkpoint = cp
		}
		tele := teleConfig{addr: *telemetryAddr, snapshot: *telemetrySnap, flight: *flightCap}
		if err := runMetrics(opts, ropt, tele, *traceOut); err != nil {
			fatal(err)
		}
		if *exp == "" {
			return
		}
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table2", "fig5", "fig11", "compilers", "table3", "table5",
			"fig10", "table7", "table8", "ctxswitch", "table9", "table10", "table12"}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), opts); err != nil {
			fatal(err)
		}
	}
}

func run(id string, opts core.Options) error {
	switch id {
	case "table2", "fig5", "fig6", "fig11":
		r, err := core.RunOptLevels(opts)
		if err != nil {
			return err
		}
		switch id {
		case "table2":
			fmt.Println(r.RenderTable2())
		case "fig5", "fig6":
			fmt.Println(r.RenderFig5())
		case "fig11":
			fmt.Println(r.RenderFig11())
		}
	case "compilers":
		r, err := core.RunCompilerCompare(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "table3", "table4", "fig9":
		r, err := core.RunInputSizes(browser.Chrome(browser.Desktop), opts)
		if err != nil {
			return err
		}
		if id == "fig9" {
			fmt.Println(r.RenderFig9())
		} else {
			fmt.Println(r.RenderSpeedStats())
			fmt.Println(r.RenderMemStats())
		}
	case "table5", "table6":
		r, err := core.RunInputSizes(browser.Firefox(browser.Desktop), opts)
		if err != nil {
			return err
		}
		fmt.Println(r.RenderSpeedStats())
		fmt.Println(r.RenderMemStats())
	case "fig10":
		r, err := core.RunJIT(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.RenderFig10())
	case "table7":
		r, err := core.RunTable7(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.RenderTable7())
	case "table8", "fig12", "fig13":
		r, err := core.RunBrowsersPlatforms(opts)
		if err != nil {
			return err
		}
		if id == "table8" {
			fmt.Println(r.RenderTable8())
		} else {
			fmt.Println(r.RenderFig1213())
		}
	case "ctxswitch":
		fmt.Println(core.RunCtxSwitch().Render())
	case "table9":
		r, err := core.RunManualJS()
		if err != nil {
			return err
		}
		fmt.Println(r.RenderTable9())
	case "table10":
		r, err := core.RunRealWorld()
		if err != nil {
			return err
		}
		fmt.Println(r.RenderTable10())
	case "table12":
		r, err := core.RunTable12()
		if err != nil {
			return err
		}
		fmt.Println(r.RenderTable12())
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// teleConfig carries the live-telemetry flags into runMetrics.
type teleConfig struct {
	addr     string // HTTP listen address ("" = no server)
	snapshot string // snapshot destination ("" = none, "-" = stdout text)
	flight   int    // flight-recorder capacity (0 = default)
}

func (t teleConfig) enabled() bool { return t.addr != "" || t.snapshot != "" }

// runMetrics executes the benchmark × language cell grid on desktop Chrome
// under the instrumented harness (with whatever resilience options the
// flags selected) and prints the run's wall-time metrics. Sizes default to
// M alone (the study's reference class) to keep the grid manageable;
// -sizes widens it. With -telemetry the sweep serves live endpoints while
// it runs; trace and snapshot outputs are flushed even on SIGINT, so an
// interrupted sweep keeps its partial observability data.
func runMetrics(opts core.Options, ropt harness.RunOptions, tele teleConfig, traceOut string) error {
	benches := opts.Benchmarks
	if benches == nil {
		benches = benchsuite.All()
	}
	sizes := opts.Sizes
	if sizes == nil {
		sizes = []benchsuite.Size{benchsuite.M}
	}
	// One shared profile for the whole grid, so telemetry instruments and
	// tracers attach in one place (measurements copy the config per run).
	profile := browser.Chrome(browser.Desktop)
	var cells []harness.Cell
	for _, b := range benches {
		for _, sz := range sizes {
			for _, lang := range []string{"wasm", "js"} {
				cells = append(cells, harness.Cell{
					Bench: b, Size: sz, Level: ir.O2,
					Lang: lang, Profile: profile,
				})
			}
		}
	}
	var coll *obsv.Collector
	if traceOut != "" {
		coll = &obsv.Collector{}
		ropt.Tracer = coll
	}

	var hub *telemetry.Hub
	var srv *telemetry.Server
	if tele.enabled() {
		hub = telemetry.NewHub(tele.flight)
		ropt.Telemetry = hub
		profile.SetInstruments(hub.Registry())
		profile.SetProfiling(true)
		// VM events feed the bounded flight ring (newest window) while the
		// -trace-out collector keeps receiving harness events unchanged.
		profile.SetTracer(hub.Tracer())
		if tele.addr != "" {
			var err error
			srv, err = telemetry.Start(hub, tele.addr)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("telemetry: serving http://%s (metrics, debug/trace, debug/profile, debug/cells, healthz)\n", srv.Addr())
		}
	}

	// flush writes whatever observability outputs were requested. It is
	// safe mid-run (collector and registry snapshots are concurrent), and
	// runs at most once — from the SIGINT handler or the normal exit path.
	var flushOnce sync.Once
	flush := func() {
		flushOnce.Do(func() {
			if traceOut != "" {
				if err := writeTrace(traceOut, coll); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab: trace flush:", err)
				}
			}
			if tele.snapshot != "" {
				if err := writeSnapshot(tele.snapshot, hub); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab: telemetry snapshot:", err)
				}
			}
		})
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "benchtab: %v: flushing partial observability outputs\n", s)
		flush()
		// Let in-flight scrapes finish before the process exits; the
		// 2-second budget keeps Ctrl-C snappy even with a stuck client.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(shutdownCtx)
		cancel()
		os.Exit(130)
	}()

	results, metrics := harness.RunCellsWith(cells, ropt)
	fmt.Println(metrics.Render())
	// Failure summary: any cell still failed or quarantined after the
	// retry/degrade budget makes the whole run exit nonzero, with one line
	// per casualty so partial results are still auditable.
	var failed, quarantined int
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if errors.Is(r.Err, harness.ErrQuarantined) {
			quarantined++
		} else {
			failed++
		}
		fmt.Fprintln(os.Stderr, "benchtab: cell failed:", r.Err)
	}
	flush()
	if failed+quarantined > 0 {
		return fmt.Errorf("%d of %d cells failed (%d quarantined) after retries",
			failed+quarantined, len(cells), quarantined)
	}
	return nil
}

// writeTrace exports the collector's events (with an explicit truncation
// marker if its Limit dropped any) as a Chrome trace file.
func writeTrace(path string, coll *obsv.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obsv.WriteChromeTrace(f, coll.EventsWithTruncation(), nil); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %d events -> %s\n", coll.Len(), path)
	return nil
}

// writeSnapshot dumps the hub's registry: "-" prints the aligned text
// table to stdout, a *.json path gets indented JSON, anything else the
// text table.
func writeSnapshot(dst string, hub *telemetry.Hub) error {
	snap := hub.Registry().Snapshot()
	if dst == "-" {
		fmt.Print(snap.Text())
		return nil
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if strings.HasSuffix(dst, ".json") {
		err = snap.WriteJSON(f)
	} else {
		_, err = f.WriteString(snap.Text())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("telemetry snapshot: %d metrics -> %s\n", len(snap.Metrics), dst)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
