// Command jsrun executes a JavaScript source file on the study's JS engine
// under a browser profile, reporting execution time, the DevTools JS-heap
// metric, and output.
//
// Usage:
//
//	jsrun prog.js
//	jsrun -browser firefox -no-jit prog.js   # the paper's --no-opt setting
//	jsrun -tierup-threshold 50 prog.js       # hotness before JIT tier-up
//	jsrun -profile prog.js                   # per-function virtual-cycle profile
package main

import (
	"flag"
	"fmt"
	"os"

	"wasmbench/internal/browser"
	"wasmbench/internal/obsv"
)

func main() {
	browserFlag := flag.String("browser", "chrome", "browser profile: chrome, firefox, edge")
	platformFlag := flag.String("platform", "desktop", "platform: desktop or mobile")
	noJIT := flag.Bool("no-jit", false, "disable the optimizing JIT (--no-opt)")
	tierUpThreshold := flag.Uint64("tierup-threshold", 0, "hotness (calls + loop iterations) before JIT tier-up; 0 keeps the browser profile's default")
	profileFlag := flag.Bool("profile", false, "print a per-function virtual-cycle profile")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsrun [flags] <program.js>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	plat := browser.Desktop
	if *platformFlag == "mobile" {
		plat = browser.Mobile
	}
	var prof *browser.Profile
	switch *browserFlag {
	case "chrome":
		prof = browser.Chrome(plat)
	case "firefox":
		prof = browser.Firefox(plat)
	case "edge":
		prof = browser.Edge(plat)
	default:
		fatal(fmt.Errorf("unknown browser %q", *browserFlag))
	}
	if *noJIT {
		prof.JS.JITEnabled = false
	}
	if *tierUpThreshold != 0 {
		prof.JS.TierUpThreshold = *tierUpThreshold
	}
	var coll *obsv.Collector
	if *traceOut != "" {
		coll = &obsv.Collector{}
		prof.JS.Tracer = coll
	}
	if *profileFlag {
		prof.JS.Profile = true
	}
	vm := prof.NewJSVM()
	if _, err := vm.Run(string(src)); err != nil {
		fatal(err)
	}
	for _, o := range vm.Output {
		fmt.Println(o)
	}
	if v, ok := vm.Global("__exit"); ok {
		fmt.Printf("exit: %d\n", v.ToInt32())
	}
	fmt.Printf("time: %.3f ms (%s)\n", prof.MSFromCycles(vm.Cycles()), prof.Name())
	fmt.Printf("memory: %.1f KB JS heap (peak, excl. ArrayBuffer stores %.1f KB)\n",
		float64(vm.PeakHeapBytes())/1024, float64(vm.PeakExternalBytes())/1024)
	fmt.Printf("steps: %d  gc runs: %d  tier-ups: %d\n", vm.Steps(), vm.GCCount(), vm.TierUps())
	if *profileFlag {
		fmt.Print(obsv.ProfileTable(vm.Profile()))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obsv.WriteChromeTrace(f, coll.EventsWithTruncation(), vm.Profile()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", coll.Len(), *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsrun:", err)
	os.Exit(1)
}
