# Tier-1 verification gate (see ROADMAP.md). `make check` is what CI runs.

GO ?= go

.PHONY: check build vet test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Observability overhead numbers (nil-tracer guard on the interpreter
# hot path; see internal/obsv/overhead_bench_test.go).
bench:
	$(GO) test -bench Interp -benchtime 5x -run xxx ./internal/obsv/
