# Tier-1 verification gate (see ROADMAP.md). `make check` is what CI runs.

GO ?= go

.PHONY: check build vet test race bench bench-smoke

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Performance numbers behind BENCH_perf.json: observability overhead
# (nil-tracer guard on the interpreter hot path), wasmvm dispatch
# (superinstruction fusion and the register-form optimizing tier), and the
# parallel harness grid (compile cache on/off).
bench:
	$(GO) test -bench Interp -benchtime 5x -run xxx ./internal/obsv/
	$(GO) test -bench 'Dispatch|RegTier' -benchtime 30x -run xxx ./internal/wasmvm/
	$(GO) test -bench RunCellsMultiProfile -benchtime 5x -run xxx ./internal/harness/

# One-iteration sweep of every benchmark so a broken -bench path fails CI
# without waiting for steady-state numbers (baselines live in BENCH_perf.json).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
