# Tier-1 verification gate (see ROADMAP.md). `make check` is what CI runs.

GO ?= go

.PHONY: check build vet test race bench bench-smoke

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Observability overhead numbers (nil-tracer guard on the interpreter
# hot path; see internal/obsv/overhead_bench_test.go).
bench:
	$(GO) test -bench Interp -benchtime 5x -run xxx ./internal/obsv/

# One-iteration sweep of every benchmark so a broken -bench path fails CI
# without waiting for steady-state numbers (baselines live in BENCH_perf.json).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
