# Tier-1 verification gate (see ROADMAP.md). `make check` is what CI runs.

GO ?= go

.PHONY: check build vet test race bench bench-smoke difftest-smoke faults-smoke telemetry-smoke pool-smoke serve-smoke fuzz

check: vet build race bench-smoke difftest-smoke faults-smoke telemetry-smoke pool-smoke serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Performance numbers behind BENCH_perf.json: observability overhead
# (nil-tracer guard on the interpreter hot path), wasmvm dispatch
# (superinstruction fusion, the register-form optimizing tier, and the AOT
# superblock tier), instantiation (cold vs snapshot clone vs reset), the
# memory checksum, and the parallel harness grid (compile cache on/off,
# instance pools fresh and steady-state).
bench:
	$(GO) test -bench 'Interp|RegistryCounter' -benchtime 5x -run xxx ./internal/obsv/
	$(GO) test -bench 'Dispatch|RegTier|AOTTier' -benchtime 30x -run xxx ./internal/wasmvm/
	$(GO) test -bench SnapshotRestore -benchtime 100x -run xxx ./internal/wasmvm/
	$(GO) test -bench MemChecksum -benchtime 20x -run xxx ./internal/compiler/
	$(GO) test -bench RunCellsMultiProfile -benchtime 5x -run xxx ./internal/harness/

# One-iteration sweep of every benchmark so a broken -bench path fails CI
# without waiting for steady-state numbers (baselines live in BENCH_perf.json).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Differential smoke: 200 generated programs from fixed seeds plus every
# committed corpus regression, across the full backend matrix (including the
# AOT superblock configs). Deterministic; any divergence fails CI. (The
# -race gate above reruns a reduced range.)
difftest-smoke:
	$(GO) test ./internal/difftest -run 'TestSmoke|TestCorpus|TestKernelOptInvariance' -count=1

# Fault drill: a fixed-seed fault plan that fires every injection point at
# least once and checks the harness retry/degrade/quarantine accounting,
# plus the benchserve admission drills (serve.admit / serve.shed must
# surface as typed responses, in-process and over HTTP, never hangs).
# Deterministic (same seed ⇒ same counts and outcomes) and race-clean.
faults-smoke:
	$(GO) test ./internal/harness -run TestFaultSmoke -count=1 -race
	$(GO) test ./internal/serve -run 'TestServeFaultDrill|TestServeFaultDrillHTTP' -count=1 -race

# Telemetry smoke: an in-process telemetry server over a real 4-cell sweep,
# with all five endpoints (/metrics, /debug/trace, /debug/profile,
# /debug/cells, /healthz) scraped and checked for well-formedness, plus the
# zero-overhead proof for disabled telemetry.
telemetry-smoke:
	$(GO) test ./internal/telemetry -run TestTelemetrySmoke -count=1
	$(GO) test ./internal/obsv -run 'TestNilTelemetryAllocationFree|TestInstrumentsPreserveVirtualMetrics' -count=1

# Pool drill: snapshot/pool determinism (clone, reset, and pooled sweeps
# byte-identical to cold instantiation) plus concurrent checkout under the
# race detector and the pooled differential-oracle configs.
pool-smoke:
	$(GO) test ./internal/wasmvm -run 'TestSnapshot|TestPool|TestReset' -count=1 -race
	$(GO) test ./internal/harness -run 'TestPoolSmoke|TestPoolSharedAcrossRuns|TestPoolTelemetry' -count=1 -race

# Serve smoke: the overload-safety and measurement-honesty proofs under
# the race detector (fixed-seed HTTP burst past the queue bound with
# /healthz probed mid-burst, drain-cancels-in-flight, byte-identical
# warm-pool metrics), then an end-to-end benchserve -loadgen -self burst
# that must shed, account for every request, and drain cleanly.
serve-smoke:
	$(GO) test ./internal/serve -run 'TestServeSmoke|TestServeDrainCancelsInFlight|TestServeByteIdentical' -count=1 -race
	$(GO) run ./cmd/benchserve -loadgen -self -requests 60 -rate 300 -queue 4 -serve-workers 2 \
		-loadgen-bench atax,bicg,mvt -loadgen-sizes XS -seed 7 \
		-faults 'wasm.stall:count=6,stall=150ms' -expect-shed

# Open-ended differential fuzzing (not part of check). Override FUZZTIME
# and FUZZ to steer, e.g. make fuzz FUZZ=FuzzDiffOptLevels FUZZTIME=5m.
FUZZTIME ?= 60s
FUZZ ?= FuzzDiffBackends
fuzz:
	$(GO) test ./internal/difftest -fuzz $(FUZZ) -fuzztime $(FUZZTIME)
