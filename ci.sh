#!/bin/sh
# Tier-1 verification gate, for environments without make.
set -eux
go vet ./...
go build ./...
go test -race ./...
# Bench smoke: every benchmark must still run for one iteration.
go test -run=NONE -bench=. -benchtime=1x ./...
# Differential smoke: 200 fixed-seed generated programs + the regression
# corpus through the cross-backend oracle, without -race (full matrix,
# including the AOT superblock configs).
go test ./internal/difftest -run 'TestSmoke|TestCorpus|TestKernelOptInvariance' -count=1
# Fault drill: fixed-seed fault plan covering every injection point, with
# retry/degrade/quarantine accounting checked; deterministic and race-clean.
# The serve drills prove injected admission faults (serve.admit/serve.shed)
# surface as typed responses — 503/429 over HTTP — never hangs.
go test ./internal/harness -run TestFaultSmoke -count=1 -race
go test ./internal/serve -run 'TestServeFaultDrill|TestServeFaultDrillHTTP' -count=1 -race
# Telemetry smoke: in-process server over a real sweep, all five endpoints
# well-formed, plus the disabled-telemetry zero-overhead proof.
go test ./internal/telemetry -run TestTelemetrySmoke -count=1
go test ./internal/obsv -run 'TestNilTelemetryAllocationFree|TestInstrumentsPreserveVirtualMetrics' -count=1
# Pool drill: snapshot/pool determinism (clone, reset, pooled sweeps
# byte-identical to cold instantiation) and concurrent checkout, race-clean.
go test ./internal/wasmvm -run 'TestSnapshot|TestPool|TestReset' -count=1 -race
go test ./internal/harness -run 'TestPoolSmoke|TestPoolSharedAcrossRuns|TestPoolTelemetry' -count=1 -race
# Serve smoke: overload safety (fixed-seed burst past the queue bound must
# shed explicitly while /healthz stays live and every request terminates),
# drain-cancels-in-flight, byte-identical warm-pool metrics, then an
# end-to-end benchserve -loadgen -self burst with the accounting identity.
go test ./internal/serve -run 'TestServeSmoke|TestServeDrainCancelsInFlight|TestServeByteIdentical' -count=1 -race
go run ./cmd/benchserve -loadgen -self -requests 60 -rate 300 -queue 4 -serve-workers 2 \
  -loadgen-bench atax,bicg,mvt -loadgen-sizes XS -seed 7 \
  -faults 'wasm.stall:count=6,stall=150ms' -expect-shed
