#!/bin/sh
# Tier-1 verification gate, for environments without make.
set -eux
go vet ./...
go build ./...
go test -race ./...
# Bench smoke: every benchmark must still run for one iteration.
go test -run=NONE -bench=. -benchtime=1x ./...
# Differential smoke: 200 fixed-seed generated programs + the regression
# corpus through the cross-backend oracle, without -race (full matrix,
# including the AOT superblock configs).
go test ./internal/difftest -run 'TestSmoke|TestCorpus|TestKernelOptInvariance' -count=1
# Fault drill: fixed-seed fault plan covering every injection point, with
# retry/degrade/quarantine accounting checked; deterministic and race-clean.
go test ./internal/harness -run TestFaultSmoke -count=1 -race
# Telemetry smoke: in-process server over a real sweep, all five endpoints
# well-formed, plus the disabled-telemetry zero-overhead proof.
go test ./internal/telemetry -run TestTelemetrySmoke -count=1
go test ./internal/obsv -run 'TestNilTelemetryAllocationFree|TestInstrumentsPreserveVirtualMetrics' -count=1
# Pool drill: snapshot/pool determinism (clone, reset, pooled sweeps
# byte-identical to cold instantiation) and concurrent checkout, race-clean.
go test ./internal/wasmvm -run 'TestSnapshot|TestPool|TestReset' -count=1 -race
go test ./internal/harness -run 'TestPoolSmoke|TestPoolSharedAcrossRuns|TestPoolTelemetry' -count=1 -race
