package wasmbench

// One testing.B benchmark per table and figure in the paper's evaluation
// (§4). Each runs the corresponding experiment and reports its headline
// series via b.ReportMetric, so `go test -bench .` regenerates the paper's
// rows. Benchmarks default to a representative benchmark subset to keep
// -bench runs minutes-scale; set WASMBENCH_FULL=1 for the full 41-program
// suite (what cmd/benchtab runs).

import (
	"os"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/core"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
	"wasmbench/internal/wasmvm"
)

// benchOpts returns the experiment scope: a spread of PolyBenchC and
// CHStone programs by default, the full suite with WASMBENCH_FULL=1.
func benchOpts(tb testing.TB) core.Options {
	if os.Getenv("WASMBENCH_FULL") != "" {
		return core.Options{}
	}
	names := []string{"gemm", "covariance", "jacobi-2d", "atax", "floyd-warshall",
		"ADPCM", "SHA", "DFMUL", "MIPS"}
	var bs []*benchsuite.Benchmark
	for _, n := range names {
		b, err := benchsuite.ByName(n)
		if err != nil {
			tb.Fatal(err)
		}
		bs = append(bs, b)
	}
	return core.Options{Benchmarks: bs}
}

// BenchmarkTable2OptLevels regenerates Table 2 (and the Fig. 5/6 series):
// execution time, code size, and memory across -O1/-O2/-Oz/-Ofast for JS,
// Wasm, and x86.
func BenchmarkTable2OptLevels(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunOptLevels(opts)
		if err != nil {
			b.Fatal(err)
		}
		g := r.Geomeans()
		b.ReportMetric(g["time"]["wasm"][ir.O1], "wasm-O1/O2")
		b.ReportMetric(g["time"]["wasm"][ir.Ofast], "wasm-Ofast/O2")
		b.ReportMetric(g["time"]["wasm"][ir.Oz], "wasm-Oz/O2")
		b.ReportMetric(g["time"]["x86"][ir.O1], "x86-O1/O2")
		b.ReportMetric(g["time"]["x86"][ir.Oz], "x86-Oz/O2")
		b.ReportMetric(g["time"]["js"][ir.Oz], "js-Oz/O2")
	}
}

// BenchmarkFig6X86Opt isolates the x86 backend sweep of Fig. 6.
func BenchmarkFig6X86Opt(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunOptLevels(opts)
		if err != nil {
			b.Fatal(err)
		}
		g := r.Geomeans()
		b.ReportMetric(g["time"]["x86"][ir.O1], "time-O1/O2")
		b.ReportMetric(g["time"]["x86"][ir.Ofast], "time-Ofast/O2")
		b.ReportMetric(g["size"]["x86"][ir.Oz], "size-Oz/O2")
	}
}

// BenchmarkFig7AdpcmOfast regenerates the Fig. 7 ablation: dynamic stores
// kept by -Ofast vs -O2 on a dead-global-store kernel.
func BenchmarkFig7AdpcmOfast(b *testing.B) {
	src := `
int result[512];
int sink;
int main() {
	int i;
	for (i = 0; i < 5000; i++) {
		result[i % 512] = i * 3;
		sink = sink + (i & 7);
	}
	return sink;
}
`
	for i := 0; i < b.N; i++ {
		stores := map[ir.OptLevel]float64{}
		for _, lv := range []ir.OptLevel{ir.O2, ir.Ofast} {
			art, err := compiler.Compile(src, compiler.Options{Opt: lv, ModuleName: "fig7"})
			if err != nil {
				b.Fatal(err)
			}
			res, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			stores[lv] = float64(res.WasmStats.Counts[wasmvm.CStore])
		}
		b.ReportMetric(stores[ir.O2], "stores-O2")
		b.ReportMetric(stores[ir.Ofast], "stores-Ofast")
	}
}

// BenchmarkFig8CovarianceO1 regenerates the Fig. 8 ablation: -O2's
// rematerialized integral f64 constants vs -O1's local reads, measured as
// dynamic constant-materialization instructions.
func BenchmarkFig8CovarianceO1(b *testing.B) {
	bench, err := benchsuite.ByName("covariance")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		consts := map[ir.OptLevel]float64{}
		for _, lv := range []ir.OptLevel{ir.O1, ir.O2} {
			art, err := compiler.Compile(bench.Source, compiler.Options{
				Opt: lv, Defines: bench.Defines(benchsuite.M), ModuleName: "fig8",
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			consts[lv] = float64(res.WasmStats.Counts[wasmvm.CConst])
		}
		b.ReportMetric(consts[ir.O1], "const-ops-O1")
		b.ReportMetric(consts[ir.O2], "const-ops-O2")
	}
}

// BenchmarkCompilersCheerpVsEmscripten regenerates the §4.2.2 comparison.
func BenchmarkCompilersCheerpVsEmscripten(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunCompilerCompare(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpeedupGmean, "emscripten-speedup")
		b.ReportMetric(r.MemRatio, "emscripten-mem-ratio")
	}
}

// BenchmarkFig9InputSizes regenerates Tables 3/4 and the Fig. 9 series on
// desktop Chrome.
func BenchmarkFig9InputSizes(b *testing.B) {
	opts := benchOpts(b)
	if os.Getenv("WASMBENCH_FULL") == "" {
		opts.Sizes = []benchsuite.Size{benchsuite.XS, benchsuite.M, benchsuite.XL}
	}
	for i := 0; i < b.N; i++ {
		r, err := core.RunInputSizes(browser.Chrome(browser.Desktop), opts)
		if err != nil {
			b.Fatal(err)
		}
		stats := r.SpeedStats()
		b.ReportMetric(stats[benchsuite.XS].AllGmean, "XS-gmean")
		b.ReportMetric(stats[benchsuite.XL].AllGmean, "XL-gmean")
		mem := r.MemStats()
		b.ReportMetric(mem[benchsuite.XL][1]/1024, "XL-wasm-MB")
		b.ReportMetric(mem[benchsuite.XL][0], "XL-js-KB")
	}
}

// BenchmarkTable5FirefoxSizes regenerates Tables 5/6 on desktop Firefox.
func BenchmarkTable5FirefoxSizes(b *testing.B) {
	opts := benchOpts(b)
	if os.Getenv("WASMBENCH_FULL") == "" {
		opts.Sizes = []benchsuite.Size{benchsuite.XS, benchsuite.M, benchsuite.XL}
	}
	for i := 0; i < b.N; i++ {
		r, err := core.RunInputSizes(browser.Firefox(browser.Desktop), opts)
		if err != nil {
			b.Fatal(err)
		}
		stats := r.SpeedStats()
		b.ReportMetric(float64(stats[benchsuite.XS].SDCount), "XS-js-wins")
		b.ReportMetric(stats[benchsuite.XL].AllGmean, "XL-gmean")
	}
}

// BenchmarkFig10JIT regenerates the Fig. 10 JIT improvement factors.
func BenchmarkFig10JIT(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunJIT(opts)
		if err != nil {
			b.Fatal(err)
		}
		var js, wasm []float64
		for _, row := range r.Rows {
			js = append(js, row.JS)
			wasm = append(wasm, row.Wasm)
		}
		b.ReportMetric(harness.GeoMean(js), "js-jit-speedup")
		b.ReportMetric(harness.GeoMean(wasm), "wasm-jit-speedup")
	}
}

// BenchmarkTable7Tiers regenerates the Table 7 tier configurations.
func BenchmarkTable7Tiers(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable7(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Suite == "overall" {
				b.ReportMetric(row.BasicOnly, row.Browser+"-basic")
				b.ReportMetric(row.OptOnly, row.Browser+"-opt")
			}
		}
	}
}

// BenchmarkTable8Browsers regenerates the §4.5 six-deployment aggregate
// (and the Fig. 12/13 per-benchmark series).
func BenchmarkTable8Browsers(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunBrowsersPlatforms(opts)
		if err != nil {
			b.Fatal(err)
		}
		var chromeW, chromeJ float64
		for _, c := range r.Cells {
			if c.Profile == "chrome-desktop" {
				chromeW, chromeJ = c.ExecMSWasm, c.ExecMSJS
			}
		}
		for _, c := range r.Cells {
			if c.Profile == "chrome-desktop" || chromeW == 0 {
				continue
			}
			if c.Profile == "firefox-desktop" {
				b.ReportMetric(c.ExecMSWasm/chromeW, "firefox-wasm-vs-chrome")
				b.ReportMetric(c.ExecMSJS/chromeJ, "firefox-js-vs-chrome")
			}
			if c.Profile == "edge-desktop" {
				b.ReportMetric(c.ExecMSWasm/chromeW, "edge-wasm-vs-chrome")
			}
		}
	}
}

// BenchmarkContextSwitch regenerates the §4.5 Wasm↔JS boundary
// microbenchmark.
func BenchmarkContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.RunCtxSwitch()
		b.ReportMetric(r.NS["firefox"]/r.NS["chrome"], "firefox-vs-chrome")
		b.ReportMetric(r.NS["chrome"], "chrome-ns")
	}
}

// BenchmarkTable9ManualJS regenerates the §4.6.1 manual-JavaScript rows.
func BenchmarkTable9ManualJS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.RunManualJS()
		if err != nil {
			b.Fatal(err)
		}
		var slowdowns []float64
		for _, row := range r.Rows {
			slowdowns = append(slowdowns, row.ManualMS/row.CheerpJSMS)
		}
		b.ReportMetric(harness.GeoMean(slowdowns), "manual-vs-cheerp")
	}
}

// BenchmarkTable10RealWorld regenerates the §4.6.2 application rows.
func BenchmarkTable10RealWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.RunRealWorld()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.App == "FFmpeg" {
				b.ReportMetric(row.Ratio, "ffmpeg-wasm/js")
			}
			if row.App == "Long.js" && row.Op == "multiplication" {
				b.ReportMetric(row.Ratio, "longjs-mul-wasm/js")
			}
		}
	}
}

// BenchmarkTable12OpCounts regenerates the Appendix D operation counts.
func BenchmarkTable12OpCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable12()
		if err != nil {
			b.Fatal(err)
		}
		var jsTotal, wasmTotal float64
		for _, row := range r.Rows {
			if row.Bench != "multiplication" {
				continue
			}
			if row.Lang == "JS" {
				jsTotal = float64(row.Total)
			} else {
				wasmTotal = float64(row.Total)
			}
		}
		b.ReportMetric(jsTotal/wasmTotal, "js/wasm-op-blowup")
	}
}

// BenchmarkFig11FiveNumber regenerates the Appendix B summaries.
func BenchmarkFig11FiveNumber(b *testing.B) {
	opts := benchOpts(b)
	for i := 0; i < b.N; i++ {
		r, err := core.RunOptLevels(opts)
		if err != nil {
			b.Fatal(err)
		}
		var vals []float64
		for _, row := range r.Rows {
			vals = append(vals, row.TimeWasm[ir.Oz])
		}
		fn := harness.Summarize(vals)
		b.ReportMetric(fn.Median, "wasm-Oz/O2-median")
	}
}

// BenchmarkVMThroughput measures real wall-clock interpreter throughput of
// the two VMs on a hot kernel (engineering sanity, not a paper figure).
func BenchmarkVMThroughput(b *testing.B) {
	bench, err := benchsuite.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	art, err := compiler.Compile(bench.Source, compiler.Options{
		Opt: ir.O2, Defines: bench.Defines(benchsuite.M), ModuleName: "gemm",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("wasm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Steps), "instrs")
		}
	})
	b.Run("x86", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiler.RunX86(art, codegen.DefaultX86Config()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
