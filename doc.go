// Package wasmbench is a from-scratch Go reproduction of the measurement
// study "Understanding the Performance of WebAssembly Applications"
// (Yan, Tu, Zhao, Zhou, Wang — ACM IMC 2021).
//
// The repository implements the entire measured stack: a C-subset compiler
// with the paper's LLVM-style optimization levels (internal/minic,
// internal/ir, internal/codegen), a WebAssembly binary toolchain and tiered
// virtual machine (internal/wasm, internal/wasmvm), a JavaScript engine
// with garbage collection and JIT tiering (internal/jsvm), browser and
// platform environment models (internal/browser), the 41 PolyBenchC +
// CHStone subject programs plus the manual-JS and real-world application
// sets (internal/benchsuite), and the measurement harness and experiment
// suite that regenerate every table and figure in the paper's evaluation
// (internal/harness, internal/core).
//
// Entry points:
//
//	cmd/benchtab   regenerate any paper table/figure
//	cmd/minicc     the C-subset compiler
//	cmd/wasmrun    run a .wasm module under a browser profile
//	cmd/jsrun      run a JS program on the study's engine
//	examples/...   runnable walkthroughs of the public surface
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package wasmbench
