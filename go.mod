module wasmbench

go 1.22
