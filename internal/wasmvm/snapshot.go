package wasmvm

// This file implements post-init instance snapshots — the Wizer-style
// pre-initialization answer to the paper's Finding 4: Wasm linear memory
// never shrinks, so at service scale the per-request cost that matters is
// instantiation, not compilation. A Snapshot captures a freshly
// instantiated VM's state once — post-init linear memory, globals, and the
// validated/lowered/fused function bodies — and NewVM clones runnable
// instances from it by arena copy, skipping wasm.Validate, lowerFunc, and
// fuseFunc entirely. Reset returns a finished instance to the snapshot
// state in place, so pools recycle instances instead of discarding them.
//
// Determinism contract (the same one regalloc.go and aot.go established):
// snapshot restore is a *host-time* optimization only. Every clone and
// every Reset re-applies the full virtual instantiation charge —
// InstantiateCost, DecodePerByte×binSize, and the tier policy's compile
// charge — exactly as Instantiate() computes it, so cycles, steps,
// tallies, profiles, and traces are byte-identical to a cold New() +
// Instantiate() under the same Config.
//
// Sharing rules, derived from what the dispatch tiers capture:
//
//   - code []lop and heights []int32 are immutable after New() (fusion
//     rewrites them at load, before capture) — shared across all clones.
//   - regCode []rop is pure data, never written by runReg, but its costs
//     are precomputed from Config.OptCost — shareable only between
//     instances of the same config shape (the pool's warm-body store).
//   - AOT superblock closures capture the owning VM's globals slice and
//     *Memory at translation time — instance-bound, never shared. Reset
//     therefore restores globals and memory IN PLACE, which keeps a
//     recycled instance's retained AOT body valid.

import (
	"errors"
	"fmt"

	"wasmbench/internal/wasm"
)

// snapFunc is the per-function slice of a snapshot: the immutable lowered
// body shared by every clone, plus the identity fields New() derives.
type snapFunc struct {
	name    string
	typ     wasm.FuncType
	nLocals int
	code    []lop
	heights []int32
}

// Snapshot is an immutable post-init image of an instantiated module,
// valid for cloning under any Config with the same effective-fusion
// setting (fusion rewrites the shared lowered code; everything else in a
// Config is applied per clone). Snapshots are safe for concurrent use.
type Snapshot struct {
	module   *wasm.Module
	binSize  int
	fusionOn bool // effective fusion at capture (!DisableFusion && StepLimit == 0)
	fused    int
	funcs    []snapFunc
	hasMem   bool
	memBytes []byte // private copy of the post-init linear memory
	globals  []uint64
}

// fusionEffective reports whether a config actually fuses at load time
// (fusion is skipped under a step limit; see Config.DisableFusion).
func fusionEffective(cfg Config) bool {
	return !cfg.DisableFusion && cfg.StepLimit == 0
}

// Snapshot captures the VM's post-init state. It is valid only on a
// freshly instantiated VM — after Instantiate() and before any call — so
// the image is exactly what every cold instance starts from. The capture
// also marks the VM itself as resettable (Reset restores it to this
// image), so the origin instance can join a pool alongside its clones.
func (vm *VM) Snapshot() (*Snapshot, error) {
	if !vm.inited {
		return nil, errors.New("wasmvm: snapshot of an uninstantiated module")
	}
	if vm.depth != 0 || vm.stats.Steps != 0 {
		return nil, errors.New("wasmvm: snapshot requires a freshly instantiated VM (no calls yet)")
	}
	s := &Snapshot{
		module:   vm.module,
		binSize:  vm.binSize,
		fusionOn: fusionEffective(vm.cfg),
		fused:    vm.fused,
		funcs:    make([]snapFunc, len(vm.funcs)),
		globals:  append([]uint64(nil), vm.globals...),
	}
	for i := range vm.funcs {
		cf := &vm.funcs[i]
		s.funcs[i] = snapFunc{
			name:    cf.name,
			typ:     cf.typ,
			nLocals: cf.nLocals,
			code:    cf.code,
			heights: cf.heights,
		}
	}
	if vm.mem != nil {
		s.hasMem = true
		s.memBytes = append([]byte(nil), vm.mem.Bytes()...)
	}
	vm.snap = s
	return s, nil
}

// NewVM clones a runnable instance from the snapshot under cfg,
// byte-identical in every virtual metric to New() + Instantiate() with the
// same cfg. The clone shares the snapshot's lowered code and copies only
// the mutable arenas (linear memory, globals). cfg must agree with the
// snapshot on effective fusion — the one config axis baked into the shared
// code; everything else (cost tables, tier policy, page caps, attachments)
// is applied fresh here.
func (s *Snapshot) NewVM(cfg Config) (*VM, error) {
	if fusionEffective(cfg) != s.fusionOn {
		return nil, fmt.Errorf("wasmvm: snapshot fusion mismatch (snapshot fused=%v)", s.fusionOn)
	}
	if cfg.CallDepthLimit == 0 {
		cfg.CallDepthLimit = 10000
	}
	if cfg.MaxPages == 0 {
		cfg.MaxPages = 65536
	}
	vm := &VM{module: s.module, cfg: cfg, binSize: s.binSize, snap: s}
	vm.tracer = cfg.Tracer
	vm.faults = cfg.Faults
	vm.inst = cfg.Instruments
	vm.profiling = cfg.Profile || cfg.Tracer != nil
	vm.funcs = make([]compiledFunc, len(s.funcs))
	for i := range s.funcs {
		sf := &s.funcs[i]
		vm.funcs[i] = compiledFunc{
			name:    sf.name,
			typ:     sf.typ,
			nLocals: sf.nLocals,
			code:    sf.code,
			heights: sf.heights,
		}
	}
	if vm.profiling {
		vm.profs = make([]funcProf, len(vm.funcs))
	}
	vm.fused = s.fused
	if vm.inst != nil {
		vm.inst.FusedPairs.Add(float64(vm.fused))
	}
	vm.regEnabled = !cfg.DisableRegTier && cfg.StepLimit == 0
	vm.aotEnabled = !cfg.DisableAOTTier && vm.regEnabled
	vm.imports = make([]HostFunc, len(s.module.Imports))
	if s.hasMem {
		m := s.module.Mem
		maxP := cfg.MaxPages
		if m.HasMax && m.Max < maxP {
			maxP = m.Max
		}
		vm.mem = NewMemory(uint32(len(s.memBytes)/PageSize), maxP, cfg.GrowGranularityPages)
		copy(vm.mem.Bytes(), s.memBytes)
	}
	vm.globals = append([]uint64(nil), s.globals...)
	vm.applyInstantiateCharges()
	vm.inited = true
	return vm, nil
}

// Reset restores a snapshot-backed VM to its post-init image in place:
// linear memory truncates back to the snapshot page count (retaining the
// grown backing array as an arena for the next run), globals are copied
// into the same backing slice, and every execution counter returns to the
// post-Instantiate state, including the re-applied virtual instantiation
// charge. Translated register and AOT bodies are retained — AOT closures
// captured this instance's globals slice and *Memory, which is exactly why
// the restore is in-place — but their tried flags clear, so the next run
// replays translation counters, fault checks, and trace events
// byte-identically to a cold instance while skipping the translation work.
func (vm *VM) Reset() error {
	s := vm.snap
	if s == nil {
		return errors.New("wasmvm: Reset on a VM without a snapshot")
	}
	if vm.depth != 0 {
		return errors.New("wasmvm: Reset during an active call")
	}
	if vm.mem != nil {
		vm.mem.restore(s.memBytes)
	}
	copy(vm.globals, s.globals)
	for i := range vm.funcs {
		cf := &vm.funcs[i]
		cf.hotness = 0
		cf.tieredUp = false
		cf.regTried = false
		cf.aotTried = false
	}
	vm.stack = vm.stack[:0]
	vm.locals = vm.locals[:0]
	vm.cycles = 0
	vm.stats = Stats{}
	vm.tally = [256]uint64{}
	for i := range vm.profs {
		vm.profs[i] = funcProf{}
	}
	vm.lastFlush = Stats{}
	vm.childCycles = 0
	vm.regBuilt = 0
	vm.aotBuilt = 0
	vm.aotBlockCount = 0
	vm.aotErr = nil
	vm.aotRb = nil
	vm.applyInstantiateCharges()
	return nil
}

// attach swaps the per-run attachments (tracer, profiling, fault plan,
// instruments) onto a pooled instance at checkout, mirroring what New()
// wires from a cold config. The FusedPairs publication matches the cold
// path too: every cold cell constructs a VM and publishes its fused count
// once, so every pooled checkout does the same.
func (vm *VM) attach(cfg Config) {
	vm.cfg.Tracer = cfg.Tracer
	vm.cfg.Profile = cfg.Profile
	vm.cfg.Faults = cfg.Faults
	vm.cfg.Instruments = cfg.Instruments
	vm.tracer = cfg.Tracer
	vm.faults = cfg.Faults
	vm.inst = cfg.Instruments
	vm.profiling = cfg.Profile || cfg.Tracer != nil
	if vm.profiling && vm.profs == nil {
		vm.profs = make([]funcProf, len(vm.funcs))
	}
	if vm.inst != nil {
		vm.inst.FusedPairs.Add(float64(vm.fused))
	}
}
