package wasmvm

import "wasmbench/internal/wasm"

// Superinstruction fusion: a load-time pass over lowered code that replaces
// the first instruction of a common adjacent pair with a fused pseudo-op
// executing both, so the dispatch loop pays one switch + bounds check + pc
// update for two instructions. The pairs are the interpreter-tax hot spots
// of stack machines: operand shuffles (local.get local.get), immediates
// feeding arithmetic (const binop), address computation (local.get load),
// and loop exits (cmp br_if).
//
// Determinism contract: a fused pair charges exactly the virtual cycles,
// step counts, and per-class instruction counts of its two components, in
// the same order, against the same tier cost table — so Cycles(), Stats(),
// profiles, and trace events are byte-identical with fusion on or off.
// Only wall-clock dispatch overhead changes.
//
// The second instruction of a pair is left in place untouched: sequential
// flow skips it (pc advances by 2), while a branch landing on it executes
// it exactly as unfused code would. That makes fusion safe without any
// branch-target remapping.
//
// Fusion is skipped when Config.StepLimit is set: the step budget is
// checked once per dispatch, and a fused pair could otherwise overshoot
// the exact instruction at which the unfused interpreter stops.

// Fused pseudo-opcodes. They live above the encoded wasm opcode space
// (> 0xBF) and exist only inside lowered code — never in modules, traces,
// or encodings.
const (
	opFusedGetGet     wasm.Opcode = 0xF0 // local.get a; local.get b2
	opFusedConst32Bin wasm.Opcode = 0xF1 // i32/f32.const val; <binary op2>
	opFusedConst64Bin wasm.Opcode = 0xF2 // i64/f64.const val; <binary op2>
	opFusedGetLoad    wasm.Opcode = 0xF3 // local.get a; <load op2> offset b2
	opFusedCmpBrIf    wasm.Opcode = 0xF4 // <cmp op2>; br_if jump
)

// isBinaryNumeric reports whether op is a pure two-operand numeric opcode
// (the execNumeric binary family): comparisons through f64.copysign, minus
// the unary instructions interleaved in that range.
func isBinaryNumeric(op wasm.Opcode) bool {
	return op >= wasm.OpI32Eq && op <= wasm.OpF64Copysign && !isUnaryNumeric(op)
}

// isCmpLike reports whether op leaves a boolean on the stack and cannot
// trap — the class of ops fusable with a following br_if.
func isCmpLike(op wasm.Opcode) bool {
	return op == wasm.OpI32Eqz || op == wasm.OpI64Eqz ||
		(op >= wasm.OpI32Eq && op <= wasm.OpF64Ge)
}

func isLoadOp(op wasm.Opcode) bool {
	return op >= wasm.OpI32Load && op <= wasm.OpI64Load32U
}

// fuseFunc rewrites code in place, greedily fusing non-overlapping adjacent
// pairs left to right, and returns the number of pairs fused.
func fuseFunc(code []lop) int {
	fused := 0
	for pc := 0; pc+1 < len(code); pc++ {
		in, next := &code[pc], &code[pc+1]
		switch {
		case isCmpLike(in.op) && next.op == wasm.OpBrIf:
			in.op2 = in.op
			in.op = opFusedCmpBrIf
			in.jump = next.jump
		case in.op == wasm.OpLocalGet && next.op == wasm.OpLocalGet:
			in.op = opFusedGetGet
			in.b2 = next.a
		case (in.op == wasm.OpI32Const || in.op == wasm.OpF32Const) && isBinaryNumeric(next.op):
			in.op = opFusedConst32Bin
			in.op2 = next.op
		case (in.op == wasm.OpI64Const || in.op == wasm.OpF64Const) && isBinaryNumeric(next.op):
			in.op = opFusedConst64Bin
			in.op2 = next.op
		case in.op == wasm.OpLocalGet && isLoadOp(next.op):
			in.op = opFusedGetLoad
			in.op2 = next.op
			in.b2 = next.b
		default:
			continue
		}
		in.class2 = next.class
		fused++
		pc++ // greedy: the partner stays intact but is skipped by flow
	}
	return fused
}
