package wasmvm

import (
	"wasmbench/internal/faultinject"
	"wasmbench/internal/wasm"
)

// This file implements the register-form translation behind the optimizing
// tier. The idea mirrors what LiftOff-vs-TurboFan means for dispatch cost
// in the engines the paper studies (§4.4.2): the basic tier interprets
// stack bytecode, paying a push/pop on almost every instruction, while the
// optimizing tier runs code whose operands live in fixed slots.
//
// Wasm validation guarantees the operand-stack height at every pc is a
// static property, so each stack slot can be assigned a fixed virtual
// register at translation time: slot at height h lives in frame register
// nLocals+h, where the frame is a flat slice holding locals followed by
// the register file. lowerFunc records the entry height of every
// instruction in compiledFunc.heights; translateReg turns each lowered
// instruction into an rop that names its operand registers directly.
//
// The translation is deliberately 1:1 — regCode[pc] executes exactly
// code[pc] — so branch targets survive unchanged and the stack engine can
// switch to the register body at any label (OSR) without a pc mapping.
// Superinstructions (fuse.go) translate into fused register forms that
// keep the two-component cost accounting.
//
// Determinism contract: executing regCode must charge the same cycles (in
// the same float-addition order), the same steps, the same cost-class
// tallies, and emit the same trace events as executing code under the
// optimizing cost table. Costs are precomputed from OptCost only because
// the register body runs exclusively in the optimizing tier.

// rkind discriminates register-form instructions. A handful of hot
// opcode specializations (rAddI32, rGeS32BrIf, ...) inline their operation
// into the dispatch arm; everything else funnels through the shared
// numUnary/numBinary/memLoad/memStore evaluators.
type rkind uint8

const (
	rDead rkind = iota // statically unreachable slot (never executed)
	rNop               // block/loop/end/nop/drop: charge only
	rMove              // local.get/set/tee
	rConst
	rGlobalGet
	rGlobalSet
	rSelect
	rUn      // unary numeric/conversion via numUnary
	rBin     // binary numeric via numBinary
	rExtI64S // i64.extend_i32_s
	rAddI32
	rSubI32
	rMulI32
	rAddI64
	rAddF64
	rMulF64
	rShlI32
	rAndI32
	rXorI32
	rLoad
	rStore
	rMemSize
	rMemGrow
	rCall
	rIf   // branch when condition register is zero
	rJump // else/br/return: unconditional
	rBrIf
	rBrTable
	rUnreachable
	rMove2      // fused local.get+local.get
	rConstBin   // fused const+binop via numBinary
	rConstAdd32 // fused i32.const+i32.add
	rGetLoad    // fused local.get+load
	rCmpBrIf    // fused cmp+br_if via numUnary/numBinary
	rGeS32BrIf  // fused i32.ge_s+br_if
	rLtS32BrIf  // fused i32.lt_s+br_if
)

// rbranch is a resolved branch target in register form. Wasm labels carry
// at most one value here (multi-value is bailed at translation), so the
// stack engine's copy-and-truncate becomes a single register move from src
// to dst when keep is 1.
type rbranch struct {
	pc   int32
	src  int32 // register holding the carried value at the branch site
	dst  int32 // register the target expects it in
	keep uint8
}

// rop is one register-form instruction. Registers index the frame slice
// (locals at 0..nLocals-1, operand slots above). cost/cost2 are the
// OptCost charges of the components, precomputed so the dispatch loop
// avoids a table lookup.
type rop struct {
	kind    rkind
	op      wasm.Opcode
	op2     wasm.Opcode
	class   CostClass
	class2  CostClass
	r1      int32 // first operand register (or local index / param count)
	r2      int32 // second operand register (-1 when absent)
	rd      int32 // destination register (or call argument base)
	a       uint32
	b       uint32 // memory offset
	val     int64  // constant, pre-packed to the raw representation
	cost    float64
	cost2   float64
	jump    rbranch
	targets []rbranch // br_table (default last)
}

// regBody returns cf's register-form body, translating it on first use.
// A nil result means translation bailed (the stack loop keeps serving the
// function; only dispatch speed is affected, never metrics).
func (vm *VM) regBody(cf *compiledFunc) []rop {
	if !cf.regTried {
		cf.regTried = true
		if vm.faults != nil && vm.faults.Fire(faultinject.WasmRegTranslate, cf.name) {
			// Injected translation failure: regCode stays nil, so the stack
			// loop serves the function permanently — the same fallback as a
			// natural conservative bail, with identical metrics. A body
			// retained across a snapshot Reset (and the AOT form built from
			// it) is dropped too, so the denial behaves exactly as on a
			// cold instance.
			vm.emitFault(faultinject.WasmRegTranslate, vm.cycles)
			cf.regCode = nil
			cf.aotBlocks, cf.aotEntry = nil, nil
			return nil
		}
		// A non-nil regCode here was retained across a snapshot Reset (or
		// seeded from a pool's warm-body store): translation is skipped,
		// but the counters below replay so translation accounting stays
		// byte-identical to a cold instance.
		if cf.regCode == nil {
			cf.regCode = translateReg(vm.module, cf, &vm.cfg.OptCost)
		}
		if cf.regCode != nil {
			vm.regBuilt++
			if vm.inst != nil {
				vm.inst.RegTranslated.Inc()
			}
		}
	}
	return cf.regCode
}

// translateReg lowers a function's stack bytecode to register form using
// the static entry heights recorded by lowerFunc. Returns nil if any
// construct falls outside the register model (conservative bail).
func translateReg(m *wasm.Module, cf *compiledFunc, opt *CostTable) []rop {
	code := cf.code
	heights := cf.heights
	nLocals := int32(cf.nLocals)

	// Frame capacity: every runtime stack depth is some instruction's entry
	// height, so the peak is the max recorded height plus the deepest
	// single-instruction growth (at most 2 pushes, fused get+get).
	maxH := int32(0)
	for _, h := range heights {
		if h > maxH {
			maxH = h
		}
	}
	cf.maxStack = maxH + 2

	reg := func(h int32) int32 { return nLocals + h }
	// jmp converts a branch target taken at operand height hb.
	jmp := func(t branchTarget, hb int32) (rbranch, bool) {
		if t.keep > 1 {
			return rbranch{}, false
		}
		rb := rbranch{pc: t.pc, keep: t.keep}
		if t.keep == 1 {
			rb.src = reg(hb - 1)
			rb.dst = reg(t.unwind)
		}
		return rb, true
	}

	out := make([]rop, len(code))
	for pc := range code {
		in := &code[pc]
		h := heights[pc]
		r := &out[pc]
		r.op = in.op
		r.class = in.class
		r.cost = opt[in.class]
		r.a, r.b = in.a, in.b
		r.val = in.val
		r.r2 = -1
		if h < 0 {
			r.kind = rDead
			continue
		}

		switch in.op {
		case opFusedGetGet:
			r.kind = rMove2
			r.class2 = in.class2
			r.cost2 = opt[in.class2]
			r.r1 = int32(in.a)
			r.r2 = int32(in.b2)
			r.rd = reg(h)

		case opFusedConst32Bin, opFusedConst64Bin:
			r.op2 = in.op2
			r.class2 = in.class2
			r.cost2 = opt[in.class2]
			if in.op == opFusedConst32Bin {
				r.val = int64(uint64(uint32(in.val)))
			}
			r.r1 = reg(h - 1)
			r.rd = reg(h - 1)
			if in.op2 == wasm.OpI32Add {
				r.kind = rConstAdd32
			} else {
				r.kind = rConstBin
			}

		case opFusedGetLoad:
			r.kind = rGetLoad
			r.op2 = in.op2
			r.class2 = in.class2
			r.cost2 = opt[in.class2]
			r.r1 = int32(in.a)
			r.b = in.b2
			r.rd = reg(h)

		case opFusedCmpBrIf:
			r.op2 = in.op2
			r.class2 = in.class2
			r.cost2 = opt[in.class2]
			var hb int32 // operand height when the branch is applied
			if isUnaryNumeric(in.op2) {
				r.r1 = reg(h - 1) // eqz
				hb = h - 1
			} else {
				r.r1 = reg(h - 2)
				r.r2 = reg(h - 1)
				hb = h - 2
			}
			j, ok := jmp(in.jump, hb)
			if !ok {
				return nil
			}
			r.jump = j
			switch in.op2 {
			case wasm.OpI32GeS:
				r.kind = rGeS32BrIf
			case wasm.OpI32LtS:
				r.kind = rLtS32BrIf
			default:
				r.kind = rCmpBrIf
			}

		case wasm.OpBlock, wasm.OpLoop, wasm.OpEnd, wasm.OpNop, wasm.OpDrop:
			r.kind = rNop

		case wasm.OpUnreachable:
			r.kind = rUnreachable

		case wasm.OpIf:
			r.kind = rIf
			r.r1 = reg(h - 1)
			j, ok := jmp(in.jump, h-1)
			if !ok {
				return nil
			}
			r.jump = j

		case wasm.OpElse:
			r.kind = rJump
			j, ok := jmp(in.jump, h)
			if !ok {
				return nil
			}
			r.jump = j

		case wasm.OpBr:
			r.kind = rJump
			j, ok := jmp(in.jump, h)
			if !ok {
				return nil
			}
			r.jump = j

		case wasm.OpBrIf:
			r.kind = rBrIf
			r.r1 = reg(h - 1)
			j, ok := jmp(in.jump, h-1)
			if !ok {
				return nil
			}
			r.jump = j

		case wasm.OpBrTable:
			r.kind = rBrTable
			r.r1 = reg(h - 1)
			r.targets = make([]rbranch, len(in.targets))
			for i, t := range in.targets {
				j, ok := jmp(t, h-1)
				if !ok {
					return nil
				}
				r.targets[i] = j
			}

		case wasm.OpReturn:
			r.kind = rJump
			j, ok := jmp(in.jump, h)
			if !ok {
				return nil
			}
			r.jump = j

		case wasm.OpCall:
			ct, err := m.FuncTypeOf(in.a)
			if err != nil {
				return nil
			}
			np := int32(len(ct.Params))
			r.kind = rCall
			r.r1 = np
			r.rd = reg(h - np) // arguments base; results land at the same base

		case wasm.OpSelect:
			r.kind = rSelect
			r.rd = reg(h - 3) // v1, v2, cond at rd, rd+1, rd+2

		case wasm.OpLocalGet:
			r.kind = rMove
			r.r1 = int32(in.a)
			r.rd = reg(h)
		case wasm.OpLocalSet:
			r.kind = rMove
			r.r1 = reg(h - 1)
			r.rd = int32(in.a)
		case wasm.OpLocalTee:
			r.kind = rMove
			r.r1 = reg(h - 1)
			r.rd = int32(in.a)
		case wasm.OpGlobalGet:
			r.kind = rGlobalGet
			r.rd = reg(h)
		case wasm.OpGlobalSet:
			r.kind = rGlobalSet
			r.r1 = reg(h - 1)

		case wasm.OpI32Const, wasm.OpF32Const:
			r.kind = rConst
			r.val = int64(uint64(uint32(in.val)))
			r.rd = reg(h)
		case wasm.OpI64Const, wasm.OpF64Const:
			r.kind = rConst
			r.rd = reg(h)

		case wasm.OpMemorySize:
			r.kind = rMemSize
			r.rd = reg(h)
		case wasm.OpMemoryGrow:
			r.kind = rMemGrow
			r.r1 = reg(h - 1)
			r.rd = reg(h - 1)

		default:
			switch {
			case isMemOp(in.op):
				if in.op >= wasm.OpI32Store {
					r.kind = rStore
					r.r1 = reg(h - 2) // address
					r.r2 = reg(h - 1) // value
				} else {
					r.kind = rLoad
					r.r1 = reg(h - 1)
					r.rd = reg(h - 1)
				}
			case isUnaryNumeric(in.op):
				if in.op == wasm.OpI64ExtendI32S {
					r.kind = rExtI64S
				} else {
					r.kind = rUn
				}
				r.r1 = reg(h - 1)
				r.rd = reg(h - 1)
			default: // binary numeric
				r.r1 = reg(h - 2)
				r.r2 = reg(h - 1)
				r.rd = reg(h - 2)
				switch in.op {
				case wasm.OpI32Add:
					r.kind = rAddI32
				case wasm.OpI32Sub:
					r.kind = rSubI32
				case wasm.OpI32Mul:
					r.kind = rMulI32
				case wasm.OpI64Add:
					r.kind = rAddI64
				case wasm.OpF64Add:
					r.kind = rAddF64
				case wasm.OpF64Mul:
					r.kind = rMulF64
				case wasm.OpI32Shl:
					r.kind = rShlI32
				case wasm.OpI32And:
					r.kind = rAndI32
				case wasm.OpI32Xor:
					r.kind = rXorI32
				default:
					r.kind = rBin
				}
			}
		}
	}
	return out
}
