package wasmvm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"wasmbench/internal/obsv"
	"wasmbench/internal/wasm"
)

// Trap errors.
var (
	ErrDivByZero      = errors.New("wasmvm: integer divide by zero")
	ErrIntOverflow    = errors.New("wasmvm: integer overflow")
	ErrTruncInvalid   = errors.New("wasmvm: invalid conversion to integer")
	ErrUnreachable    = errors.New("wasmvm: unreachable executed")
	ErrCallDepth      = errors.New("wasmvm: call depth limit exceeded")
	ErrUnboundImport  = errors.New("wasmvm: unbound import called")
	ErrMemoryExceeded = errors.New("wasmvm: memory limit exceeded")
)

func (vm *VM) callIndex(idx uint32, args []uint64) ([]uint64, error) {
	nImp := uint32(len(vm.module.Imports))
	if idx < nImp {
		h := vm.imports[idx]
		if h == nil {
			imp := vm.module.Imports[idx]
			return nil, fmt.Errorf("%w: %s.%s", ErrUnboundImport, imp.Module, imp.Field)
		}
		return h(vm, args)
	}
	fi := idx - nImp
	if int(fi) >= len(vm.funcs) {
		return nil, fmt.Errorf("wasmvm: function index %d out of range", idx)
	}
	return vm.exec(int(fi), args)
}

// tierCosts returns the active cost table for a function, applying tier-up
// policy on entry.
func (vm *VM) tierCosts(cf *compiledFunc) *CostTable {
	if cf.tier == TierOptOnly {
		return &vm.cfg.OptCost
	}
	return &vm.cfg.BasicCost
}

func (vm *VM) maybeTierUp(cf *compiledFunc) *CostTable {
	if vm.cfg.Mode == TierBoth && !cf.tieredUp && cf.hotness >= vm.cfg.TierUpThreshold {
		cf.tieredUp = true
		cf.tier = TierOptOnly
		vm.stats.TierUps++
		vm.cycles += vm.cfg.CompileOptPerInstr * float64(len(cf.code))
		if vm.tracer != nil {
			vm.tracer.Emit(obsv.Event{Kind: obsv.KindTierUp, TS: vm.cycles,
				Name: cf.name, Track: "wasm", A: float64(len(cf.code))})
		}
	}
	return vm.tierCosts(cf)
}

// exec runs a defined function. Locals and the operand stack live in shared
// arenas to avoid per-call allocation.
func (vm *VM) exec(fi int, args []uint64) ([]uint64, error) {
	cf := &vm.funcs[fi]
	if len(args) != len(cf.typ.Params) {
		return nil, fmt.Errorf("wasmvm: func %s expects %d args, got %d", cf.name, len(cf.typ.Params), len(args))
	}
	vm.depth++
	if vm.depth > vm.cfg.CallDepthLimit {
		vm.depth--
		return nil, ErrCallDepth
	}
	defer func() { vm.depth-- }()

	cf.hotness++
	costs := vm.maybeTierUp(cf)

	if vm.profiling {
		start := vm.cycles
		savedChild := vm.childCycles
		vm.childCycles = 0
		prof := &vm.profs[fi]
		prof.calls++
		if vm.tracer != nil {
			vm.tracer.Emit(obsv.Event{Kind: obsv.KindCallEnter, TS: start,
				Name: cf.name, Track: "wasm"})
		}
		defer func() {
			total := vm.cycles - start
			prof.totalCycles += total
			prof.selfCycles += total - vm.childCycles
			vm.childCycles = savedChild + total
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindCallExit, TS: vm.cycles,
					Name: cf.name, Track: "wasm"})
			}
		}()
	}

	// Frame setup: locals arena.
	localBase := len(vm.locals)
	vm.locals = append(vm.locals, args...)
	for i := len(args); i < cf.nLocals; i++ {
		vm.locals = append(vm.locals, 0)
	}
	defer func() { vm.locals = vm.locals[:localBase] }()
	locals := vm.locals[localBase : localBase+cf.nLocals]

	stackBase := len(vm.stack)
	defer func() { vm.stack = vm.stack[:stackBase] }()

	code := cf.code
	mem := vm.mem
	steps := vm.stats.Steps
	limit := vm.cfg.StepLimit
	if limit == 0 {
		limit = math.MaxUint64 // steps can never reach the sentinel
	}
	cycles := vm.cycles
	var counts *[NumCostClasses]uint64 = &vm.stats.Counts
	// fclass attributes the instruction mix to this function when profiling
	// is on; with profiling off it points at a write-only scratch array so
	// the loop needs no per-instruction branch.
	fclass := &vm.scratchClass
	if vm.profiling {
		fclass = &vm.profs[fi].classCounts
	}

	pc := 0
	for pc < len(code) {
		in := &code[pc]
		cycles += costs[in.class]
		counts[in.class]++
		fclass[in.class]++
		steps++
		if steps > limit {
			vm.stats.Steps = steps
			vm.cycles = cycles
			return nil, ErrStepLimit
		}
		switch in.op {
		// Superinstructions (fuse.go). Each arm first charges its second
		// component exactly as the loop header would have, then performs
		// both effects and skips the partner slot. Fusion is disabled under
		// a step limit, so no budget check is needed for the extra step.
		case opFusedGetGet:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, locals[in.a], locals[in.b2])
			pc += 2
			continue

		case opFusedConst32Bin:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, uint64(uint32(in.val)))
			if err := vm.execNumeric(in.op2); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				return nil, err
			}
			pc += 2
			continue

		case opFusedConst64Bin:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, uint64(in.val))
			if err := vm.execNumeric(in.op2); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				return nil, err
			}
			pc += 2
			continue

		case opFusedGetLoad:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, locals[in.a])
			if err := vm.execMem(in.op2, in.b2, mem); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				return nil, err
			}
			pc += 2
			continue

		case opFusedCmpBrIf:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			_ = vm.execNumeric(in.op2) // comparisons cannot trap
			c := vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
			if uint32(c) != 0 {
				// The br_if component sits at pc+1: same backward-edge
				// hotness bookkeeping as the unfused opcode.
				if in.jump.pc <= int32(pc+1) {
					cf.hotness++
					vm.cycles = cycles
					costs = vm.maybeTierUp(cf)
					cycles = vm.cycles
				}
				pc = vm.branch(stackBase, in.jump)
				continue
			}
			pc += 2
			continue
		case wasm.OpBlock, wasm.OpLoop, wasm.OpEnd, wasm.OpNop:
			// structural: no effect

		case wasm.OpUnreachable:
			vm.stats.Steps = steps
			vm.cycles = cycles
			return nil, ErrUnreachable

		case wasm.OpIf:
			c := vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
			if uint32(c) == 0 {
				pc = vm.branch(stackBase, in.jump)
				continue
			}

		case wasm.OpElse:
			pc = vm.branch(stackBase, in.jump)
			continue

		case wasm.OpBr:
			if in.jump.pc <= int32(pc) {
				cf.hotness++
				vm.cycles = cycles
				costs = vm.maybeTierUp(cf)
				cycles = vm.cycles
			}
			pc = vm.branch(stackBase, in.jump)
			continue

		case wasm.OpBrIf:
			c := vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
			if uint32(c) != 0 {
				if in.jump.pc <= int32(pc) {
					cf.hotness++
					vm.cycles = cycles
					costs = vm.maybeTierUp(cf)
					cycles = vm.cycles
				}
				pc = vm.branch(stackBase, in.jump)
				continue
			}

		case wasm.OpBrTable:
			c := uint32(vm.stack[len(vm.stack)-1])
			vm.stack = vm.stack[:len(vm.stack)-1]
			t := in.targets[len(in.targets)-1]
			if int(c) < len(in.targets)-1 {
				t = in.targets[c]
			}
			if t.pc <= int32(pc) {
				cf.hotness++
				vm.cycles = cycles
				costs = vm.maybeTierUp(cf)
				cycles = vm.cycles
			}
			pc = vm.branch(stackBase, t)
			continue

		case wasm.OpReturn:
			pc = vm.branch(stackBase, in.jump)
			continue

		case wasm.OpCall:
			ct, _ := vm.module.FuncTypeOf(in.a)
			np := len(ct.Params)
			callArgs := vm.stack[len(vm.stack)-np:]
			argsCopy := make([]uint64, np)
			copy(argsCopy, callArgs)
			vm.stack = vm.stack[:len(vm.stack)-np]
			vm.stats.Steps = steps
			vm.cycles = cycles
			res, err := vm.callIndex(in.a, argsCopy)
			steps = vm.stats.Steps
			cycles = vm.cycles
			if err != nil {
				return nil, err
			}
			vm.stack = append(vm.stack, res...)

		case wasm.OpDrop:
			vm.stack = vm.stack[:len(vm.stack)-1]

		case wasm.OpSelect:
			n := len(vm.stack)
			c, v2, v1 := vm.stack[n-1], vm.stack[n-2], vm.stack[n-3]
			vm.stack = vm.stack[:n-2]
			if uint32(c) != 0 {
				vm.stack[n-3] = v1
			} else {
				vm.stack[n-3] = v2
			}

		case wasm.OpLocalGet:
			vm.stack = append(vm.stack, locals[in.a])
		case wasm.OpLocalSet:
			locals[in.a] = vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
		case wasm.OpLocalTee:
			locals[in.a] = vm.stack[len(vm.stack)-1]
		case wasm.OpGlobalGet:
			vm.stack = append(vm.stack, vm.globals[in.a])
		case wasm.OpGlobalSet:
			vm.globals[in.a] = vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]

		case wasm.OpI32Const, wasm.OpF32Const:
			vm.stack = append(vm.stack, uint64(uint32(in.val)))
		case wasm.OpI64Const, wasm.OpF64Const:
			vm.stack = append(vm.stack, uint64(in.val))

		case wasm.OpMemorySize:
			vm.stack = append(vm.stack, uint64(mem.Pages()))
		case wasm.OpMemoryGrow:
			d := uint32(vm.stack[len(vm.stack)-1])
			r := mem.Grow(d)
			vm.stack[len(vm.stack)-1] = uint64(uint32(r))
			cycles += vm.cfg.GrowBoundaryCost
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindMemGrow, TS: cycles,
					Name: cf.name, Track: "wasm", A: float64(d), B: float64(r)})
			}

		default:
			var err error
			if isMemOp(in.op) {
				err = vm.execMem(in.op, in.b, mem)
			} else {
				err = vm.execNumeric(in.op)
			}
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				return nil, err
			}
		}
		pc++
	}
	vm.stats.Steps = steps
	vm.cycles = cycles

	nr := len(cf.typ.Results)
	if len(vm.stack)-stackBase < nr {
		return nil, fmt.Errorf("wasmvm: func %s: result missing from stack", cf.name)
	}
	res := make([]uint64, nr)
	copy(res, vm.stack[len(vm.stack)-nr:])
	return res, nil
}

// branch applies a resolved branch target: truncate the operand stack to the
// target height, preserving the carried values, and return the new pc.
func (vm *VM) branch(stackBase int, t branchTarget) int {
	want := stackBase + int(t.unwind) + int(t.keep)
	if len(vm.stack) > want {
		// Move kept values down, then truncate.
		copy(vm.stack[stackBase+int(t.unwind):], vm.stack[len(vm.stack)-int(t.keep):])
		vm.stack = vm.stack[:want]
	}
	return int(t.pc)
}

func isMemOp(op wasm.Opcode) bool {
	return op >= wasm.OpI32Load && op <= wasm.OpI64Store32
}

// execMem executes a load or store opcode with the given static offset.
func (vm *VM) execMem(op wasm.Opcode, offset uint32, mem *Memory) error {
	n := len(vm.stack)
	if op >= wasm.OpI32Store && op <= wasm.OpI64Store32 {
		v := vm.stack[n-1]
		addr := uint64(uint32(vm.stack[n-2])) + uint64(offset)
		vm.stack = vm.stack[:n-2]
		switch op {
		case wasm.OpI32Store, wasm.OpF32Store:
			return mem.storeU32(addr, v)
		case wasm.OpI64Store, wasm.OpF64Store:
			return mem.storeU64(addr, v)
		case wasm.OpI32Store8, wasm.OpI64Store8:
			return mem.storeU8(addr, v)
		case wasm.OpI32Store16, wasm.OpI64Store16:
			return mem.storeU16(addr, v)
		case wasm.OpI64Store32:
			return mem.storeU32(addr, v)
		}
		return fmt.Errorf("wasmvm: bad store op %v", op)
	}
	addr := uint64(uint32(vm.stack[n-1])) + uint64(offset)
	var v uint64
	var err error
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		v, err = mem.loadU32(addr)
	case wasm.OpI64Load, wasm.OpF64Load:
		v, err = mem.loadU64(addr)
	case wasm.OpI32Load8U:
		v, err = mem.loadU8(addr)
	case wasm.OpI32Load8S:
		v, err = mem.loadU8(addr)
		v = uint64(uint32(int32(int8(v))))
	case wasm.OpI32Load16U:
		v, err = mem.loadU16(addr)
	case wasm.OpI32Load16S:
		v, err = mem.loadU16(addr)
		v = uint64(uint32(int32(int16(v))))
	case wasm.OpI64Load8U:
		v, err = mem.loadU8(addr)
	case wasm.OpI64Load8S:
		v, err = mem.loadU8(addr)
		v = uint64(int64(int8(v)))
	case wasm.OpI64Load16U:
		v, err = mem.loadU16(addr)
	case wasm.OpI64Load16S:
		v, err = mem.loadU16(addr)
		v = uint64(int64(int16(v)))
	case wasm.OpI64Load32U:
		v, err = mem.loadU32(addr)
	case wasm.OpI64Load32S:
		v, err = mem.loadU32(addr)
		v = uint64(int64(int32(v)))
	default:
		return fmt.Errorf("wasmvm: bad load op %v", op)
	}
	if err != nil {
		return err
	}
	vm.stack[n-1] = v
	return nil
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// execNumeric handles all pure numeric opcodes over the operand stack.
func (vm *VM) execNumeric(op wasm.Opcode) error {
	st := vm.stack
	n := len(st)

	// Unary family first.
	if isUnaryNumeric(op) {
		x := st[n-1]
		var r uint64
		switch op {
		case wasm.OpI32Eqz:
			r = b2i(uint32(x) == 0)
		case wasm.OpI64Eqz:
			r = b2i(x == 0)
		case wasm.OpI32Clz:
			r = uint64(bits.LeadingZeros32(uint32(x)))
		case wasm.OpI32Ctz:
			r = uint64(bits.TrailingZeros32(uint32(x)))
		case wasm.OpI32Popcnt:
			r = uint64(bits.OnesCount32(uint32(x)))
		case wasm.OpI64Clz:
			r = uint64(bits.LeadingZeros64(x))
		case wasm.OpI64Ctz:
			r = uint64(bits.TrailingZeros64(x))
		case wasm.OpI64Popcnt:
			r = popcnt64(x)
		case wasm.OpF32Abs:
			r = F32(float32(math.Abs(float64(AsF32(x)))))
		case wasm.OpF32Neg:
			r = F32(-AsF32(x))
		case wasm.OpF32Ceil:
			r = F32(float32(math.Ceil(float64(AsF32(x)))))
		case wasm.OpF32Floor:
			r = F32(float32(math.Floor(float64(AsF32(x)))))
		case wasm.OpF32Trunc:
			r = F32(float32(math.Trunc(float64(AsF32(x)))))
		case wasm.OpF32Nearest:
			r = F32(float32(math.RoundToEven(float64(AsF32(x)))))
		case wasm.OpF32Sqrt:
			r = F32(float32(math.Sqrt(float64(AsF32(x)))))
		case wasm.OpF64Abs:
			r = F64(math.Abs(AsF64(x)))
		case wasm.OpF64Neg:
			r = F64(-AsF64(x))
		case wasm.OpF64Ceil:
			r = F64(math.Ceil(AsF64(x)))
		case wasm.OpF64Floor:
			r = F64(math.Floor(AsF64(x)))
		case wasm.OpF64Trunc:
			r = F64(math.Trunc(AsF64(x)))
		case wasm.OpF64Nearest:
			r = F64(math.RoundToEven(AsF64(x)))
		case wasm.OpF64Sqrt:
			r = F64(math.Sqrt(AsF64(x)))
		default:
			var err error
			r, err = execConv(op, x)
			if err != nil {
				return err
			}
		}
		st[n-1] = r
		return nil
	}

	// Binary family.
	y, x := st[n-1], st[n-2]
	vm.stack = st[:n-1]
	var r uint64
	switch op {
	case wasm.OpI32Eq:
		r = b2i(uint32(x) == uint32(y))
	case wasm.OpI32Ne:
		r = b2i(uint32(x) != uint32(y))
	case wasm.OpI32LtS:
		r = b2i(int32(x) < int32(y))
	case wasm.OpI32LtU:
		r = b2i(uint32(x) < uint32(y))
	case wasm.OpI32GtS:
		r = b2i(int32(x) > int32(y))
	case wasm.OpI32GtU:
		r = b2i(uint32(x) > uint32(y))
	case wasm.OpI32LeS:
		r = b2i(int32(x) <= int32(y))
	case wasm.OpI32LeU:
		r = b2i(uint32(x) <= uint32(y))
	case wasm.OpI32GeS:
		r = b2i(int32(x) >= int32(y))
	case wasm.OpI32GeU:
		r = b2i(uint32(x) >= uint32(y))
	case wasm.OpI64Eq:
		r = b2i(x == y)
	case wasm.OpI64Ne:
		r = b2i(x != y)
	case wasm.OpI64LtS:
		r = b2i(int64(x) < int64(y))
	case wasm.OpI64LtU:
		r = b2i(x < y)
	case wasm.OpI64GtS:
		r = b2i(int64(x) > int64(y))
	case wasm.OpI64GtU:
		r = b2i(x > y)
	case wasm.OpI64LeS:
		r = b2i(int64(x) <= int64(y))
	case wasm.OpI64LeU:
		r = b2i(x <= y)
	case wasm.OpI64GeS:
		r = b2i(int64(x) >= int64(y))
	case wasm.OpI64GeU:
		r = b2i(x >= y)
	case wasm.OpF32Eq:
		r = b2i(AsF32(x) == AsF32(y))
	case wasm.OpF32Ne:
		r = b2i(AsF32(x) != AsF32(y))
	case wasm.OpF32Lt:
		r = b2i(AsF32(x) < AsF32(y))
	case wasm.OpF32Gt:
		r = b2i(AsF32(x) > AsF32(y))
	case wasm.OpF32Le:
		r = b2i(AsF32(x) <= AsF32(y))
	case wasm.OpF32Ge:
		r = b2i(AsF32(x) >= AsF32(y))
	case wasm.OpF64Eq:
		r = b2i(AsF64(x) == AsF64(y))
	case wasm.OpF64Ne:
		r = b2i(AsF64(x) != AsF64(y))
	case wasm.OpF64Lt:
		r = b2i(AsF64(x) < AsF64(y))
	case wasm.OpF64Gt:
		r = b2i(AsF64(x) > AsF64(y))
	case wasm.OpF64Le:
		r = b2i(AsF64(x) <= AsF64(y))
	case wasm.OpF64Ge:
		r = b2i(AsF64(x) >= AsF64(y))

	case wasm.OpI32Add:
		r = uint64(uint32(x) + uint32(y))
	case wasm.OpI32Sub:
		r = uint64(uint32(x) - uint32(y))
	case wasm.OpI32Mul:
		r = uint64(uint32(x) * uint32(y))
	case wasm.OpI32DivS:
		if uint32(y) == 0 {
			return ErrDivByZero
		}
		if int32(x) == math.MinInt32 && int32(y) == -1 {
			return ErrIntOverflow
		}
		r = uint64(uint32(int32(x) / int32(y)))
	case wasm.OpI32DivU:
		if uint32(y) == 0 {
			return ErrDivByZero
		}
		r = uint64(uint32(x) / uint32(y))
	case wasm.OpI32RemS:
		if uint32(y) == 0 {
			return ErrDivByZero
		}
		if int32(x) == math.MinInt32 && int32(y) == -1 {
			r = 0
		} else {
			r = uint64(uint32(int32(x) % int32(y)))
		}
	case wasm.OpI32RemU:
		if uint32(y) == 0 {
			return ErrDivByZero
		}
		r = uint64(uint32(x) % uint32(y))
	case wasm.OpI32And:
		r = uint64(uint32(x) & uint32(y))
	case wasm.OpI32Or:
		r = uint64(uint32(x) | uint32(y))
	case wasm.OpI32Xor:
		r = uint64(uint32(x) ^ uint32(y))
	case wasm.OpI32Shl:
		r = uint64(uint32(x) << (uint32(y) & 31))
	case wasm.OpI32ShrS:
		r = uint64(uint32(int32(x) >> (uint32(y) & 31)))
	case wasm.OpI32ShrU:
		r = uint64(uint32(x) >> (uint32(y) & 31))
	case wasm.OpI32Rotl:
		r = uint64(bits.RotateLeft32(uint32(x), int(uint32(y)&31)))
	case wasm.OpI32Rotr:
		r = uint64(bits.RotateLeft32(uint32(x), -int(uint32(y)&31)))

	case wasm.OpI64Add:
		r = x + y
	case wasm.OpI64Sub:
		r = x - y
	case wasm.OpI64Mul:
		r = x * y
	case wasm.OpI64DivS:
		if y == 0 {
			return ErrDivByZero
		}
		if int64(x) == math.MinInt64 && int64(y) == -1 {
			return ErrIntOverflow
		}
		r = uint64(int64(x) / int64(y))
	case wasm.OpI64DivU:
		if y == 0 {
			return ErrDivByZero
		}
		r = x / y
	case wasm.OpI64RemS:
		if y == 0 {
			return ErrDivByZero
		}
		if int64(x) == math.MinInt64 && int64(y) == -1 {
			r = 0
		} else {
			r = uint64(int64(x) % int64(y))
		}
	case wasm.OpI64RemU:
		if y == 0 {
			return ErrDivByZero
		}
		r = x % y
	case wasm.OpI64And:
		r = x & y
	case wasm.OpI64Or:
		r = x | y
	case wasm.OpI64Xor:
		r = x ^ y
	case wasm.OpI64Shl:
		r = x << (y & 63)
	case wasm.OpI64ShrS:
		r = uint64(int64(x) >> (y & 63))
	case wasm.OpI64ShrU:
		r = x >> (y & 63)
	case wasm.OpI64Rotl:
		r = bits.RotateLeft64(x, int(y&63))
	case wasm.OpI64Rotr:
		r = bits.RotateLeft64(x, -int(y&63))

	case wasm.OpF32Add:
		r = F32(AsF32(x) + AsF32(y))
	case wasm.OpF32Sub:
		r = F32(AsF32(x) - AsF32(y))
	case wasm.OpF32Mul:
		r = F32(AsF32(x) * AsF32(y))
	case wasm.OpF32Div:
		r = F32(AsF32(x) / AsF32(y))
	case wasm.OpF32Min:
		r = F32(wasmFMin32(AsF32(x), AsF32(y)))
	case wasm.OpF32Max:
		r = F32(wasmFMax32(AsF32(x), AsF32(y)))
	case wasm.OpF32Copysign:
		r = F32(float32(math.Copysign(float64(AsF32(x)), float64(AsF32(y)))))
	case wasm.OpF64Add:
		r = F64(AsF64(x) + AsF64(y))
	case wasm.OpF64Sub:
		r = F64(AsF64(x) - AsF64(y))
	case wasm.OpF64Mul:
		r = F64(AsF64(x) * AsF64(y))
	case wasm.OpF64Div:
		r = F64(AsF64(x) / AsF64(y))
	case wasm.OpF64Min:
		r = F64(wasmFMin64(AsF64(x), AsF64(y)))
	case wasm.OpF64Max:
		r = F64(wasmFMax64(AsF64(x), AsF64(y)))
	case wasm.OpF64Copysign:
		r = F64(math.Copysign(AsF64(x), AsF64(y)))
	default:
		return fmt.Errorf("wasmvm: unhandled opcode %v", op)
	}
	vm.stack[n-2] = r
	return nil
}

// execConv handles conversion opcodes (all unary).
func execConv(op wasm.Opcode, x uint64) (uint64, error) {
	switch op {
	case wasm.OpI32WrapI64:
		return uint64(uint32(x)), nil
	case wasm.OpI32TruncF32S:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483648 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(int32(f))), nil
	case wasm.OpI32TruncF32U:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 4294967296 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(f)), nil
	case wasm.OpI32TruncF64S:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483649 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(int32(f))), nil
	case wasm.OpI32TruncF64U:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 4294967296 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(f)), nil
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(x))), nil
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(x)), nil
	case wasm.OpI64TruncF32S:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
			return 0, ErrTruncInvalid
		}
		return uint64(int64(f)), nil
	case wasm.OpI64TruncF32U:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 1.8446744073709552e19 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(f), nil
	case wasm.OpI64TruncF64S:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
			return 0, ErrTruncInvalid
		}
		return uint64(int64(f)), nil
	case wasm.OpI64TruncF64U:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 1.8446744073709552e19 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(f), nil
	case wasm.OpF32ConvertI32S:
		return F32(float32(int32(x))), nil
	case wasm.OpF32ConvertI32U:
		return F32(float32(uint32(x))), nil
	case wasm.OpF32ConvertI64S:
		return F32(float32(int64(x))), nil
	case wasm.OpF32ConvertI64U:
		return F32(float32(x)), nil
	case wasm.OpF32DemoteF64:
		return F32(float32(AsF64(x))), nil
	case wasm.OpF64ConvertI32S:
		return F64(float64(int32(x))), nil
	case wasm.OpF64ConvertI32U:
		return F64(float64(uint32(x))), nil
	case wasm.OpF64ConvertI64S:
		return F64(float64(int64(x))), nil
	case wasm.OpF64ConvertI64U:
		return F64(float64(x)), nil
	case wasm.OpF64PromoteF32:
		return F64(float64(AsF32(x))), nil
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		return x, nil
	}
	return 0, fmt.Errorf("wasmvm: unhandled conversion %v", op)
}

// Wasm float min/max propagate NaN and order -0 < +0.
func wasmFMin64(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if math.Signbit(a) {
			return a
		}
		return b
	}
	return math.Min(a, b)
}

func wasmFMax64(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if !math.Signbit(a) {
			return a
		}
		return b
	}
	return math.Max(a, b)
}

func wasmFMin32(a, b float32) float32 { return float32(wasmFMin64(float64(a), float64(b))) }
func wasmFMax32(a, b float32) float32 { return float32(wasmFMax64(float64(a), float64(b))) }
