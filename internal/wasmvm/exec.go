package wasmvm

import (
	"errors"
	"fmt"
	"math"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
	"wasmbench/internal/wasm"
)

// Trap errors.
var (
	ErrDivByZero      = errors.New("wasmvm: integer divide by zero")
	ErrIntOverflow    = errors.New("wasmvm: integer overflow")
	ErrTruncInvalid   = errors.New("wasmvm: invalid conversion to integer")
	ErrUnreachable    = errors.New("wasmvm: unreachable executed")
	ErrCallDepth      = errors.New("wasmvm: call depth limit exceeded")
	ErrUnboundImport  = errors.New("wasmvm: unbound import called")
	ErrMemoryExceeded = errors.New("wasmvm: memory limit exceeded")
)

func (vm *VM) callIndex(idx uint32, args []uint64) ([]uint64, error) {
	nImp := uint32(len(vm.module.Imports))
	if idx < nImp {
		h := vm.imports[idx]
		if h == nil {
			imp := vm.module.Imports[idx]
			return nil, fmt.Errorf("%w: %s.%s", ErrUnboundImport, imp.Module, imp.Field)
		}
		return h(vm, args)
	}
	fi := idx - nImp
	if int(fi) >= len(vm.funcs) {
		return nil, fmt.Errorf("wasmvm: function index %d out of range", idx)
	}
	return vm.exec(int(fi), args)
}

// tierCosts returns the active cost table for a function, applying tier-up
// policy on entry.
func (vm *VM) tierCosts(cf *compiledFunc) *CostTable {
	if cf.tier == TierOptOnly {
		return &vm.cfg.OptCost
	}
	return &vm.cfg.BasicCost
}

// tierPending reports whether the next maybeTierUp call on cf will actually
// promote it. The dispatch loops use it so the per-tier cycle flush happens
// only at real transitions: flushing on every back-edge would regroup the
// float additions and break bit-identity across dispatch modes.
func (vm *VM) tierPending(cf *compiledFunc) bool {
	return vm.cfg.Mode == TierBoth && !cf.tieredUp && cf.hotness >= vm.cfg.TierUpThreshold
}

func (vm *VM) maybeTierUp(cf *compiledFunc) *CostTable {
	if vm.cfg.Mode == TierBoth && !cf.tieredUp && cf.hotness >= vm.cfg.TierUpThreshold {
		cf.tieredUp = true
		cf.tier = TierOptOnly
		vm.stats.TierUps++
		if vm.inst != nil {
			vm.inst.TierUps.Inc()
		}
		vm.cycles += vm.cfg.CompileOptPerInstr * float64(len(cf.code))
		if vm.tracer != nil {
			vm.tracer.Emit(obsv.Event{Kind: obsv.KindTierUp, TS: vm.cycles,
				Name: cf.name, Track: "wasm", A: float64(len(cf.code))})
		}
	}
	return vm.tierCosts(cf)
}

// addTierCycles attributes a span of instruction-charged cycles to the tier
// whose cost table was active. Spans are flushed only at tier transitions,
// call boundaries, and frame exit, so the float additions group identically
// in every dispatch mode (register/stack, fused/unfused).
func (vm *VM) addTierCycles(costs *CostTable, delta float64) {
	if costs == &vm.cfg.OptCost {
		vm.stats.OptCycles += delta
	} else {
		vm.stats.BasicCycles += delta
	}
}

// exec runs a defined function: argument checks, frame setup in the shared
// arenas, profiling hooks, and tier selection. The per-instruction work
// happens in runStack (basic tier) or runReg (register-form optimizing
// tier).
func (vm *VM) exec(fi int, args []uint64) ([]uint64, error) {
	cf := &vm.funcs[fi]
	if len(args) != len(cf.typ.Params) {
		return nil, fmt.Errorf("wasmvm: func %s expects %d args, got %d", cf.name, len(cf.typ.Params), len(args))
	}
	vm.depth++
	if vm.depth > vm.cfg.CallDepthLimit {
		vm.depth--
		return nil, ErrCallDepth
	}
	defer func() { vm.depth-- }()

	if vm.faults != nil && vm.faults.Stall(cf.name) {
		vm.emitFault(faultinject.WasmStall, vm.cycles)
	}

	cf.hotness++
	costs := vm.maybeTierUp(cf)

	if vm.profiling {
		start := vm.cycles
		savedChild := vm.childCycles
		vm.childCycles = 0
		prof := &vm.profs[fi]
		prof.calls++
		if vm.tracer != nil {
			vm.tracer.Emit(obsv.Event{Kind: obsv.KindCallEnter, TS: start,
				Name: cf.name, Track: "wasm"})
		}
		defer func() {
			total := vm.cycles - start
			prof.totalCycles += total
			prof.selfCycles += total - vm.childCycles
			vm.childCycles = savedChild + total
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindCallExit, TS: vm.cycles,
					Name: cf.name, Track: "wasm"})
			}
		}()
	}

	// Frame setup: locals arena.
	localBase := len(vm.locals)
	vm.locals = append(vm.locals, args...)
	for i := len(args); i < cf.nLocals; i++ {
		vm.locals = append(vm.locals, 0)
	}
	defer func() { vm.locals = vm.locals[:localBase] }()

	stackBase := len(vm.stack)
	defer func() { vm.stack = vm.stack[:stackBase] }()

	if cf.tier == TierOptOnly && vm.regEnabled && vm.regBody(cf) != nil {
		if vm.aotReady(cf) {
			return vm.runAOT(fi, cf, localBase, stackBase, 0)
		}
		return vm.runReg(fi, cf, localBase, stackBase, 0)
	}
	return vm.runStack(fi, cf, localBase, stackBase, costs)
}

// runStack executes a frame with the classic operand-stack dispatch loop.
// It serves the basic tier and every configuration where the register tier
// is unavailable (disabled, step-limited, or translation bailed).
func (vm *VM) runStack(fi int, cf *compiledFunc, localBase, stackBase int, costs *CostTable) ([]uint64, error) {
	locals := vm.locals[localBase : localBase+cf.nLocals]
	code := cf.code
	mem := vm.mem
	steps := vm.stats.Steps
	limit := vm.cfg.StepLimit
	if limit == 0 {
		limit = math.MaxUint64 // steps can never reach the sentinel
	}
	cycles := vm.cycles
	tierBase := cycles
	counts := &vm.tally
	// fclass attributes the instruction mix to this function when profiling
	// is on; with profiling off it points at a write-only scratch array so
	// the loop needs no per-instruction branch.
	fclass := &vm.scratchClass
	if vm.profiling {
		fclass = &vm.profs[fi].classCounts
	}

	pc := 0
	for pc < len(code) {
		in := &code[pc]
		cycles += costs[in.class]
		counts[in.class]++
		fclass[in.class]++
		steps++
		if steps > limit {
			vm.stats.Steps = steps
			vm.cycles = cycles
			vm.addTierCycles(costs, cycles-tierBase)
			return nil, ErrStepLimit
		}
		switch in.op {
		// Superinstructions (fuse.go). Each arm first charges its second
		// component exactly as the loop header would have, then performs
		// both effects and skips the partner slot. Fusion is disabled under
		// a step limit, so no budget check is needed for the extra step.
		case opFusedGetGet:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, locals[in.a], locals[in.b2])
			pc += 2
			continue

		case opFusedConst32Bin:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, uint64(uint32(in.val)))
			if err := vm.execNumeric(in.op2); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.addTierCycles(costs, cycles-tierBase)
				return nil, err
			}
			pc += 2
			continue

		case opFusedConst64Bin:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, uint64(in.val))
			if err := vm.execNumeric(in.op2); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.addTierCycles(costs, cycles-tierBase)
				return nil, err
			}
			pc += 2
			continue

		case opFusedGetLoad:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			vm.stack = append(vm.stack, locals[in.a])
			if err := vm.execMem(in.op2, in.b2, mem); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.addTierCycles(costs, cycles-tierBase)
				return nil, err
			}
			pc += 2
			continue

		case opFusedCmpBrIf:
			cycles += costs[in.class2]
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			_ = vm.execNumeric(in.op2) // comparisons cannot trap
			c := vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
			if uint32(c) != 0 {
				// The br_if component sits at pc+1: same backward-edge
				// hotness bookkeeping as the unfused opcode.
				if in.jump.pc <= int32(pc+1) {
					cf.hotness++
					if vm.tierPending(cf) {
						vm.cycles = cycles
						vm.addTierCycles(costs, cycles-tierBase)
						costs = vm.maybeTierUp(cf)
						cycles = vm.cycles
						tierBase = cycles
						if vm.regEnabled && vm.regBody(cf) != nil {
							pc = vm.branch(stackBase, in.jump)
							vm.stats.Steps = steps
							vm.cycles = cycles
							copy(vm.locals[localBase:localBase+cf.nLocals], locals)
							if vm.aotReady(cf) {
								return vm.runAOT(fi, cf, localBase, stackBase, pc)
							}
							return vm.runReg(fi, cf, localBase, stackBase, pc)
						}
					}
				}
				pc = vm.branch(stackBase, in.jump)
				continue
			}
			pc += 2
			continue
		case wasm.OpBlock, wasm.OpLoop, wasm.OpEnd, wasm.OpNop:
			// structural: no effect

		case wasm.OpUnreachable:
			vm.stats.Steps = steps
			vm.cycles = cycles
			vm.addTierCycles(costs, cycles-tierBase)
			return nil, ErrUnreachable

		case wasm.OpIf:
			c := vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
			if uint32(c) == 0 {
				pc = vm.branch(stackBase, in.jump)
				continue
			}

		case wasm.OpElse:
			pc = vm.branch(stackBase, in.jump)
			continue

		case wasm.OpBr:
			if in.jump.pc <= int32(pc) {
				cf.hotness++
				if vm.tierPending(cf) {
					vm.cycles = cycles
					vm.addTierCycles(costs, cycles-tierBase)
					costs = vm.maybeTierUp(cf)
					cycles = vm.cycles
					tierBase = cycles
					if vm.regEnabled && vm.regBody(cf) != nil {
						// OSR: land the branch in the stack world, then
						// resume in the register (or AOT) body at the same pc.
						pc = vm.branch(stackBase, in.jump)
						vm.stats.Steps = steps
						vm.cycles = cycles
						copy(vm.locals[localBase:localBase+cf.nLocals], locals)
						if vm.aotReady(cf) {
							return vm.runAOT(fi, cf, localBase, stackBase, pc)
						}
						return vm.runReg(fi, cf, localBase, stackBase, pc)
					}
				}
			}
			pc = vm.branch(stackBase, in.jump)
			continue

		case wasm.OpBrIf:
			c := vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
			if uint32(c) != 0 {
				if in.jump.pc <= int32(pc) {
					cf.hotness++
					if vm.tierPending(cf) {
						vm.cycles = cycles
						vm.addTierCycles(costs, cycles-tierBase)
						costs = vm.maybeTierUp(cf)
						cycles = vm.cycles
						tierBase = cycles
						if vm.regEnabled && vm.regBody(cf) != nil {
							pc = vm.branch(stackBase, in.jump)
							vm.stats.Steps = steps
							vm.cycles = cycles
							copy(vm.locals[localBase:localBase+cf.nLocals], locals)
							if vm.aotReady(cf) {
								return vm.runAOT(fi, cf, localBase, stackBase, pc)
							}
							return vm.runReg(fi, cf, localBase, stackBase, pc)
						}
					}
				}
				pc = vm.branch(stackBase, in.jump)
				continue
			}

		case wasm.OpBrTable:
			c := uint32(vm.stack[len(vm.stack)-1])
			vm.stack = vm.stack[:len(vm.stack)-1]
			t := in.targets[len(in.targets)-1]
			if int(c) < len(in.targets)-1 {
				t = in.targets[c]
			}
			if t.pc <= int32(pc) {
				cf.hotness++
				if vm.tierPending(cf) {
					vm.cycles = cycles
					vm.addTierCycles(costs, cycles-tierBase)
					costs = vm.maybeTierUp(cf)
					cycles = vm.cycles
					tierBase = cycles
					if vm.regEnabled && vm.regBody(cf) != nil {
						pc = vm.branch(stackBase, t)
						vm.stats.Steps = steps
						vm.cycles = cycles
						copy(vm.locals[localBase:localBase+cf.nLocals], locals)
						if vm.aotReady(cf) {
							return vm.runAOT(fi, cf, localBase, stackBase, pc)
						}
						return vm.runReg(fi, cf, localBase, stackBase, pc)
					}
				}
			}
			pc = vm.branch(stackBase, t)
			continue

		case wasm.OpReturn:
			pc = vm.branch(stackBase, in.jump)
			continue

		case wasm.OpCall:
			ct, _ := vm.module.FuncTypeOf(in.a)
			np := len(ct.Params)
			callArgs := vm.stack[len(vm.stack)-np:]
			argsCopy := make([]uint64, np)
			copy(argsCopy, callArgs)
			vm.stack = vm.stack[:len(vm.stack)-np]
			vm.stats.Steps = steps
			vm.cycles = cycles
			vm.addTierCycles(costs, cycles-tierBase)
			res, err := vm.callIndex(in.a, argsCopy)
			steps = vm.stats.Steps
			cycles = vm.cycles
			tierBase = cycles
			if err != nil {
				return nil, err
			}
			vm.stack = append(vm.stack, res...)

		case wasm.OpDrop:
			vm.stack = vm.stack[:len(vm.stack)-1]

		case wasm.OpSelect:
			n := len(vm.stack)
			c, v2, v1 := vm.stack[n-1], vm.stack[n-2], vm.stack[n-3]
			vm.stack = vm.stack[:n-2]
			if uint32(c) != 0 {
				vm.stack[n-3] = v1
			} else {
				vm.stack[n-3] = v2
			}

		case wasm.OpLocalGet:
			vm.stack = append(vm.stack, locals[in.a])
		case wasm.OpLocalSet:
			locals[in.a] = vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
		case wasm.OpLocalTee:
			locals[in.a] = vm.stack[len(vm.stack)-1]
		case wasm.OpGlobalGet:
			vm.stack = append(vm.stack, vm.globals[in.a])
		case wasm.OpGlobalSet:
			vm.globals[in.a] = vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]

		case wasm.OpI32Const, wasm.OpF32Const:
			vm.stack = append(vm.stack, uint64(uint32(in.val)))
		case wasm.OpI64Const, wasm.OpF64Const:
			vm.stack = append(vm.stack, uint64(in.val))

		case wasm.OpMemorySize:
			vm.stack = append(vm.stack, uint64(mem.Pages()))
		case wasm.OpMemoryGrow:
			d := uint32(vm.stack[len(vm.stack)-1])
			var r int32
			if vm.faults != nil && vm.faults.DenyGrow(cf.name, mem.Pages(), d) {
				// Injected denial behaves exactly like a natural capacity
				// failure: grow returns −1, memory is untouched, the JS
				// boundary charge still applies.
				r = -1
				vm.emitFault(faultinject.WasmGrowDeny, cycles)
			} else {
				r = mem.Grow(d)
			}
			vm.stack[len(vm.stack)-1] = uint64(uint32(r))
			cycles += vm.cfg.GrowBoundaryCost
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindMemGrow, TS: cycles,
					Name: cf.name, Track: "wasm", A: float64(d), B: float64(r)})
			}
			if vm.inst != nil {
				vm.inst.MemGrowOps.Inc()
				if r >= 0 {
					vm.inst.MemGrowPages.Add(float64(mem.Pages() - uint32(r)))
				}
			}

		default:
			var err error
			if isMemOp(in.op) {
				err = vm.execMem(in.op, in.b, mem)
			} else {
				err = vm.execNumeric(in.op)
			}
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.addTierCycles(costs, cycles-tierBase)
				return nil, err
			}
		}
		pc++
	}
	vm.stats.Steps = steps
	vm.cycles = cycles
	vm.addTierCycles(costs, cycles-tierBase)

	nr := len(cf.typ.Results)
	if len(vm.stack)-stackBase < nr {
		return nil, fmt.Errorf("wasmvm: func %s: result missing from stack", cf.name)
	}
	res := make([]uint64, nr)
	copy(res, vm.stack[len(vm.stack)-nr:])
	return res, nil
}

// emitFault records an injected-fault trace event at the given clock value
// (fault events exist only in fault-plan runs, so the zero-fault trace is
// untouched).
func (vm *VM) emitFault(pt faultinject.Point, ts float64) {
	if vm.tracer != nil {
		vm.tracer.Emit(obsv.Event{Kind: obsv.KindFault, TS: ts,
			Name: string(pt), Track: "wasm"})
	}
}

// branch applies a resolved branch target: truncate the operand stack to the
// target height, preserving the carried values, and return the new pc.
func (vm *VM) branch(stackBase int, t branchTarget) int {
	want := stackBase + int(t.unwind) + int(t.keep)
	if len(vm.stack) > want {
		// Move kept values down, then truncate.
		copy(vm.stack[stackBase+int(t.unwind):], vm.stack[len(vm.stack)-int(t.keep):])
		vm.stack = vm.stack[:want]
	}
	return int(t.pc)
}

func isMemOp(op wasm.Opcode) bool {
	return op >= wasm.OpI32Load && op <= wasm.OpI64Store32
}

// execMem executes a load or store opcode with the given static offset over
// the operand stack; value semantics live in memLoad/memStore (numeric.go).
func (vm *VM) execMem(op wasm.Opcode, offset uint32, mem *Memory) error {
	n := len(vm.stack)
	if op >= wasm.OpI32Store && op <= wasm.OpI64Store32 {
		v := vm.stack[n-1]
		addr := uint64(uint32(vm.stack[n-2])) + uint64(offset)
		vm.stack = vm.stack[:n-2]
		return memStore(mem, op, addr, v)
	}
	addr := uint64(uint32(vm.stack[n-1])) + uint64(offset)
	v, err := memLoad(mem, op, addr)
	if err != nil {
		return err
	}
	vm.stack[n-1] = v
	return nil
}

// execNumeric executes a pure numeric opcode over the operand stack; value
// semantics live in numUnary/numBinary (numeric.go).
func (vm *VM) execNumeric(op wasm.Opcode) error {
	st := vm.stack
	n := len(st)
	if isUnaryNumeric(op) {
		r, err := numUnary(op, st[n-1])
		if err != nil {
			return err
		}
		st[n-1] = r
		return nil
	}
	r, err := numBinary(op, st[n-2], st[n-1])
	if err != nil {
		return err
	}
	vm.stack = st[:n-1]
	vm.stack[n-2] = r
	return nil
}
