package wasmvm

import "testing"

// BenchmarkDispatch measures wall-clock interpreter dispatch on the hot
// sum loop (its body is dense with fusable pairs: const+binop, get+get,
// cmp+br_if) with the superinstruction tier on and off. Virtual cycles are
// identical either way; only real time differs.
func BenchmarkDispatch(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		cfg := DefaultConfig()
		cfg.DisableFusion = disable
		vm, err := New(buildModule(), 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			b.Fatal(err)
		}
		const n = 100000
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := vm.Call("sum", I32(n)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(vm.Stats().Steps)/float64(b.N), "steps/op")
	}
	b.Run("fused", func(b *testing.B) { run(b, false) })
	b.Run("unfused", func(b *testing.B) { run(b, true) })
}
