package wasmvm

import (
	"errors"
	"testing"

	"wasmbench/internal/obsv"
	"wasmbench/internal/wasm"
)

// runRegPair instantiates the module twice — register tier enabled and
// disabled — applies call, and returns both VMs for comparison. Any other
// config variation (fusion, tier mode, profiling, tracing) comes in via
// cfg so the matrix tests can sweep them.
func runRegPair(t *testing.T, m *wasm.Module, cfg Config, call func(vm *VM) ([]uint64, error)) (reg, stack *VM, rres, sres []uint64, rerr, serr error) {
	t.Helper()
	mk := func(disable bool) (*VM, []uint64, error) {
		c := cfg
		c.DisableRegTier = disable
		vm, err := New(m, 0, c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := vm.Instantiate(); err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		res, err := call(vm)
		return vm, res, err
	}
	reg, rres, rerr = mk(false)
	stack, sres, serr = mk(true)
	return
}

// assertTracesEqual compares two collectors event by event: kinds, virtual
// timestamps, names, and payloads must all match.
func assertTracesEqual(t *testing.T, reg, stack *obsv.Collector) {
	t.Helper()
	re, se := reg.Events(), stack.Events()
	if len(re) != len(se) {
		t.Fatalf("trace lengths differ: reg=%d stack=%d", len(re), len(se))
	}
	for i := range re {
		if re[i] != se[i] {
			t.Fatalf("trace event %d differs:\n  reg:   %+v\n  stack: %+v", i, re[i], se[i])
		}
	}
}

func TestRegTierTranslates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 100
	vm := newVM(t, cfg)
	call1(t, vm, "sum", I32(200000))
	if vm.RegTranslated() == 0 {
		t.Fatal("hot loop should have produced a register body")
	}

	cfg.DisableRegTier = true
	vm2 := newVM(t, cfg)
	call1(t, vm2, "sum", I32(200000))
	if vm2.RegTranslated() != 0 {
		t.Errorf("DisableRegTier left %d register bodies", vm2.RegTranslated())
	}

	cfg = DefaultConfig()
	cfg.TierUpThreshold = 100
	cfg.StepLimit = 1 << 40
	vm3 := newVM(t, cfg)
	call1(t, vm3, "sum", I32(200000))
	if vm3.RegTranslated() != 0 {
		t.Errorf("StepLimit should disable the register tier, got %d bodies", vm3.RegTranslated())
	}
}

// TestRegEquivalenceMatrix sweeps every exported function of the shared
// test module across tier modes and fusion settings, comparing the
// register-tier VM against the stack interpreter on results, cycles, and
// the full Stats struct (steps, class tallies, tier-ups, per-tier split).
func TestRegEquivalenceMatrix(t *testing.T) {
	calls := []struct {
		name string
		args []uint64
	}{
		{"add", []uint64{I32(2), I32(40)}},
		{"sum", []uint64{I32(200000)}}, // crosses the tier-up threshold mid-loop
		{"fib", []uint64{I32(15)}},
		{"hypot", []uint64{F64(3), F64(4)}},
		{"memtest", []uint64{I32(1024)}},
		{"grow", []uint64{I32(2)}},
		{"switcher", []uint64{I32(1)}},
	}
	for _, mode := range []struct {
		name string
		mode TierMode
	}{{"both", TierBoth}, {"basic", TierBasicOnly}, {"opt", TierOptOnly}} {
		for _, fuse := range []struct {
			name    string
			disable bool
		}{{"fused", false}, {"unfused", true}} {
			for _, c := range calls {
				t.Run(mode.name+"/"+fuse.name+"/"+c.name, func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Mode = mode.mode
					cfg.TierUpThreshold = 100
					cfg.DisableFusion = fuse.disable
					reg, stack, rres, sres, rerr, serr := runRegPair(t, buildModule(), cfg,
						func(vm *VM) ([]uint64, error) { return vm.Call(c.name, c.args...) })
					assertEquivalent(t, reg, stack, rres, sres, rerr, serr)
					if mode.mode == TierOptOnly && reg.RegTranslated() == 0 {
						t.Error("opt-only mode should run register bodies")
					}
				})
			}
		}
	}
}

// TestRegEquivalenceOSR pins the on-stack-replacement path: a single call
// whose loop crosses the threshold mid-execution must switch to the
// register body at the back-edge and still match the stack interpreter
// bit for bit — including a second call that now starts in register form.
func TestRegEquivalenceOSR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 500
	reg, stack, rres, sres, rerr, serr := runRegPair(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) {
			if _, err := vm.Call("sum", I32(100000)); err != nil {
				return nil, err
			}
			return vm.Call("sum", I32(1000))
		})
	assertEquivalent(t, reg, stack, rres, sres, rerr, serr)
	if reg.Stats().TierUps != 1 {
		t.Fatalf("expected exactly one tier-up, got %d", reg.Stats().TierUps)
	}
	if reg.RegTranslated() != 1 {
		t.Fatalf("expected one register body, got %d", reg.RegTranslated())
	}
	if AsI64(rres[0]) != 499500 {
		t.Errorf("post-OSR result wrong: %d", AsI64(rres[0]))
	}
}

// TestRegEquivalenceTraces runs a profiled, traced, tiering workload on
// both dispatchers and requires the full event streams — call enter/exit,
// tier-up, memory.grow, every virtual timestamp — to be identical.
func TestRegEquivalenceTraces(t *testing.T) {
	mk := func(disable bool) (*VM, *obsv.Collector) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 100
		cfg.DisableRegTier = disable
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		vm, err := New(buildModule(), 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("sum", I32(50000)); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("fib", I32(12)); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("grow", I32(2)); err != nil {
			t.Fatal(err)
		}
		return vm, coll
	}
	reg, rcoll := mk(false)
	stack, scoll := mk(true)
	if reg.Cycles() != stack.Cycles() {
		t.Errorf("cycles differ: reg=%v stack=%v", reg.Cycles(), stack.Cycles())
	}
	if reg.RegTranslated() == 0 {
		t.Fatal("trace test should exercise the register tier")
	}
	assertTracesEqual(t, rcoll, scoll)
}

// TestRegEquivalenceProfiles compares per-function profiles (calls, self
// and total cycles, class mix) across dispatchers under tiering.
func TestRegEquivalenceProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	cfg.TierUpThreshold = 100
	reg, stack, rres, sres, rerr, serr := runRegPair(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) {
			if _, err := vm.Call("fib", I32(14)); err != nil {
				return nil, err
			}
			return vm.Call("sum", I32(50000))
		})
	assertEquivalent(t, reg, stack, rres, sres, rerr, serr)
	rp, sp := reg.Profile(), stack.Profile()
	if len(rp) != len(sp) {
		t.Fatalf("profile lengths differ: %d vs %d", len(rp), len(sp))
	}
	for i := range rp {
		if rp[i].Name != sp[i].Name || rp[i].SelfCycles != sp[i].SelfCycles ||
			rp[i].TotalCycles != sp[i].TotalCycles || rp[i].Calls != sp[i].Calls {
			t.Errorf("profile %d differs:\n  reg:   %+v\n  stack: %+v", i, rp[i], sp[i])
		}
		if len(rp[i].Classes) != len(sp[i].Classes) {
			t.Fatalf("profile %d class mix length differs", i)
		}
		for j := range rp[i].Classes {
			if rp[i].Classes[j] != sp[i].Classes[j] {
				t.Errorf("profile %d class %d differs: %+v vs %+v",
					i, j, rp[i].Classes[j], sp[i].Classes[j])
			}
		}
	}
}

// TestRegTrapEquivalence drives the register body into traps — fused
// const+div-by-zero and fused get+load out of bounds — in opt-only mode so
// the register forms execute from the first instruction. The partial
// charges at the trap point must match the stack interpreter exactly.
func TestRegTrapEquivalence(t *testing.T) {
	for _, fuse := range []struct {
		name    string
		disable bool
	}{{"fused", false}, {"unfused", true}} {
		for _, c := range []struct {
			name string
			arg  uint64
			want error
		}{
			{"divz", I32(7), ErrDivByZero},
			{"oob", I32(1 << 30), nil}, // OOB trap type, checked by message equality
		} {
			t.Run(fuse.name+"/"+c.name, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Mode = TierOptOnly
				cfg.DisableFusion = fuse.disable
				reg, stack, rres, sres, rerr, serr := runRegPair(t, trapModule(), cfg,
					func(vm *VM) ([]uint64, error) { return vm.Call(c.name, c.arg) })
				if rerr == nil || serr == nil {
					t.Fatalf("expected traps, got reg=%v stack=%v", rerr, serr)
				}
				if c.want != nil && !errors.Is(rerr, c.want) {
					t.Fatalf("reg trap = %v, want %v", rerr, c.want)
				}
				if reg.RegTranslated() == 0 {
					t.Fatal("trap test should execute register bodies")
				}
				assertEquivalent(t, reg, stack, rres, sres, rerr, serr)
			})
		}
	}
}

// TestRegBranchIntoPair re-runs the fusion landing-pad module in opt-only
// mode: a branch into the second slot of a fused pair must execute that
// slot's standalone register form.
func TestRegBranchIntoPair(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Funcs = append(m.Funcs, wasm.Function{Type: ti, Name: "landing",
		Locals: []wasm.ValType{wasm.I32},
		Body: []wasm.Instr{
			{Op: wasm.OpI32Const, Val: 5}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpBrIf, A: 0},
			{Op: wasm.OpI32Const, Val: 100}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpEnd},
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpLocalGet, A: 1},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpEnd},
		}})
	m.Exports = append(m.Exports, wasm.Export{Name: "landing", Kind: wasm.ExportFunc, Idx: 0})
	for _, x := range []int32{0, 3} {
		cfg := DefaultConfig()
		cfg.Mode = TierOptOnly
		reg, stack, rres, sres, rerr, serr := runRegPair(t, m, cfg,
			func(vm *VM) ([]uint64, error) { return vm.Call("landing", I32(x)) })
		assertEquivalent(t, reg, stack, rres, sres, rerr, serr)
		want := x + 5
		if x == 0 {
			want = 100
		}
		if AsI32(rres[0]) != want {
			t.Errorf("landing(%d) = %d, want %d", x, AsI32(rres[0]), want)
		}
	}
}

// TestRegTierCycleSplit checks the Stats per-tier attribution: basic-only
// runs charge only BasicCycles, opt-only runs only OptCycles, and a
// tiering run splits across both with the totals adding up.
func TestRegTierCycleSplit(t *testing.T) {
	run := func(mode TierMode, disableReg bool) Stats {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.TierUpThreshold = 100
		cfg.DisableRegTier = disableReg
		vm := newVM(t, cfg)
		call1(t, vm, "sum", I32(50000))
		return vm.Stats()
	}
	basic := run(TierBasicOnly, false)
	if basic.OptCycles != 0 || basic.BasicCycles == 0 {
		t.Errorf("basic-only split wrong: %+v", basic)
	}
	opt := run(TierOptOnly, false)
	if opt.BasicCycles != 0 || opt.OptCycles == 0 {
		t.Errorf("opt-only split wrong: %+v", opt)
	}
	both := run(TierBoth, false)
	if both.BasicCycles == 0 || both.OptCycles == 0 {
		t.Errorf("tiering run should split cycles across tiers: %+v", both)
	}
	// The split must be identical with the register tier disabled (it is
	// part of the Stats equality in the matrix test, but pin it here too).
	if stack := run(TierBoth, true); stack.BasicCycles != both.BasicCycles || stack.OptCycles != both.OptCycles {
		t.Errorf("split differs across dispatchers: reg=%+v stack=%+v", both, stack)
	}
}
