package wasmvm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolGetCtxCancelWhileExhausted: with the pool at capacity and no
// ColdFallback, a blocked GetCtx must return promptly with ctx.Err() when
// the context is canceled — it must not wait for a Put that never comes —
// and the canceled waiter must not leak a slot: once the outstanding
// instance is returned, a fresh checkout succeeds immediately.
func TestPoolGetCtxCancelWhileExhausted(t *testing.T) {
	p := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 1})

	held, recycled, err := p.GetCtx(context.Background(), Config{})
	if err != nil {
		t.Fatalf("first checkout: %v", err)
	}
	if recycled {
		t.Fatal("first checkout cannot be recycled")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		vm, _, err := p.GetCtx(ctx, Config{})
		if vm != nil {
			p.Put(vm)
		}
		done <- err
	}()

	// Let the goroutine reach cond.Wait before canceling.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked GetCtx: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked GetCtx did not return after cancel")
	}

	// The canceled waiter must not have consumed the slot: Put the held
	// instance back and check out again without blocking.
	p.Put(held)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	vm, recycled, err := p.GetCtx(ctx2, Config{})
	if err != nil {
		t.Fatalf("post-cancel checkout: %v", err)
	}
	if !recycled {
		t.Error("post-cancel checkout should recycle the returned instance")
	}
	p.Put(vm)

	s := p.Stats()
	if s.Live != 1 || s.Idle != 1 {
		t.Errorf("leaked slot: live=%d idle=%d, want 1/1", s.Live, s.Idle)
	}
}

// TestPoolGetCtxContendedCancel: many goroutines race checkouts against a
// 1-slot pool while half their contexts get canceled midway. Every call
// must terminate with either an instance or a context error, and the pool
// must end balanced (race-detector coverage for the AfterFunc/Broadcast
// wake path).
func TestPoolGetCtxContendedCancel(t *testing.T) {
	p := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 1})

	const callers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, canceled := 0, 0
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i)*10*time.Millisecond)
				defer cancel()
			}
			vm, _, err := p.GetCtx(ctx, Config{})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
				mu.Unlock()
				p.Put(vm)
				mu.Lock()
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				canceled++
			default:
				t.Errorf("caller %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if served+canceled != callers {
		t.Fatalf("accounting: served=%d canceled=%d, want sum %d", served, canceled, callers)
	}
	if served == 0 {
		t.Error("no caller was served")
	}
	s := p.Stats()
	if s.Live > 1 {
		t.Errorf("pool over bound: live=%d", s.Live)
	}
	if s.Live != s.Idle {
		t.Errorf("checked-out instance leaked: live=%d idle=%d", s.Live, s.Idle)
	}
}
