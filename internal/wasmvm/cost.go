package wasmvm

import "wasmbench/internal/wasm"

// CostClass buckets opcodes for virtual-cycle accounting and dynamic
// instruction instrumentation (the paper's Appendix D operation counts).
type CostClass uint8

// Cost classes. CStructural covers block/loop/end/else markers that compile
// to labels (zero machine code) in both tiers.
const (
	CStructural CostClass = iota
	CConst
	CLocal
	CGlobal
	CLoad
	CStore
	CAddSub
	CMul
	CDiv
	CRem
	CShift
	CAnd
	COr
	CXor
	CCmp
	CBitCount
	CFAddSub
	CFMul
	CFDiv
	CFSqrt
	CFMisc
	CConv
	CBranch
	CBrTable
	CCall
	CDropSelect
	CMemGrow
	CMemSize
	CUnreachable
	NumCostClasses
)

var costClassNames = [NumCostClasses]string{
	"structural", "const", "local", "global", "load", "store",
	"addsub", "mul", "div", "rem", "shift", "and", "or", "xor",
	"cmp", "bitcount", "faddsub", "fmul", "fdiv", "fsqrt", "fmisc",
	"conv", "branch", "brtable", "call", "dropselect", "memgrow",
	"memsize", "unreachable",
}

// String returns a short name for the class.
func (c CostClass) String() string {
	if int(c) < len(costClassNames) {
		return costClassNames[c]
	}
	return "unknown"
}

// Classify maps an opcode to its cost class.
func Classify(op wasm.Opcode) CostClass {
	switch {
	case op == wasm.OpBlock || op == wasm.OpLoop || op == wasm.OpEnd ||
		op == wasm.OpElse || op == wasm.OpNop:
		return CStructural
	case op == wasm.OpUnreachable:
		return CUnreachable
	case op >= wasm.OpI32Const && op <= wasm.OpF64Const:
		return CConst
	case op >= wasm.OpLocalGet && op <= wasm.OpLocalTee:
		return CLocal
	case op == wasm.OpGlobalGet || op == wasm.OpGlobalSet:
		return CGlobal
	case op >= wasm.OpI32Load && op <= wasm.OpI64Load32U:
		return CLoad
	case op >= wasm.OpI32Store && op <= wasm.OpI64Store32:
		return CStore
	case op == wasm.OpMemorySize:
		return CMemSize
	case op == wasm.OpMemoryGrow:
		return CMemGrow
	case op == wasm.OpI32Add, op == wasm.OpI32Sub, op == wasm.OpI64Add, op == wasm.OpI64Sub:
		return CAddSub
	case op == wasm.OpI32Mul, op == wasm.OpI64Mul:
		return CMul
	case op == wasm.OpI32DivS, op == wasm.OpI32DivU, op == wasm.OpI64DivS, op == wasm.OpI64DivU:
		return CDiv
	case op == wasm.OpI32RemS, op == wasm.OpI32RemU, op == wasm.OpI64RemS, op == wasm.OpI64RemU:
		return CRem
	case op == wasm.OpI32Shl, op == wasm.OpI32ShrS, op == wasm.OpI32ShrU,
		op == wasm.OpI32Rotl, op == wasm.OpI32Rotr,
		op == wasm.OpI64Shl, op == wasm.OpI64ShrS, op == wasm.OpI64ShrU,
		op == wasm.OpI64Rotl, op == wasm.OpI64Rotr:
		return CShift
	case op == wasm.OpI32And, op == wasm.OpI64And:
		return CAnd
	case op == wasm.OpI32Or, op == wasm.OpI64Or:
		return COr
	case op == wasm.OpI32Xor, op == wasm.OpI64Xor:
		return CXor
	case op == wasm.OpI32Eqz, op == wasm.OpI64Eqz:
		return CCmp
	case op >= wasm.OpI32Eq && op <= wasm.OpF64Ge:
		return CCmp
	case op == wasm.OpI32Clz, op == wasm.OpI32Ctz, op == wasm.OpI32Popcnt,
		op == wasm.OpI64Clz, op == wasm.OpI64Ctz, op == wasm.OpI64Popcnt:
		return CBitCount
	case op == wasm.OpF32Add, op == wasm.OpF32Sub, op == wasm.OpF64Add, op == wasm.OpF64Sub:
		return CFAddSub
	case op == wasm.OpF32Mul, op == wasm.OpF64Mul:
		return CFMul
	case op == wasm.OpF32Div, op == wasm.OpF64Div:
		return CFDiv
	case op == wasm.OpF32Sqrt, op == wasm.OpF64Sqrt:
		return CFSqrt
	case op >= wasm.OpF32Abs && op <= wasm.OpF32Nearest,
		op >= wasm.OpF64Abs && op <= wasm.OpF64Nearest,
		op >= wasm.OpF32Min && op <= wasm.OpF32Copysign,
		op >= wasm.OpF64Min && op <= wasm.OpF64Copysign:
		return CFMisc
	case op >= wasm.OpI32WrapI64 && op <= wasm.OpF64ReinterpretI64:
		return CConv
	case op == wasm.OpBr || op == wasm.OpBrIf || op == wasm.OpIf || op == wasm.OpReturn:
		return CBranch
	case op == wasm.OpBrTable:
		return CBrTable
	case op == wasm.OpCall:
		return CCall
	case op == wasm.OpDrop || op == wasm.OpSelect:
		return CDropSelect
	}
	return CStructural
}

// CostTable holds per-class virtual-cycle costs for one execution tier.
type CostTable [NumCostClasses]float64

// Scale returns a copy of the table with every cost multiplied by k.
func (t CostTable) Scale(k float64) CostTable {
	for i := range t {
		t[i] *= k
	}
	return t
}

// BaselineBasicCost is the reference cost table for a Wasm basic tier
// (Liftoff/Baseline-style single-pass code): every value travels through the
// machine stack, so stack-traffic opcodes (const/local) are nearly as
// expensive as arithmetic.
func BaselineBasicCost() CostTable {
	var t CostTable
	t[CStructural] = 0
	t[CConst] = 0.9
	t[CLocal] = 0.9
	t[CGlobal] = 1.2
	t[CLoad] = 1.5
	t[CStore] = 1.5
	t[CAddSub] = 1.0
	t[CMul] = 1.4
	t[CDiv] = 8.0
	t[CRem] = 8.0
	t[CShift] = 1.0
	t[CAnd] = 1.0
	t[COr] = 1.0
	t[CXor] = 1.0
	t[CCmp] = 1.0
	t[CBitCount] = 1.2
	t[CFAddSub] = 1.6
	t[CFMul] = 1.8
	t[CFDiv] = 9.0
	t[CFSqrt] = 9.0
	t[CFMisc] = 1.4
	t[CConv] = 1.2
	t[CBranch] = 1.1
	t[CBrTable] = 3.0
	t[CCall] = 6.0
	t[CDropSelect] = 0.8
	t[CMemGrow] = 400
	t[CMemSize] = 2
	t[CUnreachable] = 1
	return t
}

// BaselineOptCost is the reference cost table for a Wasm optimizing tier
// (TurboFan/Ion-style): register allocation absorbs most stack traffic, so
// const/local shuffles become nearly free while real work keeps its cost.
// The modest gap between the two tables is exactly the paper's Table 7
// observation that Wasm gains little from its optimizing JIT.
func BaselineOptCost() CostTable {
	t := BaselineBasicCost()
	t[CConst] = 0.35
	t[CLocal] = 0.45
	t[CGlobal] = 0.9
	t[CLoad] = 1.3
	t[CStore] = 1.3
	t[CBranch] = 0.95
	t[CCall] = 4.5
	t[CDropSelect] = 0.3
	return t
}
