package wasmvm

// runAOT executes a frame on the AOT tier: superblocks of pre-bound
// closure chains (aot.go) driven by a block-index loop. It is entered
// either at pc 0 from exec, or mid-function at a branch target after a
// loop back-edge tier-up (OSR), exactly like runReg — the live operand
// stack transfers into the register file first.
//
// Accounting mirrors runReg's flush discipline: cycles accumulate in
// instruction order inside the closures; steps and class tallies are
// hoisted per block and added at block entry (integer addition is
// order-independent); everything flushes at call boundaries, traps, and
// frame exit. The flushed delta feeds both OptCycles (the AOT tier is a
// sub-mode of the optimizing tier) and its AOTCycles sub-split.
func (vm *VM) runAOT(fi int, cf *compiledFunc, localBase, stackBase, pc int) ([]uint64, error) {
	entry := cf.aotEntry
	if pc >= len(entry) || entry[pc] < 0 {
		// Not a superblock leader (cannot happen for OSR entries, which are
		// branch targets): the register tier serves this activation.
		return vm.runReg(fi, cf, localBase, stackBase, pc)
	}
	bi := entry[pc]

	nLocals := cf.nLocals
	for i := int32(0); i < cf.maxStack; i++ {
		vm.locals = append(vm.locals, 0)
	}
	frame := vm.locals[localBase : localBase+nLocals+int(cf.maxStack)]

	// OSR entry: operand-stack slot at height i is register nLocals+i.
	if h := len(vm.stack) - stackBase; h > 0 {
		copy(frame[nLocals:], vm.stack[stackBase:])
		vm.stack = vm.stack[:stackBase]
	}

	blocks := cf.aotBlocks
	steps := vm.stats.Steps
	cycles := vm.cycles
	tierBase := cycles
	counts := &vm.tally
	// Per-function class counts only feed tier-up profiles; when not
	// profiling the register dispatcher's writes land in scratchClass and
	// are never read, so the AOT driver skips them outright.
	profiling := vm.profiling
	fclass := &vm.scratchClass
	if profiling {
		fclass = &vm.profs[fi].classCounts
	}

	for bi >= 0 {
		blk := &blocks[bi]
		steps += blk.steps
		if profiling {
			for _, d := range blk.classes {
				counts[d.class] += d.n
				fclass[d.class] += d.n
			}
		} else {
			for _, d := range blk.classes {
				counts[d.class] += d.n
			}
		}
		var next int32
		cycles, next = blk.head(vm, frame, cycles)
		if next >= 0 {
			bi = next
			continue
		}
		switch next {
		case aotRet:
			bi = -1

		case aotCallMark:
			c := blk.call
			argsCopy := make([]uint64, c.np)
			copy(argsCopy, frame[c.base:c.base+int32(c.np)])
			vm.stats.Steps = steps
			vm.cycles = cycles
			delta := cycles - tierBase
			vm.stats.OptCycles += delta
			vm.stats.AOTCycles += delta
			res, err := vm.callIndex(c.idx, argsCopy)
			steps = vm.stats.Steps
			cycles = vm.cycles
			tierBase = cycles
			if err != nil {
				return nil, err
			}
			copy(frame[c.base:], res)
			bi = c.next

		case aotTrap:
			// The whole block was pre-counted at entry; subtract the suffix
			// that never executed (the trapping op's own charges stay,
			// matching the charge-before-evaluate order of the other
			// dispatchers).
			rb := vm.aotRb
			vm.aotRb = nil
			steps -= rb.steps
			for _, d := range rb.classes {
				counts[d.class] -= d.n
				if profiling {
					fclass[d.class] -= d.n
				}
			}
			vm.stats.Steps = steps
			vm.cycles = cycles
			delta := cycles - tierBase
			vm.stats.OptCycles += delta
			vm.stats.AOTCycles += delta
			err := vm.aotErr
			vm.aotErr = nil
			return nil, err
		}
	}
	vm.stats.Steps = steps
	vm.cycles = cycles
	delta := cycles - tierBase
	vm.stats.OptCycles += delta
	vm.stats.AOTCycles += delta

	nr := len(cf.typ.Results)
	res := make([]uint64, nr)
	copy(res, frame[nLocals:nLocals+nr])
	return res, nil
}
