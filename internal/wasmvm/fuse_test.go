package wasmvm

import (
	"errors"
	"testing"

	"wasmbench/internal/wasm"
)

// runBoth instantiates the module twice — fused and unfused — applies call,
// and returns both VMs for comparison.
func runBoth(t *testing.T, m *wasm.Module, cfg Config, call func(vm *VM) ([]uint64, error)) (fused, plain *VM, fres, pres []uint64, ferr, perr error) {
	t.Helper()
	mk := func(disable bool) (*VM, []uint64, error) {
		c := cfg
		c.DisableFusion = disable
		vm, err := New(m, 0, c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := vm.Instantiate(); err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		res, err := call(vm)
		return vm, res, err
	}
	fused, fres, ferr = mk(false)
	plain, pres, perr = mk(true)
	return
}

// assertEquivalent checks the full determinism contract: same results, same
// virtual cycles, same step counts and per-class instruction mix.
func assertEquivalent(t *testing.T, fused, plain *VM, fres, pres []uint64, ferr, perr error) {
	t.Helper()
	if (ferr == nil) != (perr == nil) || (ferr != nil && ferr.Error() != perr.Error()) {
		t.Fatalf("errors differ: fused=%v plain=%v", ferr, perr)
	}
	if len(fres) != len(pres) {
		t.Fatalf("result arity differs: %v vs %v", fres, pres)
	}
	for i := range fres {
		if fres[i] != pres[i] {
			t.Fatalf("result %d differs: %#x vs %#x", i, fres[i], pres[i])
		}
	}
	if fused.Cycles() != plain.Cycles() {
		t.Errorf("cycles differ: fused=%v plain=%v", fused.Cycles(), plain.Cycles())
	}
	fs, ps := fused.Stats(), plain.Stats()
	// AOTCycles is the one dispatcher-visible field: it sub-splits OptCycles
	// by which optimizing dispatcher ran, so a pair that differs only in
	// whether the AOT tier engaged legitimately disagrees on it.
	fs.AOTCycles, ps.AOTCycles = 0, 0
	if fs != ps {
		t.Errorf("stats differ:\n  fused: %+v\n  plain: %+v", fs, ps)
	}
}

func TestFusionFormsPairs(t *testing.T) {
	vm, err := New(buildModule(), 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if vm.FusedPairs() == 0 {
		t.Fatal("expected superinstructions in the test module")
	}
	cfg := DefaultConfig()
	cfg.DisableFusion = true
	vm2, _ := New(buildModule(), 0, cfg)
	if vm2.FusedPairs() != 0 {
		t.Errorf("DisableFusion left %d pairs", vm2.FusedPairs())
	}
	cfg = DefaultConfig()
	cfg.StepLimit = 1000
	vm3, _ := New(buildModule(), 0, cfg)
	if vm3.FusedPairs() != 0 {
		t.Errorf("StepLimit should disable fusion, got %d pairs", vm3.FusedPairs())
	}
}

// TestFusionEquivalence sweeps every exported function of the shared test
// module: get+get pairs (add/hypot), const+binop and cmp+br_if (sum's
// loop), get+load (memtest), calls (fib), br_table (switcher).
func TestFusionEquivalence(t *testing.T) {
	calls := []struct {
		name string
		args []uint64
	}{
		{"add", []uint64{I32(2), I32(40)}},
		{"sum", []uint64{I32(10000)}},
		{"fib", []uint64{I32(15)}},
		{"hypot", []uint64{F64(3), F64(4)}},
		{"memtest", []uint64{I32(1024)}},
		{"grow", []uint64{I32(2)}},
		{"switcher", []uint64{I32(1)}},
	}
	for _, c := range calls {
		t.Run(c.name, func(t *testing.T) {
			fused, plain, fres, pres, ferr, perr := runBoth(t, buildModule(), DefaultConfig(),
				func(vm *VM) ([]uint64, error) { return vm.Call(c.name, c.args...) })
			assertEquivalent(t, fused, plain, fres, pres, ferr, perr)
		})
	}
}

// TestFusionEquivalenceTiered drives sum far past the tier-up threshold so
// the fused cmp+br_if backward edge must replicate hotness accounting and
// the mid-loop cost-table swap exactly.
func TestFusionEquivalenceTiered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 100
	fused, plain, fres, pres, ferr, perr := runBoth(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) { return vm.Call("sum", I32(200000)) })
	assertEquivalent(t, fused, plain, fres, pres, ferr, perr)
	if fused.Stats().TierUps == 0 {
		t.Fatal("test should exercise a tier-up")
	}
}

// TestFusionEquivalenceProfiles compares the per-function class attribution
// under profiling, where fused arms write to the real profile array.
func TestFusionEquivalenceProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	fused, plain, fres, pres, ferr, perr := runBoth(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) { return vm.Call("sum", I32(5000)) })
	assertEquivalent(t, fused, plain, fres, pres, ferr, perr)
	fp, pp := fused.Profile(), plain.Profile()
	if len(fp) != len(pp) {
		t.Fatalf("profile lengths differ: %d vs %d", len(fp), len(pp))
	}
	for i := range fp {
		if fp[i].Name != pp[i].Name || fp[i].SelfCycles != pp[i].SelfCycles ||
			fp[i].TotalCycles != pp[i].TotalCycles || fp[i].Calls != pp[i].Calls {
			t.Errorf("profile %d differs:\n  fused: %+v\n  plain: %+v", i, fp[i], pp[i])
		}
		if len(fp[i].Classes) != len(pp[i].Classes) {
			t.Fatalf("profile %d class mix length differs", i)
		}
		for j := range fp[i].Classes {
			if fp[i].Classes[j] != pp[i].Classes[j] {
				t.Errorf("profile %d class %d differs: %+v vs %+v",
					i, j, fp[i].Classes[j], pp[i].Classes[j])
			}
		}
	}
}

// trapModule builds functions whose fused pairs trap mid-superinstruction:
// const+div-by-zero and get+load out of bounds. The partially-executed
// charge must match the unfused interpreter exactly.
func trapModule() *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Mem = &wasm.MemType{Min: 1, Max: 4, HasMax: true}
	// divz(x) = x / 0 via a fusable i32.const 0; i32.div_s pair
	m.Funcs = append(m.Funcs, wasm.Function{Type: ti, Name: "divz", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0},
		{Op: wasm.OpI32Const, Val: 0},
		{Op: wasm.OpI32DivS},
		{Op: wasm.OpEnd},
	}})
	// oob(addr) = load far past memory via a fused local.get+i32.load
	m.Funcs = append(m.Funcs, wasm.Function{Type: ti, Name: "oob", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0},
		{Op: wasm.OpI32Load, A: 2, B: 0},
		{Op: wasm.OpEnd},
	}})
	for i, name := range []string{"divz", "oob"} {
		m.Exports = append(m.Exports, wasm.Export{Name: name, Kind: wasm.ExportFunc, Idx: uint32(i)})
	}
	return m
}

func TestFusionTrapEquivalence(t *testing.T) {
	for _, c := range []struct {
		name string
		arg  uint64
		want error
	}{
		{"divz", I32(7), ErrDivByZero},
		{"oob", I32(1 << 30), nil}, // OOB trap type checked below
	} {
		t.Run(c.name, func(t *testing.T) {
			fused, plain, fres, pres, ferr, perr := runBoth(t, trapModule(), DefaultConfig(),
				func(vm *VM) ([]uint64, error) { return vm.Call(c.name, c.arg) })
			if ferr == nil || perr == nil {
				t.Fatalf("expected traps, got fused=%v plain=%v", ferr, perr)
			}
			if c.want != nil && !errors.Is(ferr, c.want) {
				t.Fatalf("fused trap = %v, want %v", ferr, c.want)
			}
			assertEquivalent(t, fused, plain, fres, pres, ferr, perr)
		})
	}
}

// TestFusionBranchIntoPair branches directly to the second instruction of a
// fused pair; that slot keeps its original opcode, so the landing executes
// it exactly as unfused code would.
func TestFusionBranchIntoPair(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	// f(x): if x != 0 { push 7 } else { push x }; then local.get 0; i32.add
	// The (local.get 0; i32.add)… build a body where a br lands between a
	// fusable local.get/local.get pair.
	m.Funcs = append(m.Funcs, wasm.Function{Type: ti, Name: "landing",
		Locals: []wasm.ValType{wasm.I32},
		Body: []wasm.Instr{
			{Op: wasm.OpI32Const, Val: 5}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpBrIf, A: 0}, // skip into the middle when x != 0
			{Op: wasm.OpI32Const, Val: 100}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpEnd},
			// Fusable pair; the br_if above jumps to the End right before
			// this, so both entry paths flow through it.
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpLocalGet, A: 1},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpEnd},
		}})
	m.Exports = append(m.Exports, wasm.Export{Name: "landing", Kind: wasm.ExportFunc, Idx: 0})
	for _, x := range []int32{0, 3} {
		fused, plain, fres, pres, ferr, perr := runBoth(t, m, DefaultConfig(),
			func(vm *VM) ([]uint64, error) { return vm.Call("landing", I32(x)) })
		assertEquivalent(t, fused, plain, fres, pres, ferr, perr)
		want := x + 5
		if x == 0 {
			want = 100
		}
		if AsI32(fres[0]) != want {
			t.Errorf("landing(%d) = %d, want %d", x, AsI32(fres[0]), want)
		}
	}
}

// TestFusionStepLimitUnchanged: with a step limit the fusion pass is off,
// so the budget trips at the identical instruction as before.
func TestFusionStepLimitUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepLimit = 1000
	vm, err := New(buildModule(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Call("sum", I32(100000)); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("expected step limit error, got %v", err)
	}
	if vm.Stats().Steps != 1001 {
		t.Errorf("steps at trip = %d, want 1001", vm.Stats().Steps)
	}
}
