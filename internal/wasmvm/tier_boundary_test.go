package wasmvm

import (
	"math"
	"testing"

	"wasmbench/internal/obsv"
)

func tierUpEvents(coll *obsv.Collector) []obsv.Event {
	var out []obsv.Event
	for _, e := range coll.Events() {
		if e.Kind == obsv.KindTierUp {
			out = append(out, e)
		}
	}
	return out
}

// TestTierUpExactlyAtThreshold pins the boundary: with threshold T, the
// T-th entry (calls + loop back-edges) is the first that promotes, and
// repeat calls never promote again.
func TestTierUpExactlyAtThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 5
	coll := &obsv.Collector{}
	cfg.Tracer = coll
	vm := newVM(t, cfg)

	for i := 0; i < 4; i++ {
		call1(t, vm, "add", I32(1), I32(2))
	}
	if got := vm.Stats().TierUps; got != 0 {
		t.Fatalf("after threshold-1 calls: TierUps = %d, want 0", got)
	}
	if n := len(tierUpEvents(coll)); n != 0 {
		t.Fatalf("after threshold-1 calls: %d KindTierUp events, want 0", n)
	}

	call1(t, vm, "add", I32(1), I32(2)) // hotness reaches exactly 5
	if got := vm.Stats().TierUps; got != 1 {
		t.Fatalf("at threshold: TierUps = %d, want 1", got)
	}

	for i := 0; i < 10; i++ {
		call1(t, vm, "add", I32(1), I32(2))
	}
	if got := vm.Stats().TierUps; got != 1 {
		t.Fatalf("after repeat calls: TierUps = %d, want 1", got)
	}
	if n := len(tierUpEvents(coll)); n != 1 {
		t.Fatalf("%d KindTierUp events, want 1", n)
	}
}

// TestTierModesNeverTierUp verifies the single-tier modes are pinned: no
// amount of hotness promotes, and no KindTierUp event is ever emitted.
func TestTierModesNeverTierUp(t *testing.T) {
	for _, mode := range []TierMode{TierBasicOnly, TierOptOnly} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.TierUpThreshold = 10
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		vm := newVM(t, cfg)
		// Hot by both measures: many calls plus a long loop's back-edges.
		for i := 0; i < 50; i++ {
			call1(t, vm, "add", I32(1), I32(2))
		}
		call1(t, vm, "sum", I32(10000))
		if got := vm.Stats().TierUps; got != 0 {
			t.Errorf("mode %v: TierUps = %d, want 0", mode, got)
		}
		if n := len(tierUpEvents(coll)); n != 0 {
			t.Errorf("mode %v: %d KindTierUp events, want 0", mode, n)
		}
	}
}

// TestTierUpCompileChargedOnce drives the OSR path (promotion on a loop
// back-edge mid-call) and then re-enters the function, asserting the
// optimizing-compile charge lands exactly once: the cycle delta against a
// zero-charge run equals CompileOptPerInstr times the body length the
// KindTierUp event reports.
func TestTierUpCompileChargedOnce(t *testing.T) {
	run := func(perInstr float64) (*VM, *obsv.Collector) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 500
		cfg.CompileOptPerInstr = perInstr
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		vm := newVM(t, cfg)
		call1(t, vm, "sum", I32(100000)) // promotes on a back-edge mid-call
		call1(t, vm, "sum", I32(1000))   // re-entry must not charge again
		return vm, coll
	}

	const perInstr = 1000.0
	charged, coll := run(perInstr)
	free, _ := run(0)

	evs := tierUpEvents(coll)
	if len(evs) != 1 {
		t.Fatalf("%d KindTierUp events, want 1", len(evs))
	}
	if got := charged.Stats().TierUps; got != 1 {
		t.Fatalf("TierUps = %d, want 1", got)
	}
	want := perInstr * evs[0].A // A carries len(cf.code)
	got := charged.Cycles() - free.Cycles()
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("compile charge = %.6f cycles, want %.6f (exactly one charge of %.0f x %.0f instrs)",
			got, want, perInstr, evs[0].A)
	}
}

func aotCompileEvents(coll *obsv.Collector) []obsv.Event {
	var out []obsv.Event
	for _, e := range coll.Events() {
		if e.Kind == obsv.KindAOTCompile {
			out = append(out, e)
		}
	}
	return out
}

// TestAOTExactlyAtThreshold pins the AOT tier boundary in pinned-opt mode,
// where hotness grows one call at a time: with AOTThreshold T, the T-th
// call is the first to compile and run superblocks, and repeat calls never
// compile again.
func TestAOTExactlyAtThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = TierOptOnly
	cfg.AOTThreshold = 5
	coll := &obsv.Collector{}
	cfg.Tracer = coll
	vm := newVM(t, cfg)

	for i := 0; i < 4; i++ {
		call1(t, vm, "add", I32(1), I32(2))
	}
	if got := vm.AOTTranslated(); got != 0 {
		t.Fatalf("after threshold-1 calls: AOTTranslated = %d, want 0", got)
	}
	if got := vm.Stats().AOTCycles; got != 0 {
		t.Fatalf("after threshold-1 calls: AOTCycles = %v, want 0", got)
	}
	if n := len(aotCompileEvents(coll)); n != 0 {
		t.Fatalf("after threshold-1 calls: %d KindAOTCompile events, want 0", n)
	}

	call1(t, vm, "add", I32(1), I32(2)) // hotness reaches exactly 5
	if got := vm.AOTTranslated(); got != 1 {
		t.Fatalf("at threshold: AOTTranslated = %d, want 1", got)
	}
	if got := vm.Stats().AOTCycles; got == 0 {
		t.Fatal("at threshold: the boundary call should run on superblocks")
	}

	for i := 0; i < 10; i++ {
		call1(t, vm, "add", I32(1), I32(2))
	}
	if got := vm.AOTTranslated(); got != 1 {
		t.Fatalf("after repeat calls: AOTTranslated = %d, want 1", got)
	}
	if n := len(aotCompileEvents(coll)); n != 1 {
		t.Fatalf("%d KindAOTCompile events, want 1", n)
	}
}

// TestAOTPinnedOff verifies the AOT tier stays off where it must: under
// DisableAOTTier and in basic-only mode (no register bodies to compile
// from), no amount of hotness produces a superblock or an event.
func TestAOTPinnedOff(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"disabled", func(c *Config) { c.DisableAOTTier = true }},
		{"basic-only", func(c *Config) { c.Mode = TierBasicOnly }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.TierUpThreshold = 10
			cfg.AOTThreshold = 10
			coll := &obsv.Collector{}
			cfg.Tracer = coll
			tc.mut(&cfg)
			vm := newVM(t, cfg)
			for i := 0; i < 50; i++ {
				call1(t, vm, "add", I32(1), I32(2))
			}
			call1(t, vm, "sum", I32(10000))
			if got := vm.AOTTranslated(); got != 0 {
				t.Errorf("AOTTranslated = %d, want 0", got)
			}
			if got := vm.Stats().AOTCycles; got != 0 {
				t.Errorf("AOTCycles = %v, want 0", got)
			}
			if n := len(aotCompileEvents(coll)); n != 0 {
				t.Errorf("%d KindAOTCompile events, want 0", n)
			}
		})
	}
}

// TestAOTOSRMidLoop sets AOTThreshold equal to TierUpThreshold so the
// back-edge that promotes the loop also qualifies it for superblocks: the
// single call must OSR from the stack body directly into the AOT
// dispatcher and finish there.
func TestAOTOSRMidLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 500
	cfg.AOTThreshold = 500
	coll := &obsv.Collector{}
	cfg.Tracer = coll
	vm := newVM(t, cfg)
	call1(t, vm, "sum", I32(100000))
	if got := vm.Stats().TierUps; got != 1 {
		t.Fatalf("TierUps = %d, want 1", got)
	}
	if got := vm.AOTTranslated(); got != 1 {
		t.Fatalf("AOTTranslated = %d, want 1", got)
	}
	if got := vm.Stats().AOTCycles; got == 0 {
		t.Fatal("mid-loop OSR charged no AOT cycles")
	}
	evs := aotCompileEvents(coll)
	if len(evs) != 1 {
		t.Fatalf("%d KindAOTCompile events, want 1", len(evs))
	}
	if evs[0].A <= 0 || evs[0].B <= 0 {
		t.Errorf("compile event payload wrong: %+v", evs[0])
	}
}

// TestAOTCompileChargesNoCycles pins the AOT compile's virtual cost at
// zero: like fusion and register translation (and unlike tier-up), the
// superblock compile is invisible to the virtual clock, so an AOT run and
// a register-only run of the same workload read identical cycles.
func TestAOTCompileChargesNoCycles(t *testing.T) {
	run := func(disableAOT bool) *VM {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 500
		cfg.AOTThreshold = 500
		cfg.DisableAOTTier = disableAOT
		vm := newVM(t, cfg)
		call1(t, vm, "sum", I32(100000))
		call1(t, vm, "sum", I32(1000))
		return vm
	}
	aot := run(false)
	reg := run(true)
	if aot.AOTTranslated() != 1 {
		t.Fatalf("AOTTranslated = %d, want 1", aot.AOTTranslated())
	}
	if aot.Cycles() != reg.Cycles() {
		t.Fatalf("AOT compile leaked into the virtual clock: aot=%v reg=%v",
			aot.Cycles(), reg.Cycles())
	}
}
