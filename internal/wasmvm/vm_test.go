package wasmvm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"wasmbench/internal/wasm"
)

// buildModule assembles a module with a set of test functions.
func buildModule() *wasm.Module {
	m := &wasm.Module{}
	tII_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	tI_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	tI_L := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}})
	tFF_F := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.F64}})
	m.Mem = &wasm.MemType{Min: 1, Max: 256, HasMax: true}

	// add(a, b) = a + b
	m.Funcs = append(m.Funcs, wasm.Function{Type: tII_I, Name: "add", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpLocalGet, A: 1},
		{Op: wasm.OpI32Add}, {Op: wasm.OpEnd},
	}})
	// div(a, b) = a / b  (traps on b == 0)
	m.Funcs = append(m.Funcs, wasm.Function{Type: tII_I, Name: "div", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpLocalGet, A: 1},
		{Op: wasm.OpI32DivS}, {Op: wasm.OpEnd},
	}})
	// sum(n): loop accumulating 0..n-1 into an i64
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_L, Name: "sum",
		Locals: []wasm.ValType{wasm.I32, wasm.I64},
		Body: []wasm.Instr{
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLoop, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32GeS},
			{Op: wasm.OpBrIf, A: 1},
			{Op: wasm.OpLocalGet, A: 2}, {Op: wasm.OpLocalGet, A: 1},
			{Op: wasm.OpI64ExtendI32S}, {Op: wasm.OpI64Add}, {Op: wasm.OpLocalSet, A: 2},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpI32Const, Val: 1},
			{Op: wasm.OpI32Add}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpBr, A: 0},
			{Op: wasm.OpEnd},
			{Op: wasm.OpEnd},
			{Op: wasm.OpLocalGet, A: 2},
			{Op: wasm.OpEnd},
		}})
	// fib(n): recursion exercises the call machinery
	fibIdx := uint32(3)
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "fib", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32Const, Val: 3}, {Op: wasm.OpI32LtS},
		{Op: wasm.OpIf, BlockType: wasm.BlockNone},
		{Op: wasm.OpI32Const, Val: 1}, {Op: wasm.OpReturn},
		{Op: wasm.OpEnd},
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32Const, Val: 1}, {Op: wasm.OpI32Sub},
		{Op: wasm.OpCall, A: fibIdx},
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32Const, Val: 2}, {Op: wasm.OpI32Sub},
		{Op: wasm.OpCall, A: fibIdx},
		{Op: wasm.OpI32Add},
		{Op: wasm.OpEnd},
	}})
	// hypot(a, b) = sqrt(a*a + b*b)
	m.Funcs = append(m.Funcs, wasm.Function{Type: tFF_F, Name: "hypot", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpF64Mul},
		{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpF64Mul},
		{Op: wasm.OpF64Add}, {Op: wasm.OpF64Sqrt}, {Op: wasm.OpEnd},
	}})
	// memtest(addr) = store 0xDEADBEEF at addr, load it back
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "memtest", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32Const, Val: int64(int32(-559038737))},
		{Op: wasm.OpI32Store, A: 2},
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32Load, A: 2}, {Op: wasm.OpEnd},
	}})
	// grow(n) = memory.grow(n)
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "grow", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpMemoryGrow}, {Op: wasm.OpEnd},
	}})
	// switcher(n): br_table over 3 cases
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "switcher",
		Locals: []wasm.ValType{wasm.I32},
		Body: []wasm.Instr{
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpBrTable, Targets: []uint32{0, 1}, A: 2},
			{Op: wasm.OpEnd},
			{Op: wasm.OpI32Const, Val: 100}, {Op: wasm.OpLocalSet, A: 1}, {Op: wasm.OpBr, A: 1},
			{Op: wasm.OpEnd},
			{Op: wasm.OpI32Const, Val: 200}, {Op: wasm.OpLocalSet, A: 1}, {Op: wasm.OpBr, A: 0},
			{Op: wasm.OpEnd},
			// result = (local1 == 0) ? 300 : local1
			{Op: wasm.OpI32Const, Val: 300},
			{Op: wasm.OpLocalGet, A: 1},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpI32Eqz},
			{Op: wasm.OpSelect},
			{Op: wasm.OpEnd},
		}})
	for i, name := range []string{"add", "div", "sum", "fib", "hypot", "memtest", "grow", "switcher"} {
		m.Exports = append(m.Exports, wasm.Export{Name: name, Kind: wasm.ExportFunc, Idx: uint32(i)})
	}
	return m
}

func newVM(t *testing.T, cfg Config) *VM {
	t.Helper()
	vm, err := New(buildModule(), 0, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	return vm
}

func call1(t *testing.T, vm *VM, name string, args ...uint64) uint64 {
	t.Helper()
	res, err := vm.Call(name, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", name, err)
	}
	if len(res) != 1 {
		t.Fatalf("Call(%s): expected 1 result, got %d", name, len(res))
	}
	return res[0]
}

func TestBasicArithmetic(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if got := call1(t, vm, "add", I32(2), I32(40)); AsI32(got) != 42 {
		t.Errorf("add(2,40) = %d", AsI32(got))
	}
	if got := call1(t, vm, "add", I32(math.MaxInt32), I32(1)); AsI32(got) != math.MinInt32 {
		t.Errorf("i32 wraparound: got %d", AsI32(got))
	}
	if got := call1(t, vm, "div", I32(-7), I32(2)); AsI32(got) != -3 {
		t.Errorf("div(-7,2) = %d, want -3 (truncated)", AsI32(got))
	}
}

func TestLoopSum(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if got := call1(t, vm, "sum", I32(1000)); AsI64(got) != 499500 {
		t.Errorf("sum(1000) = %d, want 499500", AsI64(got))
	}
	if got := call1(t, vm, "sum", I32(0)); AsI64(got) != 0 {
		t.Errorf("sum(0) = %d", AsI64(got))
	}
}

func TestRecursionFib(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if got := call1(t, vm, "fib", I32(10)); AsI32(got) != 55 {
		t.Errorf("fib(10) = %d, want 55", AsI32(got))
	}
}

func TestFloatHypot(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if got := AsF64(call1(t, vm, "hypot", F64(3), F64(4))); got != 5 {
		t.Errorf("hypot(3,4) = %v", got)
	}
}

func TestMemoryStoreLoad(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if got := call1(t, vm, "memtest", I32(1024)); uint32(got) != 0xDEADBEEF {
		t.Errorf("memtest = %#x", uint32(got))
	}
}

func TestMemoryOOBTrap(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	_, err := vm.Call("memtest", I32(int32(PageSize))) // one past the single page
	var oob *TrapOOB
	if !errors.As(err, &oob) {
		t.Fatalf("expected OOB trap, got %v", err)
	}
}

func TestDivByZeroTrap(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if _, err := vm.Call("div", I32(1), I32(0)); !errors.Is(err, ErrDivByZero) {
		t.Fatalf("expected div-by-zero trap, got %v", err)
	}
	if _, err := vm.Call("div", I32(math.MinInt32), I32(-1)); !errors.Is(err, ErrIntOverflow) {
		t.Fatalf("expected overflow trap, got %v", err)
	}
}

func TestMemoryGrowSemantics(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	if got := call1(t, vm, "grow", I32(3)); AsI32(got) != 1 {
		t.Errorf("grow(3) returned %d, want old size 1", AsI32(got))
	}
	if p := vm.Memory().Pages(); p != 4 {
		t.Errorf("pages after grow = %d, want 4", p)
	}
	// Growing past the max (256) must fail with -1.
	if got := call1(t, vm, "grow", I32(10000)); AsI32(got) != -1 {
		t.Errorf("oversized grow returned %d, want -1", AsI32(got))
	}
	if vm.PeakMemoryBytes() != 4*PageSize {
		t.Errorf("peak = %d", vm.PeakMemoryBytes())
	}
}

func TestGrowGranularityRounding(t *testing.T) {
	// Emscripten-style 16 MiB chunks: a 1-page request commits 256 pages.
	mem := NewMemory(1, 10000, 256)
	if old := mem.Grow(1); old != 1 {
		t.Fatalf("grow returned %d", old)
	}
	if p := mem.Pages(); p != 257 {
		t.Errorf("pages = %d, want 257 (granularity-rounded)", p)
	}
	// When rounding would exceed the max, the exact request still succeeds.
	tight := NewMemory(1, 4, 256)
	if old := tight.Grow(2); old != 1 {
		t.Fatalf("tight grow returned %d", old)
	}
	if p := tight.Pages(); p != 3 {
		t.Errorf("tight pages = %d, want 3", p)
	}
	// And a request beyond the max fails outright.
	if r := tight.Grow(100); r != -1 {
		t.Errorf("over-max grow = %d, want -1", r)
	}
}

func TestBrTableSwitch(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	for n, want := range map[int32]int32{0: 100, 1: 200, 2: 300, 7: 300} {
		if got := AsI32(call1(t, vm, "switcher", I32(n))); got != want {
			t.Errorf("switcher(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCyclesMonotonic(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	c0 := vm.Cycles()
	call1(t, vm, "sum", I32(10))
	c1 := vm.Cycles()
	call1(t, vm, "sum", I32(10000))
	c2 := vm.Cycles()
	if !(c0 < c1 && c1 < c2) {
		t.Fatalf("cycles not increasing: %v %v %v", c0, c1, c2)
	}
	if (c2-c1)/(c1-c0) < 10 {
		t.Errorf("1000x more work should cost much more: %v vs %v", c2-c1, c1-c0)
	}
}

func TestTierUpHappensAndHelps(t *testing.T) {
	mkCfg := func(mode TierMode) Config {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.TierUpThreshold = 100
		return cfg
	}
	both := newVM(t, mkCfg(TierBoth))
	call1(t, both, "sum", I32(200000))
	if both.Stats().TierUps == 0 {
		t.Fatal("expected tier-up in TierBoth mode")
	}
	basic := newVM(t, mkCfg(TierBasicOnly))
	call1(t, basic, "sum", I32(200000))
	if basic.Stats().TierUps != 0 {
		t.Fatal("TierBasicOnly must not tier up")
	}
	if both.Cycles() >= basic.Cycles() {
		t.Errorf("tiered-up run should be cheaper: both=%v basic=%v", both.Cycles(), basic.Cycles())
	}
	opt := newVM(t, mkCfg(TierOptOnly))
	call1(t, opt, "sum", I32(200000))
	if opt.Cycles() >= basic.Cycles() {
		t.Errorf("opt-only should beat basic-only on a hot loop: opt=%v basic=%v", opt.Cycles(), basic.Cycles())
	}
}

func TestTinyProgramGainsNothingFromJIT(t *testing.T) {
	// The paper's CHStone observation: small inputs never reach the JIT
	// threshold, so tiering does not help.
	mk := func(mode TierMode) float64 {
		cfg := DefaultConfig()
		cfg.Mode = mode
		vm := newVM(t, cfg)
		call1(t, vm, "sum", I32(50))
		return vm.Cycles()
	}
	both, basic := mk(TierBoth), mk(TierBasicOnly)
	if both != basic {
		t.Errorf("tiny program: TierBoth (%v) should equal TierBasicOnly (%v)", both, basic)
	}
}

func TestStepLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepLimit = 1000
	vm := newVM(t, cfg)
	if _, err := vm.Call("sum", I32(100000)); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("expected step limit error, got %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CallDepthLimit = 10
	vm := newVM(t, cfg)
	if _, err := vm.Call("fib", I32(30)); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("expected call depth error, got %v", err)
	}
}

func TestOpCountsInstrumented(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	call1(t, vm, "sum", I32(100))
	s := vm.Stats()
	ops := s.ArithOps()
	// Each iteration does one i64.add and one i32.add: 200 total adds (+

	// loop-exit compare adds none).
	if ops["ADD"] != 200 {
		t.Errorf("ADD count = %d, want 200", ops["ADD"])
	}
	if ops["MUL"] != 0 || ops["DIV"] != 0 {
		t.Errorf("unexpected MUL/DIV counts: %v", ops)
	}
	if s.Steps == 0 {
		t.Error("steps not counted")
	}
}

func TestHostImport(t *testing.T) {
	m := buildModule()
	th := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Imports = append(m.Imports, wasm.Import{Module: "env", Field: "twice", Type: th})
	// Imports precede defined funcs in index space; rebuild call targets.
	// buildModule uses absolute indices for fib's self-call, so append the
	// import only for this dedicated module: easier to build a fresh one.
	m2 := &wasm.Module{}
	ti := m2.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m2.Imports = append(m2.Imports, wasm.Import{Module: "env", Field: "twice", Type: ti})
	m2.Funcs = append(m2.Funcs, wasm.Function{Type: ti, Name: "callhost", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0},
		{Op: wasm.OpCall, A: 0},
		{Op: wasm.OpEnd},
	}})
	m2.Exports = append(m2.Exports, wasm.Export{Name: "callhost", Kind: wasm.ExportFunc, Idx: 1})
	vm, err := New(m2, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.BindImport("env", "twice", func(_ *VM, args []uint64) ([]uint64, error) {
		return []uint64{I32(2 * AsI32(args[0]))}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	if got := call1(t, vm, "callhost", I32(21)); AsI32(got) != 42 {
		t.Errorf("callhost(21) = %d", AsI32(got))
	}
	// Unbound imports must error cleanly.
	vm2, _ := New(m2, 0, DefaultConfig())
	_ = vm2.Instantiate()
	if _, err := vm2.Call("callhost", I32(1)); !errors.Is(err, ErrUnboundImport) {
		t.Errorf("expected unbound import error, got %v", err)
	}
}

func TestAddMatchesGoSemantics(t *testing.T) {
	vm := newVM(t, DefaultConfig())
	f := func(a, b int32) bool {
		got := AsI32(call1(t, vm, "add", I32(a), I32(b)))
		return got == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIfElseValueBlocks(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.F64}})
	m.Funcs = append(m.Funcs, wasm.Function{Type: ti, Name: "pick", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0},
		{Op: wasm.OpIf, BlockType: int32(wasm.F64)},
		{Op: wasm.OpF64Const, Val: wasm.F64Bits(1.5)},
		{Op: wasm.OpElse},
		{Op: wasm.OpF64Const, Val: wasm.F64Bits(2.5)},
		{Op: wasm.OpEnd},
		{Op: wasm.OpEnd},
	}})
	m.Exports = append(m.Exports, wasm.Export{Name: "pick", Kind: wasm.ExportFunc, Idx: 0})
	vm, err := New(m, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	if got := AsF64(call1(t, vm, "pick", I32(1))); got != 1.5 {
		t.Errorf("pick(1) = %v", got)
	}
	if got := AsF64(call1(t, vm, "pick", I32(0))); got != 2.5 {
		t.Errorf("pick(0) = %v", got)
	}
}

func TestEncodedModuleRunsAfterDecode(t *testing.T) {
	bin, err := wasm.Encode(buildModule())
	if err != nil {
		t.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(m, len(bin), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	if got := call1(t, vm, "fib", I32(12)); AsI32(got) != 144 {
		t.Errorf("fib(12) via binary = %d", AsI32(got))
	}
}
