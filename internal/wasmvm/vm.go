// Package wasmvm executes WebAssembly modules with a tiered virtual machine
// modeled on the two-layer designs the paper studies (§4.4.2): a basic tier
// (Chrome's LiftOff / Firefox's Baseline) and an optimizing tier (TurboFan /
// Ion), with hotness-driven tier-up.
//
// Besides producing real program results, the VM maintains a deterministic
// virtual-cycle clock driven by per-tier cost tables, dynamic instruction
// counters per cost class, and linear-memory usage statistics — the three
// metrics the study collects.
package wasmvm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasm"
)

// TierMode selects which compiler tiers are available, mirroring the
// paper's Chrome flags (Table 11): both tiers (default), basic only
// ("--liftoff --no-wasm-tier-up"), or optimizing only ("--no-liftoff").
type TierMode int

// Tier modes.
const (
	TierBoth TierMode = iota
	TierBasicOnly
	TierOptOnly
)

// Config parameterizes the VM for one execution environment.
type Config struct {
	// BasicCost and OptCost are the per-class virtual-cycle cost tables of
	// the two tiers.
	BasicCost CostTable
	OptCost   CostTable
	// CompileBasicPerInstr and CompileOptPerInstr are one-time compile
	// charges per static instruction.
	CompileBasicPerInstr float64
	CompileOptPerInstr   float64
	// TierUpThreshold is the hotness (calls + loop back-edges) after which a
	// function is promoted to the optimizing tier in TierBoth mode.
	TierUpThreshold uint64
	Mode            TierMode
	// DecodePerByte is the instantiation charge for decoding/validating the
	// binary (Wasm needs no parsing — this is small, §2.2.2).
	DecodePerByte float64
	// InstantiateCost is a fixed module-instantiation charge (the mandatory
	// JS glue that creates the instance, §2.2.2).
	InstantiateCost float64
	// GrowBoundaryCost is the extra JS-boundary charge per memory.grow,
	// modeling Cheerp's resize-via-JS overhead (§4.2.2).
	GrowBoundaryCost float64
	// GrowGranularityPages rounds grow requests (Cheerp: 1 page = 64 KiB,
	// Emscripten: 256 pages = 16 MiB).
	GrowGranularityPages uint32
	// MaxPages caps linear memory; 0 means the spec maximum (64 Ki pages).
	MaxPages uint32
	// StepLimit aborts runaway programs after this many dynamic
	// instructions; 0 means no limit.
	StepLimit uint64
	// CallDepthLimit guards the host stack; 0 means 10000.
	CallDepthLimit int
	// DisableFusion turns off the load-time superinstruction pass
	// (fuse.go). Fusion never changes virtual cycles, step counts, or
	// traces — only wall-clock dispatch speed — so this exists for
	// equivalence tests and interpreter-overhead studies. Fusion is also
	// skipped automatically when StepLimit is set, preserving the exact
	// instruction at which the budget trips.
	DisableFusion bool
	// DisableRegTier turns off the register-form optimizing tier
	// (regalloc.go/regexec.go): tier-up then only swaps cost tables, as
	// the basic interpreter always did. Like fusion, the register tier
	// never changes virtual cycles, step counts, stats, profiles, or
	// traces — only wall-clock dispatch speed — so this exists for
	// equivalence tests and dispatch-overhead studies. The register tier
	// is also skipped automatically when StepLimit is set: a translated
	// instruction charges all of its fused components before the budget
	// check, which could overshoot the exact trip instruction.
	DisableRegTier bool
	// DisableAOTTier turns off the closure-threaded AOT tier (aot.go /
	// aotexec.go): hot functions then keep running the register-dispatch
	// loop. Like fusion and the register tier, the AOT tier never changes
	// virtual cycles, step counts, stats, profiles, or traces — only
	// wall-clock dispatch speed. The AOT form is built from the register
	// form, so the tier is also off implicitly whenever the register tier
	// is (DisableRegTier or a step limit).
	DisableAOTTier bool
	// AOTThreshold is the hotness after which an optimizing-tier function's
	// register body is AOT-compiled into superblocks of pre-bound closures.
	// 0 engages the AOT tier together with the register tier (hotness is
	// always past zero by then); the default holds it at the same point as
	// tier-up.
	AOTThreshold uint64
	// Tracer receives typed execution events (tier-ups, memory grows,
	// call enter/exit) stamped with the virtual-cycle clock. nil disables
	// tracing; hook sites cost one branch.
	Tracer obsv.Tracer
	// Profile enables per-function virtual-cycle profiles (also implied by
	// a non-nil Tracer).
	Profile bool
	// Faults arms deterministic fault injection (memory.grow denial,
	// register-tier translation failure, artificial stalls). nil — the
	// default — is completely inert: every injection site is guarded by a
	// single nil check and the execution path is byte-identical to a build
	// without fault injection.
	Faults *faultinject.Plan
	// Instruments publishes live counters to a telemetry registry: per-tier
	// cycles, steps, tier-ups, memory grows, fusion and register-tier
	// totals. nil (the default) is inert under the same discipline as
	// Tracer/Faults: rare events cost one branch, and bulk counters are
	// flushed only at exported Call boundaries, so the dispatch loop itself
	// never touches an instrument. Instruments never feed back into the
	// virtual clock — runs are byte-identical with or without them.
	Instruments *telemetry.VMInstruments
}

// DefaultConfig returns a neutral configuration with the baseline tier cost
// tables and Chrome-like tiering.
func DefaultConfig() Config {
	return Config{
		BasicCost:            BaselineBasicCost(),
		OptCost:              BaselineOptCost(),
		CompileBasicPerInstr: 6,
		CompileOptPerInstr:   60,
		TierUpThreshold:      1500,
		AOTThreshold:         1500,
		Mode:                 TierBoth,
		DecodePerByte:        0.6,
		InstantiateCost:      9000,
		GrowBoundaryCost:     350,
		GrowGranularityPages: 1,
		MaxPages:             65536,
	}
}

// HostFunc is a native function bound to a function import. Arguments and
// results use the VM's raw 64-bit value representation.
type HostFunc func(vm *VM, args []uint64) ([]uint64, error)

// branchTarget is a resolved branch destination.
type branchTarget struct {
	pc     int32 // destination program counter
	unwind int32 // absolute operand-stack height to unwind to (frame-relative)
	keep   uint8 // number of stack values carried to the target
}

// lop is a lowered instruction: the original opcode plus resolved control
// targets and a precomputed cost class. Superinstructions (see fuse.go)
// additionally carry their partner's opcode (op2), cost class (class2),
// and immediate (b2).
type lop struct {
	op      wasm.Opcode
	op2     wasm.Opcode
	class   CostClass
	class2  CostClass
	keep    uint8
	a, b    uint32
	b2      uint32
	val     int64
	jump    branchTarget   // br, br_if (taken), if (false edge), else
	targets []branchTarget // br_table
}

// compiledFunc is the executable form of one defined function.
type compiledFunc struct {
	name     string
	typ      wasm.FuncType
	nLocals  int // params + declared locals
	code     []lop
	tier     TierMode // TierBasicOnly => basic, TierOptOnly => optimized
	hotness  uint64
	tieredUp bool

	// heights[pc] is the operand-stack height on entry to code[pc], derived
	// by abstract interpretation of stack effects during lowering; -1 marks
	// statically unreachable slots. The register translator reads these to
	// assign every stack slot a fixed frame register.
	heights []int32

	// Register-form body, produced lazily by translateReg the first time
	// the function runs (or resumes via OSR) in the optimizing tier. The
	// translation is 1:1 — regCode[pc] executes exactly code[pc] — so
	// branch targets, OSR safe points, and fused partner slots need no
	// remapping.
	regCode  []rop
	maxStack int32 // peak operand-stack height (register frame = locals + this)
	regTried bool  // translation attempted (regCode may still be nil on bail)

	// AOT superblock form, produced lazily by translateAOT once the
	// function is hot enough (Config.AOTThreshold) in the optimizing tier.
	// aotEntry maps a register-form pc to its superblock index (-1 = not a
	// block leader), so OSR can enter mid-function at any branch target.
	aotBlocks []aotBlock
	aotEntry  []int32
	aotTried  bool // translation attempted (aotBlocks may still be nil on bail)
}

// Stats aggregates execution counters.
type Stats struct {
	Steps   uint64
	Counts  [NumCostClasses]uint64
	TierUps int
	GrowOps int
	// BasicCycles and OptCycles split the cycles charged while executing
	// instructions by the tier cost table that was active at the charge
	// (memory.grow boundary charges included; one-time compile,
	// instantiate, and tier-up charges excluded). Together they show where
	// a tier-mode experiment's cycles land, not just how many tier-ups
	// fired.
	BasicCycles float64
	OptCycles   float64
	// AOTCycles is the sub-split of OptCycles charged while the AOT
	// superblock dispatcher was running (always <= OptCycles). It is the
	// one dispatcher-visible Stats field: a configuration that never
	// engages the AOT tier reports 0 here while charging the identical
	// OptCycles total, so cross-dispatcher equivalence checks compare
	// everything except this split.
	AOTCycles float64
}

// ArithOps returns the counts the paper's Table 12 reports: ADD, MUL, DIV,
// REM, SHIFT, AND, OR (OR includes XOR as in the paper's grouping).
func (s *Stats) ArithOps() map[string]uint64 {
	return map[string]uint64{
		"ADD":   s.Counts[CAddSub] + s.Counts[CFAddSub],
		"MUL":   s.Counts[CMul] + s.Counts[CFMul],
		"DIV":   s.Counts[CDiv] + s.Counts[CFDiv],
		"REM":   s.Counts[CRem],
		"SHIFT": s.Counts[CShift],
		"AND":   s.Counts[CAnd],
		"OR":    s.Counts[COr] + s.Counts[CXor],
	}
}

// funcProf accumulates one function's profile while profiling is enabled:
// call count, self/total virtual cycles, and the dynamic instruction mix
// by cost class. classCounts is padded to 256 entries so a uint8 CostClass
// index needs no bounds check in the dispatch loops; entries at and above
// NumCostClasses stay zero.
type funcProf struct {
	calls       uint64
	totalCycles float64
	selfCycles  float64
	classCounts [256]uint64
}

// VM is an instantiated module ready to execute exported functions.
type VM struct {
	module  *wasm.Module
	cfg     Config
	funcs   []compiledFunc
	globals []uint64
	mem     *Memory
	imports []HostFunc
	stack   []uint64
	locals  []uint64
	depth   int
	cycles  float64
	stats   Stats
	inited  bool
	binSize int

	tracer    obsv.Tracer
	profiling bool
	profs     []funcProf
	// inst is the live-telemetry bundle (nil = inert); lastFlush is the
	// Stats snapshot at the previous instrument flush, so each exported
	// Call publishes only its delta.
	inst      *telemetry.VMInstruments
	lastFlush Stats
	// faults is the armed fault plan (nil = inert; see Config.Faults).
	faults *faultinject.Plan
	// childCycles accumulates callee cycles for the frame currently being
	// profiled, so selfCycles = total − children.
	childCycles float64
	// fused is the static count of superinstruction pairs formed at load
	// time (0 when fusion is disabled).
	fused int
	// regEnabled gates the register-form optimizing tier (off under
	// DisableRegTier or a step limit); regBuilt counts translated bodies.
	regEnabled bool
	regBuilt   int
	// aotEnabled gates the closure-threaded AOT tier (off under
	// DisableAOTTier, and implicitly whenever the register tier is off);
	// aotBuilt/aotBlockCount count AOT-compiled functions and the
	// superblocks built for them.
	aotEnabled    bool
	aotBuilt      int
	aotBlockCount int
	// aotErr and aotRb carry a trap out of an AOT closure chain to the
	// superblock driver, which rolls back the pre-counted suffix before
	// flushing (see aotexec.go).
	aotErr error
	aotRb  *aotRollback
	// tally is the live per-class instruction counter behind Stats.Counts,
	// padded to 256 entries so a uint8 CostClass index needs no bounds
	// check in the dispatch loops; Stats() folds it back down.
	tally [256]uint64
	// scratchClass absorbs per-class attribution writes when profiling is
	// off, so the dispatch loop increments unconditionally instead of
	// branching on every instruction. Never read.
	scratchClass [256]uint64
	// snap is the post-init image this instance restores to on Reset: set
	// by Snapshot() on the origin VM and inherited by every clone (see
	// snapshot.go). nil for ordinary cold instances.
	snap *Snapshot
	// pool is the InstancePool that owns this instance, if any; Put uses it
	// to reject instances it does not track (e.g. cold fallbacks).
	pool *InstancePool
}

// ErrStepLimit reports that the configured dynamic instruction budget was
// exhausted.
var ErrStepLimit = errors.New("wasmvm: step limit exceeded")

// New validates and lowers the module. binarySize is the encoded module
// size in bytes, used for the instantiation decode charge (pass 0 if the
// module was built in memory and size is not meaningful).
func New(m *wasm.Module, binarySize int, cfg Config) (*VM, error) {
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	if cfg.CallDepthLimit == 0 {
		cfg.CallDepthLimit = 10000
	}
	if cfg.MaxPages == 0 {
		cfg.MaxPages = 65536
	}
	vm := &VM{module: m, cfg: cfg, binSize: binarySize}
	vm.tracer = cfg.Tracer
	vm.faults = cfg.Faults
	vm.inst = cfg.Instruments
	vm.profiling = cfg.Profile || cfg.Tracer != nil
	vm.funcs = make([]compiledFunc, len(m.Funcs))
	for i := range m.Funcs {
		cf, err := lowerFunc(m, &m.Funcs[i])
		if err != nil {
			return nil, fmt.Errorf("wasmvm: func %d: %w", i, err)
		}
		if cf.name == "" {
			cf.name = fmt.Sprintf("func%d", i)
		}
		vm.funcs[i] = cf
	}
	if vm.profiling {
		vm.profs = make([]funcProf, len(vm.funcs))
	}
	if !cfg.DisableFusion && cfg.StepLimit == 0 {
		for i := range vm.funcs {
			vm.fused += fuseFunc(vm.funcs[i].code)
		}
	}
	if vm.inst != nil {
		vm.inst.FusedPairs.Add(float64(vm.fused))
	}
	vm.regEnabled = !cfg.DisableRegTier && cfg.StepLimit == 0
	vm.aotEnabled = !cfg.DisableAOTTier && vm.regEnabled
	vm.imports = make([]HostFunc, len(m.Imports))
	return vm, nil
}

// FusedPairs returns the number of superinstruction pairs formed at load
// time; 0 when fusion was disabled (explicitly or by a step limit).
func (vm *VM) FusedPairs() int { return vm.fused }

// RegTranslated returns how many functions have been translated to
// register form so far; 0 when the register tier is disabled (explicitly
// or by a step limit) or when nothing has tiered up yet.
func (vm *VM) RegTranslated() int { return vm.regBuilt }

// AOTTranslated returns how many functions have been AOT-compiled into
// superblock form so far; 0 when the AOT tier is disabled (explicitly or
// via a disabled register tier) or when nothing has crossed the AOT
// threshold yet.
func (vm *VM) AOTTranslated() int { return vm.aotBuilt }

// AOTSuperblocks returns the total number of superblocks built across all
// AOT-compiled functions.
func (vm *VM) AOTSuperblocks() int { return vm.aotBlockCount }

// Profile returns the per-function virtual-cycle profiles collected while
// profiling was enabled (Config.Profile or a non-nil Tracer); nil
// otherwise. Functions that never ran are omitted.
func (vm *VM) Profile() []obsv.FuncProfile {
	if !vm.profiling {
		return nil
	}
	out := make([]obsv.FuncProfile, 0, len(vm.funcs))
	for i := range vm.funcs {
		p := &vm.profs[i]
		if p.calls == 0 {
			continue
		}
		fp := obsv.FuncProfile{
			Name:        vm.funcs[i].name,
			Track:       "wasm",
			Calls:       p.calls,
			SelfCycles:  p.selfCycles,
			TotalCycles: p.totalCycles,
		}
		for c := CostClass(0); c < NumCostClasses; c++ {
			if n := p.classCounts[c]; n != 0 {
				fp.Classes = append(fp.Classes, obsv.ClassCount{Class: c.String(), Count: n})
			}
		}
		out = append(out, fp)
	}
	return out
}

// BindImport installs a host function for the import module.field.
func (vm *VM) BindImport(module, field string, fn HostFunc) error {
	for i, imp := range vm.module.Imports {
		if imp.Module == module && imp.Field == field {
			vm.imports[i] = fn
			return nil
		}
	}
	return fmt.Errorf("wasmvm: no import %s.%s", module, field)
}

// Instantiate allocates memory and globals, copies data segments, applies
// the tier policy's up-front compilation charges, and charges startup costs.
func (vm *VM) Instantiate() error {
	m := vm.module
	if m.Mem != nil {
		maxP := vm.cfg.MaxPages
		if m.Mem.HasMax && m.Mem.Max < maxP {
			maxP = m.Mem.Max
		}
		vm.mem = NewMemory(m.Mem.Min, maxP, vm.cfg.GrowGranularityPages)
		for _, d := range m.Data {
			if int(d.Offset)+len(d.Bytes) > len(vm.mem.Bytes()) {
				return fmt.Errorf("wasmvm: data segment at %d overflows memory", d.Offset)
			}
			copy(vm.mem.Bytes()[d.Offset:], d.Bytes)
		}
	}
	vm.globals = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		if g.Type == wasm.I32 {
			vm.globals[i] = uint64(uint32(int32(g.Init)))
		} else {
			vm.globals[i] = uint64(g.Init)
		}
	}
	vm.applyInstantiateCharges()
	vm.inited = true
	return nil
}

// applyInstantiateCharges charges the virtual instantiation costs (decode,
// instance creation, up-front tier compilation) and sets each function's
// starting tier per the tier policy. Shared by Instantiate, snapshot
// clones, and Reset so all three produce the identical virtual state.
func (vm *VM) applyInstantiateCharges() {
	vm.cycles += vm.cfg.InstantiateCost + vm.cfg.DecodePerByte*float64(vm.binSize)
	total := 0
	for i := range vm.funcs {
		total += len(vm.funcs[i].code)
	}
	switch vm.cfg.Mode {
	case TierBoth, TierBasicOnly:
		vm.cycles += vm.cfg.CompileBasicPerInstr * float64(total)
		for i := range vm.funcs {
			vm.funcs[i].tier = TierBasicOnly
		}
	case TierOptOnly:
		vm.cycles += vm.cfg.CompileOptPerInstr * float64(total)
		for i := range vm.funcs {
			vm.funcs[i].tier = TierOptOnly
		}
	}
}

// Call invokes an exported function by name with raw 64-bit arguments.
func (vm *VM) Call(name string, args ...uint64) ([]uint64, error) {
	if !vm.inited {
		return nil, errors.New("wasmvm: module not instantiated")
	}
	idx, ok := vm.module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("wasmvm: no exported function %q", name)
	}
	res, err := vm.callIndex(idx, args)
	vm.flushInstruments()
	return res, err
}

// CallIndex invokes a function by combined index space position.
func (vm *VM) CallIndex(idx uint32, args ...uint64) ([]uint64, error) {
	if !vm.inited {
		return nil, errors.New("wasmvm: module not instantiated")
	}
	res, err := vm.callIndex(idx, args)
	vm.flushInstruments()
	return res, err
}

// flushInstruments publishes the bulk counters accumulated since the last
// flush (steps, per-tier cycles, peak memory) to the instrument bundle.
// Called once per exported call so the dispatch loops never carry
// telemetry writes; rare events (tier-up, grow, translation) publish at
// their own hook sites instead.
func (vm *VM) flushInstruments() {
	if vm.inst == nil {
		return
	}
	s := vm.Stats()
	vm.inst.Runs.Inc()
	vm.inst.Steps.Add(float64(s.Steps - vm.lastFlush.Steps))
	vm.inst.BasicCycles.Add(s.BasicCycles - vm.lastFlush.BasicCycles)
	vm.inst.OptCycles.Add(s.OptCycles - vm.lastFlush.OptCycles)
	vm.inst.AOTCycles.Add(s.AOTCycles - vm.lastFlush.AOTCycles)
	vm.inst.PeakMemBytes.SetMax(float64(vm.PeakMemoryBytes()))
	vm.lastFlush = s
}

// Cycles returns the accumulated virtual-cycle count.
func (vm *VM) Cycles() float64 { return vm.cycles }

// AddCycles charges extra cycles (used by the host boundary model).
func (vm *VM) AddCycles(c float64) { vm.cycles += c }

// Stats returns a copy of the execution counters.
func (vm *VM) Stats() Stats {
	s := vm.stats
	copy(s.Counts[:], vm.tally[:NumCostClasses])
	if vm.mem != nil {
		s.GrowOps = vm.mem.GrowCount()
	}
	return s
}

// Memory returns the linear memory instance (nil if the module has none).
func (vm *VM) Memory() *Memory { return vm.mem }

// PeakMemoryBytes returns the linear-memory high-water mark in bytes.
func (vm *VM) PeakMemoryBytes() uint64 {
	if vm.mem == nil {
		return 0
	}
	return uint64(vm.mem.PeakPages()) * PageSize
}

// ReadGlobal returns the raw value of global i.
func (vm *VM) ReadGlobal(i int) (uint64, error) {
	if i < 0 || i >= len(vm.globals) {
		return 0, fmt.Errorf("wasmvm: global %d out of range", i)
	}
	return vm.globals[i], nil
}

// lowerFunc resolves structured control flow to branch targets and
// pre-classifies every instruction. It runs two passes: the first matches
// every block/loop/if with its else/end, the second replays the control
// stack with operand heights and resolves each branch immediately.
func lowerFunc(m *wasm.Module, f *wasm.Function) (compiledFunc, error) {
	ft := m.Types[f.Type]
	cf := compiledFunc{
		name:    f.Name,
		typ:     ft,
		nLocals: len(ft.Params) + len(f.Locals),
		code:    make([]lop, len(f.Body)),
		heights: make([]int32, len(f.Body)),
	}

	// Pass 1: match structural markers. matchEnd[pc] is the pc of the
	// matching end for a block/loop/if at pc; matchElse[pc] is the matching
	// else (or -1).
	matchEnd := make(map[int]int)
	matchElse := make(map[int]int)
	var open []int
	for pc := range f.Body {
		switch f.Body[pc].Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			open = append(open, pc)
		case wasm.OpElse:
			if len(open) == 0 {
				return cf, fmt.Errorf("else without if at pc %d", pc)
			}
			matchElse[open[len(open)-1]] = pc
		case wasm.OpEnd:
			if len(open) == 0 {
				// Function-closing end: must be the last instruction.
				if pc != len(f.Body)-1 {
					return cf, fmt.Errorf("unbalanced end at pc %d", pc)
				}
				continue
			}
			matchEnd[open[len(open)-1]] = pc
			open = open[:len(open)-1]
		}
	}
	if len(open) != 0 {
		return cf, fmt.Errorf("%d unclosed blocks", len(open))
	}

	// Pass 2: replay with heights and resolve branches.
	type frame struct {
		op     wasm.Opcode
		bt     int32
		height int
		pc     int // pc of the block/loop/if instruction; -1 for the function frame
	}
	fnBT := int32(wasm.BlockNone)
	if len(ft.Results) == 1 {
		fnBT = int32(ft.Results[0])
	}
	frames := []frame{{op: wasm.OpEnd, bt: fnBT, height: 0, pc: -1}}
	height := 0
	unreachable := false

	// resolve computes the branch target for label depth d.
	resolve := func(d int) (branchTarget, error) {
		if d >= len(frames) {
			return branchTarget{}, fmt.Errorf("branch depth %d out of range", d)
		}
		fr := frames[len(frames)-1-d]
		if fr.op == wasm.OpLoop {
			return branchTarget{pc: int32(fr.pc + 1), unwind: int32(fr.height), keep: 0}, nil
		}
		keep := uint8(0)
		if fr.bt != wasm.BlockNone {
			keep = 1
		}
		endPC := len(f.Body) // function frame: jump past the body
		if fr.pc >= 0 {
			endPC = matchEnd[fr.pc] + 1
		}
		return branchTarget{pc: int32(endPC), unwind: int32(fr.height), keep: keep}, nil
	}

	for pc := range f.Body {
		in := &f.Body[pc]
		l := &cf.code[pc]
		l.op = in.Op
		l.class = Classify(in.Op)
		l.a, l.b, l.val = in.A, in.B, in.Val

		// Entry height for the register translator; -1 = statically dead
		// (never executed: flow branched away and only rejoins at labels).
		if unreachable {
			cf.heights[pc] = -1
		} else {
			cf.heights[pc] = int32(height)
		}

		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			if in.Op == wasm.OpIf && !unreachable {
				height--
			}
			frames = append(frames, frame{op: in.Op, bt: in.BlockType, height: height, pc: pc})
			if in.Op == wasm.OpIf {
				// False edge: to after the else marker, or past end.
				if ePC, ok := matchElse[pc]; ok {
					l.jump = branchTarget{pc: int32(ePC + 1), unwind: int32(height), keep: 0}
				} else {
					l.jump = branchTarget{pc: int32(matchEnd[pc] + 1), unwind: int32(height), keep: 0}
				}
			}
			continue
		case wasm.OpElse:
			fr := frames[len(frames)-1]
			height = fr.height
			unreachable = false
			// Fallthrough from the then arm jumps past the end, carrying
			// the block result.
			keep := uint8(0)
			if fr.bt != wasm.BlockNone {
				keep = 1
			}
			l.jump = branchTarget{pc: int32(matchEnd[fr.pc] + 1), unwind: int32(fr.height), keep: keep}
			continue
		case wasm.OpEnd:
			if len(frames) == 1 {
				continue // function end
			}
			fr := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			height = fr.height
			if fr.bt != wasm.BlockNone {
				height++
			}
			unreachable = false
			continue
		case wasm.OpBr, wasm.OpBrIf:
			t, err := resolve(int(in.A))
			if err != nil {
				return cf, fmt.Errorf("pc %d: %w", pc, err)
			}
			l.jump = t
			if !unreachable {
				if in.Op == wasm.OpBrIf {
					height--
				} else {
					unreachable = true
				}
			}
			continue
		case wasm.OpBrTable:
			l.targets = make([]branchTarget, 0, len(in.Targets)+1)
			for _, lbl := range in.Targets {
				t, err := resolve(int(lbl))
				if err != nil {
					return cf, fmt.Errorf("pc %d: %w", pc, err)
				}
				l.targets = append(l.targets, t)
			}
			t, err := resolve(int(in.A))
			if err != nil {
				return cf, fmt.Errorf("pc %d: %w", pc, err)
			}
			l.targets = append(l.targets, t) // default is last
			unreachable = true
			continue
		case wasm.OpReturn:
			keep := uint8(0)
			if len(ft.Results) == 1 {
				keep = 1
			}
			l.jump = branchTarget{pc: int32(len(f.Body)), unwind: 0, keep: keep}
			unreachable = true
			continue
		case wasm.OpUnreachable:
			unreachable = true
			continue
		}
		if unreachable {
			continue
		}
		pops, pushes, err := stackEffect(m, ft, f, in)
		if err != nil {
			return cf, fmt.Errorf("pc %d: %w", pc, err)
		}
		height += pushes - pops
	}
	return cf, nil
}

// stackEffect returns the operand-stack pops and pushes of a plain (already
// control-handled) instruction.
func stackEffect(m *wasm.Module, ft wasm.FuncType, f *wasm.Function, in *wasm.Instr) (pops, pushes int, err error) {
	op := in.Op
	switch {
	case op >= wasm.OpI32Const && op <= wasm.OpF64Const:
		return 0, 1, nil
	case op == wasm.OpLocalGet || op == wasm.OpGlobalGet || op == wasm.OpMemorySize:
		return 0, 1, nil
	case op == wasm.OpLocalSet || op == wasm.OpGlobalSet || op == wasm.OpDrop:
		return 1, 0, nil
	case op == wasm.OpLocalTee || op == wasm.OpMemoryGrow:
		return 1, 1, nil
	case op >= wasm.OpI32Load && op <= wasm.OpI64Load32U:
		return 1, 1, nil
	case op >= wasm.OpI32Store && op <= wasm.OpI64Store32:
		return 2, 0, nil
	case op == wasm.OpSelect:
		return 3, 1, nil
	case op == wasm.OpCall:
		ct, err := m.FuncTypeOf(in.A)
		if err != nil {
			return 0, 0, err
		}
		return len(ct.Params), len(ct.Results), nil
	case op == wasm.OpNop:
		return 0, 0, nil
	case isUnaryNumeric(op):
		return 1, 1, nil
	default:
		return 2, 1, nil // binary numeric
	}
}

func isUnaryNumeric(op wasm.Opcode) bool {
	switch {
	case op == wasm.OpI32Eqz || op == wasm.OpI64Eqz:
		return true
	case op >= wasm.OpI32Clz && op <= wasm.OpI32Popcnt:
		return true
	case op >= wasm.OpI64Clz && op <= wasm.OpI64Popcnt:
		return true
	case op >= wasm.OpF32Abs && op <= wasm.OpF32Sqrt:
		return true
	case op >= wasm.OpF64Abs && op <= wasm.OpF64Sqrt:
		return true
	case op >= wasm.OpI32WrapI64 && op <= wasm.OpF64ReinterpretI64:
		return true
	}
	return false
}

// Raw value packing helpers shared with callers.

// I32 packs an int32 into the raw representation.
func I32(v int32) uint64 { return uint64(uint32(v)) }

// I64 packs an int64 into the raw representation.
func I64(v int64) uint64 { return uint64(v) }

// F32 packs a float32 into the raw representation.
func F32(v float32) uint64 { return uint64(math.Float32bits(v)) }

// F64 packs a float64 into the raw representation.
func F64(v float64) uint64 { return math.Float64bits(v) }

// AsI32 unpacks a raw value as int32.
func AsI32(v uint64) int32 { return int32(uint32(v)) }

// AsI64 unpacks a raw value as int64.
func AsI64(v uint64) int64 { return int64(v) }

// AsF32 unpacks a raw value as float32.
func AsF32(v uint64) float32 { return math.Float32frombits(uint32(v)) }

// AsF64 unpacks a raw value as float64.
func AsF64(v uint64) float64 { return math.Float64frombits(v) }

// popcnt64 is a tiny alias so the exec switch reads uniformly.
func popcnt64(v uint64) uint64 { return uint64(bits.OnesCount64(v)) }
