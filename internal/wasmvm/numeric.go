package wasmvm

import (
	"fmt"
	"math"
	"math/bits"

	"wasmbench/internal/wasm"
)

// Pure opcode evaluators shared by the stack interpreter (exec.go) and the
// register tier (regexec.go). Keeping the value semantics in one place is
// what lets the two dispatch loops stay byte-identical on every metric:
// they differ only in where operands live, never in what an opcode does.

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// numUnary evaluates a unary numeric or conversion opcode.
func numUnary(op wasm.Opcode, x uint64) (uint64, error) {
	switch op {
	case wasm.OpI32Eqz:
		return b2i(uint32(x) == 0), nil
	case wasm.OpI64Eqz:
		return b2i(x == 0), nil
	case wasm.OpI32Clz:
		return uint64(bits.LeadingZeros32(uint32(x))), nil
	case wasm.OpI32Ctz:
		return uint64(bits.TrailingZeros32(uint32(x))), nil
	case wasm.OpI32Popcnt:
		return uint64(bits.OnesCount32(uint32(x))), nil
	case wasm.OpI64Clz:
		return uint64(bits.LeadingZeros64(x)), nil
	case wasm.OpI64Ctz:
		return uint64(bits.TrailingZeros64(x)), nil
	case wasm.OpI64Popcnt:
		return popcnt64(x), nil
	case wasm.OpF32Abs:
		return F32(float32(math.Abs(float64(AsF32(x))))), nil
	case wasm.OpF32Neg:
		return F32(-AsF32(x)), nil
	case wasm.OpF32Ceil:
		return F32(float32(math.Ceil(float64(AsF32(x))))), nil
	case wasm.OpF32Floor:
		return F32(float32(math.Floor(float64(AsF32(x))))), nil
	case wasm.OpF32Trunc:
		return F32(float32(math.Trunc(float64(AsF32(x))))), nil
	case wasm.OpF32Nearest:
		return F32(float32(math.RoundToEven(float64(AsF32(x))))), nil
	case wasm.OpF32Sqrt:
		return F32(float32(math.Sqrt(float64(AsF32(x))))), nil
	case wasm.OpF64Abs:
		return F64(math.Abs(AsF64(x))), nil
	case wasm.OpF64Neg:
		return F64(-AsF64(x)), nil
	case wasm.OpF64Ceil:
		return F64(math.Ceil(AsF64(x))), nil
	case wasm.OpF64Floor:
		return F64(math.Floor(AsF64(x))), nil
	case wasm.OpF64Trunc:
		return F64(math.Trunc(AsF64(x))), nil
	case wasm.OpF64Nearest:
		return F64(math.RoundToEven(AsF64(x))), nil
	case wasm.OpF64Sqrt:
		return F64(math.Sqrt(AsF64(x))), nil
	default:
		return execConv(op, x)
	}
}

// numBinary evaluates a binary numeric opcode on x (deeper operand) and y.
func numBinary(op wasm.Opcode, x, y uint64) (uint64, error) {
	switch op {
	case wasm.OpI32Eq:
		return b2i(uint32(x) == uint32(y)), nil
	case wasm.OpI32Ne:
		return b2i(uint32(x) != uint32(y)), nil
	case wasm.OpI32LtS:
		return b2i(int32(x) < int32(y)), nil
	case wasm.OpI32LtU:
		return b2i(uint32(x) < uint32(y)), nil
	case wasm.OpI32GtS:
		return b2i(int32(x) > int32(y)), nil
	case wasm.OpI32GtU:
		return b2i(uint32(x) > uint32(y)), nil
	case wasm.OpI32LeS:
		return b2i(int32(x) <= int32(y)), nil
	case wasm.OpI32LeU:
		return b2i(uint32(x) <= uint32(y)), nil
	case wasm.OpI32GeS:
		return b2i(int32(x) >= int32(y)), nil
	case wasm.OpI32GeU:
		return b2i(uint32(x) >= uint32(y)), nil
	case wasm.OpI64Eq:
		return b2i(x == y), nil
	case wasm.OpI64Ne:
		return b2i(x != y), nil
	case wasm.OpI64LtS:
		return b2i(int64(x) < int64(y)), nil
	case wasm.OpI64LtU:
		return b2i(x < y), nil
	case wasm.OpI64GtS:
		return b2i(int64(x) > int64(y)), nil
	case wasm.OpI64GtU:
		return b2i(x > y), nil
	case wasm.OpI64LeS:
		return b2i(int64(x) <= int64(y)), nil
	case wasm.OpI64LeU:
		return b2i(x <= y), nil
	case wasm.OpI64GeS:
		return b2i(int64(x) >= int64(y)), nil
	case wasm.OpI64GeU:
		return b2i(x >= y), nil
	case wasm.OpF32Eq:
		return b2i(AsF32(x) == AsF32(y)), nil
	case wasm.OpF32Ne:
		return b2i(AsF32(x) != AsF32(y)), nil
	case wasm.OpF32Lt:
		return b2i(AsF32(x) < AsF32(y)), nil
	case wasm.OpF32Gt:
		return b2i(AsF32(x) > AsF32(y)), nil
	case wasm.OpF32Le:
		return b2i(AsF32(x) <= AsF32(y)), nil
	case wasm.OpF32Ge:
		return b2i(AsF32(x) >= AsF32(y)), nil
	case wasm.OpF64Eq:
		return b2i(AsF64(x) == AsF64(y)), nil
	case wasm.OpF64Ne:
		return b2i(AsF64(x) != AsF64(y)), nil
	case wasm.OpF64Lt:
		return b2i(AsF64(x) < AsF64(y)), nil
	case wasm.OpF64Gt:
		return b2i(AsF64(x) > AsF64(y)), nil
	case wasm.OpF64Le:
		return b2i(AsF64(x) <= AsF64(y)), nil
	case wasm.OpF64Ge:
		return b2i(AsF64(x) >= AsF64(y)), nil

	case wasm.OpI32Add:
		return uint64(uint32(x) + uint32(y)), nil
	case wasm.OpI32Sub:
		return uint64(uint32(x) - uint32(y)), nil
	case wasm.OpI32Mul:
		return uint64(uint32(x) * uint32(y)), nil
	case wasm.OpI32DivS:
		if uint32(y) == 0 {
			return 0, ErrDivByZero
		}
		if int32(x) == math.MinInt32 && int32(y) == -1 {
			return 0, ErrIntOverflow
		}
		return uint64(uint32(int32(x) / int32(y))), nil
	case wasm.OpI32DivU:
		if uint32(y) == 0 {
			return 0, ErrDivByZero
		}
		return uint64(uint32(x) / uint32(y)), nil
	case wasm.OpI32RemS:
		if uint32(y) == 0 {
			return 0, ErrDivByZero
		}
		if int32(x) == math.MinInt32 && int32(y) == -1 {
			return 0, nil
		}
		return uint64(uint32(int32(x) % int32(y))), nil
	case wasm.OpI32RemU:
		if uint32(y) == 0 {
			return 0, ErrDivByZero
		}
		return uint64(uint32(x) % uint32(y)), nil
	case wasm.OpI32And:
		return uint64(uint32(x) & uint32(y)), nil
	case wasm.OpI32Or:
		return uint64(uint32(x) | uint32(y)), nil
	case wasm.OpI32Xor:
		return uint64(uint32(x) ^ uint32(y)), nil
	case wasm.OpI32Shl:
		return uint64(uint32(x) << (uint32(y) & 31)), nil
	case wasm.OpI32ShrS:
		return uint64(uint32(int32(x) >> (uint32(y) & 31))), nil
	case wasm.OpI32ShrU:
		return uint64(uint32(x) >> (uint32(y) & 31)), nil
	case wasm.OpI32Rotl:
		return uint64(bits.RotateLeft32(uint32(x), int(uint32(y)&31))), nil
	case wasm.OpI32Rotr:
		return uint64(bits.RotateLeft32(uint32(x), -int(uint32(y)&31))), nil

	case wasm.OpI64Add:
		return x + y, nil
	case wasm.OpI64Sub:
		return x - y, nil
	case wasm.OpI64Mul:
		return x * y, nil
	case wasm.OpI64DivS:
		if y == 0 {
			return 0, ErrDivByZero
		}
		if int64(x) == math.MinInt64 && int64(y) == -1 {
			return 0, ErrIntOverflow
		}
		return uint64(int64(x) / int64(y)), nil
	case wasm.OpI64DivU:
		if y == 0 {
			return 0, ErrDivByZero
		}
		return x / y, nil
	case wasm.OpI64RemS:
		if y == 0 {
			return 0, ErrDivByZero
		}
		if int64(x) == math.MinInt64 && int64(y) == -1 {
			return 0, nil
		}
		return uint64(int64(x) % int64(y)), nil
	case wasm.OpI64RemU:
		if y == 0 {
			return 0, ErrDivByZero
		}
		return x % y, nil
	case wasm.OpI64And:
		return x & y, nil
	case wasm.OpI64Or:
		return x | y, nil
	case wasm.OpI64Xor:
		return x ^ y, nil
	case wasm.OpI64Shl:
		return x << (y & 63), nil
	case wasm.OpI64ShrS:
		return uint64(int64(x) >> (y & 63)), nil
	case wasm.OpI64ShrU:
		return x >> (y & 63), nil
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(x, int(y&63)), nil
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(x, -int(y&63)), nil

	case wasm.OpF32Add:
		return F32(AsF32(x) + AsF32(y)), nil
	case wasm.OpF32Sub:
		return F32(AsF32(x) - AsF32(y)), nil
	case wasm.OpF32Mul:
		return F32(AsF32(x) * AsF32(y)), nil
	case wasm.OpF32Div:
		return F32(AsF32(x) / AsF32(y)), nil
	case wasm.OpF32Min:
		return F32(wasmFMin32(AsF32(x), AsF32(y))), nil
	case wasm.OpF32Max:
		return F32(wasmFMax32(AsF32(x), AsF32(y))), nil
	case wasm.OpF32Copysign:
		return F32(float32(math.Copysign(float64(AsF32(x)), float64(AsF32(y))))), nil
	case wasm.OpF64Add:
		return F64(AsF64(x) + AsF64(y)), nil
	case wasm.OpF64Sub:
		return F64(AsF64(x) - AsF64(y)), nil
	case wasm.OpF64Mul:
		return F64(AsF64(x) * AsF64(y)), nil
	case wasm.OpF64Div:
		return F64(AsF64(x) / AsF64(y)), nil
	case wasm.OpF64Min:
		return F64(wasmFMin64(AsF64(x), AsF64(y))), nil
	case wasm.OpF64Max:
		return F64(wasmFMax64(AsF64(x), AsF64(y))), nil
	case wasm.OpF64Copysign:
		return F64(math.Copysign(AsF64(x), AsF64(y))), nil
	}
	return 0, fmt.Errorf("wasmvm: unhandled opcode %v", op)
}

// memLoad evaluates a load opcode at an absolute address.
func memLoad(mem *Memory, op wasm.Opcode, addr uint64) (uint64, error) {
	var v uint64
	var err error
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		v, err = mem.loadU32(addr)
	case wasm.OpI64Load, wasm.OpF64Load:
		v, err = mem.loadU64(addr)
	case wasm.OpI32Load8U:
		v, err = mem.loadU8(addr)
	case wasm.OpI32Load8S:
		v, err = mem.loadU8(addr)
		v = uint64(uint32(int32(int8(v))))
	case wasm.OpI32Load16U:
		v, err = mem.loadU16(addr)
	case wasm.OpI32Load16S:
		v, err = mem.loadU16(addr)
		v = uint64(uint32(int32(int16(v))))
	case wasm.OpI64Load8U:
		v, err = mem.loadU8(addr)
	case wasm.OpI64Load8S:
		v, err = mem.loadU8(addr)
		v = uint64(int64(int8(v)))
	case wasm.OpI64Load16U:
		v, err = mem.loadU16(addr)
	case wasm.OpI64Load16S:
		v, err = mem.loadU16(addr)
		v = uint64(int64(int16(v)))
	case wasm.OpI64Load32U:
		v, err = mem.loadU32(addr)
	case wasm.OpI64Load32S:
		v, err = mem.loadU32(addr)
		v = uint64(int64(int32(v)))
	default:
		return 0, fmt.Errorf("wasmvm: bad load op %v", op)
	}
	return v, err
}

// memStore evaluates a store opcode at an absolute address.
func memStore(mem *Memory, op wasm.Opcode, addr, v uint64) error {
	switch op {
	case wasm.OpI32Store, wasm.OpF32Store:
		return mem.storeU32(addr, v)
	case wasm.OpI64Store, wasm.OpF64Store:
		return mem.storeU64(addr, v)
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return mem.storeU8(addr, v)
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return mem.storeU16(addr, v)
	case wasm.OpI64Store32:
		return mem.storeU32(addr, v)
	}
	return fmt.Errorf("wasmvm: bad store op %v", op)
}

// execConv handles conversion opcodes (all unary).
func execConv(op wasm.Opcode, x uint64) (uint64, error) {
	switch op {
	case wasm.OpI32WrapI64:
		return uint64(uint32(x)), nil
	case wasm.OpI32TruncF32S:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483648 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(int32(f))), nil
	case wasm.OpI32TruncF32U:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 4294967296 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(f)), nil
	case wasm.OpI32TruncF64S:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483649 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(int32(f))), nil
	case wasm.OpI32TruncF64U:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 4294967296 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(uint32(f)), nil
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(x))), nil
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(x)), nil
	case wasm.OpI64TruncF32S:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
			return 0, ErrTruncInvalid
		}
		return uint64(int64(f)), nil
	case wasm.OpI64TruncF32U:
		f := float64(AsF32(x))
		if math.IsNaN(f) || f >= 1.8446744073709552e19 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(f), nil
	case wasm.OpI64TruncF64S:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
			return 0, ErrTruncInvalid
		}
		return uint64(int64(f)), nil
	case wasm.OpI64TruncF64U:
		f := AsF64(x)
		if math.IsNaN(f) || f >= 1.8446744073709552e19 || f <= -1 {
			return 0, ErrTruncInvalid
		}
		return uint64(f), nil
	case wasm.OpF32ConvertI32S:
		return F32(float32(int32(x))), nil
	case wasm.OpF32ConvertI32U:
		return F32(float32(uint32(x))), nil
	case wasm.OpF32ConvertI64S:
		return F32(float32(int64(x))), nil
	case wasm.OpF32ConvertI64U:
		return F32(float32(x)), nil
	case wasm.OpF32DemoteF64:
		return F32(float32(AsF64(x))), nil
	case wasm.OpF64ConvertI32S:
		return F64(float64(int32(x))), nil
	case wasm.OpF64ConvertI32U:
		return F64(float64(uint32(x))), nil
	case wasm.OpF64ConvertI64S:
		return F64(float64(int64(x))), nil
	case wasm.OpF64ConvertI64U:
		return F64(float64(x)), nil
	case wasm.OpF64PromoteF32:
		return F64(float64(AsF32(x))), nil
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		return x, nil
	}
	return 0, fmt.Errorf("wasmvm: unhandled conversion %v", op)
}

// Wasm float min/max propagate NaN and order -0 < +0.
func wasmFMin64(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if math.Signbit(a) {
			return a
		}
		return b
	}
	return math.Min(a, b)
}

func wasmFMax64(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if !math.Signbit(a) {
			return a
		}
		return b
	}
	return math.Max(a, b)
}

func wasmFMin32(a, b float32) float32 { return float32(wasmFMin64(float64(a), float64(b))) }
func wasmFMax32(a, b float32) float32 { return float32(wasmFMax64(float64(a), float64(b))) }
