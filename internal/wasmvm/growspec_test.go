package wasmvm

import (
	"testing"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/wasm"
)

// growSpecModule builds a module for memory.grow spec tests: a one-shot
// grow, a hot grow loop (so the register tier OSRs into it and executes
// grow from a register body), and store/load probes to verify failed grows
// leave memory untouched.
func growSpecModule() *wasm.Module {
	m := &wasm.Module{}
	tI_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	tII_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Mem = &wasm.MemType{Min: 1}

	// grow(n) = memory.grow(n)
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "grow", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpMemoryGrow}, {Op: wasm.OpEnd},
	}})
	// growmany(n): n iterations of memory.grow(1), returning how many
	// returned -1. The loop back edge makes it hot enough to tier up.
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "growmany",
		Locals: []wasm.ValType{wasm.I32, wasm.I32}, // local1 = i, local2 = failures
		Body: []wasm.Instr{
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLoop, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32GeS},
			{Op: wasm.OpBrIf, A: 1},
			// failures += (memory.grow(1) == -1)
			{Op: wasm.OpI32Const, Val: 1}, {Op: wasm.OpMemoryGrow},
			{Op: wasm.OpI32Const, Val: -1}, {Op: wasm.OpI32Eq},
			{Op: wasm.OpLocalGet, A: 2}, {Op: wasm.OpI32Add}, {Op: wasm.OpLocalSet, A: 2},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpI32Const, Val: 1},
			{Op: wasm.OpI32Add}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpBr, A: 0},
			{Op: wasm.OpEnd},
			{Op: wasm.OpEnd},
			{Op: wasm.OpLocalGet, A: 2},
			{Op: wasm.OpEnd},
		}})
	// poke(addr, v): store v at addr, return v
	m.Funcs = append(m.Funcs, wasm.Function{Type: tII_I, Name: "poke", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpLocalGet, A: 1},
		{Op: wasm.OpI32Store, A: 2},
		{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpEnd},
	}})
	// peek(addr) = load addr
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "peek", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32Load, A: 2}, {Op: wasm.OpEnd},
	}})
	for i, name := range []string{"grow", "growmany", "poke", "peek"} {
		m.Exports = append(m.Exports, wasm.Export{Name: name, Kind: wasm.ExportFunc, Idx: uint32(i)})
	}
	return m
}

// growTierConfigs returns the execution tiers the spec tests sweep: the
// plain stack interpreter, the superinstruction-fused interpreter, the
// register tier, and the AOT superblock tier (hot thresholds lowered so
// the grow loop tiers all the way up). The AOT config keeps the register
// tier enabled — AOT stacks on it — but drops the AOT threshold to the
// tier-up point so the loop OSRs straight into superblock dispatch.
func growTierConfigs() map[string]Config {
	stack := DefaultConfig()
	stack.DisableRegTier = true
	stack.DisableFusion = true
	fused := DefaultConfig()
	fused.DisableRegTier = true
	reg := DefaultConfig()
	reg.TierUpThreshold = 50
	reg.DisableAOTTier = true
	aot := DefaultConfig()
	aot.TierUpThreshold = 50
	aot.AOTThreshold = 50
	return map[string]Config{"stack": stack, "fused": fused, "register": reg, "aot": aot}
}

// TestFailedGrowSpecAcrossTiers verifies the Wasm spec semantics of a
// failed memory.grow — returns −1 and leaves memory (size and contents)
// unchanged — in every execution tier, with the page cap supplied by
// the engine configuration as a browser tab budget would.
func TestFailedGrowSpecAcrossTiers(t *testing.T) {
	var sentinel uint32 = 0xCAFEBABE
	const iters = 200000
	for name, cfg := range growTierConfigs() {
		cfg.MaxPages = 4
		t.Run(name, func(t *testing.T) {
			vm, err := New(growSpecModule(), 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Instantiate(); err != nil {
				t.Fatal(err)
			}
			call1(t, vm, "poke", I32(16), I32(int32(sentinel)))

			// 1→2→3→4 pages succeed; every further grow must return -1.
			fails := AsI32(call1(t, vm, "growmany", I32(iters)))
			if fails != iters-3 {
				t.Errorf("failed grows = %d, want %d", fails, iters-3)
			}
			if p := vm.Memory().Pages(); p != 4 {
				t.Errorf("pages = %d, want 4 (failed grows must not resize)", p)
			}
			if got := uint32(call1(t, vm, "peek", I32(16))); got != sentinel {
				t.Errorf("memory corrupted by failed grow: %#x", got)
			}
			// One more one-shot failure for good measure.
			if r := AsI32(call1(t, vm, "grow", I32(1))); r != -1 {
				t.Errorf("grow at cap = %d, want -1", r)
			}
			if name == "register" && vm.RegTranslated() == 0 {
				t.Error("register tier never engaged; loop ran interpreted")
			}
			if name == "register" && vm.Stats().OptCycles == 0 {
				t.Error("no cycles charged in the optimized tier")
			}
			if name == "aot" {
				if vm.AOTTranslated() == 0 {
					t.Error("AOT tier never engaged; loop ran on the register body")
				}
				if vm.Stats().AOTCycles == 0 {
					t.Error("no cycles charged under the AOT dispatcher")
				}
			}
		})
	}
}

// TestSnapshotGrowSpecAcrossTiers extends the grow spec to snapshot-restored
// instances in every tier: a recycled (Reset) VM and a fresh clone obey the
// same grow semantics as a cold instance — grows succeed up to the config
// cap with spec return values, failed grows at the cap leave size and
// contents untouched, grown pages are reclaimed by Reset (memory never
// shrinks during a run, but recycling returns it to the snapshot image),
// and the snapshot's data is intact after the round trip.
func TestSnapshotGrowSpecAcrossTiers(t *testing.T) {
	var sentinel uint32 = 0xDEADBEA7
	const iters = 300
	for name, cfg := range growTierConfigs() {
		cfg.MaxPages = 4
		t.Run(name, func(t *testing.T) {
			origin, err := New(growSpecModule(), 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := origin.Instantiate(); err != nil {
				t.Fatal(err)
			}
			snap, err := origin.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			snapPages := origin.Memory().Pages()

			// Cold reference run of the grow workload.
			growSpecRound := func(vm *VM) (fails int32, pages uint32, probe uint32, cycles float64) {
				call1(t, vm, "poke", I32(16), I32(int32(sentinel)))
				fails = AsI32(call1(t, vm, "growmany", I32(iters)))
				pages = vm.Memory().Pages()
				probe = uint32(call1(t, vm, "peek", I32(16)))
				cycles = vm.Cycles()
				return
			}
			coldVM, err := New(growSpecModule(), 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := coldVM.Instantiate(); err != nil {
				t.Fatal(err)
			}
			cFails, cPages, cProbe, cCycles := growSpecRound(coldVM)

			// A fresh clone must replay the round identically.
			clone, err := snap.NewVM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if f, p, pr, cy := growSpecRound(clone); f != cFails || p != cPages || pr != cProbe || cy != cCycles {
				t.Errorf("clone round (%d,%d,%#x,%v) != cold (%d,%d,%#x,%v)",
					f, p, pr, cy, cFails, cPages, cProbe, cCycles)
			}
			if cPages != 4 || cFails != iters-3 {
				t.Fatalf("workload shape off: pages %d fails %d", cPages, cFails)
			}

			// Reset reclaims the grown pages: back to the snapshot size, with
			// the grow counters rewound and the sentinel store gone.
			if err := clone.Reset(); err != nil {
				t.Fatal(err)
			}
			if p := clone.Memory().Pages(); p != snapPages {
				t.Errorf("pages after Reset = %d, want snapshot size %d", p, snapPages)
			}
			if clone.Stats().GrowOps != 0 {
				t.Errorf("GrowOps after Reset = %d, want 0", clone.Stats().GrowOps)
			}
			// Probe memory directly — a peek call would charge cycles and
			// perturb the recycled round's clock.
			b := clone.Memory().Bytes()
			if got := uint32(b[16]) | uint32(b[17])<<8 | uint32(b[18])<<16 | uint32(b[19])<<24; got != 0 {
				t.Errorf("sentinel survived Reset: %#x", got)
			}

			// The recycled instance replays the whole round byte-identically —
			// including the failed grows at the cap and the re-grow from the
			// snapshot floor.
			if f, p, pr, cy := growSpecRound(clone); f != cFails || p != cPages || pr != cProbe || cy != cCycles {
				t.Errorf("recycled round (%d,%d,%#x,%v) != cold (%d,%d,%#x,%v)",
					f, p, pr, cy, cFails, cPages, cProbe, cCycles)
			}
			if name == "register" && clone.RegTranslated() == 0 {
				t.Error("register tier never engaged on the recycled instance")
			}
			if name == "aot" && clone.AOTTranslated() == 0 {
				t.Error("AOT tier never engaged on the recycled instance")
			}
		})
	}
}

// TestInjectedGrowDenialAcrossTiers verifies that a fault-injected grow
// denial is indistinguishable from a capacity failure in every tier:
// −1 result, size and contents untouched — and that the next grow (the
// transient fault having passed) succeeds normally.
func TestInjectedGrowDenialAcrossTiers(t *testing.T) {
	var sentinel uint32 = 0xFEEDF00D
	for name, cfg := range growTierConfigs() {
		t.Run(name, func(t *testing.T) {
			plan := faultinject.NewPlan(21, faultinject.Rule{
				Point: faultinject.WasmGrowDeny, Count: 1,
			})
			cfg := cfg
			cfg.Faults = plan
			vm, err := New(growSpecModule(), 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Instantiate(); err != nil {
				t.Fatal(err)
			}
			call1(t, vm, "poke", I32(32), I32(int32(sentinel)))

			// Capacity is plentiful, but the injected rule denies the first
			// grow.
			if r := AsI32(call1(t, vm, "grow", I32(2))); r != -1 {
				t.Errorf("injected denial returned %d, want -1", r)
			}
			if p := vm.Memory().Pages(); p != 1 {
				t.Errorf("pages after denial = %d, want 1", p)
			}
			if got := uint32(call1(t, vm, "peek", I32(32))); got != sentinel {
				t.Errorf("memory corrupted by injected denial: %#x", got)
			}
			// The transient fault has passed; the same request now succeeds.
			if r := AsI32(call1(t, vm, "grow", I32(2))); r != 1 {
				t.Errorf("post-fault grow returned %d, want old size 1", r)
			}
			if p := vm.Memory().Pages(); p != 3 {
				t.Errorf("pages after recovery = %d, want 3", p)
			}
			if n := plan.Counts()[faultinject.WasmGrowDeny]; n != 1 {
				t.Errorf("denial fired %d times, want 1", n)
			}
		})
	}
}
