package wasmvm

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the WebAssembly linear-memory page size.
const PageSize = 64 * 1024

// Memory is a WebAssembly linear memory instance: a contiguous, growable
// buffer of untyped bytes. It records the high-water mark of committed
// pages (the study's Wasm memory metric) and the number of grow requests
// (Cheerp's frequent-resize overhead, §4.2.2).
type Memory struct {
	data      []byte
	maxPages  uint32
	peakPages uint32
	// granularity rounds grow requests up, in pages: Cheerp grows by single
	// 64 KiB pages, Emscripten by 16 MiB chunks.
	granularity uint32
	growCount   int
}

// NewMemory allocates min pages with the given page cap and grow granularity.
func NewMemory(minPages, maxPages, granularity uint32) *Memory {
	if granularity == 0 {
		granularity = 1
	}
	m := &Memory{
		data:        make([]byte, int(minPages)*PageSize),
		maxPages:    maxPages,
		peakPages:   minPages,
		granularity: granularity,
	}
	return m
}

// Pages returns the current committed size in pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.data) / PageSize) }

// PeakPages returns the high-water mark in pages.
func (m *Memory) PeakPages() uint32 { return m.peakPages }

// GrowCount returns how many successful memory.grow operations happened.
func (m *Memory) GrowCount() int { return m.growCount }

// Grow extends memory by delta pages (rounded up to the grow granularity),
// returning the previous page count, or -1 if the maximum would be exceeded
// (the semantics of memory.grow).
func (m *Memory) Grow(delta uint32) int32 {
	old := m.Pages()
	if delta == 0 {
		return int32(old)
	}
	rounded := (delta + m.granularity - 1) / m.granularity * m.granularity
	newPages := uint64(old) + uint64(rounded)
	if newPages > uint64(m.maxPages) {
		// Retry with the exact request: granularity is an allocator hint,
		// not a hard floor.
		newPages = uint64(old) + uint64(delta)
		if newPages > uint64(m.maxPages) {
			return -1
		}
	}
	newBytes := int(newPages) * PageSize
	if cap(m.data) >= newBytes {
		// Reuse backing capacity retained across a snapshot restore: the
		// exposed region may hold a previous run's bytes, and memory.grow
		// must hand out zero pages.
		prev := len(m.data)
		m.data = m.data[:newBytes]
		clear(m.data[prev:])
	} else {
		grown := make([]byte, newBytes)
		copy(grown, m.data)
		m.data = grown
	}
	m.growCount++
	if uint32(newPages) > m.peakPages {
		m.peakPages = uint32(newPages)
	}
	return int32(old)
}

// Bytes exposes the raw buffer (used by the host boundary and data
// segment initialization).
func (m *Memory) Bytes() []byte { return m.data }

// restore rewinds the memory to a snapshot image in place: the buffer
// truncates to the image size — keeping any grown backing array as an
// arena for the instance's next run — and the grow counters rewind to the
// post-init state. The page cap and granularity are untouched (they belong
// to the instance's config, which survives recycling).
func (m *Memory) restore(image []byte) {
	if cap(m.data) < len(image) {
		m.data = make([]byte, len(image))
	} else {
		m.data = m.data[:len(image)]
	}
	copy(m.data, image)
	m.peakPages = uint32(len(image) / PageSize)
	m.growCount = 0
}

// TrapOOB is the error for out-of-bounds memory accesses.
type TrapOOB struct {
	Addr uint64
	Size int
}

func (t *TrapOOB) Error() string {
	return fmt.Sprintf("wasmvm: out-of-bounds memory access at %d (%d bytes)", t.Addr, t.Size)
}

func (m *Memory) check(addr uint64, size int) error {
	if addr+uint64(size) > uint64(len(m.data)) {
		return &TrapOOB{Addr: addr, Size: size}
	}
	return nil
}

// Load/store helpers. Addresses are the effective address (base + offset)
// already summed by the interpreter in 64-bit space, so overflow cannot
// wrap.

func (m *Memory) loadU8(addr uint64) (uint64, error) {
	if err := m.check(addr, 1); err != nil {
		return 0, err
	}
	return uint64(m.data[addr]), nil
}

func (m *Memory) loadU16(addr uint64) (uint64, error) {
	if err := m.check(addr, 2); err != nil {
		return 0, err
	}
	return uint64(binary.LittleEndian.Uint16(m.data[addr:])), nil
}

func (m *Memory) loadU32(addr uint64) (uint64, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return uint64(binary.LittleEndian.Uint32(m.data[addr:])), nil
}

func (m *Memory) loadU64(addr uint64) (uint64, error) {
	if err := m.check(addr, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(m.data[addr:]), nil
}

func (m *Memory) storeU8(addr uint64, v uint64) error {
	if err := m.check(addr, 1); err != nil {
		return err
	}
	m.data[addr] = byte(v)
	return nil
}

func (m *Memory) storeU16(addr uint64, v uint64) error {
	if err := m.check(addr, 2); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(m.data[addr:], uint16(v))
	return nil
}

func (m *Memory) storeU32(addr uint64, v uint64) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.data[addr:], uint32(v))
	return nil
}

func (m *Memory) storeU64(addr uint64, v uint64) error {
	if err := m.check(addr, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(m.data[addr:], v)
	return nil
}
