package wasmvm

import "testing"

// BenchmarkSnapshotRestore compares the three ways to obtain a runnable
// instance: a cold decode+instantiate, a clone from a post-init snapshot
// (arena copy, no module init), and an in-place Reset of a used instance.
// This is the host-time win the pool trades on; the virtual instantiation
// charge is identical on every path.
func BenchmarkSnapshotRestore(b *testing.B) {
	cfg := DefaultConfig()
	mod := snapModule()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vm, err := New(mod, 123, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := vm.Instantiate(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("clone", func(b *testing.B) {
		vm, err := New(mod, 123, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			b.Fatal(err)
		}
		snap, err := vm.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := snap.NewVM(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("reset", func(b *testing.B) {
		vm, err := New(mod, 123, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			b.Fatal(err)
		}
		if _, err := vm.Snapshot(); err != nil {
			b.Fatal(err)
		}
		if _, err := vm.Call("work", I32(50)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vm.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
