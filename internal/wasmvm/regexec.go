package wasmvm

import (
	"errors"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
)

// errDeadSlot reports that control reached a slot the translator proved
// statically unreachable — an internal invariant violation, not a wasm trap.
var errDeadSlot = errors.New("wasmvm: internal: register body executed a dead slot")

// runReg executes a frame with the register-form body produced by
// translateReg. It runs only in the optimizing tier (costs are baked in
// from OptCost) and is entered either at pc 0 from exec, or mid-function
// at a branch target after a loop back-edge tier-up (OSR), in which case
// the live operand-stack slots are transferred into their registers first.
//
// Every metric side effect — cycle additions (order included), step
// counts, class tallies, trace events — mirrors runStack exactly; only the
// host-side operand shuffling differs.
func (vm *VM) runReg(fi int, cf *compiledFunc, localBase, stackBase, pc int) ([]uint64, error) {
	nLocals := cf.nLocals
	for i := int32(0); i < cf.maxStack; i++ {
		vm.locals = append(vm.locals, 0)
	}
	frame := vm.locals[localBase : localBase+nLocals+int(cf.maxStack)]

	// OSR entry: operand-stack slot at height i is register nLocals+i.
	if h := len(vm.stack) - stackBase; h > 0 {
		copy(frame[nLocals:], vm.stack[stackBase:])
		vm.stack = vm.stack[:stackBase]
	}

	code := cf.regCode
	mem := vm.mem
	steps := vm.stats.Steps
	cycles := vm.cycles
	tierBase := cycles
	counts := &vm.tally
	fclass := &vm.scratchClass
	if vm.profiling {
		fclass = &vm.profs[fi].classCounts
	}

	for pc < len(code) {
		in := &code[pc]
		cycles += in.cost
		counts[in.class]++
		fclass[in.class]++
		steps++
		switch in.kind {
		case rNop:

		case rMove:
			frame[in.rd] = frame[in.r1]
		case rConst:
			frame[in.rd] = uint64(in.val)
		case rGlobalGet:
			frame[in.rd] = vm.globals[in.a]
		case rGlobalSet:
			vm.globals[in.a] = frame[in.r1]

		case rAddI32:
			frame[in.rd] = uint64(uint32(frame[in.r1]) + uint32(frame[in.r2]))
		case rSubI32:
			frame[in.rd] = uint64(uint32(frame[in.r1]) - uint32(frame[in.r2]))
		case rMulI32:
			frame[in.rd] = uint64(uint32(frame[in.r1]) * uint32(frame[in.r2]))
		case rAddI64:
			frame[in.rd] = frame[in.r1] + frame[in.r2]
		case rAddF64:
			frame[in.rd] = F64(AsF64(frame[in.r1]) + AsF64(frame[in.r2]))
		case rMulF64:
			frame[in.rd] = F64(AsF64(frame[in.r1]) * AsF64(frame[in.r2]))
		case rShlI32:
			frame[in.rd] = uint64(uint32(frame[in.r1]) << (uint32(frame[in.r2]) & 31))
		case rAndI32:
			frame[in.rd] = uint64(uint32(frame[in.r1]) & uint32(frame[in.r2]))
		case rXorI32:
			frame[in.rd] = uint64(uint32(frame[in.r1]) ^ uint32(frame[in.r2]))

		case rExtI64S:
			frame[in.rd] = uint64(int64(int32(frame[in.r1])))
		case rUn:
			r, err := numUnary(in.op, frame[in.r1])
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.stats.OptCycles += cycles - tierBase
				return nil, err
			}
			frame[in.rd] = r
		case rBin:
			r, err := numBinary(in.op, frame[in.r1], frame[in.r2])
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.stats.OptCycles += cycles - tierBase
				return nil, err
			}
			frame[in.rd] = r

		case rLoad:
			v, err := memLoad(mem, in.op, uint64(uint32(frame[in.r1]))+uint64(in.b))
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.stats.OptCycles += cycles - tierBase
				return nil, err
			}
			frame[in.rd] = v
		case rStore:
			if err := memStore(mem, in.op, uint64(uint32(frame[in.r1]))+uint64(in.b), frame[in.r2]); err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.stats.OptCycles += cycles - tierBase
				return nil, err
			}

		case rSelect:
			if uint32(frame[in.rd+2]) == 0 {
				frame[in.rd] = frame[in.rd+1]
			}

		case rMemSize:
			frame[in.rd] = uint64(mem.Pages())
		case rMemGrow:
			d := uint32(frame[in.r1])
			var g int32
			if vm.faults != nil && vm.faults.DenyGrow(cf.name, mem.Pages(), d) {
				g = -1
				vm.emitFault(faultinject.WasmGrowDeny, cycles)
			} else {
				g = mem.Grow(d)
			}
			frame[in.rd] = uint64(uint32(g))
			cycles += vm.cfg.GrowBoundaryCost
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindMemGrow, TS: cycles,
					Name: cf.name, Track: "wasm", A: float64(d), B: float64(g)})
			}
			if vm.inst != nil {
				vm.inst.MemGrowOps.Inc()
				if g >= 0 {
					vm.inst.MemGrowPages.Add(float64(mem.Pages() - uint32(g)))
				}
			}

		case rCall:
			np := int(in.r1)
			base := int(in.rd)
			argsCopy := make([]uint64, np)
			copy(argsCopy, frame[base:base+np])
			vm.stats.Steps = steps
			vm.cycles = cycles
			vm.stats.OptCycles += cycles - tierBase
			res, err := vm.callIndex(in.a, argsCopy)
			steps = vm.stats.Steps
			cycles = vm.cycles
			tierBase = cycles
			if err != nil {
				return nil, err
			}
			copy(frame[base:], res)

		case rIf:
			if uint32(frame[in.r1]) == 0 {
				pc = regJump(frame, &in.jump)
				continue
			}
		case rJump:
			pc = regJump(frame, &in.jump)
			continue
		case rBrIf:
			if uint32(frame[in.r1]) != 0 {
				pc = regJump(frame, &in.jump)
				continue
			}
		case rBrTable:
			c := uint32(frame[in.r1])
			t := &in.targets[len(in.targets)-1]
			if int(c) < len(in.targets)-1 {
				t = &in.targets[c]
			}
			pc = regJump(frame, t)
			continue

		case rUnreachable:
			vm.stats.Steps = steps
			vm.cycles = cycles
			vm.stats.OptCycles += cycles - tierBase
			return nil, ErrUnreachable

		// Fused forms: charge the second component exactly as the loop
		// header would have, then perform both effects and skip the
		// partner slot (runStack charges in the same order).
		case rMove2:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			frame[in.rd] = frame[in.r1]
			frame[in.rd+1] = frame[in.r2]
			pc += 2
			continue
		case rConstAdd32:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			frame[in.rd] = uint64(uint32(frame[in.r1]) + uint32(in.val))
			pc += 2
			continue
		case rConstBin:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			r, err := numBinary(in.op2, frame[in.r1], uint64(in.val))
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.stats.OptCycles += cycles - tierBase
				return nil, err
			}
			frame[in.rd] = r
			pc += 2
			continue
		case rGetLoad:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			v, err := memLoad(mem, in.op2, uint64(uint32(frame[in.r1]))+uint64(in.b))
			if err != nil {
				vm.stats.Steps = steps
				vm.cycles = cycles
				vm.stats.OptCycles += cycles - tierBase
				return nil, err
			}
			frame[in.rd] = v
			pc += 2
			continue
		case rGeS32BrIf:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			if int32(frame[in.r1]) >= int32(frame[in.r2]) {
				pc = regJump(frame, &in.jump)
				continue
			}
			pc += 2
			continue
		case rLtS32BrIf:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			if int32(frame[in.r1]) < int32(frame[in.r2]) {
				pc = regJump(frame, &in.jump)
				continue
			}
			pc += 2
			continue
		case rCmpBrIf:
			cycles += in.cost2
			counts[in.class2]++
			fclass[in.class2]++
			steps++
			var c uint64
			if in.r2 < 0 {
				c, _ = numUnary(in.op2, frame[in.r1]) // eqz cannot trap
			} else {
				c, _ = numBinary(in.op2, frame[in.r1], frame[in.r2])
			}
			if uint32(c) != 0 {
				pc = regJump(frame, &in.jump)
				continue
			}
			pc += 2
			continue

		case rDead:
			vm.stats.Steps = steps
			vm.cycles = cycles
			vm.stats.OptCycles += cycles - tierBase
			return nil, errDeadSlot
		}
		pc++
	}
	vm.stats.Steps = steps
	vm.cycles = cycles
	vm.stats.OptCycles += cycles - tierBase

	nr := len(cf.typ.Results)
	res := make([]uint64, nr)
	copy(res, frame[nLocals:nLocals+nr])
	return res, nil
}

// regJump applies a register-form branch: move the carried value (at most
// one) to the register the target expects, then return the target pc.
func regJump(frame []uint64, t *rbranch) int {
	if t.keep != 0 {
		frame[t.dst] = frame[t.src]
	}
	return int(t.pc)
}
