package wasmvm

import "testing"

// BenchmarkRegTier measures wall-clock dispatch on the hot sum loop after
// tier-up, register body versus stack interpreter. The first call crosses
// the threshold (OSR) so every timed iteration runs fully tiered; virtual
// cycles are identical across variants, only host time differs.
func BenchmarkRegTier(b *testing.B) {
	run := func(b *testing.B, disableReg, disableFuse bool) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 100
		cfg.DisableRegTier = disableReg
		cfg.DisableFusion = disableFuse
		// Pin the AOT tier off so the timed loop measures pure register
		// dispatch however large b.N gets (call hotness would otherwise
		// cross the AOT threshold mid-benchmark); BenchmarkAOTTier owns the
		// superblock numbers.
		cfg.DisableAOTTier = true
		vm, err := New(buildModule(), 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			b.Fatal(err)
		}
		const n = 100000
		// Warm-up call tiers the function up (and translates it when the
		// register tier is enabled), so the timed loop measures pure
		// optimized-tier dispatch.
		if _, err := vm.Call("sum", I32(n)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := vm.Call("sum", I32(n)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(vm.Stats().Steps)/float64(b.N), "steps/op")
	}
	b.Run("reg", func(b *testing.B) { run(b, false, false) })
	b.Run("stack-fused", func(b *testing.B) { run(b, true, false) })
	b.Run("stack-unfused", func(b *testing.B) { run(b, true, true) })
}
