package wasmvm

import (
	"errors"
	"testing"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
	"wasmbench/internal/wasm"
)

// runAOTPair instantiates the module twice — AOT tier enabled and disabled
// (both with the register tier on) — applies call, and returns both VMs for
// comparison. The caller's cfg sets the thresholds; the pair differs only
// in DisableAOTTier, so any divergence is the superblock dispatcher's
// fault.
func runAOTPair(t *testing.T, m *wasm.Module, cfg Config, call func(vm *VM) ([]uint64, error)) (aot, reg *VM, ares, rres []uint64, aerr, rerr error) {
	t.Helper()
	mk := func(disable bool) (*VM, []uint64, error) {
		c := cfg
		c.DisableAOTTier = disable
		vm, err := New(m, 0, c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := vm.Instantiate(); err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		res, err := call(vm)
		return vm, res, err
	}
	aot, ares, aerr = mk(false)
	reg, rres, rerr = mk(true)
	return
}

// stripAOTCompile removes KindAOTCompile events: the compile marker only
// exists on the AOT side of a pair, and (like KindTierUp's absence in
// opt-only mode) it is the one permitted stream difference.
func stripAOTCompile(events []obsv.Event) []obsv.Event {
	var out []obsv.Event
	for _, e := range events {
		if e.Kind != obsv.KindAOTCompile {
			out = append(out, e)
		}
	}
	return out
}

func TestAOTTierTranslates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 100
	cfg.AOTThreshold = 100
	vm := newVM(t, cfg)
	call1(t, vm, "sum", I32(200000))
	if vm.AOTTranslated() == 0 {
		t.Fatal("hot loop should have produced an AOT body")
	}
	if vm.AOTSuperblocks() == 0 {
		t.Fatal("AOT body reported zero superblocks")
	}
	if vm.Stats().AOTCycles == 0 {
		t.Fatal("AOT dispatcher charged no cycles")
	}

	cfg.DisableAOTTier = true
	vm2 := newVM(t, cfg)
	call1(t, vm2, "sum", I32(200000))
	if vm2.AOTTranslated() != 0 {
		t.Errorf("DisableAOTTier left %d AOT bodies", vm2.AOTTranslated())
	}

	// The AOT form is built from the register form; without the register
	// tier there is nothing to compile.
	cfg = DefaultConfig()
	cfg.TierUpThreshold = 100
	cfg.AOTThreshold = 100
	cfg.DisableRegTier = true
	vm3 := newVM(t, cfg)
	call1(t, vm3, "sum", I32(200000))
	if vm3.AOTTranslated() != 0 {
		t.Errorf("DisableRegTier should pin the AOT tier off, got %d bodies", vm3.AOTTranslated())
	}

	// StepLimit disables the register tier and the AOT tier with it.
	cfg = DefaultConfig()
	cfg.TierUpThreshold = 100
	cfg.AOTThreshold = 100
	cfg.StepLimit = 1 << 40
	vm4 := newVM(t, cfg)
	call1(t, vm4, "sum", I32(200000))
	if vm4.AOTTranslated() != 0 {
		t.Errorf("StepLimit should disable the AOT tier, got %d bodies", vm4.AOTTranslated())
	}
}

// TestAOTEquivalenceMatrix sweeps every exported function of the shared
// test module across tier modes and fusion settings, comparing the AOT
// superblock dispatcher against the plain register tier on results,
// cycles, and the full Stats struct. AOTCycles — the deliberate
// dispatcher-visible sub-split — is the one field assertEquivalent
// excludes.
func TestAOTEquivalenceMatrix(t *testing.T) {
	calls := []struct {
		name string
		args []uint64
	}{
		{"add", []uint64{I32(2), I32(40)}},
		{"sum", []uint64{I32(200000)}}, // crosses both thresholds mid-loop
		{"fib", []uint64{I32(15)}},
		{"hypot", []uint64{F64(3), F64(4)}},
		{"memtest", []uint64{I32(1024)}},
		{"grow", []uint64{I32(2)}},
		{"switcher", []uint64{I32(1)}},
	}
	for _, mode := range []struct {
		name string
		mode TierMode
	}{{"both", TierBoth}, {"basic", TierBasicOnly}, {"opt", TierOptOnly}} {
		for _, fuse := range []struct {
			name    string
			disable bool
		}{{"fused", false}, {"unfused", true}} {
			for _, c := range calls {
				t.Run(mode.name+"/"+fuse.name+"/"+c.name, func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Mode = mode.mode
					cfg.TierUpThreshold = 100
					cfg.AOTThreshold = 100
					cfg.DisableFusion = fuse.disable
					aot, reg, ares, rres, aerr, rerr := runAOTPair(t, buildModule(), cfg,
						func(vm *VM) ([]uint64, error) { return vm.Call(c.name, c.args...) })
					assertEquivalent(t, aot, reg, ares, rres, aerr, rerr)
					// Engagement boundary: hotness grows on calls and on the
					// *stack* body's back-edges, so the single-call sum loop
					// reaches the AOT threshold via OSR only in tiering mode,
					// while the deeply recursive fib crosses it on calls alone
					// in any register-enabled mode.
					if mode.mode == TierBoth && c.name == "sum" && aot.AOTTranslated() == 0 {
						t.Error("hot sum loop should OSR into AOT superblocks")
					}
					if mode.mode != TierBasicOnly && c.name == "fib" && aot.AOTTranslated() == 0 {
						t.Error("hot recursive fib should run AOT superblocks")
					}
					if mode.mode == TierBasicOnly && aot.AOTTranslated() != 0 {
						t.Error("basic-only mode must never AOT-compile")
					}
					if s := aot.Stats(); s.AOTCycles > s.OptCycles {
						t.Errorf("AOTCycles %v exceeds OptCycles %v", s.AOTCycles, s.OptCycles)
					}
					if s := reg.Stats(); s.AOTCycles != 0 {
						t.Errorf("AOT-disabled VM charged AOTCycles %v", s.AOTCycles)
					}
				})
			}
		}
	}
}

// TestAOTEquivalenceStack closes the ladder: the AOT-enabled VM against
// the plain stack interpreter (runRegPair toggles DisableRegTier, which
// pins AOT off with it). Cycles, steps, tallies — everything but the
// AOTCycles sub-split — must survive the two-tier jump.
func TestAOTEquivalenceStack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 100
	cfg.AOTThreshold = 100
	reg, stack, rres, sres, rerr, serr := runRegPair(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) {
			if _, err := vm.Call("sum", I32(200000)); err != nil {
				return nil, err
			}
			return vm.Call("fib", I32(14))
		})
	assertEquivalent(t, reg, stack, rres, sres, rerr, serr)
	if reg.AOTTranslated() == 0 {
		t.Fatal("AOT tier never engaged on the register side")
	}
	if stack.AOTTranslated() != 0 {
		t.Fatal("stack interpreter side must not AOT-compile")
	}
}

// TestAOTEquivalenceOSR pins on-stack replacement into superblocks: one
// call crosses both thresholds mid-loop and must resume in the AOT body at
// the same pc, and a second call starts in superblock form directly.
func TestAOTEquivalenceOSR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 500
	cfg.AOTThreshold = 500
	aot, reg, ares, rres, aerr, rerr := runAOTPair(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) {
			if _, err := vm.Call("sum", I32(100000)); err != nil {
				return nil, err
			}
			return vm.Call("sum", I32(1000))
		})
	assertEquivalent(t, aot, reg, ares, rres, aerr, rerr)
	if aot.Stats().TierUps != 1 {
		t.Fatalf("expected exactly one tier-up, got %d", aot.Stats().TierUps)
	}
	if aot.AOTTranslated() != 1 {
		t.Fatalf("expected one AOT body, got %d", aot.AOTTranslated())
	}
	if aot.Stats().AOTCycles == 0 {
		t.Fatal("OSR run charged no AOT cycles")
	}
	if AsI64(ares[0]) != 499500 {
		t.Errorf("post-OSR result wrong: %d", AsI64(ares[0]))
	}
}

// TestAOTEquivalenceTraces runs a profiled, traced, tiering workload with
// the AOT tier on and off. Apart from the KindAOTCompile markers (present
// only on the AOT side, by design), the two event streams — call
// enter/exit, tier-up, memory.grow, every virtual timestamp — must be
// identical.
func TestAOTEquivalenceTraces(t *testing.T) {
	mk := func(disable bool) (*VM, *obsv.Collector) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 100
		cfg.AOTThreshold = 100
		cfg.DisableAOTTier = disable
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		vm, err := New(buildModule(), 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("sum", I32(50000)); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("fib", I32(12)); err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Call("grow", I32(2)); err != nil {
			t.Fatal(err)
		}
		return vm, coll
	}
	aot, acoll := mk(false)
	reg, rcoll := mk(true)
	if aot.Cycles() != reg.Cycles() {
		t.Errorf("cycles differ: aot=%v reg=%v", aot.Cycles(), reg.Cycles())
	}
	if aot.AOTTranslated() == 0 {
		t.Fatal("trace test should exercise the AOT tier")
	}
	ae, re := stripAOTCompile(acoll.Events()), rcoll.Events()
	if n := len(acoll.Events()) - len(ae); n != aot.AOTTranslated() {
		t.Errorf("%d KindAOTCompile events for %d translations", n, aot.AOTTranslated())
	}
	if len(ae) != len(re) {
		t.Fatalf("trace lengths differ after stripping aot-compile: aot=%d reg=%d", len(ae), len(re))
	}
	for i := range ae {
		if ae[i] != re[i] {
			t.Fatalf("trace event %d differs:\n  aot: %+v\n  reg: %+v", i, ae[i], re[i])
		}
	}
}

// TestAOTEquivalenceProfiles compares per-function profiles (calls, self
// and total cycles, class mix) between the AOT and register dispatchers.
func TestAOTEquivalenceProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	cfg.TierUpThreshold = 100
	cfg.AOTThreshold = 100
	aot, reg, ares, rres, aerr, rerr := runAOTPair(t, buildModule(), cfg,
		func(vm *VM) ([]uint64, error) {
			if _, err := vm.Call("fib", I32(14)); err != nil {
				return nil, err
			}
			return vm.Call("sum", I32(50000))
		})
	assertEquivalent(t, aot, reg, ares, rres, aerr, rerr)
	if aot.AOTTranslated() == 0 {
		t.Fatal("profile test should exercise the AOT tier")
	}
	ap, rp := aot.Profile(), reg.Profile()
	if len(ap) != len(rp) {
		t.Fatalf("profile lengths differ: %d vs %d", len(ap), len(rp))
	}
	for i := range ap {
		if ap[i].Name != rp[i].Name || ap[i].SelfCycles != rp[i].SelfCycles ||
			ap[i].TotalCycles != rp[i].TotalCycles || ap[i].Calls != rp[i].Calls {
			t.Errorf("profile %d differs:\n  aot: %+v\n  reg: %+v", i, ap[i], rp[i])
		}
		if len(ap[i].Classes) != len(rp[i].Classes) {
			t.Fatalf("profile %d class mix length differs", i)
		}
		for j := range ap[i].Classes {
			if ap[i].Classes[j] != rp[i].Classes[j] {
				t.Errorf("profile %d class %d differs: %+v vs %+v",
					i, j, ap[i].Classes[j], rp[i].Classes[j])
			}
		}
	}
}

// TestAOTTrapEquivalence drives superblocks into traps — fused
// const+div-by-zero and fused get+load out of bounds — with the AOT
// threshold at zero so the superblock form executes from the very first
// call. The partial charges at the trap point (including the suffix
// rollback of the hoisted block accounting) must match the register tier
// exactly.
func TestAOTTrapEquivalence(t *testing.T) {
	for _, fuse := range []struct {
		name    string
		disable bool
	}{{"fused", false}, {"unfused", true}} {
		for _, c := range []struct {
			name string
			arg  uint64
			want error
		}{
			{"divz", I32(7), ErrDivByZero},
			{"oob", I32(1 << 30), nil}, // OOB trap type, checked by message equality
		} {
			t.Run(fuse.name+"/"+c.name, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Mode = TierOptOnly
				cfg.AOTThreshold = 0
				cfg.DisableFusion = fuse.disable
				aot, reg, ares, rres, aerr, rerr := runAOTPair(t, trapModule(), cfg,
					func(vm *VM) ([]uint64, error) { return vm.Call(c.name, c.arg) })
				if aerr == nil || rerr == nil {
					t.Fatalf("expected traps, got aot=%v reg=%v", aerr, rerr)
				}
				if c.want != nil && !errors.Is(aerr, c.want) {
					t.Fatalf("aot trap = %v, want %v", aerr, c.want)
				}
				if aot.AOTTranslated() == 0 {
					t.Fatal("trap test should execute AOT superblocks")
				}
				assertEquivalent(t, aot, reg, ares, rres, aerr, rerr)
			})
		}
	}
}

// TestAOTBranchIntoPair re-runs the fusion landing-pad module through the
// superblock translator: a branch into the second slot of a fused pair
// makes that slot a leader, so the pair's components get standalone
// closures in the target block (overlapping the fused block that falls
// through them).
func TestAOTBranchIntoPair(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Funcs = append(m.Funcs, wasm.Function{Type: ti, Name: "landing",
		Locals: []wasm.ValType{wasm.I32},
		Body: []wasm.Instr{
			{Op: wasm.OpI32Const, Val: 5}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpBrIf, A: 0},
			{Op: wasm.OpI32Const, Val: 100}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpEnd},
			{Op: wasm.OpLocalGet, A: 0},
			{Op: wasm.OpLocalGet, A: 1},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpEnd},
		}})
	m.Exports = append(m.Exports, wasm.Export{Name: "landing", Kind: wasm.ExportFunc, Idx: 0})
	for _, x := range []int32{0, 3} {
		cfg := DefaultConfig()
		cfg.Mode = TierOptOnly
		cfg.AOTThreshold = 0
		aot, reg, ares, rres, aerr, rerr := runAOTPair(t, m, cfg,
			func(vm *VM) ([]uint64, error) { return vm.Call("landing", I32(x)) })
		assertEquivalent(t, aot, reg, ares, rres, aerr, rerr)
		if aot.AOTTranslated() == 0 {
			t.Fatal("landing module should run AOT superblocks")
		}
		want := x + 5
		if x == 0 {
			want = 100
		}
		if AsI32(ares[0]) != want {
			t.Errorf("landing(%d) = %d, want %d", x, AsI32(ares[0]), want)
		}
	}
}

// TestAOTCycleSubSplit checks the accounting shape: AOTCycles is a
// sub-split of OptCycles (never of BasicCycles), the overall
// basic/opt split is untouched by the AOT tier, and disabling AOT zeroes
// only AOTCycles.
func TestAOTCycleSubSplit(t *testing.T) {
	run := func(disableAOT bool) Stats {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 100
		cfg.AOTThreshold = 100
		cfg.DisableAOTTier = disableAOT
		vm := newVM(t, cfg)
		call1(t, vm, "sum", I32(50000))
		return vm.Stats()
	}
	aot := run(false)
	if aot.BasicCycles == 0 || aot.OptCycles == 0 {
		t.Errorf("tiering run should split across tiers: %+v", aot)
	}
	if aot.AOTCycles == 0 {
		t.Errorf("AOT dispatcher charged nothing: %+v", aot)
	}
	if aot.AOTCycles > aot.OptCycles {
		t.Errorf("AOTCycles %v exceeds OptCycles %v", aot.AOTCycles, aot.OptCycles)
	}
	reg := run(true)
	if reg.AOTCycles != 0 {
		t.Errorf("AOT disabled but AOTCycles = %v", reg.AOTCycles)
	}
	if reg.BasicCycles != aot.BasicCycles || reg.OptCycles != aot.OptCycles {
		t.Errorf("basic/opt split changed by the AOT tier:\n  aot: %+v\n  reg: %+v", aot, reg)
	}
}

// TestAOTTranslateFaultBail pins the first rung of the bail ladder: an
// injected wasm.aot-translate failure silently falls back to the register
// body — identical results and metrics, zero AOT translations, one fault
// counted.
func TestAOTTranslateFaultBail(t *testing.T) {
	run := func(plan *faultinject.Plan) *VM {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 100
		cfg.AOTThreshold = 100
		cfg.Faults = plan
		vm := newVM(t, cfg)
		call1(t, vm, "sum", I32(200000))
		return vm
	}
	plan := faultinject.NewPlan(7, faultinject.Rule{
		Point: faultinject.WasmAOTTranslate, Count: 1,
	})
	faulted := run(plan)
	clean := run(nil)

	if n := plan.Counts()[faultinject.WasmAOTTranslate]; n != 1 {
		t.Fatalf("fault fired %d times, want 1", n)
	}
	if faulted.AOTTranslated() != 0 {
		t.Errorf("denied translation still produced %d AOT bodies", faulted.AOTTranslated())
	}
	if faulted.RegTranslated() == 0 {
		t.Error("register fallback missing after AOT bail")
	}
	if clean.AOTTranslated() == 0 {
		t.Fatal("clean run should AOT-compile")
	}
	fs, cs := faulted.Stats(), clean.Stats()
	fs.AOTCycles, cs.AOTCycles = 0, 0
	if fs != cs {
		t.Errorf("bail changed metrics:\n  faulted: %+v\n  clean:   %+v", fs, cs)
	}
	if faulted.Cycles() != clean.Cycles() {
		t.Errorf("bail changed the virtual clock: %v vs %v", faulted.Cycles(), clean.Cycles())
	}
}
