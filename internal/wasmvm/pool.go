package wasmvm

// This file implements the concurrent pooled-instance layer above
// snapshot.go. An InstancePool owns up to MaxInstances live VMs for one
// module and hands them out by config shape: a checkout is served from the
// recycled free list when a matching instance exists, cloned from the
// post-init snapshot otherwise, and — when the bound is reached — either
// blocks, evicts an idle instance of another shape, or falls back to an
// untracked cold instantiation (never an error) per PoolOptions.
//
// The pool is a host-time optimization under the same determinism contract
// as snapshot.go: every checkout, however it is served, starts from the
// exact virtual state a cold New()+Instantiate() would produce, so virtual
// metrics are byte-identical between pooled and cold runs.
//
// Snapshots are keyed by effective fusion — the one config axis baked into
// the shared lowered code — so a pool holds at most two snapshot buckets.
// Free instances and warm register-tier bodies are keyed by the full
// configShape, because register bodies bake OptCost at translation time.

import (
	"context"
	"sync"

	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasm"
)

// configShape is the comparable projection of a Config that determines
// whether two instances are interchangeable: every field except the per-run
// attachments (Tracer, Profile, Faults, Instruments), which attach() swaps
// at checkout. Defaults are normalized so a zero-field config matches an
// instance whose constructor already resolved them.
type configShape struct {
	basicCost            CostTable
	optCost              CostTable
	compileBasicPerInstr float64
	compileOptPerInstr   float64
	tierUpThreshold      uint64
	mode                 TierMode
	decodePerByte        float64
	instantiateCost      float64
	growBoundaryCost     float64
	growGranularity      uint32
	maxPages             uint32
	stepLimit            uint64
	callDepthLimit       int
	disableFusion        bool
	disableRegTier       bool
	disableAOTTier       bool
	aotThreshold         uint64
}

func shapeOf(cfg Config) configShape {
	s := configShape{
		basicCost:            cfg.BasicCost,
		optCost:              cfg.OptCost,
		compileBasicPerInstr: cfg.CompileBasicPerInstr,
		compileOptPerInstr:   cfg.CompileOptPerInstr,
		tierUpThreshold:      cfg.TierUpThreshold,
		mode:                 cfg.Mode,
		decodePerByte:        cfg.DecodePerByte,
		instantiateCost:      cfg.InstantiateCost,
		growBoundaryCost:     cfg.GrowBoundaryCost,
		growGranularity:      cfg.GrowGranularityPages,
		maxPages:             cfg.MaxPages,
		stepLimit:            cfg.StepLimit,
		callDepthLimit:       cfg.CallDepthLimit,
		disableFusion:        cfg.DisableFusion,
		disableRegTier:       cfg.DisableRegTier,
		disableAOTTier:       cfg.DisableAOTTier,
		aotThreshold:         cfg.AOTThreshold,
	}
	// Mirror the defaults New/NewVM/NewMemory resolve, so Config{} and its
	// resolved form land in the same bucket.
	if s.maxPages == 0 {
		s.maxPages = 65536
	}
	if s.callDepthLimit == 0 {
		s.callDepthLimit = 10000
	}
	if s.growGranularity == 0 {
		s.growGranularity = 1
	}
	return s
}

// PoolStats is a point-in-time snapshot of an InstancePool's counters.
type PoolStats struct {
	Hits          int // checkouts served by a recycled instance
	Misses        int // checkouts that cloned (or captured) a fresh instance
	Recycles      int // instances reset to the snapshot and returned to the pool
	ColdFallbacks int // checkouts served untracked because the pool was full
	Evictions     int // idle instances dropped to make room for another shape
	Discards      int // instances dropped on a failed reset or clone
	Live          int // tracked instances currently alive (checked out + idle)
	Idle          int // recycled instances currently waiting in the pool
}

// PoolOptions configures an InstancePool.
type PoolOptions struct {
	// MaxInstances bounds tracked live instances (checked out + idle).
	// 0 means 1: a pool is pointless without at least one recyclable slot.
	MaxInstances int
	// ColdFallback serves checkouts past the bound with an untracked cold
	// instantiation instead of blocking. Put drops such instances silently.
	ColdFallback bool
	// Instruments publishes wasm_vm_pool_* counters; nil is inert.
	Instruments *telemetry.PoolInstruments
}

// InstancePool is a bounded, concurrency-safe pool of snapshot-backed VM
// instances for one module. Checkouts via Get, returns via Put; instances
// are recycled with Reset rather than discarded. Safe for concurrent use.
type InstancePool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	module *wasm.Module
	binSize int
	opts   PoolOptions

	snaps map[bool]*Snapshot // keyed by effective fusion
	free  map[configShape][]*VM
	warm  map[configShape][]warmBody // donated register bodies, by func index
	live  int
	stats PoolStats
}

// warmBody is a donated register-tier translation: the immutable rop body
// plus the frame-size metadata translateReg derives with it (the register
// frame is locals + maxStack; adopting one without the other under-sizes
// every frame).
type warmBody struct {
	code     []rop
	maxStack int32
}

// NewInstancePool creates a pool for the given module. The snapshot is
// captured lazily on the first checkout of each fusion bucket — the capture
// instance itself is returned as that checkout's result, so no instantiation
// work is ever thrown away.
func NewInstancePool(m *wasm.Module, binarySize int, opts PoolOptions) *InstancePool {
	if opts.MaxInstances <= 0 {
		opts.MaxInstances = 1
	}
	p := &InstancePool{
		module:  m,
		binSize: binarySize,
		opts:    opts,
		snaps:   make(map[bool]*Snapshot),
		free:    make(map[configShape][]*VM),
		warm:    make(map[configShape][]warmBody),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Get checks out an instantiated VM for cfg. recycled reports whether the
// instance was served from the free list (callers surface this in run
// metadata). The caller must rebind host imports — recycled instances carry
// the previous run's bindings — and must hand the instance back with Put.
//
// When the pool is at capacity with no matching idle instance, Get evicts
// an idle instance of another shape if one exists; otherwise it either
// blocks until Put frees a slot or, with ColdFallback, returns an untracked
// cold instance. Get never fails for capacity reasons.
func (p *InstancePool) Get(cfg Config) (vm *VM, recycled bool, err error) {
	return p.get(nil, cfg)
}

// GetCtx is Get with cooperative cancelation: a checkout blocked waiting
// for a slot returns ctx.Err() promptly when ctx is canceled, instead of
// waiting for a Put that may never come. The fast paths (free-list hit,
// clone, eviction, cold fallback) are unaffected; no instance is leaked —
// a canceled waiter never holds a slot.
func (p *InstancePool) GetCtx(ctx context.Context, cfg Config) (vm *VM, recycled bool, err error) {
	if ctx != nil && ctx.Done() != nil {
		// Wake every cond waiter on cancel; each re-checks its own ctx. The
		// lock around Broadcast orders the wake against a concurrent Wait.
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	return p.get(ctx, cfg)
}

func (p *InstancePool) get(ctx context.Context, cfg Config) (vm *VM, recycled bool, err error) {
	shape := shapeOf(cfg)
	p.mu.Lock()
	for {
		if ctx != nil && ctx.Err() != nil {
			p.mu.Unlock()
			return nil, false, ctx.Err()
		}
		if list := p.free[shape]; len(list) > 0 {
			vm = list[len(list)-1]
			list[len(list)-1] = nil
			p.free[shape] = list[:len(list)-1]
			p.stats.Hits++
			p.publishLocked(func(pi *telemetry.PoolInstruments) {
				pi.Hits.Inc()
				pi.Idle.Set(float64(p.idleLocked()))
			})
			p.mu.Unlock()
			vm.attach(cfg)
			return vm, true, nil
		}
		if p.live < p.opts.MaxInstances {
			return p.makeLocked(cfg, shape)
		}
		if p.evictLocked() {
			continue // a slot just opened
		}
		if p.opts.ColdFallback {
			p.stats.ColdFallbacks++
			p.publishLocked(func(pi *telemetry.PoolInstruments) { pi.ColdFallbacks.Inc() })
			p.mu.Unlock()
			vm, err = p.coldVM(cfg)
			return vm, false, err
		}
		p.cond.Wait()
	}
}

// makeLocked serves a miss while p.mu is held: it reserves a live slot,
// then either captures the fusion bucket's snapshot (returning the capture
// instance itself) or clones from the existing snapshot outside the lock.
func (p *InstancePool) makeLocked(cfg Config, shape configShape) (*VM, bool, error) {
	p.live++
	p.stats.Misses++
	p.publishLocked(func(pi *telemetry.PoolInstruments) {
		pi.Misses.Inc()
		pi.Live.Set(float64(p.live))
	})
	snap := p.snaps[fusionEffective(cfg)]
	if snap == nil {
		// First checkout of this fusion bucket: instantiate cold, capture,
		// and hand the capture instance out as the result. Capture under the
		// lock is deliberate — it happens at most twice per pool lifetime,
		// and it keeps concurrent first checkouts from racing to capture.
		vm, err := p.coldVM(cfg)
		if err != nil {
			p.releaseLocked()
			p.mu.Unlock()
			return nil, false, err
		}
		if _, err := vm.Snapshot(); err != nil {
			p.releaseLocked()
			p.mu.Unlock()
			return nil, false, err
		}
		p.snaps[fusionEffective(cfg)] = vm.snap
		vm.pool = p
		p.mu.Unlock()
		return vm, false, nil
	}
	warm := p.warm[shape]
	p.mu.Unlock()
	vm, err := snap.NewVM(cfg)
	if err != nil {
		// Unreachable for capacity or fusion reasons (the snapshot bucket is
		// keyed by effective fusion); release the reserved slot regardless.
		p.mu.Lock()
		p.releaseLocked()
		p.mu.Unlock()
		return nil, false, err
	}
	if warm != nil {
		// Adopt donated register bodies. Entries are written once under the
		// pool lock and immutable afterwards, and the slice header was read
		// under the lock above, so this read is race-free. Adopted bodies
		// only skip translateReg — regBody still replays its fault check,
		// counters, and instruments as if it had translated.
		p.mu.Lock()
		for i := range warm {
			if warm[i].code != nil && vm.funcs[i].regCode == nil {
				vm.funcs[i].regCode = warm[i].code
				vm.funcs[i].maxStack = warm[i].maxStack
			}
		}
		p.mu.Unlock()
	}
	vm.pool = p
	return vm, false, nil
}

// Put returns a checked-out instance to the pool. Instances the pool does
// not own (cold fallbacks, nil) are dropped silently. A failed Reset
// discards the instance and frees its slot rather than poisoning the pool.
func (p *InstancePool) Put(vm *VM) {
	if vm == nil || vm.pool != p {
		return
	}
	if err := vm.Reset(); err != nil {
		vm.pool = nil
		p.mu.Lock()
		p.stats.Discards++
		p.publishLocked(func(pi *telemetry.PoolInstruments) { pi.Discards.Inc() })
		p.releaseLocked()
		p.mu.Unlock()
		return
	}
	vm.attach(Config{}) // drop per-run attachments while idle
	shape := shapeOf(vm.cfg)
	p.mu.Lock()
	p.donateLocked(shape, vm)
	p.free[shape] = append(p.free[shape], vm)
	p.stats.Recycles++
	p.publishLocked(func(pi *telemetry.PoolInstruments) {
		pi.Recycles.Inc()
		pi.Idle.Set(float64(p.idleLocked()))
	})
	p.cond.Signal()
	p.mu.Unlock()
}

// donateLocked stores the instance's translated register bodies in the
// shape's warm store so future clones skip translateReg. AOT bodies are
// never donated: their superblock closures capture the owning instance's
// globals slice and *Memory at translation time.
func (p *InstancePool) donateLocked(shape configShape, vm *VM) {
	var store []warmBody
	for i := range vm.funcs {
		cf := &vm.funcs[i]
		if cf.regCode == nil {
			continue
		}
		if store == nil {
			if store = p.warm[shape]; store == nil {
				store = make([]warmBody, len(vm.funcs))
				p.warm[shape] = store
			}
		}
		if store[i].code == nil {
			store[i] = warmBody{code: cf.regCode, maxStack: cf.maxStack}
		}
	}
}

// evictLocked discards one idle instance to open a slot for another shape.
// Reports whether a slot was freed.
func (p *InstancePool) evictLocked() bool {
	for shape, list := range p.free {
		if len(list) == 0 {
			continue
		}
		vm := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[shape] = list[:len(list)-1]
		vm.pool = nil
		p.stats.Evictions++
		p.publishLocked(func(pi *telemetry.PoolInstruments) {
			pi.Evictions.Inc()
			pi.Idle.Set(float64(p.idleLocked()))
		})
		p.releaseLocked()
		return true
	}
	return false
}

// releaseLocked frees a live slot and wakes one blocked Get.
func (p *InstancePool) releaseLocked() {
	p.live--
	p.publishLocked(func(pi *telemetry.PoolInstruments) { pi.Live.Set(float64(p.live)) })
	p.cond.Signal()
}

// coldVM builds a plain cold instance, exactly as a non-pooled caller would.
func (p *InstancePool) coldVM(cfg Config) (*VM, error) {
	vm, err := New(p.module, p.binSize, cfg)
	if err != nil {
		return nil, err
	}
	if err := vm.Instantiate(); err != nil {
		return nil, err
	}
	return vm, nil
}

func (p *InstancePool) idleLocked() int {
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return n
}

func (p *InstancePool) publishLocked(f func(*telemetry.PoolInstruments)) {
	if p.opts.Instruments != nil {
		f(p.opts.Instruments)
	}
}

// Stats returns a point-in-time snapshot of the pool's counters.
func (p *InstancePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Live = p.live
	s.Idle = p.idleLocked()
	return s
}
