package wasmvm

import "testing"

// BenchmarkAOTTier measures wall-clock dispatch on the hot sum loop under
// the AOT superblock dispatcher against the register tier and the fused
// stack interpreter. The warm-up call crosses both thresholds (OSR +
// superblock compile), so every timed iteration runs one indirect call per
// superblock instead of one switch per instruction; virtual cycles are
// identical across variants, only host time differs.
func BenchmarkAOTTier(b *testing.B) {
	run := func(b *testing.B, disableAOT, disableReg bool) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 100
		cfg.AOTThreshold = 100
		cfg.DisableAOTTier = disableAOT
		cfg.DisableRegTier = disableReg
		vm, err := New(buildModule(), 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Instantiate(); err != nil {
			b.Fatal(err)
		}
		const n = 100000
		if _, err := vm.Call("sum", I32(n)); err != nil {
			b.Fatal(err)
		}
		if !disableAOT && !disableReg && vm.AOTTranslated() == 0 {
			b.Fatal("warm-up did not engage the AOT tier")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := vm.Call("sum", I32(n)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(vm.Stats().Steps)/float64(b.N), "steps/op")
	}
	b.Run("aot", func(b *testing.B) { run(b, false, false) })
	b.Run("reg", func(b *testing.B) { run(b, true, false) })
	b.Run("stack-fused", func(b *testing.B) { run(b, true, true) })
}
