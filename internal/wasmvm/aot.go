package wasmvm

import (
	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
)

// This file implements the third execution tier: an ahead-of-time
// translator that compiles a hot function's register-form body
// (regalloc.go) into "superblocks" — basic blocks whose instructions are
// pre-bound Go closures chained by direct captured references — so
// execution pays one indirect call per block edge instead of one switch
// iteration per instruction (runAOT, aotexec.go).
//
// The translation starts from the register form, so it inherits the 1:1
// slot→register mapping and the fused superinstruction forms. The body is
// partitioned at branch targets: every target, every fall-through after a
// conditional branch or call, and pc 0 starts a block. Within a block each
// op becomes a closure that captures its operand registers, constants, and
// cost, performs its effect, and tail-calls the next closure; the block
// terminator returns the successor block index (branch targets are
// resolved to block indexes at translation time, so control flow is
// block→block integer edges).
//
// Determinism contract (same as the register tier): cycles (including
// float-addition order), steps, per-class tallies, profiles, and traces
// must be byte-identical to the stack and register dispatchers. Cycles are
// added in instruction order inside the closures. Integer accounting
// (steps, class tallies) is commutative, so the driver hoists it: each
// block's totals are precomputed and added once at block entry. Two cases
// need care:
//
//   - Traps. A trapping closure fires mid-block after the whole block was
//     pre-counted, so it hands the driver a rollback — the aggregate of
//     every op strictly after it in the block — to subtract before the
//     flush. The trapping op's own charges stay, matching the
//     charge-before-evaluate order of runStack/runReg.
//   - Calls. A call must flush and reload the VM-global counters around
//     the callee, so rCall terminates its block and the driver performs
//     the call between blocks.
//
// Conservative-bail discipline: anything unexpected (dead slots reached,
// unknown kinds) bails the whole translation and the register tier keeps
// serving the function; the register tier in turn bails to the stack loop.

// aotFn is one compiled closure. It threads the running cycle count and
// returns either the next block index (>= 0) or a sentinel.
type aotFn func(vm *VM, fr []uint64, cy float64) (float64, int32)

// Driver sentinels returned in place of a block index.
const (
	aotRet      int32 = -1 // function end: copy results, return
	aotTrap     int32 = -2 // trap: vm.aotErr/vm.aotRb are set
	aotCallMark int32 = -3 // block ended in a call: see aotBlock.call
)

// aotClassDelta is one cost class's contribution to a block aggregate or a
// trap rollback.
type aotClassDelta struct {
	class CostClass
	n     uint64
}

// aotCall describes the call terminating a block, executed by the driver
// between blocks (flush, callIndex, reload).
type aotCall struct {
	idx  uint32 // combined-index-space function index
	np   int    // parameter count
	base int32  // argument base register; results land at the same base
	next int32  // block index after the call (or aotRet)
}

// aotRollback is the pre-counted suffix a trapping closure hands back for
// the driver to subtract.
type aotRollback struct {
	steps   uint64
	classes []aotClassDelta
}

// aotNoRollback is the shared empty rollback for trap sites with nothing
// after them in the block.
var aotNoRollback aotRollback

// aotBlock is one superblock: the head of the closure chain plus the
// hoisted integer accounting for the whole block.
type aotBlock struct {
	head    aotFn
	steps   uint64
	classes []aotClassDelta
	call    *aotCall // non-nil iff the block terminator is a call
}

// aotBody returns cf's superblock form, translating it on first use. A nil
// result means translation bailed (the register tier keeps serving the
// function; only dispatch speed is affected, never metrics). Translation
// charges no virtual cycles: like fusion and register translation, the AOT
// tier is invisible to the virtual clock.
func (vm *VM) aotBody(cf *compiledFunc) []aotBlock {
	if !cf.aotTried {
		cf.aotTried = true
		if vm.faults != nil && vm.faults.Fire(faultinject.WasmAOTTranslate, cf.name) {
			// Injected translation failure: aotBlocks stays nil, so the
			// register tier serves the function permanently — the same
			// fallback as a natural conservative bail, identical metrics.
			// A body retained across a snapshot Reset is dropped too, so
			// the denial behaves exactly as on a cold instance.
			vm.emitFault(faultinject.WasmAOTTranslate, vm.cycles)
			cf.aotBlocks, cf.aotEntry = nil, nil
			return nil
		}
		// Superblocks retained across a snapshot Reset skip re-translation
		// (their closures captured this instance's globals and memory,
		// which Reset restored in place), but the counters and the compile
		// trace event below replay at the identical virtual timestamp a
		// cold instance would emit them.
		if cf.aotBlocks == nil {
			cf.aotBlocks, cf.aotEntry = translateAOT(vm, cf)
		}
		if cf.aotBlocks != nil {
			vm.aotBuilt++
			vm.aotBlockCount += len(cf.aotBlocks)
			if vm.inst != nil {
				vm.inst.AOTTranslated.Inc()
				vm.inst.Superblocks.Add(float64(len(cf.aotBlocks)))
			}
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindAOTCompile, TS: vm.cycles,
					Name: cf.name, Track: "wasm",
					A: float64(len(cf.aotBlocks)), B: float64(len(cf.regCode))})
			}
		}
	}
	return cf.aotBlocks
}

// aotReady reports whether cf should run on the AOT tier: the tier is
// enabled, the function is hot enough, and translation succeeded. Callers
// check this only after regBody succeeded (the AOT form is built from the
// register form).
func (vm *VM) aotReady(cf *compiledFunc) bool {
	return vm.aotEnabled && cf.hotness >= vm.cfg.AOTThreshold && vm.aotBody(cf) != nil
}

// translateAOT partitions cf's register body into superblocks and binds
// the closure chains. Returns (nil, nil) on a conservative bail.
func translateAOT(vm *VM, cf *compiledFunc) ([]aotBlock, []int32) {
	code := cf.regCode
	n := len(code)
	if n == 0 {
		return nil, nil
	}

	// Leaders: pc 0, every branch target, and every fall-through edge after
	// a conditional branch or call. Dead slots carry zero-value jumps, so
	// only live branch kinds contribute targets.
	leader := make([]bool, n)
	leader[0] = true
	mark := func(p int32) {
		if int(p) < n {
			leader[p] = true
		}
	}
	for pc := 0; pc < n; pc++ {
		switch in := &code[pc]; in.kind {
		case rIf, rBrIf:
			mark(in.jump.pc)
			mark(int32(pc + 1))
		case rJump:
			mark(in.jump.pc)
		case rBrTable:
			for i := range in.targets {
				mark(in.targets[i].pc)
			}
		case rCmpBrIf, rGeS32BrIf, rLtS32BrIf:
			mark(in.jump.pc)
			mark(int32(pc + 2))
		case rCall:
			mark(int32(pc + 1))
		}
	}

	entry := make([]int32, n)
	var starts []int
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			entry[pc] = int32(len(starts))
			starts = append(starts, pc)
		} else {
			entry[pc] = -1
		}
	}

	b := &aotBuilder{vm: vm, cf: cf, code: code, entry: entry, leader: leader}
	blocks := make([]aotBlock, len(starts))
	for i, start := range starts {
		if !b.buildBlock(&blocks[i], start) {
			return nil, nil
		}
	}
	return blocks, entry
}

// aotAgg accumulates steps and per-class counts (padded like vm.tally so a
// CostClass indexes without a bounds check).
type aotAgg struct {
	steps   uint64
	classes [256]uint64
}

func (a *aotAgg) add(c CostClass) {
	a.steps++
	a.classes[c]++
}

func (a *aotAgg) deltas() []aotClassDelta {
	var out []aotClassDelta
	for c, n := range a.classes {
		if n != 0 {
			out = append(out, aotClassDelta{class: CostClass(c), n: n})
		}
	}
	return out
}

// snapshot freezes the aggregate as a trap rollback.
func (a *aotAgg) snapshot() *aotRollback {
	if a.steps == 0 {
		return &aotNoRollback
	}
	return &aotRollback{steps: a.steps, classes: a.deltas()}
}

// aotJump is a branch edge resolved to a block index, with the carried
// value's register move (at most one, as in rbranch).
type aotJump struct {
	blk  int32
	src  int32
	dst  int32
	keep bool
}

// aotTableTarget is one resolved br_table edge.
type aotTableTarget struct {
	src  int32
	dst  int32
	keep bool
	blk  int32
}

// aotBuilder carries translation state shared across blocks.
type aotBuilder struct {
	vm     *VM
	cf     *compiledFunc
	code   []rop
	entry  []int32
	leader []bool
}

// blockAt resolves a register-form pc to a block index; past the end of
// the body it is the function return.
func (b *aotBuilder) blockAt(p int32) int32 {
	if int(p) >= len(b.code) {
		return aotRet
	}
	return b.entry[p]
}

func (b *aotBuilder) resolveJump(j *rbranch) aotJump {
	return aotJump{blk: b.blockAt(j.pc), src: j.src, dst: j.dst, keep: j.keep != 0}
}

// buildBlock walks one superblock from its leader, precomputes the hoisted
// accounting, and binds the closure chain back to front (so every
// trappable op can snapshot the aggregate of what follows it as its
// rollback).
func (b *aotBuilder) buildBlock(blk *aotBlock, start int) bool {
	code := b.code
	n := len(code)
	var agg aotAgg  // hoisted whole-block accounting
	var plain []int // non-terminator op pcs, in order
	term := -1
	pc := start
walk:
	for pc < n {
		if pc != start && b.leader[pc] {
			break // fall through into the next block
		}
		in := &code[pc]
		switch in.kind {
		case rDead:
			return false // control cannot reach a dead slot; bail defensively
		case rIf, rJump, rBrIf, rBrTable, rCall, rUnreachable:
			agg.add(in.class)
			term = pc
			break walk
		case rCmpBrIf, rGeS32BrIf, rLtS32BrIf:
			agg.add(in.class)
			agg.add(in.class2)
			term = pc
			break walk
		case rMove2, rConstBin, rConstAdd32, rGetLoad:
			agg.add(in.class)
			agg.add(in.class2)
			plain = append(plain, pc)
			pc += 2
		default:
			agg.add(in.class)
			plain = append(plain, pc)
			pc++
		}
	}
	blk.steps = agg.steps
	blk.classes = agg.deltas()

	var rb aotAgg // running suffix aggregate for trap rollbacks
	var next aotFn
	if term >= 0 {
		next = b.mkTerm(&code[term], term, blk, &rb)
	} else {
		fall := b.blockAt(int32(pc))
		next = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			return cy, fall
		}
	}
	for i := len(plain) - 1; i >= 0; {
		// Coalesce a run of adjacent data-movement ops (register-form moves
		// and constants dominate compiled loop bodies) into one closure:
		// the per-op cost additions stay separate and ordered, only the
		// call-per-op overhead disappears.
		if j := i; moveLike(code[plain[j]].kind) {
			for j > 0 && moveLike(code[plain[j-1]].kind) {
				j--
			}
			if ms := decomposeMoves(code, plain[j:i+1]); len(ms) >= 2 {
				next = mkMoveRun(ms, next)
				for k := j; k <= i; k++ {
					in := &code[plain[k]]
					rb.add(in.class)
					if in.kind == rMove2 {
						rb.add(in.class2)
					}
				}
				i = j - 1
				continue
			}
		}
		next = b.mkOp(&code[plain[i]], next, &rb)
		i--
	}
	if next == nil {
		return false
	}
	blk.head = next
	return true
}

// moveLike reports whether a register op is pure data movement — eligible
// for run coalescing (non-trapping, no side effects beyond register
// writes).
func moveLike(k rkind) bool {
	return k == rMove || k == rMove2 || k == rConst
}

// aotMicroMove is one register write inside a coalesced move run: src ≥ 0
// copies a register, src < 0 materializes val. Each micro-move carries its
// own cost so the virtual-clock additions keep the exact per-instruction
// order and rounding of the other dispatchers.
type aotMicroMove struct {
	dst, src int32
	val      uint64
	cost     float64
}

// decomposeMoves flattens a run of move-like ops into micro-moves (rMove2
// contributes two, one per fused component, each with its own charge).
func decomposeMoves(code []rop, pcs []int) []aotMicroMove {
	var ms []aotMicroMove
	for _, pc := range pcs {
		in := &code[pc]
		switch in.kind {
		case rMove:
			ms = append(ms, aotMicroMove{dst: in.rd, src: in.r1, cost: in.cost})
		case rConst:
			ms = append(ms, aotMicroMove{dst: in.rd, src: -1, val: uint64(in.val), cost: in.cost})
		case rMove2:
			ms = append(ms, aotMicroMove{dst: in.rd, src: in.r1, cost: in.cost})
			ms = append(ms, aotMicroMove{dst: in.rd + 1, src: in.r2, cost: in.cost2})
		}
	}
	return ms
}

// mkMoveRun binds one closure for a whole move run. Pure register-copy
// runs of two or three get straight-line specializations (the hot shapes:
// operand setup and loop-variable writeback); anything longer or holding
// constants takes the generic loop.
func mkMoveRun(ms []aotMicroMove, next aotFn) aotFn {
	allRegs := true
	for i := range ms {
		if ms[i].src < 0 {
			allRegs = false
			break
		}
	}
	switch {
	case allRegs && len(ms) == 2:
		d0, s0, c0 := ms[0].dst, ms[0].src, ms[0].cost
		d1, s1, c1 := ms[1].dst, ms[1].src, ms[1].cost
		return func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += c0
			fr[d0] = fr[s0]
			cy += c1
			fr[d1] = fr[s1]
			return next(vm, fr, cy)
		}
	case allRegs && len(ms) == 3:
		d0, s0, c0 := ms[0].dst, ms[0].src, ms[0].cost
		d1, s1, c1 := ms[1].dst, ms[1].src, ms[1].cost
		d2, s2, c2 := ms[2].dst, ms[2].src, ms[2].cost
		return func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += c0
			fr[d0] = fr[s0]
			cy += c1
			fr[d1] = fr[s1]
			cy += c2
			fr[d2] = fr[s2]
			return next(vm, fr, cy)
		}
	default:
		return func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			for i := range ms {
				m := &ms[i]
				cy += m.cost
				if m.src >= 0 {
					fr[m.dst] = fr[m.src]
				} else {
					fr[m.dst] = m.val
				}
			}
			return next(vm, fr, cy)
		}
	}
}

// mkTerm binds the block terminator closure and records its contribution
// to the suffix aggregate.
func (b *aotBuilder) mkTerm(in *rop, pc int, blk *aotBlock, rb *aotAgg) aotFn {
	cost := in.cost
	r1, r2 := in.r1, in.r2
	var fn aotFn
	switch in.kind {
	case rCall:
		blk.call = &aotCall{idx: in.a, np: int(in.r1), base: in.rd, next: b.blockAt(int32(pc + 1))}
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			return cy + cost, aotCallMark
		}
	case rUnreachable:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			vm.aotErr = ErrUnreachable
			vm.aotRb = &aotNoRollback
			return cy + cost, aotTrap
		}
	case rIf: // branch when the condition is zero (the false edge)
		j := b.resolveJump(&in.jump)
		fall := b.blockAt(int32(pc + 1))
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			if uint32(fr[r1]) == 0 {
				if j.keep {
					fr[j.dst] = fr[j.src]
				}
				return cy, j.blk
			}
			return cy, fall
		}
	case rJump:
		j := b.resolveJump(&in.jump)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			if j.keep {
				fr[j.dst] = fr[j.src]
			}
			return cy, j.blk
		}
	case rBrIf:
		j := b.resolveJump(&in.jump)
		fall := b.blockAt(int32(pc + 1))
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			if uint32(fr[r1]) != 0 {
				if j.keep {
					fr[j.dst] = fr[j.src]
				}
				return cy, j.blk
			}
			return cy, fall
		}
	case rBrTable:
		tgts := make([]aotTableTarget, len(in.targets))
		for i := range in.targets {
			t := &in.targets[i]
			tgts[i] = aotTableTarget{src: t.src, dst: t.dst, keep: t.keep != 0, blk: b.blockAt(t.pc)}
		}
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			c := uint32(fr[r1])
			t := &tgts[len(tgts)-1] // default is last
			if int(c) < len(tgts)-1 {
				t = &tgts[c]
			}
			if t.keep {
				fr[t.dst] = fr[t.src]
			}
			return cy, t.blk
		}
	case rGeS32BrIf:
		cost2 := in.cost2
		j := b.resolveJump(&in.jump)
		fall := b.blockAt(int32(pc + 2))
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			cy += cost2
			if int32(fr[r1]) >= int32(fr[r2]) {
				if j.keep {
					fr[j.dst] = fr[j.src]
				}
				return cy, j.blk
			}
			return cy, fall
		}
	case rLtS32BrIf:
		cost2 := in.cost2
		j := b.resolveJump(&in.jump)
		fall := b.blockAt(int32(pc + 2))
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			cy += cost2
			if int32(fr[r1]) < int32(fr[r2]) {
				if j.keep {
					fr[j.dst] = fr[j.src]
				}
				return cy, j.blk
			}
			return cy, fall
		}
	case rCmpBrIf:
		cost2 := in.cost2
		op2 := in.op2
		j := b.resolveJump(&in.jump)
		fall := b.blockAt(int32(pc + 2))
		if r2 < 0 { // unary comparison (eqz); comparisons cannot trap
			fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
				cy += cost
				cy += cost2
				c, _ := numUnary(op2, fr[r1])
				if uint32(c) != 0 {
					if j.keep {
						fr[j.dst] = fr[j.src]
					}
					return cy, j.blk
				}
				return cy, fall
			}
		} else {
			fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
				cy += cost
				cy += cost2
				c, _ := numBinary(op2, fr[r1], fr[r2])
				if uint32(c) != 0 {
					if j.keep {
						fr[j.dst] = fr[j.src]
					}
					return cy, j.blk
				}
				return cy, fall
			}
		}
	default:
		return nil
	}
	rb.add(in.class)
	switch in.kind {
	case rCmpBrIf, rGeS32BrIf, rLtS32BrIf:
		rb.add(in.class2)
	}
	return fn
}

// mkOp binds one mid-block closure. Trappable kinds snapshot the current
// suffix aggregate — everything already bound after them — as their trap
// rollback, then the op adds its own contribution for the ops before it.
func (b *aotBuilder) mkOp(in *rop, next aotFn, rb *aotAgg) aotFn {
	if next == nil {
		return nil
	}
	cost := in.cost
	r1, r2, rd := in.r1, in.r2, in.rd
	var rbp *aotRollback
	switch in.kind {
	case rUn, rBin, rLoad, rStore, rConstBin, rGetLoad:
		rbp = rb.snapshot()
	}
	var fn aotFn
	switch in.kind {
	case rNop:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			return next(vm, fr, cy+cost)
		}
	case rMove:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = fr[r1]
			return next(vm, fr, cy+cost)
		}
	case rConst:
		val := uint64(in.val)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = val
			return next(vm, fr, cy+cost)
		}
	case rGlobalGet:
		globals := b.vm.globals
		a := in.a
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = globals[a]
			return next(vm, fr, cy+cost)
		}
	case rGlobalSet:
		globals := b.vm.globals
		a := in.a
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			globals[a] = fr[r1]
			return next(vm, fr, cy+cost)
		}
	case rAddI32:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(uint32(fr[r1]) + uint32(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rSubI32:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(uint32(fr[r1]) - uint32(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rMulI32:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(uint32(fr[r1]) * uint32(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rAddI64:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = fr[r1] + fr[r2]
			return next(vm, fr, cy+cost)
		}
	case rAddF64:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = F64(AsF64(fr[r1]) + AsF64(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rMulF64:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = F64(AsF64(fr[r1]) * AsF64(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rShlI32:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(uint32(fr[r1]) << (uint32(fr[r2]) & 31))
			return next(vm, fr, cy+cost)
		}
	case rAndI32:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(uint32(fr[r1]) & uint32(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rXorI32:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(uint32(fr[r1]) ^ uint32(fr[r2]))
			return next(vm, fr, cy+cost)
		}
	case rExtI64S:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(int64(int32(fr[r1])))
			return next(vm, fr, cy+cost)
		}
	case rUn:
		op := in.op
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			v, err := numUnary(op, fr[r1])
			if err != nil {
				vm.aotErr = err
				vm.aotRb = rbp
				return cy, aotTrap
			}
			fr[rd] = v
			return next(vm, fr, cy)
		}
	case rBin:
		op := in.op
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			v, err := numBinary(op, fr[r1], fr[r2])
			if err != nil {
				vm.aotErr = err
				vm.aotRb = rbp
				return cy, aotTrap
			}
			fr[rd] = v
			return next(vm, fr, cy)
		}
	case rLoad:
		mem := b.vm.mem
		op := in.op
		off := uint64(in.b)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			v, err := memLoad(mem, op, uint64(uint32(fr[r1]))+off)
			if err != nil {
				vm.aotErr = err
				vm.aotRb = rbp
				return cy, aotTrap
			}
			fr[rd] = v
			return next(vm, fr, cy)
		}
	case rStore:
		mem := b.vm.mem
		op := in.op
		off := uint64(in.b)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			if err := memStore(mem, op, uint64(uint32(fr[r1]))+off, fr[r2]); err != nil {
				vm.aotErr = err
				vm.aotRb = rbp
				return cy, aotTrap
			}
			return next(vm, fr, cy)
		}
	case rSelect:
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			if uint32(fr[rd+2]) == 0 {
				fr[rd] = fr[rd+1]
			}
			return next(vm, fr, cy+cost)
		}
	case rMemSize:
		mem := b.vm.mem
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			fr[rd] = uint64(mem.Pages())
			return next(vm, fr, cy+cost)
		}
	case rMemGrow:
		mem := b.vm.mem
		name := b.cf.name
		growCost := b.vm.cfg.GrowBoundaryCost
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			d := uint32(fr[r1])
			var g int32
			if vm.faults != nil && vm.faults.DenyGrow(name, mem.Pages(), d) {
				g = -1
				vm.emitFault(faultinject.WasmGrowDeny, cy)
			} else {
				g = mem.Grow(d)
			}
			fr[rd] = uint64(uint32(g))
			cy += growCost
			if vm.tracer != nil {
				vm.tracer.Emit(obsv.Event{Kind: obsv.KindMemGrow, TS: cy,
					Name: name, Track: "wasm", A: float64(d), B: float64(g)})
			}
			if vm.inst != nil {
				vm.inst.MemGrowOps.Inc()
				if g >= 0 {
					vm.inst.MemGrowPages.Add(float64(mem.Pages() - uint32(g)))
				}
			}
			return next(vm, fr, cy)
		}

	// Fused forms: both components' cycles are added in the order the
	// register loop charges them.
	case rMove2:
		cost2 := in.cost2
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			cy += cost2
			fr[rd] = fr[r1]
			fr[rd+1] = fr[r2]
			return next(vm, fr, cy)
		}
	case rConstAdd32:
		cost2 := in.cost2
		k := uint32(in.val)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			cy += cost2
			fr[rd] = uint64(uint32(fr[r1]) + k)
			return next(vm, fr, cy)
		}
	case rConstBin:
		cost2 := in.cost2
		op2 := in.op2
		val := uint64(in.val)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			cy += cost2
			v, err := numBinary(op2, fr[r1], val)
			if err != nil {
				vm.aotErr = err
				vm.aotRb = rbp
				return cy, aotTrap
			}
			fr[rd] = v
			return next(vm, fr, cy)
		}
	case rGetLoad:
		cost2 := in.cost2
		mem := b.vm.mem
		op2 := in.op2
		off := uint64(in.b)
		fn = func(vm *VM, fr []uint64, cy float64) (float64, int32) {
			cy += cost
			cy += cost2
			v, err := memLoad(mem, op2, uint64(uint32(fr[r1]))+off)
			if err != nil {
				vm.aotErr = err
				vm.aotRb = rbp
				return cy, aotTrap
			}
			fr[rd] = v
			return next(vm, fr, cy)
		}
	default:
		return nil
	}
	rb.add(in.class)
	switch in.kind {
	case rMove2, rConstBin, rConstAdd32, rGetLoad:
		rb.add(in.class2)
	}
	return fn
}
