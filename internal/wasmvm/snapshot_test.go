package wasmvm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
	"wasmbench/internal/wasm"
)

// snapModule builds the snapshot-identity workload: a mutable global, a
// data segment (so the post-init image is not all-zero), a hot compute loop
// that stores through memory and updates the global (tiering all the way to
// AOT under the test thresholds), plus the grow/poke/peek probes.
func snapModule() *wasm.Module {
	m := growSpecModule()
	m.Globals = append(m.Globals, wasm.Global{Type: wasm.I32, Mutable: true, Init: 7, Name: "acc"})
	m.Data = append(m.Data, wasm.DataSegment{Offset: 64, Bytes: []byte("post-init image")})
	tI_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	// work(n): for i in 0..n { acc += i*i; mem[(i%64)*4] = acc }; return acc
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "work",
		Locals: []wasm.ValType{wasm.I32}, // local1 = i
		Body: []wasm.Instr{
			{Op: wasm.OpBlock, BlockType: wasm.BlockNone},
			{Op: wasm.OpLoop, BlockType: wasm.BlockNone},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpI32GeS},
			{Op: wasm.OpBrIf, A: 1},
			// acc += i*i
			{Op: wasm.OpGlobalGet, A: 0},
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpI32Mul},
			{Op: wasm.OpI32Add}, {Op: wasm.OpGlobalSet, A: 0},
			// mem[(i%64)*4] = acc
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpI32Const, Val: 64}, {Op: wasm.OpI32RemS},
			{Op: wasm.OpI32Const, Val: 4}, {Op: wasm.OpI32Mul},
			{Op: wasm.OpGlobalGet, A: 0}, {Op: wasm.OpI32Store, A: 2},
			// i++
			{Op: wasm.OpLocalGet, A: 1}, {Op: wasm.OpI32Const, Val: 1},
			{Op: wasm.OpI32Add}, {Op: wasm.OpLocalSet, A: 1},
			{Op: wasm.OpBr, A: 0},
			{Op: wasm.OpEnd},
			{Op: wasm.OpEnd},
			{Op: wasm.OpGlobalGet, A: 0},
			{Op: wasm.OpEnd},
		}})
	m.Exports = append(m.Exports, wasm.Export{Name: "work", Kind: wasm.ExportFunc, Idx: uint32(len(m.Funcs) - 1)})
	return m
}

// vmFingerprint is every externally observable virtual metric of a run:
// results, the full cycle clock, stats, memory image checksum, profiles,
// translation counters, and the trace event stream. Pooled and cold
// executions must agree on all of it, byte for byte.
type vmFingerprint struct {
	results  []uint64
	cycles   float64
	stats    Stats
	peak     uint64
	pages    uint32
	memSum   uint64
	regBuilt int
	aotBuilt int
	profiles []obsv.FuncProfile
	events   []obsv.Event
}

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// runWorkload drives the shared snapshot workload on an instantiated VM
// whose config carries tc (a fresh Collector) as tracer.
func runWorkload(t *testing.T, vm *VM, tc *obsv.Collector) vmFingerprint {
	t.Helper()
	var rs []uint64
	rs = append(rs, call1(t, vm, "poke", I32(16), I32(0x5EED)))
	rs = append(rs, call1(t, vm, "work", I32(400)))
	rs = append(rs, call1(t, vm, "grow", I32(2)))
	rs = append(rs, call1(t, vm, "work", I32(100)))
	rs = append(rs, call1(t, vm, "peek", I32(64)))
	fp := vmFingerprint{
		results:  rs,
		cycles:   vm.Cycles(),
		stats:    vm.Stats(),
		peak:     vm.PeakMemoryBytes(),
		pages:    vm.Memory().Pages(),
		memSum:   fnv1a(vm.Memory().Bytes()),
		regBuilt: vm.RegTranslated(),
		aotBuilt: vm.AOTTranslated(),
		profiles: vm.Profile(),
		events:   tc.Events(),
	}
	return fp
}

// TestSnapshotCloneAndResetIdentity is the core determinism claim: a clone
// from a post-init snapshot and a recycled (Reset) instance produce virtual
// metrics byte-identical to a cold New+Instantiate — across all four
// dispatch tiers, with tracing and profiling armed.
func TestSnapshotCloneAndResetIdentity(t *testing.T) {
	for name, cfg := range growTierConfigs() {
		t.Run(name, func(t *testing.T) {
			mkCfg := func(tc *obsv.Collector) Config {
				c := cfg
				c.Profile = true
				c.Tracer = tc
				return c
			}

			// Cold reference.
			coldTC := &obsv.Collector{}
			cold, err := New(snapModule(), 123, mkCfg(coldTC))
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.Instantiate(); err != nil {
				t.Fatal(err)
			}
			want := runWorkload(t, cold, coldTC)

			// Clone from a snapshot captured on a fresh instance.
			origin, err := New(snapModule(), 123, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := origin.Instantiate(); err != nil {
				t.Fatal(err)
			}
			snap, err := origin.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			cloneTC := &obsv.Collector{}
			clone, err := snap.NewVM(mkCfg(cloneTC))
			if err != nil {
				t.Fatal(err)
			}
			got := runWorkload(t, clone, cloneTC)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("clone diverged from cold:\ncold:  %+v\nclone: %+v", want, got)
			}

			// Recycle the clone (retained translated bodies) and run again.
			if err := clone.Reset(); err != nil {
				t.Fatal(err)
			}
			recycleTC := &obsv.Collector{}
			clone.attach(mkCfg(recycleTC))
			got = runWorkload(t, clone, recycleTC)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("recycled instance diverged from cold:\ncold:     %+v\nrecycled: %+v", want, got)
			}

			// And the origin instance itself is resettable after running.
			if _, err := origin.Call("work", I32(50)); err != nil {
				t.Fatal(err)
			}
			if err := origin.Reset(); err != nil {
				t.Fatal(err)
			}
			originTC := &obsv.Collector{}
			origin.attach(mkCfg(originTC))
			got = runWorkload(t, origin, originTC)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("reset origin diverged from cold:\ncold:   %+v\norigin: %+v", want, got)
			}
		})
	}
}

// TestSnapshotFusionMismatch: the one config axis baked into shared code is
// rejected at clone time instead of silently mis-dispatching.
func TestSnapshotFusionMismatch(t *testing.T) {
	vm, err := New(snapModule(), 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	snap, err := vm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.DisableFusion = true
	if _, err := snap.NewVM(bad); err == nil {
		t.Fatal("fusion-mismatched clone succeeded; want error")
	}
}

// TestSnapshotRequiresFreshVM: capture after a call is refused (the image
// would not be the post-init state).
func TestSnapshotRequiresFreshVM(t *testing.T) {
	vm, err := New(snapModule(), 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Call("work", I32(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Snapshot(); err == nil {
		t.Fatal("snapshot after a call succeeded; want error")
	}
}

// TestResetAfterTrap: a trapped instance (OOB store) unwinds its call depth
// and recycles back to a clean post-init state.
func TestResetAfterTrap(t *testing.T) {
	cfg := DefaultConfig()
	pool := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 1})
	vm, _, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Call("poke", I32(1<<30), I32(1)); err == nil {
		t.Fatal("OOB poke succeeded; want trap")
	}
	pool.Put(vm)
	st := pool.Stats()
	if st.Recycles != 1 || st.Discards != 0 {
		t.Fatalf("trapped instance not recycled: %+v", st)
	}
	vm2, recycled, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !recycled || vm2 != vm {
		t.Fatalf("expected the recycled trapped instance back (recycled=%v)", recycled)
	}
	if got := AsI32(call1(t, vm2, "peek", I32(64))); got == 0 {
		t.Error("post-init data segment missing after trap recycle")
	}
	pool.Put(vm2)
}

// TestPoolExhaustionBlocks: a bounded pool without ColdFallback parks Get
// until Put frees a slot — it never errors.
func TestPoolExhaustionBlocks(t *testing.T) {
	cfg := DefaultConfig()
	pool := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 1})
	vm, _, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *VM, 1)
	go func() {
		v2, _, err := pool.Get(cfg)
		if err != nil {
			panic(err)
		}
		got <- v2
	}()
	select {
	case <-got:
		t.Fatal("second Get returned while the pool was exhausted")
	case <-time.After(50 * time.Millisecond):
	}
	pool.Put(vm)
	select {
	case v2 := <-got:
		if v2 != vm {
			t.Error("blocked Get did not receive the recycled instance")
		}
		pool.Put(v2)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke after Put")
	}
	st := pool.Stats()
	if st.Live != 1 || st.Idle != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats after block/unblock: %+v", st)
	}
}

// TestPoolColdFallback: past the bound, Get degrades to an untracked cold
// instance instead of blocking, and Put drops it silently.
func TestPoolColdFallback(t *testing.T) {
	cfg := DefaultConfig()
	pool := NewInstancePool(snapModule(), 64, PoolOptions{MaxInstances: 1, ColdFallback: true})
	v1, _, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, recycled, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if recycled {
		t.Error("cold fallback reported recycled")
	}
	// The fallback must still be a fully instantiated, runnable VM with
	// cold-identical virtual state.
	if v2.Cycles() != v1.Cycles() {
		t.Errorf("cold fallback cycles %v != pooled %v", v2.Cycles(), v1.Cycles())
	}
	if _, err := v2.Call("work", I32(10)); err != nil {
		t.Fatal(err)
	}
	pool.Put(v2) // untracked: must be a no-op
	st := pool.Stats()
	if st.ColdFallbacks != 1 || st.Live != 1 || st.Idle != 0 || st.Recycles != 0 {
		t.Errorf("stats after cold fallback: %+v", st)
	}
	pool.Put(v1)
}

// TestPoolEvictsOtherShape: at capacity, an idle instance of a different
// config shape is evicted rather than blocking the checkout.
func TestPoolEvictsOtherShape(t *testing.T) {
	pool := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 1})
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.TierUpThreshold = 99 // different shape, same fusion bucket
	vA, _, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(vA)
	vB, recycled, err := pool.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if recycled {
		t.Error("shape-B checkout claimed recycled")
	}
	if vB.cfg.TierUpThreshold != 99 {
		t.Errorf("evicting checkout got wrong config: %d", vB.cfg.TierUpThreshold)
	}
	st := pool.Stats()
	if st.Evictions != 1 || st.Live != 1 {
		t.Errorf("stats after eviction: %+v", st)
	}
	pool.Put(vB)
}

// TestPoolConcurrent hammers one pool from many goroutines (run under
// -race by make check): every checkout runs the workload and must observe
// the same virtual cycle count; stats must balance at the end.
func TestPoolConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 50
	cfg.AOTThreshold = 50
	pool := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 3})
	const workers = 8
	const iters = 20
	cycles := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				vm, _, err := pool.Get(cfg)
				if err != nil {
					panic(err)
				}
				if _, err := vm.Call("work", I32(300)); err != nil {
					panic(err)
				}
				c := vm.Cycles()
				if cycles[w] == 0 {
					cycles[w] = c
				} else if cycles[w] != c {
					panic(fmt.Sprintf("cycle divergence: %v vs %v", cycles[w], c))
				}
				pool.Put(vm)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if cycles[w] != cycles[0] {
			t.Fatalf("worker %d cycles %v != worker 0 %v", w, cycles[w], cycles[0])
		}
	}
	st := pool.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Errorf("hits %d + misses %d != checkouts %d", st.Hits, st.Misses, workers*iters)
	}
	if st.Live > 3 || st.Idle != st.Live {
		t.Errorf("pool did not settle: %+v", st)
	}
	if st.Recycles != workers*iters {
		t.Errorf("recycles %d != checkouts %d", st.Recycles, workers*iters)
	}
}

// TestPoolFaultedTranslationRecycles: an injected register-translation
// failure on a pooled instance clears the retained body, and the next
// checkout rebuilds it — fault behavior is per run, not sticky.
func TestPoolFaultedTranslationRecycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TierUpThreshold = 50
	cfg.DisableAOTTier = true
	pool := NewInstancePool(snapModule(), 0, PoolOptions{MaxInstances: 1})

	vm, _, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Call("work", I32(400)); err != nil {
		t.Fatal(err)
	}
	if vm.RegTranslated() == 0 {
		t.Fatal("workload never engaged the register tier")
	}
	pool.Put(vm)

	// Second checkout with a translation fault armed: retained body must be
	// discarded, run falls back to the stack tier.
	fcfg := cfg
	fcfg.Faults = faultinject.NewPlan(7, faultinject.Rule{Point: faultinject.WasmRegTranslate, Prob: 1})
	vm2, recycled, err := pool.Get(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !recycled {
		t.Fatal("expected the recycled instance")
	}
	if _, err := vm2.Call("work", I32(400)); err != nil {
		t.Fatal(err)
	}
	if vm2.RegTranslated() != 0 {
		t.Error("faulted run still counts register translations")
	}
	pool.Put(vm2)

	// Third checkout, fault gone: translation replays from scratch.
	vm3, _, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm3.Call("work", I32(400)); err != nil {
		t.Fatal(err)
	}
	if vm3.RegTranslated() == 0 {
		t.Error("post-fault checkout never re-translated")
	}
	pool.Put(vm3)
}
