package codegen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"wasmbench/internal/ir"
)

// JSOptions tunes the Cheerp-style JavaScript emission.
type JSOptions struct {
	ModuleName string
}

// JS compiles an IR program to Cheerp-style JavaScript source: linear
// memory as typed-array views over one ArrayBuffer (grown by reallocation,
// as Cheerp's genericjs does), asm.js-style |0 coercions, Math.imul for
// 32-bit multiplication, Math.fround for f32, and 64-bit integers lowered
// to lo/hi pairs with a helper library — the representation whose
// instruction blow-up the paper quantifies in Appendix D.
func JS(p *ir.Program, opts JSOptions) (string, error) {
	g := &jsGen{p: p}
	g.line("// module %s — generated Cheerp-style JavaScript", opts.ModuleName)
	g.preamble()
	for i, gl := range p.Globals {
		g.emitGlobal(i, gl)
	}
	for _, d := range p.Data {
		g.emitData(d)
	}
	for i, f := range p.Funcs {
		if err := g.genFunc(i, f); err != nil {
			return "", fmt.Errorf("codegen/js: func %s: %w", f.Name, err)
		}
	}
	g.line("var __exit = %s()|0;", g.fname(p.MainFunc))
	return g.out.String(), nil
}

type jsGen struct {
	p      *ir.Program
	out    strings.Builder
	indent int
	tmp    int
	lbl    int
	f      *ir.Func
	// loop label stack: (breakLabel, continueLabel)
	loops []jsLoopLabels
	// current frame pointer variable (set when FrameSize > 0)
	fp string
}

type jsLoopLabels struct {
	brk, cont string
	isSwitch  bool
}

func (g *jsGen) line(format string, args ...interface{}) {
	g.out.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.out, format, args...)
	g.out.WriteByte('\n')
}

func (g *jsGen) fname(i int) string {
	n := g.p.Funcs[i].Name
	if n == "" {
		return fmt.Sprintf("f%d", i)
	}
	return "f_" + sanitizeJS(n)
}

func sanitizeJS(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('$')
		}
	}
	return sb.String()
}

func (g *jsGen) newTmp() string {
	g.tmp++
	return fmt.Sprintf("t%d", g.tmp)
}

func (g *jsGen) newLabel(prefix string) string {
	g.lbl++
	return fmt.Sprintf("%s%d", prefix, g.lbl)
}

// preamble emits the memory model and the i64 helper library.
func (g *jsGen) preamble() {
	initPages := (g.p.StackTop + 65535) / 65536
	maxPages := (g.p.StackTop + g.p.HeapLimit + 65535) / 65536
	g.line("var __memPages = %d, __maxPages = %d;", initPages, maxPages)
	g.line("var buffer = new ArrayBuffer(__memPages * 65536);")
	g.line("var HEAP8, HEAPU8, HEAP16, HEAPU16, HEAP32, HEAPU32, HEAPF32, HEAPF64;")
	g.line("function __views() {")
	g.line("  HEAP8 = new Int8Array(buffer); HEAPU8 = new Uint8Array(buffer);")
	g.line("  HEAP16 = new Int16Array(buffer); HEAPU16 = new Uint16Array(buffer);")
	g.line("  HEAP32 = new Int32Array(buffer); HEAPU32 = new Uint32Array(buffer);")
	g.line("  HEAPF32 = new Float32Array(buffer); HEAPF64 = new Float64Array(buffer);")
	g.line("}")
	g.line("__views();")
	g.line("function __memgrow(p) {")
	g.line("  p = p|0;")
	g.line("  if (p < 0) return -1;")
	g.line("  if (__memPages + p > __maxPages) return -1;")
	g.line("  var old = __memPages;")
	g.line("  __memPages = __memPages + p;")
	g.line("  var nb = new ArrayBuffer(__memPages * 65536);")
	g.line("  new Uint8Array(nb).set(HEAPU8);")
	g.line("  buffer = nb; __views();")
	g.line("  return old;")
	g.line("}")
	g.line("function __data(a, bytes) { for (var i = 0; i < bytes.length; i++) HEAPU8[a + i] = bytes[i]; }")
	g.line("function print_cstr(p) {")
	g.line("  var s = '';")
	g.line("  p = p|0;")
	g.line("  while (HEAPU8[p]|0) { s = s + String.fromCharCode(HEAPU8[p]|0); p = (p + 1)|0; }")
	g.line("  print_s(s);")
	g.line("}")
	g.line("function __trap() { throw 'trap'; }")
	// i64 helper library: results in __hl/__hh (and remainders in __rl/__rh).
	g.line("var __hl = 0, __hh = 0, __rl = 0, __rh = 0, __rethi = 0;")
	g.line("function __i64add(al, ah, bl, bh) {")
	g.line("  var l = (al>>>0) + (bl>>>0);")
	g.line("  __hl = l|0; __hh = (ah + bh + (l > 4294967295 ? 1 : 0))|0;")
	g.line("}")
	g.line("function __i64sub(al, ah, bl, bh) {")
	g.line("  var l = (al>>>0) - (bl>>>0);")
	g.line("  __hl = l|0; __hh = (ah - bh - (l < 0 ? 1 : 0))|0;")
	g.line("}")
	g.line("function __i64mul(al, ah, bl, bh) {")
	g.line("  var a00 = al & 0xFFFF, a16 = al >>> 16, a32 = ah & 0xFFFF, a48 = ah >>> 16;")
	g.line("  var b00 = bl & 0xFFFF, b16 = bl >>> 16, b32 = bh & 0xFFFF, b48 = bh >>> 16;")
	g.line("  var c00 = 0, c16 = 0, c32 = 0, c48 = 0;")
	g.line("  c00 = c00 + a00 * b00; c16 = c16 + (c00 >>> 16); c00 = c00 & 0xFFFF;")
	g.line("  c16 = c16 + a16 * b00; c32 = c32 + (c16 >>> 16); c16 = c16 & 0xFFFF;")
	g.line("  c16 = c16 + a00 * b16; c32 = c32 + (c16 >>> 16); c16 = c16 & 0xFFFF;")
	g.line("  c32 = c32 + a32 * b00; c48 = c48 + (c32 >>> 16); c32 = c32 & 0xFFFF;")
	g.line("  c32 = c32 + a16 * b16; c48 = c48 + (c32 >>> 16); c32 = c32 & 0xFFFF;")
	g.line("  c32 = c32 + a00 * b32; c48 = c48 + (c32 >>> 16); c32 = c32 & 0xFFFF;")
	g.line("  c48 = (c48 + a48 * b00 + a32 * b16 + a16 * b32 + a00 * b48) & 0xFFFF;")
	g.line("  __hl = ((c16 << 16) | c00)|0; __hh = ((c48 << 16) | c32)|0;")
	g.line("}")
	g.line("function __i64geu(al, ah, bl, bh) {")
	g.line("  if ((ah>>>0) > (bh>>>0)) return 1;")
	g.line("  if ((ah>>>0) < (bh>>>0)) return 0;")
	g.line("  return (al>>>0) >= (bl>>>0) ? 1 : 0;")
	g.line("}")
	g.line("function __i64divu(al, ah, bl, bh) {")
	g.line("  if ((bl|0) == 0 && (bh|0) == 0) __trap();")
	g.line("  var ql = 0, qh = 0, rl = 0, rh = 0, i = 0, bit = 0;")
	g.line("  for (i = 63; i >= 0; i--) {")
	g.line("    rh = ((rh << 1) | (rl >>> 31))|0; rl = (rl << 1)|0;")
	g.line("    bit = i >= 32 ? (ah >>> (i - 32)) & 1 : (al >>> i) & 1;")
	g.line("    rl = (rl | bit)|0;")
	g.line("    if (__i64geu(rl, rh, bl, bh)) {")
	g.line("      __i64sub(rl, rh, bl, bh); rl = __hl; rh = __hh;")
	g.line("      if (i >= 32) qh = (qh | (1 << (i - 32)))|0; else ql = (ql | (1 << i))|0;")
	g.line("    }")
	g.line("  }")
	g.line("  __hl = ql; __hh = qh; __rl = rl; __rh = rh;")
	g.line("}")
	g.line("function __i64neg(al, ah) {")
	g.line("  var l = ((al ^ -1) >>> 0) + 1;")
	g.line("  __hl = l|0; __hh = ((ah ^ -1) + (l > 4294967295 ? 1 : 0))|0;")
	g.line("}")
	g.line("function __i64divs(al, ah, bl, bh) {")
	g.line("  var neg = 0;")
	g.line("  if ((ah|0) < 0) { __i64neg(al, ah); al = __hl; ah = __hh; neg = neg ^ 1; }")
	g.line("  if ((bh|0) < 0) { __i64neg(bl, bh); bl = __hl; bh = __hh; neg = neg ^ 1; }")
	g.line("  __i64divu(al, ah, bl, bh);")
	g.line("  if (neg) { var rl0 = __rl, rh0 = __rh; __i64neg(__hl, __hh); __rl = rl0; __rh = rh0; }")
	g.line("}")
	g.line("function __i64rems(al, ah, bl, bh) {")
	g.line("  var neg = (ah|0) < 0;")
	g.line("  if (neg) { __i64neg(al, ah); al = __hl; ah = __hh; }")
	g.line("  if ((bh|0) < 0) { __i64neg(bl, bh); bl = __hl; bh = __hh; }")
	g.line("  __i64divu(al, ah, bl, bh);")
	g.line("  __hl = __rl; __hh = __rh;")
	g.line("  if (neg) __i64neg(__hl, __hh);")
	g.line("}")
	g.line("function __i64shl(al, ah, n) {")
	g.line("  n = n & 63;")
	g.line("  if (n == 0) { __hl = al|0; __hh = ah|0; }")
	g.line("  else if (n < 32) { __hl = (al << n)|0; __hh = ((ah << n) | (al >>> (32 - n)))|0; }")
	g.line("  else { __hl = 0; __hh = (al << (n - 32))|0; }")
	g.line("}")
	g.line("function __i64shru(al, ah, n) {")
	g.line("  n = n & 63;")
	g.line("  if (n == 0) { __hl = al|0; __hh = ah|0; }")
	g.line("  else if (n < 32) { __hl = ((al >>> n) | (ah << (32 - n)))|0; __hh = (ah >>> n)|0; }")
	g.line("  else { __hl = (ah >>> (n - 32))|0; __hh = 0; }")
	g.line("}")
	g.line("function __i64shrs(al, ah, n) {")
	g.line("  n = n & 63;")
	g.line("  if (n == 0) { __hl = al|0; __hh = ah|0; }")
	g.line("  else if (n < 32) { __hl = ((al >>> n) | (ah << (32 - n)))|0; __hh = (ah >> n)|0; }")
	g.line("  else { __hl = (ah >> (n - 32))|0; __hh = (ah >> 31)|0; }")
	g.line("}")
	g.line("function __i64tof(al, ah) { return (ah|0) * 4294967296 + (al>>>0); }")
	g.line("function __i64toufu(al, ah) { return (ah>>>0) * 4294967296 + (al>>>0); }")
	g.line("function __ftoi64(x) {")
	g.line("  var t = x < 0 ? Math.ceil(x) : Math.floor(x);")
	g.line("  var lo = t %% 4294967296;")
	g.line("  if (lo < 0) lo = lo + 4294967296;")
	g.line("  __hl = lo|0; __hh = ((t - lo) / 4294967296)|0;")
	g.line("}")
}

func (g *jsGen) gname(i int) string {
	n := g.p.Globals[i].Name
	if n == "" {
		return fmt.Sprintf("g%d", i)
	}
	return "g_" + sanitizeJS(n)
}

func (g *jsGen) emitGlobal(i int, gl *ir.Global) {
	switch gl.Type {
	case ir.I64:
		g.line("var %sl = %d, %sh = %d;", g.gname(i), int32(gl.Init), g.gname(i), int32(gl.Init>>32))
	case ir.F32:
		g.line("var %s = %s;", g.gname(i), jsFloat(float64(math.Float32frombits(uint32(gl.Init)))))
	case ir.F64:
		g.line("var %s = %s;", g.gname(i), jsFloat(math.Float64frombits(uint64(gl.Init))))
	default:
		g.line("var %s = %d;", g.gname(i), int32(gl.Init))
	}
}

func jsFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Ensure the literal parses as a number (avoid bare exponents).
	return s
}

func (g *jsGen) emitData(d ir.DataSeg) {
	var sb strings.Builder
	for i, b := range d.Bytes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(b)))
	}
	g.line("__data(%d, [%s]);", d.Addr, sb.String())
}

// localName returns the JS variable for an I32/F32/F64 local; i64 locals
// use the pair names localName+"l"/"h".
func localName(i int) string { return "l" + strconv.Itoa(i) }

func (g *jsGen) genFunc(idx int, f *ir.Func) error {
	g.f = f
	g.loops = nil
	g.fp = ""

	var params []string
	for i, pt := range f.Params {
		if pt == ir.I64 {
			params = append(params, localName(i)+"l", localName(i)+"h")
		} else {
			params = append(params, localName(i))
		}
	}
	g.line("function %s(%s) {", g.fname(idx), strings.Join(params, ", "))
	g.indent++

	// Parameter coercions (asm.js style).
	for i, pt := range f.Params {
		switch pt {
		case ir.I32:
			g.line("%s = %s|0;", localName(i), localName(i))
		case ir.I64:
			g.line("%sl = %sl|0; %sh = %sh|0;", localName(i), localName(i), localName(i), localName(i))
		case ir.F32, ir.F64:
			g.line("%s = +%s;", localName(i), localName(i))
		}
	}
	// Non-parameter locals.
	for i := len(f.Params); i < len(f.Locals); i++ {
		switch f.Locals[i] {
		case ir.I64:
			g.line("var %sl = 0, %sh = 0;", localName(i), localName(i))
		case ir.F32, ir.F64:
			g.line("var %s = 0.0;", localName(i))
		default:
			g.line("var %s = 0;", localName(i))
		}
	}

	if f.FrameSize > 0 {
		g.fp = "sp"
		spg := g.gname(g.p.SPGlobal)
		g.line("var sp = 0;")
		g.line("sp = (%s - %d)|0; %s = sp;", spg, f.FrameSize, spg)
		g.line("try {")
		g.indent++
	}

	if err := g.stmts(f.Body); err != nil {
		return err
	}

	if f.FrameSize > 0 {
		g.indent--
		spg := g.gname(g.p.SPGlobal)
		g.line("} finally { %s = (sp + %d)|0; }", spg, f.FrameSize)
	}
	g.indent--
	g.line("}")
	return nil
}

func (g *jsGen) stmts(body []ir.Stmt) error {
	for _, s := range body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *jsGen) stmt(s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.SetLocal:
		t := g.f.Locals[st.Local]
		if t == ir.I64 {
			lo, hi, err := g.expr64(st.X)
			if err != nil {
				return err
			}
			g.line("%sl = %s; %sh = %s;", localName(st.Local), lo, localName(st.Local), hi)
			return nil
		}
		v, err := g.expr(st.X)
		if err != nil {
			return err
		}
		g.line("%s = %s;", localName(st.Local), v)
	case *ir.SetGlobal:
		if g.p.Globals[st.Global].Type == ir.I64 {
			lo, hi, err := g.expr64(st.X)
			if err != nil {
				return err
			}
			g.line("%sl = %s; %sh = %s;", g.gname(st.Global), lo, g.gname(st.Global), hi)
			return nil
		}
		v, err := g.expr(st.X)
		if err != nil {
			return err
		}
		g.line("%s = %s;", g.gname(st.Global), v)
	case *ir.Store:
		return g.store(st)
	case *ir.EvalStmt:
		if st.X.ResultType() == ir.I64 {
			_, _, err := g.expr64(st.X)
			return err
		}
		v, err := g.expr(st.X)
		if err != nil {
			return err
		}
		g.line("%s;", v)
	case *ir.If:
		c, err := g.expr(st.Cond)
		if err != nil {
			return err
		}
		g.line("if (%s) {", c)
		g.indent++
		if err := g.stmts(st.Then); err != nil {
			return err
		}
		g.indent--
		if len(st.Else) > 0 {
			g.line("} else {")
			g.indent++
			if err := g.stmts(st.Else); err != nil {
				return err
			}
			g.indent--
		}
		g.line("}")
	case *ir.Loop:
		return g.loop(st)
	case *ir.Break:
		for i := len(g.loops) - 1; i >= 0; i-- {
			if g.loops[i].isSwitch {
				g.line("break;")
				return nil
			}
			g.line("break %s;", g.loops[i].brk)
			return nil
		}
		return fmt.Errorf("break outside loop")
	case *ir.Continue:
		for i := len(g.loops) - 1; i >= 0; i-- {
			if !g.loops[i].isSwitch {
				g.line("break %s;", g.loops[i].cont)
				return nil
			}
		}
		return fmt.Errorf("continue outside loop")
	case *ir.Return:
		if st.X == nil {
			g.line("return;")
			return nil
		}
		if st.X.ResultType() == ir.I64 {
			lo, hi, err := g.expr64(st.X)
			if err != nil {
				return err
			}
			g.line("__rethi = %s;", hi)
			g.line("return %s;", lo)
			return nil
		}
		v, err := g.expr(st.X)
		if err != nil {
			return err
		}
		g.line("return %s;", v)
	case *ir.Switch:
		tag, err := g.expr(st.Tag)
		if err != nil {
			return err
		}
		g.line("switch (%s|0) {", tag)
		g.indent++
		g.loops = append(g.loops, jsLoopLabels{isSwitch: true})
		for _, cs := range st.Cases {
			for _, v := range cs.Vals {
				g.line("case %d:", int32(v))
			}
			g.line("{")
			g.indent++
			if err := g.stmts(cs.Body); err != nil {
				return err
			}
			g.indent--
			g.line("}")
			g.line("break;")
		}
		g.line("default: {")
		g.indent++
		if err := g.stmts(st.Default); err != nil {
			return err
		}
		g.indent--
		g.line("}")
		g.loops = g.loops[:len(g.loops)-1]
		g.indent--
		g.line("}")
	case *ir.VecSection:
		// JavaScript likewise has no SIMD here: scalar shadow lanes.
		return g.stmts(st.Body)
	default:
		return fmt.Errorf("unhandled statement %T", s)
	}
	return nil
}

func (g *jsGen) loop(st *ir.Loop) error {
	brk := g.newLabel("L")
	cont := g.newLabel("C")
	needCont := ir.ContainsContinue(st.Body)
	g.line("%s: while (1) {", brk)
	g.indent++
	if !st.PostTest && st.Cond != nil {
		c, err := g.expr(st.Cond)
		if err != nil {
			return err
		}
		g.line("if (!(%s)) break %s;", c, brk)
	}
	if needCont {
		g.line("%s: {", cont)
		g.indent++
	}
	g.loops = append(g.loops, jsLoopLabels{brk: brk, cont: cont})
	err := g.stmts(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	if needCont {
		g.indent--
		g.line("}")
	}
	if err := g.stmts(st.Post); err != nil {
		return err
	}
	if st.PostTest {
		if st.Cond != nil {
			c, err := g.expr(st.Cond)
			if err != nil {
				return err
			}
			g.line("if (!(%s)) break %s;", c, brk)
		}
	}
	g.indent--
	g.line("}")
	return nil
}

func (g *jsGen) store(st *ir.Store) error {
	addr, err := g.expr(st.Addr)
	if err != nil {
		return err
	}
	if st.Mem == ir.MemI64 {
		lo, hi, err := g.expr64(st.X)
		if err != nil {
			return err
		}
		a := g.captureI32(addr)
		g.line("HEAP32[%s >> 2] = %s; HEAP32[(%s + 4) >> 2] = %s;", a, lo, a, hi)
		return nil
	}
	v, err := g.expr(st.X)
	if err != nil {
		return err
	}
	view, shift := jsView(st.Mem)
	if shift == 0 {
		g.line("%s[%s] = %s;", view, g.wrapAddr(addr), v)
	} else {
		g.line("%s[(%s) >> %d] = %s;", view, addr, shift, v)
	}
	return nil
}

// captureI32 ensures an address expression is evaluated once.
func (g *jsGen) captureI32(expr string) string {
	if isSimpleJS(expr) {
		return expr
	}
	t := g.newTmp()
	g.line("var %s = (%s)|0;", t, expr)
	return t
}

func isSimpleJS(s string) bool {
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return false
		}
	}
	return s != ""
}

func (g *jsGen) wrapAddr(addr string) string {
	if isSimpleJS(addr) {
		return addr
	}
	return "(" + addr + ")|0"
}

func jsView(m ir.MemType) (string, int) {
	switch m {
	case ir.MemI8S:
		return "HEAP8", 0
	case ir.MemI8U:
		return "HEAPU8", 0
	case ir.MemI16S:
		return "HEAP16", 1
	case ir.MemI16U:
		return "HEAPU16", 1
	case ir.MemI32:
		return "HEAP32", 2
	case ir.MemF32:
		return "HEAPF32", 2
	case ir.MemF64:
		return "HEAPF64", 3
	}
	return "HEAP32", 2
}
