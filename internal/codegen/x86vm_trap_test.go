package codegen_test

// x86vm error-path coverage, mirroring the wasmvm fusion/tier trap tests
// (wasmvm/fuse_test.go) and the jsvm step/depth-limit tests
// (jsvm/jsvm_test.go): every trap class the native backend models must
// surface as its sentinel error, not as a wrong result or a panic.

import (
	"errors"
	"testing"

	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/wasmvm"
)

func runX86Src(t *testing.T, src string, cfg codegen.X86Config) (*compiler.Result, error) {
	t.Helper()
	art, err := compiler.Compile(src, compiler.Options{
		Opt: ir.O0, ModuleName: "trap",
		Targets: []compiler.Target{compiler.TargetX86},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return compiler.RunX86(art, cfg)
}

func TestX86TrapDivByZero(t *testing.T) {
	for _, c := range []struct {
		name string
		src  string
	}{
		{"i32-div", "int main() { int a = 7; int b = 0; return a / b; }"},
		{"i32-rem", "int main() { int a = 7; int b = 0; return a % b; }"},
		{"i64-div", "int main() { long a = 7; long b = 0; return (int)(a / b); }"},
		{"i64-rem", "int main() { long a = 7; long b = 0; return (int)(a % b); }"},
		{"u32-div", "int main() { unsigned a = 7; unsigned b = 0; return (int)(a / b); }"},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := runX86Src(t, c.src, codegen.DefaultX86Config())
			if !errors.Is(err, codegen.ErrX86DivZero) {
				t.Fatalf("want ErrX86DivZero, got %v", err)
			}
		})
	}
}

func TestX86TrapDivOverflow(t *testing.T) {
	// INT_MIN / -1 overflows two's complement: a trap on Wasm and on this
	// model, not a silent wraparound.
	for _, c := range []struct {
		name string
		src  string
	}{
		{"i32", `int main() {
			int a = (-2147483647) - 1;
			int b = -1;
			return a / b;
		}`},
		{"i64", `int main() {
			long a = (-9223372036854775807) - 1;
			long b = -1;
			return (int)(a / b);
		}`},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := runX86Src(t, c.src, codegen.DefaultX86Config())
			if !errors.Is(err, codegen.ErrX86Trap) {
				t.Fatalf("want ErrX86Trap, got %v", err)
			}
		})
	}
}

func TestX86TrapOOB(t *testing.T) {
	src := `
int AI[4];
int main() {
	int i = 1 << 27;
	return AI[i];
}`
	_, err := runX86Src(t, src, codegen.DefaultX86Config())
	if !errors.Is(err, codegen.ErrX86OOB) {
		t.Fatalf("want ErrX86OOB, got %v", err)
	}
}

func TestX86TrapStepLimit(t *testing.T) {
	src := `
int main() {
	int i = 0;
	while (1) { i += 1; }
	return i;
}`
	cfg := codegen.DefaultX86Config()
	cfg.StepLimit = 10000
	_, err := runX86Src(t, src, cfg)
	if !errors.Is(err, codegen.ErrX86StepLimit) {
		t.Fatalf("want ErrX86StepLimit, got %v", err)
	}
}

func TestX86TrapCallDepth(t *testing.T) {
	src := `
int down(int x) { return down(x + 1); }
int main() { return down(0); }`
	cfg := codegen.DefaultX86Config()
	cfg.DepthLimit = 100
	_, err := runX86Src(t, src, cfg)
	if !errors.Is(err, codegen.ErrX86Depth) {
		t.Fatalf("want ErrX86Depth, got %v", err)
	}
}

func TestX86TrapBuiltinTrap(t *testing.T) {
	src := `
int main() {
	__builtin_trap();
	return 0;
}`
	_, err := runX86Src(t, src, codegen.DefaultX86Config())
	if !errors.Is(err, codegen.ErrX86Trap) {
		t.Fatalf("want ErrX86Trap, got %v", err)
	}
}

func TestX86TrapFloatTrunc(t *testing.T) {
	// (int) of a non-finite or out-of-range double is a conversion trap
	// (Wasm i32.trunc_f64_s semantics), matching the wasm backend.
	for _, c := range []struct {
		name string
		src  string
	}{
		{"inf", `int main() {
			double z = 0.0;
			double inf = 1.0 / z;
			return (int)inf;
		}`},
		{"nan", `int main() {
			double z = 0.0;
			double nan = z / z;
			return (int)nan;
		}`},
		{"huge", `int main() {
			double big = 1e300;
			return (int)big;
		}`},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := runX86Src(t, c.src, codegen.DefaultX86Config())
			if !errors.Is(err, codegen.ErrX86Trap) {
				t.Fatalf("want ErrX86Trap, got %v", err)
			}
		})
	}
}

// TestX86TrapsMatchWasm cross-checks the trap *classes* differentially:
// a program that traps on x86 must also trap on the wasm backend (and vice
// versa, exercised by difftest's generated trap-free programs never
// tripping either).
func TestX86TrapsMatchWasm(t *testing.T) {
	srcs := map[string]string{
		"divzero": "int main() { int a = 7; int b = 0; return a / b; }",
		"oob":     "int AI[4];\nint main() { int i = 1 << 27; return AI[i]; }",
		"trunc":   "int main() { double z = 0.0; return (int)(1.0 / z); }",
		"builtin": "int main() { __builtin_trap(); return 0; }",
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			art, err := compiler.Compile(src, compiler.Options{Opt: ir.O0, ModuleName: "trap"})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			_, xerr := compiler.RunX86(art, codegen.DefaultX86Config())
			if xerr == nil {
				t.Fatal("x86 did not trap")
			}
			_, werr := compiler.RunWasm(art, wasmvm.DefaultConfig())
			if werr == nil {
				t.Fatal("wasm did not trap")
			}
		})
	}
}
