package codegen

import (
	"fmt"

	"wasmbench/internal/ir"
)

// The x86-like target: three-address register bytecode with unlimited
// virtual registers, executed by X86VM. It stands in for the paper's native
// baseline (Fig. 6): optimizations tuned for register machines (unrolling,
// SIMD vectorization, constant rematerialization) pay off here, which is
// exactly the asymmetry the study measures.

// X86Kind discriminates x86 bytecode instructions.
type X86Kind uint8

// Instruction kinds.
const (
	XConst X86Kind = iota
	XMov
	XBin
	XUn
	XConv
	XLoad
	XStore
	XJmp
	XJz  // jump if A == 0
	XJnz // jump if A != 0
	XJmpTable
	XCall
	XCallHost
	XRet
	XFrameAddr // Dst = sp + Imm
	XSPAdd     // sp += Imm (prologue/epilogue)
)

// X86Instr is one three-address instruction.
type X86Instr struct {
	Kind     X86Kind
	Dst      int32
	A, B     int32
	Imm      int64
	T        ir.Type
	BinOp    ir.BinOp
	UnOp     ir.UnOp
	Unsigned bool
	Narrow   uint8
	NSigned  bool
	Mem      ir.MemType
	Target   int32
	Table    []int32
	Args     []int32
	Host     string
	// Vec marks instructions absorbed by SIMD lanes (lane-carrier traffic
	// and lane >0 copies of vectorized loops): near-zero cost.
	Vec bool
}

// X86Func is a compiled function.
type X86Func struct {
	Name    string
	NParams int
	NRegs   int
	Frame   uint32
	Ret     ir.Type
	Code    []X86Instr
}

// X86Program is the x86-like compilation of an IR program.
type X86Program struct {
	Funcs     []*X86Func
	Globals   []uint64 // initial values
	Data      []ir.DataSeg
	SP        int // global index of the stack pointer
	StackTop  uint32
	HeapLimit uint32
	MainFunc  int
}

// EncodedSize estimates the native code size in bytes (the paper's code
// size metric for Fig. 6): a base opcode + modrm cost per instruction plus
// immediate bytes.
func (p *X86Program) EncodedSize() int {
	sz := 0
	for _, f := range p.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if in.Vec {
				// The extra lane of a SIMD instruction: no separate encoding.
				sz++
				continue
			}
			sz += 3
			if in.Kind == XConst || in.Imm != 0 {
				if in.Imm >= -128 && in.Imm < 128 {
					sz++
				} else if in.Imm >= -(1<<31) && in.Imm < 1<<31 {
					sz += 4
				} else {
					sz += 8
				}
			}
			sz += len(in.Table) * 4
			sz += len(in.Args)
		}
	}
	return sz
}

// StaticInstrCount reports the total static instruction count.
func (p *X86Program) StaticInstrCount() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

// X86 compiles the IR program to x86-like bytecode.
func X86(p *ir.Program) (*X86Program, error) {
	xp := &X86Program{
		SP:        p.SPGlobal,
		StackTop:  p.StackTop,
		HeapLimit: p.HeapLimit,
		MainFunc:  p.MainFunc,
		Data:      p.Data,
	}
	for _, g := range p.Globals {
		v := uint64(g.Init)
		if g.Type == ir.I32 {
			v = uint64(uint32(int32(g.Init)))
		}
		xp.Globals = append(xp.Globals, v)
	}
	for _, f := range p.Funcs {
		xf, err := genX86Func(p, f)
		if err != nil {
			return nil, fmt.Errorf("codegen/x86: func %s: %w", f.Name, err)
		}
		xp.Funcs = append(xp.Funcs, xf)
	}
	return xp, nil
}

type x86Gen struct {
	p   *ir.Program
	f   *ir.Func
	out *X86Func
	// break/continue patch lists per open loop or switch
	brks  [][]int
	conts [][]int
	rets  []int // pcs of placeholder jumps to the epilogue
	inVec bool  // inside a vectorized (unrolled) loop body
	// vecAll marks SIMD shadow lanes: every emitted instruction is absorbed.
	vecAll bool
}

func genX86Func(p *ir.Program, f *ir.Func) (*X86Func, error) {
	g := &x86Gen{p: p, f: f, out: &X86Func{
		Name:    f.Name,
		NParams: len(f.Params),
		NRegs:   len(f.Locals),
		Frame:   f.FrameSize,
		Ret:     f.Ret,
	}}
	if f.FrameSize > 0 {
		g.emit(X86Instr{Kind: XSPAdd, Imm: -int64(f.FrameSize)})
	}
	if err := g.stmts(f.Body); err != nil {
		return nil, err
	}
	// Epilogue target.
	epi := int32(len(g.out.Code))
	for _, pc := range g.rets {
		g.out.Code[pc].Target = epi
	}
	if f.FrameSize > 0 {
		g.emit(X86Instr{Kind: XSPAdd, Imm: int64(f.FrameSize)})
	}
	g.emit(X86Instr{Kind: XRet, A: retReg(f)})
	return g.out, nil
}

// Return-value convention: the value is moved into register 0's slot? No —
// XRet.A names the register holding the value; void functions use -1. The
// body leaves the value in the register named by the Return lowering, which
// stores into a dedicated result register allocated up front.
func retReg(f *ir.Func) int32 {
	if f.Ret == ir.Void {
		return -1
	}
	return resultReg
}

func (g *x86Gen) emit(in X86Instr) int {
	if g.vecAll {
		in.Vec = true
	} else if g.inVec {
		in.Vec = in.Vec || g.isVecAbsorbed(&in)
	}
	g.out.Code = append(g.out.Code, in)
	return len(g.out.Code) - 1
}

// isVecAbsorbed reports whether an instruction inside a vectorized loop is
// absorbed by SIMD execution: lane-carrier register traffic.
func (g *x86Gen) isVecAbsorbed(in *X86Instr) bool {
	vl := g.f.VecLocals
	if vl == nil {
		return false
	}
	switch in.Kind {
	case XMov:
		return vl[int(in.A)] || vl[int(in.Dst)]
	case XBin, XUn, XConv:
		return vl[int(in.Dst)]
	}
	return false
}

func (g *x86Gen) newReg() int32 {
	g.out.NRegs++
	return int32(g.out.NRegs - 1)
}

func (g *x86Gen) stmts(body []ir.Stmt) error {
	for _, s := range body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *x86Gen) stmt(s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.SetLocal:
		r, err := g.expr(st.X)
		if err != nil {
			return err
		}
		if g.f.VecLocals != nil && g.f.VecLocals[st.Local] {
			g.emit(X86Instr{Kind: XMov, Dst: int32(st.Local), A: r, T: st.X.ResultType(), Vec: true})
		} else {
			g.emit(X86Instr{Kind: XMov, Dst: int32(st.Local), A: r, T: st.X.ResultType()})
		}
	case *ir.SetGlobal:
		r, err := g.expr(st.X)
		if err != nil {
			return err
		}
		// Globals are modeled as memory-mapped registers: XStore with
		// Mem=MemI64 into the global array via a dedicated kind; reuse
		// XMov with Dst = -(global+2) encoding.
		g.emit(X86Instr{Kind: XMov, Dst: globalReg(st.Global), A: r})
	case *ir.Store:
		addr, err := g.expr(st.Addr)
		if err != nil {
			return err
		}
		val, err := g.expr(st.X)
		if err != nil {
			return err
		}
		g.emit(X86Instr{Kind: XStore, A: addr, B: val, Mem: st.Mem})
	case *ir.EvalStmt:
		_, err := g.expr(st.X)
		return err
	case *ir.If:
		c, err := g.expr(st.Cond)
		if err != nil {
			return err
		}
		jz := g.emit(X86Instr{Kind: XJz, A: c})
		if err := g.stmts(st.Then); err != nil {
			return err
		}
		if len(st.Else) > 0 {
			jend := g.emit(X86Instr{Kind: XJmp})
			g.out.Code[jz].Target = int32(len(g.out.Code))
			if err := g.stmts(st.Else); err != nil {
				return err
			}
			g.out.Code[jend].Target = int32(len(g.out.Code))
		} else {
			g.out.Code[jz].Target = int32(len(g.out.Code))
		}
	case *ir.Loop:
		return g.loop(st)
	case *ir.Break:
		pc := g.emit(X86Instr{Kind: XJmp})
		g.brks[len(g.brks)-1] = append(g.brks[len(g.brks)-1], pc)
	case *ir.Continue:
		pc := g.emit(X86Instr{Kind: XJmp})
		g.conts[len(g.conts)-1] = append(g.conts[len(g.conts)-1], pc)
	case *ir.Return:
		if st.X != nil {
			r, err := g.expr(st.X)
			if err != nil {
				return err
			}
			g.emit(X86Instr{Kind: XMov, Dst: resultReg, A: r})
		}
		pc := g.emit(X86Instr{Kind: XJmp})
		g.rets = append(g.rets, pc)
	case *ir.Switch:
		return g.switchStmt(st)
	case *ir.VecSection:
		// SIMD shadow lanes: the section executes at vector-lane cost.
		wasAll := g.vecAll
		g.vecAll = true
		err := g.stmts(st.Body)
		g.vecAll = wasAll
		return err
	default:
		return fmt.Errorf("unhandled statement %T", s)
	}
	return nil
}

// resultReg is a virtual register reserved for return values; the VM maps
// it to a per-frame slot.
const resultReg = -1000

// globalReg encodes global index i as a negative register id.
func globalReg(i int) int32 { return -2 - int32(i) }

func (g *x86Gen) loop(st *ir.Loop) error {
	wasVec := g.inVec
	if st.Unrolled {
		g.inVec = true
	}
	defer func() { g.inVec = wasVec }()

	g.brks = append(g.brks, nil)
	g.conts = append(g.conts, nil)

	start := int32(len(g.out.Code))
	var exitJumps []int
	if !st.PostTest && st.Cond != nil {
		c, err := g.expr(st.Cond)
		if err != nil {
			return err
		}
		exitJumps = append(exitJumps, g.emit(X86Instr{Kind: XJz, A: c}))
	}
	if err := g.stmts(st.Body); err != nil {
		return err
	}
	contTarget := int32(len(g.out.Code))
	if err := g.stmts(st.Post); err != nil {
		return err
	}
	if st.PostTest {
		if st.Cond != nil {
			c, err := g.expr(st.Cond)
			if err != nil {
				return err
			}
			g.emit(X86Instr{Kind: XJnz, A: c, Target: start})
		} else {
			g.emit(X86Instr{Kind: XJmp, Target: start})
		}
	} else {
		g.emit(X86Instr{Kind: XJmp, Target: start})
	}
	exit := int32(len(g.out.Code))
	for _, pc := range exitJumps {
		g.out.Code[pc].Target = exit
	}
	for _, pc := range g.brks[len(g.brks)-1] {
		g.out.Code[pc].Target = exit
	}
	for _, pc := range g.conts[len(g.conts)-1] {
		g.out.Code[pc].Target = contTarget
	}
	g.brks = g.brks[:len(g.brks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	return nil
}

func (g *x86Gen) switchStmt(st *ir.Switch) error {
	tag, err := g.expr(st.Tag)
	if err != nil {
		return err
	}
	g.brks = append(g.brks, nil)

	var minV, maxV int64
	n := 0
	for _, cs := range st.Cases {
		for _, v := range cs.Vals {
			if n == 0 || v < minV {
				minV = v
			}
			if n == 0 || v > maxV {
				maxV = v
			}
			n++
		}
	}
	dense := n > 0 && maxV-minV < 128 && int64(n)*3 >= maxV-minV

	var caseJumpSites [][]int // per case, sites to patch
	var defaultSites []int

	if dense {
		// idx = tag - min; bounds-check then table jump.
		idx := tag
		if minV != 0 {
			c := g.newReg()
			g.emit(X86Instr{Kind: XConst, Dst: c, Imm: minV, T: ir.I32})
			idx = g.newReg()
			g.emit(X86Instr{Kind: XBin, Dst: idx, A: tag, B: c, BinOp: ir.OpSub, T: ir.I32})
		}
		span := int(maxV - minV + 1)
		jt := g.emit(X86Instr{Kind: XJmpTable, A: idx, Table: make([]int32, span)})
		defaultSites = append(defaultSites, jt) // Target = default
		caseJumpSites = make([][]int, len(st.Cases))
		// Emit bodies; patch table entries.
		var endJumps []int
		for ci, cs := range st.Cases {
			at := int32(len(g.out.Code))
			for _, v := range cs.Vals {
				g.out.Code[jt].Table[v-minV] = at
			}
			if err := g.stmts(cs.Body); err != nil {
				return err
			}
			endJumps = append(endJumps, g.emit(X86Instr{Kind: XJmp}))
			_ = ci
		}
		// Unfilled table entries go to default.
		defStart := int32(len(g.out.Code))
		for j := range g.out.Code[jt].Table {
			if g.out.Code[jt].Table[j] == 0 {
				covered := false
				for _, cs := range st.Cases {
					for _, v := range cs.Vals {
						if int(v-minV) == j {
							covered = true
						}
					}
				}
				if !covered {
					g.out.Code[jt].Table[j] = defStart
				}
			}
		}
		g.out.Code[jt].Target = defStart
		if err := g.stmts(st.Default); err != nil {
			return err
		}
		end := int32(len(g.out.Code))
		for _, pc := range endJumps {
			g.out.Code[pc].Target = end
		}
	} else {
		// Compare chain.
		var bodyJumps []int // to patch with each case body start
		caseJumpSites = make([][]int, len(st.Cases))
		for ci, cs := range st.Cases {
			for _, v := range cs.Vals {
				c := g.newReg()
				g.emit(X86Instr{Kind: XConst, Dst: c, Imm: v, T: ir.I32})
				cmp := g.newReg()
				g.emit(X86Instr{Kind: XBin, Dst: cmp, A: tag, B: c, BinOp: ir.OpEq, T: ir.I32})
				pc := g.emit(X86Instr{Kind: XJnz, A: cmp})
				caseJumpSites[ci] = append(caseJumpSites[ci], pc)
			}
		}
		jdef := g.emit(X86Instr{Kind: XJmp})
		var endJumps []int
		for ci, cs := range st.Cases {
			at := int32(len(g.out.Code))
			for _, pc := range caseJumpSites[ci] {
				g.out.Code[pc].Target = at
			}
			if err := g.stmts(cs.Body); err != nil {
				return err
			}
			endJumps = append(endJumps, g.emit(X86Instr{Kind: XJmp}))
		}
		g.out.Code[jdef].Target = int32(len(g.out.Code))
		if err := g.stmts(st.Default); err != nil {
			return err
		}
		end := int32(len(g.out.Code))
		for _, pc := range endJumps {
			g.out.Code[pc].Target = end
		}
		bodyJumps = nil
		_ = bodyJumps
	}
	// Breaks inside the switch.
	end := int32(len(g.out.Code))
	for _, pc := range g.brks[len(g.brks)-1] {
		g.out.Code[pc].Target = end
	}
	g.brks = g.brks[:len(g.brks)-1]
	_ = defaultSites
	return nil
}

func (g *x86Gen) expr(e ir.Expr) (int32, error) {
	switch x := e.(type) {
	case *ir.Const:
		r := g.newReg()
		imm := x.Raw
		if x.T == ir.I32 {
			imm = int64(uint32(int32(x.Raw)))
		}
		g.emit(X86Instr{Kind: XConst, Dst: r, Imm: imm, T: x.T})
		return r, nil
	case *ir.GetLocal:
		return int32(x.Local), nil
	case *ir.GetGlobal:
		r := g.newReg()
		g.emit(X86Instr{Kind: XMov, Dst: r, A: globalReg(x.Global)})
		return r, nil
	case *ir.FrameAddr:
		r := g.newReg()
		g.emit(X86Instr{Kind: XFrameAddr, Dst: r, Imm: int64(x.Off)})
		return r, nil
	case *ir.Load:
		a, err := g.expr(x.Addr)
		if err != nil {
			return 0, err
		}
		r := g.newReg()
		g.emit(X86Instr{Kind: XLoad, Dst: r, A: a, Mem: x.Mem})
		return r, nil
	case *ir.Bin:
		a, err := g.expr(x.X)
		if err != nil {
			return 0, err
		}
		b, err := g.expr(x.Y)
		if err != nil {
			return 0, err
		}
		r := g.newReg()
		g.emit(X86Instr{Kind: XBin, Dst: r, A: a, B: b, BinOp: x.Op, T: x.T, Unsigned: x.Unsigned})
		return r, nil
	case *ir.Un:
		a, err := g.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := g.newReg()
		g.emit(X86Instr{Kind: XUn, Dst: r, A: a, UnOp: x.Op, T: x.T})
		return r, nil
	case *ir.Conv:
		a, err := g.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := g.newReg()
		g.emit(X86Instr{Kind: XConv, Dst: r, A: a, T: x.From,
			Narrow: x.Narrow, NSigned: x.NarrowSigned, Unsigned: !x.Signed,
			Imm: int64(x.To)})
		return r, nil
	case *ir.Call:
		var args []int32
		for _, arg := range x.Args {
			r, err := g.expr(arg)
			if err != nil {
				return 0, err
			}
			args = append(args, r)
		}
		r := g.newReg()
		g.emit(X86Instr{Kind: XCall, Dst: r, Imm: int64(x.Func), Args: args})
		return r, nil
	case *ir.CallHost:
		var args []int32
		for _, arg := range x.Args {
			r, err := g.expr(arg)
			if err != nil {
				return 0, err
			}
			args = append(args, r)
		}
		r := g.newReg()
		g.emit(X86Instr{Kind: XCallHost, Dst: r, Host: x.Name, Args: args})
		return r, nil
	case *ir.Ternary:
		c, err := g.expr(x.C)
		if err != nil {
			return 0, err
		}
		r := g.newReg()
		jz := g.emit(X86Instr{Kind: XJz, A: c})
		tv, err := g.expr(x.X)
		if err != nil {
			return 0, err
		}
		g.emit(X86Instr{Kind: XMov, Dst: r, A: tv})
		jend := g.emit(X86Instr{Kind: XJmp})
		g.out.Code[jz].Target = int32(len(g.out.Code))
		fv, err := g.expr(x.Y)
		if err != nil {
			return 0, err
		}
		g.emit(X86Instr{Kind: XMov, Dst: r, A: fv})
		g.out.Code[jend].Target = int32(len(g.out.Code))
		return r, nil
	case *ir.Seq:
		if err := g.stmts(x.Stmts); err != nil {
			return 0, err
		}
		return g.expr(x.X)
	}
	return 0, fmt.Errorf("unhandled expression %T", e)
}
