package codegen

import (
	"strings"
	"testing"
	"testing/quick"

	"wasmbench/internal/ir"
	"wasmbench/internal/minic"
	"wasmbench/internal/wasm"
)

func buildIR(t testing.TB, src string) *ir.Program {
	t.Helper()
	f, err := minic.ParseSource(src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	minic.Transform(f)
	if err := minic.Check(f, minic.CheckOptions{}); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Build(f, ir.DefaultBuildOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

const kernelSrc = `
int g;
long acc64;
double buf[32];

int helper(int a, int b) {
	if (a > b) return a - b;
	return b - a;
}

int main() {
	int i;
	long h = 1;
	double s = 0.0;
	for (i = 0; i < 32; i++) {
		buf[i] = (double)i * 0.5;
		h = h * 31 + (long)helper(i, 10);
		s += buf[i];
	}
	switch (g) {
	case 0: g = (int)(h & 255); break;
	default: g = 0;
	}
	acc64 = h;
	return g + (int)s;
}
`

// runAllBackends compiles the IR to all three targets and executes each.
func runAllBackends(t *testing.T, p *ir.Program) (wasmExit, x86Exit int32) {
	t.Helper()
	m, err := Wasm(p, WasmOptions{ModuleName: "t"})
	if err != nil {
		t.Fatalf("wasm gen: %v", err)
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("generated module invalid: %v", err)
	}
	xp, err := X86(p)
	if err != nil {
		t.Fatalf("x86 gen: %v", err)
	}
	xvm := NewX86VM(xp, DefaultX86Config())
	xres, err := xvm.Run()
	if err != nil {
		t.Fatalf("x86 run: %v", err)
	}
	// Wasm execution happens via wasmvm in compiler tests; here structural
	// validation suffices (full differential tests live in
	// internal/compiler and internal/benchsuite).
	return 0, int32(uint32(xres))
}

func TestWasmGenValidates(t *testing.T) {
	p := buildIR(t, kernelSrc)
	for _, lv := range []ir.OptLevel{ir.O0, ir.O2, ir.Oz, ir.Ofast} {
		pc := buildIR(t, kernelSrc)
		ir.Optimize(pc, lv)
		m, err := Wasm(pc, WasmOptions{ModuleName: "k", CompactF64Consts: true})
		if err != nil {
			t.Fatalf("%v: %v", lv, err)
		}
		if err := wasm.Validate(m); err != nil {
			t.Fatalf("%v: invalid module: %v", lv, err)
		}
		bin, err := wasm.Encode(m)
		if err != nil {
			t.Fatalf("%v: encode: %v", lv, err)
		}
		m2, err := wasm.Decode(bin)
		if err != nil {
			t.Fatalf("%v: decode: %v", lv, err)
		}
		if err := wasm.Validate(m2); err != nil {
			t.Fatalf("%v: decoded invalid: %v", lv, err)
		}
	}
	_ = p
}

func TestCompactF64Consts(t *testing.T) {
	src := `
double v[8];
int main() {
	int i;
	for (i = 0; i < 8; i++) {
		v[i] = 100.0;  /* integral: compact encoding */
		v[i] += 0.125; /* non-integral: full f64.const */
	}
	return (int)v[0];
}
`
	p := buildIR(t, src)
	compact, err := Wasm(p, WasmOptions{CompactF64Consts: true})
	if err != nil {
		t.Fatal(err)
	}
	p2 := buildIR(t, src)
	full, err := Wasm(p2, WasmOptions{CompactF64Consts: false})
	if err != nil {
		t.Fatal(err)
	}
	binC, _ := wasm.Encode(compact)
	binF, _ := wasm.Encode(full)
	if len(binC) >= len(binF) {
		t.Errorf("compact encoding should be smaller: %d vs %d", len(binC), len(binF))
	}
	watC := wasm.WAT(compact)
	if !strings.Contains(watC, "f64.convert_i32_s") {
		t.Error("compact mode should emit i32.const + f64.convert_i32_s")
	}
}

func TestPeepholeReducesInstrs(t *testing.T) {
	// Post-increment in value position and chained assignment produce the
	// local.set/local.get adjacencies the peephole fuses.
	p := buildIR(t, `
int main() {
	int i = 0;
	int a; int b;
	int s = 0;
	a = b = 5;
	while (i < 10) {
		s += i++ + a;
	}
	return s + b;
}
`)
	m, err := Wasm(p, WasmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.StaticInstrCount()
	PeepholeWasm(m)
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("peephole broke validation: %v", err)
	}
	if m.StaticInstrCount() >= before {
		t.Errorf("peephole should shrink code: %d -> %d", before, m.StaticInstrCount())
	}
}

func TestPeepholePatterns(t *testing.T) {
	body := []wasm.Instr{
		{Op: wasm.OpI32Const, Val: 1},
		{Op: wasm.OpLocalSet, A: 0},
		{Op: wasm.OpLocalGet, A: 0}, // set+get -> tee
		{Op: wasm.OpDrop},           // tee+drop -> set
		{Op: wasm.OpI32Const, Val: 9},
		{Op: wasm.OpDrop}, // const+drop -> gone
		{Op: wasm.OpEnd},
	}
	got := peepholeBody(body)
	// Expect: const 1, local.set 0, end.
	if len(got) != 3 || got[1].Op != wasm.OpLocalSet {
		t.Errorf("peephole result: %v", got)
	}
}

func TestX86ExecutesKernel(t *testing.T) {
	p := buildIR(t, kernelSrc)
	_, exit := runAllBackends(t, p)
	// Deterministic program: optimization must not change the result.
	p2 := buildIR(t, kernelSrc)
	ir.Optimize(p2, ir.O2)
	_, exit2 := runAllBackends(t, p2)
	if exit != exit2 {
		t.Errorf("x86 exits differ across opt: %d vs %d", exit, exit2)
	}
}

func TestJSGenParsesAndStructure(t *testing.T) {
	p := buildIR(t, kernelSrc)
	js, err := JS(p, JSOptions{ModuleName: "k"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"HEAPF64", "function f_main", "function f_helper",
		"__i64mul", "var __exit",
	} {
		if !strings.Contains(js, want) {
			t.Errorf("generated JS missing %q", want)
		}
	}
}

// TestRandomExprDifferential property-tests expression compilation: random
// integer expressions must produce identical results on the x86 backend at
// -O0 and -O2 (the optimizer and codegen agree on semantics).
func TestRandomExprDifferential(t *testing.T) {
	eval := func(a, b, c int32, lv ir.OptLevel) int32 {
		src := `
int main() {
	int a = ` + itoa32(a) + `;
	int b = ` + itoa32(b) + `;
	int c = ` + itoa32(c) + `;
	int r = 0;
	r += a + b * 3 - (c >> 2);
	r ^= (a & b) | (b ^ c);
	r += (a < b) ? (c << 1) : (c - a);
	if (b != 0) { r += a % b; }
	if (b != 0) { r += a / b; }
	return r;
}
`
		p := buildIR(t, src)
		ir.Optimize(p, lv)
		xp, err := X86(p)
		if err != nil {
			t.Fatalf("x86: %v", err)
		}
		res, err := NewX86VM(xp, DefaultX86Config()).Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return int32(uint32(res))
	}
	f := func(a, b, c int32) bool {
		if a == -2147483648 || b == -1 && a == -2147483648 {
			return true // C UB corner
		}
		return eval(a, b, c, ir.O0) == eval(a, b, c, ir.O2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa32(v int32) string {
	// Avoid "-2147483648" literal pitfalls by building via arithmetic.
	if v == -2147483648 {
		return "(-2147483647 - 1)"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	digits := []byte{}
	for {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		return "(-" + string(digits) + ")"
	}
	return string(digits)
}

func TestEncodedSizeAccountsImmediates(t *testing.T) {
	p := buildIR(t, kernelSrc)
	xp, err := X86(p)
	if err != nil {
		t.Fatal(err)
	}
	if xp.EncodedSize() <= xp.StaticInstrCount() {
		t.Error("encoded size should exceed raw instruction count")
	}
}
