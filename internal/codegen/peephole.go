package codegen

import "wasmbench/internal/wasm"

// PeepholeWasm applies local peephole cleanups to every function body —
// the extra backend polish the Emscripten flavour has over Cheerp:
//
//	local.set N; local.get N   →  local.tee N
//	local.get N; drop          →  (removed)
//	*.const C;  drop           →  (removed)
//	local.tee N; drop          →  local.set N
//
// Adjacent instruction pairs are safe to fuse because branch targets in
// WebAssembly are block boundaries (block/loop/else/end), never arbitrary
// instructions.
func PeepholeWasm(m *wasm.Module) {
	for fi := range m.Funcs {
		m.Funcs[fi].Body = peepholeBody(m.Funcs[fi].Body)
	}
}

func peepholeBody(body []wasm.Instr) []wasm.Instr {
	changed := true
	for changed {
		changed = false
		out := body[:0:0]
		i := 0
		for i < len(body) {
			in := body[i]
			if i+1 < len(body) {
				next := body[i+1]
				switch {
				case in.Op == wasm.OpLocalSet && next.Op == wasm.OpLocalGet && in.A == next.A:
					out = append(out, wasm.Instr{Op: wasm.OpLocalTee, A: in.A})
					i += 2
					changed = true
					continue
				case in.Op == wasm.OpLocalGet && next.Op == wasm.OpDrop:
					i += 2
					changed = true
					continue
				case (in.Op == wasm.OpI32Const || in.Op == wasm.OpI64Const ||
					in.Op == wasm.OpF32Const || in.Op == wasm.OpF64Const) && next.Op == wasm.OpDrop:
					i += 2
					changed = true
					continue
				case in.Op == wasm.OpLocalTee && next.Op == wasm.OpDrop:
					out = append(out, wasm.Instr{Op: wasm.OpLocalSet, A: in.A})
					i += 2
					changed = true
					continue
				}
			}
			out = append(out, in)
			i++
		}
		body = out
	}
	return body
}
