// Package codegen lowers the optimizer IR to the study's three targets:
// WebAssembly modules (Cheerp/Emscripten-style), Cheerp-style JavaScript
// source, and x86-like register bytecode (the native baseline of the
// paper's Fig. 6).
package codegen

import (
	"fmt"
	"math"

	"wasmbench/internal/ir"
	"wasmbench/internal/wasm"
)

// WasmOptions tunes Wasm emission per toolchain flavour.
type WasmOptions struct {
	// CompactF64Consts emits integral f64 constants as
	// i32.const + f64.convert_i32_s (smaller binary, one extra dynamic
	// instruction) — the Cheerp -O2 behavior in the paper's Fig. 8.
	CompactF64Consts bool
	// InitialHeapPages adds heap headroom to the initial memory beyond
	// static data + stack (Emscripten commits large chunks up front).
	InitialHeapPages uint32
	// ModuleName is recorded in the name section.
	ModuleName string
}

// hostImports lists the environment functions a module may import, in a
// fixed order so import indices are stable.
var hostImports = []struct {
	name string
	typ  wasm.FuncType
}{
	{"print_i", wasm.FuncType{Params: []wasm.ValType{wasm.I64}}},
	{"print_f", wasm.FuncType{Params: []wasm.ValType{wasm.F64}}},
	{"print_s", wasm.FuncType{Params: []wasm.ValType{wasm.I32}}},
	{"sin", wasm.FuncType{Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.F64}}},
	{"cos", wasm.FuncType{Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.F64}}},
	{"exp", wasm.FuncType{Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.F64}}},
	{"log", wasm.FuncType{Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.F64}}},
	{"pow", wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.F64}}},
	{"fmod", wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.F64}}},
}

func wasmType(t ir.Type) wasm.ValType {
	switch t {
	case ir.I64:
		return wasm.I64
	case ir.F32:
		return wasm.F32
	case ir.F64:
		return wasm.F64
	default:
		return wasm.I32
	}
}

// Wasm compiles an IR program to a WebAssembly module.
func Wasm(p *ir.Program, opts WasmOptions) (*wasm.Module, error) {
	g := &wasmGen{p: p, opts: opts, m: &wasm.Module{Name: opts.ModuleName}}

	// Imports: only those actually referenced.
	used := map[string]bool{}
	for _, f := range p.Funcs {
		collectHostCalls(f.Body, used)
	}
	g.importIdx = map[string]uint32{}
	for _, hi := range hostImports {
		if !used[hi.name] {
			continue
		}
		ti := g.m.AddType(hi.typ)
		g.importIdx[hi.name] = uint32(len(g.m.Imports))
		g.m.Imports = append(g.m.Imports, wasm.Import{Module: "env", Field: hi.name, Type: ti})
	}
	g.nImports = uint32(len(g.m.Imports))

	// Memory: static + stack (+ optional heap headroom), max covers heap
	// limit.
	minPages := (p.StackTop + wasmPageSize - 1) / wasmPageSize
	minPages += opts.InitialHeapPages
	maxPages := (p.StackTop + p.HeapLimit + wasmPageSize - 1) / wasmPageSize
	if maxPages < minPages {
		maxPages = minPages
	}
	g.m.Mem = &wasm.MemType{Min: minPages, Max: maxPages, HasMax: true}

	for _, gl := range p.Globals {
		g.m.Globals = append(g.m.Globals, wasm.Global{
			Type: wasmType(gl.Type), Mutable: gl.Mutable, Init: gl.Init, Name: gl.Name,
		})
	}
	for _, d := range p.Data {
		g.m.Data = append(g.m.Data, wasm.DataSegment{Offset: d.Addr, Bytes: d.Bytes})
	}

	for _, f := range p.Funcs {
		wf, err := g.genFunc(f)
		if err != nil {
			return nil, fmt.Errorf("codegen: func %s: %w", f.Name, err)
		}
		g.m.Funcs = append(g.m.Funcs, wf)
	}
	for i, f := range p.Funcs {
		if f.Exported || i == p.MainFunc {
			g.m.Exports = append(g.m.Exports, wasm.Export{
				Name: f.Name, Kind: wasm.ExportFunc, Idx: g.nImports + uint32(i),
			})
		}
	}
	g.m.Exports = append(g.m.Exports, wasm.Export{Name: "memory", Kind: wasm.ExportMemory})
	if err := wasm.Validate(g.m); err != nil {
		return nil, fmt.Errorf("codegen: generated module invalid: %w", err)
	}
	return g.m, nil
}

const wasmPageSize = 64 * 1024

func collectHostCalls(body []ir.Stmt, used map[string]bool) {
	ir.WalkAllExprs(body, func(e ir.Expr) {
		if ch, ok := e.(*ir.CallHost); ok {
			used[ch.Name] = true
		}
	})
}

type wasmGen struct {
	p         *ir.Program
	opts      WasmOptions
	m         *wasm.Module
	importIdx map[string]uint32
	nImports  uint32

	// per-function state
	f        *ir.Func
	code     []wasm.Instr
	depth    int   // current control nesting depth
	brks     []int // depth of the block a Break targets
	conts    []int // depth of the block a Continue targets
	exitDep  int   // depth of the function's exit block
	fpLocal  int   // local caching the frame pointer (-1 if no frame)
	extraLoc []wasm.ValType
}

func (g *wasmGen) emit(in wasm.Instr) { g.code = append(g.code, in) }

func (g *wasmGen) genFunc(f *ir.Func) (wasm.Function, error) {
	g.f = f
	g.code = nil
	g.depth = 0
	g.brks, g.conts = nil, nil
	g.extraLoc = nil
	g.fpLocal = -1

	ft := wasm.FuncType{}
	for _, pt := range f.Params {
		ft.Params = append(ft.Params, wasmType(pt))
	}
	if f.Ret != ir.Void {
		ft.Results = []wasm.ValType{wasmType(f.Ret)}
	}
	ti := g.m.AddType(ft)

	var locals []wasm.ValType
	for _, lt := range f.Locals[len(f.Params):] {
		locals = append(locals, wasmType(lt))
	}

	hasFrame := f.FrameSize > 0
	if hasFrame {
		g.fpLocal = len(f.Locals) + len(g.extraLoc)
		g.extraLoc = append(g.extraLoc, wasm.I32)
		// fp = sp - FrameSize; sp = fp
		g.emit(wasm.Instr{Op: wasm.OpGlobalGet, A: uint32(g.p.SPGlobal)})
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(f.FrameSize)})
		g.emit(wasm.Instr{Op: wasm.OpI32Sub})
		g.emit(wasm.Instr{Op: wasm.OpLocalTee, A: uint32(g.fpLocal)})
		g.emit(wasm.Instr{Op: wasm.OpGlobalSet, A: uint32(g.p.SPGlobal)})
	}

	// Function exit block: Return lowers to a br here so the epilogue runs
	// exactly once.
	bt := wasm.BlockNone
	if f.Ret != ir.Void {
		bt = int32(wasmType(f.Ret))
	}
	g.emit(wasm.Instr{Op: wasm.OpBlock, BlockType: bt})
	g.depth++
	g.exitDep = g.depth

	if err := g.stmts(f.Body); err != nil {
		return wasm.Function{}, err
	}
	if f.Ret != ir.Void {
		// Falling off the end of a value function traps (C UB).
		g.emit(wasm.Instr{Op: wasm.OpUnreachable})
	}
	g.emit(wasm.Instr{Op: wasm.OpEnd})
	g.depth--

	if hasFrame {
		// Epilogue: sp = fp + FrameSize.
		g.emit(wasm.Instr{Op: wasm.OpLocalGet, A: uint32(g.fpLocal)})
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(f.FrameSize)})
		g.emit(wasm.Instr{Op: wasm.OpI32Add})
		g.emit(wasm.Instr{Op: wasm.OpGlobalSet, A: uint32(g.p.SPGlobal)})
	}
	g.emit(wasm.Instr{Op: wasm.OpEnd})

	return wasm.Function{
		Type:   ti,
		Locals: append(locals, g.extraLoc...),
		Body:   g.code,
		Name:   f.Name,
	}, nil
}

func (g *wasmGen) stmts(body []ir.Stmt) error {
	for _, s := range body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *wasmGen) stmt(s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.SetLocal:
		if err := g.expr(st.X); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpLocalSet, A: uint32(st.Local)})
	case *ir.SetGlobal:
		if err := g.expr(st.X); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpGlobalSet, A: uint32(st.Global)})
	case *ir.Store:
		if err := g.expr(st.Addr); err != nil {
			return err
		}
		if err := g.expr(st.X); err != nil {
			return err
		}
		op, align := storeOp(st.Mem)
		g.emit(wasm.Instr{Op: op, A: align})
	case *ir.EvalStmt:
		if err := g.expr(st.X); err != nil {
			return err
		}
		if st.X.ResultType() != ir.Void {
			g.emit(wasm.Instr{Op: wasm.OpDrop})
		}
	case *ir.If:
		if err := g.expr(st.Cond); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpIf, BlockType: wasm.BlockNone})
		g.depth++
		if err := g.stmts(st.Then); err != nil {
			return err
		}
		if len(st.Else) > 0 {
			g.emit(wasm.Instr{Op: wasm.OpElse})
			if err := g.stmts(st.Else); err != nil {
				return err
			}
		}
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		g.depth--
	case *ir.Loop:
		return g.loop(st)
	case *ir.Break:
		g.br(g.brks[len(g.brks)-1])
	case *ir.Continue:
		g.br(g.conts[len(g.conts)-1])
	case *ir.Return:
		if st.X != nil {
			if err := g.expr(st.X); err != nil {
				return err
			}
		}
		g.br(g.exitDep)
	case *ir.Switch:
		return g.switchStmt(st)
	case *ir.VecSection:
		// No SIMD in the Wasm MVP: shadow lanes execute as plain scalar code.
		return g.stmts(st.Body)
	default:
		return fmt.Errorf("unhandled statement %T", s)
	}
	return nil
}

// br emits a branch to the block whose depth is target.
func (g *wasmGen) br(target int) {
	g.emit(wasm.Instr{Op: wasm.OpBr, A: uint32(g.depth - target)})
}

func (g *wasmGen) loop(st *ir.Loop) error {
	// block $brk { loop $top { [pre-test]; block $cont { body }; post;
	//              [post-test br $top / br $top] } }
	g.emit(wasm.Instr{Op: wasm.OpBlock, BlockType: wasm.BlockNone})
	g.depth++
	brkDepth := g.depth
	g.emit(wasm.Instr{Op: wasm.OpLoop, BlockType: wasm.BlockNone})
	g.depth++
	topDepth := g.depth

	if !st.PostTest && st.Cond != nil {
		if err := g.expr(st.Cond); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpBrIf, A: uint32(g.depth - brkDepth)})
	}

	needCont := containsContinue(st.Body)
	contDepth := topDepth
	if needCont {
		g.emit(wasm.Instr{Op: wasm.OpBlock, BlockType: wasm.BlockNone})
		g.depth++
		contDepth = g.depth
	}
	g.brks = append(g.brks, brkDepth)
	g.conts = append(g.conts, contDepth)
	err := g.stmts(st.Body)
	g.brks = g.brks[:len(g.brks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	if err != nil {
		return err
	}
	if needCont {
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		g.depth--
	}
	if err := g.stmts(st.Post); err != nil {
		return err
	}
	if st.PostTest {
		if st.Cond != nil {
			if err := g.expr(st.Cond); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpBrIf, A: uint32(g.depth - topDepth)})
		} else {
			g.emit(wasm.Instr{Op: wasm.OpBr, A: uint32(g.depth - topDepth)})
		}
	} else {
		g.emit(wasm.Instr{Op: wasm.OpBr, A: uint32(g.depth - topDepth)})
	}
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // loop
	g.depth--
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // block
	g.depth--
	return nil
}

func containsContinue(body []ir.Stmt) bool { return ir.ContainsContinue(body) }

func (g *wasmGen) switchStmt(st *ir.Switch) error {
	// Decide dense br_table vs compare chain.
	var minV, maxV int64
	n := 0
	for _, cs := range st.Cases {
		for _, v := range cs.Vals {
			if n == 0 || v < minV {
				minV = v
			}
			if n == 0 || v > maxV {
				maxV = v
			}
			n++
		}
	}
	dense := n > 0 && maxV-minV < 128 && int64(n)*3 >= maxV-minV

	// Outer break block.
	g.emit(wasm.Instr{Op: wasm.OpBlock, BlockType: wasm.BlockNone})
	g.depth++
	brkDepth := g.depth
	g.brks = append(g.brks, brkDepth)
	defer func() { g.brks = g.brks[:len(g.brks)-1] }()

	if !dense {
		// Compare chain: tag cached in a scratch local.
		tagLocal := g.scratch(wasm.I32)
		if err := g.expr(st.Tag); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpLocalSet, A: uint32(tagLocal)})
		for _, cs := range st.Cases {
			// if (tag == v0 || tag == v1 ...) { body; br $brk }
			for vi, v := range cs.Vals {
				g.emit(wasm.Instr{Op: wasm.OpLocalGet, A: uint32(tagLocal)})
				g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(int32(v))})
				g.emit(wasm.Instr{Op: wasm.OpI32Eq})
				if vi > 0 {
					g.emit(wasm.Instr{Op: wasm.OpI32Or})
				}
			}
			g.emit(wasm.Instr{Op: wasm.OpIf, BlockType: wasm.BlockNone})
			g.depth++
			if err := g.stmts(cs.Body); err != nil {
				return err
			}
			g.br(brkDepth)
			g.emit(wasm.Instr{Op: wasm.OpEnd})
			g.depth--
		}
		if err := g.stmts(st.Default); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		g.depth--
		return nil
	}

	// Dense: nested case blocks + br_table.
	// block $brk { block $def { block $cK ... block $c0 {
	//     tag - min; br_table c0..cK $def
	// } body0; br $brk } ... } default }
	k := len(st.Cases)
	for i := k; i >= 1; i-- {
		g.emit(wasm.Instr{Op: wasm.OpBlock, BlockType: wasm.BlockNone}) // default + cases
		g.depth++
	}
	caseDepth := make([]int, k) // depth value of each case's block
	// Blocks were pushed: first pushed is default (outermost of this
	// group)... we pushed k blocks: innermost corresponds to case 0.
	defDepth := brkDepth + 1
	// Actually: we need k case blocks plus one default block.
	g.emit(wasm.Instr{Op: wasm.OpBlock, BlockType: wasm.BlockNone})
	g.depth++
	for i := 0; i < k; i++ {
		caseDepth[i] = g.depth - i // innermost block = case 0
	}
	_ = defDepth

	if err := g.expr(st.Tag); err != nil {
		return err
	}
	if minV != 0 {
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(int32(minV))})
		g.emit(wasm.Instr{Op: wasm.OpI32Sub})
	}
	// Build the jump table over [0, maxV-minV].
	span := int(maxV - minV + 1)
	targets := make([]uint32, span)
	defaultLbl := uint32(g.depth - (brkDepth + 1)) // the outermost of the pushed group = default block
	for j := 0; j < span; j++ {
		targets[j] = defaultLbl
	}
	for ci, cs := range st.Cases {
		for _, v := range cs.Vals {
			targets[v-minV] = uint32(g.depth - caseDepth[ci])
		}
	}
	g.emit(wasm.Instr{Op: wasm.OpBrTable, Targets: targets, A: defaultLbl})
	// Close the innermost block (case 0's landing), then emit bodies.
	for i := 0; i < k; i++ {
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		g.depth--
		if err := g.stmts(st.Cases[i].Body); err != nil {
			return err
		}
		g.br(brkDepth)
	}
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // default block
	g.depth--
	if err := g.stmts(st.Default); err != nil {
		return err
	}
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // break block
	g.depth--
	return nil
}

// scratch allocates an extra local of the given type.
func (g *wasmGen) scratch(t wasm.ValType) int {
	idx := len(g.f.Locals) + len(g.extraLoc)
	g.extraLoc = append(g.extraLoc, t)
	return idx
}

func storeOp(m ir.MemType) (wasm.Opcode, uint32) {
	switch m {
	case ir.MemI8S, ir.MemI8U:
		return wasm.OpI32Store8, 0
	case ir.MemI16S, ir.MemI16U:
		return wasm.OpI32Store16, 1
	case ir.MemI32:
		return wasm.OpI32Store, 2
	case ir.MemI64:
		return wasm.OpI64Store, 3
	case ir.MemF32:
		return wasm.OpF32Store, 2
	default:
		return wasm.OpF64Store, 3
	}
}

func loadOp(m ir.MemType) (wasm.Opcode, uint32) {
	switch m {
	case ir.MemI8S:
		return wasm.OpI32Load8S, 0
	case ir.MemI8U:
		return wasm.OpI32Load8U, 0
	case ir.MemI16S:
		return wasm.OpI32Load16S, 1
	case ir.MemI16U:
		return wasm.OpI32Load16U, 1
	case ir.MemI32:
		return wasm.OpI32Load, 2
	case ir.MemI64:
		return wasm.OpI64Load, 3
	case ir.MemF32:
		return wasm.OpF32Load, 2
	default:
		return wasm.OpF64Load, 3
	}
}

func (g *wasmGen) expr(e ir.Expr) error {
	switch x := e.(type) {
	case *ir.Const:
		g.emitConst(x)
	case *ir.GetLocal:
		g.emit(wasm.Instr{Op: wasm.OpLocalGet, A: uint32(x.Local)})
	case *ir.GetGlobal:
		g.emit(wasm.Instr{Op: wasm.OpGlobalGet, A: uint32(x.Global)})
	case *ir.FrameAddr:
		g.emit(wasm.Instr{Op: wasm.OpLocalGet, A: uint32(g.fpLocal)})
		if x.Off != 0 {
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(x.Off)})
			g.emit(wasm.Instr{Op: wasm.OpI32Add})
		}
	case *ir.Load:
		if err := g.expr(x.Addr); err != nil {
			return err
		}
		op, align := loadOp(x.Mem)
		g.emit(wasm.Instr{Op: op, A: align})
	case *ir.Bin:
		if err := g.expr(x.X); err != nil {
			return err
		}
		if err := g.expr(x.Y); err != nil {
			return err
		}
		op, err := binOpcode(x)
		if err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: op})
	case *ir.Un:
		return g.unary(x)
	case *ir.Conv:
		return g.conv(x)
	case *ir.Call:
		for _, a := range x.Args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		g.emit(wasm.Instr{Op: wasm.OpCall, A: g.nImports + uint32(x.Func)})
	case *ir.CallHost:
		return g.callHost(x)
	case *ir.Ternary:
		if err := g.expr(x.C); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpIf, BlockType: int32(wasmType(x.T))})
		g.depth++
		if err := g.expr(x.X); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpElse})
		if err := g.expr(x.Y); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		g.depth--
	case *ir.Seq:
		if err := g.stmts(x.Stmts); err != nil {
			return err
		}
		return g.expr(x.X)
	default:
		return fmt.Errorf("unhandled expression %T", e)
	}
	return nil
}

func (g *wasmGen) emitConst(x *ir.Const) {
	switch x.T {
	case ir.I32:
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(int32(x.Raw))})
	case ir.I64:
		g.emit(wasm.Instr{Op: wasm.OpI64Const, Val: x.Raw})
	case ir.F32:
		f := math.Float32frombits(uint32(x.Raw))
		if g.opts.CompactF64Consts && float32(int32(f)) == f && f == float32(math.Trunc(float64(f))) &&
			math.Abs(float64(f)) <= 2147483647 && !(f == 0 && math.Signbit(float64(f))) {
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(int32(f))})
			g.emit(wasm.Instr{Op: wasm.OpF32ConvertI32S})
			return
		}
		g.emit(wasm.Instr{Op: wasm.OpF32Const, Val: x.Raw})
	case ir.F64:
		f := math.Float64frombits(uint64(x.Raw))
		if g.opts.CompactF64Consts && f == math.Trunc(f) &&
			math.Abs(f) <= 2147483647 && !(f == 0 && math.Signbit(f)) {
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(int32(f))})
			g.emit(wasm.Instr{Op: wasm.OpF64ConvertI32S})
			return
		}
		g.emit(wasm.Instr{Op: wasm.OpF64Const, Val: x.Raw})
	}
}

func (g *wasmGen) unary(x *ir.Un) error {
	switch x.Op {
	case ir.OpNeg:
		switch x.T {
		case ir.I32:
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: 0})
			if err := g.expr(x.X); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpI32Sub})
		case ir.I64:
			g.emit(wasm.Instr{Op: wasm.OpI64Const, Val: 0})
			if err := g.expr(x.X); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpI64Sub})
		case ir.F32:
			if err := g.expr(x.X); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpF32Neg})
		case ir.F64:
			if err := g.expr(x.X); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpF64Neg})
		}
	case ir.OpEqz:
		if err := g.expr(x.X); err != nil {
			return err
		}
		if x.T == ir.I64 {
			g.emit(wasm.Instr{Op: wasm.OpI64Eqz})
		} else {
			g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		}
	case ir.OpBitNot:
		if err := g.expr(x.X); err != nil {
			return err
		}
		if x.T == ir.I64 {
			g.emit(wasm.Instr{Op: wasm.OpI64Const, Val: -1})
			g.emit(wasm.Instr{Op: wasm.OpI64Xor})
		} else {
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: -1})
			g.emit(wasm.Instr{Op: wasm.OpI32Xor})
		}
	case ir.OpSqrt, ir.OpAbs, ir.OpFloor, ir.OpCeil, ir.OpTrunc:
		if err := g.expr(x.X); err != nil {
			return err
		}
		var op wasm.Opcode
		if x.T == ir.F32 {
			switch x.Op {
			case ir.OpSqrt:
				op = wasm.OpF32Sqrt
			case ir.OpAbs:
				op = wasm.OpF32Abs
			case ir.OpFloor:
				op = wasm.OpF32Floor
			case ir.OpCeil:
				op = wasm.OpF32Ceil
			case ir.OpTrunc:
				op = wasm.OpF32Trunc
			}
		} else {
			switch x.Op {
			case ir.OpSqrt:
				op = wasm.OpF64Sqrt
			case ir.OpAbs:
				op = wasm.OpF64Abs
			case ir.OpFloor:
				op = wasm.OpF64Floor
			case ir.OpCeil:
				op = wasm.OpF64Ceil
			case ir.OpTrunc:
				op = wasm.OpF64Trunc
			}
		}
		g.emit(wasm.Instr{Op: op})
	default:
		return fmt.Errorf("unhandled unary %v", x.Op)
	}
	return nil
}

func (g *wasmGen) conv(x *ir.Conv) error {
	if err := g.expr(x.X); err != nil {
		return err
	}
	// Narrowing within i32: shift pair or mask.
	if x.From == ir.I32 && x.To == ir.I32 && x.Narrow != 0 {
		g.emitNarrow(x.Narrow, x.NarrowSigned)
		return nil
	}
	var op wasm.Opcode
	switch {
	case x.From == ir.I32 && x.To == ir.I64 && x.Signed:
		op = wasm.OpI64ExtendI32S
	case x.From == ir.I32 && x.To == ir.I64:
		op = wasm.OpI64ExtendI32U
	case x.From == ir.I64 && x.To == ir.I32:
		op = wasm.OpI32WrapI64
	case x.From == ir.I32 && x.To == ir.F32 && x.Signed:
		op = wasm.OpF32ConvertI32S
	case x.From == ir.I32 && x.To == ir.F32:
		op = wasm.OpF32ConvertI32U
	case x.From == ir.I32 && x.To == ir.F64 && x.Signed:
		op = wasm.OpF64ConvertI32S
	case x.From == ir.I32 && x.To == ir.F64:
		op = wasm.OpF64ConvertI32U
	case x.From == ir.I64 && x.To == ir.F32 && x.Signed:
		op = wasm.OpF32ConvertI64S
	case x.From == ir.I64 && x.To == ir.F32:
		op = wasm.OpF32ConvertI64U
	case x.From == ir.I64 && x.To == ir.F64 && x.Signed:
		op = wasm.OpF64ConvertI64S
	case x.From == ir.I64 && x.To == ir.F64:
		op = wasm.OpF64ConvertI64U
	case x.From == ir.F32 && x.To == ir.I32 && x.Signed:
		op = wasm.OpI32TruncF32S
	case x.From == ir.F32 && x.To == ir.I32:
		op = wasm.OpI32TruncF32U
	case x.From == ir.F64 && x.To == ir.I32 && x.Signed:
		op = wasm.OpI32TruncF64S
	case x.From == ir.F64 && x.To == ir.I32:
		op = wasm.OpI32TruncF64U
	case x.From == ir.F32 && x.To == ir.I64 && x.Signed:
		op = wasm.OpI64TruncF32S
	case x.From == ir.F32 && x.To == ir.I64:
		op = wasm.OpI64TruncF32U
	case x.From == ir.F64 && x.To == ir.I64 && x.Signed:
		op = wasm.OpI64TruncF64S
	case x.From == ir.F64 && x.To == ir.I64:
		op = wasm.OpI64TruncF64U
	case x.From == ir.F32 && x.To == ir.F64:
		op = wasm.OpF64PromoteF32
	case x.From == ir.F64 && x.To == ir.F32:
		op = wasm.OpF32DemoteF64
	case x.From == x.To:
		return nil
	default:
		return fmt.Errorf("unhandled conversion %v->%v", x.From, x.To)
	}
	g.emit(wasm.Instr{Op: op})
	if x.Narrow != 0 && x.To == ir.I32 {
		g.emitNarrow(x.Narrow, x.NarrowSigned)
	}
	return nil
}

// emitNarrow truncates the i32 on top of the stack to 8 or 16 bits.
func (g *wasmGen) emitNarrow(bits uint8, signed bool) {
	if signed {
		sh := int64(32 - int(bits))
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: sh})
		g.emit(wasm.Instr{Op: wasm.OpI32Shl})
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: sh})
		g.emit(wasm.Instr{Op: wasm.OpI32ShrS})
	} else {
		mask := int64(1)<<bits - 1
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: mask})
		g.emit(wasm.Instr{Op: wasm.OpI32And})
	}
}

func (g *wasmGen) callHost(x *ir.CallHost) error {
	switch x.Name {
	case "memsize":
		g.emit(wasm.Instr{Op: wasm.OpMemorySize})
		return nil
	case "memgrow":
		if err := g.expr(x.Args[0]); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpMemoryGrow})
		return nil
	case "heapbase":
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(g.p.StackTop)})
		return nil
	case "heaplimit":
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Val: int64(g.p.StackTop + g.p.HeapLimit)})
		return nil
	case "trap":
		g.emit(wasm.Instr{Op: wasm.OpUnreachable})
		return nil
	}
	idx, ok := g.importIdx[x.Name]
	if !ok {
		return fmt.Errorf("unknown host function %q", x.Name)
	}
	for _, a := range x.Args {
		if err := g.expr(a); err != nil {
			return err
		}
	}
	g.emit(wasm.Instr{Op: wasm.OpCall, A: idx})
	return nil
}

func binOpcode(x *ir.Bin) (wasm.Opcode, error) {
	type key struct {
		op ir.BinOp
		t  ir.Type
		u  bool
	}
	k := key{x.Op, x.T, x.Unsigned}
	if x.T.IsFloat() {
		k.u = false
	}
	switch k {
	case key{ir.OpAdd, ir.I32, false}, key{ir.OpAdd, ir.I32, true}:
		return wasm.OpI32Add, nil
	case key{ir.OpSub, ir.I32, false}, key{ir.OpSub, ir.I32, true}:
		return wasm.OpI32Sub, nil
	case key{ir.OpMul, ir.I32, false}, key{ir.OpMul, ir.I32, true}:
		return wasm.OpI32Mul, nil
	case key{ir.OpDiv, ir.I32, false}:
		return wasm.OpI32DivS, nil
	case key{ir.OpDiv, ir.I32, true}:
		return wasm.OpI32DivU, nil
	case key{ir.OpRem, ir.I32, false}:
		return wasm.OpI32RemS, nil
	case key{ir.OpRem, ir.I32, true}:
		return wasm.OpI32RemU, nil
	case key{ir.OpAnd, ir.I32, false}, key{ir.OpAnd, ir.I32, true}:
		return wasm.OpI32And, nil
	case key{ir.OpOr, ir.I32, false}, key{ir.OpOr, ir.I32, true}:
		return wasm.OpI32Or, nil
	case key{ir.OpXor, ir.I32, false}, key{ir.OpXor, ir.I32, true}:
		return wasm.OpI32Xor, nil
	case key{ir.OpShl, ir.I32, false}, key{ir.OpShl, ir.I32, true}:
		return wasm.OpI32Shl, nil
	case key{ir.OpShr, ir.I32, false}:
		return wasm.OpI32ShrS, nil
	case key{ir.OpShr, ir.I32, true}:
		return wasm.OpI32ShrU, nil
	case key{ir.OpEq, ir.I32, false}, key{ir.OpEq, ir.I32, true}:
		return wasm.OpI32Eq, nil
	case key{ir.OpNe, ir.I32, false}, key{ir.OpNe, ir.I32, true}:
		return wasm.OpI32Ne, nil
	case key{ir.OpLt, ir.I32, false}:
		return wasm.OpI32LtS, nil
	case key{ir.OpLt, ir.I32, true}:
		return wasm.OpI32LtU, nil
	case key{ir.OpLe, ir.I32, false}:
		return wasm.OpI32LeS, nil
	case key{ir.OpLe, ir.I32, true}:
		return wasm.OpI32LeU, nil
	case key{ir.OpGt, ir.I32, false}:
		return wasm.OpI32GtS, nil
	case key{ir.OpGt, ir.I32, true}:
		return wasm.OpI32GtU, nil
	case key{ir.OpGe, ir.I32, false}:
		return wasm.OpI32GeS, nil
	case key{ir.OpGe, ir.I32, true}:
		return wasm.OpI32GeU, nil

	case key{ir.OpAdd, ir.I64, false}, key{ir.OpAdd, ir.I64, true}:
		return wasm.OpI64Add, nil
	case key{ir.OpSub, ir.I64, false}, key{ir.OpSub, ir.I64, true}:
		return wasm.OpI64Sub, nil
	case key{ir.OpMul, ir.I64, false}, key{ir.OpMul, ir.I64, true}:
		return wasm.OpI64Mul, nil
	case key{ir.OpDiv, ir.I64, false}:
		return wasm.OpI64DivS, nil
	case key{ir.OpDiv, ir.I64, true}:
		return wasm.OpI64DivU, nil
	case key{ir.OpRem, ir.I64, false}:
		return wasm.OpI64RemS, nil
	case key{ir.OpRem, ir.I64, true}:
		return wasm.OpI64RemU, nil
	case key{ir.OpAnd, ir.I64, false}, key{ir.OpAnd, ir.I64, true}:
		return wasm.OpI64And, nil
	case key{ir.OpOr, ir.I64, false}, key{ir.OpOr, ir.I64, true}:
		return wasm.OpI64Or, nil
	case key{ir.OpXor, ir.I64, false}, key{ir.OpXor, ir.I64, true}:
		return wasm.OpI64Xor, nil
	case key{ir.OpShl, ir.I64, false}, key{ir.OpShl, ir.I64, true}:
		return wasm.OpI64Shl, nil
	case key{ir.OpShr, ir.I64, false}:
		return wasm.OpI64ShrS, nil
	case key{ir.OpShr, ir.I64, true}:
		return wasm.OpI64ShrU, nil
	case key{ir.OpEq, ir.I64, false}, key{ir.OpEq, ir.I64, true}:
		return wasm.OpI64Eq, nil
	case key{ir.OpNe, ir.I64, false}, key{ir.OpNe, ir.I64, true}:
		return wasm.OpI64Ne, nil
	case key{ir.OpLt, ir.I64, false}:
		return wasm.OpI64LtS, nil
	case key{ir.OpLt, ir.I64, true}:
		return wasm.OpI64LtU, nil
	case key{ir.OpLe, ir.I64, false}:
		return wasm.OpI64LeS, nil
	case key{ir.OpLe, ir.I64, true}:
		return wasm.OpI64LeU, nil
	case key{ir.OpGt, ir.I64, false}:
		return wasm.OpI64GtS, nil
	case key{ir.OpGt, ir.I64, true}:
		return wasm.OpI64GtU, nil
	case key{ir.OpGe, ir.I64, false}:
		return wasm.OpI64GeS, nil
	case key{ir.OpGe, ir.I64, true}:
		return wasm.OpI64GeU, nil

	case key{ir.OpAdd, ir.F32, false}:
		return wasm.OpF32Add, nil
	case key{ir.OpSub, ir.F32, false}:
		return wasm.OpF32Sub, nil
	case key{ir.OpMul, ir.F32, false}:
		return wasm.OpF32Mul, nil
	case key{ir.OpDiv, ir.F32, false}:
		return wasm.OpF32Div, nil
	case key{ir.OpMin, ir.F32, false}:
		return wasm.OpF32Min, nil
	case key{ir.OpMax, ir.F32, false}:
		return wasm.OpF32Max, nil
	case key{ir.OpEq, ir.F32, false}:
		return wasm.OpF32Eq, nil
	case key{ir.OpNe, ir.F32, false}:
		return wasm.OpF32Ne, nil
	case key{ir.OpLt, ir.F32, false}:
		return wasm.OpF32Lt, nil
	case key{ir.OpLe, ir.F32, false}:
		return wasm.OpF32Le, nil
	case key{ir.OpGt, ir.F32, false}:
		return wasm.OpF32Gt, nil
	case key{ir.OpGe, ir.F32, false}:
		return wasm.OpF32Ge, nil

	case key{ir.OpAdd, ir.F64, false}:
		return wasm.OpF64Add, nil
	case key{ir.OpSub, ir.F64, false}:
		return wasm.OpF64Sub, nil
	case key{ir.OpMul, ir.F64, false}:
		return wasm.OpF64Mul, nil
	case key{ir.OpDiv, ir.F64, false}:
		return wasm.OpF64Div, nil
	case key{ir.OpMin, ir.F64, false}:
		return wasm.OpF64Min, nil
	case key{ir.OpMax, ir.F64, false}:
		return wasm.OpF64Max, nil
	case key{ir.OpEq, ir.F64, false}:
		return wasm.OpF64Eq, nil
	case key{ir.OpNe, ir.F64, false}:
		return wasm.OpF64Ne, nil
	case key{ir.OpLt, ir.F64, false}:
		return wasm.OpF64Lt, nil
	case key{ir.OpLe, ir.F64, false}:
		return wasm.OpF64Le, nil
	case key{ir.OpGt, ir.F64, false}:
		return wasm.OpF64Gt, nil
	case key{ir.OpGe, ir.F64, false}:
		return wasm.OpF64Ge, nil
	}
	return 0, fmt.Errorf("no wasm opcode for %v %v unsigned=%v", x.Op, x.T, x.Unsigned)
}
