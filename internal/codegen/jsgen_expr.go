package codegen

import (
	"fmt"
	"math"
	"strings"

	"wasmbench/internal/ir"
)

// emitsStmts reports whether compiling e requires emitting statements
// (sequences, i64 machinery, impure ternaries). Such operands force
// left-to-right temp capture to preserve evaluation order.
func emitsStmts(e ir.Expr) bool {
	switch x := e.(type) {
	case *ir.Seq:
		return true
	case *ir.Const, *ir.GetLocal, *ir.GetGlobal, *ir.FrameAddr:
		return x.ResultType() == ir.I64 && false // pair reads are direct
	case *ir.Load:
		return x.Mem == ir.MemI64 || emitsStmts(x.Addr)
	case *ir.Bin:
		if x.T == ir.I64 {
			return true
		}
		return emitsStmts(x.X) || emitsStmts(x.Y)
	case *ir.Un:
		if x.T == ir.I64 && x.Op != ir.OpEqz {
			return true
		}
		return emitsStmts(x.X)
	case *ir.Conv:
		if x.From == ir.I64 || x.To == ir.I64 {
			return true
		}
		return emitsStmts(x.X)
	case *ir.Call:
		if x.T == ir.I64 {
			return true
		}
		for _, a := range x.Args {
			if a.ResultType() == ir.I64 || emitsStmts(a) {
				return true
			}
		}
		return false
	case *ir.CallHost:
		for _, a := range x.Args {
			if a.ResultType() == ir.I64 || emitsStmts(a) {
				return true
			}
		}
		return false
	case *ir.Ternary:
		if x.T == ir.I64 {
			return true
		}
		return emitsStmts(x.C) || emitsStmts(x.X) || emitsStmts(x.Y)
	}
	return false
}

// operands compiles a list of expressions preserving evaluation order: when
// any operand needs statement emission, every earlier operand is captured
// into a temp first.
func (g *jsGen) operands(list []ir.Expr) ([]string, error) {
	anyStmts := false
	for _, e := range list {
		if emitsStmts(e) {
			anyStmts = true
			break
		}
	}
	out := make([]string, len(list))
	for i, e := range list {
		s, err := g.expr(e)
		if err != nil {
			return nil, err
		}
		if anyStmts && !isSimpleJS(s) && !isJSLiteral(s) {
			t := g.newTmp()
			switch e.ResultType() {
			case ir.F32, ir.F64:
				g.line("var %s = +(%s);", t, s)
			default:
				g.line("var %s = (%s)|0;", t, s)
			}
			s = t
		}
		out[i] = s
	}
	return out, nil
}

func isJSLiteral(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r == '.' || r == '-' || r == 'e' || r == '+') {
			return false
		}
	}
	return true
}

// expr compiles a non-i64 expression to a JS expression string, emitting
// prerequisite statements as needed.
func (g *jsGen) expr(e ir.Expr) (string, error) {
	switch x := e.(type) {
	case *ir.Const:
		switch x.T {
		case ir.I32:
			v := int32(x.Raw)
			if v < 0 {
				return fmt.Sprintf("(%d)", v), nil
			}
			return fmt.Sprintf("%d", v), nil
		case ir.F32:
			return fmt.Sprintf("Math.fround(%s)", jsFloat(float64(math.Float32frombits(uint32(x.Raw))))), nil
		case ir.F64:
			f := math.Float64frombits(uint64(x.Raw))
			if f < 0 {
				return "(" + jsFloat(f) + ")", nil
			}
			return jsFloat(f), nil
		}
		return "", fmt.Errorf("i64 constant in scalar context")
	case *ir.GetLocal:
		if x.T == ir.I64 {
			return "", fmt.Errorf("i64 local in scalar context")
		}
		return localName(x.Local), nil
	case *ir.GetGlobal:
		if x.T == ir.I64 {
			return "", fmt.Errorf("i64 global in scalar context")
		}
		return g.gname(x.Global), nil
	case *ir.FrameAddr:
		if x.Off == 0 {
			return g.fp, nil
		}
		return fmt.Sprintf("((%s + %d)|0)", g.fp, x.Off), nil
	case *ir.Load:
		if x.Mem == ir.MemI64 {
			return "", fmt.Errorf("i64 load in scalar context")
		}
		addr, err := g.expr(x.Addr)
		if err != nil {
			return "", err
		}
		view, shift := jsView(x.Mem)
		if shift == 0 {
			return fmt.Sprintf("%s[%s]", view, g.wrapAddr(addr)), nil
		}
		return fmt.Sprintf("%s[(%s) >> %d]", view, addr, shift), nil
	case *ir.Bin:
		return g.bin(x)
	case *ir.Un:
		return g.un(x)
	case *ir.Conv:
		return g.conv(x)
	case *ir.Call:
		return g.callScalar(x)
	case *ir.CallHost:
		return g.callHost(x)
	case *ir.Ternary:
		return g.ternary(x)
	case *ir.Seq:
		if err := g.stmts(x.Stmts); err != nil {
			return "", err
		}
		return g.expr(x.X)
	}
	return "", fmt.Errorf("unhandled expression %T", e)
}

func (g *jsGen) bin(x *ir.Bin) (string, error) {
	if x.T == ir.I64 {
		return g.binI64Compare(x)
	}
	ops, err := g.operands([]ir.Expr{x.X, x.Y})
	if err != nil {
		return "", err
	}
	a, b := ops[0], ops[1]
	switch x.T {
	case ir.I32:
		if x.Op.IsCompare() {
			ca, cb := "("+a+"|0)", "("+b+"|0)"
			if x.Unsigned {
				ca, cb = "("+a+">>>0)", "("+b+">>>0)"
			}
			return fmt.Sprintf("((%s %s %s)|0)", ca, cmpOpJS(x.Op), cb), nil
		}
		switch x.Op {
		case ir.OpAdd:
			return fmt.Sprintf("((%s + %s)|0)", a, b), nil
		case ir.OpSub:
			return fmt.Sprintf("((%s - %s)|0)", a, b), nil
		case ir.OpMul:
			return fmt.Sprintf("Math.imul(%s, %s)", a, b), nil
		case ir.OpDiv:
			if x.Unsigned {
				return fmt.Sprintf("((((%s>>>0) / (%s>>>0))>>>0)|0)", a, b), nil
			}
			return fmt.Sprintf("(((%s|0) / (%s|0))|0)", a, b), nil
		case ir.OpRem:
			if x.Unsigned {
				return fmt.Sprintf("((((%s>>>0) %% (%s>>>0))>>>0)|0)", a, b), nil
			}
			return fmt.Sprintf("(((%s|0) %% (%s|0))|0)", a, b), nil
		case ir.OpAnd:
			return fmt.Sprintf("(%s & %s)", a, b), nil
		case ir.OpOr:
			return fmt.Sprintf("(%s | %s)", a, b), nil
		case ir.OpXor:
			return fmt.Sprintf("(%s ^ %s)", a, b), nil
		case ir.OpShl:
			return fmt.Sprintf("(%s << (%s))", a, b), nil
		case ir.OpShr:
			if x.Unsigned {
				return fmt.Sprintf("((%s >>> (%s))|0)", a, b), nil
			}
			return fmt.Sprintf("(%s >> (%s))", a, b), nil
		}
	case ir.F32:
		inner, err := f64BinJS(x.Op, a, b)
		if err != nil {
			return "", err
		}
		if x.Op.IsCompare() {
			return inner, nil
		}
		return "Math.fround(" + inner + ")", nil
	case ir.F64:
		return f64BinJS(x.Op, a, b)
	}
	return "", fmt.Errorf("unhandled bin %v %v", x.Op, x.T)
}

func cmpOpJS(op ir.BinOp) string {
	switch op {
	case ir.OpEq:
		return "=="
	case ir.OpNe:
		return "!="
	case ir.OpLt:
		return "<"
	case ir.OpLe:
		return "<="
	case ir.OpGt:
		return ">"
	default:
		return ">="
	}
}

func f64BinJS(op ir.BinOp, a, b string) (string, error) {
	switch op {
	case ir.OpAdd:
		return fmt.Sprintf("(%s + %s)", a, b), nil
	case ir.OpSub:
		return fmt.Sprintf("(%s - %s)", a, b), nil
	case ir.OpMul:
		return fmt.Sprintf("(%s * %s)", a, b), nil
	case ir.OpDiv:
		return fmt.Sprintf("(%s / %s)", a, b), nil
	case ir.OpMin:
		return fmt.Sprintf("Math.min(%s, %s)", a, b), nil
	case ir.OpMax:
		return fmt.Sprintf("Math.max(%s, %s)", a, b), nil
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return fmt.Sprintf("((%s %s %s)|0)", a, cmpOpJS(op), b), nil
	}
	return "", fmt.Errorf("unhandled float op %v", op)
}

// binI64Compare handles i64-typed Bin nodes appearing in scalar context:
// comparisons (result i32).
func (g *jsGen) binI64Compare(x *ir.Bin) (string, error) {
	if !x.Op.IsCompare() {
		return "", fmt.Errorf("i64 arithmetic in scalar context")
	}
	al, ah, err := g.capture64(x.X)
	if err != nil {
		return "", err
	}
	bl, bh, err := g.capture64(x.Y)
	if err != nil {
		return "", err
	}
	switch x.Op {
	case ir.OpEq:
		return fmt.Sprintf("(((%s|0) == (%s|0) && (%s|0) == (%s|0))|0)", al, bl, ah, bh), nil
	case ir.OpNe:
		return fmt.Sprintf("(((%s|0) != (%s|0) || (%s|0) != (%s|0))|0)", al, bl, ah, bh), nil
	}
	hiCmpA, hiCmpB := "("+ah+"|0)", "("+bh+"|0)"
	if x.Unsigned {
		hiCmpA, hiCmpB = "("+ah+">>>0)", "("+bh+">>>0)"
	}
	loA, loB := "("+al+">>>0)", "("+bl+">>>0)"
	var strict string
	switch x.Op {
	case ir.OpLt, ir.OpLe:
		strict = "<"
	default:
		strict = ">"
	}
	loOp := cmpOpJS(x.Op)
	return fmt.Sprintf("((%s %s %s || (%s == %s && %s %s %s))|0)",
		hiCmpA, strict, hiCmpB, hiCmpA, hiCmpB, loA, loOp, loB), nil
}

func (g *jsGen) un(x *ir.Un) (string, error) {
	if x.T == ir.I64 && x.Op == ir.OpEqz {
		lo, hi, err := g.capture64(x.X)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(((%s|0) == 0 && (%s|0) == 0)|0)", lo, hi), nil
	}
	a, err := g.expr(x.X)
	if err != nil {
		return "", err
	}
	switch x.Op {
	case ir.OpNeg:
		switch x.T {
		case ir.I32:
			return fmt.Sprintf("((0 - %s)|0)", a), nil
		case ir.F32:
			return fmt.Sprintf("Math.fround(-%s)", a), nil
		default:
			return fmt.Sprintf("(-%s)", a), nil
		}
	case ir.OpEqz:
		return fmt.Sprintf("(((%s|0) == 0)|0)", a), nil
	case ir.OpBitNot:
		return fmt.Sprintf("(~%s)", a), nil
	case ir.OpSqrt:
		return g.froundIf(x.T, fmt.Sprintf("Math.sqrt(%s)", a)), nil
	case ir.OpAbs:
		return g.froundIf(x.T, fmt.Sprintf("Math.abs(%s)", a)), nil
	case ir.OpFloor:
		return g.froundIf(x.T, fmt.Sprintf("Math.floor(%s)", a)), nil
	case ir.OpCeil:
		return g.froundIf(x.T, fmt.Sprintf("Math.ceil(%s)", a)), nil
	case ir.OpTrunc:
		return g.froundIf(x.T, fmt.Sprintf("Math.trunc(%s)", a)), nil
	}
	return "", fmt.Errorf("unhandled unary %v", x.Op)
}

func (g *jsGen) froundIf(t ir.Type, s string) string {
	if t == ir.F32 {
		return "Math.fround(" + s + ")"
	}
	return s
}

func (g *jsGen) conv(x *ir.Conv) (string, error) {
	// i64-source conversions.
	if x.From == ir.I64 {
		lo, hi, err := g.expr64(x.X)
		if err != nil {
			return "", err
		}
		switch x.To {
		case ir.I32:
			s := fmt.Sprintf("(%s|0)", lo)
			_ = hi
			return g.narrowJS(s, x), nil
		case ir.F64, ir.F32:
			fn := "__i64tof"
			if !x.Signed {
				fn = "__i64toufu"
			}
			s := fmt.Sprintf("%s(%s, %s)", fn, lo, hi)
			return g.froundIf(x.To, s), nil
		}
		return "", fmt.Errorf("unhandled i64 conversion to %v", x.To)
	}
	a, err := g.expr(x.X)
	if err != nil {
		return "", err
	}
	switch {
	case x.From == ir.I32 && x.To == ir.I32:
		return g.narrowJS(a, x), nil
	case x.From == ir.I32 && (x.To == ir.F64 || x.To == ir.F32):
		s := "(" + a + "|0)"
		if !x.Signed {
			s = "(" + a + ">>>0)"
		}
		return g.froundIf(x.To, "(+"+s+")"), nil
	case (x.From == ir.F64 || x.From == ir.F32) && x.To == ir.I32:
		var s string
		if x.Signed {
			s = fmt.Sprintf("(~~(%s))", a)
		} else {
			s = fmt.Sprintf("(((%s)>>>0)|0)", a)
		}
		return g.narrowJS(s, x), nil
	case x.From == ir.F32 && x.To == ir.F64:
		return "(+" + a + ")", nil
	case x.From == ir.F64 && x.To == ir.F32:
		return "Math.fround(" + a + ")", nil
	case x.From == x.To:
		return a, nil
	}
	return "", fmt.Errorf("unhandled conversion %v->%v in scalar context", x.From, x.To)
}

func (g *jsGen) narrowJS(s string, x *ir.Conv) string {
	if x.Narrow == 0 {
		return s
	}
	if x.NarrowSigned {
		sh := 32 - int(x.Narrow)
		return fmt.Sprintf("((%s) << %d >> %d)", s, sh, sh)
	}
	mask := (1 << x.Narrow) - 1
	return fmt.Sprintf("((%s) & %d)", s, mask)
}

func (g *jsGen) callArgs(x *ir.Call) (string, error) {
	callee := g.p.Funcs[x.Func]
	var parts []string
	// Order preservation: capture everything when any arg emits statements.
	anyStmts := false
	for _, a := range x.Args {
		if a.ResultType() == ir.I64 || emitsStmts(a) {
			anyStmts = true
		}
	}
	for i, a := range x.Args {
		if callee.Params[i] == ir.I64 {
			lo, hi, err := g.capture64(a)
			if err != nil {
				return "", err
			}
			parts = append(parts, lo, hi)
			continue
		}
		s, err := g.expr(a)
		if err != nil {
			return "", err
		}
		if anyStmts && !isSimpleJS(s) && !isJSLiteral(s) {
			t := g.newTmp()
			if a.ResultType().IsFloat() {
				g.line("var %s = +(%s);", t, s)
			} else {
				g.line("var %s = (%s)|0;", t, s)
			}
			s = t
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ", "), nil
}

func (g *jsGen) callScalar(x *ir.Call) (string, error) {
	args, err := g.callArgs(x)
	if err != nil {
		return "", err
	}
	call := fmt.Sprintf("%s(%s)", g.fname(x.Func), args)
	switch x.T {
	case ir.Void:
		return call, nil
	case ir.F32, ir.F64:
		return "(+" + call + ")", nil
	case ir.I64:
		return "", fmt.Errorf("i64 call in scalar context")
	default:
		return "(" + call + "|0)", nil
	}
}

func (g *jsGen) callHost(x *ir.CallHost) (string, error) {
	switch x.Name {
	case "memsize":
		return "__memPages", nil
	case "memgrow":
		a, err := g.expr(x.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(__memgrow(%s)|0)", a), nil
	case "heapbase":
		return fmt.Sprintf("%d", g.p.StackTop), nil
	case "heaplimit":
		return fmt.Sprintf("%d", g.p.StackTop+g.p.HeapLimit), nil
	case "trap":
		return "__trap()", nil
	case "print_i":
		lo, hi, err := g.capture64(x.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("print_i64(%s, %s)", lo, hi), nil
	case "print_f":
		a, err := g.expr(x.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("print_f(%s)", a), nil
	case "print_s":
		a, err := g.expr(x.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("print_cstr(%s)", a), nil
	case "sin", "cos", "exp", "log", "pow":
		var parts []string
		for _, arg := range x.Args {
			s, err := g.expr(arg)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		return fmt.Sprintf("Math.%s(%s)", x.Name, strings.Join(parts, ", ")), nil
	case "fmod":
		a, err := g.expr(x.Args[0])
		if err != nil {
			return "", err
		}
		b, err := g.expr(x.Args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %% %s)", a, b), nil
	}
	return "", fmt.Errorf("unhandled host call %q", x.Name)
}

func (g *jsGen) ternary(x *ir.Ternary) (string, error) {
	if x.T != ir.I64 && !emitsStmts(x.X) && !emitsStmts(x.Y) && !emitsStmts(x.C) {
		c, err := g.expr(x.C)
		if err != nil {
			return "", err
		}
		a, err := g.expr(x.X)
		if err != nil {
			return "", err
		}
		b, err := g.expr(x.Y)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("((%s) ? (%s) : (%s))", c, a, b), nil
	}
	// Statement lowering.
	c, err := g.expr(x.C)
	if err != nil {
		return "", err
	}
	t := g.newTmp()
	switch x.T {
	case ir.F32, ir.F64:
		g.line("var %s = 0.0;", t)
	default:
		g.line("var %s = 0;", t)
	}
	g.line("if (%s) {", c)
	g.indent++
	a, err := g.expr(x.X)
	if err != nil {
		return "", err
	}
	g.line("%s = %s;", t, a)
	g.indent--
	g.line("} else {")
	g.indent++
	b, err := g.expr(x.Y)
	if err != nil {
		return "", err
	}
	g.line("%s = %s;", t, b)
	g.indent--
	g.line("}")
	return t, nil
}

// ---- i64 pair emission ----

// expr64 compiles an i64 expression to a (lo, hi) pair of *pure* JS
// expressions, emitting prerequisite statements.
func (g *jsGen) expr64(e ir.Expr) (lo, hi string, err error) {
	switch x := e.(type) {
	case *ir.Const:
		return fmt.Sprintf("%d", int32(x.Raw)), fmt.Sprintf("%d", int32(x.Raw>>32)), nil
	case *ir.GetLocal:
		return localName(x.Local) + "l", localName(x.Local) + "h", nil
	case *ir.GetGlobal:
		return g.gname(x.Global) + "l", g.gname(x.Global) + "h", nil
	case *ir.Load:
		addr, err := g.expr(x.Addr)
		if err != nil {
			return "", "", err
		}
		a := g.captureI32(addr)
		tl, th := g.newTmp(), g.newTmp()
		g.line("var %s = HEAP32[%s >> 2]|0, %s = HEAP32[(%s + 4) >> 2]|0;", tl, a, th, a)
		return tl, th, nil
	case *ir.Bin:
		return g.bin64(x)
	case *ir.Un:
		return g.un64(x)
	case *ir.Conv:
		return g.conv64(x)
	case *ir.Call:
		args, err := g.callArgs(x)
		if err != nil {
			return "", "", err
		}
		tl, th := g.newTmp(), g.newTmp()
		g.line("var %s = %s(%s)|0;", tl, g.fname(x.Func), args)
		g.line("var %s = __rethi|0;", th)
		return tl, th, nil
	case *ir.Ternary:
		c, err := g.expr(x.C)
		if err != nil {
			return "", "", err
		}
		tl, th := g.newTmp(), g.newTmp()
		g.line("var %s = 0, %s = 0;", tl, th)
		g.line("if (%s) {", c)
		g.indent++
		al, ah, err := g.expr64(x.X)
		if err != nil {
			return "", "", err
		}
		g.line("%s = %s; %s = %s;", tl, al, th, ah)
		g.indent--
		g.line("} else {")
		g.indent++
		bl, bh, err := g.expr64(x.Y)
		if err != nil {
			return "", "", err
		}
		g.line("%s = %s; %s = %s;", tl, bl, th, bh)
		g.indent--
		g.line("}")
		return tl, th, nil
	case *ir.Seq:
		if err := g.stmts(x.Stmts); err != nil {
			return "", "", err
		}
		return g.expr64(x.X)
	}
	return "", "", fmt.Errorf("unhandled i64 expression %T", e)
}

// capture64 evaluates an i64 expression into simple variables (safe for
// multiple uses).
func (g *jsGen) capture64(e ir.Expr) (lo, hi string, err error) {
	lo, hi, err = g.expr64(e)
	if err != nil {
		return
	}
	if !isSimpleJS(lo) && !isJSLiteral(lo) {
		t := g.newTmp()
		g.line("var %s = (%s)|0;", t, lo)
		lo = t
	}
	if !isSimpleJS(hi) && !isJSLiteral(hi) {
		t := g.newTmp()
		g.line("var %s = (%s)|0;", t, hi)
		hi = t
	}
	return lo, hi, nil
}

func (g *jsGen) bin64(x *ir.Bin) (string, string, error) {
	al, ah, err := g.capture64(x.X)
	if err != nil {
		return "", "", err
	}
	bl, bh, err := g.capture64(x.Y)
	if err != nil {
		return "", "", err
	}
	inlinePair := func(lo, hi string) (string, string, error) {
		return lo, hi, nil
	}
	helper := func(name string, args ...string) (string, string, error) {
		g.line("%s(%s);", name, strings.Join(args, ", "))
		tl, th := g.newTmp(), g.newTmp()
		g.line("var %s = __hl, %s = __hh;", tl, th)
		return tl, th, nil
	}
	switch x.Op {
	case ir.OpAdd:
		return helper("__i64add", al, ah, bl, bh)
	case ir.OpSub:
		return helper("__i64sub", al, ah, bl, bh)
	case ir.OpMul:
		return helper("__i64mul", al, ah, bl, bh)
	case ir.OpDiv:
		if x.Unsigned {
			return helper("__i64divu", al, ah, bl, bh)
		}
		return helper("__i64divs", al, ah, bl, bh)
	case ir.OpRem:
		if x.Unsigned {
			lo, hi, err := helper("__i64divu", al, ah, bl, bh)
			if err != nil {
				return "", "", err
			}
			_ = lo
			_ = hi
			tl, th := g.newTmp(), g.newTmp()
			g.line("var %s = __rl, %s = __rh;", tl, th)
			return tl, th, nil
		}
		return helper("__i64rems", al, ah, bl, bh)
	case ir.OpAnd:
		return inlinePair(fmt.Sprintf("(%s & %s)", al, bl), fmt.Sprintf("(%s & %s)", ah, bh))
	case ir.OpOr:
		return inlinePair(fmt.Sprintf("(%s | %s)", al, bl), fmt.Sprintf("(%s | %s)", ah, bh))
	case ir.OpXor:
		return inlinePair(fmt.Sprintf("(%s ^ %s)", al, bl), fmt.Sprintf("(%s ^ %s)", ah, bh))
	case ir.OpShl:
		return helper("__i64shl", al, ah, fmt.Sprintf("(%s & 63)", bl))
	case ir.OpShr:
		if x.Unsigned {
			return helper("__i64shru", al, ah, fmt.Sprintf("(%s & 63)", bl))
		}
		return helper("__i64shrs", al, ah, fmt.Sprintf("(%s & 63)", bl))
	}
	return "", "", fmt.Errorf("unhandled i64 op %v", x.Op)
}

func (g *jsGen) un64(x *ir.Un) (string, string, error) {
	al, ah, err := g.capture64(x.X)
	if err != nil {
		return "", "", err
	}
	switch x.Op {
	case ir.OpNeg:
		g.line("__i64neg(%s, %s);", al, ah)
		tl, th := g.newTmp(), g.newTmp()
		g.line("var %s = __hl, %s = __hh;", tl, th)
		return tl, th, nil
	case ir.OpBitNot:
		return fmt.Sprintf("(%s ^ -1)", al), fmt.Sprintf("(%s ^ -1)", ah), nil
	}
	return "", "", fmt.Errorf("unhandled i64 unary %v", x.Op)
}

func (g *jsGen) conv64(x *ir.Conv) (string, string, error) {
	switch {
	case x.From == ir.I32 && x.To == ir.I64:
		a, err := g.expr(x.X)
		if err != nil {
			return "", "", err
		}
		t := g.captureI32(g.wrapAddr(a))
		if x.Signed {
			return t, fmt.Sprintf("(%s >> 31)", t), nil
		}
		return t, "0", nil
	case (x.From == ir.F64 || x.From == ir.F32) && x.To == ir.I64:
		a, err := g.expr(x.X)
		if err != nil {
			return "", "", err
		}
		g.line("__ftoi64(%s);", a)
		tl, th := g.newTmp(), g.newTmp()
		g.line("var %s = __hl, %s = __hh;", tl, th)
		return tl, th, nil
	case x.From == ir.I64 && x.To == ir.I64:
		return g.expr64(x.X)
	}
	return "", "", fmt.Errorf("unhandled conversion %v->%v in i64 context", x.From, x.To)
}
