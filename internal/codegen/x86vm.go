package codegen

import (
	"errors"
	"fmt"
	"math"

	"wasmbench/internal/ir"
)

// X86CostClass buckets x86 bytecode for cycle accounting.
type X86CostClass uint8

// Cost classes.
const (
	XCConst X86CostClass = iota
	XCMov
	XCAlu
	XCMul
	XCDiv
	XCFAlu
	XCFMul
	XCFDiv
	XCLoad
	XCStore
	XCBranch
	XCCall
	XCConv
	XCHost
	XCVec // SIMD-absorbed
	NumX86CostClasses
)

// X86CostTable holds per-class virtual-cycle costs.
type X86CostTable [NumX86CostClasses]float64

// DefaultX86Cost approximates a modern out-of-order x86 core (relative
// throughput costs).
func DefaultX86Cost() X86CostTable {
	var t X86CostTable
	t[XCConst] = 0.3
	t[XCMov] = 0.3
	t[XCAlu] = 1.0
	t[XCMul] = 3.0
	t[XCDiv] = 22.0
	t[XCFAlu] = 1.5
	t[XCFMul] = 2.0
	t[XCFDiv] = 13.0
	t[XCLoad] = 1.4
	t[XCStore] = 1.4
	t[XCBranch] = 1.2
	t[XCCall] = 9.0
	t[XCConv] = 1.5
	t[XCHost] = 30.0
	t[XCVec] = 0.4
	return t
}

func x86Class(in *X86Instr) X86CostClass {
	if in.Vec {
		return XCVec
	}
	switch in.Kind {
	case XConst:
		return XCConst
	case XMov, XFrameAddr, XSPAdd:
		return XCMov
	case XBin:
		if in.T.IsFloat() {
			switch in.BinOp {
			case ir.OpMul:
				return XCFMul
			case ir.OpDiv:
				return XCFDiv
			default:
				return XCFAlu
			}
		}
		switch in.BinOp {
		case ir.OpMul:
			return XCMul
		case ir.OpDiv, ir.OpRem:
			return XCDiv
		default:
			return XCAlu
		}
	case XUn:
		if in.T.IsFloat() {
			if in.UnOp == ir.OpSqrt {
				return XCFDiv
			}
			return XCFAlu
		}
		return XCAlu
	case XConv:
		return XCConv
	case XLoad:
		return XCLoad
	case XStore:
		return XCStore
	case XJmp, XJz, XJnz, XJmpTable, XRet:
		return XCBranch
	case XCall:
		return XCCall
	case XCallHost:
		return XCHost
	}
	return XCAlu
}

// X86Config parameterizes execution.
type X86Config struct {
	Cost       X86CostTable
	StepLimit  uint64
	DepthLimit int
	// MemLimit caps the linear buffer (StackTop + HeapLimit by default).
	MemLimit uint32
}

// DefaultX86Config returns the standard native configuration.
func DefaultX86Config() X86Config {
	return X86Config{Cost: DefaultX86Cost(), DepthLimit: 10000}
}

// OutputEvent is one print_* call captured from the program (the study's
// differential-testing channel across backends).
type OutputEvent struct {
	Kind string // "i", "f", or "s"
	I    int64
	F    float64
	S    string
}

func (o OutputEvent) String() string {
	switch o.Kind {
	case "i":
		return fmt.Sprintf("i:%d", o.I)
	case "f":
		return fmt.Sprintf("f:%g", o.F)
	default:
		return "s:" + o.S
	}
}

// X86VM executes x86-like bytecode with cycle accounting.
type X86VM struct {
	p       *X86Program
	cfg     X86Config
	globals []uint64
	mem     []byte
	memPeak uint32
	cycles  float64
	steps   uint64
	depth   int
	Output  []OutputEvent
}

// Errors.
var (
	ErrX86StepLimit = errors.New("x86vm: step limit exceeded")
	ErrX86OOB       = errors.New("x86vm: out-of-bounds memory access")
	ErrX86OOM       = errors.New("x86vm: out of memory")
	ErrX86Depth     = errors.New("x86vm: call depth exceeded")
	ErrX86DivZero   = errors.New("x86vm: integer divide by zero")
	ErrX86Trap      = errors.New("x86vm: trap")
)

// NewX86VM instantiates the program: allocates memory (static + stack,
// growing toward the heap limit) and copies data segments.
func NewX86VM(p *X86Program, cfg X86Config) *X86VM {
	if cfg.DepthLimit == 0 {
		cfg.DepthLimit = 10000
	}
	if cfg.MemLimit == 0 {
		cfg.MemLimit = p.StackTop + p.HeapLimit
	}
	vm := &X86VM{p: p, cfg: cfg}
	vm.globals = append([]uint64(nil), p.Globals...)
	vm.mem = make([]byte, p.StackTop)
	vm.memPeak = p.StackTop
	for _, d := range p.Data {
		copy(vm.mem[d.Addr:], d.Bytes)
	}
	return vm
}

// Cycles returns accumulated virtual cycles.
func (vm *X86VM) Cycles() float64 { return vm.cycles }

// Steps returns the dynamic instruction count.
func (vm *X86VM) Steps() uint64 { return vm.steps }

// PeakMemoryBytes reports the linear-buffer high-water mark.
func (vm *X86VM) PeakMemoryBytes() uint64 { return uint64(vm.memPeak) }

// Memory returns the live linear buffer (the differential oracle
// checksums it after a run; callers must not retain it across Run calls).
func (vm *X86VM) Memory() []byte { return vm.mem }

// Run executes main and returns its value.
func (vm *X86VM) Run() (uint64, error) {
	return vm.call(vm.p.MainFunc, nil)
}

// Call executes a function by index.
func (vm *X86VM) Call(idx int, args []uint64) (uint64, error) {
	return vm.call(idx, args)
}

func (vm *X86VM) call(idx int, args []uint64) (uint64, error) {
	f := vm.p.Funcs[idx]
	vm.depth++
	if vm.depth > vm.cfg.DepthLimit {
		vm.depth--
		return 0, ErrX86Depth
	}
	defer func() { vm.depth-- }()

	regs := make([]uint64, f.NRegs)
	copy(regs, args)
	var result uint64

	cost := &vm.cfg.Cost
	code := f.Code
	pc := 0
	for pc < len(code) {
		in := &code[pc]
		vm.cycles += cost[x86Class(in)]
		vm.steps++
		if vm.cfg.StepLimit != 0 && vm.steps > vm.cfg.StepLimit {
			return 0, ErrX86StepLimit
		}
		switch in.Kind {
		case XConst:
			regs[in.Dst] = uint64(in.Imm)
		case XMov:
			v := vm.read(regs, &result, in.A)
			vm.write(regs, &result, in.Dst, v)
		case XFrameAddr:
			regs[in.Dst] = uint64(uint32(vm.globals[vm.p.SP]) + uint32(in.Imm))
		case XSPAdd:
			vm.globals[vm.p.SP] = uint64(uint32(vm.globals[vm.p.SP]) + uint32(int32(in.Imm)))
		case XBin:
			a := vm.read(regs, &result, in.A)
			b := vm.read(regs, &result, in.B)
			v, err := evalBin(in, a, b)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case XUn:
			a := vm.read(regs, &result, in.A)
			regs[in.Dst] = evalUn(in, a)
		case XConv:
			a := vm.read(regs, &result, in.A)
			v, err := evalConv(in, a)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case XLoad:
			a := uint32(vm.read(regs, &result, in.A))
			v, err := vm.load(a, in.Mem)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case XStore:
			a := uint32(vm.read(regs, &result, in.A))
			v := vm.read(regs, &result, in.B)
			if err := vm.store(a, in.Mem, v); err != nil {
				return 0, err
			}
		case XJmp:
			pc = int(in.Target)
			continue
		case XJz:
			if uint32(vm.read(regs, &result, in.A)) == 0 {
				pc = int(in.Target)
				continue
			}
		case XJnz:
			if uint32(vm.read(regs, &result, in.A)) != 0 {
				pc = int(in.Target)
				continue
			}
		case XJmpTable:
			idx := int32(uint32(vm.read(regs, &result, in.A)))
			if idx >= 0 && int(idx) < len(in.Table) {
				pc = int(in.Table[idx])
			} else {
				pc = int(in.Target)
			}
			continue
		case XCall:
			callArgs := make([]uint64, len(in.Args))
			for i, r := range in.Args {
				callArgs[i] = vm.read(regs, &result, r)
			}
			v, err := vm.call(int(in.Imm), callArgs)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case XCallHost:
			v, err := vm.callHost(in, regs, &result)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case XRet:
			if in.A == resultReg {
				return result, nil
			}
			if in.A >= 0 {
				return regs[in.A], nil
			}
			return 0, nil
		}
		pc++
	}
	return result, nil
}

func (vm *X86VM) read(regs []uint64, result *uint64, r int32) uint64 {
	switch {
	case r >= 0:
		return regs[r]
	case r == resultReg:
		return *result
	default:
		return vm.globals[-2-r]
	}
}

func (vm *X86VM) write(regs []uint64, result *uint64, r int32, v uint64) {
	switch {
	case r >= 0:
		regs[r] = v
	case r == resultReg:
		*result = v
	default:
		vm.globals[-2-r] = v
	}
}

func (vm *X86VM) ensure(addr uint32, size int) error {
	end := uint64(addr) + uint64(size)
	if end > uint64(len(vm.mem)) {
		if end > uint64(vm.cfg.MemLimit) {
			return fmt.Errorf("%w: access at %d", ErrX86OOB, addr)
		}
		grown := make([]byte, vm.cfg.MemLimit)
		copy(grown, vm.mem)
		vm.mem = grown
		vm.memPeak = vm.cfg.MemLimit
	}
	return nil
}

func (vm *X86VM) load(addr uint32, m ir.MemType) (uint64, error) {
	if err := vm.ensure(addr, m.Size()); err != nil {
		return 0, err
	}
	b := vm.mem[addr:]
	switch m {
	case ir.MemI8U:
		return uint64(b[0]), nil
	case ir.MemI8S:
		return uint64(uint32(int32(int8(b[0])))), nil
	case ir.MemI16U:
		return uint64(le16(b)), nil
	case ir.MemI16S:
		return uint64(uint32(int32(int16(le16(b))))), nil
	case ir.MemI32, ir.MemF32:
		return uint64(le32(b)), nil
	default:
		return le64(b), nil
	}
}

func (vm *X86VM) store(addr uint32, m ir.MemType, v uint64) error {
	if err := vm.ensure(addr, m.Size()); err != nil {
		return err
	}
	b := vm.mem[addr:]
	switch m {
	case ir.MemI8U, ir.MemI8S:
		b[0] = byte(v)
	case ir.MemI16U, ir.MemI16S:
		b[0], b[1] = byte(v), byte(v>>8)
	case ir.MemI32, ir.MemF32:
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	default:
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
	return nil
}

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func le64(b []byte) uint64 { return uint64(le32(b)) | uint64(le32(b[4:]))<<32 }

func (vm *X86VM) callHost(in *X86Instr, regs []uint64, result *uint64) (uint64, error) {
	arg := func(i int) uint64 { return vm.read(regs, result, in.Args[i]) }
	switch in.Host {
	case "print_i":
		vm.Output = append(vm.Output, OutputEvent{Kind: "i", I: int64(arg(0))})
		return 0, nil
	case "print_f":
		vm.Output = append(vm.Output, OutputEvent{Kind: "f", F: math.Float64frombits(arg(0))})
		return 0, nil
	case "print_s":
		addr := uint32(arg(0))
		s := vm.readCString(addr)
		vm.Output = append(vm.Output, OutputEvent{Kind: "s", S: s})
		return 0, nil
	case "sin":
		return math.Float64bits(math.Sin(math.Float64frombits(arg(0)))), nil
	case "cos":
		return math.Float64bits(math.Cos(math.Float64frombits(arg(0)))), nil
	case "exp":
		return math.Float64bits(math.Exp(math.Float64frombits(arg(0)))), nil
	case "log":
		return math.Float64bits(math.Log(math.Float64frombits(arg(0)))), nil
	case "pow":
		return math.Float64bits(math.Pow(math.Float64frombits(arg(0)), math.Float64frombits(arg(1)))), nil
	case "fmod":
		return math.Float64bits(math.Mod(math.Float64frombits(arg(0)), math.Float64frombits(arg(1)))), nil
	case "memsize":
		return uint64(len(vm.mem) / 65536), nil
	case "memgrow":
		pages := uint32(arg(0))
		old := uint32(len(vm.mem) / 65536)
		newLen := uint64(len(vm.mem)) + uint64(pages)*65536
		if newLen > uint64(vm.cfg.MemLimit) {
			return uint64(uint32(0xFFFFFFFF)), nil // -1
		}
		grown := make([]byte, newLen)
		copy(grown, vm.mem)
		vm.mem = grown
		if uint32(newLen) > vm.memPeak {
			vm.memPeak = uint32(newLen)
		}
		return uint64(old), nil
	case "heapbase":
		return uint64(vm.p.StackTop), nil
	case "heaplimit":
		return uint64(vm.p.StackTop + vm.p.HeapLimit), nil
	case "trap":
		return 0, ErrX86Trap
	}
	return 0, fmt.Errorf("x86vm: unknown host function %q", in.Host)
}

func (vm *X86VM) readCString(addr uint32) string {
	var out []byte
	for int(addr) < len(vm.mem) && vm.mem[addr] != 0 {
		out = append(out, vm.mem[addr])
		addr++
	}
	return string(out)
}

func evalBin(in *X86Instr, a, b uint64) (uint64, error) {
	switch in.T {
	case ir.I32:
		x, y := uint32(a), uint32(b)
		xs, ys := int32(x), int32(y)
		switch in.BinOp {
		case ir.OpAdd:
			return u32(x + y), nil
		case ir.OpSub:
			return u32(x - y), nil
		case ir.OpMul:
			return u32(x * y), nil
		case ir.OpDiv:
			if y == 0 {
				return 0, ErrX86DivZero
			}
			if in.Unsigned {
				return u32(x / y), nil
			}
			if xs == math.MinInt32 && ys == -1 {
				return 0, ErrX86Trap
			}
			return u32(uint32(xs / ys)), nil
		case ir.OpRem:
			if y == 0 {
				return 0, ErrX86DivZero
			}
			if in.Unsigned {
				return u32(x % y), nil
			}
			if xs == math.MinInt32 && ys == -1 {
				return 0, nil
			}
			return u32(uint32(xs % ys)), nil
		case ir.OpAnd:
			return u32(x & y), nil
		case ir.OpOr:
			return u32(x | y), nil
		case ir.OpXor:
			return u32(x ^ y), nil
		case ir.OpShl:
			return u32(x << (y & 31)), nil
		case ir.OpShr:
			if in.Unsigned {
				return u32(x >> (y & 31)), nil
			}
			return u32(uint32(xs >> (y & 31))), nil
		default:
			return evalCmp(in, uint64(x), uint64(y), int64(xs), int64(ys))
		}
	case ir.I64:
		xs, ys := int64(a), int64(b)
		switch in.BinOp {
		case ir.OpAdd:
			return a + b, nil
		case ir.OpSub:
			return a - b, nil
		case ir.OpMul:
			return a * b, nil
		case ir.OpDiv:
			if b == 0 {
				return 0, ErrX86DivZero
			}
			if in.Unsigned {
				return a / b, nil
			}
			if xs == math.MinInt64 && ys == -1 {
				return 0, ErrX86Trap
			}
			return uint64(xs / ys), nil
		case ir.OpRem:
			if b == 0 {
				return 0, ErrX86DivZero
			}
			if in.Unsigned {
				return a % b, nil
			}
			if xs == math.MinInt64 && ys == -1 {
				return 0, nil
			}
			return uint64(xs % ys), nil
		case ir.OpAnd:
			return a & b, nil
		case ir.OpOr:
			return a | b, nil
		case ir.OpXor:
			return a ^ b, nil
		case ir.OpShl:
			return a << (b & 63), nil
		case ir.OpShr:
			if in.Unsigned {
				return a >> (b & 63), nil
			}
			return uint64(xs >> (b & 63)), nil
		default:
			return evalCmp(in, a, b, xs, ys)
		}
	case ir.F32:
		x := math.Float32frombits(uint32(a))
		y := math.Float32frombits(uint32(b))
		switch in.BinOp {
		case ir.OpAdd:
			return uint64(math.Float32bits(x + y)), nil
		case ir.OpSub:
			return uint64(math.Float32bits(x - y)), nil
		case ir.OpMul:
			return uint64(math.Float32bits(x * y)), nil
		case ir.OpDiv:
			return uint64(math.Float32bits(x / y)), nil
		case ir.OpMin:
			return uint64(math.Float32bits(float32(math.Min(float64(x), float64(y))))), nil
		case ir.OpMax:
			return uint64(math.Float32bits(float32(math.Max(float64(x), float64(y))))), nil
		default:
			return fcmp(in.BinOp, float64(x), float64(y))
		}
	case ir.F64:
		x := math.Float64frombits(a)
		y := math.Float64frombits(b)
		switch in.BinOp {
		case ir.OpAdd:
			return math.Float64bits(x + y), nil
		case ir.OpSub:
			return math.Float64bits(x - y), nil
		case ir.OpMul:
			return math.Float64bits(x * y), nil
		case ir.OpDiv:
			return math.Float64bits(x / y), nil
		case ir.OpMin:
			return math.Float64bits(math.Min(x, y)), nil
		case ir.OpMax:
			return math.Float64bits(math.Max(x, y)), nil
		default:
			return fcmp(in.BinOp, x, y)
		}
	}
	return 0, fmt.Errorf("x86vm: bad bin type %v", in.T)
}

func u32(v uint32) uint64 { return uint64(v) }

func evalCmp(in *X86Instr, a, b uint64, as, bs int64) (uint64, error) {
	var c bool
	if in.Unsigned {
		switch in.BinOp {
		case ir.OpEq:
			c = a == b
		case ir.OpNe:
			c = a != b
		case ir.OpLt:
			c = a < b
		case ir.OpLe:
			c = a <= b
		case ir.OpGt:
			c = a > b
		case ir.OpGe:
			c = a >= b
		default:
			return 0, fmt.Errorf("x86vm: bad int op %v", in.BinOp)
		}
	} else {
		switch in.BinOp {
		case ir.OpEq:
			c = as == bs
		case ir.OpNe:
			c = as != bs
		case ir.OpLt:
			c = as < bs
		case ir.OpLe:
			c = as <= bs
		case ir.OpGt:
			c = as > bs
		case ir.OpGe:
			c = as >= bs
		default:
			return 0, fmt.Errorf("x86vm: bad int op %v", in.BinOp)
		}
	}
	if c {
		return 1, nil
	}
	return 0, nil
}

func fcmp(op ir.BinOp, x, y float64) (uint64, error) {
	var c bool
	switch op {
	case ir.OpEq:
		c = x == y
	case ir.OpNe:
		c = x != y
	case ir.OpLt:
		c = x < y
	case ir.OpLe:
		c = x <= y
	case ir.OpGt:
		c = x > y
	case ir.OpGe:
		c = x >= y
	default:
		return 0, fmt.Errorf("x86vm: bad float op %v", op)
	}
	if c {
		return 1, nil
	}
	return 0, nil
}

func evalUn(in *X86Instr, a uint64) uint64 {
	switch in.T {
	case ir.I32:
		switch in.UnOp {
		case ir.OpNeg:
			return u32(-uint32(a))
		case ir.OpEqz:
			if uint32(a) == 0 {
				return 1
			}
			return 0
		case ir.OpBitNot:
			return u32(^uint32(a))
		}
	case ir.I64:
		switch in.UnOp {
		case ir.OpNeg:
			return -a
		case ir.OpEqz:
			if a == 0 {
				return 1
			}
			return 0
		case ir.OpBitNot:
			return ^a
		}
	case ir.F32:
		f := math.Float32frombits(uint32(a))
		switch in.UnOp {
		case ir.OpNeg:
			return uint64(math.Float32bits(-f))
		case ir.OpAbs:
			return uint64(math.Float32bits(float32(math.Abs(float64(f)))))
		case ir.OpSqrt:
			return uint64(math.Float32bits(float32(math.Sqrt(float64(f)))))
		case ir.OpFloor:
			return uint64(math.Float32bits(float32(math.Floor(float64(f)))))
		case ir.OpCeil:
			return uint64(math.Float32bits(float32(math.Ceil(float64(f)))))
		case ir.OpTrunc:
			return uint64(math.Float32bits(float32(math.Trunc(float64(f)))))
		}
	case ir.F64:
		f := math.Float64frombits(a)
		switch in.UnOp {
		case ir.OpNeg:
			return math.Float64bits(-f)
		case ir.OpAbs:
			return math.Float64bits(math.Abs(f))
		case ir.OpSqrt:
			return math.Float64bits(math.Sqrt(f))
		case ir.OpFloor:
			return math.Float64bits(math.Floor(f))
		case ir.OpCeil:
			return math.Float64bits(math.Ceil(f))
		case ir.OpTrunc:
			return math.Float64bits(math.Trunc(f))
		}
	}
	return 0
}

func evalConv(in *X86Instr, a uint64) (uint64, error) {
	from := in.T
	to := ir.Type(in.Imm)
	signed := !in.Unsigned
	var v uint64
	switch {
	case from == ir.I32 && to == ir.I32:
		v = a
	case from == ir.I32 && to == ir.I64:
		if signed {
			v = uint64(int64(int32(uint32(a))))
		} else {
			v = uint64(uint32(a))
		}
	case from == ir.I64 && to == ir.I32:
		v = u32(uint32(a))
	case from == ir.I32 && to == ir.F32:
		if signed {
			v = uint64(math.Float32bits(float32(int32(uint32(a)))))
		} else {
			v = uint64(math.Float32bits(float32(uint32(a))))
		}
	case from == ir.I32 && to == ir.F64:
		if signed {
			v = math.Float64bits(float64(int32(uint32(a))))
		} else {
			v = math.Float64bits(float64(uint32(a)))
		}
	case from == ir.I64 && to == ir.F32:
		if signed {
			v = uint64(math.Float32bits(float32(int64(a))))
		} else {
			v = uint64(math.Float32bits(float32(a)))
		}
	case from == ir.I64 && to == ir.F64:
		if signed {
			v = math.Float64bits(float64(int64(a)))
		} else {
			v = math.Float64bits(float64(a))
		}
	case from == ir.F32 && to == ir.I32:
		f := float64(math.Float32frombits(uint32(a)))
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483649 {
			return 0, ErrX86Trap
		}
		if signed {
			v = u32(uint32(int32(f)))
		} else {
			if f <= -1 || f >= 4294967296 {
				return 0, ErrX86Trap
			}
			v = u32(uint32(f))
		}
	case from == ir.F64 && to == ir.I32:
		f := math.Float64frombits(a)
		if math.IsNaN(f) || f >= 4294967296 || f < -2147483649 {
			return 0, ErrX86Trap
		}
		if signed {
			if f >= 2147483648 {
				return 0, ErrX86Trap
			}
			v = u32(uint32(int32(f)))
		} else {
			if f <= -1 {
				return 0, ErrX86Trap
			}
			v = u32(uint32(f))
		}
	case from == ir.F32 && to == ir.I64:
		f := float64(math.Float32frombits(uint32(a)))
		if math.IsNaN(f) {
			return 0, ErrX86Trap
		}
		if signed {
			v = uint64(int64(f))
		} else {
			v = uint64(f)
		}
	case from == ir.F64 && to == ir.I64:
		f := math.Float64frombits(a)
		if math.IsNaN(f) {
			return 0, ErrX86Trap
		}
		if signed {
			v = uint64(int64(f))
		} else {
			v = uint64(f)
		}
	case from == ir.F32 && to == ir.F64:
		v = math.Float64bits(float64(math.Float32frombits(uint32(a))))
	case from == ir.F64 && to == ir.F32:
		v = uint64(math.Float32bits(float32(math.Float64frombits(a))))
	default:
		return 0, fmt.Errorf("x86vm: bad conversion %v->%v", from, to)
	}
	if in.Narrow != 0 && to == ir.I32 {
		x := uint32(v)
		if in.Narrow == 8 {
			if in.NSigned {
				x = uint32(int32(int8(x)))
			} else {
				x = uint32(uint8(x))
			}
		} else {
			if in.NSigned {
				x = uint32(int32(int16(x)))
			} else {
				x = uint32(uint16(x))
			}
		}
		v = u32(x)
	}
	return v, nil
}
