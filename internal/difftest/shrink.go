package difftest

// Greedy structural test-case minimizer. Given a program whose oracle
// check fails, Shrink repeatedly tries semantic-shrinking edits — deleting
// statements, splicing loop/branch bodies into their parent, gutting
// helpers, and replacing expressions with literals or their own operands —
// keeping an edit only when the failure still reproduces. Every edit works
// on a fresh Clone, so candidate programs that no longer compile (e.g. a
// deleted helper that is still called) are simply rejected by the
// predicate rather than corrupting the current best program.

// Shrink minimizes prog while repro keeps returning true. repro must
// return true for prog itself (callers check this; Shrink just assumes
// it). maxAttempts bounds the number of repro invocations — each one
// typically compiles and runs the candidate on several backends, so this
// budget is what keeps minimization fast. The argument is never mutated.
func Shrink(prog *Prog, repro func(*Prog) bool, maxAttempts int) *Prog {
	cur := prog.Clone()
	attempts := 0
	try := func(cand *Prog) bool {
		if attempts >= maxAttempts {
			return false
		}
		attempts++
		if repro(cand) {
			cur = cand
			return true
		}
		return false
	}
	for {
		progress := false
		if shrinkDeleteStmts(&cur, try) {
			progress = true
		}
		if shrinkUnwrap(&cur, try) {
			progress = true
		}
		if shrinkHelpers(&cur, try) {
			progress = true
		}
		if shrinkExprs(&cur, try) {
			progress = true
		}
		if !progress || attempts >= maxAttempts {
			return cur
		}
	}
}

// bodyLists enumerates every addressable statement list in deterministic
// order. Clones have identical structure, so index k addresses the same
// list in a clone as in the original.
func bodyLists(p *Prog) []*[]stmt {
	var out []*[]stmt
	var walk func(b *[]stmt)
	walk = func(b *[]stmt) {
		out = append(out, b)
		for _, s := range *b {
			switch st := s.(type) {
			case *sIf:
				walk(&st.then)
				walk(&st.els)
			case *sFor:
				walk(&st.body)
			case *sWhile:
				walk(&st.body)
			case *sSwitch:
				for i := range st.cases {
					walk(&st.cases[i].body)
				}
				walk(&st.def)
			}
		}
	}
	for _, h := range p.helpers {
		walk(&h.body)
	}
	walk(&p.main)
	return out
}

// shrinkDeleteStmts deletes one statement at a time, rescanning after
// every success (a deletion changes the list shape).
func shrinkDeleteStmts(cur **Prog, try func(*Prog) bool) bool {
	progress := false
	for {
		again := false
		lists := bodyLists(*cur)
	scan:
		for bi := range lists {
			for si := len(*lists[bi]) - 1; si >= 0; si-- {
				cand := (*cur).Clone()
				cl := *bodyLists(cand)[bi]
				cl = append(cl[:si:si], cl[si+1:]...)
				*bodyLists(cand)[bi] = cl
				if try(cand) {
					progress, again = true, true
					break scan
				}
			}
		}
		if !again {
			return progress
		}
	}
}

// shrinkUnwrap replaces a compound statement with its inner body: if→then
// (or else), loops→body, switch→one arm. Loop variables referenced by a
// spliced body stay declared because renderLoopVarDecls derives
// declarations from variable uses, not just surviving loop headers.
func shrinkUnwrap(cur **Prog, try func(*Prog) bool) bool {
	progress := false
	for {
		again := false
		lists := bodyLists(*cur)
	scan:
		for bi := range lists {
			for si := range *lists[bi] {
				var inners [][]stmt
				switch st := (*lists[bi])[si].(type) {
				case *sIf:
					inners = [][]stmt{st.then, st.els}
				case *sFor:
					inners = [][]stmt{st.body}
				case *sWhile:
					inners = [][]stmt{st.body}
				case *sSwitch:
					for _, cs := range st.cases {
						inners = append(inners, cs.body)
					}
					inners = append(inners, st.def)
				default:
					continue
				}
				for vi, inner := range inners {
					if len(inner) == 0 {
						continue // plain deletion handles the empty case
					}
					_ = vi
					cand := (*cur).Clone()
					cl := *bodyLists(cand)[bi]
					// Re-derive the variant body on the clone.
					var repl []stmt
					switch st := cl[si].(type) {
					case *sIf:
						repl = [][]stmt{st.then, st.els}[vi]
					case *sFor:
						repl = st.body
					case *sWhile:
						repl = st.body
					case *sSwitch:
						var all [][]stmt
						for _, cs := range st.cases {
							all = append(all, cs.body)
						}
						all = append(all, st.def)
						repl = all[vi]
					}
					spliced := append([]stmt{}, cl[:si]...)
					spliced = append(spliced, repl...)
					spliced = append(spliced, cl[si+1:]...)
					*bodyLists(cand)[bi] = spliced
					if try(cand) {
						progress, again = true, true
						break scan
					}
				}
			}
		}
		if !again {
			return progress
		}
	}
}

// shrinkHelpers guts helper functions (empty body, literal result) and
// tries dropping them outright. Dropping a helper that is still called
// makes the candidate fail to compile, which the predicate rejects.
func shrinkHelpers(cur **Prog, try func(*Prog) bool) bool {
	progress := false
	for hi := len((*cur).helpers) - 1; hi >= 0; hi-- {
		drop := (*cur).Clone()
		drop.helpers = append(drop.helpers[:hi:hi], drop.helpers[hi+1:]...)
		if try(drop) {
			progress = true
			continue
		}
		h := (*cur).helpers[hi]
		if len(h.body) > 0 || !isLitOne(h.result) {
			gut := (*cur).Clone()
			gh := gut.helpers[hi]
			gh.body = nil
			gh.result = litOne(gh.ret)
			if try(gut) {
				progress = true
			}
		}
	}
	return progress
}

func litOne(t typ) expr {
	if t == tDouble {
		return &eLit{ty: t, f: 1}
	}
	return &eLit{ty: t, i: 1}
}

func isLitOne(e expr) bool {
	l, ok := e.(*eLit)
	return ok && ((l.ty == tDouble && l.f == 1) || (l.ty != tDouble && l.i == 1))
}

// exprSlot is one rewritable expression position.
type exprSlot struct {
	get func() expr
	set func(expr)
}

// exprSlots enumerates every expression position in deterministic order,
// parents before children.
func exprSlots(p *Prog) []exprSlot {
	var out []exprSlot
	var walkE func(get func() expr, set func(expr))
	walkE = func(get func() expr, set func(expr)) {
		out = append(out, exprSlot{get, set})
		switch x := get().(type) {
		case *eIdx:
			walkE(func() expr { return x.i }, func(e expr) { x.i = e })
			if x.j != nil {
				walkE(func() expr { return x.j }, func(e expr) { x.j = e })
			}
		case *eBin:
			walkE(func() expr { return x.x }, func(e expr) { x.x = e })
			walkE(func() expr { return x.y }, func(e expr) { x.y = e })
		case *eCmp:
			walkE(func() expr { return x.x }, func(e expr) { x.x = e })
			walkE(func() expr { return x.y }, func(e expr) { x.y = e })
		case *eUn:
			walkE(func() expr { return x.x }, func(e expr) { x.x = e })
		case *eCast:
			walkE(func() expr { return x.x }, func(e expr) { x.x = e })
		case *eF2I:
			walkE(func() expr { return x.x }, func(e expr) { x.x = e })
		case *eCall:
			for i := range x.args {
				i := i
				walkE(func() expr { return x.args[i] }, func(e expr) { x.args[i] = e })
			}
		case *eCond:
			walkE(func() expr { return x.c }, func(e expr) { x.c = e })
			walkE(func() expr { return x.x }, func(e expr) { x.x = e })
			walkE(func() expr { return x.y }, func(e expr) { x.y = e })
		}
	}
	var walkS func(body []stmt)
	walkS = func(body []stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *sAssign:
				if st.idx != nil {
					walkE(func() expr { return st.idx }, func(e expr) { st.idx = e })
				}
				if st.idx2 != nil {
					walkE(func() expr { return st.idx2 }, func(e expr) { st.idx2 = e })
				}
				walkE(func() expr { return st.rhs }, func(e expr) { st.rhs = e })
			case *sIf:
				walkE(func() expr { return st.cond }, func(e expr) { st.cond = e })
				walkS(st.then)
				walkS(st.els)
			case *sFor:
				walkS(st.body)
			case *sWhile:
				walkS(st.body)
			case *sSwitch:
				walkE(func() expr { return st.tag }, func(e expr) { st.tag = e })
				for i := range st.cases {
					walkS(st.cases[i].body)
				}
				walkS(st.def)
			case *sBreakIf:
				walkE(func() expr { return st.cond }, func(e expr) { st.cond = e })
			case *sPrint:
				walkE(func() expr { return st.x }, func(e expr) { st.x = e })
			case *sCall:
				for i := range st.call.args {
					i := i
					walkE(func() expr { return st.call.args[i] }, func(e expr) { st.call.args[i] = e })
				}
			}
		}
	}
	for _, h := range p.helpers {
		walkS(h.body)
		walkE(func() expr { return h.result }, func(e expr) { h.result = e })
	}
	walkS(p.main)
	return out
}

// shrinkExprs replaces expressions with smaller same-typed ones: the
// literal 0, the literal 1, or one of the expression's own operands.
func shrinkExprs(cur **Prog, try func(*Prog) bool) bool {
	progress := false
	n := len(exprSlots(*cur))
	for k := 0; k < n; k++ {
		slots := exprSlots(*cur)
		if k >= len(slots) {
			break
		}
		e := slots[k].get()
		for _, cand := range replacements(e) {
			c := (*cur).Clone()
			cs := exprSlots(c)
			if k >= len(cs) {
				break
			}
			cs[k].set(cand)
			if try(c) {
				progress = true
				// Slot count may have changed (children vanished); the
				// re-enumeration at the top of the loop resyncs.
				break
			}
		}
	}
	return progress
}

// replacements yields same-typed smaller candidates for e, simplest first.
func replacements(e expr) []expr {
	t := e.t()
	var out []expr
	if l, ok := e.(*eLit); ok {
		// Already a literal: only offer shrinking the value itself.
		if t == tDouble {
			if l.f != 0 {
				out = append(out, &eLit{ty: t, f: 0})
			}
			if l.f != 1 && l.f != 0 {
				out = append(out, &eLit{ty: t, f: 1})
			}
		} else {
			if l.i != 0 {
				out = append(out, &eLit{ty: t})
			}
			if l.i != 1 && l.i != 0 {
				out = append(out, &eLit{ty: t, i: 1})
			}
		}
		return out
	}
	if t == tDouble {
		out = append(out, &eLit{ty: t, f: 0}, &eLit{ty: t, f: 1})
	} else {
		out = append(out, &eLit{ty: t}, &eLit{ty: t, i: 1})
	}
	switch x := e.(type) {
	case *eBin:
		out = append(out, x.x.clone(), x.y.clone())
	case *eCond:
		out = append(out, x.x.clone(), x.y.clone())
	case *eUn:
		if x.x.t() == t {
			out = append(out, x.x.clone())
		}
	}
	return out
}
