// Package difftest is the cross-backend differential fuzzing subsystem:
// a seeded, deterministic random MiniC program generator, an oracle that
// compiles each program through internal/compiler and runs it on every
// backend (the wasmvm mode×fusion×regtier matrix, jsvm across JIT tiers,
// x86vm), a greedy test-case minimizer, and a committed regression corpus.
//
// The paper's methodology (§3) rests on the premise that the Wasm, JS, and
// native builds of each kernel compute the same thing; this package checks
// that premise adversarially, in the spirit of Csmith-style differential
// compiler testing. Generated programs are well-typed and trap-free by
// construction (guarded divisions, masked shifts and array indexes,
// range-checked float→int casts, bounded loops), so any backend error or
// observable mismatch is a divergence, never an expected trap.
package difftest

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 PRNG: tiny, deterministic, and identical on every
// platform, so a seed names the same program forever.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	v := r.intn(total)
	for i, w := range weights {
		if v < w {
			return i
		}
		v -= w
	}
	return len(weights) - 1
}

// typ is a generated-program value type.
type typ int

// Value types the generator uses.
const (
	tInt typ = iota
	tUInt
	tLong
	tDouble
)

func (t typ) c() string {
	switch t {
	case tInt:
		return "int"
	case tUInt:
		return "unsigned"
	case tLong:
		return "long"
	default:
		return "double"
	}
}

// ---- Program AST ----
//
// The generator builds its own small AST rather than emitting text
// directly so the shrinker can delete statements and simplify expressions
// structurally while keeping the program well-typed (shrink.go).

type expr interface {
	t() typ
	render(b *strings.Builder)
	clone() expr
}

type stmt interface {
	renderStmt(b *strings.Builder, indent string)
	cloneStmt() stmt
}

// eLit is a literal.
type eLit struct {
	ty typ
	i  int64
	f  float64
}

func (e *eLit) t() typ { return e.ty }
func (e *eLit) render(b *strings.Builder) {
	switch e.ty {
	case tDouble:
		s := fmt.Sprintf("%g", e.f)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		fmt.Fprintf(b, "%s", s)
	case tUInt:
		fmt.Fprintf(b, "(unsigned)%d", uint32(e.i))
	case tLong:
		// An unsuffixed literal types by magnitude, so small long values
		// need the explicit cast (shift operands are not converted). The
		// parser reads the magnitude first, so LONG_MIN gets a (min+1)-1
		// spelling.
		if e.i == -9223372036854775808 {
			b.WriteString("(((long)(-9223372036854775807)) - ((long)(1)))")
			return
		}
		fmt.Fprintf(b, "(long)(%d)", e.i)
	default:
		fmt.Fprintf(b, "%d", e.i)
	}
}
func (e *eLit) clone() expr { c := *e; return &c }

// eVar references a scalar variable (global, local, param, or loop var).
type eVar struct {
	ty   typ
	name string
}

func (e *eVar) t() typ                    { return e.ty }
func (e *eVar) render(b *strings.Builder) { b.WriteString(e.name) }
func (e *eVar) clone() expr               { c := *e; return &c }

// eIdx loads from a global array; the index is masked at render time so
// any int expression is in-bounds by construction.
type eIdx struct {
	ty   typ
	arr  string
	mask int
	i    expr
	j    expr // second dimension (nil for 1D)
}

func (e *eIdx) t() typ { return e.ty }
func (e *eIdx) render(b *strings.Builder) {
	b.WriteString(e.arr)
	b.WriteString("[(")
	e.i.render(b)
	fmt.Fprintf(b, ") & %d]", e.mask)
	if e.j != nil {
		b.WriteString("[(")
		e.j.render(b)
		fmt.Fprintf(b, ") & %d]", e.mask)
	}
}
func (e *eIdx) clone() expr {
	c := *e
	c.i = e.i.clone()
	if e.j != nil {
		c.j = e.j.clone()
	}
	return &c
}

// eBin is arithmetic/bitwise. Render guards make it total: integer "/" and
// "%" get a nonzero denominator, shifts a masked count.
type eBin struct {
	ty   typ
	op   string
	x, y expr
}

func (e *eBin) t() typ { return e.ty }
func (e *eBin) render(b *strings.Builder) {
	switch {
	case (e.op == "/" || e.op == "%") && e.ty != tDouble:
		// Denominator in 1..16: total, and never INT_MIN/-1.
		b.WriteString("((")
		e.x.render(b)
		fmt.Fprintf(b, ") %s (((", e.op)
		e.y.render(b)
		b.WriteString(") & 15) + 1))")
	case e.op == "<<" || e.op == ">>":
		// The count is masked to the value width and cast to the left
		// operand's type: minic promotes shift operands independently, so
		// without the cast a long<<int reaches the IR as i64<<i32.
		width := 31
		if e.ty == tLong {
			width = 63
		}
		b.WriteString("((")
		e.x.render(b)
		fmt.Fprintf(b, ") %s ((%s)((", e.op, e.ty.c())
		e.y.render(b)
		fmt.Fprintf(b, ") & %d)))", width)
	default:
		b.WriteString("((")
		e.x.render(b)
		fmt.Fprintf(b, ") %s (", e.op)
		e.y.render(b)
		b.WriteString("))")
	}
}
func (e *eBin) clone() expr { c := *e; c.x = e.x.clone(); c.y = e.y.clone(); return &c }

// eCmp compares two same-typed operands; the result is int.
type eCmp struct {
	op   string
	x, y expr
}

func (e *eCmp) t() typ { return tInt }
func (e *eCmp) render(b *strings.Builder) {
	b.WriteString("((")
	e.x.render(b)
	fmt.Fprintf(b, ") %s (", e.op)
	e.y.render(b)
	b.WriteString("))")
}
func (e *eCmp) clone() expr { c := *e; c.x = e.x.clone(); c.y = e.y.clone(); return &c }

// eUn is unary minus / bitwise not / logical not.
type eUn struct {
	ty typ
	op string
	x  expr
}

func (e *eUn) t() typ { return e.ty }
func (e *eUn) render(b *strings.Builder) {
	fmt.Fprintf(b, "(%s(", e.op)
	e.x.render(b)
	b.WriteString("))")
}
func (e *eUn) clone() expr { c := *e; c.x = e.x.clone(); return &c }

// eCast converts between arithmetic types. float→int goes through the
// generated __f2i guard instead (eF2I), since the raw cast traps on
// out-of-range values on the Wasm and x86 backends.
type eCast struct {
	ty typ
	x  expr
}

func (e *eCast) t() typ { return e.ty }
func (e *eCast) render(b *strings.Builder) {
	fmt.Fprintf(b, "((%s)(", e.ty.c())
	e.x.render(b)
	b.WriteString("))")
}
func (e *eCast) clone() expr { c := *e; c.x = e.x.clone(); return &c }

// eF2I is the guarded float→int conversion (calls the emitted __f2i).
type eF2I struct{ x expr }

func (e *eF2I) t() typ { return tInt }
func (e *eF2I) render(b *strings.Builder) {
	b.WriteString("__f2i(")
	e.x.render(b)
	b.WriteString(")")
}
func (e *eF2I) clone() expr { c := *e; c.x = e.x.clone(); return &c }

// eCall calls a helper function or a math builtin.
type eCall struct {
	ty   typ
	name string
	args []expr
}

func (e *eCall) t() typ { return e.ty }
func (e *eCall) render(b *strings.Builder) {
	b.WriteString(e.name)
	b.WriteString("(")
	for i, a := range e.args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.render(b)
	}
	b.WriteString(")")
}
func (e *eCall) clone() expr {
	c := *e
	c.args = make([]expr, len(e.args))
	for i, a := range e.args {
		c.args[i] = a.clone()
	}
	return &c
}

// eCond is the ternary operator over same-typed arms.
type eCond struct {
	ty      typ
	c, x, y expr
}

func (e *eCond) t() typ { return e.ty }
func (e *eCond) render(b *strings.Builder) {
	b.WriteString("((")
	e.c.render(b)
	b.WriteString(") ? (")
	e.x.render(b)
	b.WriteString(") : (")
	e.y.render(b)
	b.WriteString("))")
}
func (e *eCond) clone() expr {
	c := *e
	c.c, c.x, c.y = e.c.clone(), e.x.clone(), e.y.clone()
	return &c
}

// ---- Statements ----

// sAssign writes a scalar or array element: name[op]= rhs.
type sAssign struct {
	target string // variable name, or array name when idx != nil
	ty     typ
	mask   int  // array mask
	idx    expr // nil for scalars
	idx2   expr // second dimension
	op     string
	rhs    expr
}

func (s *sAssign) renderStmt(b *strings.Builder, ind string) {
	b.WriteString(ind)
	b.WriteString(s.target)
	if s.idx != nil {
		b.WriteString("[(")
		s.idx.render(b)
		fmt.Fprintf(b, ") & %d]", s.mask)
		if s.idx2 != nil {
			b.WriteString("[(")
			s.idx2.render(b)
			fmt.Fprintf(b, ") & %d]", s.mask)
		}
	}
	fmt.Fprintf(b, " %s ", s.op)
	s.rhs.render(b)
	b.WriteString(";\n")
}
func (s *sAssign) cloneStmt() stmt {
	c := *s
	if s.idx != nil {
		c.idx = s.idx.clone()
	}
	if s.idx2 != nil {
		c.idx2 = s.idx2.clone()
	}
	c.rhs = s.rhs.clone()
	return &c
}

// sIf is if/else over generated bodies.
type sIf struct {
	cond expr
	then []stmt
	els  []stmt
}

func (s *sIf) renderStmt(b *strings.Builder, ind string) {
	b.WriteString(ind)
	b.WriteString("if (")
	s.cond.render(b)
	b.WriteString(") {\n")
	renderBody(b, s.then, ind+"\t")
	if len(s.els) > 0 {
		b.WriteString(ind)
		b.WriteString("} else {\n")
		renderBody(b, s.els, ind+"\t")
	}
	b.WriteString(ind)
	b.WriteString("}\n")
}
func (s *sIf) cloneStmt() stmt {
	return &sIf{cond: s.cond.clone(), then: cloneBody(s.then), els: cloneBody(s.els)}
}

// sFor is a canonical bounded counting loop with a dedicated loop
// variable never assigned inside the body.
type sFor struct {
	v    string
	n    int
	body []stmt
}

func (s *sFor) renderStmt(b *strings.Builder, ind string) {
	fmt.Fprintf(b, "%sfor (%s = 0; %s < %d; %s++) {\n", ind, s.v, s.v, s.n, s.v)
	renderBody(b, s.body, ind+"\t")
	b.WriteString(ind)
	b.WriteString("}\n")
}
func (s *sFor) cloneStmt() stmt { return &sFor{v: s.v, n: s.n, body: cloneBody(s.body)} }

// sWhile is a bounded while or do-while over a dedicated countdown var.
type sWhile struct {
	v    string
	n    int
	do   bool
	body []stmt
}

func (s *sWhile) renderStmt(b *strings.Builder, ind string) {
	fmt.Fprintf(b, "%s%s = %d;\n", ind, s.v, s.n)
	if s.do {
		b.WriteString(ind)
		b.WriteString("do {\n")
		renderBody(b, s.body, ind+"\t")
		fmt.Fprintf(b, "%s\t%s = %s - 1;\n", ind, s.v, s.v)
		fmt.Fprintf(b, "%s} while (%s > 0);\n", ind, s.v)
		return
	}
	fmt.Fprintf(b, "%swhile (%s > 0) {\n", ind, s.v)
	renderBody(b, s.body, ind+"\t")
	fmt.Fprintf(b, "%s\t%s = %s - 1;\n", ind, s.v, s.v)
	b.WriteString(ind)
	b.WriteString("}\n")
}
func (s *sWhile) cloneStmt() stmt {
	return &sWhile{v: s.v, n: s.n, do: s.do, body: cloneBody(s.body)}
}

// sSwitch dispatches on (tag & 7) with constant cases; arms without
// sBreakLast fall through, exercising the backends' jump tables.
type sSwitch struct {
	tag   expr
	cases []sCase
	def   []stmt
}

type sCase struct {
	val  int
	brk  bool
	body []stmt
}

func (s *sSwitch) renderStmt(b *strings.Builder, ind string) {
	b.WriteString(ind)
	b.WriteString("switch ((")
	s.tag.render(b)
	b.WriteString(") & 7) {\n")
	for _, cs := range s.cases {
		fmt.Fprintf(b, "%scase %d:\n", ind, cs.val)
		renderBody(b, cs.body, ind+"\t")
		if cs.brk {
			b.WriteString(ind)
			b.WriteString("\tbreak;\n")
		}
	}
	b.WriteString(ind)
	b.WriteString("default:\n")
	renderBody(b, s.def, ind+"\t")
	b.WriteString(ind)
	b.WriteString("}\n")
}
func (s *sSwitch) cloneStmt() stmt {
	c := &sSwitch{tag: s.tag.clone(), def: cloneBody(s.def)}
	for _, cs := range s.cases {
		c.cases = append(c.cases, sCase{val: cs.val, brk: cs.brk, body: cloneBody(cs.body)})
	}
	return c
}

// sBreakIf / sContinueIf are conditional loop exits (only generated inside
// loop bodies).
type sBreakIf struct {
	cond expr
	cont bool
}

func (s *sBreakIf) renderStmt(b *strings.Builder, ind string) {
	b.WriteString(ind)
	b.WriteString("if (")
	s.cond.render(b)
	if s.cont {
		b.WriteString(") { continue; }\n")
	} else {
		b.WriteString(") { break; }\n")
	}
}
func (s *sBreakIf) cloneStmt() stmt { return &sBreakIf{cond: s.cond.clone(), cont: s.cont} }

// sPrint emits one observable event mid-program.
type sPrint struct {
	x expr
}

func (s *sPrint) renderStmt(b *strings.Builder, ind string) {
	b.WriteString(ind)
	switch s.x.t() {
	case tDouble:
		b.WriteString("print_f(")
		s.x.render(b)
	case tLong:
		b.WriteString("print_i(")
		s.x.render(b)
	default:
		b.WriteString("print_i((long)(")
		s.x.render(b)
		b.WriteString(")")
	}
	b.WriteString(");\n")
}
func (s *sPrint) cloneStmt() stmt { return &sPrint{x: s.x.clone()} }

// sHeap is the memory-growth idiom: malloc a buffer, fill it, fold a
// checksum into gl0, free it. words is the buffer size in 4-byte words;
// large values force memory.grow through the Cheerp allocator.
type sHeap struct {
	words int
	mulC  int64
}

func (s *sHeap) renderStmt(b *strings.Builder, ind string) {
	fmt.Fprintf(b, "%s{\n", ind)
	fmt.Fprintf(b, "%s\tint* __p = (int*)malloc(%d * sizeof(int));\n", ind, s.words)
	fmt.Fprintf(b, "%s\tint __k;\n", ind)
	fmt.Fprintf(b, "%s\tfor (__k = 0; __k < %d; __k++) { __p[__k] = __k * %d; }\n", ind, s.words, s.mulC)
	fmt.Fprintf(b, "%s\tfor (__k = 0; __k < %d; __k += 17) { gl0 = gl0 * 31 + (long)__p[__k]; }\n", ind, s.words)
	fmt.Fprintf(b, "%s\tfree(__p);\n", ind)
	fmt.Fprintf(b, "%s}\n", ind)
}
func (s *sHeap) cloneStmt() stmt { c := *s; return &c }

// sCall evaluates a helper call for effect (result folded into a global so
// it is not dead).
type sCall struct {
	global string
	gty    typ
	call   *eCall
}

func (s *sCall) renderStmt(b *strings.Builder, ind string) {
	b.WriteString(ind)
	b.WriteString(s.global)
	b.WriteString(" += ")
	if s.gty != s.call.ty {
		fmt.Fprintf(b, "(%s)(", s.gty.c())
		s.call.render(b)
		b.WriteString(")")
	} else {
		s.call.render(b)
	}
	b.WriteString(";\n")
}
func (s *sCall) cloneStmt() stmt {
	return &sCall{global: s.global, gty: s.gty, call: s.call.clone().(*eCall)}
}

func renderBody(b *strings.Builder, body []stmt, ind string) {
	for _, s := range body {
		s.renderStmt(b, ind)
	}
}

func cloneBody(body []stmt) []stmt {
	if body == nil {
		return nil
	}
	out := make([]stmt, len(body))
	for i, s := range body {
		out[i] = s.cloneStmt()
	}
	return out
}

// ---- Program ----

// vdecl is a scalar variable the generator may read or write.
type vdecl struct {
	name string
	ty   typ
	init int64
}

// arr is a global array; lengths are powers of two so indexes mask.
type arr struct {
	name string
	ty   typ
	n    int
	dim2 bool
}

// fn is one generated helper function.
type fn struct {
	name   string
	ret    typ
	params []vdecl
	body   []stmt
	result expr
}

func (f *fn) cloneFn() *fn {
	c := &fn{name: f.name, ret: f.ret, params: f.params, body: cloneBody(f.body), result: f.result.clone()}
	return c
}

// Prog is a generated program: its own AST plus the fixed declarations the
// renderer always emits. Render is deterministic, so two Progs with equal
// structure produce byte-identical source.
type Prog struct {
	Seed      uint64
	FloatFree bool
	helpers   []*fn
	main      []stmt
	nLoopVars int
}

// Clone deep-copies the program (the shrinker mutates clones).
func (p *Prog) Clone() *Prog {
	c := &Prog{Seed: p.Seed, FloatFree: p.FloatFree, nLoopVars: p.nLoopVars}
	for _, h := range p.helpers {
		c.helpers = append(c.helpers, h.cloneFn())
	}
	c.main = cloneBody(p.main)
	return c
}

// Globals every program declares. gl0 additionally absorbs sHeap and sCall
// checksums.
var progGlobals = []vdecl{
	{"gi0", tInt, 3}, {"gi1", tInt, -7},
	{"gu0", tUInt, 9},
	{"gl0", tLong, 1}, {"gl1", tLong, 1023},
	{"gd0", tDouble, 0}, {"gd1", tDouble, 0},
}

var progArrays = []arr{
	{"AI", tInt, 64, false},
	{"AL", tLong, 16, false},
	{"AD", tDouble, 32, false},
	{"MI", tInt, 8, true},
}

// mainLocals is the fixed local pool of main; declaring the whole pool up
// front keeps shrunk programs compiling even when the only assignment to a
// variable was deleted.
var mainLocals = []vdecl{
	{"li0", tInt, 1}, {"li1", tInt, 2}, {"li2", tInt, 5}, {"li3", tInt, -3},
	{"lu0", tUInt, 77},
	{"ll0", tLong, 11}, {"ll1", tLong, -13},
	{"ld0", tDouble, 0}, {"ld1", tDouble, 0},
}

// Render emits the program as MiniC source.
func (p *Prog) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* difftest generated program, seed=%d floatfree=%v */\n", p.Seed, p.FloatFree)
	for _, g := range progGlobals {
		if p.FloatFree && g.ty == tDouble {
			continue
		}
		if g.ty == tDouble {
			fmt.Fprintf(&b, "double %s = %d.5;\n", g.name, g.init)
		} else {
			fmt.Fprintf(&b, "%s %s = %d;\n", g.ty.c(), g.name, g.init)
		}
	}
	for _, a := range progArrays {
		if p.FloatFree && a.ty == tDouble {
			continue
		}
		if a.dim2 {
			fmt.Fprintf(&b, "%s %s[%d][%d];\n", a.ty.c(), a.name, a.n, a.n)
		} else {
			fmt.Fprintf(&b, "%s %s[%d];\n", a.ty.c(), a.name, a.n)
		}
	}
	b.WriteString("\n")
	if !p.FloatFree {
		b.WriteString(`int __f2i(double d) {
	if (d != d) { return -1; }
	if (d > 1000000000.0) { return 1000000000; }
	if (d < -1000000000.0) { return -1000000000; }
	return (int)d;
}

`)
	}
	for _, h := range p.helpers {
		fmt.Fprintf(&b, "%s %s(", h.ret.c(), h.name)
		for i, pr := range h.params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", pr.ty.c(), pr.name)
		}
		b.WriteString(") {\n")
		p.renderLoopVarDecls(&b, h.body, "\t")
		renderBody(&b, h.body, "\t")
		b.WriteString("\treturn ")
		h.result.render(&b)
		b.WriteString(";\n}\n\n")
	}
	b.WriteString("int main() {\n")
	for _, l := range mainLocals {
		if p.FloatFree && l.ty == tDouble {
			continue
		}
		if l.ty == tDouble {
			fmt.Fprintf(&b, "\tdouble %s = %d.25;\n", l.name, l.init)
		} else {
			fmt.Fprintf(&b, "\t%s %s = %d;\n", l.ty.c(), l.name, l.init)
		}
	}
	p.renderLoopVarDecls(&b, p.main, "\t")
	b.WriteString("\tlong __h = 0;\n\tint __e0;\n\tint __e1;\n")
	renderBody(&b, p.main, "\t")
	// Epilogue: print every observable, fold final memory into a checksum.
	// This is the program-level "final memory checksum" observable — it
	// covers the JS backend too, whose engine-managed heap the VM-level
	// checksum cannot reach.
	for _, g := range progGlobals {
		if p.FloatFree && g.ty == tDouble {
			continue
		}
		switch g.ty {
		case tDouble:
			fmt.Fprintf(&b, "\tprint_f(%s);\n", g.name)
		case tLong:
			fmt.Fprintf(&b, "\tprint_i(%s);\n", g.name)
		default:
			fmt.Fprintf(&b, "\tprint_i((long)(%s));\n", g.name)
		}
	}
	b.WriteString("\tfor (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }\n")
	b.WriteString("\tfor (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }\n")
	if !p.FloatFree {
		b.WriteString("\tfor (__e0 = 0; __e0 < 32; __e0++) { __h = __h * 31 + (long)__f2i(AD[__e0] * 1024.0); }\n")
	}
	b.WriteString("\tfor (__e0 = 0; __e0 < 8; __e0++) {\n")
	b.WriteString("\t\tfor (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }\n")
	b.WriteString("\t}\n")
	b.WriteString("\tprint_i(__h);\n")
	b.WriteString("\treturn (int)(__h & 127);\n}\n")
	return b.String()
}

// renderLoopVarDecls declares the loop variables a body uses (loop vars
// are per-statement, so declarations derive from the tree, surviving
// shrinks that delete the loops).
func (p *Prog) renderLoopVarDecls(b *strings.Builder, body []stmt, ind string) {
	seen := map[string]bool{}
	var walkE func(e expr)
	walkE = func(e expr) {
		switch x := e.(type) {
		case *eVar:
			// Variable uses count too: the shrinker splices loop bodies
			// into the parent, leaving references without the loop header.
			seen[x.name] = true
		case *eIdx:
			walkE(x.i)
			if x.j != nil {
				walkE(x.j)
			}
		case *eBin:
			walkE(x.x)
			walkE(x.y)
		case *eCmp:
			walkE(x.x)
			walkE(x.y)
		case *eUn:
			walkE(x.x)
		case *eCast:
			walkE(x.x)
		case *eF2I:
			walkE(x.x)
		case *eCall:
			for _, a := range x.args {
				walkE(a)
			}
		case *eCond:
			walkE(x.c)
			walkE(x.x)
			walkE(x.y)
		}
	}
	var walk func([]stmt)
	walk = func(ss []stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *sFor:
				seen[st.v] = true
				walk(st.body)
			case *sWhile:
				seen[st.v] = true
				walk(st.body)
			case *sIf:
				walkE(st.cond)
				walk(st.then)
				walk(st.els)
			case *sSwitch:
				walkE(st.tag)
				for _, cs := range st.cases {
					walk(cs.body)
				}
				walk(st.def)
			case *sAssign:
				if st.idx != nil {
					walkE(st.idx)
				}
				if st.idx2 != nil {
					walkE(st.idx2)
				}
				walkE(st.rhs)
			case *sBreakIf:
				walkE(st.cond)
			case *sPrint:
				walkE(st.x)
			case *sCall:
				for _, a := range st.call.args {
					walkE(a)
				}
			}
		}
	}
	walk(body)
	// Deterministic order: loop vars are named i0..iN.
	for i := 0; i < p.nLoopVars; i++ {
		name := fmt.Sprintf("i%d", i)
		if seen[name] {
			fmt.Fprintf(b, "%sint %s = 0;\n", ind, name)
		}
	}
}

// ---- Generator ----

// GenOptions tunes program generation.
type GenOptions struct {
	// FloatFree excludes doubles entirely; such programs stay observable-
	// identical even under value-unsafe optimization (-Ofast), so the
	// cross-level oracle can include every level.
	FloatFree bool
	// StepBudget caps the estimated dynamic step count (0 = default 4000).
	StepBudget int
}

// gen carries generation state.
type gen struct {
	r       rng
	p       *Prog
	opts    GenOptions
	budget  int
	helpers []*fn // generated so far (callable)
	scope   scope
}

// scope is the variable set visible at the current generation point.
type scope struct {
	vars     []vdecl // readable/writable scalars
	loopVars []string
	inLoop   bool
	// contOK: the innermost loop is a canonical for, whose post-increment
	// still runs after a continue. In the countdown while/do-while forms a
	// continue would skip the decrement and never terminate.
	contOK   bool
	inHelper bool
}

// Generate builds the deterministic random program for a seed.
func Generate(seed uint64, opts GenOptions) *Prog {
	if opts.StepBudget <= 0 {
		opts.StepBudget = 4000
	}
	g := &gen{r: rng{s: seed}, opts: opts, budget: opts.StepBudget}
	g.p = &Prog{Seed: seed, FloatFree: opts.FloatFree}

	// Helper functions: 1-3, DAG call graph (each may call earlier ones).
	nHelpers := 1 + g.r.intn(3)
	for i := 0; i < nHelpers; i++ {
		g.genHelper(i)
	}

	// main body.
	g.scope = scope{vars: g.progVars(mainLocals)}
	g.p.main = g.genBody(2 + g.r.intn(5))

	// Guarantee one hot loop crossing the oracle's tier-up threshold (64),
	// calling a helper so call-hotness tiering fires too.
	h := g.helpers[g.r.intn(len(g.helpers))]
	hot := &sFor{v: g.newLoopVar(), n: 96 + g.r.intn(64)}
	call := g.helperCall(h, hot.v)
	acc, accT := "gl1", tLong
	if h.ret == tDouble {
		acc, accT = "gd1", tDouble
	}
	hot.body = []stmt{
		&sCall{global: acc, gty: accT, call: call},
		&sAssign{target: "AI", ty: tInt, mask: 63, idx: &eVar{tInt, hot.v},
			op: "+=", rhs: g.genExpr(tInt, 2)},
	}
	g.p.main = append(g.p.main, hot)

	// Occasionally exercise the allocator / memory growth (the larger
	// variant overruns the initial pages and forces memory.grow).
	if g.r.intn(3) == 0 {
		words := 256 + g.r.intn(1024)
		if g.r.intn(4) == 0 {
			words = 20000 + g.r.intn(20000)
		}
		g.p.main = append(g.p.main, &sHeap{words: words, mulC: int64(3 + g.r.intn(11))})
	}
	return g.p
}

// progVars returns globals plus the given locals, minus doubles when
// float-free.
func (g *gen) progVars(locals []vdecl) []vdecl {
	var out []vdecl
	for _, v := range progGlobals {
		if g.opts.FloatFree && v.ty == tDouble {
			continue
		}
		out = append(out, v)
	}
	for _, v := range locals {
		if g.opts.FloatFree && v.ty == tDouble {
			continue
		}
		out = append(out, v)
	}
	return out
}

func (g *gen) newLoopVar() string {
	name := fmt.Sprintf("i%d", g.p.nLoopVars)
	g.p.nLoopVars++
	return name
}

var helperRets = []typ{tInt, tLong, tDouble}

func (g *gen) genHelper(i int) {
	ret := helperRets[g.r.intn(len(helperRets))]
	if g.opts.FloatFree && ret == tDouble {
		ret = tLong
	}
	f := &fn{name: fmt.Sprintf("hf%d", i), ret: ret}
	f.params = []vdecl{{"a", ret, 0}, {"b", tInt, 0}}
	g.scope = scope{vars: append(g.progVars(nil), f.params...), inHelper: true}
	sb := g.budget
	g.budget = 200
	f.body = g.genBody(1 + g.r.intn(3))
	g.budget = sb
	f.result = g.genExpr(ret, 2)
	g.p.helpers = append(g.p.helpers, f)
	g.helpers = append(g.helpers, f)
}

// helperCall builds a call to h with in-scope argument expressions.
func (g *gen) helperCall(h *fn, loopVar string) *eCall {
	args := make([]expr, len(h.params))
	for i, pr := range h.params {
		if loopVar != "" && pr.ty == tInt {
			args[i] = &eVar{tInt, loopVar}
			loopVar = ""
			continue
		}
		args[i] = g.genExpr(pr.ty, 1)
	}
	return &eCall{ty: h.ret, name: h.name, args: args}
}

// genBody generates n statements at the current scope.
func (g *gen) genBody(n int) []stmt {
	var out []stmt
	for i := 0; i < n; i++ {
		if s := g.genStmt(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (g *gen) genStmt() stmt {
	// assign, if, for, while, switch, print, call, break/continue
	w := []int{30, 12, 10, 6, 5, 6, 6, 0}
	if g.scope.inLoop {
		w[7] = 4
	}
	if g.budget < 40 {
		w[2], w[3] = 0, 0 // no more loops
	}
	switch g.r.pick(w) {
	case 0:
		return g.genAssign()
	case 1:
		g.budget -= 4
		s := &sIf{cond: g.genCond()}
		s.then = g.genBody(1 + g.r.intn(2))
		if g.r.intn(2) == 0 {
			s.els = g.genBody(1 + g.r.intn(2))
		}
		return s
	case 2:
		n := 2 + g.r.intn(14)
		inner := g.budget / (n + 1)
		if inner < 8 {
			return g.genAssign()
		}
		g.budget = inner
		s := &sFor{v: g.newLoopVar(), n: n}
		oldLV, oldIL, oldCO := g.scope.loopVars, g.scope.inLoop, g.scope.contOK
		g.scope.loopVars = append(append([]string{}, oldLV...), s.v)
		g.scope.inLoop = true
		g.scope.contOK = true
		s.body = g.genBody(1 + g.r.intn(3))
		g.scope.loopVars, g.scope.inLoop, g.scope.contOK = oldLV, oldIL, oldCO
		g.budget = inner
		return s
	case 3:
		n := 2 + g.r.intn(10)
		inner := g.budget / (n + 1)
		if inner < 8 {
			return g.genAssign()
		}
		g.budget = inner
		s := &sWhile{v: g.newLoopVar(), n: n, do: g.r.intn(3) == 0}
		oldIL, oldCO := g.scope.inLoop, g.scope.contOK
		g.scope.inLoop = true
		g.scope.contOK = false
		s.body = g.genBody(1 + g.r.intn(2))
		g.scope.inLoop, g.scope.contOK = oldIL, oldCO
		g.budget = inner
		return s
	case 4:
		g.budget -= 8
		s := &sSwitch{tag: g.genExpr(tInt, 2)}
		used := map[int]bool{}
		for k := 0; k < 2+g.r.intn(3); k++ {
			v := g.r.intn(8)
			if used[v] {
				continue
			}
			used[v] = true
			s.cases = append(s.cases, sCase{val: v, brk: g.r.intn(4) != 0,
				body: g.genBody(1)})
		}
		s.def = g.genBody(1)
		return s
	case 5:
		g.budget -= 2
		return &sPrint{x: g.genExpr(g.randType(), 2)}
	case 6:
		g.budget -= 30
		if len(g.helpers) == 0 || g.scope.inHelper {
			return g.genAssign()
		}
		h := g.helpers[g.r.intn(len(g.helpers))]
		gl, gt := "gl0", tLong
		if h.ret == tDouble {
			gl, gt = "gd0", tDouble
		}
		return &sCall{global: gl, gty: gt, call: g.helperCall(h, "")}
	default:
		g.budget -= 2
		cont := g.r.intn(3) == 0 && g.scope.contOK
		return &sBreakIf{cond: g.genCond(), cont: cont}
	}
}

func (g *gen) genAssign() stmt {
	g.budget -= 3
	// Array store vs scalar store.
	if g.r.intn(3) == 0 {
		a := g.randArray()
		s := &sAssign{target: a.name, ty: a.ty, mask: a.n - 1,
			idx: g.genExpr(tInt, 2), op: g.assignOp(a.ty), rhs: g.genExpr(a.ty, 3)}
		if a.dim2 {
			s.idx2 = g.genExpr(tInt, 1)
		}
		return s
	}
	v := g.randVar(0)
	return &sAssign{target: v.name, ty: v.ty, op: g.assignOp(v.ty),
		rhs: g.genExpr(v.ty, 3)}
}

func (g *gen) assignOp(t typ) string {
	ops := []string{"=", "=", "+=", "-=", "*="}
	return ops[g.r.intn(len(ops))]
}

func (g *gen) randType() typ {
	for {
		t := typ(g.r.intn(4))
		if g.opts.FloatFree && t == tDouble {
			continue
		}
		return t
	}
}

// randVar picks a scalar variable; want < 0 means any type.
func (g *gen) randVar(want typ) vdecl {
	cands := make([]vdecl, 0, len(g.scope.vars))
	for _, v := range g.scope.vars {
		if v.ty == want {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return g.scope.vars[g.r.intn(len(g.scope.vars))]
	}
	return cands[g.r.intn(len(cands))]
}

func (g *gen) randArray() arr {
	for {
		a := progArrays[g.r.intn(len(progArrays))]
		if g.opts.FloatFree && a.ty == tDouble {
			continue
		}
		return a
	}
}

func (g *gen) genCond() expr {
	t := g.randType()
	return &eCmp{op: []string{"<", ">", "<=", ">=", "==", "!="}[g.r.intn(6)],
		x: g.genExpr(t, 2), y: g.genExpr(t, 2)}
}

var (
	intLits  = []int64{0, 1, 2, -1, 3, 7, 13, 64, 255, 4096, 65535, 1000000007, 2147483647, -2147483647}
	longLits = []int64{0, 1, -1, 31, 255, 4294967296, 6364136223846793005, -9221120237041090561, 1442695040888963407}
	dblLits  = []float64{0.0, 1.0, -1.5, 0.5, 0.25, 3.14159265, 1e6, 1e-6, -273.15, 1e18}
)

// genExpr builds a well-typed expression of type t with depth budget d.
func (g *gen) genExpr(t typ, d int) expr {
	if d <= 0 || g.r.intn(4) == 0 {
		return g.genLeaf(t)
	}
	switch t {
	case tDouble:
		switch g.r.pick([]int{30, 10, 14, 8, 8}) {
		case 0:
			op := []string{"+", "-", "*", "/"}[g.r.intn(4)]
			return &eBin{ty: t, op: op, x: g.genExpr(t, d-1), y: g.genExpr(t, d-1)}
		case 1:
			return &eUn{ty: t, op: "-", x: g.genExpr(t, d-1)}
		case 2:
			fns := []string{"sin", "cos", "sqrt", "fabs", "floor", "ceil", "exp", "log"}
			return &eCall{ty: t, name: fns[g.r.intn(len(fns))], args: []expr{g.genExpr(t, d-1)}}
		case 3:
			name := []string{"pow", "fmod"}[g.r.intn(2)]
			return &eCall{ty: t, name: name,
				args: []expr{g.genExpr(t, d-1), g.genExpr(t, d-1)}}
		default:
			src := []typ{tInt, tLong}[g.r.intn(2)]
			return &eCast{ty: t, x: g.genExpr(src, d-1)}
		}
	default:
		switch g.r.pick([]int{34, 8, 8, 8, 6, 6}) {
		case 0:
			ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
			op := ops[g.r.intn(len(ops))]
			return &eBin{ty: t, op: op, x: g.genExpr(t, d-1), y: g.genExpr(t, d-1)}
		case 1:
			op := []string{"-", "~"}[g.r.intn(2)]
			if t == tInt && g.r.intn(4) == 0 {
				op = "!"
			}
			return &eUn{ty: t, op: op, x: g.genExpr(t, d-1)}
		case 2:
			// Cross-width casts: wrap/extend are deterministic everywhere.
			switch t {
			case tInt:
				src := []typ{tLong, tUInt}[g.r.intn(2)]
				return &eCast{ty: t, x: g.genExpr(src, d-1)}
			case tUInt:
				return &eCast{ty: t, x: g.genExpr(tInt, d-1)}
			default:
				src := []typ{tInt, tUInt}[g.r.intn(2)]
				return &eCast{ty: t, x: g.genExpr(src, d-1)}
			}
		case 3:
			if g.opts.FloatFree {
				return &eBin{ty: t, op: "+", x: g.genExpr(t, d-1), y: g.genLeaf(t)}
			}
			// Guarded float→int, widened as needed.
			f := &eF2I{x: g.genExpr(tDouble, d-1)}
			if t == tInt {
				return f
			}
			return &eCast{ty: t, x: f}
		case 4:
			c := g.genCond()
			if t == tInt {
				return &eCond{ty: t, c: c, x: g.genExpr(t, d-1), y: g.genExpr(t, d-1)}
			}
			return &eCond{ty: t, c: c, x: g.genExpr(t, d-1), y: g.genExpr(t, d-1)}
		default:
			if t == tInt {
				return g.genCond()
			}
			return &eCast{ty: t, x: g.genCond()}
		}
	}
}

func (g *gen) genLeaf(t typ) expr {
	// literal / scalar var / array load / loop var
	w := []int{8, 12, 6, 0}
	if len(g.scope.loopVars) > 0 && t == tInt {
		w[3] = 8
	}
	switch g.r.pick(w) {
	case 0:
		switch t {
		case tDouble:
			if g.r.intn(2) == 0 {
				return &eLit{ty: t, f: dblLits[g.r.intn(len(dblLits))]}
			}
			return &eLit{ty: t, f: float64(g.r.intn(4000)-2000) / 16.0}
		case tLong:
			if g.r.intn(2) == 0 {
				return &eLit{ty: t, i: longLits[g.r.intn(len(longLits))]}
			}
			return &eLit{ty: t, i: int64(g.r.next())}
		case tUInt:
			return &eLit{ty: t, i: int64(uint32(g.r.next()))}
		default:
			if g.r.intn(2) == 0 {
				return &eLit{ty: t, i: intLits[g.r.intn(len(intLits))]}
			}
			return &eLit{ty: t, i: int64(g.r.intn(2000001) - 1000000)}
		}
	case 1:
		v := g.randVar(t)
		if v.ty != t {
			// Cross-type fallback: float sources go through the trunc
			// guard, everything else through a plain (deterministic) cast.
			if v.ty == tDouble {
				f := &eF2I{x: &eVar{tDouble, v.name}}
				if t == tInt {
					return f
				}
				return &eCast{ty: t, x: f}
			}
			return &eCast{ty: t, x: &eVar{v.ty, v.name}}
		}
		return &eVar{t, v.name}
	case 2:
		var cands []arr
		for _, a := range progArrays {
			if a.ty == t {
				cands = append(cands, a)
			}
		}
		if len(cands) == 0 {
			return &eLit{ty: t, i: 1}
		}
		a := cands[g.r.intn(len(cands))]
		idx := g.genLeaf(tInt)
		e := &eIdx{ty: t, arr: a.name, mask: a.n - 1, i: idx}
		if a.dim2 {
			e.j = g.genLeaf(tInt)
		}
		return e
	default:
		return &eVar{tInt, g.scope.loopVars[g.r.intn(len(g.scope.loopVars))]}
	}
}
