package difftest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
	"wasmbench/internal/wasm"
)

// wasmBytes canonicalizes an IR program as its emitted Wasm binary —
// byte-equal binaries mean structurally identical programs as far as any
// backend can observe.
func wasmBytes(t *testing.T, p *ir.Program) []byte {
	t.Helper()
	m, err := codegen.Wasm(p, codegen.WasmOptions{ModuleName: "irprop"})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	b, err := wasm.Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// TestPassIdempotence: running any single optimization pass a second time
// must be a no-op. A pass that keeps finding work on its own output is
// either unstable (pipeline results would depend on scheduling) or
// rewriting semantics. The inliner is exempt by design: it consumes its
// budget across repeated applications (O4 schedules it twice on purpose).
func TestPassIdempotence(t *testing.T) {
	passes := []struct {
		name string
		fn   func(*ir.Program)
	}{
		{"constfold", ir.ConstFold},
		{"dce", ir.DCE},
		{"licm", ir.LICM},
		{"rematconst", ir.RematConst},
		{"consthoist", ir.ConstHoist},
		{"argpromote", ir.ArgPromote},
		{"shrinkwrap-libcalls", ir.ShrinkwrapLibcalls},
		{"globalopt", func(p *ir.Program) { ir.GlobalOpt(p, false) }},
	}
	for _, ps := range passes {
		ps := ps
		t.Run(ps.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				src := Generate(seed, GenOptions{FloatFree: seed%2 == 0}).Render()
				art, err := compiler.Compile(src, compiler.Options{
					Opt: ir.O0, ModuleName: "irprop",
					Targets: []compiler.Target{compiler.TargetWasm},
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				p := art.IR
				ps.fn(p)
				once := wasmBytes(t, p)
				ps.fn(p)
				twice := wasmBytes(t, p)
				if !bytes.Equal(once, twice) {
					t.Fatalf("seed %d: %s is not idempotent (%d vs %d bytes)",
						seed, ps.name, len(once), len(twice))
				}
			}
		})
	}
}

// TestPipelineConcurrentDeterminism: compiling the same source at the same
// level from many goroutines must yield byte-identical Wasm binaries —
// the pass pipeline may not share mutable state across compilations.
func TestPipelineConcurrentDeterminism(t *testing.T) {
	src := Generate(3, GenOptions{}).Render()
	ref, err := compiler.Compile(src, compiler.Options{Opt: ir.O3, ModuleName: "det"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	got := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			art, err := compiler.Compile(src, compiler.Options{Opt: ir.O3, ModuleName: "det"})
			if err == nil {
				got[i] = art.WasmBinary
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], ref.WasmBinary) {
			t.Fatalf("concurrent compile %d differs from sequential reference", i)
		}
	}
}

// TestHarnessWorkersCacheInvariance: the pass-pipeline output reaching the
// harness must not depend on the -workers pool size or on whether the
// artifact came from the compile cache. Fingerprint-identical cells must
// carry byte-identical Wasm across every configuration.
func TestHarnessWorkersCacheInvariance(t *testing.T) {
	var bench *benchsuite.Benchmark
	for _, b := range benchsuite.All() {
		if b.Name == "atax" {
			bench = b
		}
	}
	if bench == nil {
		t.Fatal("benchsuite kernel atax not found")
	}
	mkCells := func() []harness.Cell {
		var cells []harness.Cell
		for _, lv := range []ir.OptLevel{ir.O0, ir.O2} {
			// Two profiles per level: same fingerprint, so the cache path
			// dedups them while the no-cache path compiles each.
			cells = append(cells,
				harness.Cell{Bench: bench, Size: benchsuite.XS, Level: lv, Lang: "wasm",
					Profile: browser.Chrome(browser.Desktop)},
				harness.Cell{Bench: bench, Size: benchsuite.XS, Level: lv, Lang: "wasm",
					Profile: browser.Firefox(browser.Desktop)},
			)
		}
		return cells
	}
	type key struct{ cell int }
	ref := map[key][]byte{}
	for _, cfg := range []struct {
		name    string
		workers int
		noCache bool
	}{
		{"w1-cache", 1, false},
		{"w3-cache", 3, false},
		{"w1-nocache", 1, true},
		{"w3-nocache", 3, true},
	} {
		res, _ := harness.RunCellsWith(mkCells(), harness.RunOptions{
			Workers: cfg.workers, DisableCache: cfg.noCache,
		})
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("%s cell %d: %v", cfg.name, i, r.Err)
			}
			bin := r.Art.WasmBinary
			if prev, ok := ref[key{i}]; !ok {
				ref[key{i}] = bin
			} else if !bytes.Equal(prev, bin) {
				t.Errorf("%s cell %d: artifact differs from first configuration", cfg.name, i)
			}
		}
	}
}

// TestFingerprintStability: the compile cache keys on Fingerprint; two
// option sets that compile differently must never collide, and identical
// inputs must agree across processes (the fingerprint is content-derived,
// not pointer- or time-derived).
func TestFingerprintStability(t *testing.T) {
	src := Generate(5, GenOptions{}).Render()
	a := compiler.Fingerprint(src, compiler.Options{Opt: ir.O2, ModuleName: "m"})
	b := compiler.Fingerprint(src, compiler.Options{Opt: ir.O2, ModuleName: "m"})
	if a != b {
		t.Fatal("same input, different fingerprints")
	}
	seen := map[string]string{a: "O2"}
	for _, v := range []struct {
		label string
		opts  compiler.Options
	}{
		{"O3", compiler.Options{Opt: ir.O3, ModuleName: "m"}},
		{"O2+define", compiler.Options{Opt: ir.O2, ModuleName: "m",
			Defines: map[string]string{"N": "4"}}},
		{"O2+heap", compiler.Options{Opt: ir.O2, ModuleName: "m", HeapLimit: 1 << 20}},
	} {
		fp := compiler.Fingerprint(src, v.opts)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s vs %s", prev, v.label)
		}
		seen[fp] = v.label
	}
	if fp2 := compiler.Fingerprint(src+" ", compiler.Options{Opt: ir.O2, ModuleName: "m"}); fp2 == a {
		t.Fatal(fmt.Sprintf("source change did not change fingerprint %s", a))
	}
}
