//go:build !race

package difftest

// raceEnabled reports whether the race detector is active. The
// differential smoke tests size themselves down under -race (the detector
// costs ~7× on this workload); `make difftest-smoke` runs the full fixed
// seed range without it.
const raceEnabled = false
