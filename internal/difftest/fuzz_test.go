package difftest

import (
	"testing"

	"wasmbench/internal/ir"
)

// FuzzDiffBackends is the main differential target: one generator seed →
// every backend family through the default oracle. The explicit seeds are
// the corpus seed programs (1–10) plus every seed that historically found
// a compiler bug (2: switch-fallthrough aliasing, 201/254/298: rematconst
// use-before-write, 212: jsvm Infinity binding).
//
// Run with: go test ./internal/difftest -fuzz FuzzDiffBackends
func FuzzDiffBackends(f *testing.F) {
	for seed := uint64(1); seed <= 10; seed++ {
		f.Add(seed, seed%2 == 0)
	}
	for _, s := range []uint64{2, 201, 212, 254, 298} {
		f.Add(s, false)
		f.Add(s, true)
	}
	orc := DefaultOracle()
	f.Fuzz(func(t *testing.T, seed uint64, floatFree bool) {
		rep, err := orc.CheckSeed(seed, GenOptions{FloatFree: floatFree})
		if err != nil {
			t.Fatalf("seed %d floatfree=%v: compile: %v", seed, floatFree, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d floatfree=%v:\n%s", seed, floatFree, rep.Summary())
		}
	})
}

// FuzzDiffOptLevels is the metamorphic cross-level target: float-free
// programs (value-safe under every level, including -Ofast) must produce
// identical observable output at all eight optimization levels on the
// reference backend.
//
// Run with: go test ./internal/difftest -fuzz FuzzDiffOptLevels
func FuzzDiffOptLevels(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(201)) // rematconst regression fired on the xlevel check
	orc := &Oracle{
		Families:   []string{"x86"},
		CrossLevel: true,
		Levels: []ir.OptLevel{
			ir.O0, ir.O1, ir.O2, ir.O3, ir.O4, ir.Os, ir.Oz, ir.Ofast,
		},
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep, err := orc.CheckSeed(seed, GenOptions{FloatFree: true})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d:\n%s", seed, rep.Summary())
		}
	})
}
