/* difftest corpus: seed-0007
   Generator-produced seed program (seed=7 floatfree=false); exercises the
   cross-backend oracle end to end. No known bug attached. */
/* difftest generated program, seed=7 floatfree=false */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
double gd0 = 0.5;
double gd1 = 0.5;
int AI[64];
long AL[16];
double AD[32];
int MI[8][8];

int __f2i(double d) {
	if (d != d) { return -1; }
	if (d > 1000000000.0) { return 1000000000; }
	if (d < -1000000000.0) { return -1000000000; }
	return (int)d;
}

int hf0(int a, int b) {
	gi1 -= __f2i(((((AD[(MI[(-516791) & 7][(b) & 7]) & 31]) * (gd1))) + (fmod(0.0, 1.0))));
	return (~(((gi0) & (-2147483647))));
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	double ld0 = 0.25;
	double ld1 = 0.25;
	int i0 = 0;
	long __h = 0;
	int __e0;
	int __e1;
	if ((((((((((-(((((((__f2i(AD[(144518) & 31])) - (((int)(ll1))))) >= ((~(((int)(ll0))))))) ? (AL[(-138674) & 15]) : (AL[(AI[(gi1) & 63]) & 15]))))) > (((long)((((((-(li0))) * (((7) >> ((int)((li2) & 31)))))) > ((!(((li3) + (960715))))))))))) ? (2) : (li2))) * (li2))) < (((((((7) - (11065))) % (((((gi1) | (AI[(-731218) & 63]))) & 15) + 1))) > ((((((((((!(1000000007))) & (65535))) != ((-(((int)((unsigned)1))))))) ? (li2) : (gi0))) >> ((int)((((gi1) & (gi1))) & 31)))))))) {
		AD[(((((((64) * (((-952995) & (li1))))) >= ((-((~(li3))))))) ? (li2) : (__f2i(gd1)))) & 31] -= ((((((0.0) + (ld0))) / (((AD[(gi0) & 31]) / (AD[(255) & 31]))))) / (ceil(((double)(ll0)))));
	}
	gi1 = (~(AI[(-342314) & 63]));
	for (i0 = 0; i0 < 110; i0++) {
		gl1 += (long)(hf0(i0, __f2i(gd0)));
		AI[(i0) & 63] += ((int)((((unsigned)1) & ((unsigned)1))));
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	print_f(gd0);
	print_f(gd1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 32; __e0++) { __h = __h * 31 + (long)__f2i(AD[__e0] * 1024.0); }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
