/* difftest corpus: regress-rematconst-param
   Minimized from generator seed 201 (floatfree). RematConst treated "one
   static SetLocal of a constant" as "local is that constant everywhere",
   but parameters carry an implicit entry write and plain locals read zero
   until the first store: the use of b in `AI[0] *= b` executes BEFORE the
   lone write `b = 1` and must see the argument value, not 1.
   Fixed in ir/passes2.go: the write must be a top-level statement that
   precedes every use of the local.
   Divergence class: x86@-O0 vs x86@-O3 exit mismatch (xlevel). */
/* difftest generated program, seed=201 floatfree=true */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
int AI[64];
long AL[16];
int MI[8][8];

int hf0(int a, int b) {
	AI[(0) & 63] *= b;
	b = 1;
	return 0;
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	int i4 = 0;
	long __h = 0;
	int __e0;
	int __e1;
	for (i4 = 0; i4 < 134; i4++) {
		gl1 += (long)(hf0(0, 0));
		AI[(0) & 63] += 1;
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
