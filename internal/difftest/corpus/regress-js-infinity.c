/* difftest corpus: regress-js-infinity
   Minimized from generator seed 212. ConstFold folds (-1.5)/(0.0) to an
   f64 -Inf constant, which the JS backend spells "-Infinity"; jsvm had no
   global Infinity/NaN bindings, so the identifier read as undefined (NaN
   after ToNumber) and the comparison -Inf <= gd0 silently flipped.
   Fixed in jsvm/host.go: ECMA-262 global value properties Infinity, NaN,
   undefined.
   Divergence class: x86/wasm vs js output mismatch at -O1 and above. */
/* difftest generated program, seed=212 floatfree=false */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
double gd0 = 0.5;
double gd1 = 0.5;
int AI[64];
long AL[16];
double AD[32];
int MI[8][8];

int __f2i(double d) {
	if (d != d) { return -1; }
	if (d > 1000000000.0) { return 1000000000; }
	if (d < -1000000000.0) { return -1000000000; }
	return (int)d;
}

long hf0(long a, int b) {
	return (long)(1);
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	double ld0 = 0.25;
	double ld1 = 0.25;
	long __h = 0;
	int __e0;
	int __e1;
	if (((((-1.5) / (0.0))) <= (gd0))) {
		gl0 += hf0((long)(0), 0);
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	print_f(gd0);
	print_f(gd1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 32; __e0++) { __h = __h * 31 + (long)__f2i(AD[__e0] * 1024.0); }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
