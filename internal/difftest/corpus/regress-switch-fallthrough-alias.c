/* difftest corpus: regress-switch-fallthrough-alias
   Switch fallthrough materialization shared statement nodes between the
   case that owns them and every earlier case that absorbs them. The
   globalopt function-index remap then visited the shared *Call twice
   (panic: index out of range [-1] once the first visit rewrote it).
   Fixed in ir/build.go by deep-copying absorbed case bodies.
   Divergence class: compile panic at -O1 and above. */
int dropped(int x) { return x + 1; }
int used(int x) { return x * 2; }
int main() {
    int a = 0;
    int r = 0;
    switch (a) {
    case 0:
        r += 1;
    case 1:
        r += used(2);
        break;
    default:
        r = 3;
    }
    print_i((long)(r));
    return r;
}
