/* difftest corpus: seed-0009
   Generator-produced seed program (seed=9 floatfree=false); exercises the
   cross-backend oracle end to end. No known bug attached. */
/* difftest generated program, seed=9 floatfree=false */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
double gd0 = 0.5;
double gd1 = 0.5;
int AI[64];
long AL[16];
double AD[32];
int MI[8][8];

int __f2i(double d) {
	if (d != d) { return -1; }
	if (d > 1000000000.0) { return 1000000000; }
	if (d < -1000000000.0) { return -1000000000; }
	return (int)d;
}

long hf0(long a, int b) {
	gi0 -= __f2i(((cos(gd1)) - (-273.15)));
	return ((long)(__f2i(ceil(-273.15))));
}

double hf1(double a, int b) {
	int i0 = 0;
	gi1 += AI[(-109987) & 63];
	for (i0 = 0; i0 < 14; i0++) {
		print_i((long)(((__f2i(gd0)) | (((AI[(b) & 63]) & (MI[(i0) & 7][(b) & 7]))))));
	}
	return ((pow(AD[(90128) & 31], -273.15)) - (sqrt(AD[(gi1) & 31])));
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	double ld0 = 0.25;
	double ld1 = 0.25;
	int i1 = 0;
	long __h = 0;
	int __e0;
	int __e1;
	li3 = 1;
	print_i((long)(((li1) + (((-379055) >> ((int)((601990) & 31)))))));
	li2 *= li0;
	gl0 += hf0(((gl0) + (gl1)), li2);
	AD[(((((-2147483647) & (939816))) << ((int)((li2) & 31)))) & 31] = fmod((-(fabs(gd1))), ((exp(ld0)) - ((-(ld1)))));
	gi0 += ((((((ll1) * (((long)((unsigned)1914144558))))) == (((((AL[(gi0) & 15]) + ((long)(-5426363539777464347)))) + (AL[(880945) & 15]))))) ? ((((-(((li0) % (((li3) & 15) + 1))))) > (((__f2i(3.14159265)) + (__f2i(gd0)))))) : (((gi0) - ((~(li1))))));
	for (i1 = 0; i1 < 134; i1++) {
		gl1 += hf0(((gl1) & (ll1)), i1);
		AI[(i1) & 63] += (~(((((fmod(((ld0) / (-115.125)), ((gd0) / (AD[(li0) & 31])))) != (pow(((double)(ll1)), (-(ld0)))))) ? (gi1) : (7))));
	}
	{
		int* __p = (int*)malloc(774 * sizeof(int));
		int __k;
		for (__k = 0; __k < 774; __k++) { __p[__k] = __k * 6; }
		for (__k = 0; __k < 774; __k += 17) { gl0 = gl0 * 31 + (long)__p[__k]; }
		free(__p);
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	print_f(gd0);
	print_f(gd1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 32; __e0++) { __h = __h * 31 + (long)__f2i(AD[__e0] * 1024.0); }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
