/* difftest corpus: seed-0003
   Generator-produced seed program (seed=3 floatfree=false); exercises the
   cross-backend oracle end to end. No known bug attached. */
/* difftest generated program, seed=3 floatfree=false */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
double gd0 = 0.5;
double gd1 = 0.5;
int AI[64];
long AL[16];
double AD[32];
int MI[8][8];

int __f2i(double d) {
	if (d != d) { return -1; }
	if (d > 1000000000.0) { return 1000000000; }
	if (d < -1000000000.0) { return -1000000000; }
	return (int)d;
}

int hf0(int a, int b) {
	int i0 = 0;
	for (i0 = 0; i0 < 12; i0++) {
		a += AI[(i0) & 63];
		if (((((((gu0) << ((unsigned)(((unsigned)1) & 31)))) | ((((((~(((unsigned)(__f2i(0.25)))))) >= (((((gd1) <= (exp(((3.14159265) - (gd1)))))) ? ((unsigned)2417663551) : ((unsigned)1))))) ? ((unsigned)2374767511) : ((unsigned)1))))) <= (((((((((unsigned)(((((unsigned)(__f2i(((AD[(a) & 31]) - (gd1)))))) == ((((((unsigned)2665342273) % ((((unsigned)1) & 15) + 1))) >> ((unsigned)(((((unsigned)1) / (((gu0) & 15) + 1))) & 31)))))))) != (((((((((b) * (i0))) * (a))) == (((((gd1) != (fmod(ceil(AD[(426803) & 31]), ((gd0) - (-1.5)))))) * (((((860102) > ((((((long)(5697906746570918293)) == (AL[(MI[(i0) & 7][(AI[(gi1) & 63]) & 7]) & 15]))) ? (a) : (((i0) ^ (-555479))))))) ? (b) : (b))))))) ? ((unsigned)3428236984) : (((unsigned)(__f2i(9.75)))))))) ? ((unsigned)1) : (gu0))) & (((gu0) - (gu0))))))) { break; }
	}
	return (((-(gi0))) >> ((int)((((((((((((((unsigned)((((((((long)(0)) + ((long)(-9221120237041090561)))) * (AL[(-761127) & 15]))) >= (((((long)(2))) + (((long)((unsigned)3975521150))))))))) & (((unsigned)(((((((unsigned)(((__f2i(fabs(-74.375))) != (((gi1) * (((b) * (MI[(b) & 7][(MI[(b) & 7][(gi0) & 7]) & 7]))))))))) | (((((log(fabs(gd1))) == (log(((gd0) / (28.25)))))) ? ((unsigned)1) : ((unsigned)152438501))))) <= ((((unsigned)1) & ((((unsigned)1) & ((unsigned)1))))))))))) > (((unsigned)(((((((a) % (((a) & 15) + 1))) * (((AI[(69771) & 63]) ^ (b))))) != (MI[(139637) & 7][(a) & 7]))))))) + (__f2i(gd0)))) != (AI[(AI[(4096) & 63]) & 63]))) ? (gi0) : (gi0))) & 31)));
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	double ld0 = 0.25;
	double ld1 = 0.25;
	int i1 = 0;
	int i2 = 0;
	long __h = 0;
	int __e0;
	int __e1;
	li2 = __f2i(((((0.0) - (ld1))) / ((-(-35.125)))));
	li0 = (~(((((MI[(MI[(li0) & 7][(gi0) & 7]) & 7][(li2) & 7]) - (MI[(li1) & 7][(li0) & 7]))) >> ((int)((((li0) | (gi0))) & 31)))));
	li0 = li1;
	AL[(((((((long)((((-(((gd0) + (-73.3125))))) > (-120.3125))))) == (((((long)((((unsigned)1) <= ((-(lu0))))))) & (((gl0) << ((long)((AL[(AI[(1) & 63]) & 15]) & 63)))))))) ? (((li0) << ((int)((li1) & 31)))) : (((AI[(AI[(li2) & 63]) & 63]) + (gi1))))) & 15] = gl0;
	for (i1 = 0; i1 < 14; i1++) {
		if (((((fmod(AD[(30112) & 31], ld0)) / (3.1875))) <= (((((1e+06) - (gd0))) / ((-(0.5))))))) {
			gi1 *= (((((unsigned)72861015) | (((unsigned)(((((ll1) + (((long)(__f2i(1.0)))))) < (((((AL[(AI[(i1) & 63]) & 15]) ^ (ll1))) * ((long)(-2172561486575260733)))))))))) > (((unsigned)(__f2i(((ld1) + (-1.5)))))));
			li1 += __f2i(((pow(AD[(AI[(MI[(i1) & 7][(i1) & 7]) & 63]) & 31], ld0)) * (((AD[(gi0) & 31]) * (0.0)))));
		}
		li3 = __f2i(floor(((gd1) * (-40.3125))));
	}
	li0 += ((((((lu0) > (lu0))) ? (((li0) * (MI[(255) & 7][(gi1) & 7]))) : (((348619) + (gi0))))) % (((((gi1) ^ (((2) / (((0) & 15) + 1))))) & 15) + 1));
	for (i2 = 0; i2 < 112; i2++) {
		gl1 += (long)(hf0(i2, 3));
		AI[(i2) & 63] += ((((3) | (li3))) | (li3));
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	print_f(gd0);
	print_f(gd1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 32; __e0++) { __h = __h * 31 + (long)__f2i(AD[__e0] * 1024.0); }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
