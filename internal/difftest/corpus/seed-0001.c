/* difftest corpus: seed-0001
   Generator-produced seed program (seed=1 floatfree=false); exercises the
   cross-backend oracle end to end. No known bug attached. */
/* difftest generated program, seed=1 floatfree=false */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
double gd0 = 0.5;
double gd1 = 0.5;
int AI[64];
long AL[16];
double AD[32];
int MI[8][8];

int __f2i(double d) {
	if (d != d) { return -1; }
	if (d > 1000000000.0) { return 1000000000; }
	if (d < -1000000000.0) { return -1000000000; }
	return (int)d;
}

long hf0(long a, int b) {
	int i0 = 0;
	if (((((((unsigned)(__f2i(-1.5)))) + (gu0))) <= ((-((~(gu0))))))) {
		if (((((double)(((int)((unsigned)1582031093))))) > (floor(((AD[(AI[(b) & 63]) & 31]) / (AD[(gi1) & 31])))))) {
			if (((gd0) >= (0.5))) {
				MI[(((int)((((unsigned)1751549763) & (gu0))))) & 7][(((0) + (b))) & 7] -= (((~(((int)((long)(0)))))) ^ (((AI[(MI[(gi1) & 7][(gi1) & 7]) & 63]) + (((gi0) >> ((int)((AI[(gi0) & 63]) & 31)))))));
			} else {
				if (((((((((unsigned)(__f2i(AD[(gi0) & 31])))) <= ((((((unsigned)4127757965) ^ ((unsigned)2929631165))) % ((((-(gu0))) & 15) + 1))))) ? (((int)(AL[(gi1) & 15]))) : (1000000007))) != (((((gi0) - (gi0))) ^ (((gi0) & (b))))))) {
					for (i0 = 0; i0 < 15; i0++) {
						print_i(((long)(__f2i(((0.0) * (AD[(gi1) & 31]))))));
					}
					AD[(b) & 31] = fmod(gd1, sin(((gd1) / (gd0))));
				}
				gi1 *= ((int)(((unsigned)(__f2i(((double)(MI[(AI[(gi0) & 63]) & 7][(gi1) & 7])))))));
			}
		}
		gi1 -= (((~(((-645721) & (gi0))))) % (((798663) & 15) + 1));
	}
	return ((long)(((((((((557134) & (b))) >= (gi0))) ? ((((((long)(7838611770415186808)) < ((((((((((((unsigned)4198243707) ^ (gu0))) + (((gu0) | (gu0))))) <= ((((-((unsigned)1))) / (((((gu0) | (gu0))) & 15) + 1))))) ? ((long)(-2385795246871878382)) : (AL[(gi1) & 15]))) ^ ((~(gl1))))))) ? (gu0) : (gu0))) : ((((((((-(gd1))) - (floor(AD[(gi0) & 31])))) == (pow(floor(AD[(b) & 31]), fabs(AD[(gi0) & 31]))))) ? (gu0) : (gu0))))) >= (((((((((((long)(((-105.25) < (gd1))))) >> ((long)(((((long)(31)) + ((long)(31)))) & 63)))) >= (((long)((((unsigned)3999628443) << ((unsigned)((gu0) & 31)))))))) ? (gu0) : (gu0))) & ((~((unsigned)1))))))));
}

int hf1(int a, int b) {
	print_f(-80.0);
	if (((((((unsigned)(((fabs(log(gd1))) != (gd1))))) <= (((unsigned)(__f2i(((gd1) + (gd0)))))))) >= ((!(((MI[(-2147483647) & 7][(gi1) & 7]) << ((int)((b) & 31)))))))) {
		gi0 *= ((int)(gl1));
		a = ((((MI[(gi0) & 7][(b) & 7]) << ((int)((a) & 31)))) < (((int)((((unsigned)1) / ((((unsigned)1) & 15) + 1))))));
	}
	return ((((gi0) % (((b) & 15) + 1))) - (((MI[(a) & 7][(1000000007) & 7]) >> ((int)((-701649) & 31)))));
}

double hf2(double a, int b) {
	int i1 = 0;
	for (i1 = 0; i1 < 15; i1++) {
		b -= __f2i(a);
		if (((fmod(((double)((long)(-6690402650071872427))), ((a) - (1.0)))) >= (AD[(AI[(-973769) & 63]) & 31]))) {
			b *= gi1;
			gi0 = ((((int)(((long)((unsigned)2685598989))))) << ((int)((((((i1) & (i1))) | (((int)(gu0))))) & 31)));
		}
	}
	return ((AD[(gi1) & 31]) * (-43.5625));
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	double ld0 = 0.25;
	double ld1 = 0.25;
	int i2 = 0;
	int i3 = 0;
	int i4 = 0;
	long __h = 0;
	int __e0;
	int __e1;
	if (((((((unsigned)(((((AL[(AI[(li1) & 63]) & 15]) <= (((((long)(__f2i(-1.5)))) + ((~(ll0))))))) > (li3))))) & (((unsigned)(AI[(li0) & 63]))))) == (((unsigned)(((((((long)(__f2i(((ld1) / (118.9375)))))) < (((long)(((1) * (13))))))) ? (-366870) : (MI[(334278) & 7][(-73656) & 7]))))))) {
		MI[(__f2i((-(3.14159265)))) & 7][(__f2i(8.1875)) & 7] = ((-1) | (((((int)((unsigned)3601897042))) >> ((int)((gi1) & 31)))));
	} else {
		AI[(((__f2i(97.6875)) % (((((li3) ^ (gi0))) & 15) + 1))) & 63] = ((__f2i(((-89.3125) - (43.5)))) * (((((AI[(li3) & 63]) % (((li0) & 15) + 1))) / (((((-938988) << ((int)((li1) & 31)))) & 15) + 1))));
		switch ((-787748) & 7) {
		case 3:
			li2 *= ((__f2i(98.0625)) + (((int)(gl0))));
			break;
		case 5:
			for (i2 = 0; i2 < 4; i2++) {
				if (((gl0) < (((long)(((int)((unsigned)2594772561))))))) { break; }
			}
			break;
		default:
			li1 += ((((((926168) & (li0))) | (7))) >> ((int)((gi1) & 31)));
		}
	}
	if (((((long)(__f2i(fmod(gd0, ld1))))) == (ll1))) {
		switch ((__f2i(ld1)) & 7) {
		case 4:
			gi0 -= __f2i(ld0);
			break;
		default:
			gl0 += hf0(gl1, MI[(gi1) & 7][(gi0) & 7]);
		}
		if (((ll0) == (AL[(71117) & 15]))) {
			AL[(li2) & 15] -= ((((gd0) > (((double)(((gl0) << ((long)((gl1) & 63)))))))) ? (((ll1) % (((AL[(-2147483647) & 15]) & 15) + 1))) : (((((long)(__f2i(ld0)))) | (((long)(__f2i(-1.5)))))));
		}
	} else {
		li1 = __f2i((-((-(AD[(397337) & 31])))));
	}
	print_f(((((ld0) / (-117.375))) - (((ld1) / (AD[(-229322) & 31])))));
	if ((((unsigned)800269806) > (gu0))) {
		switch (((((unsigned)3686806052) > (gu0))) & 7) {
		case 2:
			li3 -= ((((((MI[(li0) & 7][(MI[(gi0) & 7][(gi0) & 7]) & 7]) << ((int)((MI[(gi1) & 7][(AI[(li2) & 63]) & 7]) & 31)))) % (((li2) & 15) + 1))) + (__f2i(((gd0) - (ld0)))));
			break;
		case 4:
			li3 *= (((((~(gi0))) << ((int)((((875733) >> ((int)((li2) & 31)))) & 31)))) % (((((__f2i(1e+06)) | (64))) & 15) + 1));
			break;
		default:
			gi1 = __f2i(((double)(((long)(lu0)))));
		}
	} else {
		gi1 += gi1;
	}
	switch ((((((((-959819) % (((((ld0) == (ceil(AD[(0) & 31])))) & 15) + 1))) > (((((MI[(AI[(-2147483647) & 63]) & 7][(li3) & 7]) % (((7) & 15) + 1))) << ((int)((gi0) & 31)))))) ? (AI[(AI[(-808018) & 63]) & 63]) : (((2147483647) ^ (li0))))) & 7) {
	case 5:
		li2 += (((~(((int)((long)(4294967296)))))) & (((((((((unsigned)(__f2i(gd1)))) * (((gu0) >> ((unsigned)(((unsigned)1) & 31)))))) >= (((unsigned)((((((~(64))) % (((((((ceil(((ld0) + (ld0)))) > (ceil(fmod(ld0, ld0))))) ? (0) : (-1))) & 15) + 1))) == (((gl1) != (((((((AL[(1000000007) & 15]) / ((((long)(0)) & 15) + 1))) == ((~((long)(255)))))) ? (((long)(gi1))) : (((gl1) & ((long)(-2878127223643001356)))))))))))))) | ((-(AI[(li3) & 63]))))));
		break;
	case 2:
		li0 = ((((__f2i(ld1)) - (((li0) ^ (gi0))))) ^ (li1));
		break;
	case 1:
		print_i((long)(((unsigned)(__f2i(101.8125)))));
	case 7:
		MI[((((((((unsigned)1167874560) >> ((unsigned)((((((fmod(AD[(7) & 31], ((AD[(li0) & 31]) / (AD[(li0) & 31])))) == (((((ld0) + (40.4375))) * (((gd1) / (-70.875))))))) ? ((unsigned)1) : (lu0))) & 31)))) > (((unsigned)(((((ld1) / (((double)(13))))) < (((((double)(gl0))) - (12.6875))))))))) ^ (li3))) & 7][(((((AI[(-527167) & 63]) == (li3))) ? (li3) : (li3))) & 7] = (!(((((((((((AD[(370040) & 31]) / (111.5625))) - (((0.0) - (-81.4375))))) != (((double)(li3))))) ? (AI[(621073) & 63]) : (li3))) * (((li1) / (((695221) & 15) + 1))))));
		break;
	default:
		i3 = 7;
		while (i3 > 0) {
			if ((((unsigned)772731995) != ((((unsigned)1) | (((unsigned)(7))))))) {
				gi1 = (!(((((gi1) | (745923))) >> ((int)((AI[(gi1) & 63]) & 31)))));
				li1 = ((((((((1e+18) > ((((-(ld1))) + (pow(AD[(AI[(li0) & 63]) & 31], 1e+18)))))) & (gi1))) < (((((li2) * (gi0))) << ((int)((gi0) & 31)))))) % (((((1000000007) * ((~(16672))))) & 15) + 1));
			}
			li1 *= ((int)(((long)(((((double)((long)(4560192597857264935)))) < (((log(ld1)) - (3.14159265))))))));
			i3 = i3 - 1;
		}
	}
	li2 += ((((int)(((AL[(MI[(li0) & 7][(li0) & 7]) & 15]) % (((AL[(-2147483647) & 15]) & 15) + 1))))) + (__f2i((-(17.8125)))));
	for (i4 = 0; i4 < 99; i4++) {
		gd1 += hf2(1.0, i4);
		AI[(i4) & 63] += ((((li1) % (((MI[(gi1) & 7][(li0) & 7]) & 15) + 1))) * (__f2i(1e+18)));
	}
	{
		int* __p = (int*)malloc(851 * sizeof(int));
		int __k;
		for (__k = 0; __k < 851; __k++) { __p[__k] = __k * 8; }
		for (__k = 0; __k < 851; __k += 17) { gl0 = gl0 * 31 + (long)__p[__k]; }
		free(__p);
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	print_f(gd0);
	print_f(gd1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 32; __e0++) { __h = __h * 31 + (long)__f2i(AD[__e0] * 1024.0); }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
