/* difftest corpus: regress-foldstmts-alias
   foldStmts built its output into body[:0] while the constant-If fold can
   append more statements than it has consumed, overwriting entries not yet
   read (some statements duplicated, the overwritten ones dropped).
   Fixed in ir/passes.go by building into a fresh slice.
   Divergence class: wrong observable output at -O1 and above. */
int main() {
    int r = 0;
    if (1) { r += 1; r += 2; r += 3; r += 4; }
    r += 10;
    r += 20;
    r += 40;
    print_i((long)(r));
    return r;
}
