/* difftest corpus: seed-0008
   Generator-produced seed program (seed=8 floatfree=true); exercises the
   cross-backend oracle end to end. No known bug attached. */
/* difftest generated program, seed=8 floatfree=true */
int gi0 = 3;
int gi1 = -7;
unsigned gu0 = 9;
long gl0 = 1;
long gl1 = 1023;
int AI[64];
long AL[16];
int MI[8][8];

long hf0(long a, int b) {
	print_i(gl0);
	gi0 = ((b) % (((AI[(-414369) & 63]) & 15) + 1));
	return ((((a) ^ ((long)(0)))) | (AL[(b) & 15]));
}

long hf1(long a, int b) {
	gi0 += ((((((((((((gu0) / ((((unsigned)3168256507) & 15) + 1))) % (((((unsigned)(-586320))) & 15) + 1))) <= (gu0))) >> ((int)((((-508523) & (b))) & 31)))) != (AI[(gi0) & 63]))) / (((((854622) | (((gi1) & (-6186))))) & 15) + 1));
	return gl1;
}

int main() {
	int li0 = 1;
	int li1 = 2;
	int li2 = 5;
	int li3 = -3;
	unsigned lu0 = 77;
	long ll0 = 11;
	long ll1 = -13;
	int i0 = 0;
	long __h = 0;
	int __e0;
	int __e1;
	li3 -= ((li2) + (647338));
	li1 -= AI[(464624) & 63];
	for (i0 = 0; i0 < 112; i0++) {
		gl1 += hf1(((AL[(li2) & 15]) >> ((long)((AL[(li1) & 15]) & 63))), i0);
		AI[(i0) & 63] += (((((((-(lu0))) * (gu0))) != ((unsigned)1))) ? (((MI[(gi0) & 7][(li0) & 7]) + (AI[(AI[(li3) & 63]) & 63]))) : (((((((int)((unsigned)1))) % (((((int)(gu0))) & 15) + 1))) == (((AI[(4096) & 63]) <= (((int)((((long)(255)) * ((long)(-1)))))))))));
	}
	print_i((long)(gi0));
	print_i((long)(gi1));
	print_i((long)(gu0));
	print_i(gl0);
	print_i(gl1);
	for (__e0 = 0; __e0 < 64; __e0++) { __h = __h * 31 + (long)AI[__e0]; }
	for (__e0 = 0; __e0 < 16; __e0++) { __h = __h * 31 + AL[__e0]; }
	for (__e0 = 0; __e0 < 8; __e0++) {
		for (__e1 = 0; __e1 < 8; __e1++) { __h = __h * 31 + (long)MI[__e0][__e1]; }
	}
	print_i(__h);
	return (int)(__h & 127);
}
