package difftest

import (
	"strings"
	"testing"

	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
)

// TestSafeRunRecoversPanic: a panicking backend run must surface as an
// error, never escape as a panic (which would kill the fuzzing process
// and lose corpus progress).
func TestSafeRunRecoversPanic(t *testing.T) {
	res, err := safeRun(func() (*compiler.Result, error) {
		panic("index out of range [42]")
	})
	if res != nil {
		t.Errorf("panicking run returned a result: %+v", res)
	}
	if err == nil || !strings.Contains(err.Error(), "backend panic") ||
		!strings.Contains(err.Error(), "index out of range [42]") {
		t.Errorf("panic not converted to backend-panic error: %v", err)
	}

	// A healthy run passes through untouched.
	want := &compiler.Result{Exit: 7}
	res, err = safeRun(func() (*compiler.Result, error) { return want, nil })
	if res != want || err != nil {
		t.Errorf("healthy run perturbed: %v, %v", res, err)
	}
}

// TestPanickingBackendBecomesTrapDivergence: when one backend of a matrix
// panics, the oracle reports a trap divergence against the healthy
// reference rather than crashing.
func TestPanickingBackendBecomesTrapDivergence(t *testing.T) {
	outs := []Outcome{
		{Backend: "x86", Family: "x86", Exit: 0, Output: []string{"ok"}},
		{Backend: "wasm/both+fuse+reg", Family: "wasm", Err: mustPanicErr(t)},
	}
	divs := compareOutcomes("panicprog", ir.O2, compiler.Cheerp, outs)
	if len(divs) != 1 || divs[0].Field != "trap" {
		t.Fatalf("want one trap divergence, got %v", divs)
	}
	if !strings.Contains(divs[0].Detail, "backend panic") {
		t.Errorf("divergence detail should carry the panic: %s", divs[0].Detail)
	}
}

func mustPanicErr(t *testing.T) error {
	t.Helper()
	_, err := safeRun(func() (*compiler.Result, error) { panic("nil map write") })
	if err == nil {
		t.Fatal("safeRun swallowed the panic entirely")
	}
	return err
}
