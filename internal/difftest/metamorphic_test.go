package difftest

import (
	"reflect"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/wasmvm"
)

// TestKernelOptInvariance is the metamorphic optimizer-invariance check
// over the real benchmark suite: for every kernel, the -O0 and -O3
// artifacts must produce identical observable output (print events + exit)
// on every backend, and all backends must agree with each other. This
// closes the gap where only wasmvm-vs-wasmvm metrics were compared for
// the suite: a miscompile that shifted *results* rather than cycles was
// previously invisible.
func TestKernelOptInvariance(t *testing.T) {
	kernels := benchsuite.All()
	if raceEnabled && len(kernels) > 8 {
		kernels = kernels[:8] // full sweep runs in difftest-smoke without -race
	}
	levels := []ir.OptLevel{ir.O0, ir.O3}
	for _, b := range kernels {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			type observed struct {
				exit int32
				out  []string
			}
			var ref *observed
			refFrom := ""
			for _, lv := range levels {
				art, err := compiler.Compile(b.Source, compiler.Options{
					Opt:        lv,
					Defines:    b.Defines(benchsuite.XS),
					HeapLimit:  b.HeapLimitBytes(benchsuite.XS),
					ModuleName: b.Name,
				})
				if err != nil {
					t.Fatalf("compile %v: %v", lv, err)
				}
				run := func(label string, res *compiler.Result, err error) {
					if err != nil {
						t.Fatalf("%s@%v: %v", label, lv, err)
					}
					cur := &observed{exit: res.Exit, out: res.OutputStrings()}
					if ref == nil {
						ref, refFrom = cur, label+"@"+lv.String()
						return
					}
					if ref.exit != cur.exit || !reflect.DeepEqual(ref.out, cur.out) {
						t.Errorf("%s@%v disagrees with %s: %s", label, lv, refFrom,
							diffObservable(ref.exit, cur.exit, ref.out, cur.out))
					}
				}
				resX, err := compiler.RunX86(art, codegen.DefaultX86Config())
				run("x86", resX, err)
				resW, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
				run("wasm", resW, err)
				resJ, err := compiler.RunJS(art, jsvm.DefaultConfig())
				run("js", resJ, err)
			}
		})
	}
}
