package difftest

import (
	"embed"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The regression corpus: every divergence the fuzzer ever found lands here
// minimized, next to a set of generator seed programs. TestCorpus replays
// all of them across the full backend matrix, and the Go fuzz targets use
// them as their seed corpus.
//
//go:embed corpus/*.c
var corpusFS embed.FS

// CorpusEntry is one committed corpus program.
type CorpusEntry struct {
	Name   string // file name without directory or .c extension
	Source string
}

// Corpus returns the committed corpus, sorted by name. It panics on an
// unreadable embed FS (impossible without a build-system bug).
func Corpus() []CorpusEntry {
	ents, err := corpusFS.ReadDir("corpus")
	if err != nil {
		panic("difftest: corpus embed: " + err.Error())
	}
	out := make([]CorpusEntry, 0, len(ents))
	for _, e := range ents {
		b, err := corpusFS.ReadFile("corpus/" + e.Name())
		if err != nil {
			panic("difftest: corpus embed: " + err.Error())
		}
		out = append(out, CorpusEntry{
			Name:   strings.TrimSuffix(e.Name(), ".c"),
			Source: string(b),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteCorpusEntry writes a program into dir as name.c with a metadata
// header comment, the format every committed corpus file follows. The note
// should say where the program came from (seed, divergence, fix). Returns
// the written path.
func WriteCorpusEntry(dir, name, note, src string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "/* difftest corpus: %s\n", name)
	for _, line := range strings.Split(strings.TrimSpace(note), "\n") {
		fmt.Fprintf(&b, "   %s\n", strings.TrimSpace(line))
	}
	b.WriteString("*/\n")
	b.WriteString(src)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".c")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
