package difftest

import (
	"strings"
	"testing"

	"wasmbench/internal/ir"
)

// smokeSeeds is the fixed seed range `make difftest-smoke` sweeps: 100
// seeds × {float, float-free} = 200 generated programs, every one through
// the default oracle (x86 + 5 wasmvm configs including one AOT-tier
// config + 2 jsvm tiers at -O0 and -O3, plus the cross-level check). Under -race the range shrinks so the
// tier-1 `go test -race ./...` gate stays fast; the dedicated
// difftest-smoke target runs without -race and covers the full range.
func smokeSeeds() uint64 {
	if raceEnabled {
		return 16
	}
	return 100
}

func TestSmoke(t *testing.T) {
	orc := DefaultOracle()
	checked := 0
	for seed := uint64(1); seed <= smokeSeeds(); seed++ {
		for _, ff := range []bool{false, true} {
			rep, err := orc.CheckSeed(seed, GenOptions{FloatFree: ff})
			if err != nil {
				t.Fatalf("seed %d floatfree=%v: %v", seed, ff, err)
			}
			if !rep.OK() {
				t.Errorf("seed %d floatfree=%v:\n%s", seed, ff, rep.Summary())
			}
			checked++
		}
	}
	t.Logf("checked %d generated programs", checked)
}

// TestCorpus replays every committed corpus program — minimized regressions
// for fixed divergences plus generator seed programs — across the backend
// matrix with zero tolerance. Without -race the wasm side runs the full
// 18-config mode×fusion×regtier×aot matrix.
func TestCorpus(t *testing.T) {
	entries := Corpus()
	if len(entries) == 0 {
		t.Fatal("embedded corpus is empty")
	}
	orc := DefaultOracle()
	orc.FullWasmMatrix = !raceEnabled
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep, err := orc.Check(e.Name, e.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !rep.OK() {
				t.Errorf("%s", rep.Summary())
			}
		})
	}
}

// TestGeneratorDeterministic: a seed names the same program forever; the
// corpus, the fuzz targets, and every reported divergence depend on it.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		for _, ff := range []bool{false, true} {
			a := Generate(seed, GenOptions{FloatFree: ff}).Render()
			b := Generate(seed, GenOptions{FloatFree: ff}).Render()
			if a != b {
				t.Fatalf("seed %d floatfree=%v: two generations differ", seed, ff)
			}
		}
	}
	if Generate(1, GenOptions{}).Render() == Generate(2, GenOptions{}).Render() {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestGeneratorFloatFree: FloatFree programs must not mention doubles at
// all — the cross-level oracle relies on it to include -Ofast.
func TestGeneratorFloatFree(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		src := Generate(seed, GenOptions{FloatFree: true}).Render()
		for _, tok := range []string{"double", "print_f", "0.5"} {
			if strings.Contains(src, tok) {
				t.Fatalf("seed %d: float-free program contains %q", seed, tok)
			}
		}
	}
}

// TestShrinkMechanics drives the minimizer with a synthetic reproduction
// predicate — "still compiles, still runs on x86, still prints at least
// five events" — and checks the greedy loop only ever keeps
// predicate-satisfying candidates while making the program smaller.
func TestShrinkMechanics(t *testing.T) {
	orc := &Oracle{Families: []string{"x86"}, Levels: []ir.OptLevel{ir.O0}}
	repro := func(p *Prog) bool {
		rep, err := orc.Check("shrink", p.Render())
		if err != nil {
			return false
		}
		for _, outs := range rep.Outcomes {
			for _, oc := range outs {
				if oc.Err != nil || len(oc.Output) < 5 {
					return false
				}
			}
		}
		return rep.OK()
	}
	p := Generate(7, GenOptions{})
	if !repro(p) {
		t.Fatal("seed 7 does not satisfy the synthetic predicate")
	}
	before := len(p.Render())
	m := Shrink(p, repro, 600)
	after := len(m.Render())
	if !repro(m) {
		t.Fatal("shrunk program no longer satisfies the predicate")
	}
	if after > before {
		t.Fatalf("shrink grew the program: %d -> %d bytes", before, after)
	}
	t.Logf("shrunk %d -> %d bytes", before, after)
}

// TestOracleFlagsDivergence checks the comparison logic itself on
// fabricated outcomes: exit, output, trap, and the within-wasm step and
// memory invariants must each be flagged.
func TestOracleFlagsDivergence(t *testing.T) {
	base := func() []Outcome {
		return []Outcome{
			{Backend: "x86", Family: "x86", Exit: 1, Output: []string{"i:1"}, Steps: 10, MemSum: 42},
			{Backend: "wasm/a", Family: "wasm", Exit: 1, Output: []string{"i:1"}, Steps: 20, MemSum: 7},
			{Backend: "wasm/b", Family: "wasm", Exit: 1, Output: []string{"i:1"}, Steps: 20, MemSum: 7},
			{Backend: "js/jit", Family: "js", Exit: 1, Output: []string{"i:1"}, Steps: 5},
		}
	}
	if divs := compareOutcomes("p", ir.O0, 0, base()); len(divs) != 0 {
		t.Fatalf("agreeing outcomes flagged: %v", divs)
	}
	mut := []struct {
		name  string
		field string
		mod   func([]Outcome)
	}{
		{"exit", "exit", func(o []Outcome) { o[3].Exit = 2 }},
		{"output", "output", func(o []Outcome) { o[1].Output = []string{"i:9"} }},
		{"trap", "trap", func(o []Outcome) { o[2].Err = errTest }},
		{"steps", "steps", func(o []Outcome) { o[2].Steps = 21 }},
		{"memory", "memory", func(o []Outcome) { o[2].MemSum = 8 }},
	}
	for _, m := range mut {
		t.Run(m.name, func(t *testing.T) {
			outs := base()
			m.mod(outs)
			divs := compareOutcomes("p", ir.O0, 0, outs)
			if len(divs) == 0 {
				t.Fatalf("%s divergence not flagged", m.name)
			}
			found := false
			for _, d := range divs {
				if d.Field == m.field {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected field %q in %v", m.field, divs)
			}
		})
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "synthetic trap" }
