//go:build race

package difftest

// raceEnabled reports whether the race detector is active (see race_off.go).
const raceEnabled = true
