package difftest

import (
	"fmt"
	"reflect"
	"strings"

	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/obsv"
	"wasmbench/internal/wasmvm"
)

// Outcome is one backend execution, reduced to the observable state the
// oracle compares.
type Outcome struct {
	Backend string // e.g. "wasm/both+fuse+reg", "js/jit", "x86"
	Family  string // "wasm", "js", "x86"
	Err     error
	Exit    int32
	Output  []string
	// Steps and MemSum are the stronger within-family invariants: every
	// config of the same Wasm artifact must execute the same dynamic
	// instruction stream and leave byte-identical linear memory.
	Steps  uint64
	MemSum uint64
}

// Divergence is one observed disagreement.
type Divergence struct {
	Program   string
	Level     ir.OptLevel
	Toolchain compiler.Toolchain
	A, B      string // backend labels ("" for cross-level entries)
	Field     string // "trap", "exit", "output", "steps", "memory", "xlevel"
	Detail    string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s %v/%v: %s vs %s: %s — %s",
		d.Program, d.Toolchain, d.Level, d.A, d.B, d.Field, d.Detail)
}

// Report is the oracle's verdict for one program.
type Report struct {
	Program     string
	Source      string
	Outcomes    map[string][]Outcome // key: "toolchain/level"
	Divergences []Divergence
	Runs        int
}

// OK reports whether every backend agreed everywhere.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// Oracle configures the differential run matrix.
type Oracle struct {
	// Levels to compile at; nil = {O0, O3}.
	Levels []ir.OptLevel
	// Toolchains to compile with; nil = {Cheerp}.
	Toolchains []compiler.Toolchain
	// FullWasmMatrix runs all 18 wasmvm mode×fusion×regtier×aot configs
	// instead of the 5-config smoke subset.
	FullWasmMatrix bool
	// Families filters backend families ("wasm", "js", "x86"); nil = all.
	Families []string
	// CrossLevel additionally requires the reference backend's observable
	// output to agree across all value-safe levels (Ofast is excluded:
	// fast-math is value-changing by design, cf. ir.FastMath).
	CrossLevel bool
	// Tracer, when set, receives one obsv.KindDivergence event per
	// divergence on the "difftest" track.
	Tracer obsv.Tracer
}

// DefaultOracle returns the smoke-test oracle: Cheerp at -O0 and -O3,
// 5-config wasm matrix, cross-level comparison on.
func DefaultOracle() *Oracle {
	return &Oracle{CrossLevel: true}
}

// wasmVariant names one wasmvm configuration. pooled variants run twice
// through a single-instance snapshot pool — once on the snapshot-cloned
// capture instance ("+pool") and once on the Reset-recycled instance
// ("+recycle") — and both outcomes enter the within-wasm comparison, so the
// oracle proves pooled instantiation print/exit/steps/checksum-identical to
// every cold config of the same artifact.
type wasmVariant struct {
	name   string
	cfg    wasmvm.Config
	pooled bool
}

// wasmVariants builds the wasmvm config matrix. The tier-up and AOT
// thresholds are lowered to 64 so generated hot loops actually cross them
// (OSR + call tier-up), and both optimizing dispatchers — register tier
// and AOT superblocks — get exercised.
func wasmVariants(full bool) []wasmVariant {
	mk := func(mode wasmvm.TierMode, fuse, reg, aot bool) wasmvm.Config {
		cfg := wasmvm.DefaultConfig()
		cfg.Mode = mode
		cfg.TierUpThreshold = 64
		cfg.DisableFusion = !fuse
		cfg.DisableRegTier = !reg
		cfg.DisableAOTTier = !aot
		cfg.AOTThreshold = 64
		return cfg
	}
	if !full {
		return []wasmVariant{
			{name: "both+fuse+reg", cfg: mk(wasmvm.TierBoth, true, true, false)},
			{name: "both+fuse+reg+aot", cfg: mk(wasmvm.TierBoth, true, true, true)},
			{name: "both+fuse+reg+aot", cfg: mk(wasmvm.TierBoth, true, true, true), pooled: true},
			{name: "both-plain", cfg: mk(wasmvm.TierBoth, false, false, false)},
			{name: "basic", cfg: mk(wasmvm.TierBasicOnly, true, false, false)},
			{name: "opt+reg", cfg: mk(wasmvm.TierOptOnly, true, true, false)},
		}
	}
	modes := []struct {
		n string
		m wasmvm.TierMode
	}{{"both", wasmvm.TierBoth}, {"basic", wasmvm.TierBasicOnly}, {"opt", wasmvm.TierOptOnly}}
	var out []wasmVariant
	for _, md := range modes {
		for _, fuse := range []bool{true, false} {
			for _, reg := range []bool{true, false} {
				n := md.n
				if fuse {
					n += "+fuse"
				} else {
					n += "-nofuse"
				}
				if reg {
					n += "+reg"
				} else {
					n += "-noreg"
				}
				out = append(out, wasmVariant{name: n, cfg: mk(md.m, fuse, reg, false)})
				if reg {
					// The AOT tier stacks on the register tier only, so
					// only reg-enabled configs have an +aot variant.
					out = append(out, wasmVariant{name: n + "+aot", cfg: mk(md.m, fuse, reg, true)})
					if fuse {
						// And the deepest config of each mode additionally
						// runs pooled, covering snapshot clone + recycle.
						out = append(out, wasmVariant{name: n + "+aot", cfg: mk(md.m, fuse, reg, true), pooled: true})
					}
				}
			}
		}
	}
	return out
}

// jsVariants builds the jsvm tier matrix: pure interpreter and the JIT
// tier with a low threshold so generated programs cross it.
func jsVariants() []struct {
	name string
	cfg  jsvm.Config
} {
	interp := jsvm.DefaultConfig()
	interp.JITEnabled = false
	jit := jsvm.DefaultConfig()
	jit.TierUpThreshold = 64
	return []struct {
		name string
		cfg  jsvm.Config
	}{{"interp", interp}, {"jit", jit}}
}

func (o *Oracle) levels() []ir.OptLevel {
	if len(o.Levels) > 0 {
		return o.Levels
	}
	return []ir.OptLevel{ir.O0, ir.O3}
}

func (o *Oracle) toolchains() []compiler.Toolchain {
	if len(o.Toolchains) > 0 {
		return o.Toolchains
	}
	return []compiler.Toolchain{compiler.Cheerp}
}

func (o *Oracle) wantFamily(f string) bool {
	if len(o.Families) == 0 {
		return true
	}
	for _, w := range o.Families {
		if w == f {
			return true
		}
	}
	return false
}

// Check compiles src at every (toolchain, level) and runs the full backend
// matrix, comparing observable state. The returned error reports compile
// failures (infrastructure problems, not divergences).
func (o *Oracle) Check(name, src string) (*Report, error) {
	rep := &Report{Program: name, Source: src, Outcomes: map[string][]Outcome{}}
	// xlevelRef[toolchain] is the reference observable at levels[0].
	type obs struct {
		level  ir.OptLevel
		exit   int32
		output []string
	}
	xlevelRef := map[compiler.Toolchain]*obs{}

	for _, tc := range o.toolchains() {
		for _, lv := range o.levels() {
			art, err := compiler.Compile(src, compiler.Options{
				Opt: lv, Toolchain: tc, ModuleName: "difftest",
			})
			if err != nil {
				return rep, fmt.Errorf("compile %v/%v: %w", tc, lv, err)
			}
			outs := o.runMatrix(art, tc)
			key := fmt.Sprintf("%v/%v", tc, lv)
			rep.Outcomes[key] = outs
			rep.Runs += len(outs)
			rep.Divergences = append(rep.Divergences, compareOutcomes(name, lv, tc, outs)...)

			// Cross-level metamorphic check on the reference backend.
			if o.CrossLevel && lv != ir.Ofast {
				ref := referenceOutcome(outs)
				if ref != nil && ref.Err == nil {
					cur := &obs{level: lv, exit: ref.Exit, output: ref.Output}
					if prev := xlevelRef[tc]; prev == nil {
						xlevelRef[tc] = cur
					} else if prev.exit != cur.exit || !reflect.DeepEqual(prev.output, cur.output) {
						rep.Divergences = append(rep.Divergences, Divergence{
							Program: name, Level: lv, Toolchain: tc,
							A:      fmt.Sprintf("%s@%v", ref.Backend, prev.level),
							B:      fmt.Sprintf("%s@%v", ref.Backend, lv),
							Field:  "xlevel",
							Detail: diffObservable(prev.exit, cur.exit, prev.output, cur.output),
						})
					}
				}
			}
		}
	}
	if o.Tracer != nil {
		for _, d := range rep.Divergences {
			o.Tracer.Emit(obsv.Event{
				Kind: obsv.KindDivergence, Name: d.Program + "@" + d.Level.String(),
				Track: "difftest", A: 1,
			})
		}
	}
	return rep, nil
}

// safeRun executes one backend run with panic isolation: a VM bug that
// panics on a generated program becomes an Outcome error (and therefore a
// trap divergence against the healthy backends) instead of killing the
// whole fuzzing process and losing the session's corpus progress.
func safeRun(run func() (*compiler.Result, error)) (res *compiler.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("difftest: backend panic: %v", p)
		}
	}()
	return run()
}

// runMatrix executes one artifact on every selected backend variant.
func (o *Oracle) runMatrix(art *compiler.Artifact, tc compiler.Toolchain) []Outcome {
	var outs []Outcome
	if o.wantFamily("x86") {
		res, err := safeRun(func() (*compiler.Result, error) {
			return compiler.RunX86(art, codegen.DefaultX86Config())
		})
		outs = append(outs, mkOutcome("x86", "x86", res, err))
	}
	if o.wantFamily("wasm") {
		for _, v := range wasmVariants(o.FullWasmMatrix) {
			cfg := v.cfg
			if tc == compiler.Emscripten {
				cfg.GrowGranularityPages = 256
			}
			if v.pooled {
				// Two checkouts through a one-instance pool: the first runs
				// the snapshot-capture instance, the second the recycled one.
				pool := wasmvm.NewInstancePool(art.Module, len(art.WasmBinary),
					wasmvm.PoolOptions{MaxInstances: 1})
				for _, phase := range []string{"+pool", "+recycle"} {
					res, err := safeRun(func() (*compiler.Result, error) {
						return compiler.RunWasmPooled(art, cfg, pool)
					})
					outs = append(outs, mkOutcome("wasm/"+v.name+phase, "wasm", res, err))
				}
				continue
			}
			res, err := safeRun(func() (*compiler.Result, error) {
				return compiler.RunWasm(art, cfg)
			})
			outs = append(outs, mkOutcome("wasm/"+v.name, "wasm", res, err))
		}
	}
	if o.wantFamily("js") {
		for _, v := range jsVariants() {
			res, err := safeRun(func() (*compiler.Result, error) {
				return compiler.RunJS(art, v.cfg)
			})
			outs = append(outs, mkOutcome("js/"+v.name, "js", res, err))
		}
	}
	return outs
}

func mkOutcome(label, family string, res *compiler.Result, err error) Outcome {
	out := Outcome{Backend: label, Family: family, Err: err}
	if res != nil {
		out.Exit = res.Exit
		out.Output = res.OutputStrings()
		out.Steps = res.Steps
		out.MemSum = res.MemChecksum
	}
	return out
}

// referenceOutcome picks the comparison anchor: x86 if present, else the
// first outcome.
func referenceOutcome(outs []Outcome) *Outcome {
	for i := range outs {
		if outs[i].Family == "x86" {
			return &outs[i]
		}
	}
	if len(outs) == 0 {
		return nil
	}
	return &outs[0]
}

// compareOutcomes applies the oracle's observable-state definition:
//
//   - Across families: identical print output and exit value. Generated
//     programs are trap-free by construction, so an error on one backend
//     while another succeeds is a divergence too.
//   - Within the wasm family (same artifact, different VM configs):
//     additionally identical dynamic step counts and final linear-memory
//     checksums — fusion, the register tier, and tier modes must never
//     change execution, only cycle accounting and dispatch speed.
func compareOutcomes(name string, lv ir.OptLevel, tc compiler.Toolchain, outs []Outcome) []Divergence {
	var divs []Divergence
	ref := referenceOutcome(outs)
	if ref == nil {
		return nil
	}
	add := func(a, b *Outcome, field, detail string) {
		divs = append(divs, Divergence{Program: name, Level: lv, Toolchain: tc,
			A: a.Backend, B: b.Backend, Field: field, Detail: detail})
	}
	for i := range outs {
		oc := &outs[i]
		if oc == ref {
			continue
		}
		switch {
		case (oc.Err == nil) != (ref.Err == nil):
			add(ref, oc, "trap", fmt.Sprintf("err %v vs %v", ref.Err, oc.Err))
			continue
		case oc.Err != nil:
			continue // both trapped; generated programs should never get here
		}
		if oc.Exit != ref.Exit {
			add(ref, oc, "exit", fmt.Sprintf("%d vs %d", ref.Exit, oc.Exit))
		}
		if !reflect.DeepEqual(oc.Output, ref.Output) {
			add(ref, oc, "output", diffOutput(ref.Output, oc.Output))
		}
	}
	// Within-wasm invariants.
	var wasmRef *Outcome
	for i := range outs {
		oc := &outs[i]
		if oc.Family != "wasm" || oc.Err != nil {
			continue
		}
		if wasmRef == nil {
			wasmRef = oc
			continue
		}
		if oc.Steps != wasmRef.Steps {
			add(wasmRef, oc, "steps", fmt.Sprintf("%d vs %d", wasmRef.Steps, oc.Steps))
		}
		if oc.MemSum != wasmRef.MemSum {
			add(wasmRef, oc, "memory", fmt.Sprintf("checksum %#x vs %#x", wasmRef.MemSum, oc.MemSum))
		}
	}
	return divs
}

// diffOutput renders the first point of disagreement between two output
// streams.
func diffOutput(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d: %q vs %q (lens %d/%d)", i, a[i], b[i], len(a), len(b))
		}
	}
	return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
}

func diffObservable(exitA, exitB int32, outA, outB []string) string {
	if exitA != exitB {
		return fmt.Sprintf("exit %d vs %d", exitA, exitB)
	}
	return diffOutput(outA, outB)
}

// CheckSeed generates the program for seed and checks it; the standard
// fuzzing entry point.
func (o *Oracle) CheckSeed(seed uint64, gopts GenOptions) (*Report, error) {
	p := Generate(seed, gopts)
	return o.Check(fmt.Sprintf("seed-%d", seed), p.Render())
}

// Summary renders a one-line result for logs.
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("%s: OK (%d runs)", r.Program, r.Runs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d divergence(s):", r.Program, len(r.Divergences))
	for _, d := range r.Divergences {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}
