package serve

// Wire types for the /run endpoint, and the request → harness.Cell
// decoder. Every admitted request maps onto exactly the same Cell a
// benchtab sweep would build, so a served measurement is comparable —
// byte-identical on the zero-fault path — to the one-shot numbers.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
)

// Request is one compile+run request.
type Request struct {
	// Bench is the kernel name (e.g. "atax"); required.
	Bench string `json:"bench"`
	// Size is the input class (XS, S, M, L, XL); default M.
	Size string `json:"size,omitempty"`
	// Lang selects the backend: "wasm" (default) or "js".
	Lang string `json:"lang,omitempty"`
	// Level is the optimization level ("-O2" default; "0".."3", "s", "z"
	// and "fast" spellings accepted, as in benchtab).
	Level string `json:"level,omitempty"`
	// Profile is the browser profile name ("chrome-desktop" default).
	Profile string `json:"profile,omitempty"`
	// Toolchain is "cheerp" (default) or "emscripten".
	Toolchain string `json:"toolchain,omitempty"`
	// DeadlineMS overrides the server's default per-request deadline;
	// capped at the server's MaxDeadline.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// Response statuses. Every admitted request terminates with exactly one.
const (
	StatusOK          = "ok"
	StatusInvalid     = "invalid"      // malformed request; never admitted
	StatusShed        = "shed"         // load-shed at admission (queue full or injected)
	StatusRejected    = "rejected"     // refused at admission by an injected fault
	StatusDraining    = "draining"     // refused at admission during graceful drain
	StatusBreakerOpen = "breaker-open" // refused by an open circuit breaker
	StatusFailed      = "failed"       // ran and exhausted the resilience ladder
	StatusTimeout     = "timeout"      // exceeded its deadline (queued or running)
	StatusCanceled    = "canceled"     // canceled by drain before completing
)

// Response is the terminal outcome of one request.
type Response struct {
	Status string `json:"status"`
	Cell   string `json:"cell,omitempty"`
	Error  string `json:"error,omitempty"`
	// Injected marks errors that came from the deterministic fault plan
	// (drills), distinguishing them from organic failures.
	Injected bool `json:"injected,omitempty"`
	// RetryAfterMS accompanies shed / breaker-open / draining responses.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// Measurement (status "ok"): the same virtual metrics a one-shot
	// benchtab run of the identical cell reports.
	ExecMS      float64 `json:"exec_ms,omitempty"`
	MemoryKB    float64 `json:"memory_kb,omitempty"`
	Cycles      float64 `json:"cycles,omitempty"`
	Steps       uint64  `json:"steps,omitempty"`
	MemoryBytes uint64  `json:"memory_bytes,omitempty"`
	MemChecksum uint64  `json:"mem_checksum,omitempty"`

	// Execution metadata.
	Attempts   int     `json:"attempts,omitempty"`
	Degraded   string  `json:"degraded,omitempty"`
	CacheHit   bool    `json:"cache_hit,omitempty"`
	VMPooled   bool    `json:"vm_pooled,omitempty"`
	VMRecycled bool    `json:"vm_recycled,omitempty"`
	QueueMS    float64 `json:"queue_ms,omitempty"`
	RunMS      float64 `json:"run_ms,omitempty"`
}

// HTTPStatus maps a response status to its HTTP status code.
func (r *Response) HTTPStatus() int {
	switch r.Status {
	case StatusOK:
		return http.StatusOK
	case StatusInvalid:
		return http.StatusBadRequest
	case StatusShed:
		return http.StatusTooManyRequests
	case StatusTimeout:
		return http.StatusGatewayTimeout
	case StatusFailed:
		return http.StatusInternalServerError
	default: // rejected, draining, breaker-open, canceled
		return http.StatusServiceUnavailable
	}
}

func parseSize(s string) (benchsuite.Size, error) {
	if s == "" {
		return benchsuite.M, nil
	}
	for _, sz := range benchsuite.AllSizes {
		if strings.EqualFold(sz.String(), s) {
			return sz, nil
		}
	}
	return 0, fmt.Errorf("unknown size %q (XS, S, M, L, XL)", s)
}

func parseToolchain(s string) (compiler.Toolchain, error) {
	switch strings.ToLower(s) {
	case "", "cheerp":
		return compiler.Cheerp, nil
	case "emscripten":
		return compiler.Emscripten, nil
	}
	return 0, fmt.Errorf("unknown toolchain %q (cheerp, emscripten)", s)
}

// cell decodes the request into the harness cell it denotes, resolving
// profiles against the server's shared profile table (one instance per
// name, so pooled instruments and warm state are shared across requests).
func (req *Request) cell(profiles map[string]*browser.Profile) (harness.Cell, error) {
	var c harness.Cell
	if req.Bench == "" {
		return c, fmt.Errorf("missing bench name")
	}
	b, err := benchsuite.ByName(req.Bench)
	if err != nil {
		return c, err
	}
	size, err := parseSize(req.Size)
	if err != nil {
		return c, err
	}
	lang := req.Lang
	switch lang {
	case "":
		lang = "wasm"
	case "wasm", "js":
	default:
		return c, fmt.Errorf("unknown lang %q (wasm, js)", req.Lang)
	}
	level := ir.O2
	if req.Level != "" {
		level, err = ir.ParseOptLevel(req.Level)
		if err != nil {
			return c, err
		}
	}
	tc, err := parseToolchain(req.Toolchain)
	if err != nil {
		return c, err
	}
	name := req.Profile
	if name == "" {
		name = "chrome-desktop"
	}
	profile := profiles[name]
	if profile == nil {
		known := make([]string, 0, len(profiles))
		for n := range profiles {
			known = append(known, n)
		}
		return c, fmt.Errorf("unknown profile %q (have: %s)", name, strings.Join(known, ", "))
	}
	return harness.Cell{
		Bench: b, Size: size, Level: level, Lang: lang,
		Profile: profile, Toolchain: tc,
	}, nil
}

// deadline resolves the request's deadline against the server bounds.
func (req *Request) deadline(def, max time.Duration) time.Duration {
	d := def
	if req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
