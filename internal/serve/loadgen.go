package serve

// Open-loop load generation against a benchserve endpoint: Poisson
// arrivals (exponential inter-arrival gaps from a seeded generator) over
// a deterministic schedule of cells drawn from the kernel × profile
// grid. Open-loop means arrivals do not wait for completions — exactly
// the regime where an unprotected server melts and an admission-
// controlled one sheds — so the generator doubles as the standing
// overload stress test. The arrival schedule is a pure function of the
// seed; completions (and therefore latency percentiles) are not.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
)

// LoadOptions configures one load run.
type LoadOptions struct {
	// Target is the server base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Rate is the mean arrival rate in requests/second; <=0 selects 50.
	Rate float64
	// Requests is the total to submit; <=0 selects 100.
	Requests int
	// Seed drives the arrival gaps and cell selection.
	Seed uint64
	// Benches restricts the kernel set (nil = all 41).
	Benches []string
	// Sizes restricts the size classes (nil = XS, keeping bursts cheap).
	Sizes []string
	// Profiles restricts the browser profiles (nil = all six).
	Profiles []string
	// Lang is "wasm" (default) or "js".
	Lang string
	// Level is the optimization level (default "-O2").
	Level string
	// DeadlineMS is attached to every request (0 = server default).
	DeadlineMS int
	// Timeout bounds each HTTP round-trip; <=0 selects 5m (a request's
	// server-side lifetime is already bounded by its deadline).
	Timeout time.Duration
}

// LoadStats summarizes a load run. The accounting identity every run
// must satisfy: Submitted == sum(ByStatus) + TransportErrors.
type LoadStats struct {
	Submitted       int
	ByStatus        map[string]int
	TransportErrors int
	Elapsed         time.Duration
	P50, P90, P99   time.Duration // terminal-response latency percentiles
	Max             time.Duration
}

// Terminal reports how many requests got a terminal response.
func (s *LoadStats) Terminal() int {
	n := 0
	for _, v := range s.ByStatus {
		n += v
	}
	return n
}

// Accounted reports whether every submitted request is accounted for.
func (s *LoadStats) Accounted() bool {
	return s.Terminal()+s.TransportErrors == s.Submitted
}

// Render formats the stats as a compact report.
func (s *LoadStats) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "loadgen: %d requests in %v (%.1f/s offered)\n",
		s.Submitted, s.Elapsed.Round(time.Millisecond),
		float64(s.Submitted)/s.Elapsed.Seconds())
	statuses := make([]string, 0, len(s.ByStatus))
	for st := range s.ByStatus {
		statuses = append(statuses, st)
	}
	sort.Strings(statuses)
	for _, st := range statuses {
		fmt.Fprintf(&b, "  %-12s %d\n", st, s.ByStatus[st])
	}
	if s.TransportErrors > 0 {
		fmt.Fprintf(&b, "  %-12s %d\n", "transport", s.TransportErrors)
	}
	fmt.Fprintf(&b, "  latency p50 %v  p90 %v  p99 %v  max %v\n",
		s.P50.Round(time.Microsecond), s.P90.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	return b.String()
}

// splitmix64 is the same generator faultinject uses; local so the
// arrival schedule does not consume the fault plan's sequences.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type lgRand struct{ state uint64 }

func (r *lgRand) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// float01 returns a uniform draw in (0, 1].
func (r *lgRand) float01() float64 {
	return (float64(r.next()>>11) + 1) / float64(1<<53)
}

// RunLoad drives a load run to completion: every submitted request is
// waited out (each is bounded by its deadline server-side), so the
// returned stats account for all of them.
func RunLoad(opts LoadOptions) (*LoadStats, error) {
	if opts.Rate <= 0 {
		opts.Rate = 50
	}
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Minute
	}
	benches := opts.Benches
	if len(benches) == 0 {
		for _, b := range benchsuite.All() {
			benches = append(benches, b.Name)
		}
	} else {
		for _, name := range benches {
			if _, err := benchsuite.ByName(name); err != nil {
				return nil, err
			}
		}
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = []string{"XS"}
	}
	profiles := opts.Profiles
	if len(profiles) == 0 {
		for _, p := range browser.AllProfiles() {
			profiles = append(profiles, p.Name())
		}
	}
	lang := opts.Lang
	if lang == "" {
		lang = "wasm"
	}
	level := opts.Level
	if level == "" {
		level = "-O2"
	}

	// A private transport, closed on return, so a test's goroutine-leak
	// check is not at the mercy of shared idle keep-alive connections.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Timeout: opts.Timeout, Transport: tr}
	rng := &lgRand{state: opts.Seed ^ 0xbadc0ffee}
	stats := &LoadStats{ByStatus: make(map[string]int)}
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		latencies []time.Duration
	)
	start := time.Now()
	for i := 0; i < opts.Requests; i++ {
		if i > 0 {
			// Exponential inter-arrival gap: open-loop Poisson arrivals.
			gap := time.Duration(-math.Log(rng.float01()) / opts.Rate * float64(time.Second))
			time.Sleep(gap)
		}
		req := &Request{
			Bench:      benches[int(rng.next()%uint64(len(benches)))],
			Size:       sizes[int(rng.next()%uint64(len(sizes)))],
			Profile:    profiles[int(rng.next()%uint64(len(profiles)))],
			Lang:       lang,
			Level:      level,
			DeadlineMS: opts.DeadlineMS,
		}
		stats.Submitted++
		wg.Add(1)
		go func(req *Request) {
			defer wg.Done()
			t0 := time.Now()
			status, err := postRun(client, opts.Target, req)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				stats.TransportErrors++
				return
			}
			stats.ByStatus[status]++
			latencies = append(latencies, lat)
		}(req)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	stats.P50, stats.P90, stats.P99 = pct(0.50), pct(0.90), pct(0.99)
	if n := len(latencies); n > 0 {
		stats.Max = latencies[n-1]
	}
	return stats, nil
}

// postRun POSTs one request and returns the terminal status.
func postRun(client *http.Client, target string, req *Request) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	httpResp, err := client.Post(target+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return "", fmt.Errorf("decoding /run response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	if resp.Status == "" {
		return "", fmt.Errorf("empty status in /run response (HTTP %d)", httpResp.StatusCode)
	}
	return resp.Status, nil
}
