package serve

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
	"wasmbench/internal/telemetry"
)

// waitGoroutines polls until the goroutine count drops back to base (or
// the deadline passes), then asserts.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutine leak: %d running, baseline %d", n, base)
	}
}

func drain(t *testing.T, s *Server, budget time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestServeByteIdentical: the acceptance criterion on measurement
// honesty. A request served by the daemon — including one served from a
// recycled warm-pool instance — reports byte-identical virtual metrics
// (cycles, steps, memory, checksum) to the same cell run one-shot
// through the plain harness path benchtab uses.
func TestServeByteIdentical(t *testing.T) {
	b, err := benchsuite.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	ref := harness.RunCell(harness.Cell{
		Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm",
		Profile: browser.Chrome(browser.Desktop),
	})
	if ref.Err != nil {
		t.Fatalf("one-shot reference: %v", ref.Err)
	}

	s := NewServer(Config{Workers: 2, Hub: telemetry.NewHub(0)})
	defer drain(t, s, 10*time.Second)

	req := &Request{Bench: "atax", Size: "XS", Profile: "chrome-desktop"}
	first := s.Submit(req)
	if first.Status != StatusOK {
		t.Fatalf("first request: %+v", first)
	}
	second := s.Submit(req)
	if second.Status != StatusOK {
		t.Fatalf("second request: %+v", second)
	}
	if !second.VMPooled || !second.VMRecycled {
		t.Errorf("second request should be served warm: pooled=%v recycled=%v",
			second.VMPooled, second.VMRecycled)
	}
	if !second.CacheHit {
		t.Error("second request should hit the artifact cache")
	}

	for _, resp := range []*Response{first, second} {
		if resp.ExecMS != ref.Meas.ExecMS || resp.MemoryKB != ref.Meas.MemoryKB {
			t.Errorf("measurement drift: exec %v vs %v, mem %v vs %v",
				resp.ExecMS, ref.Meas.ExecMS, resp.MemoryKB, ref.Meas.MemoryKB)
		}
		r := ref.Meas.Result
		if resp.Cycles != r.Cycles || resp.Steps != r.Steps ||
			resp.MemoryBytes != r.MemoryBytes || resp.MemChecksum != r.MemChecksum {
			t.Errorf("virtual-metric drift: cycles %v/%v steps %d/%d mem %d/%d checksum %#x/%#x",
				resp.Cycles, r.Cycles, resp.Steps, r.Steps,
				resp.MemoryBytes, r.MemoryBytes, resp.MemChecksum, r.MemChecksum)
		}
	}
}

// TestServeSmoke: the overload-safety acceptance criterion, end to end
// over HTTP. A fixed-seed open-loop burst far past queue bound + worker
// count (with injected stalls to keep workers busy) must yield exactly
// (served + shed + timed-out + ...) == submitted — nothing silently
// dropped, nothing hung — while /healthz stays live, and the server must
// drain cleanly afterwards with no goroutine leaks.
func TestServeSmoke(t *testing.T) {
	base := runtime.NumGoroutine()
	const submitted = 48
	plan := faultinject.NewPlan(7, faultinject.Rule{
		Point: faultinject.WasmStall, Count: 6, Stall: 100 * time.Millisecond,
	})
	s := NewServer(Config{
		QueueBound: 4, Workers: 2, Faults: plan,
		Hub: telemetry.NewHub(0),
	})
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target := "http://" + addr

	// Liveness probe racing the burst: /healthz must answer 200 while the
	// server sheds.
	stopProbe := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		client := &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{}}
		defer client.Transport.(*http.Transport).CloseIdleConnections()
		for {
			select {
			case <-stopProbe:
				return
			case <-time.After(20 * time.Millisecond):
			}
			resp, err := client.Get(target + "/healthz")
			if err != nil {
				t.Errorf("/healthz unreachable mid-burst: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/healthz = %d mid-burst", resp.StatusCode)
				return
			}
		}
	}()

	stats, err := RunLoad(LoadOptions{
		Target: target, Rate: 2000, Requests: submitted, Seed: 7,
		Benches: []string{"atax", "bicg", "mvt"}, Sizes: []string{"XS"},
		Profiles: []string{"chrome-desktop", "firefox-desktop"},
	})
	close(stopProbe)
	probeWG.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if stats.TransportErrors != 0 {
		t.Errorf("transport errors: %d", stats.TransportErrors)
	}
	if !stats.Accounted() {
		t.Errorf("accounting violated: submitted=%d terminal=%d transport=%d (%v)",
			stats.Submitted, stats.Terminal(), stats.TransportErrors, stats.ByStatus)
	}
	if stats.ByStatus[StatusShed] == 0 {
		t.Errorf("burst of %d past queue bound 4 never shed: %v", submitted, stats.ByStatus)
	}
	if stats.ByStatus[StatusOK] == 0 {
		t.Errorf("no request served during the burst: %v", stats.ByStatus)
	}
	// Server-side tally agrees with the client's view.
	total := 0
	for _, n := range s.Counts() {
		total += n
	}
	if total != submitted {
		t.Errorf("server counted %d terminal responses, want %d (%v)", total, submitted, s.Counts())
	}

	drain(t, s, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitGoroutines(t, base)
}

// TestServeDrainCancelsInFlight: graceful drain under a deadline. A cell
// wedged in an hour-long injected stall is canceled when the drain
// budget expires — the request still gets its terminal (canceled)
// response, post-drain admissions are refused as draining, and no
// goroutines leak.
func TestServeDrainCancelsInFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	plan := faultinject.NewPlan(3, faultinject.Rule{
		Point: faultinject.WasmStall, Count: 1, Stall: time.Hour,
	})
	s := NewServer(Config{
		QueueBound: 4, Workers: 1, Faults: plan,
		DefaultDeadline: time.Hour, // the drain, not the deadline, must cancel it
	})

	respCh := make(chan *Response, 1)
	go func() { respCh <- s.Submit(&Request{Bench: "atax", Size: "XS"}) }()

	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s.InFlight() != 1 {
		t.Fatal("stalled request never reached a worker")
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain did not bound its latency: %v", elapsed)
	}

	select {
	case resp := <-respCh:
		if resp.Status != StatusCanceled {
			t.Errorf("in-flight request status = %q, want %q (%+v)", resp.Status, StatusCanceled, resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never got a terminal response")
	}

	if resp := s.Submit(&Request{Bench: "atax", Size: "XS"}); resp.Status != StatusDraining {
		t.Errorf("post-drain admission status = %q, want %q", resp.Status, StatusDraining)
	}
	waitGoroutines(t, base)
}

// TestServeFaultDrill: the serve.admit / serve.shed injection points
// surface as typed, attributable responses — deterministically under a
// fixed seed, never as hangs. Runs both in-process and over HTTP (the
// HTTP layer must map them to 503 and 429 + Retry-After).
func TestServeFaultDrill(t *testing.T) {
	plan := faultinject.NewPlan(11,
		faultinject.Rule{Point: faultinject.ServeAdmit, Count: 1},
		faultinject.Rule{Point: faultinject.ServeShed, Count: 1},
	)
	s := NewServer(Config{Workers: 1, Faults: plan})
	defer drain(t, s, 10*time.Second)

	req := &Request{Bench: "atax", Size: "XS"}

	first := s.Submit(req)
	if first.Status != StatusRejected || !first.Injected {
		t.Fatalf("drill 1: want injected %s, got %+v", StatusRejected, first)
	}
	if !strings.Contains(first.Error, "faultinject: serve.admit") {
		t.Errorf("drill 1 error not typed: %q", first.Error)
	}

	second := s.Submit(req)
	if second.Status != StatusShed || !second.Injected {
		t.Fatalf("drill 2: want injected %s, got %+v", StatusShed, second)
	}
	if !strings.Contains(second.Error, "faultinject: serve.shed") {
		t.Errorf("drill 2 error not typed: %q", second.Error)
	}

	third := s.Submit(req)
	if third.Status != StatusOK {
		t.Fatalf("drill 3: want %s once the drills are exhausted, got %+v", StatusOK, third)
	}

	if got := plan.Counts()[faultinject.ServeAdmit]; got != 1 {
		t.Errorf("serve.admit fired %d times, want 1", got)
	}
	if got := plan.Counts()[faultinject.ServeShed]; got != 1 {
		t.Errorf("serve.shed fired %d times, want 1", got)
	}
}

// TestServeFaultDrillHTTP: same drill through the HTTP surface — status
// codes and Retry-After, not just wire structs.
func TestServeFaultDrillHTTP(t *testing.T) {
	plan := faultinject.NewPlan(11,
		faultinject.Rule{Point: faultinject.ServeAdmit, Count: 1},
		faultinject.Rule{Point: faultinject.ServeShed, Count: 1},
	)
	s := NewServer(Config{Workers: 1, Faults: plan})
	defer drain(t, s, 10*time.Second)
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Timeout: time.Minute, Transport: tr}
	post := func() *http.Response {
		t.Helper()
		resp, err := client.Post("http://"+addr+"/run", "application/json",
			strings.NewReader(`{"bench":"atax","size":"XS"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("injected admit fault: HTTP %d, want 503", resp.StatusCode)
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("injected shed: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Errorf("post-drill request: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestBreakerTripsAndRecovers: consecutive failures trip the per-cell
// breaker (fast-failing subsequent requests), a cooldown admits a probe,
// and a healthy probe closes the breaker again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	// Every compile of the doitgen artifact fails until the rule's budget
	// is spent; other cells are untouched.
	plan := faultinject.NewPlan(13, faultinject.Rule{
		Point: faultinject.CompilerPass, Count: 2, Match: "doitgen",
	})
	s := NewServer(Config{
		Workers: 1, BreakerFailures: 2, BreakerCooldown: 200 * time.Millisecond,
		DisableCache: true, // each request must recompile (and re-fail)
		Faults:       plan,
	})
	defer drain(t, s, 10*time.Second)

	req := &Request{Bench: "doitgen", Size: "XS"}
	for i := 0; i < 2; i++ {
		if resp := s.Submit(req); resp.Status != StatusFailed {
			t.Fatalf("request %d: want %s, got %+v", i, StatusFailed, resp)
		}
	}
	resp := s.Submit(req)
	if resp.Status != StatusBreakerOpen {
		t.Fatalf("post-trip request: want %s, got %+v", StatusBreakerOpen, resp)
	}
	if resp.RetryAfterMS <= 0 {
		t.Error("breaker-open response missing retry-after hint")
	}
	// An unrelated cell is unaffected by doitgen's breaker.
	if other := s.Submit(&Request{Bench: "atax", Size: "XS"}); other.Status != StatusOK {
		t.Errorf("unrelated cell: want ok, got %+v", other)
	}

	time.Sleep(250 * time.Millisecond) // past the cooldown
	// The injected budget (Count: 2) is spent, so the half-open probe
	// compiles cleanly and closes the breaker.
	if probe := s.Submit(req); probe.Status != StatusOK {
		t.Fatalf("half-open probe: want ok, got %+v", probe)
	}
	if after := s.Submit(req); after.Status != StatusOK {
		t.Errorf("post-recovery request: want ok, got %+v", after)
	}
}

// TestLoadgenDeterministicSchedule: two RunLoad calls with one seed
// submit the identical cell sequence (the arrival schedule is a pure
// function of the seed), proven indirectly: all requests land and the
// accounting identity holds for both.
func TestLoadgenAccounting(t *testing.T) {
	s := NewServer(Config{QueueBound: 8, Workers: 2})
	defer drain(t, s, 10*time.Second)
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	stats, err := RunLoad(LoadOptions{
		Target: "http://" + addr, Rate: 500, Requests: 24, Seed: 42,
		Benches: []string{"atax", "bicg"}, Sizes: []string{"XS"},
		Profiles: []string{"chrome-desktop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Accounted() {
		t.Errorf("accounting violated: %+v", stats)
	}
	if stats.ByStatus[StatusOK] == 0 {
		t.Errorf("nothing served: %v", stats.ByStatus)
	}
}
