package serve

// Per-cell circuit breakers. The resilience layer inside the harness
// already retries and degrades a failing cell; the breaker sits one level
// up and protects the *service*: once a given (artifact, profile) cell
// has burned its full retry ladder several times in a row, further
// requests for it are refused immediately — cheap, typed, with a
// Retry-After — instead of occupying a worker for another doomed
// deadline. A half-open probe readmits one request after the cooldown;
// its outcome decides whether the breaker closes or re-opens.

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen // cooldown elapsed, one probe is in flight
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type breaker struct {
	state breakerState
	fails int       // consecutive failures while closed
	until time.Time // open until (when state == breakerOpen)
}

// breakerSet holds one breaker per cell label. A zero failure threshold
// disables the whole set (allow always, report a no-op).
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
	states    map[string]*breaker
	trips     int
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		states:    make(map[string]*breaker),
	}
}

// allow reports whether a request for the labeled cell may proceed. When
// refused, retryAfter is how long until the breaker will probe again.
func (bs *breakerSet) allow(label string) (ok bool, retryAfter time.Duration) {
	if bs == nil {
		return true, 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.states[label]
	if b == nil {
		return true, 0
	}
	switch b.state {
	case breakerOpen:
		now := bs.now()
		if now.Before(b.until) {
			return false, b.until.Sub(now)
		}
		b.state = breakerHalfOpen
		return true, 0
	case breakerHalfOpen:
		// One probe at a time; concurrent requests wait out the probe.
		return false, bs.cooldown
	default:
		return true, 0
	}
}

// report records a terminal outcome for the labeled cell. Canceled
// requests must not be reported: a drain says nothing about cell health.
func (bs *breakerSet) report(label string, failed bool) {
	if bs == nil {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.states[label]
	if b == nil {
		if !failed {
			return // healthy and unknown: nothing to track
		}
		b = &breaker{}
		bs.states[label] = b
	}
	if !failed {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= bs.threshold {
		b.state = breakerOpen
		b.until = bs.now().Add(bs.cooldown)
		b.fails = 0
		bs.trips++
	}
}

// breakerInfo is the /debug/serve projection of one breaker.
type breakerInfo struct {
	State string    `json:"state"`
	Fails int       `json:"fails,omitempty"`
	Until time.Time `json:"until,omitempty"`
}

func (bs *breakerSet) snapshot() (states map[string]breakerInfo, trips int) {
	if bs == nil {
		return nil, 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	states = make(map[string]breakerInfo, len(bs.states))
	for label, b := range bs.states {
		info := breakerInfo{State: b.state.String(), Fails: b.fails}
		if b.state == breakerOpen {
			info.Until = b.until
		}
		states[label] = info
	}
	return states, bs.trips
}
