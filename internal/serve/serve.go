package serve

// benchserve's engine: a long-running, overload-safe benchmark service on
// top of the existing measurement stack. The flow is
//
//	admission → bounded queue → worker group → ArtifactCache + VMPools
//	                                           → resilient harness run
//
// with three robustness properties the tests pin down:
//
//  1. Every request gets exactly one terminal response — admitted or not,
//     overloaded or not, draining or not. Overload is shed explicitly
//     (429 + Retry-After) at admission; nothing is silently dropped and
//     nothing hangs.
//  2. Deadlines and drain are cooperative cancelation: each request
//     carries a context from admission to the VM stall it may die in,
//     so a SIGTERM drain bounds its own latency by canceling in-flight
//     cells rather than waiting them out.
//  3. Measurement honesty: a request served from the warm pool reports
//     byte-identical virtual metrics to the same cell run one-shot,
//     because the worker path *is* harness.RunCellsWith over the shared
//     cache/pool substrate — there is no separate serving execution path
//     to drift.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wasmbench/internal/browser"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/harness"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
)

// Config configures a Server. The zero value is serviceable: defaults are
// resolved by NewServer.
type Config struct {
	// QueueBound caps admitted-but-unclaimed requests; past it, requests
	// are shed with 429 + Retry-After. <=0 selects 64.
	QueueBound int
	// Workers is the concurrent execution limit. <=0 selects the harness
	// default (min(NumCPU, 8)).
	Workers int
	// DefaultDeadline applies to requests that set no deadline_ms;
	// <=0 selects 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps any request deadline; <=0 selects 2m.
	MaxDeadline time.Duration
	// RetryAfter is the hint attached to shed responses; <=0 selects 1s.
	RetryAfter time.Duration

	// Resilience knobs forwarded to the per-request harness run.
	Retries        int
	RetryBackoff   time.Duration
	DegradeOnRetry bool
	StepLimit      uint64

	// BreakerFailures trips a cell's circuit breaker after that many
	// consecutive failed (not canceled) requests; 0 disables breakers.
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker refuses before its
	// half-open probe; <=0 selects 5s.
	BreakerCooldown time.Duration

	// DisableVMPool serves every request from cold instantiation.
	DisableVMPool bool
	// VMPoolSize bounds each artifact pool's live instances (<=0: harness
	// default).
	VMPoolSize int
	// DisableCache cold-compiles every request.
	DisableCache bool

	// Faults is the deterministic fault plan, shared by the admission
	// drills (serve.admit, serve.shed) and the per-cell execution faults.
	// nil is fully inert.
	Faults *faultinject.Plan
	// Hub, when set, receives serve_* instruments, the "serve" state
	// provider (/debug/serve), and makes the full telemetry surface
	// available under the server's mux. nil disables telemetry.
	Hub *telemetry.Hub
	// Checkpoint, when set, records every successful cell and serves
	// repeat requests from the checkpoint on restart.
	Checkpoint *harness.Checkpoint
}

func (c Config) withDefaults() Config {
	if c.QueueBound <= 0 {
		c.QueueBound = 64
	}
	if c.Workers <= 0 {
		c.Workers = harness.DefaultWorkers()
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// job is one admitted request riding the queue.
type job struct {
	req    *Request
	cell   harness.Cell
	label  string
	ctx    context.Context // deadline starts at admission
	cancel context.CancelFunc
	enq    time.Time
	done   chan *Response // 1-buffered: the worker's send never blocks
}

// Server executes benchmark requests behind admission control. Create
// with NewServer; it is immediately ready for Submit (in-process) or
// Handler/Serve (HTTP).
type Server struct {
	cfg      Config
	cache    *harness.ArtifactCache
	pools    *harness.VMPools
	profiles map[string]*browser.Profile
	inst     *telemetry.ServeInstruments
	breakers *breakerSet

	queue   chan *job
	jobs    sync.WaitGroup // admitted jobs not yet answered
	workers sync.WaitGroup

	runCtx      context.Context // parent of every job context
	cancelRuns  context.CancelFunc
	stopWorkers chan struct{}
	stopOnce    sync.Once

	mu       sync.Mutex
	draining bool
	inFlight int
	counts   map[string]int
	started  time.Time

	ln  net.Listener
	srv *http.Server
}

// NewServer builds the server and starts its worker group.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		profiles:    make(map[string]*browser.Profile),
		queue:       make(chan *job, cfg.QueueBound),
		stopWorkers: make(chan struct{}),
		counts:      make(map[string]int),
		started:     time.Now(),
	}
	s.runCtx, s.cancelRuns = context.WithCancel(context.Background())
	if !cfg.DisableCache {
		s.cache = harness.NewArtifactCache()
	}
	var reg *telemetry.Registry
	if cfg.Hub != nil {
		reg = cfg.Hub.Registry()
		s.inst = telemetry.NewServeInstruments(reg)
		cfg.Hub.Publish("serve", s.state)
	}
	if !cfg.DisableVMPool {
		s.pools = harness.NewVMPools(cfg.VMPoolSize, reg)
	}
	// One profile instance per name, shared across requests — the same
	// sharing a benchtab sweep uses across its worker pool. Instruments
	// attach once here; they never alter virtual metrics.
	for _, p := range browser.AllProfiles() {
		if reg != nil {
			p.SetInstruments(reg)
		}
		s.profiles[p.Name()] = p
	}
	s.breakers = newBreakerSet(cfg.BreakerFailures, cfg.BreakerCooldown)
	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// incCount tallies a terminal status (for /debug/serve and the tests'
// accounting identity).
func (s *Server) incCount(status string) {
	s.mu.Lock()
	s.counts[status]++
	s.mu.Unlock()
}

// Counts returns a copy of the per-status terminal-response tallies.
func (s *Server) Counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Submit runs one request to a terminal response, blocking the caller
// (the HTTP handler, or a test driving the server in-process). It never
// returns nil and never hangs past the request's deadline plus scheduling
// slack.
func (s *Server) Submit(req *Request) *Response {
	if s.inst != nil {
		s.inst.Requests.Inc()
	}
	cell, err := req.cell(s.profiles)
	if err != nil {
		resp := &Response{Status: StatusInvalid, Error: err.Error()}
		s.incCount(StatusInvalid)
		return resp
	}
	j, resp := s.admit(req, cell)
	if resp != nil {
		s.incCount(resp.Status)
		return resp
	}
	resp = <-j.done
	s.incCount(resp.Status)
	return resp
}

// admit decides a request's fate at the door: draining and injected
// admission faults refuse it, a full queue sheds it, otherwise it joins
// the queue with its deadline clock already running. The draining check,
// fault drills, queue reservation, and jobs.Add all happen under one
// lock so a concurrent Drain can never observe an admitted job it will
// not wait for.
func (s *Server) admit(req *Request, cell harness.Cell) (*job, *Response) {
	label := cell.Label()
	retryMS := s.cfg.RetryAfter.Milliseconds()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &Response{Status: StatusDraining, Cell: label,
			Error: "server is draining", RetryAfterMS: retryMS}
	}
	// Admission drills: deterministic injected faults that must surface
	// as typed responses, never hangs. serve.admit models a broken
	// admission dependency (503), serve.shed a spurious overload signal
	// (429), both attributable via Injected.
	if s.cfg.Faults != nil {
		if s.cfg.Faults.Fire(faultinject.ServeAdmit, label) {
			s.mu.Unlock()
			err := faultinject.Errorf(faultinject.ServeAdmit, "admission refused for %s", label)
			if s.inst != nil {
				s.inst.Rejected.Inc()
			}
			return nil, &Response{Status: StatusRejected, Cell: label,
				Error: err.Error(), Injected: true, RetryAfterMS: retryMS}
		}
		if s.cfg.Faults.Fire(faultinject.ServeShed, label) {
			s.mu.Unlock()
			err := faultinject.Errorf(faultinject.ServeShed, "forced shed for %s", label)
			if s.inst != nil {
				s.inst.Shed.Inc()
			}
			return nil, &Response{Status: StatusShed, Cell: label,
				Error: err.Error(), Injected: true, RetryAfterMS: retryMS}
		}
	}
	ctx, cancel := context.WithTimeout(s.runCtx, req.deadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline))
	j := &job{
		req: req, cell: cell, label: label,
		ctx: ctx, cancel: cancel,
		enq:  time.Now(),
		done: make(chan *Response, 1),
	}
	select {
	case s.queue <- j:
		s.jobs.Add(1)
		s.mu.Unlock()
		if s.inst != nil {
			s.inst.Admitted.Inc()
			s.inst.QueueDepth.Set(float64(len(s.queue)))
		}
		return j, nil
	default:
		s.mu.Unlock()
		cancel()
		if s.inst != nil {
			s.inst.Shed.Inc()
		}
		return nil, &Response{Status: StatusShed, Cell: label,
			Error: fmt.Sprintf("queue full (%d waiting)", s.cfg.QueueBound),
			RetryAfterMS: retryMS}
	}
}

// worker claims queued jobs until the server stops. The stop channel is
// only closed after jobs.Wait() returns, so no admitted job is ever left
// unclaimed.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.queue:
			s.handle(j)
		case <-s.stopWorkers:
			return
		}
	}
}

// handle runs one job to its terminal response.
func (s *Server) handle(j *job) {
	defer s.jobs.Done()
	defer j.cancel()
	queueWait := time.Since(j.enq)
	if s.inst != nil {
		s.inst.QueueDepth.Set(float64(len(s.queue)))
		s.inst.QueueWait.Observe(queueWait.Seconds())
	}
	finish := func(resp *Response) {
		resp.Cell = j.label
		resp.QueueMS = float64(queueWait) / float64(time.Millisecond)
		j.done <- resp
	}

	// The deadline clock ran while the job was queued; a request that
	// expired waiting is a timeout (or drain cancelation) without ever
	// occupying a worker.
	if err := j.ctx.Err(); err != nil {
		resp := &Response{Status: StatusCanceled, Error: err.Error()}
		if errors.Is(err, context.DeadlineExceeded) {
			resp.Status = StatusTimeout
		}
		s.observeTerminal(resp.Status)
		finish(resp)
		return
	}

	if ok, retryAfter := s.breakers.allow(j.label); !ok {
		if s.inst != nil {
			s.inst.BreakerOpen.Inc()
		}
		finish(&Response{Status: StatusBreakerOpen,
			Error:        "circuit breaker open for " + j.label,
			RetryAfterMS: retryAfter.Milliseconds()})
		return
	}

	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	if s.inst != nil {
		s.inst.InFlight.Add(1)
	}
	t0 := time.Now()
	res, m := harness.RunCellsWith([]harness.Cell{j.cell}, harness.RunOptions{
		Workers:        1,
		Context:        j.ctx,
		Cache:          s.cache,
		DisableCache:   s.cfg.DisableCache,
		VMPool:         !s.cfg.DisableVMPool,
		SharedVMPools:  s.pools,
		Retries:        s.cfg.Retries,
		RetryBackoff:   s.cfg.RetryBackoff,
		DegradeOnRetry: s.cfg.DegradeOnRetry,
		StepLimit:      s.cfg.StepLimit,
		Faults:         s.cfg.Faults,
		Checkpoint:     s.cfg.Checkpoint,
	})
	runWall := time.Since(t0)
	s.mu.Lock()
	s.inFlight--
	s.mu.Unlock()
	if s.inst != nil {
		s.inst.InFlight.Add(-1)
		s.inst.RunWall.Observe(runWall.Seconds())
	}

	resp := s.classify(res[0], m.Cells[0])
	resp.RunMS = float64(runWall) / float64(time.Millisecond)
	s.observeTerminal(resp.Status)
	// Canceled says nothing about the cell's health; everything else does.
	if resp.Status != StatusCanceled {
		s.breakers.report(j.label, resp.Status != StatusOK)
	}
	finish(resp)
}

// classify maps a harness result onto the response wire type.
func (s *Server) classify(r harness.CellResult, cm obsv.CellMetric) *Response {
	resp := &Response{
		Attempts: cm.Attempts, Degraded: cm.Degraded, CacheHit: cm.CacheHit,
		VMPooled: cm.VMPooled, VMRecycled: cm.VMPoolHit,
	}
	switch {
	case r.Err == nil:
		resp.Status = StatusOK
		if r.Meas != nil {
			resp.ExecMS = r.Meas.ExecMS
			resp.MemoryKB = r.Meas.MemoryKB
			if r.Meas.Result != nil {
				resp.Cycles = r.Meas.Result.Cycles
				resp.Steps = r.Meas.Result.Steps
				resp.MemoryBytes = r.Meas.Result.MemoryBytes
				resp.MemChecksum = r.Meas.Result.MemChecksum
			}
		}
	case errors.Is(r.Err, harness.ErrCellDeadline):
		resp.Status = StatusTimeout
		resp.Error = r.Err.Error()
	case errors.Is(r.Err, harness.ErrCellCanceled):
		resp.Status = StatusCanceled
		resp.Error = r.Err.Error()
	default:
		resp.Status = StatusFailed
		resp.Error = r.Err.Error()
		resp.Injected = faultinject.IsInjected(r.Err)
	}
	return resp
}

// observeTerminal bumps the terminal-outcome instruments.
func (s *Server) observeTerminal(status string) {
	if s.inst == nil {
		return
	}
	switch status {
	case StatusOK:
		s.inst.Served.Inc()
	case StatusFailed:
		s.inst.Failed.Inc()
	case StatusTimeout:
		s.inst.Timeouts.Inc()
	case StatusCanceled:
		s.inst.Canceled.Inc()
	}
}

// Drain gracefully stops the server: new admissions are refused with
// StatusDraining immediately, queued and in-flight jobs run to their
// terminal responses, and when ctx expires first the remaining jobs are
// canceled (each still gets its terminal — canceled — response). Workers
// exit before Drain returns. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Out of patience: cancel every in-flight and queued job. Their
		// workers observe the cancelation promptly (injected stalls abort,
		// pool waits wake) and still deliver terminal responses.
		s.cancelRuns()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			err = fmt.Errorf("serve: drain: jobs outstanding after cancelation")
		}
	}
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	if err == nil {
		s.workers.Wait()
	}
	s.cancelRuns()
	return err
}

// InFlight reports how many requests are currently executing.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// state is the "serve" telemetry provider (/debug/serve).
func (s *Server) state() any {
	breakers, trips := s.breakers.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	return map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"draining":       s.draining,
		"queue_depth":    len(s.queue),
		"queue_bound":    s.cfg.QueueBound,
		"workers":        s.cfg.Workers,
		"in_flight":      s.inFlight,
		"counts":         s.counts,
		"breakers":       breakers,
		"breaker_trips":  trips,
		"vm_pools":       s.pools.PoolCount(),
	}
}

// Handler returns the server's HTTP surface: POST /run, GET /healthz,
// and — when a Hub is configured — the full telemetry surface
// (/metrics, /debug/trace, /debug/profile, /debug/serve, ...).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeResponse(w, &Response{Status: StatusInvalid, Error: "bad request body: " + err.Error()})
			return
		}
		writeResponse(w, s.Submit(&req))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness stays green during overload and drain: shedding is the
		// server doing its job, not the server being down.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			fmt.Fprintln(w, "ok (draining)")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Hub != nil {
		mux.Handle("/", telemetry.Handler(s.cfg.Hub))
	}
	return mux
}

func writeResponse(w http.ResponseWriter, resp *Response) {
	if resp.RetryAfterMS > 0 {
		secs := (resp.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.HTTPStatus())
	_ = json.NewEncoder(w).Encode(resp)
}

// Serve binds addr (":0" picks a free port) and serves the handler until
// Shutdown. It returns the bound address once the listener is live.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler: s.Handler(),
		// A request's total latency is bounded by MaxDeadline (its context
		// starts at admission, covering queue wait), so the write budget
		// only needs slack on top of that.
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      s.cfg.MaxDeadline + 30*time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the HTTP listener after in-flight handlers finish, up
// to ctx's deadline (then hard-closes). Call Drain first: Shutdown does
// not touch the execution pipeline.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
