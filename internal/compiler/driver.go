// Package compiler is the toolchain driver: it runs the full §3 pipeline —
// source transformation, preprocessing, parsing, checking, runtime linking,
// IR lowering, the optimization pipeline, and code generation for the three
// targets (Wasm, Cheerp-style JS, x86-like native).
//
// Two toolchain flavours mirror the paper's §4.2.2 comparison:
//
//   - Cheerp: 64 KiB allocation granularity (memory grows page-exact, so
//     large inputs trigger frequent grow requests that cross the JS
//     boundary), compact integral-float constants, no Wasm peephole
//     cleanup.
//   - Emscripten: 16 MiB allocation chunks and an up-front 16 MiB heap
//     (more memory, fewer grows), direct f64.const emission, and a
//     peephole pass over the generated Wasm (set/get → tee, dead pushes).
package compiler

import (
	"fmt"
	"strconv"

	"wasmbench/internal/codegen"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/ir"
	"wasmbench/internal/minic"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasm"
)

// Toolchain selects the C-to-Web toolchain flavour.
type Toolchain int

// Toolchains.
const (
	Cheerp Toolchain = iota
	Emscripten
)

func (t Toolchain) String() string {
	if t == Emscripten {
		return "emscripten"
	}
	return "cheerp"
}

// Options configures a compilation.
type Options struct {
	Opt       ir.OptLevel
	Toolchain Toolchain
	// Defines are -D macro definitions (the study's input-size selectors).
	Defines map[string]string
	// StackSize / HeapLimit override the toolchain defaults
	// (cheerp-linear-stack-size / cheerp-linear-heap-size, §3.2).
	StackSize uint32
	HeapLimit uint32
	// ModuleName labels the artifacts.
	ModuleName string
	// Targets selects the backends to run; empty = all.
	Targets []Target
	// Tracer receives KindCompilePass events for every pipeline stage and
	// optimization pass, with deterministic node-count work estimates.
	Tracer obsv.Tracer
	// Faults arms deterministic fault injection (transient optimization-
	// pipeline failure). nil is inert. Excluded from Fingerprint, so armed
	// plans do not perturb artifact-cache keys.
	Faults *faultinject.Plan
	// Instruments publishes live counters to a telemetry registry (compile
	// totals, per-pass work histogram). nil is inert; like Tracer it is
	// excluded from Fingerprint because it never changes the artifact.
	Instruments *telemetry.CompilerInstruments
}

// Target is a code generation target.
type Target string

// Targets.
const (
	TargetWasm Target = "wasm"
	TargetJS   Target = "js"
	TargetX86  Target = "x86"
)

// Artifact is the result of a compilation.
type Artifact struct {
	Opts      Options
	Transform *minic.TransformReport
	IR        *ir.Program

	Module     *wasm.Module
	WasmBinary []byte

	JS string

	X86 *codegen.X86Program
}

// WasmSize returns the Wasm binary size in bytes (the paper's code size
// metric for Wasm).
func (a *Artifact) WasmSize() int { return len(a.WasmBinary) }

// JSSize returns the generated JavaScript size in bytes.
func (a *Artifact) JSSize() int { return len(a.JS) }

// X86Size returns the estimated native code size in bytes.
func (a *Artifact) X86Size() int {
	if a.X86 == nil {
		return 0
	}
	return a.X86.EncodedSize()
}

// WAT renders the module in text format.
func (a *Artifact) WAT() string {
	if a.Module == nil {
		return ""
	}
	return wasm.WAT(a.Module)
}

func wantTarget(opts Options, t Target) bool {
	if len(opts.Targets) == 0 {
		return true
	}
	for _, w := range opts.Targets {
		if w == t {
			return true
		}
	}
	return false
}

// passClock stamps compiler stages onto a tracer with a deterministic
// virtual clock: each stage's duration is its node-count work estimate, so
// the same compilation always produces the same trace.
type passClock struct {
	tracer obsv.Tracer
	inst   *telemetry.CompilerInstruments
	ts     float64
}

func (c *passClock) stage(name string, work, before, after int) {
	if c.inst != nil {
		c.inst.PassWork.Observe(float64(work))
	}
	if c.tracer == nil {
		return
	}
	c.tracer.Emit(obsv.Event{Kind: obsv.KindCompilePass, TS: c.ts,
		Dur: float64(work), Name: name, Track: "compile",
		A: float64(before), B: float64(after)})
	c.ts += float64(work)
}

// Compile runs the pipeline on minic source.
func Compile(src string, opts Options) (*Artifact, error) {
	chunkPages := "1"
	if opts.Toolchain == Emscripten {
		chunkPages = "256"
	}
	defines := map[string]string{"__MALLOC_CHUNK_PAGES": chunkPages}
	for k, v := range opts.Defines {
		defines[k] = v
	}
	clock := &passClock{tracer: opts.Tracer, inst: opts.Instruments}

	full := runtimeSource + "\n" + src
	file, err := minic.ParseSource(full, defines)
	if err != nil {
		return nil, err
	}
	clock.stage("parse", len(full), len(full), len(full))
	report := minic.Transform(file)
	clock.stage("transform", len(full), len(full), len(full))
	if err := minic.Check(file, minic.CheckOptions{}); err != nil {
		return nil, err
	}
	clock.stage("check", len(full), len(full), len(full))

	bopts := ir.DefaultBuildOptions()
	if opts.StackSize != 0 {
		bopts.StackSize = opts.StackSize
	}
	if opts.HeapLimit != 0 {
		bopts.HeapLimit = opts.HeapLimit
	}
	prog, err := ir.Build(file, bopts)
	if err != nil {
		return nil, err
	}
	var hook ir.PassHook
	if opts.Tracer != nil {
		n := ir.NodeCount(prog)
		clock.stage("ir-build", n, n, n)
		hook = func(name string, before, after int) {
			clock.stage(name, before, before, after)
		}
	}
	if opts.Faults != nil && opts.Faults.Fire(faultinject.CompilerPass, opts.ModuleName) {
		// Transient optimization-pipeline failure: a retry advances the
		// sequence number and can succeed.
		if opts.Tracer != nil {
			opts.Tracer.Emit(obsv.Event{Kind: obsv.KindFault, TS: clock.ts,
				Name: string(faultinject.CompilerPass), Track: "compile"})
		}
		return nil, faultinject.Errorf(faultinject.CompilerPass,
			"optimization pipeline failed for %q at -O%d", opts.ModuleName, opts.Opt)
	}
	ir.OptimizeWithHook(prog, opts.Opt, hook)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: post-optimization IR invalid: %w", err)
	}

	art := &Artifact{Opts: opts, Transform: report, IR: prog}

	if wantTarget(opts, TargetWasm) {
		wopts := codegen.WasmOptions{
			ModuleName:       opts.ModuleName,
			CompactF64Consts: opts.Toolchain == Cheerp,
		}
		if opts.Toolchain == Emscripten {
			wopts.InitialHeapPages = 256 // 16 MiB committed up front
		}
		m, err := codegen.Wasm(prog, wopts)
		if err != nil {
			return nil, err
		}
		if opts.Toolchain == Emscripten {
			codegen.PeepholeWasm(m)
			if err := wasm.Validate(m); err != nil {
				return nil, fmt.Errorf("compiler: peephole broke module: %w", err)
			}
		}
		bin, err := wasm.Encode(m)
		if err != nil {
			return nil, err
		}
		art.Module = m
		art.WasmBinary = bin
		clock.stage("codegen-wasm", len(bin), len(bin), len(bin))
	}

	if wantTarget(opts, TargetJS) {
		js, err := codegen.JS(prog, codegen.JSOptions{ModuleName: opts.ModuleName})
		if err != nil {
			return nil, err
		}
		art.JS = js
		clock.stage("codegen-js", len(js), len(js), len(js))
	}

	if wantTarget(opts, TargetX86) {
		xp, err := codegen.X86(prog)
		if err != nil {
			return nil, err
		}
		art.X86 = xp
		clock.stage("codegen-x86", xp.StaticInstrCount(), xp.StaticInstrCount(), xp.StaticInstrCount())
	}
	if opts.Instruments != nil {
		opts.Instruments.Compiles.Inc()
	}
	return art, nil
}

// InputSizeDefine renders a numeric -D definition.
func InputSizeDefine(n int) string { return strconv.Itoa(n) }
