package compiler

// runtimeSource is the minic runtime library linked into every program,
// playing the role of Cheerp's pre-compiled libc subset (§3.2). It
// implements the allocator over the linear-memory intrinsics: a first-fit
// free list with bump extension, growing memory on demand and trapping
// when the configured heap limit is exceeded (the paper's
// cheerp-linear-heap-size runtime error).
//
// __MALLOC_CHUNK_PAGES is substituted by the driver: Cheerp grows by the
// exact page count (64 KiB granularity), Emscripten reserves 16 MiB chunks
// (256 pages) — the §4.2.2 memory/speed trade.
const runtimeSource = `
unsigned __heap_ptr = 0;
unsigned __free_head = 0;

void* malloc(unsigned n) {
	unsigned need;
	unsigned prev;
	unsigned cur;
	unsigned end;
	unsigned pages;
	if (__heap_ptr == 0) {
		__heap_ptr = __builtin_heapbase();
	}
	if (n == 0) {
		n = 1;
	}
	n = (n + 7) / 8 * 8;
	prev = 0;
	cur = __free_head;
	while (cur != 0) {
		unsigned sz = *(unsigned*)cur;
		unsigned nxt = *(unsigned*)(cur + 4);
		if (sz >= n) {
			if (prev == 0) {
				__free_head = nxt;
			} else {
				*(unsigned*)(prev + 4) = nxt;
			}
			return (void*)(cur + 8);
		}
		prev = cur;
		cur = nxt;
	}
	need = n + 8;
	if (__heap_ptr + need > __builtin_heaplimit()) {
		__builtin_trap();
	}
	end = __builtin_memsize() * 65536;
	if (__heap_ptr + need > end) {
		pages = (__heap_ptr + need - end + 65535) / 65536;
		if (pages < __MALLOC_CHUNK_PAGES) {
			pages = __MALLOC_CHUNK_PAGES;
		}
		if (__builtin_memgrow((int)pages) < 0) {
			__builtin_trap();
		}
	}
	cur = __heap_ptr;
	*(unsigned*)cur = n;
	__heap_ptr = __heap_ptr + need;
	return (void*)(cur + 8);
}

void free(void* p) {
	unsigned blk;
	if (p == 0) {
		return;
	}
	blk = (unsigned)p - 8;
	*(unsigned*)(blk + 4) = __free_head;
	__free_head = blk;
}

void* memset(void* dst, int c, unsigned n) {
	char* d = (char*)dst;
	unsigned i;
	for (i = 0; i < n; i++) {
		d[i] = (char)c;
	}
	return dst;
}

void* memcpy(void* dst, void* src, unsigned n) {
	char* d = (char*)dst;
	char* s = (char*)src;
	unsigned i;
	for (i = 0; i < n; i++) {
		d[i] = s[i];
	}
	return dst;
}
`
