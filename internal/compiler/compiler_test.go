package compiler

import (
	"reflect"
	"strings"
	"testing"

	"wasmbench/internal/codegen"
	"wasmbench/internal/ir"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/wasmvm"
)

// gemmSrc is a small matrix-multiply kernel exercising doubles, 2D global
// arrays, nested loops, and the print channel.
const gemmSrc = `
#define N 12
double A[N][N];
double B[N][N];
double C[N][N];

void init() {
	int i; int j;
	for (i = 0; i < N; i++) {
		for (j = 0; j < N; j++) {
			A[i][j] = (double)((i * j + 3) % 7) / 7.0;
			B[i][j] = (double)((i - j + 11) % 5) / 5.0;
			C[i][j] = 0.0;
		}
	}
}

int main() {
	int i; int j; int k;
	double sum = 0.0;
	init();
	for (i = 0; i < N; i++) {
		for (j = 0; j < N; j++) {
			double acc = 0.0;
			for (k = 0; k < N; k++) {
				acc += A[i][k] * B[k][j];
			}
			C[i][j] = acc / 12.0;
		}
	}
	for (i = 0; i < N; i++) {
		sum += C[i][i];
	}
	print_f(sum);
	return (int)(sum * 1000.0);
}
`

// mixedSrc exercises i64 arithmetic, bit manipulation, switch, recursion,
// pointers, malloc, and strings across all backends.
const mixedSrc = `
long mix64(long x) {
	x = x * 6364136223846793005 + 1442695040888963407;
	x = x ^ (x >> 29);
	return x;
}

int fib(int n) {
	if (n < 3) return 1;
	return fib(n - 1) + fib(n - 2);
}

int classify(int v) {
	switch (v % 5) {
	case 0: return 10;
	case 1:
	case 2: return 20;
	case 3: return 30;
	default: return 40;
	}
}

int main() {
	long h = 12345;
	int i;
	int acc = 0;
	int *buf = (int*)malloc(64 * sizeof(int));
	for (i = 0; i < 50; i++) {
		h = mix64(h);
		acc += classify((int)(h & 1023));
	}
	for (i = 0; i < 64; i++) {
		buf[i] = i * i;
	}
	for (i = 0; i < 64; i += 7) {
		acc += buf[i];
	}
	free(buf);
	acc += fib(12);
	print_i(h);
	print_i((long)acc);
	print_s("done");
	return acc;
}
`

var allLevels = []ir.OptLevel{ir.O0, ir.O1, ir.O2, ir.O3, ir.Os, ir.Oz, ir.Ofast}

func compileAt(t *testing.T, src string, level ir.OptLevel) *Artifact {
	t.Helper()
	art, err := Compile(src, Options{Opt: level, ModuleName: "test"})
	if err != nil {
		t.Fatalf("compile %v: %v", level, err)
	}
	return art
}

func runAll(t *testing.T, art *Artifact) (w, j, x *Result) {
	t.Helper()
	w, err := RunWasm(art, wasmvm.DefaultConfig())
	if err != nil {
		t.Fatalf("wasm: %v", err)
	}
	j, err = RunJS(art, jsvm.DefaultConfig())
	if err != nil {
		t.Fatalf("js: %v", err)
	}
	x, err = RunX86(art, codegen.DefaultX86Config())
	if err != nil {
		t.Fatalf("x86: %v", err)
	}
	return w, j, x
}

// TestDifferentialBackends is the core integration test: the same program
// must produce identical outputs and exit codes on Wasm, JS, and x86 at
// every optimization level.
func TestDifferentialBackends(t *testing.T) {
	for _, src := range []struct {
		name string
		code string
	}{{"gemm", gemmSrc}, {"mixed", mixedSrc}} {
		for _, level := range allLevels {
			t.Run(src.name+"/"+level.String(), func(t *testing.T) {
				art := compileAt(t, src.code, level)
				w, j, x := runAll(t, art)
				if w.Exit != x.Exit || j.Exit != x.Exit {
					t.Errorf("exit codes differ: wasm=%d js=%d x86=%d", w.Exit, j.Exit, x.Exit)
				}
				ws, js, xs := w.OutputStrings(), j.OutputStrings(), x.OutputStrings()
				if !reflect.DeepEqual(ws, xs) {
					t.Errorf("wasm output %v != x86 output %v", ws, xs)
				}
				if !reflect.DeepEqual(js, xs) {
					t.Errorf("js output %v != x86 output %v", js, xs)
				}
			})
		}
	}
}

// TestOptimizedOutputsMatchO0 guards the optimizer against miscompilation:
// every level must preserve program behavior.
func TestOptimizedOutputsMatchO0(t *testing.T) {
	base := compileAt(t, mixedSrc, ir.O0)
	ref, err := RunX86(base, codegen.DefaultX86Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range allLevels[1:] {
		art := compileAt(t, mixedSrc, level)
		got, err := RunX86(art, codegen.DefaultX86Config())
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if got.Exit != ref.Exit || !reflect.DeepEqual(got.OutputStrings(), ref.OutputStrings()) {
			t.Errorf("%v changed behavior: exit %d vs %d, out %v vs %v",
				level, got.Exit, ref.Exit, got.OutputStrings(), ref.OutputStrings())
		}
	}
}

func TestOptimizationReducesWork(t *testing.T) {
	o0 := compileAt(t, gemmSrc, ir.O0)
	o2 := compileAt(t, gemmSrc, ir.O2)
	r0, err := RunX86(o0, codegen.DefaultX86Config())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunX86(o2, codegen.DefaultX86Config())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles >= r0.Cycles {
		t.Errorf("-O2 should be faster than -O0 on x86: %v vs %v", r2.Cycles, r0.Cycles)
	}
}

func TestVectorizeIncreasesWasmCodeSize(t *testing.T) {
	// -O2 (vectorize-loops) produces larger code than -Oz (paper Fig. 1/5).
	o2 := compileAt(t, gemmSrc, ir.O2)
	oz := compileAt(t, gemmSrc, ir.Oz)
	if o2.WasmSize() <= oz.WasmSize() {
		t.Errorf("-O2 wasm (%d bytes) should be larger than -Oz (%d bytes)",
			o2.WasmSize(), oz.WasmSize())
	}
}

func TestToolchainFlavours(t *testing.T) {
	ch, err := Compile(gemmSrc, Options{Opt: ir.O2, Toolchain: Cheerp, ModuleName: "ch"})
	if err != nil {
		t.Fatal(err)
	}
	em, err := Compile(gemmSrc, Options{Opt: ir.O2, Toolchain: Emscripten, ModuleName: "em"})
	if err != nil {
		t.Fatal(err)
	}
	// Behavior identical.
	rch, err := RunWasm(ch, wasmvm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfgEm := wasmvm.DefaultConfig()
	cfgEm.GrowGranularityPages = 256
	rem, err := RunWasm(em, cfgEm)
	if err != nil {
		t.Fatal(err)
	}
	if rch.Exit != rem.Exit || !reflect.DeepEqual(rch.OutputStrings(), rem.OutputStrings()) {
		t.Fatalf("toolchains disagree: %v vs %v", rch.OutputStrings(), rem.OutputStrings())
	}
	// Emscripten commits a big initial heap → more memory (§4.2.2).
	if rem.MemoryBytes <= rch.MemoryBytes {
		t.Errorf("emscripten memory (%d) should exceed cheerp (%d)", rem.MemoryBytes, rch.MemoryBytes)
	}
	// Emscripten's peephole runs fewer dynamic instructions.
	if rem.Steps >= rch.Steps {
		t.Errorf("emscripten steps (%d) should be below cheerp (%d)", rem.Steps, rch.Steps)
	}
}

func TestHeapLimitTrap(t *testing.T) {
	src := `
int main() {
	int i;
	for (i = 0; i < 100; i++) {
		char* p = (char*)malloc(1024 * 1024);
		p[0] = 1;
	}
	return 0;
}
`
	// Default Cheerp heap limit is 8 MiB: allocating 100 MiB must trap
	// (the paper's §3.2 runtime error), and raising the limit must fix it.
	art, err := Compile(src, Options{Opt: ir.O1, ModuleName: "oom"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWasm(art, wasmvm.DefaultConfig()); err == nil {
		t.Fatal("expected heap-limit trap with default cheerp-linear-heap-size")
	}
	big, err := Compile(src, Options{Opt: ir.O1, HeapLimit: 256 << 20, ModuleName: "oom2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWasm(big, wasmvm.DefaultConfig()); err != nil {
		t.Fatalf("raised heap limit should succeed: %v", err)
	}
}

func TestOfastKeepsDeadStores(t *testing.T) {
	// The paper's Fig. 7 ADPCM case: a never-read global array store is
	// eliminated at -O2 but survives at -Ofast (the modeled pass bug).
	src := `
int result[256];
int sink;
int main() {
	int i;
	for (i = 0; i < 200; i++) {
		result[i % 256] = i * 3;
		sink = sink + i;
	}
	return sink;
}
`
	o2 := compileAt(t, src, ir.O2)
	ofast := compileAt(t, src, ir.Ofast)
	r2, err := RunWasm(o2, wasmvm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RunWasm(ofast, wasmvm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Exit != rf.Exit {
		t.Fatalf("exit codes differ: %d vs %d", r2.Exit, rf.Exit)
	}
	if rf.WasmStats.Counts[wasmvm.CStore] <= r2.WasmStats.Counts[wasmvm.CStore] {
		t.Errorf("-Ofast should keep the dead stores: stores %d (Ofast) vs %d (O2)",
			rf.WasmStats.Counts[wasmvm.CStore], r2.WasmStats.Counts[wasmvm.CStore])
	}
}

func TestTransformedSourceCompiles(t *testing.T) {
	src := `
union bits { double d; long ll; };
union bits u;
int main() {
	int err = 0;
	try {
		u.d = 2.5;
		if (u.ll == 0) throw 1;
	} catch (int e) {
		err = 1;
	}
	return (int)(u.ll >> 60) + err;
}
`
	art, err := Compile(src, Options{Opt: ir.O1, ModuleName: "transform"})
	if err != nil {
		t.Fatal(err)
	}
	if art.Transform.UnionsConverted != 1 || art.Transform.ExceptionsRemoved != 1 {
		t.Errorf("transform report: %+v", art.Transform)
	}
	w, j, x := runAll(t, art)
	if w.Exit != x.Exit || j.Exit != x.Exit {
		t.Errorf("exits differ: %d %d %d", w.Exit, j.Exit, x.Exit)
	}
	// 2.5 = 0x4004000000000000: top nibble 4.
	if x.Exit != 4 {
		t.Errorf("union reinterpret result: %d, want 4", x.Exit)
	}
}

func TestGeneratedJSParses(t *testing.T) {
	art := compileAt(t, gemmSrc, ir.O2)
	if !strings.Contains(art.JS, "HEAPF64") {
		t.Error("generated JS should use the typed-array heap")
	}
	if !strings.Contains(art.JS, "function f_main") {
		t.Error("generated JS should define f_main")
	}
}

func TestWATRendering(t *testing.T) {
	art := compileAt(t, gemmSrc, ir.O2)
	wat := art.WAT()
	for _, want := range []string{"(module", "f64.mul", "(export \"main\""} {
		if !strings.Contains(wat, want) {
			t.Errorf("WAT missing %q", want)
		}
	}
}
