package compiler

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Fingerprint returns a content-addressed key for a compilation: a SHA-256
// over the source text and every Options field that affects the generated
// artifact — defines, opt level, toolchain, stack/heap limits, module name,
// and target set. The pipeline is deterministic, so two compilations with
// equal fingerprints produce identical artifacts; the harness compile
// cache keys on this.
//
// Tracer and Instruments are deliberately excluded: they observe
// compilation but never change its output.
func Fingerprint(src string, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "src:%d:", len(src))
	h.Write([]byte(src))
	fmt.Fprintf(h, "\nopt:%d toolchain:%d stack:%d heap:%d name:%s\n",
		int(opts.Opt), int(opts.Toolchain), opts.StackSize, opts.HeapLimit, opts.ModuleName)
	keys := make([]string, 0, len(opts.Defines))
	for k := range opts.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "def:%s=%s\n", k, opts.Defines[k])
	}
	targets := make([]string, 0, len(opts.Targets))
	for _, t := range opts.Targets {
		targets = append(targets, string(t))
	}
	sort.Strings(targets)
	for _, t := range targets {
		fmt.Fprintf(h, "target:%s\n", t)
	}
	return hex.EncodeToString(h.Sum(nil))
}
