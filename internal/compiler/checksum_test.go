package compiler

import (
	"math/rand"
	"testing"
)

// naiveFNV1a is the reference byte-at-a-time loop memChecksum must match
// bit for bit on every input — the checksum is a differential-comparison
// metric, so the zero-run fast path may change only its speed.
func naiveFNV1a(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func TestMemChecksumMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := [][]byte{
		nil,
		{},
		{0},
		{1},
		make([]byte, 7),          // sub-word, all zero
		make([]byte, 8),          // one zero word
		make([]byte, 65536),      // a zero page
		{1, 2, 3, 4, 5, 6, 7, 8}, // one dense word
	}
	// Dense random buffer at awkward lengths around word boundaries.
	for _, n := range []int{1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 4096, 4099} {
		b := make([]byte, n)
		rng.Read(b)
		cases = append(cases, b)
	}
	// Sparse buffers: the realistic linear-memory shape — a small dense
	// prefix, interior islands of data, and a long zero tail.
	for trial := 0; trial < 50; trial++ {
		b := make([]byte, 1+rng.Intn(1<<16))
		for i := 0; i < len(b)/64; i++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		cases = append(cases, b)
	}
	for i, b := range cases {
		if got, want := memChecksum(b), naiveFNV1a(b); got != want {
			t.Errorf("case %d (len %d): memChecksum %#x != naive %#x", i, len(b), got, want)
		}
	}
}

func TestFnvPrimePow(t *testing.T) {
	want := uint64(1)
	for n := 0; n < 100; n++ {
		if got := fnvPrimePow(n); got != want {
			t.Fatalf("fnvPrimePow(%d) = %#x, want %#x", n, got, want)
		}
		want *= fnvPrime
	}
}

func BenchmarkMemChecksum(b *testing.B) {
	mem := make([]byte, 4<<20) // 4 MiB, mostly zero: typical post-run memory
	rng := rand.New(rand.NewSource(7))
	rng.Read(mem[:8<<10])
	b.SetBytes(int64(len(mem)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memChecksum(mem)
	}
}
