package compiler

import (
	"encoding/binary"
	"fmt"
	"math"

	"wasmbench/internal/codegen"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/obsv"
	"wasmbench/internal/wasmvm"
)

// Result captures one program execution on any backend.
type Result struct {
	Exit   int32
	Output []codegen.OutputEvent
	Cycles float64
	Steps  uint64
	// MemoryBytes is the backend's memory metric: linear-memory high-water
	// mark for Wasm/x86, JS-heap peak for JS.
	MemoryBytes uint64
	// ExternalBytes is the JS backing-store peak (JS backend only).
	ExternalBytes uint64
	// MemChecksum is the FNV-1a hash of the final linear memory (Wasm and
	// x86 backends; 0 for JS, whose heap layout is engine-managed). The
	// differential oracle compares it across VM configurations of the
	// same artifact.
	MemChecksum uint64
	// WasmStats carries the Wasm VM counters when applicable.
	WasmStats wasmvm.Stats
	GrowOps   int
	GCs       int
	TierUps   int
	// Profiles carries the VM's per-function virtual-cycle profiles when
	// profiling was enabled (Config.Profile or a non-nil Tracer); nil
	// otherwise. The harness merges these into the live telemetry hub.
	Profiles []obsv.FuncProfile
	// VMPooled reports that the run was served through an instance pool
	// (RunWasmPooled with a live pool checkout); VMPoolRecycled narrows that
	// to a snapshot-reset recycled instance rather than a fresh clone.
	// Host-time bookkeeping only — never part of differential comparison.
	VMPooled       bool
	VMPoolRecycled bool
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// memChecksum is FNV-1a over a byte slice, with an exact fast path for zero
// runs. XOR with a zero byte is the identity, so n zero bytes advance the
// hash by h *= prime^n — computed in O(log n) multiplies instead of n.
// Linear memories are overwhelmingly zero pages past the working set, which
// made the byte-at-a-time loop the dominant cost of a whole measurement.
// The value is bit-identical to the naive loop for every input.
func memChecksum(b []byte) uint64 {
	h := fnvOffset
	i := 0
	// Align to 8 so the word scan below reads full words.
	for ; i < len(b) && i%8 != 0; i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	zeroRun := 0
	for ; i+8 <= len(b); i += 8 {
		// Stride over whole zero cachelines before falling back to words.
		for i+64 <= len(b) {
			c := b[i : i+64 : i+64]
			if binary.LittleEndian.Uint64(c)|binary.LittleEndian.Uint64(c[8:])|
				binary.LittleEndian.Uint64(c[16:])|binary.LittleEndian.Uint64(c[24:])|
				binary.LittleEndian.Uint64(c[32:])|binary.LittleEndian.Uint64(c[40:])|
				binary.LittleEndian.Uint64(c[48:])|binary.LittleEndian.Uint64(c[56:]) != 0 {
				break
			}
			zeroRun += 64
			i += 64
		}
		if i+8 > len(b) {
			break
		}
		w := binary.LittleEndian.Uint64(b[i:])
		if w == 0 {
			zeroRun += 8
			continue
		}
		if zeroRun > 0 {
			h *= fnvPrimePow(zeroRun)
			zeroRun = 0
		}
		for k := 0; k < 8; k++ {
			h ^= w >> (8 * k) & 0xff
			h *= fnvPrime
		}
	}
	if zeroRun > 0 {
		h *= fnvPrimePow(zeroRun)
	}
	for ; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	return h
}

// fnvPrimePow returns fnvPrime**n (mod 2^64) by binary exponentiation.
func fnvPrimePow(n int) uint64 {
	r, p := uint64(1), fnvPrime
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= p
		}
		p *= p
	}
	return r
}

// OutputStrings renders the output channel for differential comparison.
func (r *Result) OutputStrings() []string {
	out := make([]string, len(r.Output))
	for i, o := range r.Output {
		out[i] = o.String()
	}
	return out
}

// BindWasmImports installs the standard host environment on a Wasm VM,
// collecting print output into the returned slice.
func BindWasmImports(vm *wasmvm.VM) *[]codegen.OutputEvent {
	out := &[]codegen.OutputEvent{}
	bind := func(field string, fn wasmvm.HostFunc) {
		// Modules only declare the imports they use; ignore absent ones.
		_ = vm.BindImport("env", field, fn)
	}
	bind("print_i", func(_ *wasmvm.VM, args []uint64) ([]uint64, error) {
		*out = append(*out, codegen.OutputEvent{Kind: "i", I: int64(args[0])})
		return nil, nil
	})
	bind("print_f", func(_ *wasmvm.VM, args []uint64) ([]uint64, error) {
		*out = append(*out, codegen.OutputEvent{Kind: "f", F: wasmvm.AsF64(args[0])})
		return nil, nil
	})
	bind("print_s", func(v *wasmvm.VM, args []uint64) ([]uint64, error) {
		addr := uint32(args[0])
		var s []byte
		mem := v.Memory().Bytes()
		for int(addr) < len(mem) && mem[addr] != 0 {
			s = append(s, mem[addr])
			addr++
		}
		*out = append(*out, codegen.OutputEvent{Kind: "s", S: string(s)})
		return nil, nil
	})
	f1 := func(name string, fn func(float64) float64) {
		bind(name, func(_ *wasmvm.VM, args []uint64) ([]uint64, error) {
			return []uint64{wasmvm.F64(fn(wasmvm.AsF64(args[0])))}, nil
		})
	}
	f1("sin", math.Sin)
	f1("cos", math.Cos)
	f1("exp", math.Exp)
	f1("log", math.Log)
	bind("pow", func(_ *wasmvm.VM, args []uint64) ([]uint64, error) {
		return []uint64{wasmvm.F64(math.Pow(wasmvm.AsF64(args[0]), wasmvm.AsF64(args[1])))}, nil
	})
	bind("fmod", func(_ *wasmvm.VM, args []uint64) ([]uint64, error) {
		return []uint64{wasmvm.F64(math.Mod(wasmvm.AsF64(args[0]), wasmvm.AsF64(args[1])))}, nil
	})
	return out
}

// RunWasm executes the artifact's Wasm module under the given VM
// configuration and returns the measured result.
func RunWasm(art *Artifact, cfg wasmvm.Config) (*Result, error) {
	if art.Module == nil {
		return nil, fmt.Errorf("compiler: artifact has no wasm module")
	}
	vm, err := wasmvm.New(art.Module, len(art.WasmBinary), cfg)
	if err != nil {
		return nil, err
	}
	out := BindWasmImports(vm)
	if err := vm.Instantiate(); err != nil {
		return nil, err
	}
	return runWasmMain(vm, out)
}

// RunWasmPooled executes like RunWasm but checks the VM instance out of
// pool — a recycled or snapshot-cloned instance rather than a cold
// New+Instantiate — and returns it for recycling afterwards, even when main
// traps (Reset unwinds a trapped instance). Virtual metrics are
// byte-identical to RunWasm by the snapshot determinism contract; only host
// wall-clock changes. A nil pool, or an armed wasm.snapshot-restore fault,
// silently degrades to the cold path.
func RunWasmPooled(art *Artifact, cfg wasmvm.Config, pool *wasmvm.InstancePool) (*Result, error) {
	if pool == nil {
		return RunWasm(art, cfg)
	}
	if cfg.Faults != nil && cfg.Faults.Fire(faultinject.WasmSnapshotRestore, art.Opts.ModuleName) {
		return RunWasm(art, cfg)
	}
	if art.Module == nil {
		return nil, fmt.Errorf("compiler: artifact has no wasm module")
	}
	vm, recycled, err := pool.Get(cfg)
	if err != nil {
		return nil, err
	}
	out := BindWasmImports(vm)
	r, err := runWasmMain(vm, out)
	pool.Put(vm)
	if err != nil {
		return nil, err
	}
	r.VMPooled = true
	r.VMPoolRecycled = recycled
	return r, nil
}

// runWasmMain calls main on an instantiated VM and assembles the Result.
func runWasmMain(vm *wasmvm.VM, out *[]codegen.OutputEvent) (*Result, error) {
	res, err := vm.Call("main")
	if err != nil {
		return nil, fmt.Errorf("wasm main: %w", err)
	}
	r := &Result{
		Output:      *out,
		Cycles:      vm.Cycles(),
		MemoryBytes: vm.PeakMemoryBytes(),
		WasmStats:   vm.Stats(),
	}
	if mem := vm.Memory(); mem != nil {
		r.MemChecksum = memChecksum(mem.Bytes())
	}
	r.Steps = r.WasmStats.Steps
	r.GrowOps = r.WasmStats.GrowOps
	r.TierUps = r.WasmStats.TierUps
	r.Profiles = vm.Profile()
	if len(res) == 1 {
		r.Exit = wasmvm.AsI32(res[0])
	}
	return r, nil
}

// RunJS executes the artifact's JavaScript under the given engine
// configuration.
func RunJS(art *Artifact, cfg jsvm.Config) (*Result, error) {
	if art.JS == "" {
		return nil, fmt.Errorf("compiler: artifact has no JS")
	}
	vm := jsvm.New(cfg)
	if _, err := vm.Run(art.JS); err != nil {
		return nil, fmt.Errorf("js run: %w", err)
	}
	r := &Result{
		Cycles:        vm.Cycles(),
		Steps:         vm.Steps(),
		MemoryBytes:   vm.PeakHeapBytes(),
		ExternalBytes: vm.PeakExternalBytes(),
		GCs:           vm.GCCount(),
		TierUps:       vm.TierUps(),
		Profiles:      vm.Profile(),
	}
	for _, o := range vm.Output {
		r.Output = append(r.Output, codegen.OutputEvent{Kind: o.Kind, I: o.I, F: o.F, S: o.S})
	}
	if v, ok := vm.Global("__exit"); ok {
		r.Exit = v.ToInt32()
	}
	return r, nil
}

// RunX86 executes the artifact's x86-like bytecode.
func RunX86(art *Artifact, cfg codegen.X86Config) (*Result, error) {
	if art.X86 == nil {
		return nil, fmt.Errorf("compiler: artifact has no x86 program")
	}
	vm := codegen.NewX86VM(art.X86, cfg)
	exit, err := vm.Run()
	if err != nil {
		return nil, fmt.Errorf("x86 main: %w", err)
	}
	return &Result{
		Exit:        int32(uint32(exit)),
		Output:      vm.Output,
		Cycles:      vm.Cycles(),
		Steps:       vm.Steps(),
		MemoryBytes: vm.PeakMemoryBytes(),
		MemChecksum: memChecksum(vm.Memory()),
	}, nil
}
