package core

import (
	"fmt"
	"sync"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/wasmvm"
)

// ---- §4.6.1: manually-written JavaScript (Table 9) ----

// Table9Row compares one manual implementation with its compiled
// counterparts.
type Table9Row struct {
	Bench       string
	ManualMS    float64
	CheerpJSMS  float64
	WasmMS      float64
	ManualMemKB float64
	CheerpMemKB float64
	WasmMemKB   float64
}

// Table9Result backs Table 9.
type Table9Result struct{ Rows []Table9Row }

// RunManualJS measures the 11 Table 9 rows on desktop Chrome.
func RunManualJS() (*Table9Result, error) {
	manuals := benchsuite.ManualBenchmarks()
	res := &Table9Result{Rows: make([]Table9Row, len(manuals))}
	err := parallelDo(len(manuals), func(i int) error {
		m := manuals[i]
		chrome := browser.Chrome(browser.Desktop)
		mm, err := chrome.MeasureJSSource(m.Source)
		if err != nil {
			return fmt.Errorf("manual %s: %w", m.Name, err)
		}
		b, err := benchsuite.ByName(m.Counterpart)
		if err != nil {
			return err
		}
		art, err := compiler.Compile(b.Source, compiler.Options{
			Opt:        ir.O2,
			Defines:    b.Defines(benchsuite.M),
			HeapLimit:  b.HeapLimitBytes(benchsuite.M),
			ModuleName: b.Name,
		})
		if err != nil {
			return err
		}
		cm, err := chrome.MeasureJS(art)
		if err != nil {
			return err
		}
		wm, err := chrome.MeasureWasm(art)
		if err != nil {
			return err
		}
		res.Rows[i] = Table9Row{
			Bench:       m.Name,
			ManualMS:    mm.ExecMS,
			CheerpJSMS:  cm.ExecMS,
			WasmMS:      wm.ExecMS,
			ManualMemKB: mm.MemoryKB,
			CheerpMemKB: cm.MemoryKB,
			WasmMemKB:   wm.MemoryKB,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ---- §4.6.2: real-world applications (Table 10) ----

// Table10Row is one real-world experiment.
type Table10Row struct {
	App    string
	Op     string
	Input  string
	WasmMS float64
	JSMS   float64
	Ratio  float64 // Wasm ÷ JS (the paper's final column)
}

// Table10Result backs Table 10.
type Table10Result struct{ Rows []Table10Row }

// RunRealWorld measures the six Table 10 experiments on desktop Chrome.
// The FFmpeg Wasm implementation runs its frames across WebWorker
// instances (one module instance per worker, §4.6.2); JS is serial.
func RunRealWorld() (*Table10Result, error) {
	ops := benchsuite.RealWorld()
	res := &Table10Result{Rows: make([]Table10Row, len(ops))}
	err := parallelDo(len(ops), func(i int) error {
		op := ops[i]
		chrome := browser.Chrome(browser.Desktop)
		// Real-world Wasm artifacts are independent release builds (the
		// paper's ffmpeg.wasm is an Emscripten -O build, Long.js ships
		// hand-written WAT): compile with the Emscripten flavour at -Oz.
		var wasmMS float64
		if op.Workers > 1 {
			ms, err := runWorkerSharded(chrome, op.WasmSrc, op.Workers)
			if err != nil {
				return fmt.Errorf("%s/%s wasm: %w", op.App, op.Op, err)
			}
			wasmMS = ms
		} else {
			art, err := compiler.Compile(op.WasmSrc, compiler.Options{
				Opt:        ir.Oz,
				Toolchain:  compiler.Emscripten,
				ModuleName: op.App,
				Targets:    []compiler.Target{compiler.TargetWasm},
			})
			if err != nil {
				return fmt.Errorf("%s/%s compile: %w", op.App, op.Op, err)
			}
			m, err := chrome.MeasureWasm(art)
			if err != nil {
				return fmt.Errorf("%s/%s wasm: %w", op.App, op.Op, err)
			}
			wasmMS = m.ExecMS
		}
		jm, err := chrome.MeasureJSSource(op.JSSrc)
		if err != nil {
			return fmt.Errorf("%s/%s js: %w", op.App, op.Op, err)
		}
		res.Rows[i] = Table10Row{
			App: op.App, Op: op.Op, Input: op.Input,
			WasmMS: wasmMS, JSMS: jm.ExecMS,
			Ratio: wasmMS / jm.ExecMS,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runWorkerSharded compiles the frame-range-parameterized module once per
// worker and executes the instances concurrently; the page observes the
// slowest worker plus per-worker spawn overhead.
func runWorkerSharded(p *browser.Profile, src string, workers int) (float64, error) {
	frames := benchsuite.FFmpegFrames
	per := (frames + workers - 1) / workers
	type out struct {
		ms  float64
		err error
	}
	outs := make([]out, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > frames {
			hi = frames
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			art, err := compiler.Compile(src, compiler.Options{
				Opt:        ir.Oz,
				Toolchain:  compiler.Emscripten,
				ModuleName: fmt.Sprintf("ffmpeg-w%d", w),
				Defines:    map[string]string{"LO": fmt.Sprint(lo), "HI": fmt.Sprint(hi)},
				Targets:    []compiler.Target{compiler.TargetWasm},
			})
			if err != nil {
				outs[w] = out{err: err}
				return
			}
			m, err := p.MeasureWasm(art)
			if err != nil {
				outs[w] = out{err: err}
				return
			}
			outs[w] = out{ms: m.ExecMS}
		}(w, lo, hi)
	}
	wg.Wait()
	const workerSpawnMS = 0.12 // worker creation + message round trip
	maxMS := 0.0
	for _, o := range outs {
		if o.err != nil {
			return 0, o.err
		}
		if o.ms > maxMS {
			maxMS = o.ms
		}
	}
	return maxMS + workerSpawnMS*float64(workers), nil
}

// ---- Appendix D: Long.js operation counts (Table 12) ----

// Table12Row is one operation's executed arithmetic-op counts.
type Table12Row struct {
	Bench string
	Lang  string
	Ops   map[string]uint64
	Total uint64
}

// Table12Result backs Table 12.
type Table12Result struct{ Rows []Table12Row }

var table12OpOrder = []string{"ADD", "MUL", "DIV", "REM", "SHIFT", "AND", "OR"}

// RunTable12 instruments the Long.js experiments' arithmetic operations on
// both implementations.
func RunTable12() (*Table12Result, error) {
	res := &Table12Result{}
	for _, op := range benchsuite.RealWorld() {
		if op.App != "Long.js" {
			continue
		}
		art, err := compiler.Compile(op.WasmSrc, compiler.Options{
			Opt:        ir.Oz,
			Toolchain:  compiler.Emscripten,
			ModuleName: "longjs",
			Targets:    []compiler.Target{compiler.TargetWasm},
		})
		if err != nil {
			return nil, err
		}
		wres, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		wOps := wres.WasmStats.ArithOps()

		chrome := browser.Chrome(browser.Desktop)
		vm := chrome.NewJSVM()
		if _, err := vm.Run(op.JSSrc); err != nil {
			return nil, err
		}
		jOps := vm.ArithOps()

		total := func(m map[string]uint64) uint64 {
			var t uint64
			for _, v := range m {
				t += v
			}
			return t
		}
		res.Rows = append(res.Rows,
			Table12Row{Bench: op.Op, Lang: "JS", Ops: jOps, Total: total(jOps)},
			Table12Row{Bench: op.Op, Lang: "WASM", Ops: wOps, Total: total(wOps)},
		)
	}
	return res, nil
}

// ---- §4.5 context-switch microbenchmark ----

// CtxSwitchResult holds per-browser Wasm↔JS round-trip costs.
type CtxSwitchResult struct {
	NS map[string]float64 // browser → nanoseconds per round trip
}

// RunCtxSwitch reports the §4.5 boundary-cost comparison for the three
// desktop browsers.
func RunCtxSwitch() *CtxSwitchResult {
	res := &CtxSwitchResult{NS: map[string]float64{}}
	for _, p := range browser.AllDesktop() {
		res.NS[p.Browser] = p.CtxSwitchNS()
	}
	return res
}
