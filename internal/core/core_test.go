package core

import (
	"strings"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
)

// quickOpts scopes experiments to a small cross-suite subset so the test
// suite stays fast; the full runs live behind cmd/benchtab and the root
// benchmarks.
func quickOpts(t *testing.T, names ...string) Options {
	t.Helper()
	var bs []*benchsuite.Benchmark
	for _, n := range names {
		b, err := benchsuite.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	return Options{Benchmarks: bs}
}

func TestOptLevelsShape(t *testing.T) {
	opts := quickOpts(t, "gemm", "covariance", "jacobi-2d", "SHA", "ADPCM", "atax")
	r, err := RunOptLevels(opts)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Geomeans()
	// Finding 1 orderings: -Oz ≤ -Ofast < -O2 on Wasm time; the x86 backend
	// inverts (-O1 and -Oz slower than -O2).
	if g["time"]["wasm"][ir.Oz] >= 1.0 {
		t.Errorf("Wasm -Oz should beat -O2: %.3f", g["time"]["wasm"][ir.Oz])
	}
	if g["time"]["x86"][ir.O1] <= 1.0 {
		t.Errorf("x86 -O1 should lose to -O2: %.3f", g["time"]["x86"][ir.O1])
	}
	if g["time"]["x86"][ir.Oz] <= 1.0 {
		t.Errorf("x86 -Oz should lose to -O2: %.3f", g["time"]["x86"][ir.Oz])
	}
	// Memory barely changes with optimization (paper Table 2).
	for _, lv := range r.Levels {
		if v := g["mem"]["wasm"][lv]; v < 0.9 || v > 1.1 {
			t.Errorf("wasm memory ratio at %v out of band: %.3f", lv, v)
		}
	}
	out := r.RenderTable2()
	if !strings.Contains(out, "Exec. Time") {
		t.Error("Table 2 rendering broken")
	}
}

func TestInputSizesShape(t *testing.T) {
	opts := quickOpts(t, "gemm", "floyd-warshall", "SHA")
	opts.Sizes = []benchsuite.Size{benchsuite.XS, benchsuite.M, benchsuite.XL}
	chrome, err := RunInputSizes(browser.Chrome(browser.Desktop), opts)
	if err != nil {
		t.Fatal(err)
	}
	stats := chrome.SpeedStats()
	// Finding: Chrome's Wasm advantage is largest at XS and shrinks with
	// input size (the JIT catches up).
	if !stats[benchsuite.XS].AllUp {
		t.Error("Wasm should win at XS on Chrome")
	}
	if stats[benchsuite.XS].AllGmean <= stats[benchsuite.XL].AllGmean {
		t.Errorf("XS advantage (%.2f) should exceed XL (%.2f)",
			stats[benchsuite.XS].AllGmean, stats[benchsuite.XL].AllGmean)
	}
	// Finding 4: Wasm memory grows with input, JS stays flat.
	mem := chrome.MemStats()
	if mem[benchsuite.XL][1] < 4*mem[benchsuite.XS][1] {
		t.Errorf("Wasm memory should grow: XS %.0f KB -> XL %.0f KB",
			mem[benchsuite.XS][1], mem[benchsuite.XL][1])
	}
	jsDrift := mem[benchsuite.XL][0] / mem[benchsuite.XS][0]
	if jsDrift > 1.1 || jsDrift < 0.9 {
		t.Errorf("JS memory should stay flat: drift %.3f", jsDrift)
	}
}

func TestFirefoxXSFavorsJS(t *testing.T) {
	opts := quickOpts(t, "gemm", "covariance", "jacobi-2d", "atax")
	opts.Sizes = []benchsuite.Size{benchsuite.XS, benchsuite.XL}
	ff, err := RunInputSizes(browser.Firefox(browser.Desktop), opts)
	if err != nil {
		t.Fatal(err)
	}
	stats := ff.SpeedStats()
	// Table 5: on Firefox most XS benchmarks favor JS, XL favors Wasm.
	if stats[benchsuite.XS].SDCount < stats[benchsuite.XS].SUCount {
		t.Errorf("Firefox XS should favor JS: %+v", stats[benchsuite.XS])
	}
	if !stats[benchsuite.XL].AllUp {
		t.Errorf("Firefox XL should favor Wasm: %+v", stats[benchsuite.XL])
	}
}

func TestJITFinding(t *testing.T) {
	opts := quickOpts(t, "gemm", "jacobi-2d", "SHA", "MIPS")
	r, err := RunJIT(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Finding 2: JIT transforms JS performance but barely moves Wasm.
		if row.JS < 2 {
			t.Errorf("%s: JS JIT speedup too small: %.2f", row.Bench, row.JS)
		}
		if row.Wasm > 2.5 {
			t.Errorf("%s: Wasm JIT effect too large: %.2f", row.Bench, row.Wasm)
		}
		if row.JS < row.Wasm {
			t.Errorf("%s: JS must gain more from JIT than Wasm", row.Bench)
		}
	}
}

func TestCompilerCompareDirection(t *testing.T) {
	opts := quickOpts(t, "gemm", "SHA", "atax")
	r, err := RunCompilerCompare(opts)
	if err != nil {
		t.Fatal(err)
	}
	// §4.2.2: Emscripten runs faster and uses more memory than Cheerp.
	if r.SpeedupGmean <= 1 {
		t.Errorf("Emscripten should be faster: %.2f", r.SpeedupGmean)
	}
	if r.MemRatio <= 1.5 {
		t.Errorf("Emscripten should use much more memory: %.2f", r.MemRatio)
	}
}

func TestManualJSStrata(t *testing.T) {
	r, err := RunManualJS()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table9Row{}
	for _, row := range r.Rows {
		byName[row.Bench] = row
	}
	// The math.js-library stratum must be slower than the hand-rolled
	// plain version of the same benchmark (library indirection tax).
	if byName["Heat-3d (math.js)"].ManualMS <= 0 || byName["Heat-3d (plain)"].ManualMS <= 0 {
		t.Fatal("missing heat-3d rows")
	}
	// Manual PolyBench implementations allocate garbage-collected nested
	// arrays: more JS-heap memory than the compiled typed-array versions
	// (the paper's second Table 9 observation).
	higherMem := 0
	polybenchRows := 0
	for _, row := range r.Rows {
		switch row.Bench {
		case "3mm", "Covariance", "Syr2k", "Ludcmp", "Floyd-warshall",
			"Heat-3d (plain)", "Heat-3d (math.js)":
			polybenchRows++
			if row.ManualMemKB > row.CheerpMemKB {
				higherMem++
			}
		}
	}
	if higherMem < polybenchRows-1 {
		t.Errorf("manual PolyBench rows should use more memory: %d/%d", higherMem, polybenchRows)
	}
	// The W3C-crypto stratum must beat the compiled JS (paper's exception).
	w3c := byName["SHA (W3C)"]
	if w3c.ManualMS >= w3c.CheerpJSMS {
		t.Errorf("SHA (W3C) should beat Cheerp JS: %.3f vs %.3f", w3c.ManualMS, w3c.CheerpJSMS)
	}
	// And the pure-JS library stratum must be slower than the W3C one.
	jssha := byName["SHA (jsSHA)"]
	if jssha.ManualMS <= w3c.ManualMS {
		t.Errorf("jsSHA should be slower than W3C: %.3f vs %.3f", jssha.ManualMS, w3c.ManualMS)
	}
}

func TestRealWorldShapes(t *testing.T) {
	r, err := RunRealWorld()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("expected 6 experiments, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		switch row.App {
		case "Long.js":
			// Wasm's native i64 must beat the limb library.
			if row.Ratio >= 1 {
				t.Errorf("Long.js %s: wasm should win (ratio %.3f)", row.Op, row.Ratio)
			}
		case "Hyphenopoly":
			// Near parity (paper: 0.94-0.96; ours lands within ±15%% of 1).
			if row.Ratio < 0.5 || row.Ratio >= 1.15 {
				t.Errorf("Hyphenopoly %s: ratio %.3f out of band", row.Op, row.Ratio)
			}
		case "FFmpeg":
			// WebWorker parallelism: well under serial JS.
			if row.Ratio > 0.6 {
				t.Errorf("FFmpeg: parallel wasm should be well under JS (ratio %.3f)", row.Ratio)
			}
		}
	}
}

func TestTable12Blowup(t *testing.T) {
	r, err := RunTable12()
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]map[string]uint64{}
	for _, row := range r.Rows {
		if totals[row.Bench] == nil {
			totals[row.Bench] = map[string]uint64{}
		}
		totals[row.Bench][row.Lang] = row.Total
	}
	for bench, m := range totals {
		// Appendix D: the JS limb library executes many times more
		// arithmetic operations than Wasm's native i64.
		if m["JS"] < 3*m["WASM"] {
			t.Errorf("%s: JS ops (%d) should dwarf Wasm ops (%d)", bench, m["JS"], m["WASM"])
		}
	}
}

func TestTable7Render(t *testing.T) {
	opts := quickOpts(t, "gemm", "SHA")
	r, err := RunTable7(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Default (both tiers) beats basic-only and roughly ties
		// optimizing-only (Table 7's 0.9-1.1 band).
		if row.BasicOnly < 1.0 {
			t.Errorf("%s/%s: default should beat basic-only (%.2f)", row.Browser, row.Suite, row.BasicOnly)
		}
		if row.OptOnly < 0.7 || row.OptOnly > 1.3 {
			t.Errorf("%s/%s: opt-only ratio out of band (%.2f)", row.Browser, row.Suite, row.OptOnly)
		}
	}
	if !strings.Contains(r.RenderTable7(), "Basic only") {
		t.Error("render broken")
	}
}
