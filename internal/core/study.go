// Package core implements the paper's study itself: the §3 pipeline
// (source transformation → compilation → deployment instrumentation → data
// collection) and one entry point per evaluation experiment (§4), each
// regenerating the corresponding table or figure.
package core

import (
	"fmt"
	"sync"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/wasmvm"
)

// Options scopes a study run.
type Options struct {
	// Benchmarks defaults to the full 41-program suite.
	Benchmarks []*benchsuite.Benchmark
	// Sizes defaults to all five classes (input-size experiments only).
	Sizes []benchsuite.Size
}

func (o Options) benchmarks() []*benchsuite.Benchmark {
	if o.Benchmarks != nil {
		return o.Benchmarks
	}
	return benchsuite.All()
}

func (o Options) sizes() []benchsuite.Size {
	if o.Sizes != nil {
		return o.Sizes
	}
	return benchsuite.AllSizes
}

// ---- §4.2.1: compiler optimization levels (Table 2, Figs. 5/6/11) ----

// OptLevelRow is one benchmark's ratios relative to -O2.
type OptLevelRow struct {
	Bench string
	// Ratio[level][metric]: level in {O1, Ofast, Oz}, metric rows below.
	TimeJS, TimeWasm, TimeX86 map[ir.OptLevel]float64
	SizeJS, SizeWasm, SizeX86 map[ir.OptLevel]float64
	MemJS, MemWasm            map[ir.OptLevel]float64
	FastestWasm               ir.OptLevel
}

// OptLevelsResult backs Table 2 and Figs. 5, 6, 11.
type OptLevelsResult struct {
	Rows   []OptLevelRow
	Levels []ir.OptLevel // the measured non-baseline levels
}

var optLevels = []ir.OptLevel{ir.O1, ir.O2, ir.Oz, ir.Ofast}

// RunOptLevels measures the 41 benchmarks at -O1/-O2/-Oz/-Ofast on desktop
// Chrome (Wasm + JS) and on the native x86 backend, with the medium input.
func RunOptLevels(opts Options) (*OptLevelsResult, error) {
	chrome := browser.Chrome(browser.Desktop)
	benches := opts.benchmarks()
	res := &OptLevelsResult{Levels: []ir.OptLevel{ir.O1, ir.Ofast, ir.Oz}}

	type cellOut struct {
		timeJS, timeWasm, timeX86 float64
		sizeJS, sizeWasm, sizeX86 float64
		memJS, memWasm            float64
	}
	type key struct {
		bench int
		level ir.OptLevel
	}
	outs := make(map[key]*cellOut)
	var mu sync.Mutex

	type job struct {
		bi    int
		level ir.OptLevel
	}
	var jobs []job
	for bi := range benches {
		for _, lv := range optLevels {
			jobs = append(jobs, job{bi, lv})
		}
	}
	err := parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		b := benches[j.bi]
		art, err := compiler.Compile(b.Source, compiler.Options{
			Opt:        j.level,
			Defines:    b.Defines(benchsuite.M),
			HeapLimit:  b.HeapLimitBytes(benchsuite.M),
			ModuleName: b.Name,
		})
		if err != nil {
			return fmt.Errorf("%s %v: %w", b.Name, j.level, err)
		}
		wm, err := chrome.MeasureWasm(art)
		if err != nil {
			return fmt.Errorf("%s %v wasm: %w", b.Name, j.level, err)
		}
		jm, err := chrome.MeasureJS(art)
		if err != nil {
			return fmt.Errorf("%s %v js: %w", b.Name, j.level, err)
		}
		xr, err := compiler.RunX86(art, codegen.DefaultX86Config())
		if err != nil {
			return fmt.Errorf("%s %v x86: %w", b.Name, j.level, err)
		}
		mu.Lock()
		outs[key{j.bi, j.level}] = &cellOut{
			timeJS: jm.ExecMS, timeWasm: wm.ExecMS, timeX86: xr.Cycles,
			sizeJS: float64(art.JSSize()), sizeWasm: float64(art.WasmSize()), sizeX86: float64(art.X86Size()),
			memJS: jm.MemoryKB, memWasm: wm.MemoryKB,
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	for bi, b := range benches {
		base := outs[key{bi, ir.O2}]
		row := OptLevelRow{
			Bench:    b.Name,
			TimeJS:   map[ir.OptLevel]float64{},
			TimeWasm: map[ir.OptLevel]float64{},
			TimeX86:  map[ir.OptLevel]float64{},
			SizeJS:   map[ir.OptLevel]float64{},
			SizeWasm: map[ir.OptLevel]float64{},
			SizeX86:  map[ir.OptLevel]float64{},
			MemJS:    map[ir.OptLevel]float64{},
			MemWasm:  map[ir.OptLevel]float64{},
		}
		best, bestT := ir.O2, base.timeWasm
		for _, lv := range optLevels {
			o := outs[key{bi, lv}]
			if o.timeWasm < bestT {
				best, bestT = lv, o.timeWasm
			}
			if lv == ir.O2 {
				continue
			}
			row.TimeJS[lv] = o.timeJS / base.timeJS
			row.TimeWasm[lv] = o.timeWasm / base.timeWasm
			row.TimeX86[lv] = o.timeX86 / base.timeX86
			row.SizeJS[lv] = o.sizeJS / base.sizeJS
			row.SizeWasm[lv] = o.sizeWasm / base.sizeWasm
			row.SizeX86[lv] = o.sizeX86 / base.sizeX86
			row.MemJS[lv] = o.memJS / base.memJS
			row.MemWasm[lv] = o.memWasm / base.memWasm
		}
		row.FastestWasm = best
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Geomeans extracts Table 2: metric → target → level → geomean ratio.
func (r *OptLevelsResult) Geomeans() map[string]map[string]map[ir.OptLevel]float64 {
	pick := func(f func(OptLevelRow) map[ir.OptLevel]float64, lv ir.OptLevel) float64 {
		var vals []float64
		for _, row := range r.Rows {
			if v, ok := f(row)[lv]; ok && v > 0 {
				vals = append(vals, v)
			}
		}
		return harness.GeoMean(vals)
	}
	out := map[string]map[string]map[ir.OptLevel]float64{}
	metrics := map[string]map[string]func(OptLevelRow) map[ir.OptLevel]float64{
		"time": {
			"js":   func(r OptLevelRow) map[ir.OptLevel]float64 { return r.TimeJS },
			"wasm": func(r OptLevelRow) map[ir.OptLevel]float64 { return r.TimeWasm },
			"x86":  func(r OptLevelRow) map[ir.OptLevel]float64 { return r.TimeX86 },
		},
		"size": {
			"js":   func(r OptLevelRow) map[ir.OptLevel]float64 { return r.SizeJS },
			"wasm": func(r OptLevelRow) map[ir.OptLevel]float64 { return r.SizeWasm },
			"x86":  func(r OptLevelRow) map[ir.OptLevel]float64 { return r.SizeX86 },
		},
		"mem": {
			"js":   func(r OptLevelRow) map[ir.OptLevel]float64 { return r.MemJS },
			"wasm": func(r OptLevelRow) map[ir.OptLevel]float64 { return r.MemWasm },
		},
	}
	for metric, targets := range metrics {
		out[metric] = map[string]map[ir.OptLevel]float64{}
		for tgt, f := range targets {
			out[metric][tgt] = map[ir.OptLevel]float64{}
			for _, lv := range r.Levels {
				out[metric][tgt][lv] = pick(f, lv)
			}
		}
	}
	return out
}

// ---- §4.3: input sizes (Tables 3–6, Fig. 9) ----

// InputSizeCell is one (benchmark, size) pair's measurements.
type InputSizeCell struct {
	Bench     string
	Size      benchsuite.Size
	WasmMS    float64
	JSMS      float64
	WasmMemKB float64
	JSMemKB   float64
}

// InputSizesResult backs Tables 3–6 and Fig. 9.
type InputSizesResult struct {
	Profile string
	Cells   []InputSizeCell
}

// RunInputSizes measures the suite across input classes on one profile
// (the paper uses desktop Chrome for Tables 3/4, desktop Firefox for 5/6).
func RunInputSizes(p *browser.Profile, opts Options) (*InputSizesResult, error) {
	benches := opts.benchmarks()
	sizes := opts.sizes()
	res := &InputSizesResult{Profile: p.Name()}
	res.Cells = make([]InputSizeCell, len(benches)*len(sizes))
	err := parallelDo(len(res.Cells), func(i int) error {
		b := benches[i/len(sizes)]
		sz := sizes[i%len(sizes)]
		art, err := compiler.Compile(b.Source, compiler.Options{
			Opt:        ir.O2,
			Defines:    b.Defines(sz),
			HeapLimit:  b.HeapLimitBytes(sz),
			ModuleName: b.Name,
		})
		if err != nil {
			return fmt.Errorf("%s/%v: %w", b.Name, sz, err)
		}
		wm, err := p.MeasureWasm(art)
		if err != nil {
			return fmt.Errorf("%s/%v wasm: %w", b.Name, sz, err)
		}
		jm, err := p.MeasureJS(art)
		if err != nil {
			return fmt.Errorf("%s/%v js: %w", b.Name, sz, err)
		}
		res.Cells[i] = InputSizeCell{
			Bench: b.Name, Size: sz,
			WasmMS: wm.ExecMS, JSMS: jm.ExecMS,
			WasmMemKB: wm.MemoryKB, JSMemKB: jm.MemoryKB,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SpeedStats computes the Table 3/5 split per size class.
func (r *InputSizesResult) SpeedStats() map[benchsuite.Size]harness.SpeedSplit {
	out := map[benchsuite.Size]harness.SpeedSplit{}
	bySize := map[benchsuite.Size][][2]float64{}
	for _, c := range r.Cells {
		bySize[c.Size] = append(bySize[c.Size], [2]float64{c.WasmMS, c.JSMS})
	}
	for sz, pairs := range bySize {
		var w, j []float64
		for _, p := range pairs {
			w = append(w, p[0])
			j = append(j, p[1])
		}
		out[sz] = harness.SplitSpeed(w, j)
	}
	return out
}

// MemStats computes Table 4/6: average memory per size class.
func (r *InputSizesResult) MemStats() map[benchsuite.Size][2]float64 {
	out := map[benchsuite.Size][2]float64{}
	bySize := map[benchsuite.Size][][2]float64{}
	for _, c := range r.Cells {
		bySize[c.Size] = append(bySize[c.Size], [2]float64{c.JSMemKB, c.WasmMemKB})
	}
	for sz, pairs := range bySize {
		var js, wm []float64
		for _, p := range pairs {
			js = append(js, p[0])
			wm = append(wm, p[1])
		}
		out[sz] = [2]float64{harness.Mean(js), harness.Mean(wm)}
	}
	return out
}

// ---- §4.4: JIT (Fig. 10, Table 7) ----

// JITRow is one benchmark's JIT-on/JIT-off improvement factors.
type JITRow struct {
	Bench string
	Suite string
	JS    float64 // JIT-enabled speedup over JIT-less (JS)
	Wasm  float64 // same for Wasm (default vs basic-only)
}

// JITResult backs Fig. 10.
type JITResult struct{ Rows []JITRow }

// RunJIT measures JIT impact on desktop Chrome with medium inputs.
func RunJIT(opts Options) (*JITResult, error) {
	benches := opts.benchmarks()
	res := &JITResult{Rows: make([]JITRow, len(benches))}
	err := parallelDo(len(benches), func(i int) error {
		b := benches[i]
		art, err := compiler.Compile(b.Source, compiler.Options{
			Opt:        ir.O2,
			Defines:    b.Defines(benchsuite.M),
			HeapLimit:  b.HeapLimitBytes(benchsuite.M),
			ModuleName: b.Name,
		})
		if err != nil {
			return err
		}
		on := browser.Chrome(browser.Desktop)
		off := browser.Chrome(browser.Desktop)
		off.JS.JITEnabled = false // --no-opt

		jsOn, err := on.MeasureJS(art)
		if err != nil {
			return err
		}
		jsOff, err := off.MeasureJS(art)
		if err != nil {
			return err
		}
		wOn, err := on.MeasureWasmMode(art, wasmvm.TierBoth)
		if err != nil {
			return err
		}
		wOff, err := on.MeasureWasmMode(art, wasmvm.TierBasicOnly) // --liftoff --no-wasm-tier-up
		if err != nil {
			return err
		}
		res.Rows[i] = JITRow{
			Bench: b.Name,
			Suite: b.Suite,
			JS:    jsOff.ExecMS / jsOn.ExecMS,
			Wasm:  wOff.ExecMS / wOn.ExecMS,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table7Row is the Wasm tier comparison for one browser/suite pair.
type Table7Row struct {
	Suite     string
	Browser   string
	BasicOnly float64 // default ÷ basic-only execution speed ratio
	OptOnly   float64 // default ÷ optimizing-only
}

// Table7Result backs Table 7.
type Table7Result struct{ Rows []Table7Row }

// RunTable7 compares Wasm tier configurations on Chrome and Firefox.
func RunTable7(opts Options) (*Table7Result, error) {
	benches := opts.benchmarks()
	profiles := []*browser.Profile{browser.Chrome(browser.Desktop), browser.Firefox(browser.Desktop)}
	type samp struct {
		suite      string
		basic, opt float64
	}
	samples := make([][]samp, len(profiles))
	for pi, p := range profiles {
		samples[pi] = make([]samp, len(benches))
		p := p
		pi := pi
		err := parallelDo(len(benches), func(i int) error {
			b := benches[i]
			art, err := compiler.Compile(b.Source, compiler.Options{
				Opt:        ir.O2,
				Defines:    b.Defines(benchsuite.M),
				HeapLimit:  b.HeapLimitBytes(benchsuite.M),
				ModuleName: b.Name,
			})
			if err != nil {
				return err
			}
			both, err := p.MeasureWasmMode(art, wasmvm.TierBoth)
			if err != nil {
				return err
			}
			basic, err := p.MeasureWasmMode(art, wasmvm.TierBasicOnly)
			if err != nil {
				return err
			}
			optOnly, err := p.MeasureWasmMode(art, wasmvm.TierOptOnly)
			if err != nil {
				return err
			}
			// Execution-speed ratio of default to the single-tier setting:
			// >1 means the default (both tiers) is faster.
			samples[pi][i] = samp{
				suite: b.Suite,
				basic: basic.ExecMS / both.ExecMS,
				opt:   optOnly.ExecMS / both.ExecMS,
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	res := &Table7Result{}
	for _, suite := range []string{"polybench", "chstone", "overall"} {
		for pi, p := range profiles {
			var basics, opts []float64
			for _, s := range samples[pi] {
				if suite != "overall" && s.suite != suite {
					continue
				}
				basics = append(basics, s.basic)
				opts = append(opts, s.opt)
			}
			res.Rows = append(res.Rows, Table7Row{
				Suite:     suite,
				Browser:   p.Browser,
				BasicOnly: harness.GeoMean(basics),
				OptOnly:   harness.GeoMean(opts),
			})
		}
	}
	return res, nil
}

// ---- §4.5: browsers and platforms (Table 8, Figs. 12/13) ----

// Table8Cell is one deployment setting's aggregate.
type Table8Cell struct {
	Profile    string
	ExecMSJS   float64
	ExecMSWasm float64
	MemKBJS    float64
	MemKBWasm  float64
}

// Table8Result backs Table 8 and Figs. 12/13.
type Table8Result struct {
	Cells []Table8Cell
	// PerBench[profile][bench] = (jsMS, wasmMS, jsKB, wasmKB) for the figures.
	PerBench map[string]map[string][4]float64
}

// RunBrowsersPlatforms measures the suite in the six deployment settings.
func RunBrowsersPlatforms(opts Options) (*Table8Result, error) {
	benches := opts.benchmarks()
	res := &Table8Result{PerBench: map[string]map[string][4]float64{}}
	for _, p := range browser.AllProfiles() {
		p := p
		perBench := make([][4]float64, len(benches))
		err := parallelDo(len(benches), func(i int) error {
			b := benches[i]
			art, err := compiler.Compile(b.Source, compiler.Options{
				Opt:        ir.O2,
				Defines:    b.Defines(benchsuite.M),
				HeapLimit:  b.HeapLimitBytes(benchsuite.M),
				ModuleName: b.Name,
			})
			if err != nil {
				return err
			}
			wm, err := p.MeasureWasm(art)
			if err != nil {
				return err
			}
			jm, err := p.MeasureJS(art)
			if err != nil {
				return err
			}
			perBench[i] = [4]float64{jm.ExecMS, wm.ExecMS, jm.MemoryKB, wm.MemoryKB}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cell := Table8Cell{Profile: p.Name()}
		var js, wm, jmem, wmem []float64
		byName := map[string][4]float64{}
		for i, v := range perBench {
			js = append(js, v[0])
			wm = append(wm, v[1])
			jmem = append(jmem, v[2])
			wmem = append(wmem, v[3])
			byName[benches[i].Name] = v
		}
		cell.ExecMSJS = harness.Mean(js)
		cell.ExecMSWasm = harness.Mean(wm)
		cell.MemKBJS = harness.Mean(jmem)
		cell.MemKBWasm = harness.Mean(wmem)
		res.Cells = append(res.Cells, cell)
		res.PerBench[p.Name()] = byName
	}
	return res, nil
}

// ---- §4.2.2: Cheerp vs Emscripten ----

// CompilerCompareResult holds the toolchain comparison.
type CompilerCompareResult struct {
	SpeedupGmean float64 // Emscripten time ÷ Cheerp time inverse: >1 = Emscripten faster
	MemRatio     float64 // Emscripten mem ÷ Cheerp mem
}

// RunCompilerCompare compiles the suite with both toolchains at -O2/M on
// desktop Chrome.
func RunCompilerCompare(opts Options) (*CompilerCompareResult, error) {
	benches := opts.benchmarks()
	chrome := browser.Chrome(browser.Desktop)
	speed := make([]float64, len(benches))
	mem := make([]float64, len(benches))
	err := parallelDo(len(benches), func(i int) error {
		b := benches[i]
		com := compiler.Options{
			Opt:        ir.O2,
			Defines:    b.Defines(benchsuite.M),
			HeapLimit:  b.HeapLimitBytes(benchsuite.M),
			ModuleName: b.Name,
			Targets:    []compiler.Target{compiler.TargetWasm},
		}
		com.Toolchain = compiler.Cheerp
		ch, err := compiler.Compile(b.Source, com)
		if err != nil {
			return err
		}
		com.Toolchain = compiler.Emscripten
		em, err := compiler.Compile(b.Source, com)
		if err != nil {
			return err
		}
		chM, err := chrome.MeasureWasm(ch)
		if err != nil {
			return err
		}
		emM, err := chrome.MeasureWasm(em)
		if err != nil {
			return err
		}
		speed[i] = chM.ExecMS / emM.ExecMS // >1: Emscripten faster
		mem[i] = emM.MemoryKB / chM.MemoryKB
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CompilerCompareResult{
		SpeedupGmean: harness.GeoMean(speed),
		MemRatio:     harness.GeoMean(mem),
	}, nil
}

// ---- parallel helper ----

func parallelDo(n int, fn func(i int) error) error {
	workers := 8
	if n < workers {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					errCh <- err
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// jsvm is referenced by the §4.6 experiments in study2.go.
var _ = jsvm.New
