package core

import (
	"fmt"
	"sort"
	"strings"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
)

// RenderTable2 prints the Table 2 geometric means (ratios vs -O2; below 1
// means faster/smaller than -O2).
func (r *OptLevelsResult) RenderTable2() string {
	g := r.Geomeans()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: geometric means of compiler optimization results (vs -O2)\n")
	fmt.Fprintf(&b, "%-12s %-10s %8s %8s %8s\n", "Metric", "Targets", "JS", "WASM", "x86")
	rows := []struct {
		metric string
		lv     ir.OptLevel
		label  string
	}{
		{"time", ir.O1, "O1/O2"}, {"time", ir.Ofast, "Ofast/O2"}, {"time", ir.Oz, "Oz/O2"},
		{"size", ir.O1, "O1/O2"}, {"size", ir.Ofast, "Ofast/O2"}, {"size", ir.Oz, "Oz/O2"},
		{"mem", ir.O1, "O1/O2"}, {"mem", ir.Ofast, "Ofast/O2"}, {"mem", ir.Oz, "Oz/O2"},
	}
	names := map[string]string{"time": "Exec. Time", "size": "Code Size", "mem": "Memory"}
	last := ""
	for _, row := range rows {
		label := names[row.metric]
		if label == last {
			label = ""
		} else {
			last = label
		}
		x86 := "-"
		if row.metric != "mem" {
			x86 = fmt.Sprintf("%.2fx", g[row.metric]["x86"][row.lv])
		}
		fmt.Fprintf(&b, "%-12s %-10s %7.2fx %7.2fx %8s\n",
			label, row.label,
			g[row.metric]["js"][row.lv], g[row.metric]["wasm"][row.lv], x86)
	}
	// Fastest-flag distribution (the §4.2.1 per-benchmark discussion).
	counts := map[ir.OptLevel]int{}
	for _, row := range r.Rows {
		counts[row.FastestWasm]++
	}
	b.WriteString("\nFastest Wasm binaries per flag: ")
	for _, lv := range []ir.OptLevel{ir.O1, ir.O2, ir.Ofast, ir.Oz} {
		fmt.Fprintf(&b, "%s:%d ", lv, counts[lv])
	}
	b.WriteString("\n")
	return b.String()
}

// RenderFig5 prints per-benchmark execution-time and code-size ratios (the
// Fig. 5 series; Fig. 6 is the x86 column).
func (r *OptLevelsResult) RenderFig5() string {
	var b strings.Builder
	b.WriteString("Fig 5/6: per-benchmark ratios vs -O2 (time | size)\n")
	fmt.Fprintf(&b, "%-16s %21s %21s %21s\n", "", "JS (O1 Ofast Oz)", "WASM (O1 Ofast Oz)", "x86 (O1 Ofast Oz)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			row.Bench,
			row.TimeJS[ir.O1], row.TimeJS[ir.Ofast], row.TimeJS[ir.Oz],
			row.TimeWasm[ir.O1], row.TimeWasm[ir.Ofast], row.TimeWasm[ir.Oz],
			row.TimeX86[ir.O1], row.TimeX86[ir.Ofast], row.TimeX86[ir.Oz])
	}
	return b.String()
}

// RenderFig11 prints the five-number summaries of the optimization ratios
// (Appendix B / Fig. 11).
func (r *OptLevelsResult) RenderFig11() string {
	var b strings.Builder
	b.WriteString("Fig 11: five-number summaries of ratios vs -O2\n")
	collect := func(f func(OptLevelRow) map[ir.OptLevel]float64, lv ir.OptLevel) []float64 {
		var out []float64
		for _, row := range r.Rows {
			if v, ok := f(row)[lv]; ok && v > 0 {
				out = append(out, v)
			}
		}
		return out
	}
	groups := []struct {
		name string
		f    func(OptLevelRow) map[ir.OptLevel]float64
	}{
		{"JS time", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.TimeJS }},
		{"WASM time", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.TimeWasm }},
		{"x86 time", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.TimeX86 }},
		{"JS size", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.SizeJS }},
		{"WASM size", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.SizeWasm }},
		{"x86 size", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.SizeX86 }},
		{"JS mem", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.MemJS }},
		{"WASM mem", func(r OptLevelRow) map[ir.OptLevel]float64 { return r.MemWasm }},
	}
	for _, grp := range groups {
		for _, lv := range []ir.OptLevel{ir.O1, ir.Ofast, ir.Oz} {
			fn := harness.Summarize(collect(grp.f, lv))
			fmt.Fprintf(&b, "%-10s %-9s %s\n", grp.name, lv.String()+"/O2", fn)
		}
	}
	return b.String()
}

// RenderSpeedStats prints the Table 3/5 split.
func (r *InputSizesResult) RenderSpeedStats() string {
	stats := r.SpeedStats()
	var b strings.Builder
	fmt.Fprintf(&b, "Execution time statistics on %s (Table 3/5 format)\n", r.Profile)
	fmt.Fprintf(&b, "%-12s %5s %10s %5s %10s %12s\n", "Input Size", "SD #", "SD gmean", "SU #", "SU gmean", "All gmean")
	for _, sz := range benchsuite.AllSizes {
		s := stats[sz]
		dir := "v"
		if s.AllUp {
			dir = "^"
		}
		fmt.Fprintf(&b, "%-12s %5d %9.2fx %5d %9.2fx %10.2fx %s\n",
			sz, s.SDCount, s.SDGmean, s.SUCount, s.SUGmean, s.AllGmean, dir)
	}
	b.WriteString("(SD: Wasm slower than JS; SU: Wasm faster; ^ = Wasm faster overall)\n")
	return b.String()
}

// RenderMemStats prints the Table 4/6 averages.
func (r *InputSizesResult) RenderMemStats() string {
	stats := r.MemStats()
	var b strings.Builder
	fmt.Fprintf(&b, "Average memory usage on %s (Table 4/6 format, KB)\n", r.Profile)
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "Input Size", "JavaScript", "WebAssembly")
	for _, sz := range benchsuite.AllSizes {
		v := stats[sz]
		fmt.Fprintf(&b, "%-12s %14.2f %14.2f\n", sz, v[0], v[1])
	}
	return b.String()
}

// RenderFig9 prints per-benchmark time/memory series.
func (r *InputSizesResult) RenderFig9() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: per-benchmark execution time (ms) and memory (KB) on %s\n", r.Profile)
	fmt.Fprintf(&b, "%-16s %-4s %12s %12s %12s %12s\n", "benchmark", "size", "wasm ms", "js ms", "wasm KB", "js KB")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-16s %-4s %12.3f %12.3f %12.1f %12.1f\n",
			c.Bench, c.Size, c.WasmMS, c.JSMS, c.WasmMemKB, c.JSMemKB)
	}
	return b.String()
}

// RenderFig10 prints the JIT improvement factors.
func (r *JITResult) RenderFig10() string {
	var b strings.Builder
	b.WriteString("Fig 10: speedup with JIT enabled vs JIT-less (desktop Chrome)\n")
	fmt.Fprintf(&b, "%-16s %-10s %10s %10s\n", "benchmark", "suite", "JS", "WASM")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-10s %9.2fx %9.2fx\n", row.Bench, row.Suite, row.JS, row.Wasm)
	}
	for _, suite := range []string{"polybench", "chstone"} {
		var js, wasm []float64
		for _, row := range r.Rows {
			if row.Suite == suite {
				js = append(js, row.JS)
				wasm = append(wasm, row.Wasm)
			}
		}
		fmt.Fprintf(&b, "%-16s %-10s %9.2fx %9.2fx  (geomean)\n", "", suite,
			harness.GeoMean(js), harness.GeoMean(wasm))
		fmt.Fprintf(&b, "%-16s %-10s %9.2fx %9.2fx  (average)\n", "", suite,
			harness.Mean(js), harness.Mean(wasm))
	}
	return b.String()
}

// RenderTable7 prints the Wasm tier comparison.
func (r *Table7Result) RenderTable7() string {
	var b strings.Builder
	b.WriteString("Table 7: Wasm speed ratio of the default (both tiers) to single-tier settings\n")
	fmt.Fprintf(&b, "%-10s %-9s %12s %12s\n", "Suite", "Browser", "Basic only", "Opt only")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-9s %11.2fx %11.2fx\n", row.Suite, row.Browser, row.BasicOnly, row.OptOnly)
	}
	return b.String()
}

// RenderTable8 prints the six-deployment aggregate.
func (r *Table8Result) RenderTable8() string {
	var b strings.Builder
	b.WriteString("Table 8: per-deployment averages (41 benchmarks, -O2, medium input)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s\n", "Deployment", "JS ms", "WASM ms", "JS KB", "WASM KB")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %12.2f %12.2f %12.1f %12.1f\n",
			c.Profile, c.ExecMSJS, c.ExecMSWasm, c.MemKBJS, c.MemKBWasm)
	}
	return b.String()
}

// RenderFig1213 prints the per-benchmark Fig. 12/13 series.
func (r *Table8Result) RenderFig1213() string {
	var b strings.Builder
	b.WriteString("Fig 12/13: per-benchmark time (ms) and memory (KB) per deployment\n")
	var profiles []string
	for name := range r.PerBench {
		profiles = append(profiles, name)
	}
	sort.Strings(profiles)
	for _, pname := range profiles {
		byBench := r.PerBench[pname]
		var names []string
		for n := range byBench {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "-- %s --\n", pname)
		for _, n := range names {
			v := byBench[n]
			fmt.Fprintf(&b, "%-16s js %10.3f ms %10.1f KB | wasm %10.3f ms %10.1f KB\n",
				n, v[0], v[2], v[1], v[3])
		}
	}
	return b.String()
}

// RenderCompilerCompare prints the §4.2.2 toolchain comparison.
func (r *CompilerCompareResult) Render() string {
	return fmt.Sprintf("Cheerp vs Emscripten (-O2, medium input, desktop Chrome):\n"+
		"  Emscripten runs %.2fx faster (geomean) and uses %.2fx more memory (geomean)\n",
		r.SpeedupGmean, r.MemRatio)
}

// RenderTable9 prints the manual-JS comparison.
func (r *Table9Result) RenderTable9() string {
	var b strings.Builder
	b.WriteString("Table 9: manually-written JavaScript programs (desktop Chrome)\n")
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s %10s %10s\n",
		"Benchmark", "Manual ms", "Cheerp ms", "WASM ms", "Man KB", "Cheerp KB", "WASM KB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %10.3f %10.3f %10.3f %10.0f %10.0f %10.0f\n",
			row.Bench, row.ManualMS, row.CheerpJSMS, row.WasmMS,
			row.ManualMemKB, row.CheerpMemKB, row.WasmMemKB)
	}
	return b.String()
}

// RenderTable10 prints the real-world application results.
func (r *Table10Result) RenderTable10() string {
	var b strings.Builder
	b.WriteString("Table 10: real-world applications (desktop Chrome)\n")
	fmt.Fprintf(&b, "%-14s %-16s %-24s %12s %12s %8s\n", "App", "Operation", "Input", "WA ms", "JS ms", "Ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-16s %-24s %12.3f %12.3f %8.3f\n",
			row.App, row.Op, row.Input, row.WasmMS, row.JSMS, row.Ratio)
	}
	return b.String()
}

// RenderTable12 prints the Long.js operation counts.
func (r *Table12Result) RenderTable12() string {
	var b strings.Builder
	b.WriteString("Table 12: Long.js executed arithmetic operations\n")
	fmt.Fprintf(&b, "%-16s %-5s", "Benchmark", "Lang")
	for _, op := range table12OpOrder {
		fmt.Fprintf(&b, " %9s", op)
	}
	fmt.Fprintf(&b, " %10s\n", "Total")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-5s", row.Bench, row.Lang)
		for _, op := range table12OpOrder {
			fmt.Fprintf(&b, " %9d", row.Ops[op])
		}
		fmt.Fprintf(&b, " %10d\n", row.Total)
	}
	return b.String()
}

// Render prints the context-switch comparison.
func (r *CtxSwitchResult) Render() string {
	var b strings.Builder
	b.WriteString("Wasm<->JS context switch (one round trip, desktop browsers)\n")
	chrome := r.NS["chrome"]
	for _, name := range []string{"chrome", "firefox", "edge"} {
		fmt.Fprintf(&b, "  %-8s %8.1f ns (%.2fx of Chrome)\n", name, r.NS[name], r.NS[name]/chrome)
	}
	return b.String()
}
