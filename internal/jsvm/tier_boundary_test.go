package jsvm

import (
	"math"
	"testing"

	"wasmbench/internal/obsv"
)

func jsTierUpEvents(coll *obsv.Collector) []obsv.Event {
	var out []obsv.Event
	for _, e := range coll.Events() {
		if e.Kind == obsv.KindTierUp {
			out = append(out, e)
		}
	}
	return out
}

// TestJSTierUpExactlyAtThreshold pins the call-count boundary: with
// threshold T, the T-th call of a function is the first that promotes it.
// Straight-line calls only, so the top-level program gains no loop hotness.
func TestJSTierUpExactlyAtThreshold(t *testing.T) {
	src := func(calls int) string {
		s := "function f() { return 1; }\n"
		for i := 0; i < calls; i++ {
			s += "f();\n"
		}
		return s
	}
	mk := func(calls int) (*VM, *obsv.Collector) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 5
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		vm := New(cfg)
		if _, err := vm.Run(src(calls)); err != nil {
			t.Fatalf("run: %v", err)
		}
		return vm, coll
	}

	under, ucoll := mk(4)
	if got := under.TierUps(); got != 0 {
		t.Fatalf("threshold-1 calls: TierUps = %d, want 0", got)
	}
	if n := len(jsTierUpEvents(ucoll)); n != 0 {
		t.Fatalf("threshold-1 calls: %d KindTierUp events, want 0", n)
	}

	at, acoll := mk(5)
	if got := at.TierUps(); got != 1 {
		t.Fatalf("at threshold: TierUps = %d, want 1", got)
	}
	if n := len(jsTierUpEvents(acoll)); n != 1 {
		t.Fatalf("at threshold: %d KindTierUp events, want 1", n)
	}

	over, ocoll := mk(30)
	if got := over.TierUps(); got != 1 {
		t.Fatalf("repeat calls: TierUps = %d, want 1", got)
	}
	if n := len(jsTierUpEvents(ocoll)); n != 1 {
		t.Fatalf("repeat calls: %d KindTierUp events, want 1", n)
	}
}

// TestJSNoJITNeverTiersUp pins the --no-opt setting: with JITEnabled off,
// no amount of call or loop hotness promotes anything and no KindTierUp
// event is emitted.
func TestJSNoJITNeverTiersUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JITEnabled = false
	cfg.TierUpThreshold = 10
	coll := &obsv.Collector{}
	cfg.Tracer = coll
	vm := New(cfg)
	_, err := vm.Run(`
		function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }
		for (var j = 0; j < 50; j++) f(1000);
	`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := vm.TierUps(); got != 0 {
		t.Fatalf("TierUps = %d, want 0", got)
	}
	if n := len(jsTierUpEvents(coll)); n != 0 {
		t.Fatalf("%d KindTierUp events, want 0", n)
	}
}

// TestJSTierUpCompileChargedOnce drives promotion on a loop back-edge
// mid-call (bumpLoop's on-stack replacement) and then calls the function
// again, asserting the compile charge lands exactly once: the cycle delta
// against a zero-charge run equals CompilePerNode times the node count the
// KindTierUp event reports.
func TestJSTierUpCompileChargedOnce(t *testing.T) {
	run := func(perNode float64) (*VM, *obsv.Collector) {
		cfg := DefaultConfig()
		cfg.TierUpThreshold = 500
		cfg.CompilePerNode = perNode
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		vm := New(cfg)
		_, err := vm.Run(`
			function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }
			f(100000);
			f(1000);
		`)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return vm, coll
	}

	const perNode = 1000.0
	charged, coll := run(perNode)
	free, _ := run(0)

	// Only f tiers up: the top level has no loop, so it never promotes.
	evs := jsTierUpEvents(coll)
	if len(evs) != 1 {
		t.Fatalf("%d KindTierUp events, want 1", len(evs))
	}
	if got := charged.TierUps(); got != 1 {
		t.Fatalf("TierUps = %d, want 1", got)
	}
	want := perNode * evs[0].A // A carries the function's AST node count
	got := charged.Cycles() - free.Cycles()
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("compile charge = %.6f cycles, want %.6f (exactly one charge of %.0f x %.0f nodes)",
			got, want, perNode, evs[0].A)
	}
}
