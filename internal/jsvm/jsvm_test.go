package jsvm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) (*VM, Value) {
	t.Helper()
	vm := New(DefaultConfig())
	v, err := vm.Run(src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return vm, v
}

func exitOf(t *testing.T, vm *VM) int32 {
	t.Helper()
	v, ok := vm.Global("__exit")
	if !ok {
		t.Fatal("no __exit global")
	}
	return v.ToInt32()
}

func TestArithmeticAndCoercion(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":           7,
		"10 / 4":              2.5,
		"7 % 3":               1,
		"(5 | 0) + (2.9 | 0)": 7,
		"1 << 10":             1024,
		"-8 >> 1":             -4,
		"-8 >>> 28":           15,
		"~5":                  -6,
		"0.1 + 0.2":           0.30000000000000004,
		"'3' * 2":             6,
		"1e3 + 1":             1001,
		"0xff & 0x0f":         15,
		"(1 < 2) ? 10 : 20":   10,
		"Math.imul(3, -7)":    -21,
		"Math.floor(3.7)":     3,
		"Math.pow(2, 10)":     1024,
	}
	for src, want := range cases {
		vm := New(DefaultConfig())
		v, err := vm.Run("var __r = " + src + ";")
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		_ = v
		got, _ := vm.Global("__r")
		if got.ToNumber() != want {
			t.Errorf("%s = %v, want %v", src, got.ToNumber(), want)
		}
	}
}

func TestStringSemantics(t *testing.T) {
	vm, _ := run(t, `
var s = "hello" + " " + "world";
var __r1 = s.length;
var __r2 = s.charCodeAt(0);
var __r3 = s.indexOf("world");
var __r4 = s.substring(0, 5);
var __r5 = "1" + 2;
`)
	check := func(name string, want Value) {
		got, _ := vm.Global(name)
		if !StrictEquals(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("__r1", Num(11))
	check("__r2", Num(104))
	check("__r3", Num(6))
	check("__r4", Str("hello"))
	check("__r5", Str("12"))
}

func TestClosuresAndScope(t *testing.T) {
	vm, _ := run(t, `
function counter() {
	var n = 0;
	return function () { n = n + 1; return n; };
}
var c1 = counter();
var c2 = counter();
c1(); c1(); c1();
c2();
var __exit = c1() * 10 + c2();
`)
	if got := exitOf(t, vm); got != 42 {
		t.Errorf("closure state: got %d, want 42", got)
	}
}

func TestObjectsAndMethods(t *testing.T) {
	vm, _ := run(t, `
var obj = {
	count: 0,
	bump: function (d) { this.count = this.count + d; return this.count; }
};
obj.bump(5);
obj.bump(2);
var __exit = obj.count;
`)
	if got := exitOf(t, vm); got != 7 {
		t.Errorf("this binding: got %d", got)
	}
}

func TestArraysGrowAndMethods(t *testing.T) {
	vm, _ := run(t, `
var a = [];
for (var i = 0; i < 10; i++) a.push(i * i);
a[20] = 99;
var __exit = a.length * 1000 + a[3] + a.indexOf(81);
`)
	if got := exitOf(t, vm); got != 21018 {
		t.Errorf("array semantics: got %d", got)
	}
}

func TestTypedArrays(t *testing.T) {
	vm, _ := run(t, `
var buf = new ArrayBuffer(16);
var i32 = new Int32Array(buf);
var u8 = new Uint8Array(buf);
i32[0] = 0x01020304;
var f64 = new Float64Array(2);
f64[1] = 2.5;
var __exit = u8[0] + u8[3] * 100 + f64[1] * 1000;
`)
	// Little-endian: u8[0]=4, u8[3]=1.
	if got := exitOf(t, vm); got != 4+100+2500 {
		t.Errorf("typed arrays: got %d", got)
	}
}

func TestSwitchFallthroughAndLabels(t *testing.T) {
	vm, _ := run(t, `
var r = 0;
switch (2) {
case 1: r += 1;
case 2: r += 2;
case 3: r += 4; break;
case 4: r += 8;
}
outer: for (var i = 0; i < 10; i++) {
	inner: for (var j = 0; j < 10; j++) {
		if (j == 2) continue outer;
		if (i == 5) break outer;
		r += 1;
	}
}
var __exit = r;
`)
	// switch: 2+4=6; loops: i=0..4, j=0..1 → 10 increments.
	if got := exitOf(t, vm); got != 16 {
		t.Errorf("control flow: got %d", got)
	}
}

func TestTryCatchFinally(t *testing.T) {
	vm, _ := run(t, `
var log = 0;
function risky(n) {
	try {
		if (n > 2) throw n * 10;
		return n;
	} catch (e) {
		return e + 1;
	} finally {
		log = log + 100;
	}
}
var __exit = risky(1) + risky(5) + log;
`)
	if got := exitOf(t, vm); got != 1+51+200 {
		t.Errorf("exceptions: got %d", got)
	}
}

func TestUncaughtThrowSurfacesAsError(t *testing.T) {
	vm := New(DefaultConfig())
	_, err := vm.Run(`throw "boom";`)
	if err == nil {
		t.Fatal("expected error")
	}
	if v, ok := ThrownValue(err); !ok || v.ToString() != "boom" {
		t.Errorf("thrown value: %v (%v)", v, ok)
	}
}

func TestTierUpReducesCost(t *testing.T) {
	src := `
function hot() {
	var s = 0;
	for (var i = 0; i < 50000; i++) s = s + i;
	return s;
}
var __exit = hot() % 1000;
`
	jit := New(DefaultConfig())
	if _, err := jit.Run(src); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.JITEnabled = false
	nojit := New(cfg)
	if _, err := nojit.Run(src); err != nil {
		t.Fatal(err)
	}
	if jit.Cycles() >= nojit.Cycles() {
		t.Errorf("JIT should be faster: %v vs %v", jit.Cycles(), nojit.Cycles())
	}
	if nojit.Cycles()/jit.Cycles() < 5 {
		t.Errorf("JIT speedup too small: %.2fx", nojit.Cycles()/jit.Cycles())
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCThreshold = 64 << 10
	vm := New(cfg)
	_, err := vm.Run(`
var keep = [1, 2, 3];
for (var i = 0; i < 5000; i++) {
	var junk = { a: [i, i + 1, i + 2], b: "x" };
	junk.a.push(i);
}
var __exit = keep[2];
`)
	if err != nil {
		t.Fatal(err)
	}
	if vm.GCCount() == 0 {
		t.Fatal("GC never ran")
	}
	// Live heap must be far below total allocation volume (5000 objects).
	if vm.heapLive > 1<<20 {
		t.Errorf("heap did not shrink: %d live bytes", vm.heapLive)
	}
	if got := exitOf(t, vm); got != 3 {
		t.Errorf("live data corrupted by GC: %d", got)
	}
}

func TestGCKeepsReachableThroughClosures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCThreshold = 32 << 10
	vm := New(cfg)
	_, err := vm.Run(`
function makeGetter() {
	var data = [42, 43, 44];
	return function () { return data[0]; };
}
var g = makeGetter();
for (var i = 0; i < 3000; i++) {
	var junk = [i, i, i, i];
}
var __exit = g();
`)
	if err != nil {
		t.Fatal(err)
	}
	if vm.GCCount() == 0 {
		t.Fatal("GC never ran")
	}
	if got := exitOf(t, vm); got != 42 {
		t.Errorf("closure-held data collected: %d", got)
	}
}

func TestHeapMetricExcludesBackingStores(t *testing.T) {
	vm, _ := run(t, `
var big = new Float64Array(100000); // 800 KB backing store
big[0] = 1;
var __exit = 0;
`)
	// The JS-heap metric must stay near the engine baseline while the
	// external accounting sees the 800 KB (the paper's flat-JS-memory
	// observation).
	if vm.PeakHeapBytes() > vm.cfg.EngineBaseline+64<<10 {
		t.Errorf("JS heap counts backing store: %d", vm.PeakHeapBytes())
	}
	if vm.PeakExternalBytes() < 800000 {
		t.Errorf("external bytes missing: %d", vm.PeakExternalBytes())
	}
}

func TestPerformanceNowMonotonic(t *testing.T) {
	vm, _ := run(t, `
var t0 = performance.now();
var s = 0;
for (var i = 0; i < 10000; i++) s += i;
var t1 = performance.now();
var __exit = (t1 > t0) ? 1 : 0;
`)
	if got := exitOf(t, vm); got != 1 {
		t.Error("performance.now must advance with virtual time")
	}
}

func TestNumberFormatting(t *testing.T) {
	for f, want := range map[float64]string{
		1:      "1",
		-3.5:   "-3.5",
		0:      "0",
		1e21:   "1e+21",
		123456: "123456",
	} {
		if got := formatNumber(f); got != want {
			t.Errorf("formatNumber(%v) = %q, want %q", f, got, want)
		}
	}
	if formatNumber(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
}

func TestToInt32Properties(t *testing.T) {
	// ToInt32 must agree with the spec's modular arithmetic.
	f := func(x int32) bool {
		return toInt32(float64(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if toInt32(math.NaN()) != 0 || toInt32(math.Inf(1)) != 0 {
		t.Error("NaN/Inf must convert to 0")
	}
	if toInt32(4294967296+5) != 5 {
		t.Error("ToInt32 must wrap mod 2^32")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"var = 3;",
		"function () {}",
		"if (true {",
		"1 +",
		`"unterminated`,
	} {
		vm := New(DefaultConfig())
		if _, err := vm.Run(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestStepLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepLimit = 1000
	vm := New(cfg)
	_, err := vm.Run(`while (true) {}`)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step limit, got %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	vm := New(DefaultConfig())
	_, err := vm.Run(`function f(){ return f(); } f();`)
	if err == nil || !strings.Contains(err.Error(), "call stack") {
		t.Fatalf("expected stack overflow, got %v", err)
	}
}

func TestHostCryptoDigest(t *testing.T) {
	vm, _ := run(t, `
var msg = new Uint8Array(64);
for (var i = 0; i < 64; i++) msg[i] = i;
var h = crypto.subtle.digestSHA1(msg);
var __exit = h.length;
`)
	if got := exitOf(t, vm); got != 5 {
		t.Errorf("digest words: %d", got)
	}
}

func TestArithOpCounters(t *testing.T) {
	vm, _ := run(t, `
var s = 0;
for (var i = 0; i < 100; i++) {
	s = s + (i * 2) - (i & 3) + (i << 1);
}
var __exit = s | 0;
`)
	ops := vm.ArithOps()
	if ops["MUL"] != 100 || ops["AND"] != 100 || ops["SHIFT"] != 100 {
		t.Errorf("op counters: %v", ops)
	}
	if ops["ADD"] < 200 {
		t.Errorf("ADD undercounted: %v", ops)
	}
}
