package jsvm

import (
	"fmt"
	"strconv"
	"strings"
)

type jsTokKind int

const (
	jtEOF jsTokKind = iota
	jtIdent
	jtKeyword
	jtNumber
	jtString
	jtPunct
)

type jsTok struct {
	kind jsTokKind
	text string
	num  float64
	line int
}

var jsKeywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true, "return": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"break": true, "continue": true, "switch": true, "case": true,
	"default": true, "new": true, "typeof": true, "true": true, "false": true,
	"null": true, "undefined": true, "this": true, "in": true, "of": true,
	"instanceof": true, "delete": true, "void": true, "throw": true, "try": true, "catch": true, "finally": true,
}

var jsPuncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=", "**",
	"=>", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?",
	":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
}

func jsLex(src string) ([]jsTok, error) {
	var toks []jsTok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("jsvm: line %d: unterminated comment", line)
			}
			i += 2
		case isJSIdentStart(c):
			start := i
			for i < len(src) && isJSIdentPart(src[i]) {
				i++
			}
			text := src[start:i]
			k := jtIdent
			if jsKeywords[text] {
				k = jtKeyword
			}
			toks = append(toks, jsTok{kind: k, text: text, line: line})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				i += 2
				for i < len(src) && isHex(src[i]) {
					i++
				}
				v, err := strconv.ParseUint(src[start+2:i], 16, 64)
				if err != nil {
					return nil, fmt.Errorf("jsvm: line %d: bad hex literal", line)
				}
				toks = append(toks, jsTok{kind: jtNumber, num: float64(v), text: src[start:i], line: line})
				continue
			}
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				i++
				if i < len(src) && (src[i] == '+' || src[i] == '-') {
					i++
				}
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			f, err := strconv.ParseFloat(src[start:i], 64)
			if err != nil {
				return nil, fmt.Errorf("jsvm: line %d: bad number %q", line, src[start:i])
			}
			toks = append(toks, jsTok{kind: jtNumber, num: f, text: src[start:i], line: line})
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("jsvm: line %d: unterminated string", line)
				}
				if src[i] == quote {
					i++
					break
				}
				if src[i] == '\\' && i+1 < len(src) {
					i++
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					case '0':
						sb.WriteByte(0)
					case 'u':
						// \uXXXX
						if i+4 < len(src) {
							v, err := strconv.ParseUint(src[i+1:i+5], 16, 32)
							if err == nil {
								sb.WriteRune(rune(v))
								i += 4
							}
						}
					default:
						sb.WriteByte(src[i])
					}
					i++
					continue
				}
				if src[i] == '\n' {
					line++
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, jsTok{kind: jtString, text: sb.String(), line: line})
		default:
			matched := false
			for _, p := range jsPuncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, jsTok{kind: jtPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("jsvm: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, jsTok{kind: jtEOF, line: line})
	return toks, nil
}

func isJSIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isJSIdentPart(c byte) bool {
	return isJSIdentStart(c) || (c >= '0' && c <= '9')
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
