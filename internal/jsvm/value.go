// Package jsvm implements the study's JavaScript engine substrate: a
// lexer/parser for an ES5-flavoured subset, a closure-compiling evaluator
// with static slot resolution, a mark-sweep garbage collector, and a
// two-tier execution model (interpreter tier and a hotness-triggered
// optimizing JIT tier) mirroring the engines the paper measures (§2.2.1).
//
// Like the Wasm VM, the engine maintains a deterministic virtual-cycle
// clock driven by per-construct cost tables that differ between tiers:
// boxed dynamic dispatch in the interpreter tier, type-specialized costs in
// the JIT tier. Browser profiles supply the tables and tier-up thresholds.
package jsvm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates JavaScript values.
type Kind uint8

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

// Value is a JavaScript value.
type Value struct {
	Kind Kind
	Num  float64
	Str  string
	Obj  *Object
}

// Undefined is the undefined value.
var Undefined = Value{Kind: KindUndefined}

// Null is the null value.
var Null = Value{Kind: KindNull}

// Num makes a number value.
func Num(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Bool makes a boolean value.
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.Num = 1
	}
	return v
}

// Str makes a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// ObjVal wraps an object.
func ObjVal(o *Object) Value { return Value{Kind: KindObject, Obj: o} }

// IsTruthy implements ToBoolean.
func (v Value) IsTruthy() bool {
	switch v.Kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.Num != 0
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KindString:
		return v.Str != ""
	default:
		return true
	}
}

// ToNumber implements the numeric coercion.
func (v Value) ToNumber() float64 {
	switch v.Kind {
	case KindNumber:
		return v.Num
	case KindBool:
		return v.Num
	case KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindString:
		s := strings.TrimSpace(v.Str)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	default:
		return math.NaN()
	}
}

// ToInt32 implements the ToInt32 abstract operation (bitwise operands).
func (v Value) ToInt32() int32 {
	return toInt32(v.ToNumber())
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(f)))
}

func toUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(f))
}

// ToString implements the string coercion.
func (v Value) ToString() string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.Num != 0 {
			return "true"
		}
		return "false"
	case KindNumber:
		return formatNumber(v.Num)
	case KindString:
		return v.Str
	default:
		return v.Obj.toString()
	}
}

func formatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e21 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ObjKind discriminates heap objects.
type ObjKind uint8

// Object kinds.
const (
	ObjPlain ObjKind = iota
	ObjArray
	ObjFunction
	ObjTypedArray
	ObjArrayBuffer
)

// TAKind discriminates typed-array element types.
type TAKind uint8

// Typed array kinds.
const (
	TAInt8 TAKind = iota
	TAUint8
	TAInt16
	TAUint16
	TAInt32
	TAUint32
	TAFloat32
	TAFloat64
)

// ElemSize returns the element width in bytes.
func (k TAKind) ElemSize() int {
	switch k {
	case TAInt8, TAUint8:
		return 1
	case TAInt16, TAUint16:
		return 2
	case TAInt32, TAUint32, TAFloat32:
		return 4
	default:
		return 8
	}
}

// Object is a heap-allocated JavaScript object.
type Object struct {
	Kind  ObjKind
	Props map[string]Value
	// Array storage.
	Elems []Value
	// Function storage.
	Fn *FuncObj
	// Typed array view.
	TA struct {
		Buf  *Object // ObjArrayBuffer
		Kind TAKind
		Len  int
	}
	// ArrayBuffer backing store (external memory: excluded from the JS-heap
	// metric, as in Chrome DevTools).
	Buf []byte

	marked bool
}

// FuncObj is a callable.
type FuncObj struct {
	Name   string
	Code   *compiledFunc
	Env    *env
	Native func(vm *VM, this Value, args []Value) (Value, error)
	// tier state
	hot      uint64
	tieredUp bool
}

func (o *Object) toString() string {
	switch o.Kind {
	case ObjArray:
		parts := make([]string, len(o.Elems))
		for i, e := range o.Elems {
			if e.Kind == KindUndefined || e.Kind == KindNull {
				parts[i] = ""
			} else {
				parts[i] = e.ToString()
			}
		}
		return strings.Join(parts, ",")
	case ObjFunction:
		name := ""
		if o.Fn != nil {
			name = o.Fn.Name
		}
		return "function " + name + "() { [native code] }"
	case ObjTypedArray:
		return fmt.Sprintf("[object TypedArray(%d)]", o.TA.Len)
	case ObjArrayBuffer:
		return "[object ArrayBuffer]"
	default:
		return "[object Object]"
	}
}

// heapSize estimates the object's JS-heap footprint in bytes. ArrayBuffer
// backing stores are *external* memory and excluded (the paper's flat JS
// memory readings come from exactly this accounting).
func (o *Object) heapSize() uint64 {
	sz := uint64(48)
	sz += uint64(len(o.Props)) * 32
	for k := range o.Props {
		sz += uint64(len(k))
	}
	sz += uint64(cap(o.Elems)) * 16
	if o.Kind == ObjFunction {
		sz += 96
	}
	return sz
}

// TAGet reads element i of a typed-array object.
func (o *Object) TAGet(i int) float64 {
	if i < 0 || i >= o.TA.Len {
		return math.NaN() // undefined coerces to NaN downstream anyway
	}
	b := o.TA.Buf.Buf
	switch o.TA.Kind {
	case TAInt8:
		return float64(int8(b[i]))
	case TAUint8:
		return float64(b[i])
	case TAInt16:
		return float64(int16(le16(b[i*2:])))
	case TAUint16:
		return float64(le16(b[i*2:]))
	case TAInt32:
		return float64(int32(le32(b[i*4:])))
	case TAUint32:
		return float64(le32(b[i*4:]))
	case TAFloat32:
		return float64(math.Float32frombits(le32(b[i*4:])))
	default:
		return math.Float64frombits(le64(b[i*8:]))
	}
}

// TASet writes element i of a typed-array object (out-of-range writes are
// dropped, per spec).
func (o *Object) TASet(i int, f float64) {
	if i < 0 || i >= o.TA.Len {
		return
	}
	b := o.TA.Buf.Buf
	switch o.TA.Kind {
	case TAInt8, TAUint8:
		b[i] = byte(toInt32(f))
	case TAInt16, TAUint16:
		v := uint16(toInt32(f))
		b[i*2], b[i*2+1] = byte(v), byte(v>>8)
	case TAInt32, TAUint32:
		v := uint32(toInt32(f))
		put32(b[i*4:], v)
	case TAFloat32:
		put32(b[i*4:], math.Float32bits(float32(f)))
	default:
		put64(b[i*8:], math.Float64bits(f))
	}
}

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func le64(b []byte) uint64 { return uint64(le32(b)) | uint64(le32(b[4:]))<<32 }
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindUndefined, KindNull:
		return true
	case KindNumber, KindBool:
		return a.Num == b.Num
	case KindString:
		return a.Str == b.Str
	default:
		return a.Obj == b.Obj
	}
}

// LooseEquals implements == for the subset (no object-to-primitive beyond
// numbers and strings).
func LooseEquals(a, b Value) bool {
	if a.Kind == b.Kind {
		return StrictEquals(a, b)
	}
	if (a.Kind == KindNull && b.Kind == KindUndefined) ||
		(a.Kind == KindUndefined && b.Kind == KindNull) {
		return true
	}
	return a.ToNumber() == b.ToNumber()
}
