package jsvm

import "fmt"

// jsParse parses a program (list of statements).
func jsParse(src string) ([]jsStmt, error) {
	toks, err := jsLex(src)
	if err != nil {
		return nil, err
	}
	p := &jsParser{toks: toks}
	var body []jsStmt
	for !p.at(jtEOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}

type jsParser struct {
	toks []jsTok
	pos  int
}

func (p *jsParser) cur() jsTok          { return p.toks[p.pos] }
func (p *jsParser) at(k jsTokKind) bool { return p.cur().kind == k }

func (p *jsParser) atP(s string) bool {
	return p.cur().kind == jtPunct && p.cur().text == s
}

func (p *jsParser) atKw(s string) bool {
	return p.cur().kind == jtKeyword && p.cur().text == s
}

func (p *jsParser) eatP(s string) bool {
	if p.atP(s) {
		p.pos++
		return true
	}
	return false
}

func (p *jsParser) eatKw(s string) bool {
	if p.atKw(s) {
		p.pos++
		return true
	}
	return false
}

func (p *jsParser) expectP(s string) error {
	if !p.eatP(s) {
		t := p.cur()
		return fmt.Errorf("jsvm: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *jsParser) ident() (string, error) {
	t := p.cur()
	if t.kind != jtIdent {
		return "", fmt.Errorf("jsvm: line %d: expected identifier, got %q", t.line, t.text)
	}
	p.pos++
	return t.text, nil
}

// eatSemi consumes an optional statement terminator.
func (p *jsParser) eatSemi() { p.eatP(";") }

func (p *jsParser) stmt() (jsStmt, error) {
	t := p.cur()
	switch {
	case p.atP("{"):
		p.pos++
		var body []jsStmt
		for !p.atP("}") {
			if p.at(jtEOF) {
				return nil, fmt.Errorf("jsvm: unexpected EOF in block")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		}
		p.pos++
		return &sBlock{body: body}, nil
	case p.atP(";"):
		p.pos++
		return &sBlock{}, nil
	case p.atKw("var"), p.atKw("let"), p.atKw("const"):
		p.pos++
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		p.eatSemi()
		return s, nil
	case p.atKw("function"):
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		params, body, err := p.funcRest()
		if err != nil {
			return nil, err
		}
		return &sFunc{name: name, params: params, body: body}, nil
	case p.atKw("if"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st := &sIf{cond: cond, then: then}
		if p.eatKw("else") {
			st.els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.atKw("for"):
		return p.forStmt()
	case p.atKw("while"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &sWhile{cond: cond, body: body}, nil
	case p.atKw("do"):
		p.pos++
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if !p.eatKw("while") {
			return nil, fmt.Errorf("jsvm: line %d: expected while", p.cur().line)
		}
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		p.eatSemi()
		return &sWhile{cond: cond, body: body, post: true}, nil
	case p.atKw("switch"):
		return p.switchStmt()
	case p.atKw("break"):
		p.pos++
		lbl := ""
		if p.at(jtIdent) {
			lbl = p.cur().text
			p.pos++
		}
		p.eatSemi()
		return &sBreak{label: lbl}, nil
	case p.atKw("continue"):
		p.pos++
		lbl := ""
		if p.at(jtIdent) {
			lbl = p.cur().text
			p.pos++
		}
		p.eatSemi()
		return &sContinue{label: lbl}, nil
	case p.atKw("return"):
		p.pos++
		if p.atP(";") || p.atP("}") {
			p.eatSemi()
			return &sReturn{}, nil
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.eatSemi()
		return &sReturn{x: x}, nil
	case p.atKw("throw"):
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.eatSemi()
		return &sThrow{x: x}, nil
	case p.atKw("try"):
		return p.tryStmt()
	}
	// Labeled statement: ident ':' stmt.
	if t.kind == jtIdent && p.toks[p.pos+1].kind == jtPunct && p.toks[p.pos+1].text == ":" {
		label := t.text
		p.pos += 2
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &sLabeled{label: label, body: body}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.eatSemi()
	return &sExpr{x: x}, nil
}

func (p *jsParser) varDecl() (*sVar, error) {
	s := &sVar{}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.names = append(s.names, name)
		if p.eatP("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			s.inits = append(s.inits, init)
		} else {
			s.inits = append(s.inits, nil)
		}
		if !p.eatP(",") {
			return s, nil
		}
	}
}

func (p *jsParser) funcRest() (params []string, body []jsStmt, err error) {
	if err := p.expectP("("); err != nil {
		return nil, nil, err
	}
	for !p.atP(")") {
		name, err := p.ident()
		if err != nil {
			return nil, nil, err
		}
		params = append(params, name)
		if !p.eatP(",") {
			break
		}
	}
	if err := p.expectP(")"); err != nil {
		return nil, nil, err
	}
	if err := p.expectP("{"); err != nil {
		return nil, nil, err
	}
	for !p.atP("}") {
		if p.at(jtEOF) {
			return nil, nil, fmt.Errorf("jsvm: unexpected EOF in function body")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, nil, err
		}
		body = append(body, s)
	}
	p.pos++
	return params, body, nil
}

func (p *jsParser) forStmt() (jsStmt, error) {
	p.pos++ // for
	if err := p.expectP("("); err != nil {
		return nil, err
	}
	fs := &sFor{}
	if !p.atP(";") {
		if p.atKw("var") || p.atKw("let") || p.atKw("const") {
			p.pos++
			vd, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			fs.init = vd
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			fs.init = &sExpr{x: x}
		}
	}
	if err := p.expectP(";"); err != nil {
		return nil, err
	}
	if !p.atP(";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.cond = c
	}
	if err := p.expectP(";"); err != nil {
		return nil, err
	}
	if !p.atP(")") {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.post = post
	}
	if err := p.expectP(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	fs.body = body
	return fs, nil
}

func (p *jsParser) switchStmt() (jsStmt, error) {
	p.pos++ // switch
	if err := p.expectP("("); err != nil {
		return nil, err
	}
	tag, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectP(")"); err != nil {
		return nil, err
	}
	if err := p.expectP("{"); err != nil {
		return nil, err
	}
	sw := &sSwitch{tag: tag, defaultI: -1}
	for !p.atP("}") {
		switch {
		case p.eatKw("case"):
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectP(":"); err != nil {
				return nil, err
			}
			sw.cases = append(sw.cases, jsSwitchCase{val: v})
		case p.eatKw("default"):
			if err := p.expectP(":"); err != nil {
				return nil, err
			}
			sw.defaultI = len(sw.cases)
			sw.cases = append(sw.cases, jsSwitchCase{})
		default:
			if len(sw.cases) == 0 {
				return nil, fmt.Errorf("jsvm: line %d: statement before first case", p.cur().line)
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			sw.cases[len(sw.cases)-1].body = append(sw.cases[len(sw.cases)-1].body, s)
		}
	}
	p.pos++
	return sw, nil
}

func (p *jsParser) tryStmt() (jsStmt, error) {
	p.pos++ // try
	if err := p.expectP("{"); err != nil {
		return nil, err
	}
	st := &sTry{}
	for !p.atP("}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st.body = append(st.body, s)
	}
	p.pos++
	if p.eatKw("catch") {
		if p.eatP("(") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.param = name
			if err := p.expectP(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectP("{"); err != nil {
			return nil, err
		}
		for !p.atP("}") {
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.catch = append(st.catch, s)
		}
		p.pos++
	}
	if p.eatKw("finally") {
		if err := p.expectP("{"); err != nil {
			return nil, err
		}
		for !p.atP("}") {
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.finally = append(st.finally, s)
		}
		p.pos++
	}
	return st, nil
}

// ---- expressions ----

func (p *jsParser) expr() (jsExpr, error) {
	x, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.atP(",") {
		p.pos++
		y, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		x = &eSeq{x: x, y: y}
	}
	return x, nil
}

func (p *jsParser) assignExpr() (jsExpr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == jtPunct {
		op := p.cur().text
		switch op {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>=":
			p.pos++
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &eAssign{op: op, lhs: lhs, rhs: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *jsParser) condExpr() (jsExpr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.eatP("?") {
		t, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(":"); err != nil {
			return nil, err
		}
		f, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &eCond{c: c, t: t, f: f}, nil
	}
	return c, nil
}

var jsBinPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *jsParser) binExpr(minPrec int) (jsExpr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != jtPunct {
			return lhs, nil
		}
		prec, ok := jsBinPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		if t.text == "&&" || t.text == "||" {
			lhs = &eLogical{op: t.text, x: lhs, y: rhs}
		} else {
			lhs = &eBinary{op: t.text, x: lhs, y: rhs}
		}
	}
}

func (p *jsParser) unaryExpr() (jsExpr, error) {
	t := p.cur()
	if t.kind == jtPunct {
		switch t.text {
		case "-", "+", "!", "~":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &eUnary{op: t.text, x: x}, nil
		case "++", "--":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &eUnary{op: t.text, x: x}, nil
		}
	}
	if t.kind == jtKeyword && t.text == "typeof" {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &eUnary{op: "typeof", x: x}, nil
	}
	return p.postfixExpr()
}

func (p *jsParser) postfixExpr() (jsExpr, error) {
	x, err := p.callExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == jtPunct && (t.text == "++" || t.text == "--") {
		p.pos++
		return &eUnary{op: t.text, x: x, postfix: true}, nil
	}
	return x, nil
}

func (p *jsParser) callExpr() (jsExpr, error) {
	var x jsExpr
	var err error
	if p.atKw("new") {
		p.pos++
		callee, err := p.memberOnly()
		if err != nil {
			return nil, err
		}
		var args []jsExpr
		if p.eatP("(") {
			args, err = p.argList()
			if err != nil {
				return nil, err
			}
		}
		x = &eNew{callee: callee, args: args}
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.eatP("."):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			x = &eMember{obj: x, name: name}
		case p.eatP("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectP("]"); err != nil {
				return nil, err
			}
			x = &eMember{obj: x, computed: idx}
		case p.eatP("("):
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			x = &eCall{callee: x, args: args}
		default:
			return x, nil
		}
	}
}

// memberOnly parses member chains without call suffixes (for `new X.Y(...)`).
func (p *jsParser) memberOnly() (jsExpr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.eatP(".") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		x = &eMember{obj: x, name: name}
	}
	return x, nil
}

func (p *jsParser) argList() ([]jsExpr, error) {
	var args []jsExpr
	for !p.atP(")") {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatP(",") {
			break
		}
	}
	if err := p.expectP(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *jsParser) primary() (jsExpr, error) {
	t := p.cur()
	switch t.kind {
	case jtNumber:
		p.pos++
		return &eNum{v: t.num}, nil
	case jtString:
		p.pos++
		return &eStr{v: t.text}, nil
	case jtIdent:
		p.pos++
		return &eIdent{name: t.text}, nil
	case jtKeyword:
		switch t.text {
		case "true":
			p.pos++
			return &eBool{v: true}, nil
		case "false":
			p.pos++
			return &eBool{v: false}, nil
		case "null":
			p.pos++
			return &eNull{}, nil
		case "undefined":
			p.pos++
			return &eUndefined{}, nil
		case "this":
			p.pos++
			return &eThis{}, nil
		case "function":
			p.pos++
			name := ""
			if p.at(jtIdent) {
				name = p.cur().text
				p.pos++
			}
			params, body, err := p.funcRest()
			if err != nil {
				return nil, err
			}
			return &eFunc{name: name, params: params, body: body}, nil
		}
	case jtPunct:
		switch t.text {
		case "(":
			p.pos++
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			return x, p.expectP(")")
		case "[":
			p.pos++
			var elems []jsExpr
			for !p.atP("]") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.eatP(",") {
					break
				}
			}
			if err := p.expectP("]"); err != nil {
				return nil, err
			}
			return &eArray{elems: elems}, nil
		case "{":
			p.pos++
			obj := &eObject{}
			for !p.atP("}") {
				var key string
				kt := p.cur()
				switch kt.kind {
				case jtIdent, jtKeyword, jtString:
					key = kt.text
					p.pos++
				case jtNumber:
					key = formatNumber(kt.num)
					p.pos++
				default:
					return nil, fmt.Errorf("jsvm: line %d: bad object key", kt.line)
				}
				if err := p.expectP(":"); err != nil {
					return nil, err
				}
				v, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				obj.keys = append(obj.keys, key)
				obj.vals = append(obj.vals, v)
				if !p.eatP(",") {
					break
				}
			}
			if err := p.expectP("}"); err != nil {
				return nil, err
			}
			return obj, nil
		}
	}
	return nil, fmt.Errorf("jsvm: line %d: unexpected token %q", t.line, t.text)
}
