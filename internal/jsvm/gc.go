package jsvm

import "wasmbench/internal/obsv"

// The mark-sweep collector. Collections run at statement-boundary
// safepoints (maybeGC); in-flight expression temporaries are protected by
// the vm.temps shadow stack, which every allocation joins until its
// enclosing statement completes.
//
// Collection updates the live JS-heap accounting that backs the study's
// memory metric: JavaScript memory stays flat because dead objects are
// reclaimed, while Wasm linear memory only ever grows (§4.3).

func (vm *VM) gc() {
	vm.gcCount++
	vm.epoch++

	// Mark roots: the global scope, all active activation records, closure
	// environments (reached through function objects), and in-flight
	// temporaries.
	if vm.global != nil {
		vm.markEnv(vm.global)
	}
	for _, e := range vm.envStack {
		vm.markEnv(e)
	}
	for _, o := range vm.temps {
		vm.markObject(o)
	}
	for _, o := range vm.hostFuncs {
		vm.markObject(o)
	}
	for _, hb := range vm.pendingGlobals {
		vm.markValue(hb.v)
	}

	// Sweep.
	live := vm.objects[:0]
	var freedHeap, freedExt uint64
	for _, o := range vm.objects {
		if o.marked {
			o.marked = false
			live = append(live, o)
			continue
		}
		freedHeap += o.heapSize()
		if o.Kind == ObjArrayBuffer {
			freedExt += uint64(len(o.Buf))
			o.Buf = nil
		}
	}
	// Charge collection work.
	charge := vm.cfg.GCMarkPerObject*float64(len(live)) +
		vm.cfg.GCSweepPerObject*float64(len(vm.objects)-len(live))
	vm.cycles += charge
	if vm.tracer != nil {
		vm.tracer.Emit(obsv.Event{Kind: obsv.KindGCCycle, TS: vm.cycles,
			Dur: charge, Track: "js",
			A: float64(freedHeap + freedExt), B: float64(len(live))})
	}
	if vm.inst != nil {
		vm.inst.GCCycles.Inc()
		vm.inst.GCFreedBytes.Add(float64(freedHeap + freedExt))
	}
	vm.objects = live
	if freedHeap > vm.heapLive {
		freedHeap = vm.heapLive
	}
	vm.heapLive -= freedHeap
	if freedExt > vm.external {
		freedExt = vm.external
	}
	vm.external -= freedExt
	vm.allocSince = 0
}

func (vm *VM) markEnv(e *env) {
	for ; e != nil; e = e.parent {
		if e.epoch == vm.epoch {
			return
		}
		e.epoch = vm.epoch
		for i := range e.slots {
			vm.markValue(e.slots[i])
		}
	}
}

func (vm *VM) markValue(v Value) {
	if v.Kind == KindObject && v.Obj != nil {
		vm.markObject(v.Obj)
	}
}

func (vm *VM) markObject(o *Object) {
	if o == nil || o.marked {
		return
	}
	o.marked = true
	for _, v := range o.Props {
		vm.markValue(v)
	}
	for _, v := range o.Elems {
		vm.markValue(v)
	}
	if o.TA.Buf != nil {
		vm.markObject(o.TA.Buf)
	}
	if o.Fn != nil && o.Fn.Env != nil {
		vm.markEnv(o.Fn.Env)
	}
}
