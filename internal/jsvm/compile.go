package jsvm

import "fmt"

// Control codes threaded through statement closures.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type stmtFn func(vm *VM, e *env) (ctrl, Value, error)

type exprFn func(vm *VM, e *env) (Value, error)

// refFn writes through a resolved reference (assignment targets).
type refFn func(vm *VM, e *env, v Value) error

// compiledFunc is the executable form of a function (or the program).
type compiledFunc struct {
	name     string
	nParams  int
	nSlots   int
	thisSlot int
	argsSlot int
	slotOf   map[string]int
	code     []stmtFn
	nNodes   int
	hot      uint64
	tieredUp bool
	// jitBlocked pins the function to the interpreter tier after an
	// injected JIT compile failure (faultinject.JSJITCompile).
	jitBlocked bool

	// Profiling accumulators, maintained only while vm.profiling is set.
	calls       uint64
	totalCycles float64
	selfCycles  float64
	classCounts [NumJSClasses]uint64
}

// cscope is a compile-time scope.
type cscope struct {
	cf     *compiledFunc
	parent *cscope
}

func (s *cscope) define(name string) int {
	if idx, ok := s.cf.slotOf[name]; ok {
		return idx
	}
	idx := s.cf.nSlots
	s.cf.slotOf[name] = idx
	s.cf.nSlots++
	return idx
}

// resolve finds (depth, slot); unresolved names become globals.
func (s *cscope) resolve(name string) (depth, slot int) {
	d := 0
	for sc := s; sc != nil; sc = sc.parent {
		if idx, ok := sc.cf.slotOf[name]; ok {
			return d, idx
		}
		d++
	}
	// Implicit global.
	root := s
	d = 0
	for root.parent != nil {
		root = root.parent
		d++
	}
	return d, root.define(name)
}

type jsCompiler struct {
	vm    *VM
	scope *cscope
	nodes *int
	// pendingLabel is consumed by the next loop statement compiled (set by
	// sLabeled wrappers).
	pendingLabel string
}

// takeLabel pops the pending label for the loop being compiled.
func (c *jsCompiler) takeLabel() string {
	l := c.pendingLabel
	c.pendingLabel = ""
	return l
}

// labeledStmt compiles a labeled statement: loops take the label as their
// own; a labeled block consumes labeled breaks targeting it.
func (c *jsCompiler) labeledStmt(label string, body jsStmt) (stmtFn, error) {
	switch body.(type) {
	case *sFor, *sWhile:
		c.pendingLabel = label
		return c.stmt(body)
	}
	inner, err := c.stmt(body)
	if err != nil {
		return nil, err
	}
	return func(vm *VM, e *env) (ctrl, Value, error) {
		ct, v, err := inner(vm, e)
		if ct == ctrlBreak && vm.ctrlLabel == label {
			vm.ctrlLabel = ""
			return ctrlNone, Undefined, nil
		}
		return ct, v, err
	}, nil
}

// compileProgram compiles top-level code.
func compileProgram(vm *VM, body []jsStmt) (*compiledFunc, error) {
	cf := &compiledFunc{name: "(program)", slotOf: map[string]int{}, thisSlot: -1, argsSlot: -1}
	vm.allFuncs = append(vm.allFuncs, cf)
	sc := &cscope{cf: cf}
	c := &jsCompiler{vm: vm, scope: sc, nodes: &cf.nNodes}
	hoist(body, sc)
	// Pre-bind host names referenced anywhere so Run can install them.
	for name := range vm.hostFuncs {
		if referencesName(body, name) {
			sc.define(name)
		}
	}
	for _, hb := range vm.pendingGlobals {
		if referencesName(body, hb.name) {
			sc.define(hb.name)
		}
	}
	code, err := c.stmts(body)
	if err != nil {
		return nil, err
	}
	cf.code = code
	return cf, nil
}

// hoist declares vars and function declarations into the scope (function
// scoping; nested functions are not entered).
func hoist(body []jsStmt, sc *cscope) {
	for _, s := range body {
		switch st := s.(type) {
		case *sVar:
			for _, n := range st.names {
				sc.define(n)
			}
		case *sFunc:
			sc.define(st.name)
		case *sBlock:
			hoist(st.body, sc)
		case *sIf:
			hoist([]jsStmt{st.then}, sc)
			if st.els != nil {
				hoist([]jsStmt{st.els}, sc)
			}
		case *sFor:
			if st.init != nil {
				hoist([]jsStmt{st.init}, sc)
			}
			hoist([]jsStmt{st.body}, sc)
		case *sWhile:
			hoist([]jsStmt{st.body}, sc)
		case *sSwitch:
			for _, cs := range st.cases {
				hoist(cs.body, sc)
			}
		case *sTry:
			hoist(st.body, sc)
			if st.param != "" {
				sc.define(st.param)
			}
			hoist(st.catch, sc)
			hoist(st.finally, sc)
		case *sLabeled:
			hoist([]jsStmt{st.body}, sc)
		}
	}
}

// referencesName reports whether the program mentions an identifier (used
// to bind host globals lazily).
func referencesName(body []jsStmt, name string) bool {
	found := false
	var ve func(e jsExpr)
	var vs func(s jsStmt)
	ve = func(e jsExpr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *eIdent:
			if x.name == name {
				found = true
			}
		case *eArray:
			for _, el := range x.elems {
				ve(el)
			}
		case *eObject:
			for _, v := range x.vals {
				ve(v)
			}
		case *eFunc:
			for _, s := range x.body {
				vs(s)
			}
		case *eUnary:
			ve(x.x)
		case *eBinary:
			ve(x.x)
			ve(x.y)
		case *eLogical:
			ve(x.x)
			ve(x.y)
		case *eAssign:
			ve(x.lhs)
			ve(x.rhs)
		case *eCond:
			ve(x.c)
			ve(x.t)
			ve(x.f)
		case *eCall:
			ve(x.callee)
			for _, a := range x.args {
				ve(a)
			}
		case *eNew:
			ve(x.callee)
			for _, a := range x.args {
				ve(a)
			}
		case *eMember:
			ve(x.obj)
			ve(x.computed)
		case *eSeq:
			ve(x.x)
			ve(x.y)
		}
	}
	vs = func(s jsStmt) {
		if found || s == nil {
			return
		}
		switch st := s.(type) {
		case *sVar:
			for _, in := range st.inits {
				ve(in)
			}
		case *sFunc:
			for _, b := range st.body {
				vs(b)
			}
		case *sExpr:
			ve(st.x)
		case *sIf:
			ve(st.cond)
			vs(st.then)
			vs(st.els)
		case *sBlock:
			for _, b := range st.body {
				vs(b)
			}
		case *sFor:
			vs(st.init)
			ve(st.cond)
			ve(st.post)
			vs(st.body)
		case *sWhile:
			ve(st.cond)
			vs(st.body)
		case *sSwitch:
			ve(st.tag)
			for _, cs := range st.cases {
				ve(cs.val)
				for _, b := range cs.body {
					vs(b)
				}
			}
		case *sReturn:
			ve(st.x)
		case *sThrow:
			ve(st.x)
		case *sTry:
			for _, b := range st.body {
				vs(b)
			}
			for _, b := range st.catch {
				vs(b)
			}
			for _, b := range st.finally {
				vs(b)
			}
		}
	}
	for _, s := range body {
		vs(s)
	}
	return found
}

func (c *jsCompiler) node() { *c.nodes++ }

func (c *jsCompiler) stmts(body []jsStmt) ([]stmtFn, error) {
	var out []stmtFn
	for _, s := range body {
		f, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func runList(vm *VM, e *env, list []stmtFn) (ctrl, Value, error) {
	for _, s := range list {
		ct, v, err := s(vm, e)
		if err != nil || ct != ctrlNone {
			return ct, v, err
		}
	}
	return ctrlNone, Undefined, nil
}

func (c *jsCompiler) stmt(s jsStmt) (stmtFn, error) {
	c.node()
	switch st := s.(type) {
	case *sVar:
		var fns []stmtFn
		for i, name := range st.names {
			depth, slot := c.scope.resolve(name)
			if st.inits[i] == nil {
				continue
			}
			init, err := c.expr(st.inits[i])
			if err != nil {
				return nil, err
			}
			d, sl := depth, slot
			fns = append(fns, func(vm *VM, e *env) (ctrl, Value, error) {
				v, err := init(vm, e)
				if err != nil {
					return ctrlNone, Undefined, err
				}
				if err := vm.step(e, JVarWrite); err != nil {
					return ctrlNone, Undefined, err
				}
				envAt(e, d).slots[sl] = v
				return ctrlNone, Undefined, nil
			})
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			tb := len(vm.temps)
			ct, v, err := runList(vm, e, fns)
			vm.temps = vm.temps[:tb]
			vm.maybeGC()
			return ct, v, err
		}, nil
	case *sFunc:
		depth, slot := c.scope.resolve(st.name)
		fn, err := c.function(st.name, st.params, st.body)
		if err != nil {
			return nil, err
		}
		d, sl := depth, slot
		return func(vm *VM, e *env) (ctrl, Value, error) {
			obj := vm.alloc(&Object{Kind: ObjFunction, Fn: &FuncObj{Name: fn.name, Code: fn, Env: e}})
			envAt(e, d).slots[sl] = ObjVal(obj)
			return ctrlNone, Undefined, nil
		}, nil
	case *sExpr:
		x, err := c.expr(st.x)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			tb := len(vm.temps)
			v, err := x(vm, e)
			vm.temps = vm.temps[:tb]
			if v.Kind == KindObject {
				// Keep the statement's result alive across the safepoint.
				vm.temps = append(vm.temps, v.Obj)
			}
			vm.maybeGC()
			return ctrlNone, v, err
		}, nil
	case *sIf:
		cond, err := c.expr(st.cond)
		if err != nil {
			return nil, err
		}
		then, err := c.stmt(st.then)
		if err != nil {
			return nil, err
		}
		var els stmtFn
		if st.els != nil {
			els, err = c.stmt(st.els)
			if err != nil {
				return nil, err
			}
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			if err := vm.step(e, JBranch); err != nil {
				return ctrlNone, Undefined, err
			}
			cv, err := cond(vm, e)
			if err != nil {
				return ctrlNone, Undefined, err
			}
			if cv.IsTruthy() {
				return then(vm, e)
			}
			if els != nil {
				return els(vm, e)
			}
			return ctrlNone, Undefined, nil
		}, nil
	case *sBlock:
		body, err := c.stmts(st.body)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			return runList(vm, e, body)
		}, nil
	case *sFor:
		myLabel := c.takeLabel()
		var init stmtFn
		var err error
		if st.init != nil {
			init, err = c.stmt(st.init)
			if err != nil {
				return nil, err
			}
		}
		var cond exprFn
		if st.cond != nil {
			cond, err = c.expr(st.cond)
			if err != nil {
				return nil, err
			}
		}
		var post exprFn
		if st.post != nil {
			post, err = c.expr(st.post)
			if err != nil {
				return nil, err
			}
		}
		body, err := c.stmt(st.body)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			if init != nil {
				if ct, v, err := init(vm, e); err != nil || ct == ctrlReturn {
					return ct, v, err
				}
			}
			for {
				if cond != nil {
					cv, err := cond(vm, e)
					if err != nil {
						return ctrlNone, Undefined, err
					}
					if !cv.IsTruthy() {
						return ctrlNone, Undefined, nil
					}
				}
				ct, v, err := body(vm, e)
				if err != nil {
					return ctrlNone, Undefined, err
				}
				if ct == ctrlBreak {
					if vm.ctrlLabel == "" || vm.ctrlLabel == myLabel {
						vm.ctrlLabel = ""
						return ctrlNone, Undefined, nil
					}
					return ct, Undefined, nil
				}
				if ct == ctrlContinue && vm.ctrlLabel != "" && vm.ctrlLabel != myLabel {
					return ct, Undefined, nil
				}
				vm.ctrlLabel = ""
				if ct == ctrlReturn {
					return ct, v, nil
				}
				if post != nil {
					tb := len(vm.temps)
					if _, err := post(vm, e); err != nil {
						return ctrlNone, Undefined, err
					}
					vm.temps = vm.temps[:tb]
				}
				if err := vm.step(e, JLoopBack); err != nil {
					return ctrlNone, Undefined, err
				}
				vm.bumpLoop(e)
				vm.maybeGC()
			}
		}, nil
	case *sWhile:
		myLabel := c.takeLabel()
		cond, err := c.expr(st.cond)
		if err != nil {
			return nil, err
		}
		body, err := c.stmt(st.body)
		if err != nil {
			return nil, err
		}
		post := st.post
		return func(vm *VM, e *env) (ctrl, Value, error) {
			for {
				if !post {
					cv, err := cond(vm, e)
					if err != nil {
						return ctrlNone, Undefined, err
					}
					if !cv.IsTruthy() {
						return ctrlNone, Undefined, nil
					}
				}
				ct, v, err := body(vm, e)
				if err != nil {
					return ctrlNone, Undefined, err
				}
				if ct == ctrlBreak {
					if vm.ctrlLabel == "" || vm.ctrlLabel == myLabel {
						vm.ctrlLabel = ""
						return ctrlNone, Undefined, nil
					}
					return ct, Undefined, nil
				}
				if ct == ctrlContinue && vm.ctrlLabel != "" && vm.ctrlLabel != myLabel {
					return ct, Undefined, nil
				}
				vm.ctrlLabel = ""
				if ct == ctrlReturn {
					return ct, v, nil
				}
				if post {
					cv, err := cond(vm, e)
					if err != nil {
						return ctrlNone, Undefined, err
					}
					if !cv.IsTruthy() {
						return ctrlNone, Undefined, nil
					}
				}
				if err := vm.step(e, JLoopBack); err != nil {
					return ctrlNone, Undefined, err
				}
				vm.bumpLoop(e)
				vm.maybeGC()
			}
		}, nil
	case *sSwitch:
		tag, err := c.expr(st.tag)
		if err != nil {
			return nil, err
		}
		type ccase struct {
			val  exprFn
			body []stmtFn
		}
		cases := make([]ccase, len(st.cases))
		for i, cs := range st.cases {
			if cs.val != nil {
				cases[i].val, err = c.expr(cs.val)
				if err != nil {
					return nil, err
				}
			}
			cases[i].body, err = c.stmts(cs.body)
			if err != nil {
				return nil, err
			}
		}
		defaultI := st.defaultI
		return func(vm *VM, e *env) (ctrl, Value, error) {
			if err := vm.step(e, JBranch); err != nil {
				return ctrlNone, Undefined, err
			}
			tv, err := tag(vm, e)
			if err != nil {
				return ctrlNone, Undefined, err
			}
			start := -1
			for i := range cases {
				if cases[i].val == nil {
					continue
				}
				if err := vm.step(e, JCmp); err != nil {
					return ctrlNone, Undefined, err
				}
				cv, err := cases[i].val(vm, e)
				if err != nil {
					return ctrlNone, Undefined, err
				}
				if StrictEquals(tv, cv) {
					start = i
					break
				}
			}
			if start < 0 {
				start = defaultI
			}
			if start < 0 {
				return ctrlNone, Undefined, nil
			}
			// Fallthrough: execute from the matched case onward.
			for i := start; i < len(cases); i++ {
				ct, v, err := runList(vm, e, cases[i].body)
				if err != nil {
					return ctrlNone, Undefined, err
				}
				if ct == ctrlBreak {
					if vm.ctrlLabel == "" {
						return ctrlNone, Undefined, nil
					}
					return ct, Undefined, nil
				}
				if ct == ctrlReturn || ct == ctrlContinue {
					return ct, v, nil
				}
			}
			return ctrlNone, Undefined, nil
		}, nil
	case *sBreak:
		lbl := st.label
		return func(vm *VM, e *env) (ctrl, Value, error) {
			vm.ctrlLabel = lbl
			return ctrlBreak, Undefined, nil
		}, nil
	case *sContinue:
		lbl := st.label
		return func(vm *VM, e *env) (ctrl, Value, error) {
			vm.ctrlLabel = lbl
			return ctrlContinue, Undefined, nil
		}, nil
	case *sLabeled:
		// Attach the label to the wrapped statement for loop/switch
		// consumption; a labeled plain statement just runs it.
		body, err := c.labeledStmt(st.label, st.body)
		if err != nil {
			return nil, err
		}
		return body, nil
	case *sReturn:
		var x exprFn
		var err error
		if st.x != nil {
			x, err = c.expr(st.x)
			if err != nil {
				return nil, err
			}
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			if err := vm.step(e, JReturn); err != nil {
				return ctrlNone, Undefined, err
			}
			if x == nil {
				return ctrlReturn, Undefined, nil
			}
			v, err := x(vm, e)
			if err != nil {
				return ctrlNone, Undefined, err
			}
			return ctrlReturn, v, nil
		}, nil
	case *sThrow:
		x, err := c.expr(st.x)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (ctrl, Value, error) {
			v, err := x(vm, e)
			if err != nil {
				return ctrlNone, Undefined, err
			}
			return ctrlNone, Undefined, &jsThrow{v: v}
		}, nil
	case *sTry:
		body, err := c.stmts(st.body)
		if err != nil {
			return nil, err
		}
		catch, err := c.stmts(st.catch)
		if err != nil {
			return nil, err
		}
		finally, err := c.stmts(st.finally)
		if err != nil {
			return nil, err
		}
		var paramD, paramS int
		hasParam := st.param != ""
		if hasParam {
			paramD, paramS = c.scope.resolve(st.param)
		}
		hasCatch := st.catch != nil
		return func(vm *VM, e *env) (ctrl, Value, error) {
			ct, v, err := runList(vm, e, body)
			if err != nil && hasCatch {
				if tv, ok := ThrownValue(err); ok {
					if hasParam {
						envAt(e, paramD).slots[paramS] = tv
					}
					ct, v, err = runList(vm, e, catch)
				}
			}
			if len(finally) > 0 {
				fct, fv, ferr := runList(vm, e, finally)
				if ferr != nil || fct != ctrlNone {
					return fct, fv, ferr
				}
			}
			return ct, v, err
		}, nil
	}
	return nil, fmt.Errorf("jsvm: unhandled statement %T", s)
}

// function compiles a function body into a compiledFunc.
func (c *jsCompiler) function(name string, params []string, body []jsStmt) (*compiledFunc, error) {
	cf := &compiledFunc{
		name:     name,
		nParams:  len(params),
		slotOf:   map[string]int{},
		thisSlot: -1,
		argsSlot: -1,
	}
	if cf.name == "" {
		cf.name = "(anonymous)"
	}
	c.vm.allFuncs = append(c.vm.allFuncs, cf)
	sc := &cscope{cf: cf, parent: c.scope}
	for _, p := range params {
		sc.define(p)
	}
	hoist(body, sc)
	if referencesThis(body) {
		cf.thisSlot = sc.define("this")
	}
	if referencesName(body, "arguments") {
		cf.argsSlot = sc.define("arguments")
	}
	sub := &jsCompiler{vm: c.vm, scope: sc, nodes: &cf.nNodes}
	code, err := sub.stmts(body)
	if err != nil {
		return nil, err
	}
	cf.code = code
	return cf, nil
}

func referencesThis(body []jsStmt) bool {
	// `this` is a keyword, not an identifier; scan via a tiny walker.
	found := false
	var vs func(s jsStmt)
	var ve func(e jsExpr)
	ve = func(e jsExpr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *eThis:
			found = true
		case *eArray:
			for _, el := range x.elems {
				ve(el)
			}
		case *eObject:
			for _, v := range x.vals {
				ve(v)
			}
		case *eUnary:
			ve(x.x)
		case *eBinary:
			ve(x.x)
			ve(x.y)
		case *eLogical:
			ve(x.x)
			ve(x.y)
		case *eAssign:
			ve(x.lhs)
			ve(x.rhs)
		case *eCond:
			ve(x.c)
			ve(x.t)
			ve(x.f)
		case *eCall:
			ve(x.callee)
			for _, a := range x.args {
				ve(a)
			}
		case *eNew:
			ve(x.callee)
			for _, a := range x.args {
				ve(a)
			}
		case *eMember:
			ve(x.obj)
			ve(x.computed)
		case *eSeq:
			ve(x.x)
			ve(x.y)
		}
	}
	vs = func(s jsStmt) {
		if found || s == nil {
			return
		}
		switch st := s.(type) {
		case *sVar:
			for _, in := range st.inits {
				ve(in)
			}
		case *sExpr:
			ve(st.x)
		case *sIf:
			ve(st.cond)
			vs(st.then)
			vs(st.els)
		case *sBlock:
			for _, b := range st.body {
				vs(b)
			}
		case *sFor:
			vs(st.init)
			ve(st.cond)
			ve(st.post)
			vs(st.body)
		case *sWhile:
			ve(st.cond)
			vs(st.body)
		case *sSwitch:
			ve(st.tag)
			for _, cs := range st.cases {
				ve(cs.val)
				for _, b := range cs.body {
					vs(b)
				}
			}
		case *sReturn:
			ve(st.x)
		case *sThrow:
			ve(st.x)
		case *sTry:
			for _, b := range st.body {
				vs(b)
			}
			for _, b := range st.catch {
				vs(b)
			}
			for _, b := range st.finally {
				vs(b)
			}
		}
	}
	for _, s := range body {
		vs(s)
	}
	return found
}

// envAt walks d parent links.
func envAt(e *env, d int) *env {
	for ; d > 0; d-- {
		e = e.parent
	}
	return e
}
