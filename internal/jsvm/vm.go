package jsvm

import (
	"errors"
	"fmt"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
)

// JSClass buckets evaluation steps for virtual-cycle accounting.
type JSClass uint8

// Cost classes.
const (
	JConst JSClass = iota
	JVarRead
	JVarWrite
	JArith
	JAdd
	JBitop
	JCmp
	JCall
	JCallNative
	JPropRead
	JPropWrite
	JElemRead
	JElemWrite
	JTARead
	JTAWrite
	JBranch
	JLoopBack
	JAlloc
	JStrOp
	JReturn
	NumJSClasses
)

var jsClassNames = [NumJSClasses]string{
	"const", "varread", "varwrite", "arith", "add", "bitop", "cmp",
	"call", "callnative", "propread", "propwrite", "elemread", "elemwrite",
	"taread", "tawrite", "branch", "loopback", "alloc", "strop", "return",
}

// String returns a short name for the class.
func (c JSClass) String() string {
	if int(c) < len(jsClassNames) {
		return jsClassNames[c]
	}
	return "unknown"
}

// JSCostTable holds per-class costs for one tier.
type JSCostTable [NumJSClasses]float64

// Scale returns a copy of the table with every cost multiplied by k.
func (t JSCostTable) Scale(k float64) JSCostTable {
	for i := range t {
		t[i] *= k
	}
	return t
}

// InterpCostTable is the reference interpreter-tier table: every operation
// pays boxed dynamic dispatch.
func InterpCostTable() JSCostTable {
	var t JSCostTable
	t[JConst] = 5
	t[JVarRead] = 6
	t[JVarWrite] = 7
	t[JArith] = 40
	t[JAdd] = 44
	t[JBitop] = 40
	t[JCmp] = 35
	t[JCall] = 180
	t[JCallNative] = 110
	t[JPropRead] = 95
	t[JPropWrite] = 105
	t[JElemRead] = 70
	t[JElemWrite] = 78
	t[JTARead] = 48
	t[JTAWrite] = 48
	t[JBranch] = 15
	t[JLoopBack] = 19
	t[JAlloc] = 190
	t[JStrOp] = 110
	t[JReturn] = 26
	return t
}

// JITCostTable is the reference optimizing-tier table: type-specialized
// code with inline caches.
func JITCostTable() JSCostTable {
	var t JSCostTable
	t[JConst] = 0.1
	t[JVarRead] = 0.12
	t[JVarWrite] = 0.15
	t[JArith] = 0.42
	t[JAdd] = 0.45
	t[JBitop] = 0.42
	t[JCmp] = 0.4
	t[JCall] = 3.5
	t[JCallNative] = 7
	t[JPropRead] = 2.2
	t[JPropWrite] = 2.6
	t[JElemRead] = 2.8
	t[JElemWrite] = 3.2
	t[JTARead] = 0.42
	t[JTAWrite] = 0.48
	t[JBranch] = 0.35
	t[JLoopBack] = 0.4
	t[JAlloc] = 13
	t[JStrOp] = 7
	t[JReturn] = 1
	return t
}

// Config parameterizes one engine instance.
type Config struct {
	InterpCost JSCostTable
	JITCost    JSCostTable
	// JITEnabled mirrors the paper's --no-opt experiments when false.
	JITEnabled bool
	// TierUpThreshold is the hotness (calls + loop iterations) before a
	// function is optimized.
	TierUpThreshold uint64
	// CompilePerNode is the one-time optimizing-compile charge per AST node.
	CompilePerNode float64
	// ParsePerByte is the source parse/bytecode charge at load (JS must be
	// parsed, unlike Wasm — §2.2.1).
	ParsePerByte float64
	// GCThreshold triggers collection after this many allocated bytes.
	GCThreshold uint64
	// GCMarkPerObject / GCSweepPerObject are collection charges.
	GCMarkPerObject  float64
	GCSweepPerObject float64
	StepLimit        uint64
	DepthLimit       int
	// EngineBaseline is the resident engine overhead added to the memory
	// metric (Chrome ≈ 880 KB, Firefox ≈ 510 KB in the paper's Tables 4/6).
	EngineBaseline uint64
	// Tracer receives typed execution events (tier-ups, GC cycles, call
	// enter/exit) stamped with the virtual-cycle clock; nil disables
	// tracing at the cost of one branch per hook.
	Tracer obsv.Tracer
	// Profile enables per-function virtual-cycle profiles (also implied by
	// a non-nil Tracer).
	Profile bool
	// Faults arms deterministic fault injection (JIT compile failure
	// pinning a function to the interpreter, heap-limit OOM). nil — the
	// default — is completely inert.
	Faults *faultinject.Plan
	// Instruments publishes live counters to a telemetry registry (JIT
	// compiles, deopts, GC cycles and freed bytes, steps/cycles flushed at
	// Run/CallFunction boundaries). nil (the default) is inert under the
	// same discipline as Tracer/Faults, and instruments never feed back
	// into the virtual clock.
	Instruments *telemetry.JSInstruments
}

// DefaultConfig returns a neutral engine configuration.
func DefaultConfig() Config {
	return Config{
		InterpCost:       InterpCostTable(),
		JITCost:          JITCostTable(),
		JITEnabled:       true,
		TierUpThreshold:  500,
		CompilePerNode:   220,
		ParsePerByte:     1.1,
		GCThreshold:      2 << 20,
		GCMarkPerObject:  8,
		GCSweepPerObject: 3,
		DepthLimit:       2000,
		EngineBaseline:   880 << 10,
	}
}

// OutputEvent is one print_* capture (same channel as the other VMs).
type OutputEvent struct {
	Kind string
	I    int64
	F    float64
	S    string
}

func (o OutputEvent) String() string {
	switch o.Kind {
	case "i":
		return fmt.Sprintf("i:%d", o.I)
	case "f":
		return fmt.Sprintf("f:%g", o.F)
	default:
		return "s:" + o.S
	}
}

// env is a function activation record with statically resolved slots.
type env struct {
	slots  []Value
	parent *env
	cost   *JSCostTable
	fn     *compiledFunc
	epoch  uint32
}

// VM is a JavaScript engine instance.
type VM struct {
	cfg    Config
	global *env
	gprog  *compiledFunc

	cycles float64
	steps  uint64
	depth  int

	objects      []*Object
	heapLive     uint64
	heapPeak     uint64
	external     uint64
	externalPeak uint64
	allocSince   uint64
	gcCount      int
	tierUps      int
	deopts       int
	epoch        uint32

	envStack []*env
	temps    []*Object

	Output []OutputEvent

	pendingGlobals []hostBinding
	rngState       uint64
	// arith counts executed arithmetic operators by Table 12 group:
	// ADD, MUL, DIV, REM, SHIFT, AND, OR.
	arith [7]uint64
	// ctrlLabel carries the label of an in-flight labeled break/continue.
	ctrlLabel string

	// NowFn backs performance.now(); the browser layer installs the page
	// clock. Defaults to virtual cycles / 1e6.
	NowFn func() float64

	hostFuncs map[string]*Object

	tracer    obsv.Tracer
	profiling bool
	// faults is the armed fault plan (nil = inert; see Config.Faults).
	faults *faultinject.Plan
	// inst is the live-telemetry bundle (nil = inert); lastFlushSteps and
	// lastFlushCycles snapshot the bulk counters at the previous flush so
	// each engine entry publishes only its delta.
	inst            *telemetry.JSInstruments
	lastFlushSteps  uint64
	lastFlushCycles float64
	// allFuncs registers every compiled function (in compile order) for
	// profile export.
	allFuncs []*compiledFunc
	// childCycles accumulates callee cycles for the frame being profiled.
	childCycles float64
}

// Execution errors.
var (
	ErrJSStepLimit = errors.New("jsvm: step limit exceeded")
	ErrJSDepth     = errors.New("jsvm: maximum call stack size exceeded")
	// ErrJSOOM reports an injected heap-limit allocation failure — the
	// analogue of a mobile tab OOM kill (PAPER.md §memory).
	ErrJSOOM = errors.New("jsvm: out of memory (heap limit)")
)

// oomPanic is the sentinel carried by an injected allocation failure:
// alloc sites cannot return errors, so the failure unwinds as a panic and
// the Run/CallFunction entry points convert it to ErrJSOOM.
type oomPanic struct{}

// jsThrow carries a thrown JavaScript value through Go error returns.
type jsThrow struct{ v Value }

func (t *jsThrow) Error() string { return "jsvm: uncaught " + t.v.ToString() }

// ThrownValue extracts the thrown value from an error, if it was a JS throw.
func ThrownValue(err error) (Value, bool) {
	var t *jsThrow
	if errors.As(err, &t) {
		return t.v, true
	}
	return Undefined, false
}

// New creates an engine with the host environment installed.
func New(cfg Config) *VM {
	if cfg.DepthLimit == 0 {
		cfg.DepthLimit = 2000
	}
	if cfg.GCThreshold == 0 {
		cfg.GCThreshold = 2 << 20
	}
	vm := &VM{cfg: cfg}
	vm.tracer = cfg.Tracer
	vm.profiling = cfg.Profile || cfg.Tracer != nil
	vm.NowFn = func() float64 { return vm.cycles / 1e6 }
	// Host bindings allocate before any recoverOOM-guarded entry point
	// exists; engine-boot allocations are not eligible for the js.heap-oom
	// injection point (and must not consume its sequence numbers).
	vm.installHost()
	vm.faults = cfg.Faults
	vm.inst = cfg.Instruments
	return vm
}

// Cycles returns accumulated virtual cycles.
func (vm *VM) Cycles() float64 { return vm.cycles }

// AddCycles charges extra cycles (context-switch modeling).
func (vm *VM) AddCycles(c float64) { vm.cycles += c }

// Steps returns the dynamic evaluation-step count.
func (vm *VM) Steps() uint64 { return vm.steps }

// Arithmetic-operator groups for ArithOps (the paper's Appendix D counts).
const (
	opADD = iota
	opMUL
	opDIV
	opREM
	opSHIFT
	opAND
	opOR
)

// ArithOps returns executed arithmetic-operation counts grouped as in the
// paper's Table 12 (ADD includes subtraction; OR includes XOR).
func (vm *VM) ArithOps() map[string]uint64 {
	return map[string]uint64{
		"ADD": vm.arith[opADD], "MUL": vm.arith[opMUL], "DIV": vm.arith[opDIV],
		"REM": vm.arith[opREM], "SHIFT": vm.arith[opSHIFT],
		"AND": vm.arith[opAND], "OR": vm.arith[opOR],
	}
}

// GCCount returns how many collections ran.
func (vm *VM) GCCount() int { return vm.gcCount }

// TierUps returns how many function code objects were promoted to the
// optimizing JIT tier (0 whenever JITEnabled is false).
func (vm *VM) TierUps() int { return vm.tierUps }

// Deopts returns how many code objects were pinned back to the
// interpreter tier for good (today only injected JIT-compile failures
// cause this permanent deopt).
func (vm *VM) Deopts() int { return vm.deopts }

// HeapBytes returns the current JS-heap bytes (excluding ArrayBuffer
// backing stores) plus the engine baseline.
func (vm *VM) HeapBytes() uint64 { return vm.cfg.EngineBaseline + vm.heapLive }

// PeakHeapBytes returns the peak JS-heap metric.
func (vm *VM) PeakHeapBytes() uint64 { return vm.cfg.EngineBaseline + vm.heapPeak }

// ExternalBytes returns current ArrayBuffer backing-store bytes.
func (vm *VM) ExternalBytes() uint64 { return vm.external }

// PeakExternalBytes returns the backing-store high-water mark.
func (vm *VM) PeakExternalBytes() uint64 { return vm.externalPeak }

// alloc registers a new object with the GC.
func (vm *VM) alloc(o *Object) *Object {
	sz := o.heapSize()
	if vm.faults != nil && vm.faults.HeapOOM("alloc", vm.heapLive+vm.external+sz) {
		vm.emitFault(faultinject.JSHeapOOM)
		panic(oomPanic{})
	}
	vm.objects = append(vm.objects, o)
	vm.heapLive += sz
	if vm.heapLive > vm.heapPeak {
		vm.heapPeak = vm.heapLive
	}
	vm.allocSince += sz
	vm.temps = append(vm.temps, o)
	return o
}

// allocBuffer attaches external backing-store bytes to an ArrayBuffer.
func (vm *VM) allocBuffer(o *Object, n int) {
	if vm.faults != nil && vm.faults.HeapOOM("buffer", vm.heapLive+vm.external+uint64(n)) {
		vm.emitFault(faultinject.JSHeapOOM)
		panic(oomPanic{})
	}
	o.Buf = make([]byte, n)
	vm.external += uint64(n)
	if vm.external > vm.externalPeak {
		vm.externalPeak = vm.external
	}
}

// NewPlainObject allocates an empty object.
func (vm *VM) NewPlainObject() *Object {
	return vm.alloc(&Object{Kind: ObjPlain, Props: map[string]Value{}})
}

// NewArray allocates a dense array.
func (vm *VM) NewArray(elems []Value) *Object {
	return vm.alloc(&Object{Kind: ObjArray, Elems: elems})
}

// NewNative wraps a Go function as a callable object.
func (vm *VM) NewNative(name string, fn func(vm *VM, this Value, args []Value) (Value, error)) *Object {
	return vm.alloc(&Object{Kind: ObjFunction, Fn: &FuncObj{Name: name, Native: fn}})
}

// NewTypedArray allocates a typed array over a fresh buffer.
func (vm *VM) NewTypedArray(kind TAKind, length int) *Object {
	buf := vm.alloc(&Object{Kind: ObjArrayBuffer})
	vm.allocBuffer(buf, length*kind.ElemSize())
	ta := vm.alloc(&Object{Kind: ObjTypedArray})
	ta.TA.Buf = buf
	ta.TA.Kind = kind
	ta.TA.Len = length
	return ta
}

// Global returns a global binding (for tests and the harness).
func (vm *VM) Global(name string) (Value, bool) {
	if vm.gprog == nil {
		if o, ok := vm.hostFuncs[name]; ok {
			return ObjVal(o), true
		}
		return Undefined, false
	}
	idx, ok := vm.gprog.slotOf[name]
	if !ok {
		return Undefined, false
	}
	return vm.global.slots[idx], true
}

// SetGlobal installs a host binding visible to scripts.
func (vm *VM) SetGlobal(name string, v Value) {
	vm.pendingGlobals = append(vm.pendingGlobals, hostBinding{name, v})
}

type hostBinding struct {
	name string
	v    Value
}

// Run parses and executes a program. It may be called multiple times; each
// call compiles a fresh top-level scope that shares the host bindings.
func (vm *VM) Run(src string) (_ Value, err error) {
	defer vm.recoverOOM(&err)
	defer vm.flushInstruments()
	vm.cycles += vm.cfg.ParsePerByte * float64(len(src))
	body, err := jsParse(src)
	if err != nil {
		return Undefined, err
	}
	cf, err := compileProgram(vm, body)
	if err != nil {
		return Undefined, err
	}
	genv := &env{
		slots: make([]Value, cf.nSlots),
		cost:  &vm.cfg.InterpCost,
		fn:    cf,
	}
	// Install host bindings into their slots.
	for name, idx := range cf.slotOf {
		if o, ok := vm.hostFuncs[name]; ok {
			genv.slots[idx] = ObjVal(o)
		}
		for _, hb := range vm.pendingGlobals {
			if hb.name == name {
				genv.slots[idx] = hb.v
			}
		}
	}
	vm.gprog = cf
	vm.global = genv
	vm.envStack = append(vm.envStack, genv)
	defer func() { vm.envStack = vm.envStack[:len(vm.envStack)-1] }()
	if vm.profiling {
		defer vm.profEnter(cf)()
	}
	var result Value
	for _, s := range cf.code {
		ctrl, v, err := s(vm, genv)
		if err != nil {
			return Undefined, err
		}
		vm.temps = vm.temps[:0]
		if ctrl == ctrlReturn {
			return v, nil
		}
		result = v
	}
	return result, nil
}

// profEnter opens one profiled activation of cf: it records the call,
// emits the CallEnter event, and returns the closer that finalizes
// self/total cycle attribution and emits CallExit.
func (vm *VM) profEnter(cf *compiledFunc) func() {
	start := vm.cycles
	savedChild := vm.childCycles
	vm.childCycles = 0
	cf.calls++
	if vm.tracer != nil {
		vm.tracer.Emit(obsv.Event{Kind: obsv.KindCallEnter, TS: start,
			Name: cf.name, Track: "js"})
	}
	return func() {
		total := vm.cycles - start
		cf.totalCycles += total
		cf.selfCycles += total - vm.childCycles
		vm.childCycles = savedChild + total
		if vm.tracer != nil {
			vm.tracer.Emit(obsv.Event{Kind: obsv.KindCallExit, TS: vm.cycles,
				Name: cf.name, Track: "js"})
		}
	}
}

// Profile returns the per-function virtual-cycle profiles collected while
// profiling was enabled (Config.Profile or a non-nil Tracer); nil
// otherwise. Functions that never ran are omitted; order is compile order.
func (vm *VM) Profile() []obsv.FuncProfile {
	if !vm.profiling {
		return nil
	}
	out := make([]obsv.FuncProfile, 0, len(vm.allFuncs))
	for _, cf := range vm.allFuncs {
		if cf.calls == 0 {
			continue
		}
		fp := obsv.FuncProfile{
			Name:        cf.name,
			Track:       "js",
			Calls:       cf.calls,
			SelfCycles:  cf.selfCycles,
			TotalCycles: cf.totalCycles,
		}
		for c := JSClass(0); c < NumJSClasses; c++ {
			if n := cf.classCounts[c]; n != 0 {
				fp.Classes = append(fp.Classes, obsv.ClassCount{Class: c.String(), Count: n})
			}
		}
		out = append(out, fp)
	}
	return out
}

// CallFunction invokes a JS function value with arguments.
func (vm *VM) CallFunction(fn Value, args []Value) (_ Value, err error) {
	if fn.Kind != KindObject || fn.Obj.Kind != ObjFunction {
		return Undefined, fmt.Errorf("jsvm: not a function: %s", fn.ToString())
	}
	defer vm.recoverOOM(&err)
	defer vm.flushInstruments()
	return vm.callFuncObj(fn.Obj, Undefined, args)
}

// recoverOOM converts an injected-OOM panic unwinding through an engine
// entry point into ErrJSOOM; every other panic is re-raised.
func (vm *VM) recoverOOM(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(oomPanic); ok {
			*err = ErrJSOOM
			return
		}
		panic(r)
	}
}

// noteDeopt counts one permanent deopt (engine stat + live instrument).
func (vm *VM) noteDeopt() {
	vm.deopts++
	if vm.inst != nil {
		vm.inst.Deopts.Inc()
	}
}

// flushInstruments publishes the bulk counters accumulated since the last
// flush (steps, cycles, peak heap) to the instrument bundle. Called once
// per engine entry (Run/CallFunction) so evaluation itself never carries
// telemetry writes; rare events (tier-up, deopt, GC) publish at their own
// hook sites.
func (vm *VM) flushInstruments() {
	if vm.inst == nil {
		return
	}
	vm.inst.Runs.Inc()
	vm.inst.Steps.Add(float64(vm.steps - vm.lastFlushSteps))
	vm.inst.Cycles.Add(vm.cycles - vm.lastFlushCycles)
	vm.inst.PeakHeap.SetMax(float64(vm.PeakHeapBytes()))
	vm.lastFlushSteps = vm.steps
	vm.lastFlushCycles = vm.cycles
}

// emitFault records an injected-fault trace event at the current clock.
func (vm *VM) emitFault(pt faultinject.Point) {
	if vm.tracer != nil {
		vm.tracer.Emit(obsv.Event{Kind: obsv.KindFault, TS: vm.cycles,
			Name: string(pt), Track: "js"})
	}
}

func (vm *VM) callFuncObj(o *Object, this Value, args []Value) (Value, error) {
	f := o.Fn
	if f.Native != nil {
		return f.Native(vm, this, args)
	}
	cf := f.Code
	vm.depth++
	if vm.depth > vm.cfg.DepthLimit {
		vm.depth--
		return Undefined, ErrJSDepth
	}
	defer func() { vm.depth-- }()

	// Tiering: hotness per function code object.
	cf.hot++
	costs := vm.tierCosts(cf)

	if vm.profiling {
		defer vm.profEnter(cf)()
	}

	fenv := &env{
		slots:  make([]Value, cf.nSlots),
		parent: f.Env,
		cost:   costs,
		fn:     cf,
	}
	for i := 0; i < cf.nParams && i < len(args); i++ {
		fenv.slots[i] = args[i]
	}
	if cf.thisSlot >= 0 {
		fenv.slots[cf.thisSlot] = this
	}
	if cf.argsSlot >= 0 {
		fenv.slots[cf.argsSlot] = ObjVal(vm.NewArray(append([]Value(nil), args...)))
	}
	vm.envStack = append(vm.envStack, fenv)
	defer func() { vm.envStack = vm.envStack[:len(vm.envStack)-1] }()

	tempBase := len(vm.temps)
	defer func() { vm.temps = vm.temps[:tempBase] }()

	for _, s := range cf.code {
		ctrl, v, err := s(vm, fenv)
		if err != nil {
			return Undefined, err
		}
		if ctrl == ctrlReturn {
			return v, nil
		}
	}
	return Undefined, nil
}

// tierCosts resolves the active tier table, applying tier-up policy.
func (vm *VM) tierCosts(cf *compiledFunc) *JSCostTable {
	if cf.tieredUp {
		return &vm.cfg.JITCost
	}
	if vm.cfg.JITEnabled && !cf.jitBlocked && cf.hot >= vm.cfg.TierUpThreshold {
		if vm.faults != nil && vm.faults.Fire(faultinject.JSJITCompile, cf.name) {
			// Injected JIT compile failure: pin the code object to the
			// interpreter tier for the rest of its life (a permanent deopt).
			cf.jitBlocked = true
			vm.noteDeopt()
			vm.emitFault(faultinject.JSJITCompile)
			return &vm.cfg.InterpCost
		}
		vm.tierUp(cf)
		return &vm.cfg.JITCost
	}
	return &vm.cfg.InterpCost
}

// tierUp promotes cf to the optimizing tier, charging the compile and
// emitting the trace event.
func (vm *VM) tierUp(cf *compiledFunc) {
	cf.tieredUp = true
	vm.tierUps++
	if vm.inst != nil {
		vm.inst.JITCompiles.Inc()
	}
	vm.cycles += vm.cfg.CompilePerNode * float64(cf.nNodes)
	if vm.tracer != nil {
		vm.tracer.Emit(obsv.Event{Kind: obsv.KindTierUp, TS: vm.cycles,
			Name: cf.name, Track: "js", A: float64(cf.nNodes)})
	}
}

// bumpLoop is called on loop back-edges: contributes hotness and performs
// on-stack replacement of the cost table.
func (vm *VM) bumpLoop(e *env) {
	cf := e.fn
	cf.hot++
	if !cf.tieredUp && vm.cfg.JITEnabled && !cf.jitBlocked && cf.hot >= vm.cfg.TierUpThreshold {
		if vm.faults != nil && vm.faults.Fire(faultinject.JSJITCompile, cf.name) {
			cf.jitBlocked = true
			vm.noteDeopt()
			vm.emitFault(faultinject.JSJITCompile)
		} else {
			vm.tierUp(cf)
		}
	}
	if cf.tieredUp {
		e.cost = &vm.cfg.JITCost
	}
}

// step charges one evaluation step and enforces the step limit.
func (vm *VM) step(e *env, class JSClass) error {
	vm.cycles += e.cost[class]
	vm.steps++
	if vm.profiling {
		e.fn.classCounts[class]++
	}
	if vm.cfg.StepLimit != 0 && vm.steps > vm.cfg.StepLimit {
		return ErrJSStepLimit
	}
	return nil
}

// maybeGC runs a collection at a statement-boundary safepoint.
func (vm *VM) maybeGC() {
	if vm.allocSince >= vm.cfg.GCThreshold {
		vm.gc()
	}
}
