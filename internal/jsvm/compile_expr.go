package jsvm

import (
	"fmt"
	"math"
)

func (c *jsCompiler) exprList(list []jsExpr) ([]exprFn, error) {
	out := make([]exprFn, len(list))
	for i, e := range list {
		f, err := c.expr(e)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func (c *jsCompiler) expr(e jsExpr) (exprFn, error) {
	c.node()
	switch x := e.(type) {
	case *eNum:
		v := Num(x.v)
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JConst); err != nil {
				return Undefined, err
			}
			return v, nil
		}, nil
	case *eStr:
		v := Str(x.v)
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JConst); err != nil {
				return Undefined, err
			}
			return v, nil
		}, nil
	case *eBool:
		v := Bool(x.v)
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JConst); err != nil {
				return Undefined, err
			}
			return v, nil
		}, nil
	case *eNull:
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JConst); err != nil {
				return Undefined, err
			}
			return Null, nil
		}, nil
	case *eUndefined:
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JConst); err != nil {
				return Undefined, err
			}
			return Undefined, nil
		}, nil
	case *eThis:
		slot := c.scope.cf.thisSlot
		if slot < 0 {
			return func(vm *VM, e *env) (Value, error) { return Undefined, nil }, nil
		}
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JVarRead); err != nil {
				return Undefined, err
			}
			return e.slots[slot], nil
		}, nil
	case *eIdent:
		d, slot := c.scope.resolve(x.name)
		if d == 0 {
			return func(vm *VM, e *env) (Value, error) {
				if err := vm.step(e, JVarRead); err != nil {
					return Undefined, err
				}
				return e.slots[slot], nil
			}, nil
		}
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JVarRead); err != nil {
				return Undefined, err
			}
			return envAt(e, d).slots[slot], nil
		}, nil
	case *eArray:
		elems, err := c.exprList(x.elems)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JAlloc); err != nil {
				return Undefined, err
			}
			vals := make([]Value, len(elems))
			for i, ef := range elems {
				v, err := ef(vm, e)
				if err != nil {
					return Undefined, err
				}
				vals[i] = v
			}
			return ObjVal(vm.NewArray(vals)), nil
		}, nil
	case *eObject:
		vals, err := c.exprList(x.vals)
		if err != nil {
			return nil, err
		}
		keys := x.keys
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JAlloc); err != nil {
				return Undefined, err
			}
			o := vm.NewPlainObject()
			for i, vf := range vals {
				v, err := vf(vm, e)
				if err != nil {
					return Undefined, err
				}
				o.Props[keys[i]] = v
			}
			return ObjVal(o), nil
		}, nil
	case *eFunc:
		cf, err := c.function(x.name, x.params, x.body)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JAlloc); err != nil {
				return Undefined, err
			}
			obj := vm.alloc(&Object{Kind: ObjFunction, Fn: &FuncObj{Name: cf.name, Code: cf, Env: e}})
			return ObjVal(obj), nil
		}, nil
	case *eUnary:
		return c.unary(x)
	case *eBinary:
		return c.binary(x)
	case *eLogical:
		l, err := c.expr(x.x)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(x.y)
		if err != nil {
			return nil, err
		}
		and := x.op == "&&"
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JBranch); err != nil {
				return Undefined, err
			}
			lv, err := l(vm, e)
			if err != nil {
				return Undefined, err
			}
			if and {
				if !lv.IsTruthy() {
					return lv, nil
				}
				return r(vm, e)
			}
			if lv.IsTruthy() {
				return lv, nil
			}
			return r(vm, e)
		}, nil
	case *eAssign:
		return c.assign(x)
	case *eCond:
		cc, err := c.expr(x.c)
		if err != nil {
			return nil, err
		}
		tt, err := c.expr(x.t)
		if err != nil {
			return nil, err
		}
		ff, err := c.expr(x.f)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JBranch); err != nil {
				return Undefined, err
			}
			cv, err := cc(vm, e)
			if err != nil {
				return Undefined, err
			}
			if cv.IsTruthy() {
				return tt(vm, e)
			}
			return ff(vm, e)
		}, nil
	case *eCall:
		return c.call(x)
	case *eNew:
		return c.newExpr(x)
	case *eMember:
		return c.member(x)
	case *eSeq:
		l, err := c.expr(x.x)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(x.y)
		if err != nil {
			return nil, err
		}
		return func(vm *VM, e *env) (Value, error) {
			if _, err := l(vm, e); err != nil {
				return Undefined, err
			}
			return r(vm, e)
		}, nil
	}
	return nil, fmt.Errorf("jsvm: unhandled expression %T", e)
}

func (c *jsCompiler) unary(x *eUnary) (exprFn, error) {
	if x.op == "++" || x.op == "--" {
		return c.incDec(x)
	}
	xf, err := c.expr(x.x)
	if err != nil {
		return nil, err
	}
	op := x.op
	return func(vm *VM, e *env) (Value, error) {
		v, err := xf(vm, e)
		if err != nil {
			return Undefined, err
		}
		switch op {
		case "-":
			if err := vm.step(e, JArith); err != nil {
				return Undefined, err
			}
			return Num(-v.ToNumber()), nil
		case "+":
			if err := vm.step(e, JArith); err != nil {
				return Undefined, err
			}
			return Num(v.ToNumber()), nil
		case "!":
			if err := vm.step(e, JCmp); err != nil {
				return Undefined, err
			}
			return Bool(!v.IsTruthy()), nil
		case "~":
			if err := vm.step(e, JBitop); err != nil {
				return Undefined, err
			}
			return Num(float64(^v.ToInt32())), nil
		case "typeof":
			if err := vm.step(e, JCmp); err != nil {
				return Undefined, err
			}
			return Str(typeOf(v)), nil
		}
		return Undefined, fmt.Errorf("jsvm: unhandled unary %s", op)
	}, nil
}

func typeOf(v Value) string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.Obj.Kind == ObjFunction {
			return "function"
		}
		return "object"
	}
}

// incDec compiles ++/-- via read-modify-write of a reference.
func (c *jsCompiler) incDec(x *eUnary) (exprFn, error) {
	read, write, err := c.reference(x.x)
	if err != nil {
		return nil, err
	}
	delta := 1.0
	if x.op == "--" {
		delta = -1
	}
	postfix := x.postfix
	return func(vm *VM, e *env) (Value, error) {
		if err := vm.step(e, JArith); err != nil {
			return Undefined, err
		}
		old, err := read(vm, e)
		if err != nil {
			return Undefined, err
		}
		n := old.ToNumber()
		if err := write(vm, e, Num(n+delta)); err != nil {
			return Undefined, err
		}
		if postfix {
			return Num(n), nil
		}
		return Num(n + delta), nil
	}, nil
}

// reference compiles an assignable expression into read and write closures.
func (c *jsCompiler) reference(e jsExpr) (exprFn, refFn, error) {
	switch x := e.(type) {
	case *eIdent:
		d, slot := c.scope.resolve(x.name)
		read := func(vm *VM, e *env) (Value, error) {
			if err := vm.step(e, JVarRead); err != nil {
				return Undefined, err
			}
			return envAt(e, d).slots[slot], nil
		}
		write := func(vm *VM, e *env, v Value) error {
			if err := vm.step(e, JVarWrite); err != nil {
				return err
			}
			envAt(e, d).slots[slot] = v
			return nil
		}
		return read, write, nil
	case *eMember:
		objF, err := c.expr(x.obj)
		if err != nil {
			return nil, nil, err
		}
		if x.computed == nil {
			name := x.name
			read := func(vm *VM, e *env) (Value, error) {
				ov, err := objF(vm, e)
				if err != nil {
					return Undefined, err
				}
				return vm.getMember(e, ov, name)
			}
			write := func(vm *VM, e *env, v Value) error {
				ov, err := objF(vm, e)
				if err != nil {
					return err
				}
				return vm.setMember(e, ov, name, v)
			}
			return read, write, nil
		}
		idxF, err := c.expr(x.computed)
		if err != nil {
			return nil, nil, err
		}
		read := func(vm *VM, e *env) (Value, error) {
			ov, err := objF(vm, e)
			if err != nil {
				return Undefined, err
			}
			iv, err := idxF(vm, e)
			if err != nil {
				return Undefined, err
			}
			return vm.getElement(e, ov, iv)
		}
		write := func(vm *VM, e *env, v Value) error {
			ov, err := objF(vm, e)
			if err != nil {
				return err
			}
			iv, err := idxF(vm, e)
			if err != nil {
				return err
			}
			return vm.setElement(e, ov, iv, v)
		}
		return read, write, nil
	}
	return nil, nil, fmt.Errorf("jsvm: invalid assignment target %T", e)
}

func (c *jsCompiler) assign(x *eAssign) (exprFn, error) {
	read, write, err := c.reference(x.lhs)
	if err != nil {
		return nil, err
	}
	rhs, err := c.expr(x.rhs)
	if err != nil {
		return nil, err
	}
	if x.op == "=" {
		return func(vm *VM, e *env) (Value, error) {
			v, err := rhs(vm, e)
			if err != nil {
				return Undefined, err
			}
			if err := write(vm, e, v); err != nil {
				return Undefined, err
			}
			return v, nil
		}, nil
	}
	op := x.op[:len(x.op)-1] // strip '='
	return func(vm *VM, e *env) (Value, error) {
		old, err := read(vm, e)
		if err != nil {
			return Undefined, err
		}
		rv, err := rhs(vm, e)
		if err != nil {
			return Undefined, err
		}
		nv, err := vm.binOp(e, op, old, rv)
		if err != nil {
			return Undefined, err
		}
		if err := write(vm, e, nv); err != nil {
			return Undefined, err
		}
		return nv, nil
	}, nil
}

func (c *jsCompiler) binary(x *eBinary) (exprFn, error) {
	// asm.js-style coercion idioms (`expr|0`, `expr>>>0`) are type
	// annotations, not arithmetic: optimizing engines erase them entirely
	// and even the interpreter treats them as cheap tag checks.
	if z, ok := x.y.(*eNum); ok && z.v == 0 && (x.op == "|" || x.op == ">>>") {
		inner, err := c.expr(x.x)
		if err != nil {
			return nil, err
		}
		unsigned := x.op == ">>>"
		return func(vm *VM, e *env) (Value, error) {
			v, err := inner(vm, e)
			if err != nil {
				return Undefined, err
			}
			if err := vm.step(e, JConst); err != nil {
				return Undefined, err
			}
			if unsigned {
				return Num(float64(toUint32(v.ToNumber()))), nil
			}
			return Num(float64(v.ToInt32())), nil
		}, nil
	}
	l, err := c.expr(x.x)
	if err != nil {
		return nil, err
	}
	r, err := c.expr(x.y)
	if err != nil {
		return nil, err
	}
	op := x.op
	return func(vm *VM, e *env) (Value, error) {
		lv, err := l(vm, e)
		if err != nil {
			return Undefined, err
		}
		rv, err := r(vm, e)
		if err != nil {
			return Undefined, err
		}
		return vm.binOp(e, op, lv, rv)
	}, nil
}

// binOp evaluates a binary operator with coercions and cost accounting.
func (vm *VM) binOp(e *env, op string, a, b Value) (Value, error) {
	switch op {
	case "+":
		if err := vm.step(e, JAdd); err != nil {
			return Undefined, err
		}
		vm.arith[opADD]++
		if a.Kind == KindString || b.Kind == KindString {
			if err := vm.step(e, JStrOp); err != nil {
				return Undefined, err
			}
			return Str(a.ToString() + b.ToString()), nil
		}
		return Num(a.ToNumber() + b.ToNumber()), nil
	case "-":
		if err := vm.step(e, JArith); err != nil {
			return Undefined, err
		}
		vm.arith[opADD]++
		return Num(a.ToNumber() - b.ToNumber()), nil
	case "*":
		if err := vm.step(e, JArith); err != nil {
			return Undefined, err
		}
		vm.arith[opMUL]++
		return Num(a.ToNumber() * b.ToNumber()), nil
	case "/":
		if err := vm.step(e, JArith); err != nil {
			return Undefined, err
		}
		vm.arith[opDIV]++
		return Num(a.ToNumber() / b.ToNumber()), nil
	case "%":
		if err := vm.step(e, JArith); err != nil {
			return Undefined, err
		}
		vm.arith[opREM]++
		return Num(math.Mod(a.ToNumber(), b.ToNumber())), nil
	case "&":
		if err := vm.step(e, JBitop); err != nil {
			return Undefined, err
		}
		vm.arith[opAND]++
		return Num(float64(a.ToInt32() & b.ToInt32())), nil
	case "|":
		if err := vm.step(e, JBitop); err != nil {
			return Undefined, err
		}
		vm.arith[opOR]++
		return Num(float64(a.ToInt32() | b.ToInt32())), nil
	case "^":
		if err := vm.step(e, JBitop); err != nil {
			return Undefined, err
		}
		vm.arith[opOR]++
		return Num(float64(a.ToInt32() ^ b.ToInt32())), nil
	case "<<":
		if err := vm.step(e, JBitop); err != nil {
			return Undefined, err
		}
		vm.arith[opSHIFT]++
		return Num(float64(a.ToInt32() << (uint32(b.ToInt32()) & 31))), nil
	case ">>":
		if err := vm.step(e, JBitop); err != nil {
			return Undefined, err
		}
		vm.arith[opSHIFT]++
		return Num(float64(a.ToInt32() >> (uint32(b.ToInt32()) & 31))), nil
	case ">>>":
		if err := vm.step(e, JBitop); err != nil {
			return Undefined, err
		}
		vm.arith[opSHIFT]++
		return Num(float64(toUint32(a.ToNumber()) >> (uint32(b.ToInt32()) & 31))), nil
	case "==":
		if err := vm.step(e, JCmp); err != nil {
			return Undefined, err
		}
		return Bool(LooseEquals(a, b)), nil
	case "!=":
		if err := vm.step(e, JCmp); err != nil {
			return Undefined, err
		}
		return Bool(!LooseEquals(a, b)), nil
	case "===":
		if err := vm.step(e, JCmp); err != nil {
			return Undefined, err
		}
		return Bool(StrictEquals(a, b)), nil
	case "!==":
		if err := vm.step(e, JCmp); err != nil {
			return Undefined, err
		}
		return Bool(!StrictEquals(a, b)), nil
	case "<", ">", "<=", ">=":
		if err := vm.step(e, JCmp); err != nil {
			return Undefined, err
		}
		if a.Kind == KindString && b.Kind == KindString {
			switch op {
			case "<":
				return Bool(a.Str < b.Str), nil
			case ">":
				return Bool(a.Str > b.Str), nil
			case "<=":
				return Bool(a.Str <= b.Str), nil
			default:
				return Bool(a.Str >= b.Str), nil
			}
		}
		an, bn := a.ToNumber(), b.ToNumber()
		switch op {
		case "<":
			return Bool(an < bn), nil
		case ">":
			return Bool(an > bn), nil
		case "<=":
			return Bool(an <= bn), nil
		default:
			return Bool(an >= bn), nil
		}
	}
	return Undefined, fmt.Errorf("jsvm: unhandled operator %q", op)
}

func (c *jsCompiler) member(x *eMember) (exprFn, error) {
	objF, err := c.expr(x.obj)
	if err != nil {
		return nil, err
	}
	if x.computed == nil {
		name := x.name
		return func(vm *VM, e *env) (Value, error) {
			ov, err := objF(vm, e)
			if err != nil {
				return Undefined, err
			}
			return vm.getMember(e, ov, name)
		}, nil
	}
	idxF, err := c.expr(x.computed)
	if err != nil {
		return nil, err
	}
	return func(vm *VM, e *env) (Value, error) {
		ov, err := objF(vm, e)
		if err != nil {
			return Undefined, err
		}
		iv, err := idxF(vm, e)
		if err != nil {
			return Undefined, err
		}
		return vm.getElement(e, ov, iv)
	}, nil
}

func (c *jsCompiler) call(x *eCall) (exprFn, error) {
	args, err := c.exprList(x.args)
	if err != nil {
		return nil, err
	}
	evalArgs := func(vm *VM, e *env) ([]Value, error) {
		vals := make([]Value, len(args))
		for i, af := range args {
			v, err := af(vm, e)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	// Method call: callee is a member expression — `this` is the object.
	if m, ok := x.callee.(*eMember); ok {
		objF, err := c.expr(m.obj)
		if err != nil {
			return nil, err
		}
		var idxF exprFn
		if m.computed != nil {
			idxF, err = c.expr(m.computed)
			if err != nil {
				return nil, err
			}
		}
		name := m.name
		return func(vm *VM, e *env) (Value, error) {
			ov, err := objF(vm, e)
			if err != nil {
				return Undefined, err
			}
			n := name
			if idxF != nil {
				iv, err := idxF(vm, e)
				if err != nil {
					return Undefined, err
				}
				n = iv.ToString()
			}
			argv, err := evalArgs(vm, e)
			if err != nil {
				return Undefined, err
			}
			return vm.invokeMethod(e, ov, n, argv)
		}, nil
	}
	calleeF, err := c.expr(x.callee)
	if err != nil {
		return nil, err
	}
	return func(vm *VM, e *env) (Value, error) {
		cv, err := calleeF(vm, e)
		if err != nil {
			return Undefined, err
		}
		argv, err := evalArgs(vm, e)
		if err != nil {
			return Undefined, err
		}
		if cv.Kind != KindObject || cv.Obj.Kind != ObjFunction {
			return Undefined, &jsThrow{v: Str("TypeError: not a function")}
		}
		cls := JCall
		if cv.Obj.Fn.Native != nil {
			cls = JCallNative
		}
		if err := vm.step(e, cls); err != nil {
			return Undefined, err
		}
		return vm.callFuncObj(cv.Obj, Undefined, argv)
	}, nil
}

func (c *jsCompiler) newExpr(x *eNew) (exprFn, error) {
	calleeF, err := c.expr(x.callee)
	if err != nil {
		return nil, err
	}
	args, err := c.exprList(x.args)
	if err != nil {
		return nil, err
	}
	return func(vm *VM, e *env) (Value, error) {
		cv, err := calleeF(vm, e)
		if err != nil {
			return Undefined, err
		}
		argv := make([]Value, len(args))
		for i, af := range args {
			v, err := af(vm, e)
			if err != nil {
				return Undefined, err
			}
			argv[i] = v
		}
		if cv.Kind != KindObject || cv.Obj.Kind != ObjFunction {
			return Undefined, &jsThrow{v: Str("TypeError: not a constructor")}
		}
		if err := vm.step(e, JAlloc); err != nil {
			return Undefined, err
		}
		fn := cv.Obj.Fn
		if fn.Native != nil {
			// Native constructors (typed arrays, ArrayBuffer) return the
			// instance directly.
			return fn.Native(vm, Undefined, argv)
		}
		this := vm.NewPlainObject()
		ret, err := vm.callFuncObj(cv.Obj, ObjVal(this), argv)
		if err != nil {
			return Undefined, err
		}
		if ret.Kind == KindObject {
			return ret, nil
		}
		return ObjVal(this), nil
	}, nil
}
