package jsvm

// JavaScript AST. The parser produces these; the compiler in compile.go
// turns them into closure trees with statically resolved variable slots.

type jsStmt interface{ jsStmtNode() }

type jsExpr interface{ jsExprNode() }

// Statements.

type sVar struct {
	names []string
	inits []jsExpr // nil entries allowed
}

type sFunc struct {
	name   string
	params []string
	body   []jsStmt
}

type sExpr struct{ x jsExpr }

type sIf struct {
	cond      jsExpr
	then, els jsStmt
}

type sBlock struct{ body []jsStmt }

type sFor struct {
	init       jsStmt // sVar or sExpr or nil
	cond, post jsExpr // may be nil
	body       jsStmt
}

type sWhile struct {
	cond jsExpr
	body jsStmt
	post bool // do-while
}

type sSwitch struct {
	tag      jsExpr
	cases    []jsSwitchCase
	defaultI int // index into cases order, -1 if none
}

type jsSwitchCase struct {
	val  jsExpr // nil for default
	body []jsStmt
}

type sBreak struct{ label string }
type sContinue struct{ label string }

// sLabeled wraps a statement with a label (targets for labeled break /
// continue, which the Cheerp-style JS backend emits for loop lowering).
type sLabeled struct {
	label string
	body  jsStmt
}
type sReturn struct{ x jsExpr } // may be nil
type sThrow struct{ x jsExpr }
type sTry struct {
	body    []jsStmt
	param   string
	catch   []jsStmt
	finally []jsStmt
}

func (*sVar) jsStmtNode()      {}
func (*sFunc) jsStmtNode()     {}
func (*sExpr) jsStmtNode()     {}
func (*sIf) jsStmtNode()       {}
func (*sBlock) jsStmtNode()    {}
func (*sFor) jsStmtNode()      {}
func (*sWhile) jsStmtNode()    {}
func (*sSwitch) jsStmtNode()   {}
func (*sBreak) jsStmtNode()    {}
func (*sLabeled) jsStmtNode()  {}
func (*sContinue) jsStmtNode() {}
func (*sReturn) jsStmtNode()   {}
func (*sThrow) jsStmtNode()    {}
func (*sTry) jsStmtNode()      {}

// Expressions.

type eNum struct{ v float64 }
type eStr struct{ v string }
type eBool struct{ v bool }
type eNull struct{}
type eUndefined struct{}
type eThis struct{}

type eIdent struct{ name string }

type eArray struct{ elems []jsExpr }

type eObject struct {
	keys []string
	vals []jsExpr
}

type eFunc struct {
	name   string
	params []string
	body   []jsStmt
}

type eUnary struct {
	op      string
	x       jsExpr
	postfix bool
}

type eBinary struct {
	op   string
	x, y jsExpr
}

type eLogical struct {
	op   string // && or ||
	x, y jsExpr
}

type eAssign struct {
	op  string
	lhs jsExpr
	rhs jsExpr
}

type eCond struct{ c, t, f jsExpr }

type eCall struct {
	callee jsExpr
	args   []jsExpr
}

type eNew struct {
	callee jsExpr
	args   []jsExpr
}

type eMember struct {
	obj      jsExpr
	name     string // static access
	computed jsExpr // a[b]; nil for static
}

type eSeq struct{ x, y jsExpr }

func (*eNum) jsExprNode()       {}
func (*eStr) jsExprNode()       {}
func (*eBool) jsExprNode()      {}
func (*eNull) jsExprNode()      {}
func (*eUndefined) jsExprNode() {}
func (*eThis) jsExprNode()      {}
func (*eIdent) jsExprNode()     {}
func (*eArray) jsExprNode()     {}
func (*eObject) jsExprNode()    {}
func (*eFunc) jsExprNode()      {}
func (*eUnary) jsExprNode()     {}
func (*eBinary) jsExprNode()    {}
func (*eLogical) jsExprNode()   {}
func (*eAssign) jsExprNode()    {}
func (*eCond) jsExprNode()      {}
func (*eCall) jsExprNode()      {}
func (*eNew) jsExprNode()       {}
func (*eMember) jsExprNode()    {}
func (*eSeq) jsExprNode()       {}
