package jsvm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// getMember reads a static property.
func (vm *VM) getMember(e *env, ov Value, name string) (Value, error) {
	if err := vm.step(e, JPropRead); err != nil {
		return Undefined, err
	}
	switch ov.Kind {
	case KindString:
		switch name {
		case "length":
			return Num(float64(len(ov.Str))), nil
		}
		return Undefined, nil
	case KindObject:
		o := ov.Obj
		switch o.Kind {
		case ObjArray:
			if name == "length" {
				return Num(float64(len(o.Elems))), nil
			}
		case ObjTypedArray:
			switch name {
			case "length":
				return Num(float64(o.TA.Len)), nil
			case "buffer":
				return ObjVal(o.TA.Buf), nil
			case "BYTES_PER_ELEMENT":
				return Num(float64(o.TA.Kind.ElemSize())), nil
			}
		case ObjArrayBuffer:
			if name == "byteLength" {
				return Num(float64(len(o.Buf))), nil
			}
		}
		if o.Props != nil {
			if v, ok := o.Props[name]; ok {
				return v, nil
			}
		}
		return Undefined, nil
	case KindUndefined, KindNull:
		return Undefined, &jsThrow{v: Str("TypeError: cannot read property '" + name + "' of " + ov.ToString())}
	}
	return Undefined, nil
}

// setMember writes a static property.
func (vm *VM) setMember(e *env, ov Value, name string, v Value) error {
	if err := vm.step(e, JPropWrite); err != nil {
		return err
	}
	if ov.Kind != KindObject {
		return &jsThrow{v: Str("TypeError: cannot set property on " + ov.ToString())}
	}
	o := ov.Obj
	if o.Kind == ObjArray && name == "length" {
		n := int(v.ToNumber())
		vm.resizeArray(o, n)
		return nil
	}
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	if _, exists := o.Props[name]; !exists {
		vm.heapLive += 32 + uint64(len(name))
		if vm.heapLive > vm.heapPeak {
			vm.heapPeak = vm.heapLive
		}
		vm.allocSince += 32
	}
	o.Props[name] = v
	return nil
}

func (vm *VM) resizeArray(o *Object, n int) {
	if n < 0 {
		n = 0
	}
	old := uint64(cap(o.Elems)) * 16
	if n <= len(o.Elems) {
		o.Elems = o.Elems[:n]
		return
	}
	grown := make([]Value, n)
	copy(grown, o.Elems)
	o.Elems = grown
	vm.heapLive += uint64(cap(o.Elems))*16 - old
	if vm.heapLive > vm.heapPeak {
		vm.heapPeak = vm.heapLive
	}
	vm.allocSince += uint64(n) * 16
}

// getElement reads obj[idx].
func (vm *VM) getElement(e *env, ov, iv Value) (Value, error) {
	if ov.Kind == KindObject {
		o := ov.Obj
		switch o.Kind {
		case ObjTypedArray:
			if err := vm.step(e, JTARead); err != nil {
				return Undefined, err
			}
			i := int(iv.ToNumber())
			if i < 0 || i >= o.TA.Len {
				return Undefined, nil
			}
			return Num(o.TAGet(i)), nil
		case ObjArray:
			if err := vm.step(e, JElemRead); err != nil {
				return Undefined, err
			}
			if iv.Kind == KindNumber {
				i := int(iv.Num)
				if float64(i) == iv.Num && i >= 0 {
					if i < len(o.Elems) {
						return o.Elems[i], nil
					}
					return Undefined, nil
				}
			}
		}
	}
	if ov.Kind == KindString && iv.Kind == KindNumber {
		if err := vm.step(e, JStrOp); err != nil {
			return Undefined, err
		}
		i := int(iv.Num)
		if i >= 0 && i < len(ov.Str) {
			return Str(ov.Str[i : i+1]), nil
		}
		return Undefined, nil
	}
	return vm.getMember(e, ov, iv.ToString())
}

// setElement writes obj[idx] = v.
func (vm *VM) setElement(e *env, ov, iv, v Value) error {
	if ov.Kind == KindObject {
		o := ov.Obj
		switch o.Kind {
		case ObjTypedArray:
			if err := vm.step(e, JTAWrite); err != nil {
				return err
			}
			o.TASet(int(iv.ToNumber()), v.ToNumber())
			return nil
		case ObjArray:
			if err := vm.step(e, JElemWrite); err != nil {
				return err
			}
			if iv.Kind == KindNumber {
				i := int(iv.Num)
				if float64(i) == iv.Num && i >= 0 {
					if i >= len(o.Elems) {
						vm.resizeArray(o, i+1)
					}
					o.Elems[i] = v
					return nil
				}
			}
		}
	}
	return vm.setMember(e, ov, iv.ToString(), v)
}

// invokeMethod calls obj.name(args) handling builtin methods.
func (vm *VM) invokeMethod(e *env, ov Value, name string, args []Value) (Value, error) {
	// User-defined or host method stored as a property.
	if ov.Kind == KindObject && ov.Obj.Props != nil {
		if m, ok := ov.Obj.Props[name]; ok && m.Kind == KindObject && m.Obj.Kind == ObjFunction {
			cls := JCall
			if m.Obj.Fn.Native != nil {
				cls = JCallNative
			}
			if err := vm.step(e, cls); err != nil {
				return Undefined, err
			}
			return vm.callFuncObj(m.Obj, ov, args)
		}
	}
	if err := vm.step(e, JCallNative); err != nil {
		return Undefined, err
	}
	switch ov.Kind {
	case KindString:
		return vm.stringMethod(ov.Str, name, args)
	case KindObject:
		switch ov.Obj.Kind {
		case ObjArray:
			return vm.arrayMethod(ov.Obj, name, args)
		case ObjTypedArray:
			return vm.typedArrayMethod(ov.Obj, name, args)
		case ObjFunction:
			switch name {
			case "call":
				this := Undefined
				if len(args) > 0 {
					this = args[0]
					args = args[1:]
				}
				return vm.callFuncObj(ov.Obj, this, args)
			case "apply":
				this := Undefined
				var rest []Value
				if len(args) > 0 {
					this = args[0]
				}
				if len(args) > 1 && args[1].Kind == KindObject && args[1].Obj.Kind == ObjArray {
					rest = args[1].Obj.Elems
				}
				return vm.callFuncObj(ov.Obj, this, rest)
			}
		}
	}
	return Undefined, &jsThrow{v: Str("TypeError: " + ov.ToString() + "." + name + " is not a function")}
}

func (vm *VM) stringMethod(s, name string, args []Value) (Value, error) {
	arg := func(i int) Value {
		if i < len(args) {
			return args[i]
		}
		return Undefined
	}
	switch name {
	case "charCodeAt":
		i := int(arg(0).ToNumber())
		if i < 0 || i >= len(s) {
			return Num(math.NaN()), nil
		}
		return Num(float64(s[i])), nil
	case "charAt":
		i := int(arg(0).ToNumber())
		if i < 0 || i >= len(s) {
			return Str(""), nil
		}
		return Str(s[i : i+1]), nil
	case "indexOf":
		return Num(float64(strings.Index(s, arg(0).ToString()))), nil
	case "lastIndexOf":
		return Num(float64(strings.LastIndex(s, arg(0).ToString()))), nil
	case "substring":
		a := clampIdx(int(arg(0).ToNumber()), len(s))
		b := len(s)
		if arg(1).Kind != KindUndefined {
			b = clampIdx(int(arg(1).ToNumber()), len(s))
		}
		if a > b {
			a, b = b, a
		}
		return Str(s[a:b]), nil
	case "slice":
		a := sliceIdx(int(arg(0).ToNumber()), len(s))
		b := len(s)
		if arg(1).Kind != KindUndefined {
			b = sliceIdx(int(arg(1).ToNumber()), len(s))
		}
		if a > b {
			return Str(""), nil
		}
		return Str(s[a:b]), nil
	case "split":
		sep := arg(0).ToString()
		parts := strings.Split(s, sep)
		vals := make([]Value, len(parts))
		for i, p := range parts {
			vals[i] = Str(p)
		}
		return ObjVal(vm.NewArray(vals)), nil
	case "toLowerCase":
		return Str(strings.ToLower(s)), nil
	case "toUpperCase":
		return Str(strings.ToUpper(s)), nil
	case "replace":
		return Str(strings.Replace(s, arg(0).ToString(), arg(1).ToString(), 1)), nil
	case "trim":
		return Str(strings.TrimSpace(s)), nil
	case "concat":
		for _, a := range args {
			s += a.ToString()
		}
		return Str(s), nil
	case "toString":
		return Str(s), nil
	}
	return Undefined, &jsThrow{v: Str("TypeError: string." + name + " is not a function")}
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func sliceIdx(i, n int) int {
	if i < 0 {
		i += n
	}
	return clampIdx(i, n)
}

func (vm *VM) arrayMethod(o *Object, name string, args []Value) (Value, error) {
	switch name {
	case "push":
		o.Elems = append(o.Elems, args...)
		vm.heapLive += uint64(len(args)) * 16
		vm.allocSince += uint64(len(args)) * 16
		if vm.heapLive > vm.heapPeak {
			vm.heapPeak = vm.heapLive
		}
		return Num(float64(len(o.Elems))), nil
	case "pop":
		if len(o.Elems) == 0 {
			return Undefined, nil
		}
		v := o.Elems[len(o.Elems)-1]
		o.Elems = o.Elems[:len(o.Elems)-1]
		return v, nil
	case "shift":
		if len(o.Elems) == 0 {
			return Undefined, nil
		}
		v := o.Elems[0]
		o.Elems = o.Elems[1:]
		return v, nil
	case "join":
		sep := ","
		if len(args) > 0 {
			sep = args[0].ToString()
		}
		parts := make([]string, len(o.Elems))
		for i, el := range o.Elems {
			if el.Kind != KindUndefined && el.Kind != KindNull {
				parts[i] = el.ToString()
			}
		}
		return Str(strings.Join(parts, sep)), nil
	case "slice":
		a := 0
		if len(args) > 0 {
			a = sliceIdx(int(args[0].ToNumber()), len(o.Elems))
		}
		b := len(o.Elems)
		if len(args) > 1 && args[1].Kind != KindUndefined {
			b = sliceIdx(int(args[1].ToNumber()), len(o.Elems))
		}
		if a > b {
			a = b
		}
		return ObjVal(vm.NewArray(append([]Value(nil), o.Elems[a:b]...))), nil
	case "indexOf":
		if len(args) > 0 {
			for i, el := range o.Elems {
				if StrictEquals(el, args[0]) {
					return Num(float64(i)), nil
				}
			}
		}
		return Num(-1), nil
	case "concat":
		out := append([]Value(nil), o.Elems...)
		for _, a := range args {
			if a.Kind == KindObject && a.Obj.Kind == ObjArray {
				out = append(out, a.Obj.Elems...)
			} else {
				out = append(out, a)
			}
		}
		return ObjVal(vm.NewArray(out)), nil
	case "fill":
		var v Value
		if len(args) > 0 {
			v = args[0]
		}
		for i := range o.Elems {
			o.Elems[i] = v
		}
		return ObjVal(o), nil
	case "toString":
		return Str(o.toString()), nil
	}
	return Undefined, &jsThrow{v: Str("TypeError: array." + name + " is not a function")}
}

func (vm *VM) typedArrayMethod(o *Object, name string, args []Value) (Value, error) {
	switch name {
	case "fill":
		f := 0.0
		if len(args) > 0 {
			f = args[0].ToNumber()
		}
		for i := 0; i < o.TA.Len; i++ {
			o.TASet(i, f)
		}
		return ObjVal(o), nil
	case "set":
		if len(args) > 0 && args[0].Kind == KindObject {
			src := args[0].Obj
			off := 0
			if len(args) > 1 {
				off = int(args[1].ToNumber())
			}
			switch src.Kind {
			case ObjTypedArray:
				for i := 0; i < src.TA.Len; i++ {
					o.TASet(off+i, src.TAGet(i))
				}
			case ObjArray:
				for i, el := range src.Elems {
					o.TASet(off+i, el.ToNumber())
				}
			}
		}
		return Undefined, nil
	case "subarray":
		a := 0
		if len(args) > 0 {
			a = sliceIdx(int(args[0].ToNumber()), o.TA.Len)
		}
		b := o.TA.Len
		if len(args) > 1 {
			b = sliceIdx(int(args[1].ToNumber()), o.TA.Len)
		}
		if a > b {
			a = b
		}
		// A true view needs an offset; model with a copy for the subset.
		sub := vm.NewTypedArray(o.TA.Kind, b-a)
		for i := a; i < b; i++ {
			sub.TASet(i-a, o.TAGet(i))
		}
		return ObjVal(sub), nil
	}
	return Undefined, &jsThrow{v: Str("TypeError: typedarray." + name + " is not a function")}
}

// installHost builds the global host environment: Math, console,
// performance, typed-array constructors, and the env print channel used by
// compiled (Cheerp-style) programs.
func (vm *VM) installHost() {
	vm.hostFuncs = map[string]*Object{}

	mathObj := vm.NewPlainObject()
	m1 := func(name string, f func(float64) float64) {
		mathObj.Props[name] = ObjVal(vm.NewNative("Math."+name, func(vm *VM, _ Value, args []Value) (Value, error) {
			if len(args) < 1 {
				return Num(math.NaN()), nil
			}
			return Num(f(args[0].ToNumber())), nil
		}))
	}
	m1("sqrt", math.Sqrt)
	m1("abs", math.Abs)
	m1("floor", math.Floor)
	m1("ceil", math.Ceil)
	m1("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	m1("trunc", math.Trunc)
	m1("sin", math.Sin)
	m1("cos", math.Cos)
	m1("tan", math.Tan)
	m1("exp", math.Exp)
	m1("log", math.Log)
	m1("log2", math.Log2)
	m1("fround", func(f float64) float64 { return float64(float32(f)) })
	mathObj.Props["pow"] = ObjVal(vm.NewNative("Math.pow", func(vm *VM, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Num(math.NaN()), nil
		}
		return Num(math.Pow(args[0].ToNumber(), args[1].ToNumber())), nil
	}))
	mathObj.Props["min"] = ObjVal(vm.NewNative("Math.min", func(vm *VM, _ Value, args []Value) (Value, error) {
		r := math.Inf(1)
		for _, a := range args {
			r = math.Min(r, a.ToNumber())
		}
		return Num(r), nil
	}))
	mathObj.Props["max"] = ObjVal(vm.NewNative("Math.max", func(vm *VM, _ Value, args []Value) (Value, error) {
		r := math.Inf(-1)
		for _, a := range args {
			r = math.Max(r, a.ToNumber())
		}
		return Num(r), nil
	}))
	mathObj.Props["imul"] = ObjVal(vm.NewNative("Math.imul", func(vm *VM, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Num(0), nil
		}
		return Num(float64(args[0].ToInt32() * args[1].ToInt32())), nil
	}))
	mathObj.Props["random"] = ObjVal(vm.NewNative("Math.random", func(vm *VM, _ Value, _ []Value) (Value, error) {
		// Deterministic xorshift for reproducible studies.
		vm.rngState ^= vm.rngState << 13
		vm.rngState ^= vm.rngState >> 7
		vm.rngState ^= vm.rngState << 17
		return Num(float64(vm.rngState%1000000) / 1000000), nil
	}))
	mathObj.Props["PI"] = Num(math.Pi)
	mathObj.Props["E"] = Num(math.E)
	vm.hostFuncs["Math"] = mathObj

	consoleObj := vm.NewPlainObject()
	consoleObj.Props["log"] = ObjVal(vm.NewNative("console.log", func(vm *VM, _ Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.ToString()
		}
		vm.Output = append(vm.Output, OutputEvent{Kind: "s", S: strings.Join(parts, " ")})
		return Undefined, nil
	}))
	vm.hostFuncs["console"] = consoleObj

	perfObj := vm.NewPlainObject()
	perfObj.Props["now"] = ObjVal(vm.NewNative("performance.now", func(vm *VM, _ Value, _ []Value) (Value, error) {
		return Num(vm.NowFn()), nil
	}))
	vm.hostFuncs["performance"] = perfObj

	taCtor := func(name string, kind TAKind) {
		vm.hostFuncs[name] = vm.NewNative(name, func(vm *VM, _ Value, args []Value) (Value, error) {
			if len(args) == 1 && args[0].Kind == KindNumber {
				return ObjVal(vm.NewTypedArray(kind, int(args[0].Num))), nil
			}
			if len(args) >= 1 && args[0].Kind == KindObject {
				src := args[0].Obj
				switch src.Kind {
				case ObjArrayBuffer:
					// new TA(buffer[, byteOffset, length]) — offset 0 only.
					n := len(src.Buf) / kind.ElemSize()
					if len(args) >= 3 {
						n = int(args[2].ToNumber())
					}
					ta := vm.alloc(&Object{Kind: ObjTypedArray})
					ta.TA.Buf = src
					ta.TA.Kind = kind
					ta.TA.Len = n
					return ObjVal(ta), nil
				case ObjArray:
					ta := vm.NewTypedArray(kind, len(src.Elems))
					for i, el := range src.Elems {
						ta.TASet(i, el.ToNumber())
					}
					return ObjVal(ta), nil
				case ObjTypedArray:
					ta := vm.NewTypedArray(kind, src.TA.Len)
					for i := 0; i < src.TA.Len; i++ {
						ta.TASet(i, src.TAGet(i))
					}
					return ObjVal(ta), nil
				}
			}
			return ObjVal(vm.NewTypedArray(kind, 0)), nil
		})
	}
	taCtor("Int8Array", TAInt8)
	taCtor("Uint8Array", TAUint8)
	taCtor("Int16Array", TAInt16)
	taCtor("Uint16Array", TAUint16)
	taCtor("Int32Array", TAInt32)
	taCtor("Uint32Array", TAUint32)
	taCtor("Float32Array", TAFloat32)
	taCtor("Float64Array", TAFloat64)

	vm.hostFuncs["ArrayBuffer"] = vm.NewNative("ArrayBuffer", func(vm *VM, _ Value, args []Value) (Value, error) {
		n := 0
		if len(args) > 0 {
			n = int(args[0].ToNumber())
		}
		buf := vm.alloc(&Object{Kind: ObjArrayBuffer})
		vm.allocBuffer(buf, n)
		return ObjVal(buf), nil
	})

	strObj := vm.NewPlainObject()
	strObj.Props["fromCharCode"] = ObjVal(vm.NewNative("String.fromCharCode", func(vm *VM, _ Value, args []Value) (Value, error) {
		var sb strings.Builder
		for _, a := range args {
			sb.WriteRune(rune(int(a.ToNumber())))
		}
		return Str(sb.String()), nil
	}))
	vm.hostFuncs["String"] = strObj

	numObj := vm.NewPlainObject()
	numObj.Props["MAX_SAFE_INTEGER"] = Num(9007199254740991)
	numObj.Props["isInteger"] = ObjVal(vm.NewNative("Number.isInteger", func(vm *VM, _ Value, args []Value) (Value, error) {
		if len(args) < 1 || args[0].Kind != KindNumber {
			return Bool(false), nil
		}
		return Bool(args[0].Num == math.Trunc(args[0].Num)), nil
	}))
	vm.hostFuncs["Number"] = numObj

	// W3C Web Cryptography API, modeled synchronously: the digest runs in
	// native (browser) code, so its virtual cost is the native-call charge
	// only — the stratum behind the paper's fast "SHA (W3C)" row.
	cryptoObj := vm.NewPlainObject()
	subtle := vm.NewPlainObject()
	subtle.Props["digestSHA1"] = ObjVal(vm.NewNative("crypto.subtle.digestSHA1", func(vm *VM, _ Value, args []Value) (Value, error) {
		var msg []byte
		if len(args) > 0 && args[0].Kind == KindObject && args[0].Obj.Kind == ObjTypedArray {
			ta := args[0].Obj
			msg = make([]byte, ta.TA.Len)
			for i := range msg {
				msg[i] = byte(int64(ta.TAGet(i)))
			}
		}
		h := sha1Blocks(msg)
		out := make([]Value, 5)
		for i, v := range h {
			out[i] = Num(float64(int32(v)))
		}
		return ObjVal(vm.NewArray(out)), nil
	}))
	cryptoObj.Props["subtle"] = ObjVal(subtle)
	vm.hostFuncs["crypto"] = cryptoObj

	vm.hostFuncs["parseInt"] = vm.NewNative("parseInt", func(vm *VM, _ Value, args []Value) (Value, error) {
		if len(args) < 1 {
			return Num(math.NaN()), nil
		}
		base := 10
		if len(args) > 1 {
			base = int(args[1].ToNumber())
		}
		s := strings.TrimSpace(args[0].ToString())
		v, err := strconv.ParseInt(s, base, 64)
		if err != nil {
			return Num(math.NaN()), nil
		}
		return Num(float64(v)), nil
	})
	vm.hostFuncs["isNaN"] = vm.NewNative("isNaN", func(vm *VM, _ Value, args []Value) (Value, error) {
		if len(args) < 1 {
			return Bool(true), nil
		}
		return Bool(math.IsNaN(args[0].ToNumber())), nil
	})

	// ECMA-262 global value properties. Compiled code spells non-finite f64
	// constants as Infinity / -Infinity / NaN; without these bindings the
	// identifiers read as undefined (NaN after ToNumber), which silently
	// flips comparisons against them.
	vm.SetGlobal("Infinity", Num(math.Inf(1)))
	vm.SetGlobal("NaN", Num(math.NaN()))
	vm.SetGlobal("undefined", Undefined)

	// The print channel used by compiled Cheerp-style programs (the study's
	// output comparison across backends).
	vm.hostFuncs["print_i"] = vm.NewNative("print_i", func(vm *VM, _ Value, args []Value) (Value, error) {
		vm.Output = append(vm.Output, OutputEvent{Kind: "i", I: int64(args[0].ToNumber())})
		return Undefined, nil
	})
	vm.hostFuncs["print_f"] = vm.NewNative("print_f", func(vm *VM, _ Value, args []Value) (Value, error) {
		vm.Output = append(vm.Output, OutputEvent{Kind: "f", F: args[0].ToNumber()})
		return Undefined, nil
	})
	vm.hostFuncs["print_s"] = vm.NewNative("print_s", func(vm *VM, _ Value, args []Value) (Value, error) {
		vm.Output = append(vm.Output, OutputEvent{Kind: "s", S: args[0].ToString()})
		return Undefined, nil
	})
	// Exact 64-bit print channel for Cheerp-style compiled code (lo/hi pair).
	vm.hostFuncs["print_i64"] = vm.NewNative("print_i64", func(vm *VM, _ Value, args []Value) (Value, error) {
		lo := uint32(args[0].ToInt32())
		hi := args[1].ToInt32()
		vm.Output = append(vm.Output, OutputEvent{Kind: "i", I: int64(hi)<<32 | int64(lo)})
		return Undefined, nil
	})

	vm.rngState = 0x9E3779B97F4A7C15
}

var _ = fmt.Sprintf // keep fmt imported for diagnostics

// sha1Blocks hashes full 64-byte blocks (no padding — matching the
// benchmark kernels' block-stream usage).
func sha1Blocks(msg []byte) [5]uint32 {
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	var w [80]uint32
	rol := func(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
	for off := 0; off+64 <= len(msg); off += 64 {
		for t := 0; t < 16; t++ {
			w[t] = uint32(msg[off+t*4])<<24 | uint32(msg[off+t*4+1])<<16 |
				uint32(msg[off+t*4+2])<<8 | uint32(msg[off+t*4+3])
		}
		for t := 16; t < 80; t++ {
			w[t] = rol(w[t-3]^w[t-8]^w[t-14]^w[t-16], 1)
		}
		a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
		for t := 0; t < 80; t++ {
			var f, k uint32
			switch {
			case t < 20:
				f, k = (b&c)|(^b&d), 0x5A827999
			case t < 40:
				f, k = b^c^d, 0x6ED9EBA1
			case t < 60:
				f, k = (b&c)|(b&d)|(c&d), 0x8F1BBCDC
			default:
				f, k = b^c^d, 0xCA62C1D6
			}
			tmp := rol(a, 5) + f + e + k + w[t]
			e, d, c, b, a = d, c, rol(b, 30), a, tmp
		}
		h[0] += a
		h[1] += b
		h[2] += c
		h[3] += d
		h[4] += e
	}
	return h
}
