package browser

import (
	"testing"

	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
)

const tinyProg = `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 2000; i++) {
		s += i & 15;
	}
	print_i((long)s);
	return s & 255;
}
`

func compileTiny(t *testing.T) *compiler.Artifact {
	t.Helper()
	art, err := compiler.Compile(tinyProg, compiler.Options{Opt: ir.O2, ModuleName: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestProfilesAreDistinct(t *testing.T) {
	art := compileTiny(t)
	seen := map[string]float64{}
	for _, p := range AllProfiles() {
		wm, err := p.MeasureWasm(art)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if wm.ExecMS <= 0 {
			t.Errorf("%s: non-positive time", p.Name())
		}
		seen[p.Name()] = wm.ExecMS
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 deployments, got %d", len(seen))
	}
	// Mobile must be slower than the same browser's desktop.
	for _, b := range []string{"chrome", "firefox", "edge"} {
		if seen[b+"-mobile"] <= seen[b+"-desktop"] {
			t.Errorf("%s: mobile (%v) should be slower than desktop (%v)",
				b, seen[b+"-mobile"], seen[b+"-desktop"])
		}
	}
}

func TestMeasurementDeterminism(t *testing.T) {
	art := compileTiny(t)
	p := Chrome(Desktop)
	a, err := p.MeasureWasm(art)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chrome(Desktop).MeasureWasm(art)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecMS != b.ExecMS || a.MemoryKB != b.MemoryKB {
		t.Errorf("virtual-time measurement must be deterministic: %v/%v vs %v/%v",
			a.ExecMS, a.MemoryKB, b.ExecMS, b.MemoryKB)
	}
}

func TestJSMemoryBaselines(t *testing.T) {
	art := compileTiny(t)
	chrome, err := Chrome(Desktop).MeasureJS(art)
	if err != nil {
		t.Fatal(err)
	}
	firefox, err := Firefox(Desktop).MeasureJS(art)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Tables 4/6: Chrome's JS baseline ≈ 880 KB, Firefox ≈ 510.
	if chrome.MemoryKB < 850 || chrome.MemoryKB > 950 {
		t.Errorf("chrome JS memory = %.1f KB, want ≈ 880", chrome.MemoryKB)
	}
	if firefox.MemoryKB < 480 || firefox.MemoryKB > 580 {
		t.Errorf("firefox JS memory = %.1f KB, want ≈ 510", firefox.MemoryKB)
	}
}

func TestCtxSwitchOrdering(t *testing.T) {
	chrome := Chrome(Desktop).CtxSwitchNS()
	firefox := Firefox(Desktop).CtxSwitchNS()
	ratio := firefox / chrome
	// Paper §4.5: Firefox ≈ 0.13x of Chrome.
	if ratio < 0.08 || ratio > 0.25 {
		t.Errorf("firefox/chrome context switch = %.3f, want ≈ 0.13", ratio)
	}
}

func TestWasmOutputMatchesJS(t *testing.T) {
	art := compileTiny(t)
	p := Chrome(Desktop)
	wm, err := p.MeasureWasm(art)
	if err != nil {
		t.Fatal(err)
	}
	jm, err := p.MeasureJS(art)
	if err != nil {
		t.Fatal(err)
	}
	ws, js := wm.Result.OutputStrings(), jm.Result.OutputStrings()
	if len(ws) != 1 || len(js) != 1 || ws[0] != js[0] {
		t.Errorf("outputs differ: %v vs %v", ws, js)
	}
}

func TestJSSourceMeasurement(t *testing.T) {
	p := Chrome(Desktop)
	m, err := p.MeasureJSSource(`
var s = 0;
for (var i = 0; i < 1000; i++) s += i;
print_i(s);
var __exit = 0;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Result.Output) != 1 || m.Result.Output[0].I != 499500 {
		t.Errorf("manual JS output: %v", m.Result.Output)
	}
}
