package browser

import (
	"wasmbench/internal/codegen"
	"wasmbench/internal/jsvm"
)

func toCodegenEvent(o jsvm.OutputEvent) codegen.OutputEvent {
	return codegen.OutputEvent{Kind: o.Kind, I: o.I, F: o.F, S: o.S}
}
