package browser

import (
	"testing"

	"wasmbench/internal/wasm"
	"wasmbench/internal/wasmvm"
)

// growCapModule is a minimal module exporting grow(n) = memory.grow(n).
func growCapModule() *wasm.Module {
	m := &wasm.Module{}
	tI_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Mem = &wasm.MemType{Min: 1}
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "grow", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpMemoryGrow}, {Op: wasm.OpEnd},
	}})
	m.Exports = append(m.Exports, wasm.Export{Name: "grow", Kind: wasm.ExportFunc, Idx: 0})
	return m
}

// TestTabCapAdvisoryUntilApplied pins the compatibility contract: mobile
// profiles carry the ≈300 MB tab budget but existing measurements are
// untouched until ApplyTabCap opts in; desktop profiles carry no cap.
func TestTabCapAdvisoryUntilApplied(t *testing.T) {
	for _, mk := range []func(Platform) *Profile{Chrome, Firefox, Edge} {
		d := mk(Desktop)
		if d.TabCapPages != 0 {
			t.Errorf("%s: desktop TabCapPages = %d, want 0", d.Name(), d.TabCapPages)
		}
		preCap := d.Wasm.MaxPages
		d.ApplyTabCap()
		if d.Wasm.MaxPages != preCap {
			t.Errorf("%s: ApplyTabCap changed a capless desktop profile", d.Name())
		}

		m := mk(Mobile)
		if m.TabCapPages != 4800 {
			t.Errorf("%s: TabCapPages = %d, want 4800 (≈300 MB)", m.Name(), m.TabCapPages)
		}
		if m.Wasm.MaxPages == m.TabCapPages {
			t.Errorf("%s: cap applied before ApplyTabCap", m.Name())
		}
		m.ApplyTabCap()
		if m.Wasm.MaxPages != m.TabCapPages {
			t.Errorf("%s: MaxPages = %d after ApplyTabCap, want %d",
				m.Name(), m.Wasm.MaxPages, m.TabCapPages)
		}
	}
}

// TestTabCapGrowDeniedAtBudget runs a real module under the capped mobile
// engine configuration: growing to exactly the tab budget succeeds,
// growing past it fails with −1 and leaves the size unchanged — the
// spec-correct surface of a mobile tab OOM kill.
func TestTabCapGrowDeniedAtBudget(t *testing.T) {
	p := Chrome(Mobile)
	p.ApplyTabCap()
	cfg := p.Wasm
	cfg.GrowGranularityPages = 1
	vm, err := wasmvm.New(growCapModule(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	grow := func(n int32) int32 {
		res, err := vm.Call("grow", wasmvm.I32(n))
		if err != nil {
			t.Fatalf("grow(%d): %v", n, err)
		}
		return wasmvm.AsI32(res[0])
	}
	// Fill to exactly the 4800-page budget.
	if r := grow(int32(p.TabCapPages) - 1); r != 1 {
		t.Fatalf("grow to budget returned %d, want old size 1", r)
	}
	if got := vm.Memory().Pages(); got != p.TabCapPages {
		t.Fatalf("pages = %d, want %d", got, p.TabCapPages)
	}
	// One page past the budget must fail without resizing.
	if r := grow(1); r != -1 {
		t.Errorf("grow past tab budget = %d, want -1", r)
	}
	if got := vm.Memory().Pages(); got != p.TabCapPages {
		t.Errorf("failed grow resized memory: %d pages", got)
	}
}
