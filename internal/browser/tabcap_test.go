package browser

import (
	"testing"

	"wasmbench/internal/wasm"
	"wasmbench/internal/wasmvm"
)

// growCapModule is a minimal module exporting grow(n) = memory.grow(n).
func growCapModule() *wasm.Module {
	m := &wasm.Module{}
	tI_I := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	m.Mem = &wasm.MemType{Min: 1}
	m.Funcs = append(m.Funcs, wasm.Function{Type: tI_I, Name: "grow", Body: []wasm.Instr{
		{Op: wasm.OpLocalGet, A: 0}, {Op: wasm.OpMemoryGrow}, {Op: wasm.OpEnd},
	}})
	m.Exports = append(m.Exports, wasm.Export{Name: "grow", Kind: wasm.ExportFunc, Idx: 0})
	return m
}

// TestTabCapAdvisoryUntilApplied pins the compatibility contract: mobile
// profiles carry the ≈300 MB tab budget but existing measurements are
// untouched until ApplyTabCap opts in; desktop profiles carry no cap.
func TestTabCapAdvisoryUntilApplied(t *testing.T) {
	for _, mk := range []func(Platform) *Profile{Chrome, Firefox, Edge} {
		d := mk(Desktop)
		if d.TabCapPages != 0 {
			t.Errorf("%s: desktop TabCapPages = %d, want 0", d.Name(), d.TabCapPages)
		}
		preCap := d.Wasm.MaxPages
		d.ApplyTabCap()
		if d.Wasm.MaxPages != preCap {
			t.Errorf("%s: ApplyTabCap changed a capless desktop profile", d.Name())
		}

		m := mk(Mobile)
		if m.TabCapPages != 4800 {
			t.Errorf("%s: TabCapPages = %d, want 4800 (≈300 MB)", m.Name(), m.TabCapPages)
		}
		if m.Wasm.MaxPages == m.TabCapPages {
			t.Errorf("%s: cap applied before ApplyTabCap", m.Name())
		}
		m.ApplyTabCap()
		if m.Wasm.MaxPages != m.TabCapPages {
			t.Errorf("%s: MaxPages = %d after ApplyTabCap, want %d",
				m.Name(), m.Wasm.MaxPages, m.TabCapPages)
		}
	}
}

// TestTabCapGrowDeniedAtBudget runs a real module under the capped mobile
// engine configuration: growing to exactly the tab budget succeeds,
// growing past it fails with −1 and leaves the size unchanged — the
// spec-correct surface of a mobile tab OOM kill.
func TestTabCapGrowDeniedAtBudget(t *testing.T) {
	p := Chrome(Mobile)
	p.ApplyTabCap()
	cfg := p.Wasm
	cfg.GrowGranularityPages = 1
	vm, err := wasmvm.New(growCapModule(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Instantiate(); err != nil {
		t.Fatal(err)
	}
	grow := func(n int32) int32 {
		res, err := vm.Call("grow", wasmvm.I32(n))
		if err != nil {
			t.Fatalf("grow(%d): %v", n, err)
		}
		return wasmvm.AsI32(res[0])
	}
	// Fill to exactly the 4800-page budget.
	if r := grow(int32(p.TabCapPages) - 1); r != 1 {
		t.Fatalf("grow to budget returned %d, want old size 1", r)
	}
	if got := vm.Memory().Pages(); got != p.TabCapPages {
		t.Fatalf("pages = %d, want %d", got, p.TabCapPages)
	}
	// One page past the budget must fail without resizing.
	if r := grow(1); r != -1 {
		t.Errorf("grow past tab budget = %d, want -1", r)
	}
	if got := vm.Memory().Pages(); got != p.TabCapPages {
		t.Errorf("failed grow resized memory: %d pages", got)
	}
}

// TestPooledVMBudget pins the pool-sizing arithmetic against the platform
// tab budget: desktop profiles impose no bound, mobile bounds the pool by
// how many idle post-init memories fit under TabCapPages, and a footprint
// larger than the whole budget still admits one instance (the pool then
// degrades by exhaustion, not by erroring).
func TestPooledVMBudget(t *testing.T) {
	d := Chrome(Desktop)
	if n := d.PooledVMBudget(100); n != 0 {
		t.Errorf("desktop budget = %d, want 0 (uncapped)", n)
	}
	m := Chrome(Mobile)
	if n := m.PooledVMBudget(0); n != 0 {
		t.Errorf("zero-footprint budget = %d, want 0", n)
	}
	if n := m.PooledVMBudget(1600); n != 3 {
		t.Errorf("budget(1600 pages) = %d, want 3 (4800/1600)", n)
	}
	if n := m.PooledVMBudget(4800); n != 1 {
		t.Errorf("budget(4800 pages) = %d, want 1", n)
	}
	if n := m.PooledVMBudget(9999); n != 1 {
		t.Errorf("oversized footprint budget = %d, want floor of 1", n)
	}
}

// TestTabCapPoolReclaim drives an instance pool sized by PooledVMBudget
// like a mobile tab manager: the pool admits exactly the budget, an
// over-budget checkout under ColdFallback runs cold (the tab-kill
// analogue — no blocking, no error), and an idle instance of another
// engine shape is evicted to admit a new one, exactly as an idle tab is
// reclaimed for a foreground one.
func TestTabCapPoolReclaim(t *testing.T) {
	p := Chrome(Mobile)
	p.ApplyTabCap()
	cfgA := p.Wasm
	cfgA.GrowGranularityPages = 1
	budget := p.PooledVMBudget(2400) // two idle post-init instances fit
	if budget != 2 {
		t.Fatalf("budget = %d, want 2", budget)
	}
	pool := wasmvm.NewInstancePool(growCapModule(), 0, wasmvm.PoolOptions{
		MaxInstances: budget,
		ColdFallback: true,
	})

	vm1, _, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	vm2, _, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	// Budget exhausted: the third concurrent tab runs cold instead of
	// waiting for a kill.
	vm3, recycled, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if recycled {
		t.Error("over-budget checkout reported recycled")
	}
	if s := pool.Stats(); s.ColdFallbacks != 1 || s.Live != budget {
		t.Errorf("after over-budget checkout: %+v, want 1 cold fallback at live=%d", s, budget)
	}
	pool.Put(vm3) // cold instance is outside the pool: dropped, not admitted
	pool.Put(vm1)
	pool.Put(vm2)
	if s := pool.Stats(); s.Idle != budget {
		t.Errorf("idle = %d, want %d", s.Idle, budget)
	}

	// A foreground tab with a different engine shape evicts an idle one.
	cfgB := cfgA
	cfgB.TierUpThreshold = 77
	vmB, _, err := pool.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (idle tab reclaimed)", s.Evictions)
	}
	if s.Live != budget {
		t.Errorf("live = %d, want %d (budget never exceeded)", s.Live, budget)
	}
	pool.Put(vmB)
}
