// Package browser models the study's execution environments (§2.2, §4.5):
// Chrome, Firefox, and Edge on desktop and mobile. A Profile is a vector of
// engine parameters — tier cost tables, tier-up thresholds, startup costs,
// GC settings, Wasm↔JS boundary costs, and a clock rate — calibrated so the
// paper's aggregate cross-browser ratios (Table 8) hold, while every
// per-benchmark number emerges from executing real code.
package browser

import (
	"fmt"

	"wasmbench/internal/compiler"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasmvm"
)

// Platform distinguishes desktop and mobile deployments.
type Platform int

// Platforms.
const (
	Desktop Platform = iota
	Mobile
)

func (p Platform) String() string {
	if p == Mobile {
		return "mobile"
	}
	return "desktop"
}

// Profile is one browser/platform environment.
type Profile struct {
	Browser  string
	Platform Platform
	// ClockGHz converts virtual cycles to milliseconds.
	ClockGHz float64
	// Wasm engine parameters.
	Wasm wasmvm.Config
	// JS engine parameters.
	JS jsvm.Config
	// CtxSwitch is the Wasm↔JS boundary cost in cycles (Firefox's 2018
	// call-path optimization makes this small there, §4.5).
	CtxSwitch float64
	// PageOverhead is the fixed page setup cost in cycles (HTML parse,
	// minimal page render).
	PageOverhead float64
	// WasmMemOverhead is the module/devtools overhead added to the Wasm
	// memory metric, in bytes.
	WasmMemOverhead uint64
	// TabCapPages models the platform's per-tab linear-memory budget in
	// 64 KiB pages (mobile browsers kill tabs that outgrow it, PAPER.md
	// §memory; JS heaps stay flat while Wasm memory grows toward the cap).
	// Advisory: it constrains nothing until ApplyTabCap is called, so
	// existing measurements are untouched. 0 = no platform cap (desktop).
	TabCapPages uint32
}

// ApplyTabCap clamps the Wasm engine's page limit to the platform tab
// budget, making memory.grow return −1 at the cap exactly as a mobile tab
// OOM kill would — the harness's degrade ladder and the fault matrix use
// this as the capacity-exhaustion environment.
func (p *Profile) ApplyTabCap() {
	if p.TabCapPages != 0 && (p.Wasm.MaxPages == 0 || p.Wasm.MaxPages > p.TabCapPages) {
		p.Wasm.MaxPages = p.TabCapPages
	}
}

// PooledVMBudget sizes an instance pool against the platform tab budget:
// how many idle pooled instances of the given linear-memory footprint fit
// under TabCapPages. Idle instances hold their post-init memory (and any
// retained grow arena), so on mobile the pool bound — not just a single
// tab — must respect the cap; a checkout evicted past the budget is
// reclaimed exactly like a tab kill. At least 1 (a pool that cannot hold
// one instance degrades to cold runs by exhaustion, not by erroring);
// 0 means no platform cap, leaving the bound to the caller.
func (p *Profile) PooledVMBudget(instancePages uint32) int {
	if p.TabCapPages == 0 || instancePages == 0 {
		return 0
	}
	n := int(p.TabCapPages / instancePages)
	if n < 1 {
		n = 1
	}
	return n
}

// Name returns e.g. "chrome-desktop".
func (p *Profile) Name() string {
	return fmt.Sprintf("%s-%s", p.Browser, p.Platform)
}

// SetTracer installs a tracer on both engines. Events are forwarded with
// the profile name prefixed to the engine track ("chrome-desktop/wasm",
// "chrome-desktop/js"), so one collector can hold several environments.
func (p *Profile) SetTracer(t obsv.Tracer) {
	p.Wasm.Tracer = obsv.WithTrack(t, p.Name())
	p.JS.Tracer = obsv.WithTrack(t, p.Name())
}

// SetProfiling enables per-function profile collection on both engines
// without attaching a tracer.
func (p *Profile) SetProfiling(on bool) {
	p.Wasm.Profile = on
	p.JS.Profile = on
}

// SetInstruments attaches live-telemetry instrument bundles to both
// engines: every VM the profile spawns from then on publishes its
// counters there. Configs are copied per measurement, so the bundles ride
// along by pointer; instruments are concurrency-safe and accumulate
// across all cells measured on the profile.
func (p *Profile) SetInstruments(r *telemetry.Registry) {
	p.Wasm.Instruments = telemetry.NewVMInstruments(r)
	p.JS.Instruments = telemetry.NewJSInstruments(r)
}

// MSFromCycles converts virtual cycles to milliseconds.
func (p *Profile) MSFromCycles(c float64) float64 {
	return c / (p.ClockGHz * 1e6)
}

// Chrome returns the Chrome profile (V8: Ignition/Sparkplug-era interp +
// TurboFan; Wasm: LiftOff + TurboFan). Desktop Chrome is the study's
// reference point.
func Chrome(plat Platform) *Profile {
	p := &Profile{
		Browser:         "chrome",
		Platform:        plat,
		ClockGHz:        3.0,
		Wasm:            wasmvm.DefaultConfig(),
		JS:              jsvm.DefaultConfig(),
		CtxSwitch:       900,
		PageOverhead:    2.2e6,
		WasmMemOverhead: 940 << 10,
	}
	p.JS.EngineBaseline = 880 << 10
	// Chrome's JS parse+startup is comparatively heavy, its optimizing JIT
	// strong: large interp/JIT gap, moderate threshold.
	p.JS.ParsePerByte = 1.3
	p.JS.TierUpThreshold = 500
	p.JS.JITCost = p.JS.JITCost.Scale(0.85)
	p.Wasm.TierUpThreshold = 1500
	if plat == Mobile {
		mobileize(p)
		p.JS.EngineBaseline = 406 << 10
		p.WasmMemOverhead = 620 << 10
	}
	return p
}

// Firefox returns the Firefox profile (SpiderMonkey + Baseline/Ion). Its
// Wasm tiers generate faster code than Chrome's (0.61x desktop execution
// time, §4.5) and its Wasm↔JS calls are much cheaper, but instantiation
// and JS parsing behave differently: quick JS startup with an earlier but
// weaker JIT, heavier Wasm module preparation — which is why small inputs
// favor JS on Firefox (Table 5).
func Firefox(plat Platform) *Profile {
	p := &Profile{
		Browser:         "firefox",
		Platform:        plat,
		ClockGHz:        3.0,
		Wasm:            wasmvm.DefaultConfig(),
		JS:              jsvm.DefaultConfig(),
		CtxSwitch:       120, // ≈0.13x of Chrome (§4.5)
		PageOverhead:    2.0e6,
		WasmMemOverhead: 760 << 10,
	}
	// Wasm: faster tiers, heavier up-front preparation.
	p.Wasm.BasicCost = p.Wasm.BasicCost.Scale(0.55)
	p.Wasm.OptCost = p.Wasm.OptCost.Scale(0.52)
	p.Wasm.CompileBasicPerInstr = 14
	p.Wasm.CompileOptPerInstr = 90
	p.Wasm.InstantiateCost = 5.5e5
	p.Wasm.DecodePerByte = 2.2
	p.Wasm.TierUpThreshold = 1800
	// JS: light parser, early/modest JIT.
	p.JS.ParsePerByte = 0.55
	p.JS.TierUpThreshold = 250
	p.JS.InterpCost = p.JS.InterpCost.Scale(0.72)
	p.JS.JITCost = p.JS.JITCost.Scale(1.30)
	p.JS.EngineBaseline = 505 << 10
	if plat == Mobile {
		mobileize(p)
		// GeckoView + Cranelift on ARM64 (§4.5): notably slower Wasm tiers,
		// while the JS engine holds up well on mobile.
		p.Wasm.BasicCost = p.Wasm.BasicCost.Scale(2.0)
		p.Wasm.OptCost = p.Wasm.OptCost.Scale(2.1)
		p.Wasm.InstantiateCost = 1.4e6
		p.JS.InterpCost = p.JS.InterpCost.Scale(0.82)
		p.JS.JITCost = p.JS.JITCost.Scale(0.78)
		p.JS.EngineBaseline = 692 << 10
		p.WasmMemOverhead = 900 << 10
	}
	return p
}

// Edge returns the Edge profile (Chromium Blink fork, v79): same engine
// architecture as Chrome with conservative scheduling on desktop (1.28x
// Wasm, 1.40x JS) and a leaner mobile build (0.83x / 0.81x of mobile
// Chrome).
func Edge(plat Platform) *Profile {
	p := Chrome(plat)
	p.Browser = "edge"
	if plat == Desktop {
		p.Wasm.BasicCost = p.Wasm.BasicCost.Scale(1.28)
		p.Wasm.OptCost = p.Wasm.OptCost.Scale(1.28)
		p.JS.InterpCost = p.JS.InterpCost.Scale(1.40)
		p.JS.JITCost = p.JS.JITCost.Scale(1.40)
		p.JS.EngineBaseline = 871 << 10
		p.WasmMemOverhead = 980 << 10
	} else {
		p.Wasm.BasicCost = p.Wasm.BasicCost.Scale(0.83)
		p.Wasm.OptCost = p.Wasm.OptCost.Scale(0.83)
		p.JS.InterpCost = p.JS.InterpCost.Scale(0.81)
		p.JS.JITCost = p.JS.JITCost.Scale(0.81)
		p.JS.EngineBaseline = 966 << 10
		p.WasmMemOverhead = 1100 << 10
	}
	return p
}

// mobileize applies the common mobile-platform slowdown (lower clocks,
// smaller caches, thermal limits; the study's Mi 6).
func mobileize(p *Profile) {
	p.ClockGHz = 1.35
	// ≈300 MB tab budget (the study's Mi 6 class of device); advisory
	// until ApplyTabCap.
	p.TabCapPages = 4800
	p.Wasm.BasicCost = p.Wasm.BasicCost.Scale(1.6)
	p.Wasm.OptCost = p.Wasm.OptCost.Scale(1.6)
	p.JS.InterpCost = p.JS.InterpCost.Scale(1.6)
	p.JS.JITCost = p.JS.JITCost.Scale(1.6)
	p.PageOverhead *= 2.5
	p.Wasm.InstantiateCost *= 2
	p.JS.ParsePerByte *= 1.8
}

// AllDesktop returns the three desktop profiles.
func AllDesktop() []*Profile {
	return []*Profile{Chrome(Desktop), Firefox(Desktop), Edge(Desktop)}
}

// AllProfiles returns the six deployment settings of §4.5.
func AllProfiles() []*Profile {
	return []*Profile{
		Chrome(Desktop), Firefox(Desktop), Edge(Desktop),
		Chrome(Mobile), Firefox(Mobile), Edge(Mobile),
	}
}

// Measurement is one §3.4 data collection: execution time via the page's
// performance.now() span and memory via the DevTools model.
type Measurement struct {
	ExecMS   float64
	MemoryKB float64
	Result   *compiler.Result
}

// MeasureOptions overrides engine parameters for one measurement without
// mutating the profile. The zero value changes nothing, so measurements
// through it are identical to the plain Measure methods — which is what
// lets the harness's degradation ladder and fault plans ride through the
// same code path the zero-fault sweep uses.
type MeasureOptions struct {
	// DisableRegTier / DisableFusion step the Wasm VM down its dispatch
	// optimizations (results and metrics are unchanged by construction).
	DisableRegTier bool
	DisableFusion  bool
	// DisableJIT pins the JS engine to the interpreter tier.
	DisableJIT bool
	// StepLimit bounds dynamic instructions/steps for the run (a virtual-
	// cycle budget; 0 keeps the profile's setting).
	StepLimit uint64
	// Faults arms a fault plan on the engine for this run.
	Faults *faultinject.Plan
	// VMPool serves the Wasm run from a pooled snapshot-restored instance
	// instead of a cold instantiation. Host wall-clock only: virtual
	// metrics are byte-identical by the wasmvm snapshot contract, so a nil
	// pool (the default) and a pooled run measure the same numbers.
	VMPool *wasmvm.InstancePool
}

// MeasureWasm loads a minimal page with the artifact's Wasm module and
// measures one run of main (§3.3's instrumentation brackets the program,
// excluding page setup, but instantiation — which the timer in the JS
// loader includes — is inside the span).
func (p *Profile) MeasureWasm(art *compiler.Artifact) (*Measurement, error) {
	return p.MeasureWasmMode(art, p.Wasm.Mode)
}

// MeasureWasmMode runs with an explicit tier mode (the §4.4 experiments).
func (p *Profile) MeasureWasmMode(art *compiler.Artifact, mode wasmvm.TierMode) (*Measurement, error) {
	cfg := p.Wasm
	cfg.Mode = mode
	return p.measureWasmCfg(art, cfg, MeasureOptions{})
}

// MeasureWasmWith measures under per-run engine overrides (deadlines,
// degradation rungs, fault plans).
func (p *Profile) MeasureWasmWith(art *compiler.Artifact, opts MeasureOptions) (*Measurement, error) {
	return p.measureWasmCfg(art, p.Wasm, opts)
}

func (p *Profile) measureWasmCfg(art *compiler.Artifact, cfg wasmvm.Config, opts MeasureOptions) (*Measurement, error) {
	if opts.DisableRegTier {
		cfg.DisableRegTier = true
	}
	if opts.DisableFusion {
		cfg.DisableFusion = true
	}
	if opts.StepLimit != 0 {
		cfg.StepLimit = opts.StepLimit
	}
	if opts.Faults != nil {
		cfg.Faults = opts.Faults
	}
	if art.Opts.Toolchain == compiler.Emscripten {
		cfg.GrowGranularityPages = 256
	}
	// The loader's boundary: instantiate + start call cross JS↔Wasm.
	res, err := compiler.RunWasmPooled(art, cfg, opts.VMPool)
	if err != nil {
		return nil, err
	}
	cycles := res.Cycles + 2*p.CtxSwitch + float64(res.GrowOps)*p.CtxSwitch
	return &Measurement{
		ExecMS:   p.MSFromCycles(cycles),
		MemoryKB: float64(res.MemoryBytes+p.WasmMemOverhead) / 1024,
		Result:   res,
	}, nil
}

// MeasureJS runs the artifact's compiled JavaScript.
func (p *Profile) MeasureJS(art *compiler.Artifact) (*Measurement, error) {
	return p.MeasureJSWith(art, MeasureOptions{})
}

// MeasureJSWith measures the compiled JavaScript under per-run engine
// overrides.
func (p *Profile) MeasureJSWith(art *compiler.Artifact, opts MeasureOptions) (*Measurement, error) {
	cfg := p.JS
	if opts.DisableJIT {
		cfg.JITEnabled = false
	}
	if opts.StepLimit != 0 {
		cfg.StepLimit = opts.StepLimit
	}
	if opts.Faults != nil {
		cfg.Faults = opts.Faults
	}
	res, err := compiler.RunJS(art, cfg)
	if err != nil {
		return nil, err
	}
	return &Measurement{
		ExecMS:   p.MSFromCycles(res.Cycles),
		MemoryKB: float64(res.MemoryBytes) / 1024,
		Result:   res,
	}, nil
}

// MeasureJSSource runs a hand-written JavaScript program (the §4.6 manual
// benchmarks and real-world applications).
func (p *Profile) MeasureJSSource(src string) (*Measurement, error) {
	vm := jsvm.New(p.JS)
	if _, err := vm.Run(src); err != nil {
		return nil, err
	}
	m := &Measurement{
		ExecMS:   p.MSFromCycles(vm.Cycles()),
		MemoryKB: float64(vm.PeakHeapBytes()) / 1024,
	}
	res := &compiler.Result{Cycles: vm.Cycles(), Steps: vm.Steps(), MemoryBytes: vm.PeakHeapBytes()}
	for _, o := range vm.Output {
		res.Output = append(res.Output, toCodegenEvent(o))
	}
	m.Result = res
	return m, nil
}

// NewJSVM exposes a configured engine for callers that need custom host
// bindings (the real-world application harnesses).
func (p *Profile) NewJSVM() *jsvm.VM { return jsvm.New(p.JS) }

// CtxSwitchNS measures the §4.5 context-switch microbenchmark: the time for
// one Wasm↔JS round trip, in nanoseconds of virtual time.
func (p *Profile) CtxSwitchNS() float64 {
	return p.MSFromCycles(2*p.CtxSwitch) * 1e6
}
