package wasm

import "fmt"

// ValType is a WebAssembly value type, encoded as in the binary format.
type ValType byte

// The four WebAssembly 1.0 value types.
const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
	F32 ValType = 0x7D
	F64 ValType = 0x7C
)

// String returns the WAT name of the value type.
func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("valtype(0x%02x)", byte(t))
}

// Valid reports whether t is one of the four value types.
func (t ValType) Valid() bool {
	return t == I32 || t == I64 || t == F32 || t == F64
}

// BlockNone is the block type of a block that yields no value.
const BlockNone int32 = -0x40

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports whether two signatures are identical.
func (ft FuncType) Equal(other FuncType) bool {
	if len(ft.Params) != len(other.Params) || len(ft.Results) != len(other.Results) {
		return false
	}
	for i, p := range ft.Params {
		if p != other.Params[i] {
			return false
		}
	}
	for i, r := range ft.Results {
		if r != other.Results[i] {
			return false
		}
	}
	return true
}

// String renders the signature in WAT parameter/result form.
func (ft FuncType) String() string {
	s := "(func"
	for _, p := range ft.Params {
		s += " (param " + p.String() + ")"
	}
	for _, r := range ft.Results {
		s += " (result " + r.String() + ")"
	}
	return s + ")"
}

// Instr is a single decoded instruction. Structured control instructions
// (block/loop/if/else/end) appear inline in a body; the VM resolves them to
// jump targets before execution.
type Instr struct {
	Op Opcode
	// A holds the primary immediate: local/global/function index, label
	// depth, or memory alignment for loads/stores.
	A uint32
	// B holds the secondary immediate: the byte offset for loads/stores.
	B uint32
	// Val holds constant payloads (i32/i64 values, f32/f64 bit patterns)
	// as raw 64-bit values.
	Val int64
	// BlockType is the result type of block/loop/if: BlockNone or a ValType.
	BlockType int32
	// Targets holds the br_table label vector; A holds the default label.
	Targets []uint32
}

// Function is a defined (non-imported) function.
type Function struct {
	Type   uint32 // index into Module.Types
	Locals []ValType
	Body   []Instr
	Name   string // optional, emitted into the custom name section
}

// Import is an imported function. Only function imports are modeled; the
// study's modules import host hooks (e.g. the JS boundary used by Cheerp's
// memory.grow path and the timer).
type Import struct {
	Module string
	Field  string
	Type   uint32 // index into Module.Types
}

// Export is an exported module item.
type Export struct {
	Name string
	Kind ExportKind
	Idx  uint32
}

// ExportKind discriminates exported items.
type ExportKind byte

// Export kinds (binary-format encoding).
const (
	ExportFunc   ExportKind = 0
	ExportMemory ExportKind = 2
	ExportGlobal ExportKind = 3
)

// MemType declares the linear memory limits in 64 KiB pages.
type MemType struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// Global is a module global with a constant initializer.
type Global struct {
	Type    ValType
	Mutable bool
	// Init is the constant initializer value (raw bits for floats).
	Init int64
	Name string
}

// DataSegment is an active data segment copied into memory at instantiation.
type DataSegment struct {
	Offset uint32
	Bytes  []byte
}

// Module is a decoded or constructed WebAssembly module.
type Module struct {
	Types   []FuncType
	Imports []Import
	Funcs   []Function
	Mem     *MemType
	Globals []Global
	Exports []Export
	Data    []DataSegment
	Name    string
}

// NumImports returns the number of imported functions; defined function
// index space starts after them.
func (m *Module) NumImports() int { return len(m.Imports) }

// FuncTypeOf returns the signature of the function at index idx in the
// combined (imports-first) function index space.
func (m *Module) FuncTypeOf(idx uint32) (FuncType, error) {
	n := uint32(len(m.Imports))
	switch {
	case idx < n:
		ti := m.Imports[idx].Type
		if int(ti) >= len(m.Types) {
			return FuncType{}, fmt.Errorf("import %d: type index %d out of range", idx, ti)
		}
		return m.Types[ti], nil
	case idx-n < uint32(len(m.Funcs)):
		ti := m.Funcs[idx-n].Type
		if int(ti) >= len(m.Types) {
			return FuncType{}, fmt.Errorf("func %d: type index %d out of range", idx, ti)
		}
		return m.Types[ti], nil
	default:
		return FuncType{}, fmt.Errorf("function index %d out of range", idx)
	}
}

// ExportedFunc resolves an exported function by name, returning its index in
// the combined function index space.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExportFunc && e.Name == name {
			return e.Idx, true
		}
	}
	return 0, false
}

// AddType interns a function type, returning its index.
func (m *Module) AddType(ft FuncType) uint32 {
	for i, t := range m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, ft)
	return uint32(len(m.Types) - 1)
}

// StaticInstrCount returns the total number of instructions across all
// defined function bodies. The study uses it as a code-shape metric.
func (m *Module) StaticInstrCount() int {
	n := 0
	for i := range m.Funcs {
		n += len(m.Funcs[i].Body)
	}
	return n
}
