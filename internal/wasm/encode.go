package wasm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary-format section ids.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secCode     = 10
	secData     = 11
)

var magicAndVersion = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// Encode serializes the module into the WebAssembly binary format.
func Encode(m *Module) ([]byte, error) {
	out := append([]byte(nil), magicAndVersion...)

	// Type section.
	if len(m.Types) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Types)))
		for _, t := range m.Types {
			sec = append(sec, 0x60)
			sec = appendUleb(sec, uint64(len(t.Params)))
			for _, p := range t.Params {
				sec = append(sec, byte(p))
			}
			sec = appendUleb(sec, uint64(len(t.Results)))
			for _, r := range t.Results {
				sec = append(sec, byte(r))
			}
		}
		out = appendSection(out, secType, sec)
	}

	// Import section.
	if len(m.Imports) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Imports)))
		for _, imp := range m.Imports {
			sec = appendName(sec, imp.Module)
			sec = appendName(sec, imp.Field)
			sec = append(sec, 0x00) // func import
			sec = appendUleb(sec, uint64(imp.Type))
		}
		out = appendSection(out, secImport, sec)
	}

	// Function section.
	if len(m.Funcs) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Funcs)))
		for i := range m.Funcs {
			sec = appendUleb(sec, uint64(m.Funcs[i].Type))
		}
		out = appendSection(out, secFunction, sec)
	}

	// Memory section.
	if m.Mem != nil {
		var sec []byte
		sec = appendUleb(sec, 1)
		if m.Mem.HasMax {
			sec = append(sec, 0x01)
			sec = appendUleb(sec, uint64(m.Mem.Min))
			sec = appendUleb(sec, uint64(m.Mem.Max))
		} else {
			sec = append(sec, 0x00)
			sec = appendUleb(sec, uint64(m.Mem.Min))
		}
		out = appendSection(out, secMemory, sec)
	}

	// Global section.
	if len(m.Globals) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Globals)))
		for _, g := range m.Globals {
			sec = append(sec, byte(g.Type))
			if g.Mutable {
				sec = append(sec, 0x01)
			} else {
				sec = append(sec, 0x00)
			}
			var err error
			sec, err = appendConstExpr(sec, g.Type, g.Init)
			if err != nil {
				return nil, err
			}
		}
		out = appendSection(out, secGlobal, sec)
	}

	// Export section.
	if len(m.Exports) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Exports)))
		for _, e := range m.Exports {
			sec = appendName(sec, e.Name)
			sec = append(sec, byte(e.Kind))
			sec = appendUleb(sec, uint64(e.Idx))
		}
		out = appendSection(out, secExport, sec)
	}

	// Code section.
	if len(m.Funcs) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Funcs)))
		for i := range m.Funcs {
			body, err := encodeBody(&m.Funcs[i])
			if err != nil {
				return nil, fmt.Errorf("func %d (%s): %w", i, m.Funcs[i].Name, err)
			}
			sec = appendUleb(sec, uint64(len(body)))
			sec = append(sec, body...)
		}
		out = appendSection(out, secCode, sec)
	}

	// Data section.
	if len(m.Data) > 0 {
		var sec []byte
		sec = appendUleb(sec, uint64(len(m.Data)))
		for _, d := range m.Data {
			sec = append(sec, 0x00) // active, memory 0
			sec = append(sec, byte(OpI32Const))
			sec = appendSleb(sec, int64(int32(d.Offset)))
			sec = append(sec, byte(OpEnd))
			sec = appendUleb(sec, uint64(len(d.Bytes)))
			sec = append(sec, d.Bytes...)
		}
		out = appendSection(out, secData, sec)
	}

	// Custom name section (module + function names) for WAT round-trips.
	if nameSec := encodeNameSection(m); nameSec != nil {
		out = appendSection(out, secCustom, nameSec)
	}
	return out, nil
}

func appendSection(out []byte, id byte, body []byte) []byte {
	out = append(out, id)
	out = appendUleb(out, uint64(len(body)))
	return append(out, body...)
}

func appendName(dst []byte, s string) []byte {
	dst = appendUleb(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendConstExpr(dst []byte, t ValType, raw int64) ([]byte, error) {
	switch t {
	case I32:
		dst = append(dst, byte(OpI32Const))
		dst = appendSleb(dst, int64(int32(raw)))
	case I64:
		dst = append(dst, byte(OpI64Const))
		dst = appendSleb(dst, raw)
	case F32:
		dst = append(dst, byte(OpF32Const))
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(raw))
		dst = append(dst, b[:]...)
	case F64:
		dst = append(dst, byte(OpF64Const))
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(raw))
		dst = append(dst, b[:]...)
	default:
		return nil, fmt.Errorf("bad global type %v", t)
	}
	return append(dst, byte(OpEnd)), nil
}

// encodeBody serializes locals plus the instruction sequence. The body's
// final instruction must be the implicit End; the builder guarantees it.
func encodeBody(f *Function) ([]byte, error) {
	var body []byte
	// Run-length encode locals.
	type run struct {
		t ValType
		n uint32
	}
	var runs []run
	for _, l := range f.Locals {
		if len(runs) > 0 && runs[len(runs)-1].t == l {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{l, 1})
		}
	}
	body = appendUleb(body, uint64(len(runs)))
	for _, r := range runs {
		body = appendUleb(body, uint64(r.n))
		body = append(body, byte(r.t))
	}
	for i := range f.Body {
		var err error
		body, err = appendInstr(body, &f.Body[i])
		if err != nil {
			return nil, fmt.Errorf("instr %d: %w", i, err)
		}
	}
	return body, nil
}

func appendInstr(dst []byte, in *Instr) ([]byte, error) {
	if !in.Op.Valid() {
		return nil, fmt.Errorf("invalid opcode 0x%02x", byte(in.Op))
	}
	dst = append(dst, byte(in.Op))
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		dst = appendSleb(dst, int64(in.BlockType))
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		dst = appendUleb(dst, uint64(in.A))
	case OpBrTable:
		dst = appendUleb(dst, uint64(len(in.Targets)))
		for _, t := range in.Targets {
			dst = appendUleb(dst, uint64(t))
		}
		dst = appendUleb(dst, uint64(in.A)) // default label
	case OpMemorySize, OpMemoryGrow:
		dst = append(dst, 0x00)
	case OpI32Const:
		dst = appendSleb(dst, int64(int32(in.Val)))
	case OpI64Const:
		dst = appendSleb(dst, in.Val)
	case OpF32Const:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(in.Val))
		dst = append(dst, b[:]...)
	case OpF64Const:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(in.Val))
		dst = append(dst, b[:]...)
	default:
		if isMemAccess(in.Op) {
			dst = appendUleb(dst, uint64(in.A)) // align
			dst = appendUleb(dst, uint64(in.B)) // offset
		}
	}
	return dst, nil
}

func isMemAccess(op Opcode) bool {
	return op >= OpI32Load && op <= OpI64Store32
}

func encodeNameSection(m *Module) []byte {
	var funcNames []byte
	count := 0
	for i := range m.Funcs {
		if m.Funcs[i].Name == "" {
			continue
		}
		idx := uint32(len(m.Imports)) + uint32(i)
		funcNames = appendUleb(funcNames, uint64(idx))
		funcNames = appendName(funcNames, m.Funcs[i].Name)
		count++
	}
	if count == 0 && m.Name == "" {
		return nil
	}
	var sec []byte
	sec = appendName(sec, "name")
	if m.Name != "" {
		var sub []byte
		sub = appendName(sub, m.Name)
		sec = append(sec, 0x00)
		sec = appendUleb(sec, uint64(len(sub)))
		sec = append(sec, sub...)
	}
	if count > 0 {
		var sub []byte
		sub = appendUleb(sub, uint64(count))
		sub = append(sub, funcNames...)
		sec = append(sec, 0x01)
		sec = appendUleb(sec, uint64(len(sub)))
		sec = append(sec, sub...)
	}
	return sec
}

// F32Bits packs a float32 into the raw Instr.Val representation.
func F32Bits(f float32) int64 { return int64(math.Float32bits(f)) }

// F64Bits packs a float64 into the raw Instr.Val representation.
func F64Bits(f float64) int64 { return int64(math.Float64bits(f)) }
