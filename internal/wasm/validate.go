package wasm

import "fmt"

// Validate type-checks the module per the core specification's validation
// algorithm: every function body must respect stack discipline, all indices
// must be in range, and control structure must nest correctly.
func Validate(m *Module) error {
	for i, imp := range m.Imports {
		if int(imp.Type) >= len(m.Types) {
			return fmt.Errorf("wasm: import %d (%s.%s): type index out of range", i, imp.Module, imp.Field)
		}
	}
	for i := range m.Funcs {
		if int(m.Funcs[i].Type) >= len(m.Types) {
			return fmt.Errorf("wasm: func %d: type index out of range", i)
		}
	}
	for _, e := range m.Exports {
		switch e.Kind {
		case ExportFunc:
			if _, err := m.FuncTypeOf(e.Idx); err != nil {
				return fmt.Errorf("wasm: export %q: %w", e.Name, err)
			}
		case ExportGlobal:
			if int(e.Idx) >= len(m.Globals) {
				return fmt.Errorf("wasm: export %q: global index out of range", e.Name)
			}
		case ExportMemory:
			if m.Mem == nil || e.Idx != 0 {
				return fmt.Errorf("wasm: export %q: no such memory", e.Name)
			}
		default:
			return fmt.Errorf("wasm: export %q: bad kind %d", e.Name, e.Kind)
		}
	}
	if m.Mem != nil && m.Mem.HasMax && m.Mem.Max < m.Mem.Min {
		return fmt.Errorf("wasm: memory max %d < min %d", m.Mem.Max, m.Mem.Min)
	}
	for _, d := range m.Data {
		if m.Mem == nil {
			return fmt.Errorf("wasm: data segment without memory")
		}
		_ = d
	}
	for i := range m.Funcs {
		if err := validateBody(m, &m.Funcs[i]); err != nil {
			name := m.Funcs[i].Name
			if name == "" {
				name = fmt.Sprintf("#%d", i)
			}
			return fmt.Errorf("wasm: func %s: %w", name, err)
		}
	}
	return nil
}

// unknownType marks a stack slot of polymorphic type in unreachable code.
const unknownType ValType = 0

type ctrlFrame struct {
	op          Opcode // OpBlock, OpLoop, OpIf, or OpEnd for the function frame
	blockType   int32
	startHeight int
	unreachable bool
}

type validator struct {
	m      *Module
	f      *Function
	params []ValType
	stack  []ValType
	ctrls  []ctrlFrame
}

func validateBody(m *Module, f *Function) error {
	ft := m.Types[f.Type]
	v := &validator{m: m, f: f, params: ft.Params}
	resultBT := BlockNone
	if len(ft.Results) == 1 {
		resultBT = int32(ft.Results[0])
	}
	v.ctrls = append(v.ctrls, ctrlFrame{op: OpEnd, blockType: resultBT})
	for pc := range f.Body {
		if err := v.step(&f.Body[pc]); err != nil {
			return fmt.Errorf("instr %d (%v): %w", pc, f.Body[pc].Op, err)
		}
	}
	if len(v.ctrls) != 0 {
		return fmt.Errorf("unbalanced control structure: %d frames left open", len(v.ctrls))
	}
	return nil
}

func (v *validator) push(t ValType) { v.stack = append(v.stack, t) }

func (v *validator) pop(want ValType) error {
	fr := &v.ctrls[len(v.ctrls)-1]
	if len(v.stack) == fr.startHeight {
		if fr.unreachable {
			return nil // polymorphic stack
		}
		return fmt.Errorf("stack underflow, want %v", want)
	}
	got := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	if got != want && got != unknownType && want != unknownType {
		return fmt.Errorf("type mismatch: want %v, got %v", want, got)
	}
	return nil
}

func (v *validator) popAny() (ValType, error) {
	fr := &v.ctrls[len(v.ctrls)-1]
	if len(v.stack) == fr.startHeight {
		if fr.unreachable {
			return unknownType, nil
		}
		return 0, fmt.Errorf("stack underflow")
	}
	got := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return got, nil
}

func (v *validator) localType(idx uint32) (ValType, error) {
	if int(idx) < len(v.params) {
		return v.params[idx], nil
	}
	li := int(idx) - len(v.params)
	if li < len(v.f.Locals) {
		return v.f.Locals[li], nil
	}
	return 0, fmt.Errorf("local index %d out of range", idx)
}

func (v *validator) labelArity(depth uint32) (ValType, bool, error) {
	if int(depth) >= len(v.ctrls) {
		return 0, false, fmt.Errorf("branch depth %d out of range", depth)
	}
	fr := v.ctrls[len(v.ctrls)-1-int(depth)]
	// Branches to a loop target its beginning (no values); branches to
	// block/if/function-end carry the block result.
	if fr.op == OpLoop || fr.blockType == BlockNone {
		return 0, false, nil
	}
	return ValType(byte(fr.blockType)), true, nil
}

func (v *validator) markUnreachable() {
	fr := &v.ctrls[len(v.ctrls)-1]
	v.stack = v.stack[:fr.startHeight]
	fr.unreachable = true
}

func (v *validator) step(in *Instr) error {
	switch in.Op {
	case OpNop:
	case OpUnreachable:
		v.markUnreachable()
	case OpBlock, OpLoop, OpIf:
		if in.Op == OpIf {
			if err := v.pop(I32); err != nil {
				return err
			}
		}
		if in.BlockType != BlockNone && !ValType(byte(in.BlockType)).Valid() {
			return fmt.Errorf("bad block type")
		}
		v.ctrls = append(v.ctrls, ctrlFrame{op: in.Op, blockType: in.BlockType, startHeight: len(v.stack)})
	case OpElse:
		if len(v.ctrls) < 2 || v.ctrls[len(v.ctrls)-1].op != OpIf {
			return fmt.Errorf("else without if")
		}
		fr := &v.ctrls[len(v.ctrls)-1]
		if err := v.endFrame(fr); err != nil {
			return err
		}
		// Reset for the else arm.
		v.stack = v.stack[:fr.startHeight]
		fr.unreachable = false
		fr.op = OpElse
	case OpEnd:
		if len(v.ctrls) == 0 {
			return fmt.Errorf("end without open frame")
		}
		fr := &v.ctrls[len(v.ctrls)-1]
		if fr.op == OpIf && fr.blockType != BlockNone {
			return fmt.Errorf("if with result type requires else")
		}
		if err := v.endFrame(fr); err != nil {
			return err
		}
		bt := fr.blockType
		v.stack = v.stack[:fr.startHeight]
		v.ctrls = v.ctrls[:len(v.ctrls)-1]
		if bt != BlockNone {
			v.push(ValType(byte(bt)))
		}
	case OpBr:
		t, hasVal, err := v.labelArity(in.A)
		if err != nil {
			return err
		}
		if hasVal {
			if err := v.pop(t); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpBrIf:
		if err := v.pop(I32); err != nil {
			return err
		}
		t, hasVal, err := v.labelArity(in.A)
		if err != nil {
			return err
		}
		if hasVal {
			if err := v.pop(t); err != nil {
				return err
			}
			v.push(t)
		}
	case OpBrTable:
		if err := v.pop(I32); err != nil {
			return err
		}
		dt, dHas, err := v.labelArity(in.A)
		if err != nil {
			return err
		}
		for _, tgt := range in.Targets {
			t, has, err := v.labelArity(tgt)
			if err != nil {
				return err
			}
			if has != dHas || (has && t != dt) {
				return fmt.Errorf("br_table label arity mismatch")
			}
		}
		if dHas {
			if err := v.pop(dt); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpReturn:
		ft := v.m.Types[v.f.Type]
		if len(ft.Results) == 1 {
			if err := v.pop(ft.Results[0]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpCall:
		ft, err := v.m.FuncTypeOf(in.A)
		if err != nil {
			return err
		}
		for i := len(ft.Params) - 1; i >= 0; i-- {
			if err := v.pop(ft.Params[i]); err != nil {
				return err
			}
		}
		for _, r := range ft.Results {
			v.push(r)
		}
	case OpDrop:
		if _, err := v.popAny(); err != nil {
			return err
		}
	case OpSelect:
		if err := v.pop(I32); err != nil {
			return err
		}
		t1, err := v.popAny()
		if err != nil {
			return err
		}
		t2, err := v.popAny()
		if err != nil {
			return err
		}
		if t1 != t2 && t1 != unknownType && t2 != unknownType {
			return fmt.Errorf("select operand types differ: %v vs %v", t1, t2)
		}
		if t1 == unknownType {
			t1 = t2
		}
		v.push(t1)
	case OpLocalGet:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		v.push(t)
	case OpLocalSet:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		return v.pop(t)
	case OpLocalTee:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		if err := v.pop(t); err != nil {
			return err
		}
		v.push(t)
	case OpGlobalGet:
		if int(in.A) >= len(v.m.Globals) {
			return fmt.Errorf("global index %d out of range", in.A)
		}
		v.push(v.m.Globals[in.A].Type)
	case OpGlobalSet:
		if int(in.A) >= len(v.m.Globals) {
			return fmt.Errorf("global index %d out of range", in.A)
		}
		if !v.m.Globals[in.A].Mutable {
			return fmt.Errorf("global %d is immutable", in.A)
		}
		return v.pop(v.m.Globals[in.A].Type)
	case OpMemorySize:
		if v.m.Mem == nil {
			return fmt.Errorf("no memory")
		}
		v.push(I32)
	case OpMemoryGrow:
		if v.m.Mem == nil {
			return fmt.Errorf("no memory")
		}
		if err := v.pop(I32); err != nil {
			return err
		}
		v.push(I32)
	case OpI32Const:
		v.push(I32)
	case OpI64Const:
		v.push(I64)
	case OpF32Const:
		v.push(F32)
	case OpF64Const:
		v.push(F64)
	default:
		if isMemAccess(in.Op) {
			return v.stepMemAccess(in)
		}
		return v.stepNumeric(in)
	}
	return nil
}

func (v *validator) endFrame(fr *ctrlFrame) error {
	if fr.blockType != BlockNone {
		if err := v.pop(ValType(byte(fr.blockType))); err != nil {
			return err
		}
	}
	if len(v.stack) != fr.startHeight && !fr.unreachable {
		return fmt.Errorf("%d values left on stack at block end", len(v.stack)-fr.startHeight)
	}
	return nil
}

// memAccessInfo returns (result/operand type, natural alignment exponent,
// isStore) for a memory instruction.
func memAccessInfo(op Opcode) (t ValType, natural uint32, store bool) {
	switch op {
	case OpI32Load, OpI32Store:
		return I32, 2, op == OpI32Store
	case OpI64Load, OpI64Store:
		return I64, 3, op == OpI64Store
	case OpF32Load, OpF32Store:
		return F32, 2, op == OpF32Store
	case OpF64Load, OpF64Store:
		return F64, 3, op == OpF64Store
	case OpI32Load8S, OpI32Load8U, OpI32Store8:
		return I32, 0, op == OpI32Store8
	case OpI32Load16S, OpI32Load16U, OpI32Store16:
		return I32, 1, op == OpI32Store16
	case OpI64Load8S, OpI64Load8U, OpI64Store8:
		return I64, 0, op == OpI64Store8
	case OpI64Load16S, OpI64Load16U, OpI64Store16:
		return I64, 1, op == OpI64Store16
	case OpI64Load32S, OpI64Load32U, OpI64Store32:
		return I64, 2, op == OpI64Store32
	}
	return 0, 0, false
}

func (v *validator) stepMemAccess(in *Instr) error {
	if v.m.Mem == nil {
		return fmt.Errorf("no memory")
	}
	t, natural, store := memAccessInfo(in.Op)
	if in.A > natural {
		return fmt.Errorf("alignment 2^%d exceeds natural alignment 2^%d", in.A, natural)
	}
	if store {
		if err := v.pop(t); err != nil {
			return err
		}
		return v.pop(I32) // address
	}
	if err := v.pop(I32); err != nil {
		return err
	}
	v.push(t)
	return nil
}

// numericSig describes operand and result types of a plain numeric opcode.
type numericSig struct {
	in  []ValType
	out ValType
}

func sig1(a, out ValType) numericSig    { return numericSig{[]ValType{a}, out} }
func sig2(a, b, out ValType) numericSig { return numericSig{[]ValType{a, b}, out} }

var numericSigs = buildNumericSigs()

func buildNumericSigs() map[Opcode]numericSig {
	m := map[Opcode]numericSig{
		OpI32Eqz: sig1(I32, I32),
		OpI64Eqz: sig1(I64, I32),
	}
	for op := OpI32Eq; op <= OpI32GeU; op++ {
		m[op] = sig2(I32, I32, I32)
	}
	for op := OpI64Eq; op <= OpI64GeU; op++ {
		m[op] = sig2(I64, I64, I32)
	}
	for op := OpF32Eq; op <= OpF32Ge; op++ {
		m[op] = sig2(F32, F32, I32)
	}
	for op := OpF64Eq; op <= OpF64Ge; op++ {
		m[op] = sig2(F64, F64, I32)
	}
	for op := OpI32Clz; op <= OpI32Popcnt; op++ {
		m[op] = sig1(I32, I32)
	}
	for op := OpI32Add; op <= OpI32Rotr; op++ {
		m[op] = sig2(I32, I32, I32)
	}
	for op := OpI64Clz; op <= OpI64Popcnt; op++ {
		m[op] = sig1(I64, I64)
	}
	for op := OpI64Add; op <= OpI64Rotr; op++ {
		m[op] = sig2(I64, I64, I64)
	}
	for op := OpF32Abs; op <= OpF32Sqrt; op++ {
		m[op] = sig1(F32, F32)
	}
	for op := OpF32Add; op <= OpF32Copysign; op++ {
		m[op] = sig2(F32, F32, F32)
	}
	for op := OpF64Abs; op <= OpF64Sqrt; op++ {
		m[op] = sig1(F64, F64)
	}
	for op := OpF64Add; op <= OpF64Copysign; op++ {
		m[op] = sig2(F64, F64, F64)
	}
	m[OpI32WrapI64] = sig1(I64, I32)
	m[OpI32TruncF32S] = sig1(F32, I32)
	m[OpI32TruncF32U] = sig1(F32, I32)
	m[OpI32TruncF64S] = sig1(F64, I32)
	m[OpI32TruncF64U] = sig1(F64, I32)
	m[OpI64ExtendI32S] = sig1(I32, I64)
	m[OpI64ExtendI32U] = sig1(I32, I64)
	m[OpI64TruncF32S] = sig1(F32, I64)
	m[OpI64TruncF32U] = sig1(F32, I64)
	m[OpI64TruncF64S] = sig1(F64, I64)
	m[OpI64TruncF64U] = sig1(F64, I64)
	m[OpF32ConvertI32S] = sig1(I32, F32)
	m[OpF32ConvertI32U] = sig1(I32, F32)
	m[OpF32ConvertI64S] = sig1(I64, F32)
	m[OpF32ConvertI64U] = sig1(I64, F32)
	m[OpF32DemoteF64] = sig1(F64, F32)
	m[OpF64ConvertI32S] = sig1(I32, F64)
	m[OpF64ConvertI32U] = sig1(I32, F64)
	m[OpF64ConvertI64S] = sig1(I64, F64)
	m[OpF64ConvertI64U] = sig1(I64, F64)
	m[OpF64PromoteF32] = sig1(F32, F64)
	m[OpI32ReinterpretF32] = sig1(F32, I32)
	m[OpI64ReinterpretF64] = sig1(F64, I64)
	m[OpF32ReinterpretI32] = sig1(I32, F32)
	m[OpF64ReinterpretI64] = sig1(I64, F64)
	return m
}

func (v *validator) stepNumeric(in *Instr) error {
	sig, ok := numericSigs[in.Op]
	if !ok {
		return fmt.Errorf("unhandled opcode")
	}
	for i := len(sig.in) - 1; i >= 0; i-- {
		if err := v.pop(sig.in[i]); err != nil {
			return err
		}
	}
	v.push(sig.out)
	return nil
}
