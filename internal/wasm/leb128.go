package wasm

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when the input ends inside an LEB128 value or a
// declared region.
var ErrTruncated = errors.New("wasm: truncated input")

// appendUleb appends the unsigned LEB128 encoding of v to dst.
func appendUleb(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if v == 0 {
			return dst
		}
	}
}

// appendSleb appends the signed LEB128 encoding of v to dst.
func appendSleb(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// readUleb decodes an unsigned LEB128 value of at most maxBits bits from
// buf[off:], returning the value and the new offset.
func readUleb(buf []byte, off int, maxBits uint) (uint64, int, error) {
	var v uint64
	var shift uint
	for {
		if off >= len(buf) {
			return 0, off, ErrTruncated
		}
		b := buf[off]
		off++
		v |= uint64(b&0x7F) << shift
		if b&0x80 == 0 {
			break
		}
		shift += 7
		if shift >= maxBits+7 {
			return 0, off, fmt.Errorf("wasm: uleb128 overflows %d bits", maxBits)
		}
	}
	if maxBits < 64 && v >= 1<<maxBits {
		return 0, off, fmt.Errorf("wasm: uleb128 value %d overflows %d bits", v, maxBits)
	}
	return v, off, nil
}

// readSleb decodes a signed LEB128 value of at most maxBits bits from
// buf[off:], returning the value and the new offset.
func readSleb(buf []byte, off int, maxBits uint) (int64, int, error) {
	var v int64
	var shift uint
	for {
		if off >= len(buf) {
			return 0, off, ErrTruncated
		}
		b := buf[off]
		off++
		v |= int64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			break
		}
		if shift >= maxBits+7 {
			return 0, off, fmt.Errorf("wasm: sleb128 overflows %d bits", maxBits)
		}
	}
	return v, off, nil
}
