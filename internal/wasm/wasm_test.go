package wasm

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// testModule builds a small valid module: an add function, a loop-based
// accumulator, a global, memory with a data segment, and exports.
func testModule() *Module {
	m := &Module{Name: "fixture"}
	tAdd := m.AddType(FuncType{Params: []ValType{I32, I32}, Results: []ValType{I32}})
	tLoop := m.AddType(FuncType{Params: []ValType{I32}, Results: []ValType{I64}})
	tHost := m.AddType(FuncType{Params: []ValType{F64}, Results: nil})
	m.Imports = append(m.Imports, Import{Module: "env", Field: "report", Type: tHost})
	m.Mem = &MemType{Min: 2, Max: 64, HasMax: true}
	m.Globals = append(m.Globals, Global{Type: I32, Mutable: true, Init: 1024, Name: "heap"})
	m.Globals = append(m.Globals, Global{Type: F64, Mutable: false, Init: F64Bits(3.5)})

	m.Funcs = append(m.Funcs, Function{
		Type: tAdd,
		Name: "add",
		Body: []Instr{
			{Op: OpLocalGet, A: 0},
			{Op: OpLocalGet, A: 1},
			{Op: OpI32Add},
			{Op: OpEnd},
		},
	})
	// sum(n): for (i=0; i<n; i++) acc += i; return acc (as i64)
	m.Funcs = append(m.Funcs, Function{
		Type:   tLoop,
		Name:   "sum",
		Locals: []ValType{I32, I64}, // i, acc
		Body: []Instr{
			{Op: OpBlock, BlockType: BlockNone},
			{Op: OpLoop, BlockType: BlockNone},
			{Op: OpLocalGet, A: 1},
			{Op: OpLocalGet, A: 0},
			{Op: OpI32GeS},
			{Op: OpBrIf, A: 1},
			{Op: OpLocalGet, A: 2},
			{Op: OpLocalGet, A: 1},
			{Op: OpI64ExtendI32S},
			{Op: OpI64Add},
			{Op: OpLocalSet, A: 2},
			{Op: OpLocalGet, A: 1},
			{Op: OpI32Const, Val: 1},
			{Op: OpI32Add},
			{Op: OpLocalSet, A: 1},
			{Op: OpBr, A: 0},
			{Op: OpEnd},
			{Op: OpEnd},
			{Op: OpLocalGet, A: 2},
			{Op: OpEnd},
		},
	})
	fAdd := uint32(len(m.Imports)) // index of "add"
	m.Exports = append(m.Exports,
		Export{Name: "add", Kind: ExportFunc, Idx: fAdd},
		Export{Name: "sum", Kind: ExportFunc, Idx: fAdd + 1},
		Export{Name: "memory", Kind: ExportMemory, Idx: 0},
	)
	m.Data = append(m.Data, DataSegment{Offset: 16, Bytes: []byte("hello wasm")})
	return m
}

func TestValidateFixture(t *testing.T) {
	if err := Validate(testModule()); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testModule()
	bin, err := Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(bin[:8], magicAndVersion) {
		t.Fatalf("missing magic header")
	}
	m2, err := Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(m.Types, m2.Types) {
		t.Errorf("types differ: %v vs %v", m.Types, m2.Types)
	}
	if !reflect.DeepEqual(m.Imports, m2.Imports) {
		t.Errorf("imports differ")
	}
	if len(m2.Funcs) != len(m.Funcs) {
		t.Fatalf("func count differs: %d vs %d", len(m2.Funcs), len(m.Funcs))
	}
	for i := range m.Funcs {
		if m.Funcs[i].Name != m2.Funcs[i].Name {
			t.Errorf("func %d name: %q vs %q", i, m.Funcs[i].Name, m2.Funcs[i].Name)
		}
		if !reflect.DeepEqual(m.Funcs[i].Locals, m2.Funcs[i].Locals) {
			t.Errorf("func %d locals differ", i)
		}
		if !reflect.DeepEqual(m.Funcs[i].Body, m2.Funcs[i].Body) {
			t.Errorf("func %d body differs:\n%v\nvs\n%v", i, m.Funcs[i].Body, m2.Funcs[i].Body)
		}
	}
	if !reflect.DeepEqual(m.Exports, m2.Exports) {
		t.Errorf("exports differ")
	}
	if !reflect.DeepEqual(m.Data, m2.Data) {
		t.Errorf("data differs")
	}
	if m2.Mem == nil || *m2.Mem != *m.Mem {
		t.Errorf("memory type differs")
	}
	// Global names are not in the name section; compare values only.
	for i := range m.Globals {
		g, g2 := m.Globals[i], m2.Globals[i]
		if g.Type != g2.Type || g.Mutable != g2.Mutable || g.Init != g2.Init {
			t.Errorf("global %d differs: %+v vs %+v", i, g, g2)
		}
	}
	if m2.Name != m.Name {
		t.Errorf("module name: %q vs %q", m2.Name, m.Name)
	}
	// The decoded module must validate too.
	if err := Validate(m2); err != nil {
		t.Errorf("decoded module fails validation: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := testModule()
	a, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   {1, 2, 3, 4, 5, 6, 7, 8},
		"truncated":   magicAndVersion[:4],
		"bad section": append(append([]byte{}, magicAndVersion...), 99, 0),
		"trunc body":  append(append([]byte{}, magicAndVersion...), 1, 200),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestDecodeRejectsOutOfOrderSections(t *testing.T) {
	bin := append([]byte{}, magicAndVersion...)
	// Export section (7) then type section (1): out of order.
	bin = appendSection(bin, secExport, []byte{0})
	bin = appendSection(bin, secType, []byte{0})
	if _, err := Decode(bin); err == nil {
		t.Fatal("expected out-of-order section error")
	}
}

func TestValidatorRejections(t *testing.T) {
	mk := func(body []Instr, results []ValType) *Module {
		m := &Module{}
		ti := m.AddType(FuncType{Results: results})
		m.Funcs = append(m.Funcs, Function{Type: ti, Body: body})
		return m
	}
	cases := map[string]*Module{
		"stack underflow": mk([]Instr{{Op: OpI32Add}, {Op: OpDrop}, {Op: OpEnd}}, nil),
		"type mismatch": mk([]Instr{
			{Op: OpI32Const, Val: 1}, {Op: OpF64Const, Val: F64Bits(1)},
			{Op: OpI32Add}, {Op: OpDrop}, {Op: OpEnd}}, nil),
		"value left on stack": mk([]Instr{{Op: OpI32Const, Val: 1}, {Op: OpEnd}}, nil),
		"missing result":      mk([]Instr{{Op: OpEnd}}, []ValType{I32}),
		"bad local":           mk([]Instr{{Op: OpLocalGet, A: 9}, {Op: OpDrop}, {Op: OpEnd}}, nil),
		"bad branch depth":    mk([]Instr{{Op: OpBr, A: 5}, {Op: OpEnd}}, nil),
		"bad call index":      mk([]Instr{{Op: OpCall, A: 42}, {Op: OpEnd}}, nil),
		"else without if":     mk([]Instr{{Op: OpElse}, {Op: OpEnd}, {Op: OpEnd}}, nil),
		"memory without decl": mk([]Instr{
			{Op: OpI32Const, Val: 0}, {Op: OpI32Load, A: 2}, {Op: OpDrop}, {Op: OpEnd}}, nil),
	}
	for name, m := range cases {
		if err := Validate(m); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestValidatorAcceptsUnreachableCode(t *testing.T) {
	m := &Module{}
	ti := m.AddType(FuncType{Results: []ValType{I32}})
	// return; then dead code with arbitrary stack behavior.
	m.Funcs = append(m.Funcs, Function{Type: ti, Body: []Instr{
		{Op: OpI32Const, Val: 7},
		{Op: OpReturn},
		{Op: OpI32Add}, // polymorphic: ok in unreachable code
		{Op: OpEnd},
	}})
	if err := Validate(m); err != nil {
		t.Fatalf("unreachable code should validate: %v", err)
	}
}

func TestValidatorImmutableGlobal(t *testing.T) {
	m := &Module{Globals: []Global{{Type: I32, Mutable: false}}}
	ti := m.AddType(FuncType{})
	m.Funcs = append(m.Funcs, Function{Type: ti, Body: []Instr{
		{Op: OpI32Const, Val: 1}, {Op: OpGlobalSet, A: 0}, {Op: OpEnd},
	}})
	if err := Validate(m); err == nil {
		t.Fatal("expected immutable-global error")
	}
}

func TestValidatorBlockResults(t *testing.T) {
	m := &Module{}
	ti := m.AddType(FuncType{Results: []ValType{F64}})
	m.Funcs = append(m.Funcs, Function{Type: ti, Body: []Instr{
		{Op: OpI32Const, Val: 1},
		{Op: OpIf, BlockType: int32(F64)},
		{Op: OpF64Const, Val: F64Bits(1.5)},
		{Op: OpElse},
		{Op: OpF64Const, Val: F64Bits(2.5)},
		{Op: OpEnd},
		{Op: OpEnd},
	}})
	if err := Validate(m); err != nil {
		t.Fatalf("if-else with result should validate: %v", err)
	}
	// An if with a result type and no else must be rejected.
	m2 := &Module{}
	ti2 := m2.AddType(FuncType{Results: []ValType{I32}})
	m2.Funcs = append(m2.Funcs, Function{Type: ti2, Body: []Instr{
		{Op: OpI32Const, Val: 1},
		{Op: OpIf, BlockType: int32(I32)},
		{Op: OpI32Const, Val: 2},
		{Op: OpEnd},
		{Op: OpEnd},
	}})
	if err := Validate(m2); err == nil {
		t.Fatal("if-with-result without else should fail validation")
	}
}

func TestULEBRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		buf := appendUleb(nil, v)
		got, off, err := readUleb(buf, 0, 64)
		return err == nil && got == v && off == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSLEBRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		buf := appendSleb(nil, v)
		got, off, err := readSleb(buf, 0, 64)
		return err == nil && got == v && off == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// 32-bit boundary values.
	for _, v := range []int64{0, 1, -1, 63, 64, -64, -65, math.MaxInt32, math.MinInt32} {
		buf := appendSleb(nil, v)
		got, _, err := readSleb(buf, 0, 64)
		if err != nil || got != v {
			t.Errorf("sleb(%d): got %d, err %v", v, got, err)
		}
	}
}

func TestInstrEncodeRoundTripQuick(t *testing.T) {
	// Property: any const/local instruction round-trips through the body codec.
	f := func(val int64, idx uint16, pick uint8) bool {
		var in Instr
		switch pick % 5 {
		case 0:
			in = Instr{Op: OpI32Const, Val: int64(int32(val))}
		case 1:
			in = Instr{Op: OpI64Const, Val: val}
		case 2:
			in = Instr{Op: OpF64Const, Val: val}
		case 3:
			in = Instr{Op: OpLocalGet, A: uint32(idx)}
		case 4:
			in = Instr{Op: OpI64Store, A: 3, B: uint32(idx)}
		}
		buf, err := appendInstr(nil, &in)
		if err != nil {
			return false
		}
		got, off, err := decodeInstr(buf, 0)
		return err == nil && off == len(buf) && reflect.DeepEqual(got, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWATRendering(t *testing.T) {
	m := testModule()
	wat := WAT(m)
	for _, want := range []string{
		"(module $fixture", "(func $add", "(func $sum", "loop",
		"i64.extend_i32_s", "local.get", "(memory 2 64)",
		`(export "add" (func 1))`, "(data (i32.const 16)",
	} {
		if !bytes.Contains([]byte(wat), []byte(want)) {
			t.Errorf("WAT missing %q:\n%s", want, wat)
		}
	}
}

func TestFuncTypeOf(t *testing.T) {
	m := testModule()
	ft, err := m.FuncTypeOf(0) // import
	if err != nil || len(ft.Params) != 1 || ft.Params[0] != F64 {
		t.Errorf("import type: %v %v", ft, err)
	}
	ft, err = m.FuncTypeOf(1) // add
	if err != nil || len(ft.Params) != 2 {
		t.Errorf("add type: %v %v", ft, err)
	}
	if _, err := m.FuncTypeOf(99); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestExportedFunc(t *testing.T) {
	m := testModule()
	if idx, ok := m.ExportedFunc("sum"); !ok || idx != 2 {
		t.Errorf("sum: got %d %v", idx, ok)
	}
	if _, ok := m.ExportedFunc("nope"); ok {
		t.Error("unexpected export")
	}
}

func TestAddTypeInterns(t *testing.T) {
	m := &Module{}
	a := m.AddType(FuncType{Params: []ValType{I32}})
	b := m.AddType(FuncType{Params: []ValType{I32}})
	c := m.AddType(FuncType{Params: []ValType{I64}})
	if a != b || a == c || len(m.Types) != 2 {
		t.Errorf("interning broken: %d %d %d (%d types)", a, b, c, len(m.Types))
	}
}
