package wasm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Decode parses a WebAssembly binary back into a Module. It is the inverse
// of Encode for the subset this package models and rejects malformed input
// with descriptive errors.
func Decode(buf []byte) (*Module, error) {
	if len(buf) < len(magicAndVersion) || !bytes.Equal(buf[:len(magicAndVersion)], magicAndVersion) {
		return nil, fmt.Errorf("wasm: bad magic/version header")
	}
	m := &Module{}
	off := len(magicAndVersion)
	lastID := -1
	for off < len(buf) {
		id := buf[off]
		off++
		size, noff, err := readUleb(buf, off, 32)
		if err != nil {
			return nil, fmt.Errorf("wasm: section %d size: %w", id, err)
		}
		off = noff
		if off+int(size) > len(buf) {
			return nil, fmt.Errorf("wasm: section %d: %w", id, ErrTruncated)
		}
		sec := buf[off : off+int(size)]
		off += int(size)
		if id != secCustom {
			if int(id) <= lastID {
				return nil, fmt.Errorf("wasm: section %d out of order", id)
			}
			lastID = int(id)
		}
		switch id {
		case secCustom:
			if err := decodeCustom(m, sec); err != nil {
				return nil, err
			}
		case secType:
			if err := decodeTypes(m, sec); err != nil {
				return nil, err
			}
		case secImport:
			if err := decodeImports(m, sec); err != nil {
				return nil, err
			}
		case secFunction:
			if err := decodeFuncDecls(m, sec); err != nil {
				return nil, err
			}
		case secMemory:
			if err := decodeMemory(m, sec); err != nil {
				return nil, err
			}
		case secGlobal:
			if err := decodeGlobals(m, sec); err != nil {
				return nil, err
			}
		case secExport:
			if err := decodeExports(m, sec); err != nil {
				return nil, err
			}
		case secCode:
			if err := decodeCode(m, sec); err != nil {
				return nil, err
			}
		case secData:
			if err := decodeData(m, sec); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wasm: unsupported section id %d", id)
		}
	}
	return m, nil
}

func readName(sec []byte, off int) (string, int, error) {
	n, off, err := readUleb(sec, off, 32)
	if err != nil {
		return "", off, err
	}
	if off+int(n) > len(sec) {
		return "", off, ErrTruncated
	}
	return string(sec[off : off+int(n)]), off + int(n), nil
}

func decodeTypes(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(sec) || sec[off] != 0x60 {
			return fmt.Errorf("wasm: type %d: expected functype tag", i)
		}
		off++
		var ft FuncType
		var np uint64
		np, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		for j := uint64(0); j < np; j++ {
			if off >= len(sec) {
				return ErrTruncated
			}
			t := ValType(sec[off])
			off++
			if !t.Valid() {
				return fmt.Errorf("wasm: type %d: bad param type", i)
			}
			ft.Params = append(ft.Params, t)
		}
		var nr uint64
		nr, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		if nr > 1 {
			return fmt.Errorf("wasm: type %d: multi-value results unsupported", i)
		}
		for j := uint64(0); j < nr; j++ {
			if off >= len(sec) {
				return ErrTruncated
			}
			t := ValType(sec[off])
			off++
			if !t.Valid() {
				return fmt.Errorf("wasm: type %d: bad result type", i)
			}
			ft.Results = append(ft.Results, t)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeImports(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var mod, field string
		mod, off, err = readName(sec, off)
		if err != nil {
			return err
		}
		field, off, err = readName(sec, off)
		if err != nil {
			return err
		}
		if off >= len(sec) {
			return ErrTruncated
		}
		kind := sec[off]
		off++
		if kind != 0x00 {
			return fmt.Errorf("wasm: import %s.%s: only function imports supported", mod, field)
		}
		var ti uint64
		ti, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		m.Imports = append(m.Imports, Import{Module: mod, Field: field, Type: uint32(ti)})
	}
	return nil
}

func decodeFuncDecls(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var ti uint64
		ti, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, Function{Type: uint32(ti)})
	}
	return nil
}

func decodeMemory(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	if n != 1 {
		return fmt.Errorf("wasm: expected exactly one memory, got %d", n)
	}
	if off >= len(sec) {
		return ErrTruncated
	}
	flags := sec[off]
	off++
	mt := &MemType{}
	var v uint64
	v, off, err = readUleb(sec, off, 32)
	if err != nil {
		return err
	}
	mt.Min = uint32(v)
	if flags == 0x01 {
		v, _, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		mt.Max = uint32(v)
		mt.HasMax = true
	}
	m.Mem = mt
	return nil
}

func decodeGlobals(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(sec) {
			return ErrTruncated
		}
		g := Global{Type: ValType(sec[off])}
		off++
		if !g.Type.Valid() {
			return fmt.Errorf("wasm: global %d: bad type", i)
		}
		if off >= len(sec) {
			return ErrTruncated
		}
		g.Mutable = sec[off] == 0x01
		off++
		g.Init, off, err = decodeConstExpr(sec, off, g.Type)
		if err != nil {
			return fmt.Errorf("wasm: global %d: %w", i, err)
		}
		m.Globals = append(m.Globals, g)
	}
	return nil
}

func decodeConstExpr(sec []byte, off int, t ValType) (int64, int, error) {
	if off >= len(sec) {
		return 0, off, ErrTruncated
	}
	op := Opcode(sec[off])
	off++
	var raw int64
	var err error
	switch {
	case op == OpI32Const && t == I32:
		raw, off, err = readSleb(sec, off, 32)
	case op == OpI64Const && t == I64:
		raw, off, err = readSleb(sec, off, 64)
	case op == OpF32Const && t == F32:
		if off+4 > len(sec) {
			return 0, off, ErrTruncated
		}
		raw = int64(binary.LittleEndian.Uint32(sec[off:]))
		off += 4
	case op == OpF64Const && t == F64:
		if off+8 > len(sec) {
			return 0, off, ErrTruncated
		}
		raw = int64(binary.LittleEndian.Uint64(sec[off:]))
		off += 8
	default:
		return 0, off, fmt.Errorf("const expr opcode %v does not match type %v", op, t)
	}
	if err != nil {
		return 0, off, err
	}
	if off >= len(sec) || Opcode(sec[off]) != OpEnd {
		return 0, off, fmt.Errorf("const expr missing end")
	}
	return raw, off + 1, nil
}

func decodeExports(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var name string
		name, off, err = readName(sec, off)
		if err != nil {
			return err
		}
		if off >= len(sec) {
			return ErrTruncated
		}
		kind := ExportKind(sec[off])
		off++
		var idx uint64
		idx, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		m.Exports = append(m.Exports, Export{Name: name, Kind: kind, Idx: uint32(idx)})
	}
	return nil
}

func decodeCode(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	if int(n) != len(m.Funcs) {
		return fmt.Errorf("wasm: code count %d != function count %d", n, len(m.Funcs))
	}
	for i := uint64(0); i < n; i++ {
		var size uint64
		size, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		if off+int(size) > len(sec) {
			return ErrTruncated
		}
		body := sec[off : off+int(size)]
		off += int(size)
		if err := decodeBody(&m.Funcs[i], body); err != nil {
			return fmt.Errorf("wasm: func %d body: %w", i, err)
		}
	}
	return nil
}

func decodeBody(f *Function, body []byte) error {
	nRuns, off, err := readUleb(body, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRuns; i++ {
		var cnt uint64
		cnt, off, err = readUleb(body, off, 32)
		if err != nil {
			return err
		}
		if off >= len(body) {
			return ErrTruncated
		}
		t := ValType(body[off])
		off++
		if !t.Valid() {
			return fmt.Errorf("bad local type")
		}
		if cnt > 1<<20 {
			return fmt.Errorf("unreasonable local count %d", cnt)
		}
		for j := uint64(0); j < cnt; j++ {
			f.Locals = append(f.Locals, t)
		}
	}
	for off < len(body) {
		var in Instr
		in, off, err = decodeInstr(body, off)
		if err != nil {
			return err
		}
		f.Body = append(f.Body, in)
	}
	if len(f.Body) == 0 || f.Body[len(f.Body)-1].Op != OpEnd {
		return fmt.Errorf("body does not end with end opcode")
	}
	return nil
}

func decodeInstr(body []byte, off int) (Instr, int, error) {
	var in Instr
	if off >= len(body) {
		return in, off, ErrTruncated
	}
	in.Op = Opcode(body[off])
	off++
	if !in.Op.Valid() {
		return in, off, fmt.Errorf("invalid opcode 0x%02x at %d", byte(in.Op), off-1)
	}
	var err error
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		var bt int64
		bt, off, err = readSleb(body, off, 33)
		if err != nil {
			return in, off, err
		}
		in.BlockType = int32(bt)
		if in.BlockType != BlockNone && !ValType(byte(in.BlockType)).Valid() {
			return in, off, fmt.Errorf("bad block type %d", in.BlockType)
		}
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		var v uint64
		v, off, err = readUleb(body, off, 32)
		if err != nil {
			return in, off, err
		}
		in.A = uint32(v)
	case OpBrTable:
		var n uint64
		n, off, err = readUleb(body, off, 32)
		if err != nil {
			return in, off, err
		}
		if n > 1<<16 {
			return in, off, fmt.Errorf("unreasonable br_table size %d", n)
		}
		in.Targets = make([]uint32, n)
		for i := range in.Targets {
			var t uint64
			t, off, err = readUleb(body, off, 32)
			if err != nil {
				return in, off, err
			}
			in.Targets[i] = uint32(t)
		}
		var d uint64
		d, off, err = readUleb(body, off, 32)
		if err != nil {
			return in, off, err
		}
		in.A = uint32(d)
	case OpMemorySize, OpMemoryGrow:
		if off >= len(body) {
			return in, off, ErrTruncated
		}
		if body[off] != 0x00 {
			return in, off, fmt.Errorf("nonzero memory index")
		}
		off++
	case OpI32Const:
		var v int64
		v, off, err = readSleb(body, off, 32)
		if err != nil {
			return in, off, err
		}
		in.Val = int64(int32(v))
	case OpI64Const:
		in.Val, off, err = readSleb(body, off, 64)
		if err != nil {
			return in, off, err
		}
	case OpF32Const:
		if off+4 > len(body) {
			return in, off, ErrTruncated
		}
		in.Val = int64(binary.LittleEndian.Uint32(body[off:]))
		off += 4
	case OpF64Const:
		if off+8 > len(body) {
			return in, off, ErrTruncated
		}
		in.Val = int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	default:
		if isMemAccess(in.Op) {
			var a, b uint64
			a, off, err = readUleb(body, off, 32)
			if err != nil {
				return in, off, err
			}
			b, off, err = readUleb(body, off, 32)
			if err != nil {
				return in, off, err
			}
			in.A, in.B = uint32(a), uint32(b)
		}
	}
	return in, off, nil
}

func decodeData(m *Module, sec []byte) error {
	n, off, err := readUleb(sec, 0, 32)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(sec) {
			return ErrTruncated
		}
		if sec[off] != 0x00 {
			return fmt.Errorf("wasm: data %d: only active segments in memory 0 supported", i)
		}
		off++
		var offset int64
		offset, off, err = decodeConstExpr(sec, off, I32)
		if err != nil {
			return fmt.Errorf("wasm: data %d: %w", i, err)
		}
		var size uint64
		size, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		if off+int(size) > len(sec) {
			return ErrTruncated
		}
		m.Data = append(m.Data, DataSegment{
			Offset: uint32(int32(offset)),
			Bytes:  append([]byte(nil), sec[off:off+int(size)]...),
		})
		off += int(size)
	}
	return nil
}

func decodeCustom(m *Module, sec []byte) error {
	name, off, err := readName(sec, 0)
	if err != nil {
		return err
	}
	if name != "name" {
		return nil // unknown custom sections are skipped
	}
	for off < len(sec) {
		id := sec[off]
		off++
		var size uint64
		size, off, err = readUleb(sec, off, 32)
		if err != nil {
			return err
		}
		if off+int(size) > len(sec) {
			return ErrTruncated
		}
		sub := sec[off : off+int(size)]
		off += int(size)
		switch id {
		case 0x00:
			m.Name, _, err = readName(sub, 0)
			if err != nil {
				return err
			}
		case 0x01:
			cnt, soff, err := readUleb(sub, 0, 32)
			if err != nil {
				return err
			}
			for i := uint64(0); i < cnt; i++ {
				var idx uint64
				idx, soff, err = readUleb(sub, soff, 32)
				if err != nil {
					return err
				}
				var fn string
				fn, soff, err = readName(sub, soff)
				if err != nil {
					return err
				}
				di := int(idx) - len(m.Imports)
				if di >= 0 && di < len(m.Funcs) {
					m.Funcs[di].Name = fn
				}
			}
		}
	}
	return nil
}
