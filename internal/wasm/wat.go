package wasm

import (
	"fmt"
	"math"
	"strings"
)

// WAT renders the module in the linear WebAssembly text format, matching the
// style of the paper's listings (Figs. 4, 7, 8).
func WAT(m *Module) string {
	var b strings.Builder
	if m.Name != "" {
		fmt.Fprintf(&b, "(module $%s\n", m.Name)
	} else {
		b.WriteString("(module\n")
	}
	for i, t := range m.Types {
		fmt.Fprintf(&b, "  (type $t%d %s)\n", i, t.String())
	}
	for i, imp := range m.Imports {
		fmt.Fprintf(&b, "  (import %q %q (func $i%d (type $t%d)))\n", imp.Module, imp.Field, i, imp.Type)
	}
	if m.Mem != nil {
		if m.Mem.HasMax {
			fmt.Fprintf(&b, "  (memory %d %d)\n", m.Mem.Min, m.Mem.Max)
		} else {
			fmt.Fprintf(&b, "  (memory %d)\n", m.Mem.Min)
		}
	}
	for i, g := range m.Globals {
		mut := g.Type.String()
		if g.Mutable {
			mut = "(mut " + g.Type.String() + ")"
		}
		fmt.Fprintf(&b, "  (global $g%d %s (%s))\n", i, mut, constString(g.Type, g.Init))
	}
	for i := range m.Funcs {
		writeFuncWAT(&b, m, i)
	}
	for _, e := range m.Exports {
		kind := "func"
		switch e.Kind {
		case ExportMemory:
			kind = "memory"
		case ExportGlobal:
			kind = "global"
		}
		fmt.Fprintf(&b, "  (export %q (%s %d))\n", e.Name, kind, e.Idx)
	}
	for _, d := range m.Data {
		fmt.Fprintf(&b, "  (data (i32.const %d) ;; %d bytes\n  )\n", d.Offset, len(d.Bytes))
	}
	b.WriteString(")\n")
	return b.String()
}

func constString(t ValType, raw int64) string {
	switch t {
	case I32:
		return fmt.Sprintf("i32.const %d", int32(raw))
	case I64:
		return fmt.Sprintf("i64.const %d", raw)
	case F32:
		return fmt.Sprintf("f32.const %v", math.Float32frombits(uint32(raw)))
	default:
		return fmt.Sprintf("f64.const %v", math.Float64frombits(uint64(raw)))
	}
}

func writeFuncWAT(b *strings.Builder, m *Module, i int) {
	f := &m.Funcs[i]
	ft := FuncType{}
	if int(f.Type) < len(m.Types) {
		ft = m.Types[f.Type]
	}
	name := f.Name
	if name == "" {
		name = fmt.Sprintf("f%d", len(m.Imports)+i)
	}
	fmt.Fprintf(b, "  (func $%s (type $t%d)", name, f.Type)
	for pi, p := range ft.Params {
		fmt.Fprintf(b, " (param $p%d %s)", pi, p)
	}
	for _, r := range ft.Results {
		fmt.Fprintf(b, " (result %s)", r)
	}
	b.WriteString("\n")
	if len(f.Locals) > 0 {
		b.WriteString("   ")
		for li, l := range f.Locals {
			fmt.Fprintf(b, " (local $l%d %s)", len(ft.Params)+li, l)
		}
		b.WriteString("\n")
	}
	depth := 2
	for pc := range f.Body {
		in := &f.Body[pc]
		if pc == len(f.Body)-1 && in.Op == OpEnd {
			break // implicit function end
		}
		switch in.Op {
		case OpEnd, OpElse:
			if depth > 2 {
				depth--
			}
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(instrWAT(in))
		b.WriteString("\n")
		switch in.Op {
		case OpBlock, OpLoop, OpIf, OpElse:
			depth++
		}
	}
	b.WriteString("  )\n")
}

func instrWAT(in *Instr) string {
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		if in.BlockType != BlockNone {
			return fmt.Sprintf("%v (result %s)", in.Op, ValType(byte(in.BlockType)))
		}
		return in.Op.String()
	case OpBr, OpBrIf:
		return fmt.Sprintf("%v %d", in.Op, in.A)
	case OpBrTable:
		parts := make([]string, 0, len(in.Targets)+1)
		for _, t := range in.Targets {
			parts = append(parts, fmt.Sprintf("%d", t))
		}
		parts = append(parts, fmt.Sprintf("%d", in.A))
		return "br_table " + strings.Join(parts, " ")
	case OpCall:
		return fmt.Sprintf("call %d", in.A)
	case OpLocalGet, OpLocalSet, OpLocalTee:
		return fmt.Sprintf("%v $l%d", in.Op, in.A)
	case OpGlobalGet, OpGlobalSet:
		return fmt.Sprintf("%v $g%d", in.Op, in.A)
	case OpI32Const:
		return fmt.Sprintf("i32.const %d", int32(in.Val))
	case OpI64Const:
		return fmt.Sprintf("i64.const %d", in.Val)
	case OpF32Const:
		return fmt.Sprintf("f32.const %v", math.Float32frombits(uint32(in.Val)))
	case OpF64Const:
		return fmt.Sprintf("f64.const %v", math.Float64frombits(uint64(in.Val)))
	default:
		if isMemAccess(in.Op) && in.B != 0 {
			return fmt.Sprintf("%v offset=%d", in.Op, in.B)
		}
		return in.Op.String()
	}
}
