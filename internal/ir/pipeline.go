package ir

import "fmt"

// OptLevel is a compiler optimization level (§2.1.2, Fig. 1).
type OptLevel int

// Optimization levels.
const (
	O0 OptLevel = iota
	O1
	O2
	O3
	O4
	Os
	Oz
	Ofast
)

// ParseOptLevel parses a -O flag value ("0", "1", "2", "3", "4", "s", "z",
// "fast").
func ParseOptLevel(s string) (OptLevel, error) {
	switch s {
	case "0", "O0", "-O0":
		return O0, nil
	case "1", "O1", "-O1":
		return O1, nil
	case "2", "O2", "-O2":
		return O2, nil
	case "3", "O3", "-O3":
		return O3, nil
	case "4", "O4", "-O4":
		return O4, nil
	case "s", "Os", "-Os":
		return Os, nil
	case "z", "Oz", "-Oz":
		return Oz, nil
	case "fast", "Ofast", "-Ofast":
		return Ofast, nil
	}
	return O0, fmt.Errorf("ir: unknown optimization level %q", s)
}

func (l OptLevel) String() string {
	switch l {
	case O0:
		return "-O0"
	case O1:
		return "-O1"
	case O2:
		return "-O2"
	case O3:
		return "-O3"
	case O4:
		return "-O4"
	case Os:
		return "-Os"
	case Oz:
		return "-Oz"
	case Ofast:
		return "-Ofast"
	}
	return "-O?"
}

// PassList returns the pass names the level runs, in order (for reporting
// and tests).
func (l OptLevel) PassList() []string {
	switch l {
	case O0:
		return nil
	case O1:
		return []string{"constfold", "licm", "constfold", "dce", "globalopt"}
	case O2:
		return []string{"constfold", "rematconst", "inline", "licm",
			"vectorize-loops", "libcalls-shrinkwrap", "constfold", "dce", "globalopt"}
	case O3:
		return []string{"constfold", "rematconst", "inline", "argpromotion",
			"licm", "vectorize-loops", "libcalls-shrinkwrap", "constfold", "dce", "globalopt"}
	case O4:
		return []string{"constfold", "rematconst", "inline", "inline",
			"argpromotion", "licm", "vectorize-loops", "libcalls-shrinkwrap",
			"constfold", "dce", "globalopt"}
	case Os:
		return []string{"constfold", "rematconst", "inline", "licm",
			"constfold", "dce", "globalopt"}
	case Oz:
		return []string{"constfold", "licm", "consthoist", "constfold", "dce", "globalopt"}
	case Ofast:
		return []string{"constfold", "rematconst", "inline", "argpromotion",
			"licm", "vectorize-loops", "fastmath", "libcalls-shrinkwrap",
			"constfold", "dce", "globalopt(no-deadstore-sweep)"}
	}
	return nil
}

// inlineBudget is the per-level inlining body-size budget.
func (l OptLevel) inlineBudget() int {
	switch l {
	case O2, Os:
		return 40
	case O3, Ofast:
		return 80
	case O4:
		return 120
	}
	return 0
}

// Optimize runs the pass pipeline for the level, in place.
//
// The -Ofast pipeline intentionally skips the dead-global-store sweep:
// the paper's Fig. 7 traces ADPCM's slowdown at -Ofast to exactly this
// class of pass-ordering regression (cf. LLVM PR37449), where fast-math
// function attributes suppress a late cleanup that -O2 still performs.
func Optimize(p *Program, level OptLevel) {
	switch level {
	case O0:
		return
	case O1:
		ConstFold(p)
		LICM(p)
		ConstFold(p)
		DCE(p)
		GlobalOpt(p, false)
	case O2, Os:
		ConstFold(p)
		RematConst(p)
		ConstFold(p)
		Inline(p, level.inlineBudget())
		LICM(p)
		if level == O2 {
			Vectorize(p)
			ShrinkwrapLibcalls(p)
		}
		ConstFold(p)
		DCE(p)
		GlobalOpt(p, false)
		ConstFold(p)
		DCE(p)
	case O3, O4:
		ConstFold(p)
		RematConst(p)
		ConstFold(p)
		Inline(p, level.inlineBudget())
		if level == O4 {
			Inline(p, level.inlineBudget())
		}
		ArgPromote(p)
		LICM(p)
		Vectorize(p)
		ShrinkwrapLibcalls(p)
		ConstFold(p)
		DCE(p)
		GlobalOpt(p, false)
		ConstFold(p)
		DCE(p)
	case Oz:
		ConstFold(p)
		LICM(p)
		ConstHoist(p)
		ConstFold(p)
		DCE(p)
		GlobalOpt(p, false)
	case Ofast:
		ConstFold(p)
		RematConst(p)
		ConstFold(p)
		Inline(p, level.inlineBudget())
		ArgPromote(p)
		LICM(p)
		Vectorize(p)
		FastMath(p)
		ShrinkwrapLibcalls(p)
		ConstFold(p)
		DCE(p)
		GlobalOpt(p, true) // the modeled pass-ordering bug
		ConstFold(p)
		DCE(p)
	}
}
