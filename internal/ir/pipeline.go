package ir

import "fmt"

// OptLevel is a compiler optimization level (§2.1.2, Fig. 1).
type OptLevel int

// Optimization levels.
const (
	O0 OptLevel = iota
	O1
	O2
	O3
	O4
	Os
	Oz
	Ofast
)

// ParseOptLevel parses a -O flag value ("0", "1", "2", "3", "4", "s", "z",
// "fast").
func ParseOptLevel(s string) (OptLevel, error) {
	switch s {
	case "0", "O0", "-O0":
		return O0, nil
	case "1", "O1", "-O1":
		return O1, nil
	case "2", "O2", "-O2":
		return O2, nil
	case "3", "O3", "-O3":
		return O3, nil
	case "4", "O4", "-O4":
		return O4, nil
	case "s", "Os", "-Os":
		return Os, nil
	case "z", "Oz", "-Oz":
		return Oz, nil
	case "fast", "Ofast", "-Ofast":
		return Ofast, nil
	}
	return O0, fmt.Errorf("ir: unknown optimization level %q", s)
}

func (l OptLevel) String() string {
	switch l {
	case O0:
		return "-O0"
	case O1:
		return "-O1"
	case O2:
		return "-O2"
	case O3:
		return "-O3"
	case O4:
		return "-O4"
	case Os:
		return "-Os"
	case Oz:
		return "-Oz"
	case Ofast:
		return "-Ofast"
	}
	return "-O?"
}

// PassList returns the pass names the level runs, in order (for reporting
// and tests).
func (l OptLevel) PassList() []string {
	switch l {
	case O0:
		return nil
	case O1:
		return []string{"constfold", "licm", "constfold", "dce", "globalopt"}
	case O2:
		return []string{"constfold", "rematconst", "inline", "licm",
			"vectorize-loops", "libcalls-shrinkwrap", "constfold", "dce", "globalopt"}
	case O3:
		return []string{"constfold", "rematconst", "inline", "argpromotion",
			"licm", "vectorize-loops", "libcalls-shrinkwrap", "constfold", "dce", "globalopt"}
	case O4:
		return []string{"constfold", "rematconst", "inline", "inline",
			"argpromotion", "licm", "vectorize-loops", "libcalls-shrinkwrap",
			"constfold", "dce", "globalopt"}
	case Os:
		return []string{"constfold", "rematconst", "inline", "licm",
			"constfold", "dce", "globalopt"}
	case Oz:
		return []string{"constfold", "licm", "consthoist", "constfold", "dce", "globalopt"}
	case Ofast:
		return []string{"constfold", "rematconst", "inline", "argpromotion",
			"licm", "vectorize-loops", "fastmath", "libcalls-shrinkwrap",
			"constfold", "dce", "globalopt(no-deadstore-sweep)"}
	}
	return nil
}

// inlineBudget is the per-level inlining body-size budget.
func (l OptLevel) inlineBudget() int {
	switch l {
	case O2, Os:
		return 40
	case O3, Ofast:
		return 80
	case O4:
		return 120
	}
	return 0
}

// passStep is one named pipeline stage.
type passStep struct {
	name string
	fn   func(*Program)
}

// passSeq returns the exact pass sequence Optimize runs for the level.
// (PassList is the coarser documented summary; this is the real schedule,
// including repeated cleanup passes.)
func passSeq(level OptLevel) []passStep {
	cf := passStep{"constfold", ConstFold}
	dce := passStep{"dce", DCE}
	licm := passStep{"licm", LICM}
	remat := passStep{"rematconst", RematConst}
	inline := passStep{"inline", func(p *Program) { Inline(p, level.inlineBudget()) }}
	argpromo := passStep{"argpromotion", ArgPromote}
	vec := passStep{"vectorize-loops", Vectorize}
	shrink := passStep{"libcalls-shrinkwrap", ShrinkwrapLibcalls}
	gopt := passStep{"globalopt", func(p *Program) { GlobalOpt(p, false) }}

	switch level {
	case O0:
		return nil
	case O1:
		return []passStep{cf, licm, cf, dce, gopt}
	case O2:
		return []passStep{cf, remat, cf, inline, licm, vec, shrink, cf, dce, gopt, cf, dce}
	case Os:
		return []passStep{cf, remat, cf, inline, licm, cf, dce, gopt, cf, dce}
	case O3:
		return []passStep{cf, remat, cf, inline, argpromo, licm, vec, shrink, cf, dce, gopt, cf, dce}
	case O4:
		return []passStep{cf, remat, cf, inline, inline, argpromo, licm, vec, shrink, cf, dce, gopt, cf, dce}
	case Oz:
		return []passStep{cf, licm, {"consthoist", ConstHoist}, cf, dce, gopt}
	case Ofast:
		return []passStep{cf, remat, cf, inline, argpromo, licm, vec,
			{"fastmath", FastMath}, shrink, cf, dce,
			// The modeled pass-ordering bug: fast-math suppresses the
			// dead-global-store sweep.
			{"globalopt(no-deadstore-sweep)", func(p *Program) { GlobalOpt(p, true) }},
			cf, dce}
	}
	return nil
}

// Optimize runs the pass pipeline for the level, in place.
//
// The -Ofast pipeline intentionally skips the dead-global-store sweep:
// the paper's Fig. 7 traces ADPCM's slowdown at -Ofast to exactly this
// class of pass-ordering regression (cf. LLVM PR37449), where fast-math
// function attributes suppress a late cleanup that -O2 still performs.
func Optimize(p *Program, level OptLevel) {
	OptimizeWithHook(p, level, nil)
}

// PassHook observes one completed optimization pass: its name and the
// program's node counts before and after. Node counts are deterministic,
// so hooks can stand in for pass timings in reproducible traces.
type PassHook func(name string, nodesBefore, nodesAfter int)

// OptimizeWithHook runs the pass pipeline for the level, invoking hook
// after every pass. A nil hook skips the node counting entirely.
func OptimizeWithHook(p *Program, level OptLevel, hook PassHook) {
	for _, s := range passSeq(level) {
		if hook == nil {
			s.fn(p)
			continue
		}
		before := NodeCount(p)
		s.fn(p)
		hook(s.name, before, NodeCount(p))
	}
}

// NodeCount returns the program's statement-node count across all
// functions — the deterministic work-size proxy used for pass reporting.
func NodeCount(p *Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += countStmts(f.Body)
	}
	return n
}
