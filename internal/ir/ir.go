// Package ir defines the compiler's typed mid-level intermediate
// representation and the optimization pass pipeline modeled on the
// LLVM-based toolchains the paper studies (§2.1.2).
//
// The IR is a structured tree (WebAssembly itself is structured, and the
// study's three backends — Wasm, Cheerp-style JavaScript, and x86-like
// register code — all lower naturally from it). Aggregates and
// address-taken variables live in a linear address space laid out by the
// builder; scalars live in virtual locals and register-like globals.
package ir

import "fmt"

// Type is an IR value type.
type Type uint8

// IR value types.
const (
	Void Type = iota
	I32
	I64
	F32
	F64
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return "?"
}

// IsFloat reports whether t is a floating-point type.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

// MemType describes the width and extension behavior of a load or store.
type MemType uint8

// Memory access types.
const (
	MemI8S MemType = iota
	MemI8U
	MemI16S
	MemI16U
	MemI32
	MemI64
	MemF32
	MemF64
	// 64-bit-typed narrow accesses are not needed: the builder widens
	// through I32.
)

// Size returns the access width in bytes.
func (m MemType) Size() int {
	switch m {
	case MemI8S, MemI8U:
		return 1
	case MemI16S, MemI16U:
		return 2
	case MemI32, MemF32:
		return 4
	default:
		return 8
	}
}

// ValueType returns the register type an access of this MemType produces.
func (m MemType) ValueType() Type {
	switch m {
	case MemF32:
		return F32
	case MemF64:
		return F64
	case MemI64:
		return I64
	default:
		return I32
	}
}

// BinOp is a binary operator; combined with the node's Type and Unsigned
// flag it maps to one target instruction.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpMin // fast-math only
	OpMax
)

var binOpNames = [...]string{
	"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr",
	"eq", "ne", "lt", "le", "gt", "ge", "min", "max",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "?"
}

// IsCompare reports whether op yields an i32 boolean.
func (op BinOp) IsCompare() bool { return op >= OpEq && op <= OpGe }

// UnOp is a unary operator.
type UnOp uint8

// Unary operators.
const (
	OpNeg UnOp = iota
	OpEqz      // logical not: x == 0
	OpBitNot
	OpSqrt
	OpAbs
	OpFloor
	OpCeil
	OpTrunc
)

var unOpNames = [...]string{"neg", "eqz", "bitnot", "sqrt", "abs", "floor", "ceil", "trunc"}

func (op UnOp) String() string {
	if int(op) < len(unOpNames) {
		return unOpNames[op]
	}
	return "?"
}

// ---- Program structure ----

// Global is a register-like scalar global (lowered to a Wasm global / JS
// module variable / x86 global register).
type Global struct {
	Name    string
	Type    Type
	Init    int64 // raw bits
	Mutable bool
}

// DataSeg is a byte range copied into linear memory at startup.
type DataSeg struct {
	Addr  uint32
	Bytes []byte
}

// Func is one IR function.
type Func struct {
	Name      string
	Params    []Type
	Ret       Type
	Locals    []Type // local index space: params first, then declared locals
	FrameSize uint32 // linear-memory stack frame bytes (address-taken locals)
	Body      []Stmt
	// Exported functions survive global DCE.
	Exported bool
	// FastMath marks the function as compiled under -Ofast semantics.
	FastMath bool
	// NoInline prevents the inliner from consuming it (recursion guard).
	NoInline bool
	// VecLocals marks lane-carrier locals introduced by Vectorize; the x86
	// backend executes accesses to them at SIMD (near-zero) cost while the
	// stack-machine backends pay full price — the paper's "optimizations
	// not designed for WebAssembly" effect.
	VecLocals map[int]bool
}

// NewLocal appends a local of type t, returning its index.
func (f *Func) NewLocal(t Type) int {
	f.Locals = append(f.Locals, t)
	return len(f.Locals) - 1
}

// Program is a complete compiled unit ready for a backend.
type Program struct {
	Funcs   []*Func
	Globals []*Global
	Data    []DataSeg
	// Layout: [0, StaticEnd) static data; [StaticEnd, StackTop) the shadow
	// stack growing down; heap grows up from StackTop.
	StaticEnd uint32
	StackTop  uint32
	HeapLimit uint32 // max heap bytes; 0 = unlimited
	// SPGlobal is the index in Globals of the shadow stack pointer.
	SPGlobal int
	// MainFunc is the index in Funcs of the entry point.
	MainFunc int
	// MemGlobals records the static-memory ranges of memory-resident
	// globals; the dead-global-store sweep (part of -globalopt) uses it.
	MemGlobals []MemGlobal
}

// MemGlobal is the laid-out address range of a memory-resident global.
type MemGlobal struct {
	Name string
	Addr uint32
	Size uint32
}

// FuncByName finds a function index by name.
func (p *Program) FuncByName(name string) (int, bool) {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ---- Statements ----

// Stmt is an IR statement.
type Stmt interface{ irStmt() }

// SetLocal assigns a local.
type SetLocal struct {
	Local int
	X     Expr
}

// SetGlobal assigns a register-like global.
type SetGlobal struct {
	Global int
	X      Expr
}

// Store writes to linear memory.
type Store struct {
	Mem  MemType
	Addr Expr
	X    Expr
}

// EvalStmt evaluates an expression for its side effects; a non-void result
// is dropped.
type EvalStmt struct{ X Expr }

// If is structured conditional control flow.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Loop is the unified loop form: while (Cond) { Body; Post } — or, when
// PostTest is set, do { Body; Post } while (Cond). Cond may be nil
// (infinite until break). Continue jumps to Post.
type Loop struct {
	Cond     Expr
	Body     []Stmt
	Post     []Stmt
	PostTest bool
	// Unrolled marks loops the vectorizer has already processed.
	Unrolled bool
}

// Break exits the innermost loop or switch.
type Break struct{}

// Continue jumps to the innermost loop's post/condition.
type Continue struct{}

// Return exits the function; X is nil for void.
type Return struct{ X Expr }

// VecSection wraps the shadow lanes of a vectorized loop body: on a SIMD
// target (the x86 backend) the enclosed statements execute as the extra
// lanes of the preceding lane's vector instructions (near-zero marginal
// cost); stack-machine targets execute them at full scalar price.
type VecSection struct{ Body []Stmt }

// Switch dispatches on an i32 tag. Cases with multiple values share a body;
// fallthrough is NOT represented (the builder materializes it).
type Switch struct {
	Tag     Expr
	Cases   []SwitchCase
	Default []Stmt
}

// SwitchCase is one switch arm.
type SwitchCase struct {
	Vals []int64
	Body []Stmt
}

func (*SetLocal) irStmt()   {}
func (*SetGlobal) irStmt()  {}
func (*Store) irStmt()      {}
func (*EvalStmt) irStmt()   {}
func (*If) irStmt()         {}
func (*Loop) irStmt()       {}
func (*Break) irStmt()      {}
func (*Continue) irStmt()   {}
func (*Return) irStmt()     {}
func (*Switch) irStmt()     {}
func (*VecSection) irStmt() {}

// ---- Expressions ----

// Expr is an IR expression; every expression knows its result type.
type Expr interface {
	irExpr()
	ResultType() Type
}

// Const is a literal; Raw holds the bit pattern (i32 values sign-extended).
type Const struct {
	T   Type
	Raw int64
}

// GetLocal reads a local.
type GetLocal struct {
	T     Type
	Local int
}

// GetGlobal reads a register-like global.
type GetGlobal struct {
	T      Type
	Global int
}

// Load reads linear memory.
type Load struct {
	Mem  MemType
	Addr Expr
}

// FrameAddr is the address of a stack-frame slot: SP + Off.
type FrameAddr struct{ Off uint32 }

// Bin is a binary operation. T is the operand type; compares yield I32.
type Bin struct {
	Op       BinOp
	T        Type
	Unsigned bool
	X, Y     Expr
}

// Un is a unary operation.
type Un struct {
	Op UnOp
	T  Type
	X  Expr
}

// Conv converts between types. Signed governs int<->float and widening.
type Conv struct {
	From, To Type
	Signed   bool
	// Narrow truncates to 8/16 bits after integer ops (char/short
	// assignment); 0 = none, 8 or 16 otherwise. NarrowSigned selects
	// sign- vs zero-extension of the narrowed value.
	Narrow       uint8
	NarrowSigned bool
	X            Expr
}

// Call invokes another IR function by index.
type Call struct {
	Func int
	T    Type
	Args []Expr
}

// CallHost invokes an environment function (libm, print channel, memory
// intrinsics). Backends map names to imports/host functions.
type CallHost struct {
	Name string
	T    Type
	Args []Expr
}

// Ternary is a value-producing conditional; arms evaluate lazily.
type Ternary struct {
	T       Type
	C, X, Y Expr
}

// Seq evaluates statements, then yields X (used for comma, post-increment,
// and short-circuit lowering).
type Seq struct {
	Stmts []Stmt
	X     Expr
}

func (*Const) irExpr()     {}
func (*GetLocal) irExpr()  {}
func (*GetGlobal) irExpr() {}
func (*Load) irExpr()      {}
func (*FrameAddr) irExpr() {}
func (*Bin) irExpr()       {}
func (*Un) irExpr()        {}
func (*Conv) irExpr()      {}
func (*Call) irExpr()      {}
func (*CallHost) irExpr()  {}
func (*Ternary) irExpr()   {}
func (*Seq) irExpr()       {}

// ResultType implementations.

func (e *Const) ResultType() Type     { return e.T }
func (e *GetLocal) ResultType() Type  { return e.T }
func (e *GetGlobal) ResultType() Type { return e.T }
func (e *Load) ResultType() Type      { return e.Mem.ValueType() }
func (e *FrameAddr) ResultType() Type { return I32 }
func (e *Bin) ResultType() Type {
	if e.Op.IsCompare() {
		return I32
	}
	return e.T
}
func (e *Un) ResultType() Type {
	if e.Op == OpEqz {
		return I32
	}
	return e.T
}
func (e *Conv) ResultType() Type     { return e.To }
func (e *Call) ResultType() Type     { return e.T }
func (e *CallHost) ResultType() Type { return e.T }
func (e *Ternary) ResultType() Type  { return e.T }
func (e *Seq) ResultType() Type      { return e.X.ResultType() }

// ConstI32 builds an i32 constant.
func ConstI32(v int32) *Const { return &Const{T: I32, Raw: int64(v)} }

// ConstI64 builds an i64 constant.
func ConstI64(v int64) *Const { return &Const{T: I64, Raw: v} }

// Validate performs structural sanity checks used by tests.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		for i, t := range f.Params {
			if i >= len(f.Locals) || f.Locals[i] != t {
				return fmt.Errorf("ir: func %s: param %d not mirrored in locals", f.Name, i)
			}
		}
		if err := validateStmts(p, f, f.Body, 0); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	if p.SPGlobal >= len(p.Globals) {
		return fmt.Errorf("ir: SP global out of range")
	}
	return nil
}

func validateStmts(p *Program, f *Func, body []Stmt, loopDepth int) error {
	for _, s := range body {
		switch st := s.(type) {
		case *SetLocal:
			if st.Local >= len(f.Locals) {
				return fmt.Errorf("set of undefined local %d", st.Local)
			}
			if err := validateExpr(p, f, st.X); err != nil {
				return err
			}
		case *SetGlobal:
			if st.Global >= len(p.Globals) {
				return fmt.Errorf("set of undefined global %d", st.Global)
			}
			if err := validateExpr(p, f, st.X); err != nil {
				return err
			}
		case *Store:
			if err := validateExpr(p, f, st.Addr); err != nil {
				return err
			}
			if err := validateExpr(p, f, st.X); err != nil {
				return err
			}
		case *EvalStmt:
			if err := validateExpr(p, f, st.X); err != nil {
				return err
			}
		case *If:
			if err := validateExpr(p, f, st.Cond); err != nil {
				return err
			}
			if err := validateStmts(p, f, st.Then, loopDepth); err != nil {
				return err
			}
			if err := validateStmts(p, f, st.Else, loopDepth); err != nil {
				return err
			}
		case *Loop:
			if st.Cond != nil {
				if err := validateExpr(p, f, st.Cond); err != nil {
					return err
				}
			}
			if err := validateStmts(p, f, st.Body, loopDepth+1); err != nil {
				return err
			}
			if err := validateStmts(p, f, st.Post, loopDepth+1); err != nil {
				return err
			}
		case *Break, *Continue:
			if loopDepth == 0 {
				return fmt.Errorf("break/continue outside loop")
			}
		case *Return:
			if st.X != nil {
				if err := validateExpr(p, f, st.X); err != nil {
					return err
				}
			}
		case *Switch:
			if err := validateExpr(p, f, st.Tag); err != nil {
				return err
			}
			for _, cs := range st.Cases {
				if err := validateStmts(p, f, cs.Body, loopDepth+1); err != nil {
					return err
				}
			}
			if err := validateStmts(p, f, st.Default, loopDepth+1); err != nil {
				return err
			}
		case *VecSection:
			if err := validateStmts(p, f, st.Body, loopDepth); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateExpr(p *Program, f *Func, e Expr) error {
	switch x := e.(type) {
	case *Const, *FrameAddr:
	case *GetLocal:
		if x.Local >= len(f.Locals) {
			return fmt.Errorf("get of undefined local %d", x.Local)
		}
	case *GetGlobal:
		if x.Global >= len(p.Globals) {
			return fmt.Errorf("get of undefined global %d", x.Global)
		}
	case *Load:
		return validateExpr(p, f, x.Addr)
	case *Bin:
		if err := validateExpr(p, f, x.X); err != nil {
			return err
		}
		return validateExpr(p, f, x.Y)
	case *Un:
		return validateExpr(p, f, x.X)
	case *Conv:
		return validateExpr(p, f, x.X)
	case *Call:
		if x.Func >= len(p.Funcs) {
			return fmt.Errorf("call to undefined func %d", x.Func)
		}
		for _, a := range x.Args {
			if err := validateExpr(p, f, a); err != nil {
				return err
			}
		}
	case *CallHost:
		for _, a := range x.Args {
			if err := validateExpr(p, f, a); err != nil {
				return err
			}
		}
	case *Ternary:
		if err := validateExpr(p, f, x.C); err != nil {
			return err
		}
		if err := validateExpr(p, f, x.X); err != nil {
			return err
		}
		return validateExpr(p, f, x.Y)
	case *Seq:
		if err := validateStmts(p, f, x.Stmts, 1); err != nil {
			return err
		}
		return validateExpr(p, f, x.X)
	default:
		return fmt.Errorf("unknown expr %T", e)
	}
	return nil
}
