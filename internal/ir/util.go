package ir

import "math"

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }

// ConstF32 builds an f32 constant.
func ConstF32(f float32) *Const { return &Const{T: F32, Raw: int64(math.Float32bits(f))} }

// ConstF64 builds an f64 constant.
func ConstF64(f float64) *Const { return &Const{T: F64, Raw: int64(math.Float64bits(f))} }
