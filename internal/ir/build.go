package ir

import (
	"encoding/binary"
	"fmt"
	"math"

	"wasmbench/internal/minic"
)

// BuildOptions parameterizes the minic → IR lowering.
type BuildOptions struct {
	// StackSize is the shadow stack in bytes (Cheerp default 1 MiB; raised
	// with cheerp-linear-stack-size, §3.2).
	StackSize uint32
	// HeapLimit is the maximum heap in bytes (Cheerp default 8 MiB; raised
	// with cheerp-linear-heap-size).
	HeapLimit uint32
}

// DefaultBuildOptions mirrors Cheerp's defaults.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{StackSize: 1 << 20, HeapLimit: 8 << 20}
}

// Build lowers a checked minic file into an IR program. The file must have
// passed minic.Check.
func Build(f *minic.File, opts BuildOptions) (*Program, error) {
	b := &builder{
		prog:      &Program{},
		opts:      opts,
		globalReg: map[*minic.VarDecl]int{},
		globalMem: map[*minic.VarDecl]uint32{},
		memSize:   map[*minic.VarDecl]uint32{},
		funcIdx:   map[string]int{},
		strs:      map[string]uint32{},
	}
	// Shadow stack pointer is global 0.
	b.prog.Globals = append(b.prog.Globals, &Global{Name: "__sp", Type: I32, Mutable: true})
	b.prog.SPGlobal = 0

	// Layout pass: addresses for memory-resident globals and string data.
	b.nextAddr = 1024 // null page reserved
	for _, g := range f.Globals {
		if g.AddrTaken || g.Type.Kind == minic.KArray || g.Type.Kind == minic.KStruct {
			size := uint32(g.Type.Size())
			align := uint32(g.Type.Align())
			b.nextAddr = (b.nextAddr + align - 1) / align * align
			b.globalMem[g] = b.nextAddr
			b.memSize[g] = size
			b.prog.MemGlobals = append(b.prog.MemGlobals, MemGlobal{
				Name: g.Name, Addr: b.nextAddr, Size: size,
			})
			b.nextAddr += size
		} else {
			init, err := b.constScalar(g.Type, g.Init)
			if err != nil {
				return nil, fmt.Errorf("ir: global %s: %w", g.Name, err)
			}
			idx := len(b.prog.Globals)
			b.prog.Globals = append(b.prog.Globals, &Global{
				Name: g.Name, Type: irType(g.Type), Init: init, Mutable: true,
			})
			b.globalReg[g] = idx
		}
	}
	// Data segments for initialized memory globals.
	for _, g := range f.Globals {
		addr, ok := b.globalMem[g]
		if !ok || g.Init == nil {
			continue
		}
		buf := make([]byte, g.Type.Size())
		if err := b.fillInit(buf, 0, g.Type, g.Init); err != nil {
			return nil, fmt.Errorf("ir: global %s: %w", g.Name, err)
		}
		b.prog.Data = append(b.prog.Data, DataSeg{Addr: addr, Bytes: buf})
	}

	// Declare all functions first (mutual recursion).
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		idx := len(b.prog.Funcs)
		irf := &Func{Name: fn.Name, Ret: irType(fn.Ret)}
		for _, p := range fn.Params {
			irf.Params = append(irf.Params, irType(p.Type))
		}
		irf.Locals = append([]Type(nil), irf.Params...)
		irf.Exported = fn.Name == "main"
		b.prog.Funcs = append(b.prog.Funcs, irf)
		b.funcIdx[fn.Name] = idx
	}

	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		if err := b.buildFunc(fn); err != nil {
			return nil, fmt.Errorf("ir: func %s: %w", fn.Name, err)
		}
	}

	// Finalize layout: stack then heap.
	b.prog.StaticEnd = b.nextAddr
	stackTop := (b.nextAddr + 15) / 16 * 16
	stackTop += opts.StackSize
	b.prog.StackTop = stackTop
	b.prog.HeapLimit = opts.HeapLimit
	b.prog.Globals[0].Init = int64(stackTop)

	mi, ok := b.funcIdx["main"]
	if !ok {
		return nil, fmt.Errorf("ir: no main function")
	}
	b.prog.MainFunc = mi
	return b.prog, nil
}

type builder struct {
	prog      *Program
	opts      BuildOptions
	nextAddr  uint32
	globalReg map[*minic.VarDecl]int
	globalMem map[*minic.VarDecl]uint32
	memSize   map[*minic.VarDecl]uint32
	funcIdx   map[string]int
	strs      map[string]uint32

	// per-function state
	fn       *Func
	localReg map[*minic.VarDecl]int
	localMem map[*minic.VarDecl]uint32
}

func irType(t *minic.Type) Type {
	switch t.Kind {
	case minic.KVoid:
		return Void
	case minic.KLong, minic.KULong:
		return I64
	case minic.KFloat:
		return F32
	case minic.KDouble:
		return F64
	default:
		return I32 // char/short/int/uint/ptr/array(decayed)
	}
}

func memTypeOf(t *minic.Type) MemType {
	switch t.Kind {
	case minic.KChar:
		return MemI8S
	case minic.KUChar:
		return MemI8U
	case minic.KShort:
		return MemI16S
	case minic.KUShort:
		return MemI16U
	case minic.KLong, minic.KULong:
		return MemI64
	case minic.KFloat:
		return MemF32
	case minic.KDouble:
		return MemF64
	default:
		return MemI32
	}
}

// constScalar folds a global scalar initializer into raw bits.
func (b *builder) constScalar(t *minic.Type, init minic.Expr) (int64, error) {
	if init == nil {
		return 0, nil
	}
	v, f, isF, ok := constValue(init)
	if !ok {
		return 0, fmt.Errorf("global initializer must be constant")
	}
	return packScalar(t, v, f, isF)
}

func packScalar(t *minic.Type, v int64, f float64, isF bool) (int64, error) {
	switch t.Kind {
	case minic.KFloat:
		if !isF {
			f = float64(v)
		}
		return int64(math.Float32bits(float32(f))), nil
	case minic.KDouble:
		if !isF {
			f = float64(v)
		}
		return int64(math.Float64bits(f)), nil
	default:
		if isF {
			v = int64(f)
		}
		return v, nil
	}
}

// constValue folds constant expressions (integers and floats).
func constValue(e minic.Expr) (int64, float64, bool, bool) {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.V, 0, false, true
	case *minic.FloatLit:
		return 0, x.V, true, true
	case *minic.Unary:
		v, f, isF, ok := constValue(x.X)
		if !ok {
			return 0, 0, false, false
		}
		switch x.Op {
		case "-":
			return -v, -f, isF, true
		case "+":
			return v, f, isF, true
		case "~":
			if isF {
				return 0, 0, false, false
			}
			return ^v, 0, false, true
		}
	case *minic.Binary:
		av, af, aisF, ok1 := constValue(x.X)
		bv, bf, bisF, ok2 := constValue(x.Y)
		if !ok1 || !ok2 {
			return 0, 0, false, false
		}
		if aisF || bisF {
			if !aisF {
				af = float64(av)
			}
			if !bisF {
				bf = float64(bv)
			}
			switch x.Op {
			case "+":
				return 0, af + bf, true, true
			case "-":
				return 0, af - bf, true, true
			case "*":
				return 0, af * bf, true, true
			case "/":
				return 0, af / bf, true, true
			}
			return 0, 0, false, false
		}
		switch x.Op {
		case "+":
			return av + bv, 0, false, true
		case "-":
			return av - bv, 0, false, true
		case "*":
			return av * bv, 0, false, true
		case "/":
			if bv == 0 {
				return 0, 0, false, false
			}
			return av / bv, 0, false, true
		case "%":
			if bv == 0 {
				return 0, 0, false, false
			}
			return av % bv, 0, false, true
		case "<<":
			return av << uint(bv&63), 0, false, true
		case ">>":
			return av >> uint(bv&63), 0, false, true
		case "&":
			return av & bv, 0, false, true
		case "|":
			return av | bv, 0, false, true
		case "^":
			return av ^ bv, 0, false, true
		}
	case *minic.CastExpr:
		v, f, isF, ok := constValue(x.X)
		if !ok {
			return 0, 0, false, false
		}
		if x.To.IsFloat() {
			if !isF {
				return 0, float64(v), true, true
			}
			return 0, f, true, true
		}
		if isF {
			return int64(f), 0, false, true
		}
		return v, 0, false, true
	case *minic.SizeofExpr:
		if x.OfType != nil {
			return int64(x.OfType.Size()), 0, false, true
		}
	}
	return 0, 0, false, false
}

// fillInit writes an initializer into a byte buffer at off.
func (b *builder) fillInit(buf []byte, off int, t *minic.Type, init minic.Expr) error {
	if il, ok := init.(*minic.InitList); ok {
		switch t.Kind {
		case minic.KArray:
			es := t.Elem.Size()
			for i, item := range il.Items {
				if err := b.fillInit(buf, off+i*es, t.Elem, item); err != nil {
					return err
				}
			}
			return nil
		case minic.KStruct:
			for i, item := range il.Items {
				fld := t.S.Fields[i]
				if err := b.fillInit(buf, off+fld.Offset, fld.Type, item); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("braced initializer for scalar")
	}
	if s, ok := init.(*minic.StrLit); ok && t.Kind == minic.KArray {
		copy(buf[off:], s.S)
		return nil
	}
	v, f, isF, ok := constValue(init)
	if !ok {
		return fmt.Errorf("initializer must be constant")
	}
	raw, err := packScalar(t, v, f, isF)
	if err != nil {
		return err
	}
	switch t.Size() {
	case 1:
		buf[off] = byte(raw)
	case 2:
		binary.LittleEndian.PutUint16(buf[off:], uint16(raw))
	case 4:
		binary.LittleEndian.PutUint32(buf[off:], uint32(raw))
	case 8:
		binary.LittleEndian.PutUint64(buf[off:], uint64(raw))
	default:
		return fmt.Errorf("bad scalar size %d", t.Size())
	}
	return nil
}

// internString places a NUL-terminated string literal in static memory.
func (b *builder) internString(s string) uint32 {
	if addr, ok := b.strs[s]; ok {
		return addr
	}
	addr := b.nextAddr
	bytes := append([]byte(s), 0)
	b.prog.Data = append(b.prog.Data, DataSeg{Addr: addr, Bytes: bytes})
	b.nextAddr += uint32(len(bytes))
	b.strs[s] = addr
	return addr
}

func (b *builder) buildFunc(fn *minic.FuncDecl) error {
	idx := b.funcIdx[fn.Name]
	b.fn = b.prog.Funcs[idx]
	b.localReg = map[*minic.VarDecl]int{}
	b.localMem = map[*minic.VarDecl]uint32{}
	frame := uint32(0)

	var prologue []Stmt
	for i, p := range fn.Params {
		if p.AddrTaken {
			// Spill the parameter into the frame so its address exists.
			size := uint32(p.Type.Size())
			align := uint32(p.Type.Align())
			frame = (frame + align - 1) / align * align
			off := frame
			frame += size
			b.localMem[p] = off
			prologue = append(prologue, &Store{
				Mem:  memTypeOf(p.Type),
				Addr: &FrameAddr{Off: off},
				X:    &GetLocal{T: irType(p.Type), Local: i},
			})
		} else {
			b.localReg[p] = i
		}
	}
	// Collect frame slots for address-taken locals.
	b.fn.FrameSize = 0
	body, err := b.stmts(fn.Body.Stmts, &frame)
	if err != nil {
		return err
	}
	b.fn.FrameSize = (frame + 15) / 16 * 16
	b.fn.Body = append(prologue, body...)
	return nil
}

func (b *builder) stmts(list []minic.Stmt, frame *uint32) ([]Stmt, error) {
	var out []Stmt
	for _, s := range list {
		ss, err := b.stmt(s, frame)
		if err != nil {
			return nil, err
		}
		out = append(out, ss...)
	}
	return out, nil
}

func (b *builder) stmt(s minic.Stmt, frame *uint32) ([]Stmt, error) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return b.stmts(st.Stmts, frame)
	case *minic.DeclStmt:
		var out []Stmt
		for _, v := range st.Vars {
			ss, err := b.declLocal(v, frame)
			if err != nil {
				return nil, err
			}
			out = append(out, ss...)
		}
		return out, nil
	case *minic.ExprStmt:
		return b.exprStmt(st.X)
	case *minic.IfStmt:
		cond, err := b.cond(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := b.stmt(st.Then, frame)
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if st.Else != nil {
			els, err = b.stmt(st.Else, frame)
			if err != nil {
				return nil, err
			}
		}
		return []Stmt{&If{Cond: cond, Then: then, Else: els}}, nil
	case *minic.ForStmt:
		var out []Stmt
		if st.Init != nil {
			init, err := b.stmt(st.Init, frame)
			if err != nil {
				return nil, err
			}
			out = append(out, init...)
		}
		loop := &Loop{}
		if st.Cond != nil {
			cond, err := b.cond(st.Cond)
			if err != nil {
				return nil, err
			}
			loop.Cond = cond
		}
		body, err := b.stmt(st.Body, frame)
		if err != nil {
			return nil, err
		}
		loop.Body = body
		if st.Post != nil {
			post, err := b.exprStmt(st.Post)
			if err != nil {
				return nil, err
			}
			loop.Post = post
		}
		return append(out, loop), nil
	case *minic.WhileStmt:
		cond, err := b.cond(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := b.stmt(st.Body, frame)
		if err != nil {
			return nil, err
		}
		return []Stmt{&Loop{Cond: cond, Body: body, PostTest: st.DoWhile}}, nil
	case *minic.SwitchStmt:
		return b.switchStmt(st, frame)
	case *minic.BreakStmt:
		return []Stmt{&Break{}}, nil
	case *minic.ContinueStmt:
		return []Stmt{&Continue{}}, nil
	case *minic.ReturnStmt:
		if st.X == nil {
			return []Stmt{&Return{}}, nil
		}
		x, err := b.expr(st.X)
		if err != nil {
			return nil, err
		}
		return []Stmt{&Return{X: x}}, nil
	case *minic.TryStmt, *minic.ThrowStmt:
		return nil, fmt.Errorf("untransformed exception construct reached the backend")
	}
	return nil, fmt.Errorf("unhandled statement %T", s)
}

func (b *builder) declLocal(v *minic.VarDecl, frame *uint32) ([]Stmt, error) {
	if v.AddrTaken {
		size := uint32(v.Type.Size())
		align := uint32(v.Type.Align())
		*frame = (*frame + align - 1) / align * align
		off := *frame
		*frame += size
		b.localMem[v] = off
		return b.initMem(&FrameAddr{Off: off}, v.Type, v.Init)
	}
	idx := b.fn.NewLocal(irType(v.Type))
	b.localReg[v] = idx
	if v.Init == nil {
		return nil, nil
	}
	x, err := b.expr(v.Init)
	if err != nil {
		return nil, err
	}
	x = b.coerce(x, v.Init.Type(), v.Type)
	return []Stmt{&SetLocal{Local: idx, X: x}}, nil
}

// initMem emits stores initializing a memory-resident variable.
func (b *builder) initMem(base Expr, t *minic.Type, init minic.Expr) ([]Stmt, error) {
	if init == nil {
		return nil, nil
	}
	if il, ok := init.(*minic.InitList); ok {
		var out []Stmt
		switch t.Kind {
		case minic.KArray:
			es := t.Elem.Size()
			for i, item := range il.Items {
				addr := addOff(base, uint32(i*es))
				ss, err := b.initMem(addr, t.Elem, item)
				if err != nil {
					return nil, err
				}
				out = append(out, ss...)
			}
			return out, nil
		case minic.KStruct:
			for i, item := range il.Items {
				fld := t.S.Fields[i]
				addr := addOff(base, uint32(fld.Offset))
				ss, err := b.initMem(addr, fld.Type, item)
				if err != nil {
					return nil, err
				}
				out = append(out, ss...)
			}
			return out, nil
		}
		return nil, fmt.Errorf("braced initializer for scalar")
	}
	x, err := b.expr(init)
	if err != nil {
		return nil, err
	}
	x = b.coerce(x, init.Type(), t)
	return []Stmt{&Store{Mem: memTypeOf(t), Addr: base, X: x}}, nil
}

// addOff folds a constant offset into an address expression.
func addOff(base Expr, off uint32) Expr {
	if off == 0 {
		return base
	}
	if fa, ok := base.(*FrameAddr); ok {
		return &FrameAddr{Off: fa.Off + off}
	}
	if c, ok := base.(*Const); ok && c.T == I32 {
		return ConstI32(int32(uint32(c.Raw) + off))
	}
	return &Bin{Op: OpAdd, T: I32, X: base, Y: ConstI32(int32(off))}
}

func (b *builder) switchStmt(st *minic.SwitchStmt, frame *uint32) ([]Stmt, error) {
	tag, err := b.expr(st.Tag)
	if err != nil {
		return nil, err
	}
	if tag.ResultType() == I64 {
		tag = &Conv{From: I64, To: I32, X: tag}
	}
	sw := &Switch{Tag: tag}
	// Fallthrough materialization: each case body is its own statements
	// plus the following cases' statements until an unconditional break.
	terminated := func(list []Stmt) bool {
		if len(list) == 0 {
			return false
		}
		switch list[len(list)-1].(type) {
		case *Break, *Return:
			return true
		}
		return false
	}
	bodies := make([][]Stmt, len(st.Cases))
	for i, cs := range st.Cases {
		bodies[i], err = b.stmts(cs.Body, frame)
		if err != nil {
			return nil, err
		}
	}
	for i, cs := range st.Cases {
		full := append([]Stmt(nil), bodies[i]...)
		for j := i + 1; j < len(st.Cases) && !terminated(full); j++ {
			// Deep-copy the absorbed case: sharing its nodes with the case
			// that owns them would let in-place passes rewrite one tree
			// position and corrupt the other (e.g. double-remapped call
			// indices in globalopt).
			full = append(full, cloneStmts(bodies[j])...)
		}
		if cs.IsDefault {
			sw.Default = full
		} else {
			sw.Cases = append(sw.Cases, SwitchCase{Vals: cs.Vals, Body: full})
		}
	}
	return []Stmt{sw}, nil
}

// cond builds a branch condition as an i32 truthiness value.
func (b *builder) cond(e minic.Expr) (Expr, error) {
	x, err := b.expr(e)
	if err != nil {
		return nil, err
	}
	return truthy(x), nil
}

// truthy converts a value to an i32 boolean-ish value (0 / nonzero).
func truthy(x Expr) Expr {
	switch x.ResultType() {
	case I32:
		return x
	case I64:
		return &Bin{Op: OpNe, T: I64, X: x, Y: ConstI64(0)}
	case F32:
		return &Bin{Op: OpNe, T: F32, X: x, Y: &Const{T: F32}}
	case F64:
		return &Bin{Op: OpNe, T: F64, X: x, Y: &Const{T: F64}}
	}
	return x
}
