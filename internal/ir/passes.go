package ir

import "math"

// ---- constfold: constant folding and algebraic simplification ----

// ConstFold folds constant subexpressions and trivial identities across the
// whole program. It is the workhorse pass applied at every level ≥ -O1.
func ConstFold(p *Program) {
	for _, f := range p.Funcs {
		mapStmtsExprs(f.Body, foldExpr)
		foldControl(p, f)
	}
}

func foldExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Bin:
		cx, okx := x.X.(*Const)
		cy, oky := x.Y.(*Const)
		if okx && oky {
			if folded, ok := foldBin(x, cx, cy); ok {
				return folded
			}
		}
		// Identities.
		if oky && !x.Op.IsCompare() {
			switch x.Op {
			case OpAdd, OpSub, OpOr, OpXor, OpShl, OpShr:
				if isZero(cy) {
					return x.X
				}
			case OpMul:
				if isOne(cy, x.T) {
					return x.X
				}
			case OpDiv:
				if isOne(cy, x.T) {
					return x.X
				}
			}
		}
		if okx {
			switch x.Op {
			case OpAdd, OpOr, OpXor:
				if isZero(cx) {
					return x.Y
				}
			case OpMul:
				if isOne(cx, x.T) {
					return x.Y
				}
			}
		}
	case *Un:
		if c, ok := x.X.(*Const); ok {
			if folded, ok := foldUn(x, c); ok {
				return folded
			}
		}
	case *Conv:
		if c, ok := x.X.(*Const); ok {
			if folded, ok := foldConv(x, c); ok {
				return folded
			}
		}
	case *Ternary:
		if c, ok := x.C.(*Const); ok && pureExpr(x.X) && pureExpr(x.Y) {
			if c.Raw != 0 {
				return x.X
			}
			return x.Y
		}
	case *Seq:
		if len(x.Stmts) == 0 {
			return x.X
		}
	}
	return e
}

func isZero(c *Const) bool {
	if c.T.IsFloat() {
		return false // -0.0 vs 0.0: leave float identities alone
	}
	return c.Raw == 0
}

func isOne(c *Const, t Type) bool {
	switch t {
	case I32:
		return int32(c.Raw) == 1
	case I64:
		return c.Raw == 1
	case F32:
		return math.Float32frombits(uint32(c.Raw)) == 1
	case F64:
		return math.Float64frombits(uint64(c.Raw)) == 1
	}
	return false
}

func foldBin(x *Bin, a, b *Const) (Expr, bool) {
	switch x.T {
	case I32:
		av, bv := int32(a.Raw), int32(b.Raw)
		au, bu := uint32(a.Raw), uint32(b.Raw)
		var r int32
		switch x.Op {
		case OpAdd:
			r = av + bv
		case OpSub:
			r = av - bv
		case OpMul:
			r = av * bv
		case OpDiv:
			if bv == 0 || (av == math.MinInt32 && bv == -1) {
				return nil, false
			}
			if x.Unsigned {
				r = int32(au / bu)
			} else {
				r = av / bv
			}
		case OpRem:
			if bv == 0 {
				return nil, false
			}
			if x.Unsigned {
				r = int32(au % bu)
			} else if av == math.MinInt32 && bv == -1 {
				r = 0
			} else {
				r = av % bv
			}
		case OpAnd:
			r = av & bv
		case OpOr:
			r = av | bv
		case OpXor:
			r = av ^ bv
		case OpShl:
			r = av << (bu & 31)
		case OpShr:
			if x.Unsigned {
				r = int32(au >> (bu & 31))
			} else {
				r = av >> (bu & 31)
			}
		default:
			var cond bool
			if x.Unsigned {
				switch x.Op {
				case OpEq:
					cond = au == bu
				case OpNe:
					cond = au != bu
				case OpLt:
					cond = au < bu
				case OpLe:
					cond = au <= bu
				case OpGt:
					cond = au > bu
				case OpGe:
					cond = au >= bu
				default:
					return nil, false
				}
			} else {
				switch x.Op {
				case OpEq:
					cond = av == bv
				case OpNe:
					cond = av != bv
				case OpLt:
					cond = av < bv
				case OpLe:
					cond = av <= bv
				case OpGt:
					cond = av > bv
				case OpGe:
					cond = av >= bv
				default:
					return nil, false
				}
			}
			return boolConst(cond), true
		}
		return ConstI32(r), true
	case I64:
		av, bv := a.Raw, b.Raw
		au, bu := uint64(a.Raw), uint64(b.Raw)
		var r int64
		switch x.Op {
		case OpAdd:
			r = av + bv
		case OpSub:
			r = av - bv
		case OpMul:
			r = av * bv
		case OpDiv:
			if bv == 0 || (av == math.MinInt64 && bv == -1) {
				return nil, false
			}
			if x.Unsigned {
				r = int64(au / bu)
			} else {
				r = av / bv
			}
		case OpRem:
			if bv == 0 {
				return nil, false
			}
			if x.Unsigned {
				r = int64(au % bu)
			} else if av == math.MinInt64 && bv == -1 {
				r = 0
			} else {
				r = av % bv
			}
		case OpAnd:
			r = av & bv
		case OpOr:
			r = av | bv
		case OpXor:
			r = av ^ bv
		case OpShl:
			r = av << (bu & 63)
		case OpShr:
			if x.Unsigned {
				r = int64(au >> (bu & 63))
			} else {
				r = av >> (bu & 63)
			}
		default:
			var cond bool
			if x.Unsigned {
				switch x.Op {
				case OpEq:
					cond = au == bu
				case OpNe:
					cond = au != bu
				case OpLt:
					cond = au < bu
				case OpLe:
					cond = au <= bu
				case OpGt:
					cond = au > bu
				case OpGe:
					cond = au >= bu
				default:
					return nil, false
				}
			} else {
				switch x.Op {
				case OpEq:
					cond = av == bv
				case OpNe:
					cond = av != bv
				case OpLt:
					cond = av < bv
				case OpLe:
					cond = av <= bv
				case OpGt:
					cond = av > bv
				case OpGe:
					cond = av >= bv
				default:
					return nil, false
				}
			}
			return boolConst(cond), true
		}
		return ConstI64(r), true
	case F32, F64:
		var av, bv float64
		if x.T == F32 {
			av = float64(math.Float32frombits(uint32(a.Raw)))
			bv = float64(math.Float32frombits(uint32(b.Raw)))
		} else {
			av = math.Float64frombits(uint64(a.Raw))
			bv = math.Float64frombits(uint64(b.Raw))
		}
		var r float64
		switch x.Op {
		case OpAdd:
			r = av + bv
		case OpSub:
			r = av - bv
		case OpMul:
			r = av * bv
		case OpDiv:
			r = av / bv
		case OpEq:
			return boolConst(av == bv), true
		case OpNe:
			return boolConst(av != bv), true
		case OpLt:
			return boolConst(av < bv), true
		case OpLe:
			return boolConst(av <= bv), true
		case OpGt:
			return boolConst(av > bv), true
		case OpGe:
			return boolConst(av >= bv), true
		default:
			return nil, false
		}
		if x.T == F32 {
			return &Const{T: F32, Raw: int64(math.Float32bits(float32(r)))}, true
		}
		return ConstF64(r), true
	}
	return nil, false
}

func boolConst(b bool) *Const {
	if b {
		return ConstI32(1)
	}
	return ConstI32(0)
}

func foldUn(x *Un, c *Const) (Expr, bool) {
	switch x.Op {
	case OpNeg:
		switch x.T {
		case I32:
			return ConstI32(-int32(c.Raw)), true
		case I64:
			return ConstI64(-c.Raw), true
		case F32:
			return &Const{T: F32, Raw: int64(math.Float32bits(-math.Float32frombits(uint32(c.Raw))))}, true
		case F64:
			return ConstF64(-math.Float64frombits(uint64(c.Raw))), true
		}
	case OpEqz:
		if x.T == I64 {
			return boolConst(c.Raw == 0), true
		}
		return boolConst(int32(c.Raw) == 0), true
	case OpBitNot:
		if x.T == I64 {
			return ConstI64(^c.Raw), true
		}
		return ConstI32(^int32(c.Raw)), true
	case OpAbs:
		if x.T == F64 {
			return ConstF64(math.Abs(math.Float64frombits(uint64(c.Raw)))), true
		}
	case OpSqrt:
		if x.T == F64 {
			return ConstF64(math.Sqrt(math.Float64frombits(uint64(c.Raw)))), true
		}
	case OpFloor:
		if x.T == F64 {
			return ConstF64(math.Floor(math.Float64frombits(uint64(c.Raw)))), true
		}
	case OpCeil:
		if x.T == F64 {
			return ConstF64(math.Ceil(math.Float64frombits(uint64(c.Raw)))), true
		}
	}
	return nil, false
}

func foldConv(x *Conv, c *Const) (Expr, bool) {
	var out *Const
	switch {
	case x.From == I32 && x.To == I32 && x.Narrow != 0:
		v := int32(c.Raw)
		if x.Narrow == 8 {
			if x.NarrowSigned {
				v = int32(int8(v))
			} else {
				v = int32(uint8(v))
			}
		} else {
			if x.NarrowSigned {
				v = int32(int16(v))
			} else {
				v = int32(uint16(v))
			}
		}
		out = ConstI32(v)
	case x.From == I32 && x.To == I64:
		if x.Signed {
			out = ConstI64(int64(int32(c.Raw)))
		} else {
			out = ConstI64(int64(uint32(c.Raw)))
		}
	case x.From == I64 && x.To == I32:
		out = ConstI32(int32(c.Raw))
	case x.From == I32 && x.To == F64:
		if x.Signed {
			out = ConstF64(float64(int32(c.Raw)))
		} else {
			out = ConstF64(float64(uint32(c.Raw)))
		}
	case x.From == I32 && x.To == F32:
		if x.Signed {
			out = ConstF32(float32(int32(c.Raw)))
		} else {
			out = ConstF32(float32(uint32(c.Raw)))
		}
	case x.From == I64 && x.To == F64:
		if x.Signed {
			out = ConstF64(float64(c.Raw))
		} else {
			out = ConstF64(float64(uint64(c.Raw)))
		}
	case x.From == I64 && x.To == F32:
		if x.Signed {
			out = ConstF32(float32(c.Raw))
		} else {
			out = ConstF32(float32(uint64(c.Raw)))
		}
	case x.From == F64 && x.To == F32:
		out = ConstF32(float32(math.Float64frombits(uint64(c.Raw))))
	case x.From == F32 && x.To == F64:
		out = ConstF64(float64(math.Float32frombits(uint32(c.Raw))))
	case x.From.IsFloat() && (x.To == I32 || x.To == I64):
		var f float64
		if x.From == F32 {
			f = float64(math.Float32frombits(uint32(c.Raw)))
		} else {
			f = math.Float64frombits(uint64(c.Raw))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, false // would trap at runtime; keep
		}
		if x.To == I32 {
			if f >= 2147483648 || f < -2147483649 {
				return nil, false
			}
			v := ConstI32(int32(f))
			if x.Narrow != 0 {
				return foldConv(&Conv{From: I32, To: I32, Narrow: x.Narrow, NarrowSigned: x.NarrowSigned}, v)
			}
			out = v
		} else {
			if f >= 9.223372036854776e18 || f <= -9.223372036854776e18 {
				return nil, false
			}
			out = ConstI64(int64(f))
		}
	default:
		return nil, false
	}
	return out, true
}

// foldControl simplifies If/Loop with constant conditions and drops
// unreachable trailing statements.
func foldControl(p *Program, f *Func) {
	f.Body = foldStmts(f.Body)
}

func foldStmts(body []Stmt) []Stmt {
	// Fresh slice: the const-If and Seq-flatten cases can append more
	// statements than have been consumed, so building into body[:0] would
	// overwrite entries not yet read (duplicating some, dropping others).
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *If:
			st.Then = foldStmts(st.Then)
			st.Else = foldStmts(st.Else)
			if c, ok := st.Cond.(*Const); ok {
				if c.Raw != 0 {
					out = append(out, st.Then...)
				} else {
					out = append(out, st.Else...)
				}
				continue
			}
			if len(st.Then) == 0 && len(st.Else) == 0 && pureExpr(st.Cond) {
				continue
			}
		case *Loop:
			st.Body = foldStmts(st.Body)
			st.Post = foldStmts(st.Post)
			if c, ok := st.Cond.(*Const); ok && c.Raw == 0 && !st.PostTest {
				continue // never runs
			}
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = foldStmts(st.Cases[i].Body)
			}
			st.Default = foldStmts(st.Default)
		case *VecSection:
			st.Body = foldStmts(st.Body)
			if len(st.Body) == 0 {
				continue
			}
		case *EvalStmt:
			if se, ok := st.X.(*Seq); ok {
				// Flatten Seq side effects evaluated for effect.
				out = append(out, foldStmts(se.Stmts)...)
				if !pureExpr(se.X) {
					out = append(out, &EvalStmt{X: se.X})
				}
				continue
			}
			if pureExpr(st.X) {
				continue
			}
		}
		out = append(out, s)
		// Unreachable code after an unconditional terminator.
		switch s.(type) {
		case *Return, *Break, *Continue:
			return out
		}
	}
	return out
}

// ---- dce: dead code elimination (unused local stores) ----

// DCE removes assignments to locals that are never read (when the
// right-hand side is pure) across the program.
func DCE(p *Program) {
	for _, f := range p.Funcs {
		reads := make([]int, len(f.Locals))
		walkExprs(f.Body, func(e Expr) {
			if gl, ok := e.(*GetLocal); ok {
				reads[gl.Local]++
			}
		})
		f.Body = dropDeadLocalStores(f.Body, reads)
	}
}

func dropDeadLocalStores(body []Stmt, reads []int) []Stmt {
	out := body[:0]
	for _, s := range body {
		switch st := s.(type) {
		case *SetLocal:
			if st.Local < len(reads) && reads[st.Local] == 0 && pureExpr(st.X) {
				continue
			}
		case *If:
			st.Then = dropDeadLocalStores(st.Then, reads)
			st.Else = dropDeadLocalStores(st.Else, reads)
		case *Loop:
			st.Body = dropDeadLocalStores(st.Body, reads)
			st.Post = dropDeadLocalStores(st.Post, reads)
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = dropDeadLocalStores(st.Cases[i].Body, reads)
			}
			st.Default = dropDeadLocalStores(st.Default, reads)
		case *VecSection:
			st.Body = dropDeadLocalStores(st.Body, reads)
		}
		out = append(out, s)
	}
	return out
}

// ---- globalopt: whole-program global cleanup ----

// GlobalOpt removes register globals that are never read, functions that
// are never called (reachability from exports), and — unless
// skipDeadStoreSweep is set, modeling the -Ofast pass-ordering bug the
// paper traces in Fig. 7 — stores to memory-resident globals whose contents
// are never loaded.
func GlobalOpt(p *Program, skipDeadStoreSweep bool) {
	removeDeadGlobalSets(p)
	if !skipDeadStoreSweep {
		sweepDeadMemStores(p)
	}
	removeUnreachableFuncs(p)
}

func removeDeadGlobalSets(p *Program) {
	read := make([]bool, len(p.Globals))
	read[p.SPGlobal] = true
	for _, f := range p.Funcs {
		walkExprs(f.Body, func(e Expr) {
			if gg, ok := e.(*GetGlobal); ok {
				read[gg.Global] = true
			}
		})
	}
	for _, f := range p.Funcs {
		f.Body = dropStmts(f.Body, func(s Stmt) bool {
			sg, ok := s.(*SetGlobal)
			return ok && !read[sg.Global] && pureExpr(sg.X)
		})
	}
}

// sweepDeadMemStores drops stores into memory globals that are never loaded
// and whose address never escapes. This is the dead-store part of
// -globalopt; the paper's ADPCM case (Fig. 7) shows -Ofast losing it.
func sweepDeadMemStores(p *Program) {
	if len(p.MemGlobals) == 0 {
		return
	}
	loaded := make([]bool, len(p.MemGlobals))
	escaped := make([]bool, len(p.MemGlobals))
	rangeOf := func(addr uint32) int {
		for i, g := range p.MemGlobals {
			if addr >= g.Addr && addr < g.Addr+g.Size {
				return i
			}
		}
		return -1
	}
	// baseConst extracts the constant base address of an address expression.
	var baseConst func(e Expr) (uint32, bool)
	baseConst = func(e Expr) (uint32, bool) {
		switch x := e.(type) {
		case *Const:
			if x.T == I32 {
				return uint32(int32(x.Raw)), true
			}
		case *Bin:
			if x.Op == OpAdd && x.T == I32 {
				if c, ok := baseConst(x.X); ok {
					return c, true
				}
				if c, ok := baseConst(x.Y); ok {
					return c, true
				}
			}
		}
		return 0, false
	}
	// Mark usage: loads mark loaded; consts-in-range appearing anywhere
	// except as a store base mark escaped.
	var markEscapes func(e Expr)
	markEscapes = func(e Expr) {
		if c, ok := e.(*Const); ok && c.T == I32 {
			if gi := rangeOf(uint32(int32(c.Raw))); gi >= 0 {
				escaped[gi] = true
			}
		}
	}
	for _, f := range p.Funcs {
		walkStmts(f.Body, func(s Stmt) {
			switch st := s.(type) {
			case *Store:
				// The store's base const is a legitimate store target; any
				// other range-const inside the address or value escapes.
				base, _ := baseConst(st.Addr)
				walkSubExprs(st.Addr, func(e Expr) {
					if c, ok := e.(*Const); ok && c.T == I32 && uint32(int32(c.Raw)) != base {
						markEscapes(c)
					}
				})
				walkSubExprs(st.X, markEscapes)
			case *SetLocal:
				walkSubExprs(st.X, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
			case *SetGlobal:
				walkSubExprs(st.X, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
			case *EvalStmt:
				walkSubExprs(st.X, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
			case *If:
				walkSubExprs(st.Cond, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
			case *Loop:
				if st.Cond != nil {
					walkSubExprs(st.Cond, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
				}
			case *Return:
				if st.X != nil {
					walkSubExprs(st.X, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
				}
			case *Switch:
				walkSubExprs(st.Tag, func(e Expr) { markLoadsAndEscapes(e, rangeOf, loaded, escaped) })
			}
		})
		// Loads inside store value/address expressions too.
		walkExprs(f.Body, func(e Expr) {
			if ld, ok := e.(*Load); ok {
				if base, ok := baseConstOf(ld.Addr); ok {
					if gi := rangeOf(base); gi >= 0 {
						loaded[gi] = true
					}
				} else {
					// Dynamic address: could alias anything that escaped;
					// conservatively mark all escaped globals loaded.
					for i := range loaded {
						if escaped[i] {
							loaded[i] = true
						}
					}
				}
			}
		})
	}
	dead := func(addr Expr) bool {
		base, ok := baseConstOf(addr)
		if !ok {
			return false
		}
		gi := rangeOf(base)
		return gi >= 0 && !loaded[gi] && !escaped[gi]
	}
	for _, f := range p.Funcs {
		f.Body = rewriteStmts(f.Body, func(s Stmt) []Stmt {
			st, ok := s.(*Store)
			if !ok || !dead(st.Addr) {
				return nil
			}
			// Salvage side effects (e.g. lane-carrier sequences) as bare
			// evaluations; later constfold/DCE clean them up.
			out := []Stmt{}
			if !pureExpr(st.Addr) {
				out = append(out, &EvalStmt{X: st.Addr})
			}
			if !pureExpr(st.X) {
				out = append(out, &EvalStmt{X: st.X})
			}
			return out
		})
	}
}

// rewriteStmts replaces statements for which fn returns a non-nil slice
// (which may be empty to delete), recursing into control structure.
func rewriteStmts(body []Stmt, fn func(Stmt) []Stmt) []Stmt {
	out := body[:0:0]
	for _, s := range body {
		if repl := fn(s); repl != nil {
			out = append(out, repl...)
			continue
		}
		switch st := s.(type) {
		case *If:
			st.Then = rewriteStmts(st.Then, fn)
			st.Else = rewriteStmts(st.Else, fn)
		case *Loop:
			st.Body = rewriteStmts(st.Body, fn)
			st.Post = rewriteStmts(st.Post, fn)
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = rewriteStmts(st.Cases[i].Body, fn)
			}
			st.Default = rewriteStmts(st.Default, fn)
		case *VecSection:
			st.Body = rewriteStmts(st.Body, fn)
		}
		out = append(out, s)
	}
	return out
}

func markLoadsAndEscapes(e Expr, rangeOf func(uint32) int, loaded, escaped []bool) {
	switch x := e.(type) {
	case *Load:
		if base, ok := baseConstOf(x.Addr); ok {
			if gi := rangeOf(base); gi >= 0 {
				loaded[gi] = true
			}
		}
	case *Const:
		if x.T == I32 {
			if gi := rangeOf(uint32(int32(x.Raw))); gi >= 0 {
				// A const address flowing into arbitrary computation: it may
				// be a load base (handled above) — treat as a (potential)
				// load to stay conservative.
				loaded[gi] = true
			}
		}
	}
}

func baseConstOf(e Expr) (uint32, bool) {
	switch x := e.(type) {
	case *Const:
		if x.T == I32 {
			return uint32(int32(x.Raw)), true
		}
	case *Bin:
		if x.Op == OpAdd && x.T == I32 {
			if c, ok := baseConstOf(x.X); ok {
				return c, true
			}
			if c, ok := baseConstOf(x.Y); ok {
				return c, true
			}
		}
	}
	return 0, false
}

// walkSubExprs visits e and all subexpressions.
func walkSubExprs(e Expr, fn func(Expr)) {
	fn(e)
	switch x := e.(type) {
	case *Load:
		walkSubExprs(x.Addr, fn)
	case *Bin:
		walkSubExprs(x.X, fn)
		walkSubExprs(x.Y, fn)
	case *Un:
		walkSubExprs(x.X, fn)
	case *Conv:
		walkSubExprs(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			walkSubExprs(a, fn)
		}
	case *CallHost:
		for _, a := range x.Args {
			walkSubExprs(a, fn)
		}
	case *Ternary:
		walkSubExprs(x.C, fn)
		walkSubExprs(x.X, fn)
		walkSubExprs(x.Y, fn)
	case *Seq:
		walkExprs(x.Stmts, fn)
		walkSubExprs(x.X, fn)
	}
}

func removeUnreachableFuncs(p *Program) {
	reach := make([]bool, len(p.Funcs))
	var mark func(i int)
	mark = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		walkExprs(p.Funcs[i].Body, func(e Expr) {
			if c, ok := e.(*Call); ok {
				mark(c.Func)
			}
		})
	}
	for i, f := range p.Funcs {
		if f.Exported || i == p.MainFunc {
			mark(i)
		}
	}
	remap := make([]int, len(p.Funcs))
	var kept []*Func
	for i, f := range p.Funcs {
		if reach[i] {
			remap[i] = len(kept)
			kept = append(kept, f)
		} else {
			remap[i] = -1
		}
	}
	if len(kept) == len(p.Funcs) {
		return
	}
	for _, f := range kept {
		mapStmtsExprs(f.Body, func(e Expr) Expr {
			if c, ok := e.(*Call); ok {
				c.Func = remap[c.Func]
			}
			return e
		})
	}
	p.MainFunc = remap[p.MainFunc]
	p.Funcs = kept
}

// dropStmts filters statements recursively.
func dropStmts(body []Stmt, drop func(Stmt) bool) []Stmt {
	out := body[:0]
	for _, s := range body {
		if drop(s) {
			continue
		}
		switch st := s.(type) {
		case *If:
			st.Then = dropStmts(st.Then, drop)
			st.Else = dropStmts(st.Else, drop)
		case *Loop:
			st.Body = dropStmts(st.Body, drop)
			st.Post = dropStmts(st.Post, drop)
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = dropStmts(st.Cases[i].Body, drop)
			}
			st.Default = dropStmts(st.Default, drop)
		case *VecSection:
			st.Body = dropStmts(st.Body, drop)
		}
		out = append(out, s)
	}
	return out
}
