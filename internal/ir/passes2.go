package ir

import "math"

// ---- inline: inline small functions into their callers ----

// Inline substitutes bodies of small, non-recursive functions with a single
// trailing return. maxSize is the body-size budget (-O2 uses a modest one,
// -O3/-O4 progressively larger; -Oz disables inlining entirely to keep code
// small).
func Inline(p *Program, maxSize int) {
	eligible := make([]bool, len(p.Funcs))
	for i, f := range p.Funcs {
		eligible[i] = inlinable(p, i, f, maxSize)
	}
	for ci, caller := range p.Funcs {
		for _, callee := range inlineInto(p, ci, caller, eligible) {
			_ = callee
		}
	}
}

func inlinable(p *Program, idx int, f *Func, maxSize int) bool {
	if f.NoInline || f.Exported || f.FrameSize != 0 {
		return false
	}
	if countStmts(f.Body) > maxSize {
		return false
	}
	// No return except as the final top-level statement; no self-calls.
	ok := true
	for i, s := range f.Body {
		if _, isRet := s.(*Return); isRet && i != len(f.Body)-1 {
			ok = false
		}
	}
	walkStmts(f.Body, func(s Stmt) {
		if r, isRet := s.(*Return); isRet {
			// Nested return (inside if/loop) disqualifies, unless it is the
			// top-level trailing one (checked above by identity below).
			if len(f.Body) == 0 || s != f.Body[len(f.Body)-1] {
				ok = false
			}
			_ = r
		}
	})
	walkExprs(f.Body, func(e Expr) {
		if c, isCall := e.(*Call); isCall && c.Func == idx {
			ok = false
		}
	})
	return ok
}

// inlineInto replaces eligible calls in caller. Only calls appearing as the
// full RHS of SetLocal/EvalStmt are inlined (the common shape after
// lowering); value results route through a fresh local.
func inlineInto(p *Program, callerIdx int, caller *Func, eligible []bool) []int {
	var inlined []int
	var rewrite func(body []Stmt) []Stmt
	rewrite = func(body []Stmt) []Stmt {
		var out []Stmt
		for _, s := range body {
			switch st := s.(type) {
			case *SetLocal:
				if c, ok := st.X.(*Call); ok && c.Func != callerIdx && eligible[c.Func] && allPure(c.Args) {
					stmts, result := spliceCall(p, caller, c)
					out = append(out, stmts...)
					out = append(out, &SetLocal{Local: st.Local, X: result})
					inlined = append(inlined, c.Func)
					continue
				}
			case *EvalStmt:
				if c, ok := st.X.(*Call); ok && c.Func != callerIdx && eligible[c.Func] && allPure(c.Args) {
					stmts, _ := spliceCall(p, caller, c)
					out = append(out, stmts...)
					inlined = append(inlined, c.Func)
					continue
				}
			case *If:
				st.Then = rewrite(st.Then)
				st.Else = rewrite(st.Else)
			case *Loop:
				st.Body = rewrite(st.Body)
				st.Post = rewrite(st.Post)
			case *Switch:
				for i := range st.Cases {
					st.Cases[i].Body = rewrite(st.Cases[i].Body)
				}
				st.Default = rewrite(st.Default)
			case *VecSection:
				st.Body = rewrite(st.Body)
			}
			out = append(out, s)
		}
		return out
	}
	caller.Body = rewrite(caller.Body)
	return inlined
}

func allPure(args []Expr) bool {
	for _, a := range args {
		if !pureExpr(a) {
			return false
		}
	}
	return true
}

// spliceCall clones the callee body into the caller's local space.
func spliceCall(p *Program, caller *Func, c *Call) ([]Stmt, Expr) {
	callee := p.Funcs[c.Func]
	// Map callee locals to fresh caller locals.
	remap := make([]int, len(callee.Locals))
	for i, t := range callee.Locals {
		remap[i] = caller.NewLocal(t)
	}
	var out []Stmt
	for i, a := range c.Args {
		out = append(out, &SetLocal{Local: remap[i], X: a})
	}
	body := cloneStmts(callee.Body)
	mapStmtsExprs(body, func(e Expr) Expr {
		if gl, ok := e.(*GetLocal); ok {
			return &GetLocal{T: gl.T, Local: remap[gl.Local]}
		}
		return e
	})
	remapSetLocals(body, remap)
	var result Expr
	if len(body) > 0 {
		if r, ok := body[len(body)-1].(*Return); ok {
			body = body[:len(body)-1]
			if r.X != nil {
				tmp := caller.NewLocal(callee.Ret)
				body = append(body, &SetLocal{Local: tmp, X: r.X})
				result = &GetLocal{T: callee.Ret, Local: tmp}
			}
		}
	}
	if result == nil && callee.Ret != Void {
		// Value function without trailing return shape: fall back to a
		// regular call (should not happen given inlinable()).
		return []Stmt{}, c
	}
	out = append(out, body...)
	if result == nil {
		result = ConstI32(0)
	}
	return out, result
}

func remapSetLocals(body []Stmt, remap []int) {
	walkStmts(body, func(s Stmt) {
		if sl, ok := s.(*SetLocal); ok {
			sl.Local = remap[sl.Local]
		}
	})
}

// ---- licm: loop-invariant code motion ----

// LICM hoists loop-invariant, non-trapping pure computations out of loops
// into locals initialized before the loop.
func LICM(p *Program) {
	for _, f := range p.Funcs {
		f.Body = licmBody(f, f.Body)
	}
}

func licmBody(f *Func, body []Stmt) []Stmt {
	var out []Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			st.Body = licmBody(f, st.Body)
			st.Post = licmBody(f, st.Post)
			hoisted := hoistInvariants(f, st)
			out = append(out, hoisted...)
			out = append(out, st)
			continue
		case *If:
			st.Then = licmBody(f, st.Then)
			st.Else = licmBody(f, st.Else)
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = licmBody(f, st.Cases[i].Body)
			}
			st.Default = licmBody(f, st.Default)
		case *VecSection:
			st.Body = licmBody(f, st.Body)
		}
		out = append(out, s)
	}
	return out
}

func hoistInvariants(f *Func, loop *Loop) []Stmt {
	assigned := map[int]bool{}
	hasCalls := false
	hasStores := false
	scan := append(append([]Stmt{}, loop.Body...), loop.Post...)
	walkStmts(scan, func(s Stmt) {
		switch st := s.(type) {
		case *SetLocal:
			assigned[st.Local] = true
		case *SetGlobal:
			hasCalls = true // global writes: treat like calls for safety
		case *Store:
			hasStores = true
		}
	})
	walkExprs(scan, func(e Expr) {
		switch e.(type) {
		case *Call, *CallHost:
			hasCalls = true
		}
	})
	_ = hasStores

	invariant := func(e Expr) bool {
		ok := true
		walkSubExprs(e, func(x Expr) {
			switch v := x.(type) {
			case *GetLocal:
				if assigned[v.Local] {
					ok = false
				}
			case *GetGlobal:
				if hasCalls {
					ok = false
				}
			case *Load, *Call, *CallHost, *Seq, *FrameAddr:
				ok = false
			case *Bin:
				if v.Op == OpDiv || v.Op == OpRem {
					ok = false // may trap: cannot speculate
				}
			}
		})
		return ok
	}

	var hoistStmts []Stmt
	hoistExpr := func(e Expr) Expr {
		switch e.(type) {
		case *Const, *GetLocal, *GetGlobal:
			return e
		}
		if countOps(e) >= 2 && invariant(e) {
			t := e.ResultType()
			if t == Void {
				return e
			}
			tmp := f.NewLocal(t)
			hoistStmts = append(hoistStmts, &SetLocal{Local: tmp, X: e})
			return &GetLocal{T: t, Local: tmp}
		}
		return e
	}
	// Rewrite bottom-up would hoist leaves first; instead hoist maximal
	// invariant trees: apply top-down via custom traversal.
	var rewriteExpr func(e Expr) Expr
	rewriteExpr = func(e Expr) Expr {
		if h := hoistExpr(e); h != e {
			return h
		}
		switch x := e.(type) {
		case *Load:
			x.Addr = rewriteExpr(x.Addr)
		case *Bin:
			x.X = rewriteExpr(x.X)
			x.Y = rewriteExpr(x.Y)
		case *Un:
			x.X = rewriteExpr(x.X)
		case *Conv:
			x.X = rewriteExpr(x.X)
		case *Call:
			for i := range x.Args {
				x.Args[i] = rewriteExpr(x.Args[i])
			}
		case *CallHost:
			for i := range x.Args {
				x.Args[i] = rewriteExpr(x.Args[i])
			}
		case *Ternary:
			x.C = rewriteExpr(x.C)
			x.X = rewriteExpr(x.X)
			x.Y = rewriteExpr(x.Y)
		}
		return e
	}
	rewriteIn := func(body []Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *SetLocal:
				st.X = rewriteExpr(st.X)
			case *SetGlobal:
				st.X = rewriteExpr(st.X)
			case *Store:
				st.Addr = rewriteExpr(st.Addr)
				st.X = rewriteExpr(st.X)
			case *EvalStmt:
				st.X = rewriteExpr(st.X)
			case *If:
				st.Cond = rewriteExpr(st.Cond)
			case *Return:
				if st.X != nil {
					st.X = rewriteExpr(st.X)
				}
			}
		}
	}
	rewriteIn(loop.Body)
	rewriteIn(loop.Post)
	if loop.Cond != nil {
		loop.Cond = rewriteExpr(loop.Cond)
	}
	return hoistStmts
}

// ---- rematconst: constant rematerialization (the -O2 behavior behind the
// paper's Fig. 8 covariance case) ----

// RematConst propagates locals that are assigned exactly once with a
// constant into their uses, deleting the local assignment. On a register
// machine constants fold into instruction immediates (free); on the Wasm
// stack machine each use rematerializes the constant — and the Wasm backend
// encodes integral f64 constants as i32.const + f64.convert_i32_s for size,
// exactly the two-instruction sequence the paper observed.
func RematConst(p *Program) {
	for _, f := range p.Funcs {
		writes := make([]int, len(f.Locals))
		constVal := make([]*Const, len(f.Locals))
		walkStmts(f.Body, func(s Stmt) {
			if sl, ok := s.(*SetLocal); ok {
				writes[sl.Local]++
				if c, isC := sl.X.(*Const); isC && writes[sl.Local] == 1 {
					constVal[sl.Local] = c
				} else {
					constVal[sl.Local] = nil
				}
			}
		})
		// A single static constant write only defines the local at uses the
		// write dominates. Params carry an implicit entry write and plain
		// locals read zero until their first store, so a use ordered before
		// the write (earlier statement, or an earlier iteration of a loop
		// enclosing the write) must not be rewritten. Structured control flow
		// makes a positional check exact: accept only writes that are
		// top-level statements of the body, and only when every use of the
		// local sits in a strictly later top-level statement.
		writePos := make([]int, len(f.Locals))
		for i := range writePos {
			writePos[i] = -1
		}
		for pos, s := range f.Body {
			if sl, ok := s.(*SetLocal); ok && writes[sl.Local] == 1 && constVal[sl.Local] != nil {
				writePos[sl.Local] = pos
			}
		}
		for pos, s := range f.Body {
			usePos := pos
			walkExprs([]Stmt{s}, func(e Expr) {
				if gl, ok := e.(*GetLocal); ok && gl.Local < len(writePos) &&
					writePos[gl.Local] >= 0 && usePos <= writePos[gl.Local] {
					writePos[gl.Local] = -1 // use not dominated by the write
				}
			})
		}
		mapStmtsExprs(f.Body, func(e Expr) Expr {
			if gl, ok := e.(*GetLocal); ok && gl.Local < len(writes) &&
				writes[gl.Local] == 1 && constVal[gl.Local] != nil &&
				writePos[gl.Local] >= 0 {
				c := *constVal[gl.Local]
				return &c
			}
			return e
		})
	}
	DCE(p)
}

// ---- consthoist: the -Oz counterpart (paper Fig. 8, -O1/-Oz behavior) ----

// ConstHoist moves repeated non-trivial constants (floats, i64, and large
// i32 values) into function-entry locals so each use is a single local read
// — smaller code and, on a stack interpreter, faster.
func ConstHoist(p *Program) {
	for _, f := range p.Funcs {
		type key struct {
			t   Type
			raw int64
		}
		count := map[key]int{}
		walkExprs(f.Body, func(e Expr) {
			if c, ok := e.(*Const); ok && hoistableConst(c) {
				count[key{c.T, c.Raw}]++
			}
		})
		hoisted := map[key]int{}
		var entry []Stmt
		mapStmtsExprs(f.Body, func(e Expr) Expr {
			c, ok := e.(*Const)
			if !ok || !hoistableConst(c) {
				return e
			}
			k := key{c.T, c.Raw}
			if count[k] < 2 {
				return e
			}
			idx, seen := hoisted[k]
			if !seen {
				idx = f.NewLocal(c.T)
				hoisted[k] = idx
				entry = append(entry, &SetLocal{Local: idx, X: &Const{T: c.T, Raw: c.Raw}})
			}
			return &GetLocal{T: c.T, Local: idx}
		})
		if len(entry) > 0 {
			f.Body = append(entry, f.Body...)
		}
	}
}

func hoistableConst(c *Const) bool {
	switch c.T {
	case F32, F64, I64:
		return true
	case I32:
		v := int32(c.Raw)
		return v > 4095 || v < -4096 // large immediates only
	}
	return false
}

// ---- vectorize: the -vectorize-loops model (§2.1.2) ----

// Vectorize unrolls eligible innermost counted loops by 4 and routes each
// lane's stored values through lane-carrier locals — the scalarization
// residue of LLVM's vector IR on a target without SIMD. The x86 backend
// recognizes the lane carriers (Func.VecLocals) and executes them at SIMD
// cost; the Wasm and JS backends pay for them at full price. This is the
// heart of the paper's finding that -O2 produces the *slowest* Wasm.
func Vectorize(p *Program) {
	for _, f := range p.Funcs {
		f.Body = vectorizeBody(f, f.Body)
	}
}

const vecWidth = 2

func vectorizeBody(f *Func, body []Stmt) []Stmt {
	var out []Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			st.Body = vectorizeBody(f, st.Body)
			st.Post = vectorizeBody(f, st.Post)
			if v := tryVectorize(f, st); v != nil {
				out = append(out, v...)
				continue
			}
		case *If:
			st.Then = vectorizeBody(f, st.Then)
			st.Else = vectorizeBody(f, st.Else)
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = vectorizeBody(f, st.Cases[i].Body)
			}
			st.Default = vectorizeBody(f, st.Default)
		case *VecSection:
			// already vectorized
		}
		out = append(out, s)
	}
	return out
}

// tryVectorize returns the replacement (main unrolled loop + epilogue) or
// nil if the loop is not eligible.
func tryVectorize(f *Func, loop *Loop) []Stmt {
	if loop.PostTest || loop.Unrolled || loop.Cond == nil {
		return nil
	}
	// Shape: cond = (i < bound), post = [i = i + step], step positive const.
	cond, ok := loop.Cond.(*Bin)
	if !ok || cond.Op != OpLt || cond.T != I32 {
		return nil
	}
	iv, ok := cond.X.(*GetLocal)
	if !ok {
		return nil
	}
	if !invariantBound(cond.Y, iv.Local) {
		return nil
	}
	if len(loop.Post) != 1 {
		return nil
	}
	post, ok := loop.Post[0].(*SetLocal)
	if !ok || post.Local != iv.Local {
		return nil
	}
	inc, ok := post.X.(*Bin)
	if !ok || inc.Op != OpAdd || inc.T != I32 {
		return nil
	}
	incBase, ok := inc.X.(*GetLocal)
	if !ok || incBase.Local != iv.Local {
		return nil
	}
	step, ok := inc.Y.(*Const)
	if !ok || int32(step.Raw) <= 0 {
		return nil
	}
	// Body restrictions: no control transfers out, no inner loops, and the
	// induction variable written only by the post statement.
	eligible := true
	walkStmts(loop.Body, func(s Stmt) {
		switch st := s.(type) {
		case *Break, *Continue, *Return, *Loop, *Switch:
			eligible = false
		case *SetLocal:
			if st.Local == iv.Local {
				eligible = false
			}
		}
	})
	if !eligible || countStmts(loop.Body) > 40 || countStmts(loop.Body) == 0 {
		return nil
	}

	stepV := int32(step.Raw)
	// Main loop condition: i + (W-1)*step < bound - all W iterations valid.
	guard := &Bin{Op: OpLt, T: I32, Unsigned: cond.Unsigned,
		X: &Bin{Op: OpAdd, T: I32,
			X: &GetLocal{T: I32, Local: iv.Local},
			Y: ConstI32(stepV * (vecWidth - 1))},
		Y: cloneExpr(cond.Y),
	}
	var unrolled []Stmt
	for lane := 0; lane < vecWidth; lane++ {
		laneBody := cloneStmts(loop.Body)
		addLaneCarriers(f, laneBody)
		if lane > 0 {
			// Shadow lanes: the same vector instructions' other lanes. SIMD
			// targets execute them nearly for free; stack machines pay in
			// full (there is no SIMD in the Wasm MVP the study targets).
			laneBody = []Stmt{&VecSection{Body: laneBody}}
		}
		unrolled = append(unrolled, laneBody...)
		unrolled = append(unrolled, &SetLocal{Local: iv.Local, X: &Bin{
			Op: OpAdd, T: I32,
			X: &GetLocal{T: I32, Local: iv.Local},
			Y: ConstI32(stepV),
		}})
	}
	main := &Loop{Cond: guard, Body: unrolled, Unrolled: true}
	epilogue := &Loop{Cond: loop.Cond, Body: loop.Body, Post: loop.Post, Unrolled: true}
	return []Stmt{main, epilogue}
}

func invariantBound(e Expr, iv int) bool {
	ok := true
	walkSubExprs(e, func(x Expr) {
		switch v := x.(type) {
		case *GetLocal:
			if v.Local == iv {
				ok = false
			}
		case *Const:
		case *Bin, *Un, *Conv:
		default:
			ok = false
		}
	})
	return ok
}

// addLaneCarriers routes each stored value — and each memory load — through
// a fresh lane-carrier local: the insert/extract residue left when LLVM's
// vector IR is scalarized for a target without SIMD. The x86 backend
// executes carrier traffic at SIMD cost; the stack machines pay full price.
// The carriers are recorded in Func.VecLocals.
func addLaneCarriers(f *Func, body []Stmt) {
	carry := func(t Type, x Expr) Expr {
		carrier := f.NewLocal(t)
		markVecLocal(f, carrier)
		return &Seq{
			Stmts: []Stmt{&SetLocal{Local: carrier, X: x}},
			X:     &GetLocal{T: t, Local: carrier},
		}
	}
	// The vector data path: every lane of a vector load and of each
	// floating-point vector operation materializes through a lane temp.
	carryLoads := func(e Expr) Expr {
		return mapExpr(e, func(x Expr) Expr {
			switch v := x.(type) {
			case *Load:
				return carry(v.Mem.ValueType(), &Load{Mem: v.Mem, Addr: v.Addr})
			case *Bin:
				if v.T.IsFloat() && !v.Op.IsCompare() {
					return carry(v.T, &Bin{Op: v.Op, T: v.T, Unsigned: v.Unsigned, X: v.X, Y: v.Y})
				}
			}
			return x
		})
	}
	for i, s := range body {
		switch st := s.(type) {
		case *Store:
			t := st.X.ResultType()
			if t == Void {
				continue
			}
			carrier := f.NewLocal(t)
			markVecLocal(f, carrier)
			body[i] = &Store{Mem: st.Mem, Addr: st.Addr, X: &Seq{
				Stmts: []Stmt{&SetLocal{Local: carrier, X: carryLoads(st.X)}},
				X:     &GetLocal{T: t, Local: carrier},
			}}
		case *SetLocal:
			t := st.X.ResultType()
			if t == Void {
				continue
			}
			carrier := f.NewLocal(t)
			markVecLocal(f, carrier)
			body[i] = &SetLocal{Local: st.Local, X: &Seq{
				Stmts: []Stmt{&SetLocal{Local: carrier, X: carryLoads(st.X)}},
				X:     &GetLocal{T: t, Local: carrier},
			}}
		case *If:
			addLaneCarriers(f, st.Then)
			addLaneCarriers(f, st.Else)
		}
	}
}

func markVecLocal(f *Func, idx int) {
	if f.VecLocals == nil {
		f.VecLocals = map[int]bool{}
	}
	f.VecLocals[idx] = true
}

// ---- fastmath: the -Ofast pass (§2.1.2) ----

// FastMath applies value-unsafe floating-point rewrites: division by a
// constant becomes multiplication by its reciprocal, and functions are
// marked FastMath (backends may relax FP semantics, e.g. -fno-signed-zeros).
func FastMath(p *Program) {
	for _, f := range p.Funcs {
		f.FastMath = true
		mapStmtsExprs(f.Body, func(e Expr) Expr {
			b, ok := e.(*Bin)
			if !ok || b.Op != OpDiv || !b.T.IsFloat() {
				return e
			}
			c, ok := b.Y.(*Const)
			if !ok {
				return e
			}
			if b.T == F64 {
				v := math.Float64frombits(uint64(c.Raw))
				if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return e
				}
				return &Bin{Op: OpMul, T: F64, X: b.X, Y: ConstF64(1 / v)}
			}
			v := math.Float32frombits(uint32(c.Raw))
			if v == 0 {
				return e
			}
			return &Bin{Op: OpMul, T: F32, X: b.X, Y: ConstF32(1 / v)}
		})
	}
}

// ---- libcalls-shrinkwrap (§2.1.2): guard unused pure libcalls ----

// ShrinkwrapLibcalls wraps pure host math calls whose results are unused in
// a condition on the (always-false) math-errno flag: the call is skipped at
// runtime but kept in the binary, costing code size. -Os/-Oz remove this
// pass, as the paper describes.
func ShrinkwrapLibcalls(p *Program) {
	pureMath := map[string]bool{
		"sin": true, "cos": true, "exp": true, "log": true, "pow": true, "fmod": true,
	}
	flagIdx := -1
	ensureFlag := func() int {
		if flagIdx < 0 {
			flagIdx = len(p.Globals)
			p.Globals = append(p.Globals, &Global{Name: "__math_errno", Type: I32, Mutable: true})
		}
		return flagIdx
	}
	for _, f := range p.Funcs {
		f.Body = shrinkwrapBody(p, f.Body, pureMath, ensureFlag)
	}
}

func shrinkwrapBody(p *Program, body []Stmt, pureMath map[string]bool, ensureFlag func() int) []Stmt {
	var out []Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *EvalStmt:
			if ch, ok := st.X.(*CallHost); ok && pureMath[ch.Name] && allPure(ch.Args) {
				g := ensureFlag()
				out = append(out, &If{
					Cond: &GetGlobal{T: I32, Global: g},
					Then: []Stmt{st},
				})
				continue
			}
		case *If:
			st.Then = shrinkwrapBody(p, st.Then, pureMath, ensureFlag)
			st.Else = shrinkwrapBody(p, st.Else, pureMath, ensureFlag)
		case *Loop:
			st.Body = shrinkwrapBody(p, st.Body, pureMath, ensureFlag)
			st.Post = shrinkwrapBody(p, st.Post, pureMath, ensureFlag)
		case *Switch:
			for i := range st.Cases {
				st.Cases[i].Body = shrinkwrapBody(p, st.Cases[i].Body, pureMath, ensureFlag)
			}
			st.Default = shrinkwrapBody(p, st.Default, pureMath, ensureFlag)
		case *VecSection:
			st.Body = shrinkwrapBody(p, st.Body, pureMath, ensureFlag)
		}
		out = append(out, s)
	}
	return out
}

// ---- argpromotion (§2.1.2, -O3): pass pointed-to values by value ----

// ArgPromote rewrites internal functions whose pointer parameter is only
// ever loaded (one access width, never stored through, callee performs no
// stores or calls) to take the value directly; call sites load once.
func ArgPromote(p *Program) {
	callers := map[int][]*Call{}
	for _, f := range p.Funcs {
		walkExprs(f.Body, func(e Expr) {
			if c, ok := e.(*Call); ok {
				callers[c.Func] = append(callers[c.Func], c)
			}
		})
	}
	for fi, f := range p.Funcs {
		if f.Exported || fi == p.MainFunc {
			continue
		}
		// Callee must be side-effect-free w.r.t. memory.
		clean := true
		walkStmts(f.Body, func(s Stmt) {
			if _, ok := s.(*Store); ok {
				clean = false
			}
		})
		walkExprs(f.Body, func(e Expr) {
			switch e.(type) {
			case *Call, *CallHost:
				clean = false
			}
		})
		if !clean {
			continue
		}
		for pi, pt := range f.Params {
			if pt != I32 {
				continue
			}
			mt, ok := promotableParam(f, pi)
			if !ok {
				continue
			}
			// Rewrite callee: loads of the param become direct reads.
			newT := mt.ValueType()
			f.Params[pi] = newT
			f.Locals[pi] = newT
			mapStmtsExprs(f.Body, func(e Expr) Expr {
				if ld, isLoad := e.(*Load); isLoad {
					if gl, isGl := ld.Addr.(*GetLocal); isGl && gl.Local == pi {
						return &GetLocal{T: newT, Local: pi}
					}
				}
				return e
			})
			// Rewrite call sites: load at the caller.
			for _, c := range callers[fi] {
				c.Args[pi] = &Load{Mem: mt, Addr: c.Args[pi]}
			}
		}
	}
}

// promotableParam checks that local pi is used only as Load{mt, GetLocal pi}
// with a single consistent MemType.
func promotableParam(f *Func, pi int) (MemType, bool) {
	var mt MemType
	found := false
	ok := true
	walkExprs(f.Body, func(e Expr) {
		switch x := e.(type) {
		case *GetLocal:
			if x.Local == pi {
				// Every occurrence must be wrapped by a Load; detected via
				// the Load case marking below. GetLocal seen here could be a
				// bare use: track and verify counts.
			}
		case *Load:
			if gl, isGl := x.Addr.(*GetLocal); isGl && gl.Local == pi {
				if found && x.Mem != mt {
					ok = false
				}
				mt = x.Mem
				found = true
			}
		}
	})
	if !found || !ok {
		return 0, false
	}
	// Count bare uses vs load uses: they must match exactly.
	bare, loads := 0, 0
	walkExprs(f.Body, func(e Expr) {
		if gl, isGl := e.(*GetLocal); isGl && gl.Local == pi {
			bare++
		}
		if ld, isLd := e.(*Load); isLd {
			if gl, isGl := ld.Addr.(*GetLocal); isGl && gl.Local == pi {
				loads++
			}
		}
	})
	// Written params disqualify.
	written := false
	walkStmts(f.Body, func(s Stmt) {
		if sl, isSl := s.(*SetLocal); isSl && sl.Local == pi {
			written = true
		}
	})
	if written || bare != loads {
		return 0, false
	}
	return mt, true
}
