package ir

import (
	"testing"
	"testing/quick"

	"wasmbench/internal/minic"
)

func buildProg(t *testing.T, src string) *Program {
	t.Helper()
	f, err := minic.ParseSource(src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	minic.Transform(f)
	if err := minic.Check(f, minic.CheckOptions{}); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Build(f, DefaultBuildOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

func TestBuildLayout(t *testing.T) {
	p := buildProg(t, `
int scalar = 7;
double arr[100];
int main() { arr[3] = (double)scalar; return (int)arr[3]; }
`)
	// Scalar global becomes a register global (after __sp).
	found := false
	for _, g := range p.Globals {
		if g.Name == "scalar" && g.Init == 7 {
			found = true
		}
	}
	if !found {
		t.Error("scalar global not registered")
	}
	// Array global gets a memory range.
	if len(p.MemGlobals) != 1 || p.MemGlobals[0].Size != 800 {
		t.Errorf("mem globals: %+v", p.MemGlobals)
	}
	if p.StackTop <= p.StaticEnd {
		t.Error("stack must sit above static data")
	}
	if p.Globals[p.SPGlobal].Init != int64(p.StackTop) {
		t.Error("SP init must equal StackTop")
	}
}

func TestConstFoldArith(t *testing.T) {
	p := buildProg(t, `int main() { return 2 * 3 + 10 / 2 - (1 << 4); }`)
	ConstFold(p)
	main := p.Funcs[p.MainFunc]
	// Body must reduce to return of a constant: 6+5-16 = -5.
	if len(main.Body) != 1 {
		t.Fatalf("body not folded: %d stmts", len(main.Body))
	}
	ret, ok := main.Body[0].(*Return)
	if !ok {
		t.Fatalf("expected return, got %T", main.Body[0])
	}
	c, ok := ret.X.(*Const)
	if !ok || int32(c.Raw) != -5 {
		t.Fatalf("expected const -5, got %#v", ret.X)
	}
}

func TestConstFoldBranchElimination(t *testing.T) {
	p := buildProg(t, `
int main() {
	int x = 0;
	if (1 == 1) { x = 10; } else { x = 20; }
	while (0) { x = 99; }
	return x;
}
`)
	Optimize(p, O1)
	found99 := false
	found20 := false
	WalkAllExprs(p.Funcs[p.MainFunc].Body, func(e Expr) {
		if c, ok := e.(*Const); ok {
			if int32(c.Raw) == 99 {
				found99 = true
			}
			if int32(c.Raw) == 20 {
				found20 = true
			}
		}
	})
	if found99 || found20 {
		t.Error("dead branches should be eliminated")
	}
}

func TestGlobalOptRemovesUnreachableFuncs(t *testing.T) {
	p := buildProg(t, `
int unused_helper(int x) { return x * 2; }
int used_helper(int x) { return x + 1; }
int main() { return used_helper(4); }
`)
	before := len(p.Funcs)
	GlobalOpt(p, false)
	if len(p.Funcs) >= before {
		t.Errorf("unreachable functions should be removed: %d -> %d", before, len(p.Funcs))
	}
	for _, f := range p.Funcs {
		if f.Name == "unused_helper" {
			t.Error("unused_helper survived")
		}
	}
	if _, ok := p.FuncByName("main"); !ok {
		t.Error("main must survive")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("post-globalopt validate: %v", err)
	}
}

func TestDeadGlobalStoreSweep(t *testing.T) {
	src := `
int never_read[64];
int sink;
int main() {
	int i;
	for (i = 0; i < 10; i++) {
		never_read[i] = i;
		sink += i;
	}
	return sink;
}
`
	p := buildProg(t, src)
	GlobalOpt(p, false)
	stores := 0
	WalkAllStmts(p.Funcs[p.MainFunc].Body, func(s Stmt) {
		if _, ok := s.(*Store); ok {
			stores++
		}
	})
	if stores != 0 {
		t.Errorf("dead stores remain: %d", stores)
	}
	// With the sweep skipped (the Ofast bug), stores survive.
	p2 := buildProg(t, src)
	GlobalOpt(p2, true)
	stores2 := 0
	WalkAllStmts(p2.Funcs[p2.MainFunc].Body, func(s Stmt) {
		if _, ok := s.(*Store); ok {
			stores2++
		}
	})
	if stores2 == 0 {
		t.Error("skipDeadStoreSweep must keep the stores")
	}
}

func TestSweepKeepsLoadedGlobals(t *testing.T) {
	p := buildProg(t, `
int table[64];
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 10; i++) {
		table[i] = i * 2;
	}
	for (i = 0; i < 10; i++) {
		acc += table[i];
	}
	return acc;
}
`)
	GlobalOpt(p, false)
	stores := 0
	WalkAllStmts(p.Funcs[p.MainFunc].Body, func(s Stmt) {
		if _, ok := s.(*Store); ok {
			stores++
		}
	})
	if stores == 0 {
		t.Error("stores to a loaded global must be kept")
	}
}

func TestInlineSmallFunction(t *testing.T) {
	p := buildProg(t, `
int add3(int a) { return a + 3; }
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 10; i++) {
		s = add3(s);
	}
	return s;
}
`)
	Inline(p, 40)
	GlobalOpt(p, false)
	calls := 0
	WalkAllExprs(p.Funcs[p.MainFunc].Body, func(e Expr) {
		if _, ok := e.(*Call); ok {
			calls++
		}
	})
	if calls != 0 {
		t.Errorf("add3 should have been inlined, %d calls remain", calls)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	p := buildProg(t, `
int fib(int n) {
	if (n < 3) return 1;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
`)
	Inline(p, 1000)
	if _, ok := p.FuncByName("fib"); !ok {
		t.Error("recursive function must not be consumed")
	}
}

func TestLICMHoistsInvariants(t *testing.T) {
	p := buildProg(t, `
int main() {
	int i;
	int n = 100;
	int acc = 0;
	int a = 7;
	int b = 9;
	for (i = 0; i < n; i++) {
		acc += i * (a * b + 13);
	}
	return acc;
}
`)
	before := countStmts(p.Funcs[p.MainFunc].Body)
	LICM(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hoisted SetLocal appears before the loop; dynamic behavior check:
	_ = before
	var loop *Loop
	WalkAllStmts(p.Funcs[p.MainFunc].Body, func(s Stmt) {
		if l, ok := s.(*Loop); ok && loop == nil {
			loop = l
		}
	})
	if loop == nil {
		t.Fatal("loop disappeared")
	}
	// a*b+13 must no longer be computed inside the loop.
	muls := 0
	WalkAllExprs(loop.Body, func(e Expr) {
		if b, ok := e.(*Bin); ok && b.Op == OpMul {
			if _, isC := b.Y.(*Const); isC {
				return // i * hoistedLocal has no const mul
			}
			muls++
		}
	})
	if muls > 1 {
		t.Errorf("invariant expression still inside loop (%d muls)", muls)
	}
}

func TestVectorizeShape(t *testing.T) {
	p := buildProg(t, `
double a[128];
double b[128];
int main() {
	int i;
	for (i = 0; i < 128; i++) {
		a[i] = b[i] * 2.0 + 1.0;
	}
	return (int)a[5];
}
`)
	Vectorize(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	main := p.Funcs[p.MainFunc]
	if main.VecLocals == nil || len(main.VecLocals) == 0 {
		t.Error("vectorizer should introduce lane carriers")
	}
	secs := 0
	WalkAllStmts(main.Body, func(s Stmt) {
		if _, ok := s.(*VecSection); ok {
			secs++
		}
	})
	if secs == 0 {
		t.Error("vectorizer should wrap shadow lanes in VecSection")
	}
}

func TestFastMathReciprocal(t *testing.T) {
	p := buildProg(t, `
double v[16];
int main() {
	int i;
	for (i = 0; i < 16; i++) {
		v[i] = (double)i / 8.0;
	}
	return (int)v[8];
}
`)
	FastMath(p)
	divs := 0
	WalkAllExprs(p.Funcs[p.MainFunc].Body, func(e Expr) {
		if b, ok := e.(*Bin); ok && b.Op == OpDiv && b.T == F64 {
			divs++
		}
	})
	if divs != 0 {
		t.Errorf("fast-math should rewrite constant divisions, %d remain", divs)
	}
	if !p.Funcs[p.MainFunc].FastMath {
		t.Error("FastMath flag not set")
	}
}

func TestConstHoist(t *testing.T) {
	p := buildProg(t, `
double v[16];
int main() {
	int i;
	for (i = 0; i < 16; i++) {
		v[i] = (double)i * 3.25 + 3.25;
	}
	return (int)v[8];
}
`)
	ConstHoist(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3.25 appears twice: it must now be materialized exactly once.
	count := 0
	WalkAllExprs(p.Funcs[p.MainFunc].Body, func(e Expr) {
		if c, ok := e.(*Const); ok && c.T == F64 && c.Raw == ConstF64(3.25).Raw {
			count++
		}
	})
	if count != 1 {
		t.Errorf("repeated const should be hoisted once, found %d sites", count)
	}
}

func TestPassListsDocumented(t *testing.T) {
	for _, lv := range []OptLevel{O0, O1, O2, O3, O4, Os, Oz, Ofast} {
		list := lv.PassList()
		if lv != O0 && len(list) == 0 {
			t.Errorf("%v has no pass list", lv)
		}
	}
	// The Ofast pipeline must record the modeled bug.
	found := false
	for _, p := range Ofast.PassList() {
		if p == "globalopt(no-deadstore-sweep)" {
			found = true
		}
	}
	if !found {
		t.Error("Ofast pass list should document the skipped sweep")
	}
}

func TestParseOptLevel(t *testing.T) {
	for s, want := range map[string]OptLevel{
		"0": O0, "1": O1, "2": O2, "3": O3, "4": O4,
		"s": Os, "z": Oz, "fast": Ofast, "-O2": O2, "Oz": Oz,
	} {
		got, err := ParseOptLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseOptLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseOptLevel("11"); err == nil {
		t.Error("expected error for bad level")
	}
}

// TestFoldBinMatchesGo property-tests the constant folder against Go's own
// integer semantics.
func TestFoldBinMatchesGo(t *testing.T) {
	check := func(op BinOp, gold func(a, b int32) int32) {
		f := func(a, b int32) bool {
			bin := &Bin{Op: op, T: I32, X: ConstI32(a), Y: ConstI32(b)}
			folded, ok := foldBin(bin, ConstI32(a), ConstI32(b))
			if !ok {
				return true // div-by-zero style refusals are fine
			}
			c, isC := folded.(*Const)
			return isC && int32(c.Raw) == gold(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
	check(OpAdd, func(a, b int32) int32 { return a + b })
	check(OpSub, func(a, b int32) int32 { return a - b })
	check(OpMul, func(a, b int32) int32 { return a * b })
	check(OpAnd, func(a, b int32) int32 { return a & b })
	check(OpXor, func(a, b int32) int32 { return a ^ b })
	check(OpShl, func(a, b int32) int32 { return a << (uint32(b) & 31) })
}
