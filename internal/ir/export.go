package ir

// WalkAllExprs visits every expression (including subexpressions) in a
// statement list. Exported for the backends.
func WalkAllExprs(body []Stmt, fn func(Expr)) { walkExprs(body, fn) }

// WalkAllStmts visits every statement recursively. Exported for the
// backends and tests.
func WalkAllStmts(body []Stmt, fn func(Stmt)) { walkStmts(body, fn) }

// ContainsContinue reports whether body has a Continue binding to the
// enclosing loop (it does not descend into nested loops, whose continues
// bind to themselves; it does descend into if and switch bodies).
func ContainsContinue(body []Stmt) bool {
	for _, s := range body {
		switch st := s.(type) {
		case *Continue:
			return true
		case *If:
			if ContainsContinue(st.Then) || ContainsContinue(st.Else) {
				return true
			}
		case *Switch:
			for _, cs := range st.Cases {
				if ContainsContinue(cs.Body) {
					return true
				}
			}
			if ContainsContinue(st.Default) {
				return true
			}
		}
	}
	return false
}

// ClonedStmts deep-copies a statement list (exported for the vectorizer
// tests and the inliner's users).
func ClonedStmts(body []Stmt) []Stmt { return cloneStmts(body) }
