package ir

import (
	"fmt"

	"wasmbench/internal/minic"
)

// lvalKind discriminates resolved lvalues.
type lvalKind uint8

const (
	lvLocal lvalKind = iota
	lvGlobal
	lvMem
)

// lval is a resolved assignable location.
type lval struct {
	kind lvalKind
	idx  int  // local/global index
	addr Expr // memory address (lvMem)
	t    *minic.Type
}

// resolveLval resolves an assignable expression to a location. It never
// duplicates side effects; callers that read and write must stabilize the
// address with stabilize().
func (b *builder) resolveLval(e minic.Expr) (lval, error) {
	switch x := e.(type) {
	case *minic.Ident:
		v := x.Ref
		if idx, ok := b.localReg[v]; ok {
			return lval{kind: lvLocal, idx: idx, t: v.Type}, nil
		}
		if off, ok := b.localMem[v]; ok {
			return lval{kind: lvMem, addr: &FrameAddr{Off: off}, t: v.Type}, nil
		}
		if idx, ok := b.globalReg[v]; ok {
			return lval{kind: lvGlobal, idx: idx, t: v.Type}, nil
		}
		if addr, ok := b.globalMem[v]; ok {
			return lval{kind: lvMem, addr: ConstI32(int32(addr)), t: v.Type}, nil
		}
		return lval{}, fmt.Errorf("unresolved identifier %q", x.Name)
	case *minic.Index:
		baseT := x.X.Type()
		var base Expr
		var err error
		if baseT.Kind == minic.KArray {
			// Address of the array lvalue.
			blv, err2 := b.resolveLval(x.X)
			if err2 != nil {
				return lval{}, err2
			}
			if blv.kind != lvMem {
				return lval{}, fmt.Errorf("array not memory-resident")
			}
			base = blv.addr
		} else {
			// Pointer value.
			base, err = b.expr(x.X)
			if err != nil {
				return lval{}, err
			}
		}
		idx, err := b.expr(x.I)
		if err != nil {
			return lval{}, err
		}
		if idx.ResultType() == I64 {
			idx = &Conv{From: I64, To: I32, X: idx}
		}
		elem := baseT.Elem
		addr := scaleAdd(base, idx, elem.Size())
		return lval{kind: lvMem, addr: addr, t: elem}, nil
	case *minic.Member:
		var base Expr
		if x.Arrow {
			v, err := b.expr(x.X)
			if err != nil {
				return lval{}, err
			}
			base = v
		} else {
			blv, err := b.resolveLval(x.X)
			if err != nil {
				return lval{}, err
			}
			if blv.kind != lvMem {
				return lval{}, fmt.Errorf("struct not memory-resident")
			}
			base = blv.addr
		}
		return lval{kind: lvMem, addr: addOff(base, uint32(x.F.Offset)), t: x.F.Type}, nil
	case *minic.Unary:
		if x.Op == "*" && !x.Postfix {
			p, err := b.expr(x.X)
			if err != nil {
				return lval{}, err
			}
			pt := x.X.Type()
			elem := pt.Elem
			if pt.Kind == minic.KArray {
				elem = pt.Elem
			}
			return lval{kind: lvMem, addr: p, t: elem}, nil
		}
	}
	return lval{}, fmt.Errorf("not an lvalue: %T", e)
}

// scaleAdd computes base + idx*size with constant folding.
func scaleAdd(base, idx Expr, size int) Expr {
	if c, ok := idx.(*Const); ok {
		return addOff(base, uint32(int32(c.Raw)*int32(size)))
	}
	var scaled Expr = idx
	if size != 1 {
		scaled = &Bin{Op: OpMul, T: I32, X: idx, Y: ConstI32(int32(size))}
	}
	return &Bin{Op: OpAdd, T: I32, X: base, Y: scaled}
}

// readLval produces the value of a location.
func (b *builder) readLval(lv lval) Expr {
	switch lv.kind {
	case lvLocal:
		return &GetLocal{T: irType(lv.t), Local: lv.idx}
	case lvGlobal:
		return &GetGlobal{T: irType(lv.t), Global: lv.idx}
	default:
		if lv.t.Kind == minic.KArray || lv.t.Kind == minic.KStruct {
			return lv.addr // decay: value of aggregate is its address
		}
		return &Load{Mem: memTypeOf(lv.t), Addr: lv.addr}
	}
}

// writeLval produces the statement storing x into the location.
func (b *builder) writeLval(lv lval, x Expr) Stmt {
	switch lv.kind {
	case lvLocal:
		return &SetLocal{Local: lv.idx, X: x}
	case lvGlobal:
		return &SetGlobal{Global: lv.idx, X: x}
	default:
		return &Store{Mem: memTypeOf(lv.t), Addr: lv.addr, X: x}
	}
}

// stabilize rewrites a memory lvalue so its address is computed once (into
// a temp local) for read-modify-write sequences. Returns prefix statements.
func (b *builder) stabilize(lv *lval) []Stmt {
	if lv.kind != lvMem {
		return nil
	}
	switch lv.addr.(type) {
	case *Const, *FrameAddr:
		return nil // already effect-free and cheap
	}
	tmp := b.fn.NewLocal(I32)
	set := &SetLocal{Local: tmp, X: lv.addr}
	lv.addr = &GetLocal{T: I32, Local: tmp}
	return []Stmt{set}
}

// coerce converts x (typed as the minic type from) to minic type to.
func (b *builder) coerce(x Expr, from, to *minic.Type) Expr {
	if from == nil || to == nil || from.Equal(to) {
		return x
	}
	ft, tt := irType(from), irType(to)
	// Pointer/array/int conversions within I32 are representation-free
	// except for narrowing.
	if ft == tt {
		switch {
		case tt == I32 && to.IsInteger() && to.Size() < 4 && from.Size() >= to.Size() && !from.Equal(to):
			return narrow(x, to)
		default:
			return x
		}
	}
	switch {
	case ft == I32 && tt == I64:
		return &Conv{From: I32, To: I64, Signed: !from.IsUnsigned(), X: x}
	case ft == I64 && tt == I32:
		c := &Conv{From: I64, To: I32, X: x}
		if to.IsInteger() && to.Size() < 4 {
			return narrow(c, to)
		}
		return c
	case (ft == I32 || ft == I64) && (tt == F32 || tt == F64):
		return &Conv{From: ft, To: tt, Signed: !from.IsUnsigned(), X: x}
	case (ft == F32 || ft == F64) && (tt == I32 || tt == I64):
		c := &Conv{From: ft, To: tt, Signed: !to.IsUnsigned(), X: x}
		if to.IsInteger() && to.Size() < 4 {
			return narrow(c, to)
		}
		return c
	case ft == F32 && tt == F64, ft == F64 && tt == F32:
		return &Conv{From: ft, To: tt, Signed: true, X: x}
	}
	return x
}

func narrow(x Expr, to *minic.Type) Expr {
	bits := uint8(8)
	if to.Size() == 2 {
		bits = 16
	}
	return &Conv{From: I32, To: I32, Narrow: bits, NarrowSigned: !to.IsUnsigned(), X: x}
}

// bool01 normalizes a value to exactly 0 or 1.
func bool01(x Expr) Expr {
	if bx, ok := x.(*Bin); ok && bx.Op.IsCompare() {
		return x
	}
	if ux, ok := x.(*Un); ok && ux.Op == OpEqz {
		return x
	}
	t := x.ResultType()
	switch t {
	case I32:
		return &Bin{Op: OpNe, T: I32, X: x, Y: ConstI32(0)}
	case I64:
		return &Bin{Op: OpNe, T: I64, X: x, Y: ConstI64(0)}
	default:
		return &Bin{Op: OpNe, T: t, X: x, Y: &Const{T: t}}
	}
}

// expr lowers a minic expression to IR.
func (b *builder) expr(e minic.Expr) (Expr, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		if x.Type() != nil && irType(x.Type()) == I64 {
			return ConstI64(x.V), nil
		}
		return ConstI32(int32(x.V)), nil
	case *minic.FloatLit:
		if x.Type() != nil && x.Type().Kind == minic.KFloat {
			return &Const{T: F32, Raw: f32raw(float32(x.V))}, nil
		}
		return &Const{T: F64, Raw: f64raw(x.V)}, nil
	case *minic.StrLit:
		return ConstI32(int32(b.internString(x.S))), nil
	case *minic.Ident, *minic.Index, *minic.Member:
		lv, err := b.resolveLval(e)
		if err != nil {
			return nil, err
		}
		return b.readLval(lv), nil
	case *minic.Unary:
		return b.unary(x)
	case *minic.Binary:
		return b.binary(x)
	case *minic.Assign:
		stmts, val, err := b.assign(x, true)
		if err != nil {
			return nil, err
		}
		return &Seq{Stmts: stmts, X: val}, nil
	case *minic.Cond:
		c, err := b.cond(x.C)
		if err != nil {
			return nil, err
		}
		tv, err := b.expr(x.T)
		if err != nil {
			return nil, err
		}
		fv, err := b.expr(x.F)
		if err != nil {
			return nil, err
		}
		return &Ternary{T: tv.ResultType(), C: c, X: tv, Y: fv}, nil
	case *minic.Call:
		return b.call(x)
	case *minic.CastExpr:
		v, err := b.expr(x.X)
		if err != nil {
			return nil, err
		}
		return b.coerce(v, x.X.Type(), x.To), nil
	case *minic.SizeofExpr:
		return ConstI32(int32(x.OfType.Size())), nil
	}
	return nil, fmt.Errorf("unhandled expression %T", e)
}

func (b *builder) unary(x *minic.Unary) (Expr, error) {
	switch x.Op {
	case "-", "+", "!", "~":
		v, err := b.expr(x.X)
		if err != nil {
			return nil, err
		}
		t := v.ResultType()
		switch x.Op {
		case "+":
			return v, nil
		case "-":
			return &Un{Op: OpNeg, T: t, X: v}, nil
		case "!":
			if t.IsFloat() {
				return &Bin{Op: OpEq, T: t, X: v, Y: &Const{T: t}}, nil
			}
			return &Un{Op: OpEqz, T: t, X: v}, nil
		case "~":
			return &Un{Op: OpBitNot, T: t, X: v}, nil
		}
	case "*":
		lv, err := b.resolveLval(x)
		if err != nil {
			return nil, err
		}
		return b.readLval(lv), nil
	case "&":
		lv, err := b.resolveLval(x.X)
		if err != nil {
			return nil, err
		}
		if lv.kind != lvMem {
			return nil, fmt.Errorf("address of register variable")
		}
		return lv.addr, nil
	case "++", "--":
		stmts, val, err := b.incDec(x, true)
		if err != nil {
			return nil, err
		}
		return &Seq{Stmts: stmts, X: val}, nil
	}
	return nil, fmt.Errorf("unhandled unary %s", x.Op)
}

// incDec builds ++/-- with optional value production.
func (b *builder) incDec(x *minic.Unary, needValue bool) ([]Stmt, Expr, error) {
	lv, err := b.resolveLval(x.X)
	if err != nil {
		return nil, nil, err
	}
	stmts := b.stabilize(&lv)
	t := lv.t
	it := irType(t)
	one := Expr(ConstI32(1))
	delta := 1
	if t.Kind == minic.KPtr {
		delta = t.Elem.Size()
	}
	switch it {
	case I32:
		one = ConstI32(int32(delta))
	case I64:
		one = ConstI64(int64(delta))
	case F32:
		one = &Const{T: F32, Raw: f32raw(1)}
	case F64:
		one = &Const{T: F64, Raw: f64raw(1)}
	}
	op := OpAdd
	if x.Op == "--" {
		op = OpSub
	}
	oldVal := b.readLval(lv)
	var valExpr Expr
	if needValue && x.Postfix {
		tmp := b.fn.NewLocal(it)
		stmts = append(stmts, &SetLocal{Local: tmp, X: oldVal})
		upd := Expr(&Bin{Op: op, T: it, X: &GetLocal{T: it, Local: tmp}, Y: one})
		if t.IsInteger() && t.Size() < 4 {
			upd = narrow(upd, t)
		}
		stmts = append(stmts, b.writeLval(lv, upd))
		valExpr = &GetLocal{T: it, Local: tmp}
	} else {
		upd := Expr(&Bin{Op: op, T: it, X: oldVal, Y: one})
		if t.IsInteger() && t.Size() < 4 {
			upd = narrow(upd, t)
		}
		stmts = append(stmts, b.writeLval(lv, upd))
		if needValue {
			valExpr = b.readLval(lv)
		}
	}
	return stmts, valExpr, nil
}

var binOpMap = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpRem,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (b *builder) binary(x *minic.Binary) (Expr, error) {
	switch x.Op {
	case ",":
		pre, err := b.exprStmt(x.X)
		if err != nil {
			return nil, err
		}
		v, err := b.expr(x.Y)
		if err != nil {
			return nil, err
		}
		return &Seq{Stmts: pre, X: v}, nil
	case "&&":
		l, err := b.expr(x.X)
		if err != nil {
			return nil, err
		}
		r, err := b.expr(x.Y)
		if err != nil {
			return nil, err
		}
		return &Ternary{T: I32, C: truthy(l), X: bool01(r), Y: ConstI32(0)}, nil
	case "||":
		l, err := b.expr(x.X)
		if err != nil {
			return nil, err
		}
		r, err := b.expr(x.Y)
		if err != nil {
			return nil, err
		}
		return &Ternary{T: I32, C: truthy(l), X: ConstI32(1), Y: bool01(r)}, nil
	}

	lt, rt := x.X.Type(), x.Y.Type()
	dl, dr := lt, rt
	if dl.Kind == minic.KArray {
		dl = minic.PtrTo(dl.Elem)
	}
	if dr.Kind == minic.KArray {
		dr = minic.PtrTo(dr.Elem)
	}
	l, err := b.expr(x.X)
	if err != nil {
		return nil, err
	}
	r, err := b.expr(x.Y)
	if err != nil {
		return nil, err
	}
	// Pointer arithmetic.
	if dl.Kind == minic.KPtr && (x.Op == "+" || x.Op == "-") && dr.IsInteger() {
		if r.ResultType() == I64 {
			r = &Conv{From: I64, To: I32, X: r}
		}
		op := OpAdd
		if x.Op == "-" {
			op = OpSub
		}
		size := dl.Elem.Size()
		var scaled Expr = r
		if size != 1 {
			scaled = &Bin{Op: OpMul, T: I32, X: r, Y: ConstI32(int32(size))}
		}
		return &Bin{Op: op, T: I32, X: l, Y: scaled}, nil
	}
	if x.Op == "+" && dr.Kind == minic.KPtr && dl.IsInteger() {
		if l.ResultType() == I64 {
			l = &Conv{From: I64, To: I32, X: l}
		}
		return scaleAdd(r, l, dr.Elem.Size()), nil
	}
	if x.Op == "-" && dl.Kind == minic.KPtr && dr.Kind == minic.KPtr {
		diff := &Bin{Op: OpSub, T: I32, X: l, Y: r}
		size := dl.Elem.Size()
		if size == 1 {
			return diff, nil
		}
		return &Bin{Op: OpDiv, T: I32, X: diff, Y: ConstI32(int32(size))}, nil
	}

	op, ok := binOpMap[x.Op]
	if !ok {
		return nil, fmt.Errorf("unhandled binary %s", x.Op)
	}
	// Shift counts: C promotes the count separately; widen it to match the
	// shifted operand (Wasm shifts require matching widths).
	if (op == OpShl || op == OpShr) && l.ResultType() == I64 && r.ResultType() == I32 {
		r = &Conv{From: I32, To: I64, Signed: false, X: r}
	}
	// Operand type: the checker converted both sides to a common type for
	// arithmetic; comparisons of pointers use I32.
	opT := l.ResultType()
	if r.ResultType() != opT && !op.IsCompare() {
		return nil, fmt.Errorf("operand type mismatch %v vs %v in %s", l.ResultType(), r.ResultType(), x.Op)
	}
	unsigned := dl.IsUnsigned() || dr.IsUnsigned()
	if x.Op == ">>" {
		unsigned = dl.IsUnsigned()
	}
	return &Bin{Op: op, T: opT, Unsigned: unsigned, X: l, Y: r}, nil
}

// assign lowers an assignment, returning statements and (optionally) the
// assigned value expression.
func (b *builder) assign(x *minic.Assign, needValue bool) ([]Stmt, Expr, error) {
	lv, err := b.resolveLval(x.LHS)
	if err != nil {
		return nil, nil, err
	}
	lt := lv.t
	var stmts []Stmt

	if x.Op == "=" {
		rv, err := b.expr(x.RHS)
		if err != nil {
			return nil, nil, err
		}
		rv = b.coerce(rv, x.RHS.Type(), lt)
		if needValue {
			stmts = b.stabilize(&lv)
			tmp := b.fn.NewLocal(irType(lt))
			stmts = append(stmts, &SetLocal{Local: tmp, X: rv})
			stmts = append(stmts, b.writeLval(lv, &GetLocal{T: irType(lt), Local: tmp}))
			return stmts, &GetLocal{T: irType(lt), Local: tmp}, nil
		}
		stmts = append(stmts, b.writeLval(lv, rv))
		return stmts, nil, nil
	}

	// Compound assignment.
	stmts = b.stabilize(&lv)
	rv, err := b.expr(x.RHS)
	if err != nil {
		return nil, nil, err
	}
	rt := x.RHS.Type()
	opStr := x.Op[:len(x.Op)-1]

	// Pointer += / -=.
	if lt.Kind == minic.KPtr && (opStr == "+" || opStr == "-") && rt.IsInteger() {
		if rv.ResultType() == I64 {
			rv = &Conv{From: I64, To: I32, X: rv}
		}
		op := OpAdd
		if opStr == "-" {
			op = OpSub
		}
		size := lt.Elem.Size()
		var scaled Expr = rv
		if size != 1 {
			scaled = &Bin{Op: OpMul, T: I32, X: rv, Y: ConstI32(int32(size))}
		}
		upd := &Bin{Op: op, T: I32, X: b.readLval(lv), Y: scaled}
		stmts = append(stmts, b.writeLval(lv, upd))
		if needValue {
			return stmts, b.readLval(lv), nil
		}
		return stmts, nil, nil
	}

	common := minic.UsualArith(lt, rt)
	op, ok := binOpMap[opStr]
	if !ok {
		return nil, nil, fmt.Errorf("unhandled compound op %s", x.Op)
	}
	lval := b.coerce(b.readLval(lv), lt, common)
	rval := b.coerce(rv, rt, common)
	unsigned := common.IsUnsigned()
	if opStr == ">>" {
		unsigned = lt.IsUnsigned()
	}
	result := Expr(&Bin{Op: op, T: irType(common), Unsigned: unsigned, X: lval, Y: rval})
	result = b.coerce(result, common, lt)
	stmts = append(stmts, b.writeLval(lv, result))
	if needValue {
		return stmts, b.readLval(lv), nil
	}
	return stmts, nil, nil
}

// exprStmt lowers an expression evaluated for effect.
func (b *builder) exprStmt(e minic.Expr) ([]Stmt, error) {
	switch x := e.(type) {
	case *minic.Assign:
		stmts, _, err := b.assign(x, false)
		return stmts, err
	case *minic.Unary:
		if x.Op == "++" || x.Op == "--" {
			stmts, _, err := b.incDec(x, false)
			return stmts, err
		}
	case *minic.Binary:
		if x.Op == "," {
			l, err := b.exprStmt(x.X)
			if err != nil {
				return nil, err
			}
			r, err := b.exprStmt(x.Y)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		}
	}
	v, err := b.expr(e)
	if err != nil {
		return nil, err
	}
	return []Stmt{&EvalStmt{X: v}}, nil
}

func (b *builder) call(x *minic.Call) (Expr, error) {
	var args []Expr
	for _, a := range x.Args {
		v, err := b.expr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if x.Builtin != "" {
		return b.builtinCall(x, args)
	}
	idx, ok := b.funcIdx[x.Name]
	if !ok {
		return nil, fmt.Errorf("call to undefined function %q (missing body?)", x.Name)
	}
	return &Call{Func: idx, T: irType(x.Ref.Ret), Args: args}, nil
}

func (b *builder) builtinCall(x *minic.Call, args []Expr) (Expr, error) {
	switch x.Builtin {
	case "sqrt":
		return &Un{Op: OpSqrt, T: F64, X: args[0]}, nil
	case "fabs":
		return &Un{Op: OpAbs, T: F64, X: args[0]}, nil
	case "floor":
		return &Un{Op: OpFloor, T: F64, X: args[0]}, nil
	case "ceil":
		return &Un{Op: OpCeil, T: F64, X: args[0]}, nil
	case "abs":
		tmp := b.fn.NewLocal(I32)
		read := func() Expr { return &GetLocal{T: I32, Local: tmp} }
		return &Seq{
			Stmts: []Stmt{&SetLocal{Local: tmp, X: args[0]}},
			X: &Ternary{
				T: I32,
				C: &Bin{Op: OpLt, T: I32, X: read(), Y: ConstI32(0)},
				X: &Un{Op: OpNeg, T: I32, X: read()},
				Y: read(),
			},
		}, nil
	case "sin", "cos", "exp", "log", "pow", "fmod":
		return &CallHost{Name: x.Builtin, T: F64, Args: args}, nil
	case "print_i", "print_f", "print_s":
		return &CallHost{Name: x.Builtin, T: Void, Args: args}, nil
	case "__builtin_memsize":
		return &CallHost{Name: "memsize", T: I32}, nil
	case "__builtin_memgrow":
		return &CallHost{Name: "memgrow", T: I32, Args: args}, nil
	case "__builtin_heapbase":
		return &CallHost{Name: "heapbase", T: I32}, nil
	case "__builtin_heaplimit":
		return &CallHost{Name: "heaplimit", T: I32}, nil
	case "__builtin_trap":
		return &CallHost{Name: "trap", T: Void}, nil
	case "malloc", "free", "memset", "memcpy":
		idx, ok := b.funcIdx[x.Builtin]
		if !ok {
			return nil, fmt.Errorf("%s requires the minic runtime library (link it first)", x.Builtin)
		}
		ret := Void
		if x.Builtin != "free" {
			ret = I32
		}
		return &Call{Func: idx, T: ret, Args: args}, nil
	}
	return nil, fmt.Errorf("unhandled builtin %s", x.Builtin)
}

func f32raw(f float32) int64 { return int64(f32bits(f)) }

func f64raw(f float64) int64 { return int64(f64bits(f)) }
