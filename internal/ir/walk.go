package ir

// mapExpr rewrites an expression bottom-up: children first, then fn on the
// rebuilt node. fn must return a non-nil expression.
func mapExpr(e Expr, fn func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *Load:
		x.Addr = mapExpr(x.Addr, fn)
	case *Bin:
		x.X = mapExpr(x.X, fn)
		x.Y = mapExpr(x.Y, fn)
	case *Un:
		x.X = mapExpr(x.X, fn)
	case *Conv:
		x.X = mapExpr(x.X, fn)
	case *Call:
		for i := range x.Args {
			x.Args[i] = mapExpr(x.Args[i], fn)
		}
	case *CallHost:
		for i := range x.Args {
			x.Args[i] = mapExpr(x.Args[i], fn)
		}
	case *Ternary:
		x.C = mapExpr(x.C, fn)
		x.X = mapExpr(x.X, fn)
		x.Y = mapExpr(x.Y, fn)
	case *Seq:
		mapStmtsExprs(x.Stmts, fn)
		x.X = mapExpr(x.X, fn)
	}
	return fn(e)
}

// mapStmtsExprs rewrites every expression inside a statement list in place.
func mapStmtsExprs(body []Stmt, fn func(Expr) Expr) {
	for _, s := range body {
		switch st := s.(type) {
		case *SetLocal:
			st.X = mapExpr(st.X, fn)
		case *SetGlobal:
			st.X = mapExpr(st.X, fn)
		case *Store:
			st.Addr = mapExpr(st.Addr, fn)
			st.X = mapExpr(st.X, fn)
		case *EvalStmt:
			st.X = mapExpr(st.X, fn)
		case *If:
			st.Cond = mapExpr(st.Cond, fn)
			mapStmtsExprs(st.Then, fn)
			mapStmtsExprs(st.Else, fn)
		case *Loop:
			if st.Cond != nil {
				st.Cond = mapExpr(st.Cond, fn)
			}
			mapStmtsExprs(st.Body, fn)
			mapStmtsExprs(st.Post, fn)
		case *Return:
			if st.X != nil {
				st.X = mapExpr(st.X, fn)
			}
		case *Switch:
			st.Tag = mapExpr(st.Tag, fn)
			for i := range st.Cases {
				mapStmtsExprs(st.Cases[i].Body, fn)
			}
			mapStmtsExprs(st.Default, fn)
		case *VecSection:
			mapStmtsExprs(st.Body, fn)
		}
	}
}

// walkExprs visits every expression in a statement list (read-only,
// top-down including children).
func walkExprs(body []Stmt, fn func(Expr)) {
	var ve func(Expr)
	ve = func(e Expr) {
		fn(e)
		switch x := e.(type) {
		case *Load:
			ve(x.Addr)
		case *Bin:
			ve(x.X)
			ve(x.Y)
		case *Un:
			ve(x.X)
		case *Conv:
			ve(x.X)
		case *Call:
			for _, a := range x.Args {
				ve(a)
			}
		case *CallHost:
			for _, a := range x.Args {
				ve(a)
			}
		case *Ternary:
			ve(x.C)
			ve(x.X)
			ve(x.Y)
		case *Seq:
			walkExprs(x.Stmts, fn)
			ve(x.X)
		}
	}
	walkStmts(body, func(s Stmt) {
		switch st := s.(type) {
		case *SetLocal:
			ve(st.X)
		case *SetGlobal:
			ve(st.X)
		case *Store:
			ve(st.Addr)
			ve(st.X)
		case *EvalStmt:
			ve(st.X)
		case *If:
			ve(st.Cond)
		case *Loop:
			if st.Cond != nil {
				ve(st.Cond)
			}
		case *Return:
			if st.X != nil {
				ve(st.X)
			}
		case *Switch:
			ve(st.Tag)
		}
	})
}

// walkStmts visits every statement, outer before inner.
func walkStmts(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		switch st := s.(type) {
		case *If:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		case *Loop:
			walkStmts(st.Body, fn)
			walkStmts(st.Post, fn)
		case *Switch:
			for i := range st.Cases {
				walkStmts(st.Cases[i].Body, fn)
			}
			walkStmts(st.Default, fn)
		case *VecSection:
			walkStmts(st.Body, fn)
		case *SetLocal:
			walkSeqStmts(st.X, fn)
		case *SetGlobal:
			walkSeqStmts(st.X, fn)
		case *Store:
			walkSeqStmts(st.Addr, fn)
			walkSeqStmts(st.X, fn)
		case *EvalStmt:
			walkSeqStmts(st.X, fn)
		case *Return:
			if st.X != nil {
				walkSeqStmts(st.X, fn)
			}
		}
	}
}

// walkSeqStmts visits statements nested inside Seq expressions.
func walkSeqStmts(e Expr, fn func(Stmt)) {
	switch x := e.(type) {
	case *Seq:
		walkStmts(x.Stmts, fn)
		walkSeqStmts(x.X, fn)
	case *Load:
		walkSeqStmts(x.Addr, fn)
	case *Bin:
		walkSeqStmts(x.X, fn)
		walkSeqStmts(x.Y, fn)
	case *Un:
		walkSeqStmts(x.X, fn)
	case *Conv:
		walkSeqStmts(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			walkSeqStmts(a, fn)
		}
	case *CallHost:
		for _, a := range x.Args {
			walkSeqStmts(a, fn)
		}
	case *Ternary:
		walkSeqStmts(x.C, fn)
		walkSeqStmts(x.X, fn)
		walkSeqStmts(x.Y, fn)
	}
}

// pureExpr reports whether evaluating e has no side effects (loads count as
// pure for value-discard purposes).
func pureExpr(e Expr) bool {
	switch x := e.(type) {
	case *Const, *GetLocal, *GetGlobal, *FrameAddr:
		return true
	case *Load:
		return pureExpr(x.Addr)
	case *Bin:
		return pureExpr(x.X) && pureExpr(x.Y)
	case *Un:
		return pureExpr(x.X)
	case *Conv:
		return pureExpr(x.X)
	case *Ternary:
		return pureExpr(x.C) && pureExpr(x.X) && pureExpr(x.Y)
	case *Call, *CallHost:
		return false
	case *Seq:
		return len(x.Stmts) == 0 && pureExpr(x.X)
	}
	return false
}

// cloneExpr deep-copies an expression.
func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Const:
		c := *x
		return &c
	case *GetLocal:
		c := *x
		return &c
	case *GetGlobal:
		c := *x
		return &c
	case *FrameAddr:
		c := *x
		return &c
	case *Load:
		return &Load{Mem: x.Mem, Addr: cloneExpr(x.Addr)}
	case *Bin:
		return &Bin{Op: x.Op, T: x.T, Unsigned: x.Unsigned, X: cloneExpr(x.X), Y: cloneExpr(x.Y)}
	case *Un:
		return &Un{Op: x.Op, T: x.T, X: cloneExpr(x.X)}
	case *Conv:
		c := *x
		c.X = cloneExpr(x.X)
		return &c
	case *Call:
		c := &Call{Func: x.Func, T: x.T}
		for _, a := range x.Args {
			c.Args = append(c.Args, cloneExpr(a))
		}
		return c
	case *CallHost:
		c := &CallHost{Name: x.Name, T: x.T}
		for _, a := range x.Args {
			c.Args = append(c.Args, cloneExpr(a))
		}
		return c
	case *Ternary:
		return &Ternary{T: x.T, C: cloneExpr(x.C), X: cloneExpr(x.X), Y: cloneExpr(x.Y)}
	case *Seq:
		return &Seq{Stmts: cloneStmts(x.Stmts), X: cloneExpr(x.X)}
	}
	return e
}

// cloneStmts deep-copies a statement list.
func cloneStmts(body []Stmt) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		out = append(out, cloneStmt(s))
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *SetLocal:
		return &SetLocal{Local: st.Local, X: cloneExpr(st.X)}
	case *SetGlobal:
		return &SetGlobal{Global: st.Global, X: cloneExpr(st.X)}
	case *Store:
		return &Store{Mem: st.Mem, Addr: cloneExpr(st.Addr), X: cloneExpr(st.X)}
	case *EvalStmt:
		return &EvalStmt{X: cloneExpr(st.X)}
	case *If:
		return &If{Cond: cloneExpr(st.Cond), Then: cloneStmts(st.Then), Else: cloneStmts(st.Else)}
	case *Loop:
		l := &Loop{PostTest: st.PostTest, Unrolled: st.Unrolled,
			Body: cloneStmts(st.Body), Post: cloneStmts(st.Post)}
		if st.Cond != nil {
			l.Cond = cloneExpr(st.Cond)
		}
		return l
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	case *Return:
		r := &Return{}
		if st.X != nil {
			r.X = cloneExpr(st.X)
		}
		return r
	case *Switch:
		sw := &Switch{Tag: cloneExpr(st.Tag), Default: cloneStmts(st.Default)}
		for _, cs := range st.Cases {
			sw.Cases = append(sw.Cases, SwitchCase{
				Vals: append([]int64(nil), cs.Vals...),
				Body: cloneStmts(cs.Body),
			})
		}
		return sw
	case *VecSection:
		return &VecSection{Body: cloneStmts(st.Body)}
	}
	return s
}

// countOps estimates the size of an expression in target instructions.
func countOps(e Expr) int {
	n := 0
	var visit func(Expr)
	visit = func(x Expr) {
		n++
		switch v := x.(type) {
		case *Load:
			visit(v.Addr)
		case *Bin:
			visit(v.X)
			visit(v.Y)
		case *Un:
			visit(v.X)
		case *Conv:
			visit(v.X)
		case *Call:
			for _, a := range v.Args {
				visit(a)
			}
		case *CallHost:
			for _, a := range v.Args {
				visit(a)
			}
		case *Ternary:
			visit(v.C)
			visit(v.X)
			visit(v.Y)
		case *Seq:
			n += countStmts(v.Stmts) * 2
			visit(v.X)
		}
	}
	visit(e)
	return n
}

// countStmts estimates the size of a statement list.
func countStmts(body []Stmt) int {
	n := 0
	walkStmts(body, func(s Stmt) {
		n++
		switch st := s.(type) {
		case *SetLocal:
			n += countOps(st.X)
		case *SetGlobal:
			n += countOps(st.X)
		case *Store:
			n += countOps(st.Addr) + countOps(st.X)
		case *EvalStmt:
			n += countOps(st.X)
		case *If:
			n += countOps(st.Cond)
		case *Loop:
			if st.Cond != nil {
				n += countOps(st.Cond)
			}
		case *Return:
			if st.X != nil {
				n += countOps(st.X)
			}
		}
	})
	return n
}
